#include "prefetch/discontinuity.hh"

#include "util/bitutil.hh"
#include "util/error.hh"
#include "util/logging.hh"
#include "util/trace_event.hh"

namespace ipref
{

DiscontinuityPredictor::DiscontinuityPredictor(unsigned entries,
                                               unsigned lineBytes)
{
    if (!isPowerOfTwo(entries))
        ipref_raise(ConfigError, "discontinuity table entries (%u) must be a power "
                    "of two", entries);
    table_.resize(entries);
    lineShift_ = floorLog2(lineBytes);
    mask_ = entries - 1;
}

std::uint32_t
DiscontinuityPredictor::indexOf(Addr triggerLine) const
{
    std::uint64_t ln = triggerLine >> lineShift_;
    // xor-fold the upper bits in so multi-megabyte footprints spread
    // over small tables
    return static_cast<std::uint32_t>(
        (ln ^ (ln >> (floorLog2(static_cast<std::uint64_t>(mask_) + 1))))
        & mask_);
}

std::optional<DiscontinuityPredictor::Hit>
DiscontinuityPredictor::lookup(Addr triggerLine) const
{
    const Entry &e = table_[indexOf(triggerLine)];
    if (!e.valid || e.trigger != triggerLine)
        return std::nullopt;
    IPREF_TRACE(TraceEventType::DiscHit, traceNoCore, triggerLine,
                e.target);
    return Hit{e.target, indexOf(triggerLine)};
}

void
DiscontinuityPredictor::allocate(Addr triggerLine, Addr targetLine)
{
    Entry &e = table_[indexOf(triggerLine)];
    if (!e.valid) {
        e.valid = true;
        e.trigger = triggerLine;
        e.target = targetLine;
        e.counter = counterMax;
        ++allocations;
        IPREF_TRACE(TraceEventType::DiscAlloc, traceNoCore,
                    triggerLine, targetLine);
        return;
    }
    if (e.trigger == triggerLine) {
        if (e.target == targetLine)
            return; // already represented
        // Same trigger, new target: treat the resident mapping like
        // any other entry under replacement pressure.
        if (e.counter == 0) {
            e.target = targetLine;
            e.counter = counterMax;
            ++retargets;
        } else {
            --e.counter;
            ++decays;
        }
        return;
    }
    // Unrepresented discontinuity conflicts with a resident entry.
    if (e.counter == 0) {
        IPREF_TRACE(TraceEventType::DiscEvict, traceNoCore, e.trigger,
                    e.target);
        e.trigger = triggerLine;
        e.target = targetLine;
        e.counter = counterMax;
        ++replacements;
        IPREF_TRACE(TraceEventType::DiscAlloc, traceNoCore,
                    triggerLine, targetLine);
    } else {
        --e.counter;
        ++decays;
        ++conflicts;
    }
}

void
DiscontinuityPredictor::credit(std::uint32_t index)
{
    ipref_assert(index < table_.size());
    Entry &e = table_[index];
    if (e.valid && e.counter < counterMax)
        ++e.counter;
}

unsigned
DiscontinuityPredictor::validEntries() const
{
    unsigned n = 0;
    for (const auto &e : table_)
        if (e.valid)
            ++n;
    return n;
}

DiscontinuityPrefetcher::DiscontinuityPrefetcher(unsigned entries,
                                                 unsigned degree,
                                                 unsigned lineBytes)
    : predictor_(entries, lineBytes),
      degree_(degree),
      lineBytes_(lineBytes)
{
    ipref_assert(degree_ >= 1);
}

void
DiscontinuityPrefetcher::onDemandFetch(
    const DemandFetchEvent &event, std::vector<PrefetchCandidate> &out)
{
    // Learn: a miss caused by a discontinuity (transition to anything
    // other than the same or the next sequential line) is a candidate
    // for the prediction table. Small intra-line and next-line
    // transitions are left to the sequential prefetcher.
    if (event.miss && event.prevLineAddr != invalidAddr) {
        Addr prev = event.prevLineAddr;
        Addr cur = event.lineAddr;
        if (cur != prev && cur != prev + lineBytes_)
            predictor_.allocate(prev, cur);
    }

    if (!event.taggedTrigger())
        return;

    // Sequential component: L+1 .. L+N.
    for (unsigned i = 1; i <= degree_; ++i) {
        PrefetchCandidate c;
        c.lineAddr = event.lineAddr +
                     static_cast<Addr>(i) * lineBytes_;
        c.origin = PrefetchOrigin::Sequential;
        c.triggerAddr = event.lineAddr;
        out.push_back(c);
    }

    // Discontinuity component: probe L .. L+N; a hit at L+k with
    // target T prefetches T .. T+(N-k). The probe line is the site
    // these candidates attribute to (the edge's source).
    for (unsigned k = 0; k <= degree_; ++k) {
        Addr probe = event.lineAddr +
                     static_cast<Addr>(k) * lineBytes_;
        auto hit = predictor_.lookup(probe);
        if (!hit)
            continue;
        unsigned remainder = degree_ - k;
        for (unsigned j = 0; j <= remainder; ++j) {
            PrefetchCandidate c;
            c.lineAddr = hit->target +
                         static_cast<Addr>(j) * lineBytes_;
            c.origin = j == 0 ? PrefetchOrigin::Discontinuity
                              : PrefetchOrigin::Sequential;
            c.tableIndex = hit->index;
            c.triggerAddr = probe;
            out.push_back(c);
        }
    }
}

void
DiscontinuityPrefetcher::prefetchUseful(std::uint32_t tableIndex)
{
    predictor_.credit(tableIndex);
}

const char *
DiscontinuityPrefetcher::name() const
{
    return degree_ == 2 ? "discontinuity (2NL)" : "discontinuity";
}

} // namespace ipref
