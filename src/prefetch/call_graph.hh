/**
 * @file
 * Call-graph prefetching (Annavaram, Patel & Davidson [8], discussed
 * in Section 2.2 of the paper).
 *
 * A call-graph history table remembers, for each function, the
 * sequence of callees it invoked last time. On entering a function
 * its first predicted callee's entry lines are prefetched; after each
 * return, the caller's *next* predicted callee is prefetched. The
 * paper's critique — such schemes "only target a subset of the
 * non-sequential misses" (call transitions, not branches or long
 * intra-function jumps) — is directly measurable against the
 * discontinuity prefetcher in bench/abl_schemes.
 */

#ifndef IPREF_PREFETCH_CALL_GRAPH_HH
#define IPREF_PREFETCH_CALL_GRAPH_HH

#include <vector>

#include "prefetch/prefetcher.hh"
#include "util/stats.hh"

namespace ipref
{

/** A call or return observed by the fetch engine. */
struct FunctionEvent
{
    bool isReturn = false;
    Addr sitePc = 0;      //!< address of the call/return instruction
    Addr target = 0;      //!< callee entry (call) / return site
};

/** Call-graph history prefetcher. */
class CallGraphPrefetcher : public InstructionPrefetcher
{
  public:
    /**
     * @param entries    history-table entries (power of two)
     * @param calleeSlots callees remembered per function
     * @param degree     lines prefetched at a predicted entry
     * @param lineBytes  L1I line size
     */
    CallGraphPrefetcher(unsigned entries, unsigned calleeSlots,
                        unsigned degree, unsigned lineBytes);

    void onDemandFetch(const DemandFetchEvent &event,
                       std::vector<PrefetchCandidate> &out) override;

    /** Observe a call or return and prefetch the predicted callee. */
    void onFunction(const FunctionEvent &event,
                    std::vector<PrefetchCandidate> &out);

    const char *name() const override { return "call-graph"; }

    Counter predictions;
    Counter tableHits;

  private:
    struct Entry
    {
        Addr function = 0;            //!< function entry address
        std::vector<Addr> callees;    //!< observed callee sequence
        bool valid = false;
    };
    struct Frame
    {
        Addr function;
        unsigned calleeIdx;
    };

    std::uint32_t indexOf(Addr functionEntry) const;

    /** Emit prefetches for a predicted function entry. */
    void predictEntry(Addr functionEntry,
                      std::vector<PrefetchCandidate> &out);

    std::vector<Entry> table_;
    std::vector<Frame> stack_;
    unsigned calleeSlots_;
    unsigned degree_;
    unsigned lineBytes_;
    std::uint32_t mask_;

    static constexpr std::size_t maxStackDepth = 64;
};

} // namespace ipref

#endif // IPREF_PREFETCH_CALL_GRAPH_HH
