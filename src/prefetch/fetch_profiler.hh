/**
 * @file
 * Per-site fetch profiler: bounded heavy-hitter attribution of L1I
 * demand misses and prefetch outcomes to the code sites (miss
 * PC-lines) and discontinuity edges (source-line → target-line) that
 * cause them.
 *
 * Two Space-Saving sketches (util/topk.hh, O(K) memory each):
 *
 *  - the *site* table, keyed by fetch line, counting demand misses
 *    per CTI transition class plus prefetch issues / useful / useless
 *    attributed to candidates generated at that site;
 *  - the *edge* table, keyed by (trigger-line, target-line) pairs of
 *    discontinuity-origin prefetches, counting issues and outcomes —
 *    the per-edge accuracy view the paper's Fig. 9 aggregates away.
 *
 * The profiler is wired by System when SystemConfig::profileSites is
 * non-zero; every call site guards with one `if (profiler_)` branch,
 * so a disabled profiler costs a single predictable branch (same
 * budget as IPREF_TRACE with the sink off).
 */

#ifndef IPREF_PREFETCH_FETCH_PROFILER_HH
#define IPREF_PREFETCH_FETCH_PROFILER_HH

#include <array>
#include <cstdint>
#include <ostream>
#include <utility>

#include "prefetch/prefetcher.hh"
#include "trace/record.hh"
#include "util/stats.hh"
#include "util/topk.hh"

namespace ipref
{

/** Heavy-hitter attribution of misses and prefetches to code sites. */
class FetchProfiler
{
  public:
    /** Per-site attribution record (exact over tracked residency). */
    struct SiteCounts
    {
        /** Demand L1I misses at this line, by transition class. */
        std::array<std::uint64_t,
                   static_cast<std::size_t>(
                       FetchTransition::NumTransitions)>
            missByTransition{};
        std::uint64_t misses = 0;
        /** Prefetches whose generating site is this line. */
        std::uint64_t pfIssued = 0;
        std::uint64_t pfUseful = 0;
        std::uint64_t pfUseless = 0;
    };

    /** Per-discontinuity-edge prefetch outcome record. */
    struct EdgeCounts
    {
        std::uint64_t issued = 0;
        std::uint64_t useful = 0;
        std::uint64_t useless = 0;
    };

    struct EdgeKey
    {
        Addr src = 0;
        Addr dst = 0;
        bool operator==(const EdgeKey &o) const
        {
            return src == o.src && dst == o.dst;
        }
    };

    struct EdgeKeyHash
    {
        std::size_t
        operator()(const EdgeKey &k) const
        {
            // splitmix-style combine; both members are line-aligned.
            std::uint64_t h = k.src * 0x9e3779b97f4a7c15ull;
            h ^= (k.dst + 0x7f4a7c15u) + (h << 6) + (h >> 2);
            return static_cast<std::size_t>(h);
        }
    };

    /**
     * @param siteEntries heavy-hitter capacity of the site table
     * @param edgeEntries capacity of the edge table (0 = same)
     */
    explicit FetchProfiler(std::size_t siteEntries,
                           std::size_t edgeEntries = 0)
        : sites_(siteEntries),
          edges_(edgeEntries ? edgeEntries : siteEntries)
    {}

    /** A demand L1I miss at @p line entered via @p transition. */
    void
    demandMiss(Addr line, FetchTransition transition)
    {
        ++missesAttributed;
        SiteCounts *s = sites_.touch(line);
        ++s->misses;
        ++s->missByTransition[static_cast<std::size_t>(transition)];
    }

    /** A prefetch generated at site @p trigger was issued. */
    void
    prefetchIssued(Addr trigger, Addr target, PrefetchOrigin origin)
    {
        ++issuesAttributed;
        ++sites_.touch(trigger)->pfIssued;
        if (origin == PrefetchOrigin::Discontinuity)
            ++edges_.touch(EdgeKey{trigger, target})->issued;
    }

    /** The prefetch generated at @p trigger resolved (used or not). */
    void
    prefetchResolved(Addr trigger, Addr target, PrefetchOrigin origin,
                     bool useful)
    {
        SiteCounts *s = sites_.touch(trigger, 0);
        if (useful)
            ++s->pfUseful;
        else
            ++s->pfUseless;
        if (origin == PrefetchOrigin::Discontinuity) {
            EdgeCounts *e = edges_.touch(EdgeKey{trigger, target}, 0);
            if (useful)
                ++e->useful;
            else
                ++e->useless;
        }
    }

    const SpaceSaving<Addr, SiteCounts> &sites() const { return sites_; }
    const SpaceSaving<EdgeKey, EdgeCounts, EdgeKeyHash> &
    edges() const
    {
        return edges_;
    }

    /** Aggregate sketch-health counters for the StatGroup tree. */
    void registerStats(StatGroup &group);

    /**
     * Top-N report as one JSON object:
     *   {"sites": [...], "edges": [...], "site_replacements": N, ...}
     */
    void dumpJson(std::ostream &os, std::size_t topN = 32) const;

    // Registered stats (updated by the hooks above).
    Counter missesAttributed; //!< demand misses seen by the profiler
    Counter issuesAttributed; //!< prefetch issues seen by the profiler

  private:
    SpaceSaving<Addr, SiteCounts> sites_;
    SpaceSaving<EdgeKey, EdgeCounts, EdgeKeyHash> edges_;
};

} // namespace ipref

#endif // IPREF_PREFETCH_FETCH_PROFILER_HH
