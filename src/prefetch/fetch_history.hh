/**
 * @file
 * Recent-demand-fetch filter (Section 4.1): a small ring of the last
 * N demand-fetched line addresses; prefetch candidates matching a
 * recent demand fetch are dropped before entering the queue.
 */

#ifndef IPREF_PREFETCH_FETCH_HISTORY_HH
#define IPREF_PREFETCH_FETCH_HISTORY_HH

#include <vector>

#include "util/types.hh"

namespace ipref
{

/** Ring buffer of recently demand-fetched lines. */
class FetchHistory
{
  public:
    explicit FetchHistory(unsigned capacity)
        : ring_(capacity, invalidAddr)
    {}

    /** Record a demand fetch of @p lineAddr. */
    void
    push(Addr lineAddr)
    {
        if (ring_.empty())
            return;
        ring_[head_] = lineAddr;
        // Conditional wrap: this runs once per demand fetch, so avoid
        // the integer divide of a modulo.
        if (++head_ == ring_.size())
            head_ = 0;
    }

    /** Was @p lineAddr demand fetched recently? */
    bool
    contains(Addr lineAddr) const
    {
        for (Addr a : ring_)
            if (a == lineAddr)
                return true;
        return false;
    }

    unsigned capacity() const { return static_cast<unsigned>(ring_.size()); }

  private:
    std::vector<Addr> ring_;
    std::size_t head_ = 0;
};

} // namespace ipref

#endif // IPREF_PREFETCH_FETCH_HISTORY_HH
