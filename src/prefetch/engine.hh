/**
 * @file
 * The per-core prefetch engine: glue between a candidate-generating
 * prefetcher, the filtering structures (recent-fetch history and the
 * prefetch queue) and the cache hierarchy.
 *
 * Issue policy follows the paper: prefetches contend for the L1I tag
 * port at low priority, obtaining it only on cycles when the core has
 * no demand fetch to issue; one tag probe is performed per free cycle
 * and, if the line is absent, a fill is requested.
 */

#ifndef IPREF_PREFETCH_ENGINE_HH
#define IPREF_PREFETCH_ENGINE_HH

#include <array>
#include <memory>
#include <unordered_map>
#include <vector>

#include "cache/hierarchy.hh"
#include "prefetch/confidence_filter.hh"
#include "prefetch/fetch_history.hh"
#include "prefetch/prefetch_queue.hh"
#include "prefetch/prefetcher.hh"
#include "prefetch/call_graph.hh"
#include "prefetch/wrong_path.hh"
#include "util/stats.hh"

namespace ipref
{

class FetchProfiler;

/** Per-core prefetch engine. */
class PrefetchEngine : public PrefetchEvictionListener
{
  public:
    /**
     * @param cfg       scheme configuration
     * @param core      owning core
     * @param hierarchy the chip hierarchy (outlives the engine)
     *
     * Registers itself as the core's L1I eviction listener.
     */
    PrefetchEngine(const PrefetchConfig &cfg, CoreId core,
                   CacheHierarchy &hierarchy);

    /** Drains the live in-flight telemetry gauge. */
    ~PrefetchEngine() override;

    /** Is a prefetcher configured? */
    bool enabled() const { return prefetcher_ != nullptr; }

    /**
     * Attach the chip-wide per-site profiler (nullptr = off). Every
     * profiler hook is guarded by a single branch on this pointer.
     */
    void setProfiler(FetchProfiler *profiler) { profiler_ = profiler; }

    /**
     * Observe a demand fetch-line event (from the fetch engine):
     * updates the filter structures, credits useful prefetches, runs
     * the prefetcher and enqueues filtered candidates.
     */
    void onDemandFetch(const DemandFetchEvent &event);

    /**
     * Observe a conditional branch (from the fetch engine); feeds
     * branch-driven prefetchers such as wrong-path [12].
     */
    void onBranch(const BranchEvent &event);

    /**
     * Observe a call or return (from the fetch engine); feeds
     * call-driven prefetchers such as call-graph prefetching [8].
     */
    void onFunction(const FunctionEvent &event);

    /**
     * One cycle of issue opportunity. @p tagPortFree is true when the
     * core made no demand fetch this cycle. Inline fast path: this is
     * called every cycle by every core, and almost every call has
     * nothing to do (no prefetcher, busy tag port, or empty queue).
     */
    void
    tick(Cycle now, bool tagPortFree)
    {
        if (!prefetcher_ || !tagPortFree || !queue_.hasWaiting())
            return;
        issueOne(now);
    }

    /**
     * Does the configured scheme consume branch / function events?
     * Fetch loops use these to skip event construction entirely for
     * the schemes that would ignore them (hoisting the per-CTI
     * dispatch out of the hot loop).
     */
    bool wantsBranchEvents() const { return wrongPath_ != nullptr; }
    bool wantsFunctionEvents() const { return callGraph_ != nullptr; }

    // PrefetchEvictionListener
    void prefetchedLineEvicted(CoreId core, Addr lineAddr,
                               bool used) override;
    void instrLineEvicted(CoreId core, Addr lineAddr) override;

    /**
     * Origin of the lifecycle most recently credited for @p lineAddr,
     * or NumOrigins when that credit was not the last one (the
     * lifecycle record is erased at credit time, so the fetch stage
     * captures this immediately after onDemandFetch() reports a late
     * prefetch hit, before another credit can overwrite it).
     */
    PrefetchOrigin
    lastCreditedOrigin(Addr lineAddr) const
    {
        return lastCredit_.line == lineAddr ? lastCredit_.origin
                                            : PrefetchOrigin::NumOrigins;
    }

    /**
     * The core finished a fetch-stall episode on @p lineAddr whose
     * in-flight prefetch hid part, but not all, of the miss latency:
     * @p cycles were still exposed. @p origin comes from
     * lastCreditedOrigin() captured at stall start (NumOrigins =
     * unattributed, e.g. a second core sharing the fill).
     */
    void notePartialStall(Addr lineAddr, std::uint64_t cycles,
                          PrefetchOrigin origin);

    InstructionPrefetcher *prefetcher() { return prefetcher_.get(); }
    PrefetchQueue &queue() { return queue_; }

    // --- statistics ---------------------------------------------------
    Counter candidates;      //!< produced by the prefetcher
    Counter filteredRecent;  //!< dropped by the recent-fetch filter
    Counter tagProbes;       //!< L1I tag-port probes performed
    Counter tagProbeHits;    //!< probe found the line resident
    Counter issued;          //!< fills actually started
    Counter issuedOffChip;   //!< ... that went to memory
    Counter droppedInFlight; //!< fill already in flight
    Counter confidenceSuppressed; //!< gated by the confidence filter
    Counter usefulPrefetches;   //!< first-use or late-merge hits
    Counter latePrefetches;     //!< subset: merged while in flight
    Counter uselessPrefetches;  //!< evicted without use
    Counter uncreditedUseful;   //!< evicted used, but use not observed
    Counter replacedInFlight;   //!< lifecycle replaced by a re-issue
    Counter partialStallEpisodes; //!< late prefetches that still stalled
    Counter partialStallCycles;   //!< exposed cycles of those episodes

    /** Issued / useful fills, attributed to the generating structure. */
    std::array<Counter,
               static_cast<std::size_t>(PrefetchOrigin::NumOrigins)>
        issuedByOrigin;
    std::array<Counter,
               static_cast<std::size_t>(PrefetchOrigin::NumOrigins)>
        usefulByOrigin;

    /** Partial-stall cycles attributed to the generating structure. */
    std::array<Counter,
               static_cast<std::size_t>(PrefetchOrigin::NumOrigins)>
        partialStallByOrigin;

    /** Prefetch accuracy: useful / issued. */
    double
    accuracy() const
    {
        return issued.value() == 0
                   ? 0.0
                   : static_cast<double>(usefulPrefetches.value()) /
                         static_cast<double>(issued.value());
    }

    /** Issue-to-first-use latency of credited prefetches (cycles). */
    const Log2Histogram &issueToUseLatency() const { return issueToUse_; }

    /** Issue-to-fill latency of issued prefetches (cycles). */
    const Log2Histogram &fillLatency() const { return fillLatency_; }

    /** Prefetches issued but not yet used, evicted or replaced. */
    std::size_t liveUnresolved() const { return origins_.size(); }

    /**
     * Lifecycle reconciliation: every issued prefetch ends in exactly
     * one bucket. Exact from a freshly constructed system (no stats
     * reset since construction).
     */
    struct Lifecycle
    {
        std::uint64_t issued = 0;
        std::uint64_t useful = 0;   //!< credited + uncredited-on-evict
        std::uint64_t useless = 0;  //!< evicted without use
        std::uint64_t inFlight = 0; //!< still unresolved
        std::uint64_t dropped = 0;  //!< lifecycle replaced by re-issue

        bool
        reconciles() const
        {
            return issued == useful + useless + inFlight + dropped;
        }
    };
    Lifecycle lifecycle() const;

    void registerStats(StatGroup &group);

  private:
    /** In-flight / resident-unused lifecycle record of one prefetch. */
    struct LivePrefetch
    {
        PrefetchOrigin origin = PrefetchOrigin::Sequential;
        std::uint32_t tableIndex = 0;
        std::uint64_t id = 0;
        Cycle issuedAt = 0;
        Addr trigger = invalidAddr; //!< generating site (attribution)
    };

    /** Credit a used prefetched line back to its predictor entry. */
    void credit(Addr lineAddr, Cycle now);

    /** Slow path of tick(): probe/filter and issue one prefetch. */
    void issueOne(Cycle now);

    /**
     * Enqueue candidates from @p scratch_ through the filters.
     * Candidates without a trigger site are stamped @p defaultTrigger.
     */
    void enqueueCandidates(Addr defaultTrigger);

    PrefetchConfig cfg_;
    CoreId core_;
    CacheHierarchy &hierarchy_;
    FetchProfiler *profiler_ = nullptr;
    std::unique_ptr<InstructionPrefetcher> prefetcher_;
    /** Typed views of prefetcher_, resolved once at construction so
     *  the per-CTI event hooks don't dynamic_cast per event. */
    WrongPathPrefetcher *wrongPath_ = nullptr;
    CallGraphPrefetcher *callGraph_ = nullptr;
    PrefetchQueue queue_;
    FetchHistory history_;
    std::unique_ptr<ConfidenceFilter> confidence_;
    std::vector<PrefetchCandidate> scratch_;
    std::unordered_map<Addr, LivePrefetch> origins_;
    std::uint64_t nextPrefetchId_ = 1;
    Log2Histogram issueToUse_;
    Log2Histogram fillLatency_;
    Log2Histogram partialExposed_;

    /** Lifecycle identity of the most recent credit() — the record
     *  itself is erased there, so late-hit charge points read this. */
    struct LastCredit
    {
        Addr line = invalidAddr;
        PrefetchOrigin origin = PrefetchOrigin::Sequential;
        std::uint64_t id = 0;
    };
    LastCredit lastCredit_;
};

} // namespace ipref

#endif // IPREF_PREFETCH_ENGINE_HH
