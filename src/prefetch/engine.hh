/**
 * @file
 * The per-core prefetch engine: glue between a candidate-generating
 * prefetcher, the filtering structures (recent-fetch history and the
 * prefetch queue) and the cache hierarchy.
 *
 * Issue policy follows the paper: prefetches contend for the L1I tag
 * port at low priority, obtaining it only on cycles when the core has
 * no demand fetch to issue; one tag probe is performed per free cycle
 * and, if the line is absent, a fill is requested.
 */

#ifndef IPREF_PREFETCH_ENGINE_HH
#define IPREF_PREFETCH_ENGINE_HH

#include <memory>
#include <unordered_map>
#include <vector>

#include "cache/hierarchy.hh"
#include "prefetch/confidence_filter.hh"
#include "prefetch/fetch_history.hh"
#include "prefetch/prefetch_queue.hh"
#include "prefetch/prefetcher.hh"
#include "prefetch/call_graph.hh"
#include "prefetch/wrong_path.hh"
#include "util/stats.hh"

namespace ipref
{

/** Per-core prefetch engine. */
class PrefetchEngine : public PrefetchEvictionListener
{
  public:
    /**
     * @param cfg       scheme configuration
     * @param core      owning core
     * @param hierarchy the chip hierarchy (outlives the engine)
     *
     * Registers itself as the core's L1I eviction listener.
     */
    PrefetchEngine(const PrefetchConfig &cfg, CoreId core,
                   CacheHierarchy &hierarchy);

    /** Is a prefetcher configured? */
    bool enabled() const { return prefetcher_ != nullptr; }

    /**
     * Observe a demand fetch-line event (from the fetch engine):
     * updates the filter structures, credits useful prefetches, runs
     * the prefetcher and enqueues filtered candidates.
     */
    void onDemandFetch(const DemandFetchEvent &event);

    /**
     * Observe a conditional branch (from the fetch engine); feeds
     * branch-driven prefetchers such as wrong-path [12].
     */
    void onBranch(const BranchEvent &event);

    /**
     * Observe a call or return (from the fetch engine); feeds
     * call-driven prefetchers such as call-graph prefetching [8].
     */
    void onFunction(const FunctionEvent &event);

    /**
     * One cycle of issue opportunity. @p tagPortFree is true when the
     * core made no demand fetch this cycle.
     */
    void tick(Cycle now, bool tagPortFree);

    // PrefetchEvictionListener
    void prefetchedLineEvicted(CoreId core, Addr lineAddr,
                               bool used) override;
    void instrLineEvicted(CoreId core, Addr lineAddr) override;

    InstructionPrefetcher *prefetcher() { return prefetcher_.get(); }
    PrefetchQueue &queue() { return queue_; }

    // --- statistics ---------------------------------------------------
    Counter candidates;      //!< produced by the prefetcher
    Counter filteredRecent;  //!< dropped by the recent-fetch filter
    Counter tagProbes;       //!< L1I tag-port probes performed
    Counter tagProbeHits;    //!< probe found the line resident
    Counter issued;          //!< fills actually started
    Counter issuedOffChip;   //!< ... that went to memory
    Counter droppedInFlight; //!< fill already in flight
    Counter confidenceSuppressed; //!< gated by the confidence filter
    Counter usefulPrefetches;   //!< first-use or late-merge hits
    Counter latePrefetches;     //!< subset: merged while in flight
    Counter uselessPrefetches;  //!< evicted without use

    /** Prefetch accuracy: useful / issued. */
    double
    accuracy() const
    {
        return issued.value() == 0
                   ? 0.0
                   : static_cast<double>(usefulPrefetches.value()) /
                         static_cast<double>(issued.value());
    }

    void registerStats(StatGroup &group);

  private:
    struct Origin
    {
        PrefetchOrigin origin;
        std::uint32_t tableIndex;
    };

    /** Credit a used prefetched line back to its predictor entry. */
    void credit(Addr lineAddr);

    /** Enqueue candidates from @p scratch_ through the filters. */
    void enqueueCandidates();

    PrefetchConfig cfg_;
    CoreId core_;
    CacheHierarchy &hierarchy_;
    std::unique_ptr<InstructionPrefetcher> prefetcher_;
    PrefetchQueue queue_;
    FetchHistory history_;
    std::unique_ptr<ConfidenceFilter> confidence_;
    std::vector<PrefetchCandidate> scratch_;
    std::unordered_map<Addr, Origin> origins_;
};

} // namespace ipref

#endif // IPREF_PREFETCH_ENGINE_HH
