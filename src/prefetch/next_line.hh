/**
 * @file
 * Sequential prefetchers: next-line (always / on-miss / tagged),
 * next-N-line tagged, and the lookahead-N variant that prefetches a
 * single line N ahead of the active one.
 */

#ifndef IPREF_PREFETCH_NEXT_LINE_HH
#define IPREF_PREFETCH_NEXT_LINE_HH

#include "prefetch/prefetcher.hh"

namespace ipref
{

/**
 * Family of purely sequential prefetchers. Policy and distance are
 * selected by the config; all share the candidate-generation core.
 */
class NextLinePrefetcher : public InstructionPrefetcher
{
  public:
    /** Trigger policy. */
    enum class Policy
    {
        Always, //!< every demand line fetch
        OnMiss, //!< only demand misses
        Tagged, //!< miss or first use of a prefetched line
    };

    /**
     * @param policy    trigger policy
     * @param degree    how many sequential lines to prefetch
     * @param lineBytes L1I line size
     * @param lookahead if true, prefetch only line L+degree instead
     *                  of L+1..L+degree (the scheme of [4])
     */
    NextLinePrefetcher(Policy policy, unsigned degree,
                       unsigned lineBytes, bool lookahead = false);

    void onDemandFetch(const DemandFetchEvent &event,
                       std::vector<PrefetchCandidate> &out) override;

    const char *name() const override;

  private:
    Policy policy_;
    unsigned degree_;
    unsigned lineBytes_;
    bool lookahead_;
};

} // namespace ipref

#endif // IPREF_PREFETCH_NEXT_LINE_HH
