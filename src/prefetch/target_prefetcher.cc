#include "prefetch/target_prefetcher.hh"

#include "util/bitutil.hh"
#include "util/error.hh"
#include "util/logging.hh"

namespace ipref
{

TargetPrefetcher::TargetPrefetcher(unsigned entries, unsigned ways,
                                   unsigned lineBytes, bool nonSeqOnly)
    : ways_(ways),
      nonSeqOnly_(nonSeqOnly)
{
    if (!isPowerOfTwo(entries))
        ipref_raise(ConfigError, "target table entries (%u) must be a power of two",
                    entries);
    ipref_assert(ways_ >= 1);
    table_.resize(entries);
    for (auto &e : table_)
        e.ways.resize(ways_);
    lineShift_ = floorLog2(lineBytes);
    mask_ = entries - 1;
}

std::uint32_t
TargetPrefetcher::indexOf(Addr line) const
{
    std::uint64_t ln = line >> lineShift_;
    return static_cast<std::uint32_t>(
        (ln ^ (ln >> (floorLog2(static_cast<std::uint64_t>(mask_) + 1))))
        & mask_);
}

void
TargetPrefetcher::record(Addr trigger, Addr target)
{
    Entry &e = table_[indexOf(trigger)];
    if (!e.valid || e.trigger != trigger) {
        e.valid = true;
        e.trigger = trigger;
        for (auto &w : e.ways)
            w.valid = false;
    }
    // Already remembered? refresh recency.
    for (auto &w : e.ways) {
        if (w.valid && w.target == target) {
            w.lastUse = ++useClock_;
            return;
        }
    }
    // Install into an invalid or the least-recently-used way.
    Way *victim = &e.ways[0];
    for (auto &w : e.ways) {
        if (!w.valid) {
            victim = &w;
            break;
        }
        if (w.lastUse < victim->lastUse)
            victim = &w;
    }
    victim->valid = true;
    victim->target = target;
    victim->lastUse = ++useClock_;
}

void
TargetPrefetcher::onDemandFetch(const DemandFetchEvent &event,
                                std::vector<PrefetchCandidate> &out)
{
    const unsigned line_bytes = 1u << lineShift_;

    // Learn the successor relation from the demand stream.
    if (lastLine_ != invalidAddr && event.lineAddr != lastLine_) {
        bool sequential = event.lineAddr == lastLine_ + line_bytes;
        if (!sequential || !nonSeqOnly_)
            record(lastLine_, event.lineAddr);
    }
    lastLine_ = event.lineAddr;

    // Predict: probe with the active line on every fetch.
    const Entry &e = table_[indexOf(event.lineAddr)];
    if (e.valid && e.trigger == event.lineAddr) {
        ++tableHits;
        for (const auto &w : e.ways) {
            if (!w.valid)
                continue;
            PrefetchCandidate c;
            c.lineAddr = w.target;
            c.origin = PrefetchOrigin::TargetTable;
            out.push_back(c);
        }
    } else {
        ++tableMisses;
    }
    // Cover the sequential successor as well (next-line on every
    // fetch, as the original scheme pairs target and next-line).
    if (event.taggedTrigger()) {
        PrefetchCandidate c;
        c.lineAddr = event.lineAddr + line_bytes;
        c.origin = PrefetchOrigin::Sequential;
        out.push_back(c);
    }
}

} // namespace ipref
