/**
 * @file
 * The prefetch queue of Section 4.1: a fixed-capacity LIFO structure
 * holding prefetches awaiting the instruction-cache tag port.
 *
 * Behaviours reproduced from the paper:
 *  - last-in, first-out issue (de-emphasizes stale prefetches);
 *  - overflow drops the oldest prefetches first;
 *  - duplicate pushes never create a second entry: a waiting
 *    duplicate is hoisted to the head, a duplicate of an issued or
 *    invalidated record is dropped;
 *  - demand fetches invalidate matching waiting entries;
 *  - unused slots retain records of issued/invalidated prefetches so
 *    near-future duplicates can be suppressed.
 */

#ifndef IPREF_PREFETCH_PREFETCH_QUEUE_HH
#define IPREF_PREFETCH_PREFETCH_QUEUE_HH

#include <deque>
#include <optional>

#include "prefetch/prefetcher.hh"
#include "util/stats.hh"
#include "util/types.hh"

namespace ipref
{

/** The per-core prefetch queue. */
class PrefetchQueue
{
  public:
    explicit PrefetchQueue(unsigned capacity);

    /** Result of a push. */
    enum class PushResult
    {
        Inserted,       //!< new entry at the head
        Hoisted,        //!< waiting duplicate moved to the head
        DroppedIssued,  //!< duplicate of an already-issued prefetch
        DroppedInvalid, //!< duplicate of an invalidated prefetch
    };

    /** Offer a candidate to the queue. */
    PushResult push(const PrefetchCandidate &cand);

    /**
     * Take the newest waiting prefetch for issue; its slot becomes an
     * "issued" record that stays behind for duplicate suppression.
     */
    std::optional<PrefetchCandidate> popForIssue();

    /** A demand fetch of @p lineAddr invalidates matching entries. */
    void demandFetched(Addr lineAddr);

    /** Waiting entries currently queued. */
    unsigned waiting() const { return waitingCount_; }

    /** O(1) check used by the engine's per-cycle fast path. */
    bool hasWaiting() const { return waitingCount_ > 0; }

    /** All occupied slots (waiting + records). */
    unsigned size() const { return static_cast<unsigned>(slots_.size()); }

    unsigned capacity() const { return capacity_; }

    /** Most waiting entries ever queued at once (backpressure gauge). */
    unsigned waitingHighWater() const { return waitingHighWater_; }

    // Statistics.
    Counter pushes;
    Counter hoists;
    Counter duplicateDrops;
    Counter overflowDrops;   //!< waiting prefetches lost to overflow
    Counter demandInvalidations;

  private:
    enum class State : std::uint8_t
    {
        Waiting,
        Issued,
        Invalidated,
    };
    struct Slot
    {
        PrefetchCandidate cand;
        State state;
    };

    /** Make room for one more slot; drops records before prefetches. */
    void makeRoom();

    std::deque<Slot> slots_; //!< front = newest
    unsigned capacity_;
    unsigned waitingCount_ = 0; //!< slots in State::Waiting
    unsigned waitingHighWater_ = 0;
};

} // namespace ipref

#endif // IPREF_PREFETCH_PREFETCH_QUEUE_HH
