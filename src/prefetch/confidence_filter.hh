/**
 * @file
 * Confidence-based probe filter (Haga, Zhang & Barua [15], discussed
 * in Section 2.4 of the paper).
 *
 * Determining whether a line to be prefetched is already cached
 * normally requires inspecting the cache tags, which is expensive
 * enough that tag duplication is often assumed. The alternative:
 * associate a small saturating confidence counter with each line
 * (tagless, direct-mapped). The counter is incremented when the line
 * is evicted from the cache (a prefetch would now be useful) and
 * decremented when a prefetch for it proves ineffective (the line was
 * still resident). Prefetches are issued only when the confidence
 * exceeds a threshold — removing the need to probe the tags at all.
 */

#ifndef IPREF_PREFETCH_CONFIDENCE_FILTER_HH
#define IPREF_PREFETCH_CONFIDENCE_FILTER_HH

#include <cstdint>
#include <vector>

#include "util/stats.hh"
#include "util/types.hh"

namespace ipref
{

/** Tagless table of 2-bit confidence counters. */
class ConfidenceFilter
{
  public:
    /**
     * @param entries    table entries (power of two)
     * @param lineBytes  cache line size (index granularity)
     * @param threshold  issue when confidence >= threshold
     * @param initial    initial counter value (optimistic default
     *                   lets cold lines be prefetched immediately)
     */
    ConfidenceFilter(unsigned entries, unsigned lineBytes,
                     std::uint8_t threshold = 2,
                     std::uint8_t initial = 2);

    /** Should a prefetch of @p lineAddr be issued? */
    bool confident(Addr lineAddr) const;

    /** The line was evicted from the cache: prefetching it again
     *  would be useful. */
    void lineEvicted(Addr lineAddr);

    /** A prefetch of the line proved ineffective (still resident). */
    void prefetchIneffective(Addr lineAddr);

    unsigned entries() const
    {
        return static_cast<unsigned>(table_.size());
    }

    Counter increments;
    Counter decrements;
    Counter suppressed; //!< confident() == false outcomes

  private:
    std::uint32_t indexOf(Addr lineAddr) const;

    std::vector<std::uint8_t> table_;
    unsigned lineShift_;
    std::uint32_t mask_;
    std::uint8_t threshold_;

    static constexpr std::uint8_t counterMax = 3;
};

} // namespace ipref

#endif // IPREF_PREFETCH_CONFIDENCE_FILTER_HH
