/**
 * @file
 * Wrong-path instruction prefetching (Pierce & Mudge [12], discussed
 * in Section 2.3 of the paper): for conditional branches, the
 * direction NOT followed is prefetched, on the observation that both
 * outcomes of many branches execute within a short window — fetching
 * down one path effectively prefetches the other for later use.
 *
 * Implemented as a related-work baseline: candidates come from the
 * branch stream (onBranch) rather than the fetch-line stream; a
 * next-line component covers sequential misses like the original
 * proposal's underlying fetch unit.
 */

#ifndef IPREF_PREFETCH_WRONG_PATH_HH
#define IPREF_PREFETCH_WRONG_PATH_HH

#include "prefetch/prefetcher.hh"

namespace ipref
{

/** A conditional-branch observation delivered to prefetchers. */
struct BranchEvent
{
    Addr branchPc = 0;
    Addr takenTarget = 0;   //!< target if taken
    Addr fallthrough = 0;   //!< pc + 4
    bool taken = false;     //!< actual outcome
};

/** Wrong-path prefetcher: fetches the unfollowed branch direction. */
class WrongPathPrefetcher : public InstructionPrefetcher
{
  public:
    WrongPathPrefetcher(unsigned degree, unsigned lineBytes);

    void onDemandFetch(const DemandFetchEvent &event,
                       std::vector<PrefetchCandidate> &out) override;

    /** Observe a conditional branch and prefetch the other path. */
    void onBranch(const BranchEvent &event,
                  std::vector<PrefetchCandidate> &out);

    const char *name() const override { return "wrong-path"; }

  private:
    unsigned degree_;
    unsigned lineBytes_;
};

} // namespace ipref

#endif // IPREF_PREFETCH_WRONG_PATH_HH
