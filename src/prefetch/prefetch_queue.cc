#include "prefetch/prefetch_queue.hh"

#include <algorithm>

#include "util/logging.hh"

namespace ipref
{

PrefetchQueue::PrefetchQueue(unsigned capacity) : capacity_(capacity)
{
    ipref_assert(capacity_ >= 1);
}

void
PrefetchQueue::makeRoom()
{
    if (slots_.size() < capacity_)
        return;
    // Prefer reclaiming the oldest issued/invalidated record; those
    // only exist opportunistically in "unused" entries.
    for (auto it = slots_.rbegin(); it != slots_.rend(); ++it) {
        if (it->state != State::Waiting) {
            slots_.erase(std::next(it).base());
            return;
        }
    }
    // All slots hold waiting prefetches: drop the oldest one.
    slots_.pop_back();
    --waitingCount_;
    ++overflowDrops;
}

PrefetchQueue::PushResult
PrefetchQueue::push(const PrefetchCandidate &cand)
{
    ++pushes;
    for (auto it = slots_.begin(); it != slots_.end(); ++it) {
        if (it->cand.lineAddr != cand.lineAddr)
            continue;
        switch (it->state) {
          case State::Waiting: {
            // Hoist the existing entry to the head of the queue.
            Slot s = *it;
            slots_.erase(it);
            slots_.push_front(s);
            ++hoists;
            return PushResult::Hoisted;
          }
          case State::Issued:
            ++duplicateDrops;
            return PushResult::DroppedIssued;
          case State::Invalidated:
            ++duplicateDrops;
            return PushResult::DroppedInvalid;
        }
    }
    makeRoom();
    slots_.push_front(Slot{cand, State::Waiting});
    ++waitingCount_;
    if (waitingCount_ > waitingHighWater_)
        waitingHighWater_ = waitingCount_;
    return PushResult::Inserted;
}

std::optional<PrefetchCandidate>
PrefetchQueue::popForIssue()
{
    for (auto &slot : slots_) {
        if (slot.state == State::Waiting) {
            slot.state = State::Issued;
            --waitingCount_;
            return slot.cand;
        }
    }
    return std::nullopt;
}

void
PrefetchQueue::demandFetched(Addr lineAddr)
{
    for (auto &slot : slots_) {
        if (slot.state == State::Waiting &&
            slot.cand.lineAddr == lineAddr) {
            slot.state = State::Invalidated;
            --waitingCount_;
            ++demandInvalidations;
        }
    }
}


} // namespace ipref
