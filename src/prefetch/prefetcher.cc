#include "prefetch/prefetcher.hh"

#include "prefetch/discontinuity.hh"
#include "prefetch/next_line.hh"
#include "prefetch/target_prefetcher.hh"
#include "prefetch/call_graph.hh"
#include "prefetch/wrong_path.hh"
#include "util/error.hh"
#include "util/logging.hh"

namespace ipref
{

const std::vector<SchemeInfo> &
schemeRegistry()
{
    // Tokens and aliases here are a compatibility surface: scripts
    // and CI pin them, so entries may be added but never renamed.
    static const std::vector<SchemeInfo> registry = {
        {PrefetchScheme::None, "none", "no prefetch", {}},
        {PrefetchScheme::NextLineAlways, "nl-always",
         "next-line (always)", {}},
        {PrefetchScheme::NextLineOnMiss, "nl-miss",
         "next-line (on miss)", {}},
        {PrefetchScheme::NextLineTagged, "nl-tagged",
         "next-line (tagged)", {}},
        {PrefetchScheme::NextNLineTagged, "n4l",
         "next-4-lines (tagged)", {"nnl-tagged"}},
        {PrefetchScheme::LookaheadN, "lookahead", "lookahead-N", {}},
        {PrefetchScheme::Discontinuity, "discontinuity",
         "discontinuity", {"disc"}},
        {PrefetchScheme::TargetHistory, "target", "target", {}},
        {PrefetchScheme::WrongPath, "wrong-path", "wrong-path",
         {"wrongpath"}},
        {PrefetchScheme::CallGraph, "call-graph", "call-graph",
         {"cgp"}},
    };
    return registry;
}

const char *
schemeName(PrefetchScheme scheme)
{
    for (const auto &info : schemeRegistry())
        if (info.scheme == scheme)
            return info.display;
    return "?";
}

const char *
schemeToken(PrefetchScheme scheme)
{
    for (const auto &info : schemeRegistry())
        if (info.scheme == scheme)
            return info.token;
    return "?";
}

const char *
originName(PrefetchOrigin origin)
{
    switch (origin) {
      case PrefetchOrigin::Sequential: return "sequential";
      case PrefetchOrigin::Discontinuity: return "discontinuity";
      case PrefetchOrigin::TargetTable: return "target_table";
      case PrefetchOrigin::NumOrigins: break;
    }
    return "?";
}

PrefetchScheme
parseScheme(const std::string &name)
{
    for (const auto &info : schemeRegistry()) {
        if (name == info.token)
            return info.scheme;
        for (const auto &alias : info.aliases)
            if (name == alias)
                return info.scheme;
    }
    std::string valid;
    for (const auto &info : schemeRegistry()) {
        if (!valid.empty())
            valid += ", ";
        valid += info.token;
    }
    ipref_raise(ConfigError,
                "unknown prefetch scheme '%s' (valid: %s)",
                name.c_str(), valid.c_str());
}

std::unique_ptr<InstructionPrefetcher>
createPrefetcher(const PrefetchConfig &cfg)
{
    using Policy = NextLinePrefetcher::Policy;
    switch (cfg.scheme) {
      case PrefetchScheme::None:
        return nullptr;
      case PrefetchScheme::NextLineAlways:
        return std::make_unique<NextLinePrefetcher>(Policy::Always, 1,
                                                    cfg.lineBytes);
      case PrefetchScheme::NextLineOnMiss:
        return std::make_unique<NextLinePrefetcher>(Policy::OnMiss, 1,
                                                    cfg.lineBytes);
      case PrefetchScheme::NextLineTagged:
        return std::make_unique<NextLinePrefetcher>(Policy::Tagged, 1,
                                                    cfg.lineBytes);
      case PrefetchScheme::NextNLineTagged:
        return std::make_unique<NextLinePrefetcher>(
            Policy::Tagged, cfg.degree, cfg.lineBytes);
      case PrefetchScheme::LookaheadN:
        return std::make_unique<NextLinePrefetcher>(
            Policy::Tagged, cfg.degree, cfg.lineBytes, true);
      case PrefetchScheme::Discontinuity:
        return std::make_unique<DiscontinuityPrefetcher>(
            cfg.tableEntries, cfg.degree, cfg.lineBytes);
      case PrefetchScheme::TargetHistory:
        return std::make_unique<TargetPrefetcher>(
            cfg.tableEntries, cfg.targetWays, cfg.lineBytes);
      case PrefetchScheme::WrongPath:
        return std::make_unique<WrongPathPrefetcher>(
            std::min(cfg.degree, 2u), cfg.lineBytes);
      case PrefetchScheme::CallGraph:
        return std::make_unique<CallGraphPrefetcher>(
            cfg.tableEntries, /*calleeSlots=*/8,
            std::min(cfg.degree, 2u), cfg.lineBytes);
    }
    ipref_raise(InvariantError, "bad prefetch scheme");
}

} // namespace ipref
