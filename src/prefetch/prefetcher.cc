#include "prefetch/prefetcher.hh"

#include "prefetch/discontinuity.hh"
#include "prefetch/next_line.hh"
#include "prefetch/target_prefetcher.hh"
#include "prefetch/call_graph.hh"
#include "prefetch/wrong_path.hh"
#include "util/error.hh"
#include "util/logging.hh"

namespace ipref
{

const char *
schemeName(PrefetchScheme scheme)
{
    switch (scheme) {
      case PrefetchScheme::None: return "no prefetch";
      case PrefetchScheme::NextLineAlways: return "next-line (always)";
      case PrefetchScheme::NextLineOnMiss: return "next-line (on miss)";
      case PrefetchScheme::NextLineTagged: return "next-line (tagged)";
      case PrefetchScheme::NextNLineTagged:
        return "next-4-lines (tagged)";
      case PrefetchScheme::LookaheadN: return "lookahead-N";
      case PrefetchScheme::Discontinuity: return "discontinuity";
      case PrefetchScheme::TargetHistory: return "target";
      case PrefetchScheme::WrongPath: return "wrong-path";
      case PrefetchScheme::CallGraph: return "call-graph";
    }
    return "?";
}

const char *
originName(PrefetchOrigin origin)
{
    switch (origin) {
      case PrefetchOrigin::Sequential: return "sequential";
      case PrefetchOrigin::Discontinuity: return "discontinuity";
      case PrefetchOrigin::TargetTable: return "target_table";
      case PrefetchOrigin::NumOrigins: break;
    }
    return "?";
}

PrefetchScheme
parseScheme(const std::string &name)
{
    if (name == "none")
        return PrefetchScheme::None;
    if (name == "nl-always")
        return PrefetchScheme::NextLineAlways;
    if (name == "nl-miss")
        return PrefetchScheme::NextLineOnMiss;
    if (name == "nl-tagged")
        return PrefetchScheme::NextLineTagged;
    if (name == "n4l" || name == "nnl-tagged")
        return PrefetchScheme::NextNLineTagged;
    if (name == "lookahead")
        return PrefetchScheme::LookaheadN;
    if (name == "discontinuity" || name == "disc")
        return PrefetchScheme::Discontinuity;
    if (name == "target")
        return PrefetchScheme::TargetHistory;
    if (name == "wrong-path" || name == "wrongpath")
        return PrefetchScheme::WrongPath;
    if (name == "call-graph" || name == "cgp")
        return PrefetchScheme::CallGraph;
    ipref_raise(ConfigError, "unknown prefetch scheme '%s'", name.c_str());
}

std::unique_ptr<InstructionPrefetcher>
createPrefetcher(const PrefetchConfig &cfg)
{
    using Policy = NextLinePrefetcher::Policy;
    switch (cfg.scheme) {
      case PrefetchScheme::None:
        return nullptr;
      case PrefetchScheme::NextLineAlways:
        return std::make_unique<NextLinePrefetcher>(Policy::Always, 1,
                                                    cfg.lineBytes);
      case PrefetchScheme::NextLineOnMiss:
        return std::make_unique<NextLinePrefetcher>(Policy::OnMiss, 1,
                                                    cfg.lineBytes);
      case PrefetchScheme::NextLineTagged:
        return std::make_unique<NextLinePrefetcher>(Policy::Tagged, 1,
                                                    cfg.lineBytes);
      case PrefetchScheme::NextNLineTagged:
        return std::make_unique<NextLinePrefetcher>(
            Policy::Tagged, cfg.degree, cfg.lineBytes);
      case PrefetchScheme::LookaheadN:
        return std::make_unique<NextLinePrefetcher>(
            Policy::Tagged, cfg.degree, cfg.lineBytes, true);
      case PrefetchScheme::Discontinuity:
        return std::make_unique<DiscontinuityPrefetcher>(
            cfg.tableEntries, cfg.degree, cfg.lineBytes);
      case PrefetchScheme::TargetHistory:
        return std::make_unique<TargetPrefetcher>(
            cfg.tableEntries, cfg.targetWays, cfg.lineBytes);
      case PrefetchScheme::WrongPath:
        return std::make_unique<WrongPathPrefetcher>(
            std::min(cfg.degree, 2u), cfg.lineBytes);
      case PrefetchScheme::CallGraph:
        return std::make_unique<CallGraphPrefetcher>(
            cfg.tableEntries, /*calleeSlots=*/8,
            std::min(cfg.degree, 2u), cfg.lineBytes);
    }
    ipref_raise(InvariantError, "bad prefetch scheme");
}

} // namespace ipref
