#include "prefetch/wrong_path.hh"

#include "util/logging.hh"

namespace ipref
{

WrongPathPrefetcher::WrongPathPrefetcher(unsigned degree,
                                         unsigned lineBytes)
    : degree_(degree),
      lineBytes_(lineBytes)
{
    ipref_assert(degree_ >= 1);
}

void
WrongPathPrefetcher::onDemandFetch(const DemandFetchEvent &event,
                                   std::vector<PrefetchCandidate> &out)
{
    // Sequential component (next-line tagged), as in the original
    // proposal's sequential fetch engine.
    if (!event.taggedTrigger())
        return;
    PrefetchCandidate c;
    c.lineAddr = event.lineAddr + lineBytes_;
    c.origin = PrefetchOrigin::Sequential;
    out.push_back(c);
}

void
WrongPathPrefetcher::onBranch(const BranchEvent &event,
                              std::vector<PrefetchCandidate> &out)
{
    // The path the front end does NOT follow.
    Addr wrong = event.taken ? event.fallthrough : event.takenTarget;
    Addr followed = event.taken ? event.takenTarget
                                : event.fallthrough;
    Addr line_mask = ~static_cast<Addr>(lineBytes_ - 1);
    // Only worth prefetching when the wrong path starts in a line
    // the followed path does not enter anyway.
    if ((wrong & line_mask) == (followed & line_mask))
        return;
    for (unsigned i = 0; i < degree_; ++i) {
        PrefetchCandidate c;
        c.lineAddr = (wrong & line_mask) +
                     static_cast<Addr>(i) * lineBytes_;
        c.origin = PrefetchOrigin::TargetTable;
        out.push_back(c);
    }
}

} // namespace ipref
