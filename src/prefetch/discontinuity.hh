/**
 * @file
 * The paper's discontinuity prefetcher (Section 4).
 *
 * A direct-mapped predictor maps a trigger cache line to the single
 * target line of a previously observed fetch-stream discontinuity.
 * Entries are allocated when a discontinuity causes an I-cache miss
 * and are protected by a 2-bit saturating eviction counter:
 * set to max on allocation, incremented when the entry's prefetch
 * proves useful, decremented when an unrepresented discontinuity maps
 * to the entry; only a zero count allows replacement.
 *
 * The DiscontinuityPrefetcher pairs the predictor with a next-N-line
 * sequential prefetcher: on each tagged trigger at line L it emits
 * L+1..L+N, probes the predictor with L..L+N (the sequential stream
 * "moving ahead of the demand fetch"), and on a probe hit at L+k with
 * target T also emits T..T+(N-k) — covering the remainder of the
 * prefetch-ahead distance beyond the discontinuity.
 */

#ifndef IPREF_PREFETCH_DISCONTINUITY_HH
#define IPREF_PREFETCH_DISCONTINUITY_HH

#include <optional>
#include <vector>

#include "prefetch/prefetcher.hh"
#include "util/stats.hh"

namespace ipref
{

/** The direct-mapped discontinuity prediction table. */
class DiscontinuityPredictor
{
  public:
    /**
     * @param entries   table entries (power of two)
     * @param lineBytes cache line size (index granularity)
     */
    DiscontinuityPredictor(unsigned entries, unsigned lineBytes);

    /** A successful probe. */
    struct Hit
    {
        Addr target;
        std::uint32_t index;
    };

    /** Probe with a (line-aligned) trigger address. */
    std::optional<Hit> lookup(Addr triggerLine) const;

    /**
     * Record an observed discontinuity trigger->target that caused an
     * instruction cache miss. Applies the allocation/replacement
     * policy described above.
     */
    void allocate(Addr triggerLine, Addr targetLine);

    /** Credit entry @p index: its predicted prefetch was useful. */
    void credit(std::uint32_t index);

    unsigned entries() const { return static_cast<unsigned>(table_.size()); }

    /** Number of valid entries (tests / occupancy studies). */
    unsigned validEntries() const;

    // Statistics.
    Counter allocations;
    Counter replacements;
    Counter decays;      //!< decrements by unrepresented discontinuities
    Counter conflicts;   //!< allocation blocked by a protected entry
    Counter retargets;   //!< same trigger re-learned a new target

  private:
    struct Entry
    {
        Addr trigger = 0;
        Addr target = 0;
        std::uint8_t counter = 0; //!< 2-bit saturating
        bool valid = false;
    };

    std::uint32_t indexOf(Addr triggerLine) const;

    std::vector<Entry> table_;
    unsigned lineShift_;
    std::uint32_t mask_;

    static constexpr std::uint8_t counterMax = 3;
};

/** Discontinuity predictor combined with next-N-line sequential. */
class DiscontinuityPrefetcher : public InstructionPrefetcher
{
  public:
    /**
     * @param entries   predictor entries
     * @param degree    prefetch-ahead distance N (4 default, 2 = 2NL)
     * @param lineBytes L1I line size
     */
    DiscontinuityPrefetcher(unsigned entries, unsigned degree,
                            unsigned lineBytes);

    void onDemandFetch(const DemandFetchEvent &event,
                       std::vector<PrefetchCandidate> &out) override;

    void prefetchUseful(std::uint32_t tableIndex) override;

    const char *name() const override;

    DiscontinuityPredictor &predictor() { return predictor_; }
    const DiscontinuityPredictor &predictor() const { return predictor_; }

  private:
    DiscontinuityPredictor predictor_;
    unsigned degree_;
    unsigned lineBytes_;
};

} // namespace ipref

#endif // IPREF_PREFETCH_DISCONTINUITY_HH
