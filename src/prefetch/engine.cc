#include "prefetch/engine.hh"

namespace ipref
{

PrefetchEngine::PrefetchEngine(const PrefetchConfig &cfg, CoreId core,
                               CacheHierarchy &hierarchy)
    : cfg_(cfg),
      core_(core),
      hierarchy_(hierarchy),
      prefetcher_(createPrefetcher(cfg)),
      queue_(cfg.queueSize),
      history_(cfg.historySize)
{
    if (prefetcher_)
        hierarchy_.setEvictionListener(core_, this);
    if (cfg.useConfidenceFilter)
        confidence_ = std::make_unique<ConfidenceFilter>(
            cfg.confidenceEntries, cfg.lineBytes,
            cfg.confidenceThreshold);
}

void
PrefetchEngine::credit(Addr lineAddr)
{
    auto it = origins_.find(lineAddr);
    if (it == origins_.end())
        return;
    ++usefulPrefetches;
    if (it->second.origin == PrefetchOrigin::Discontinuity)
        prefetcher_->prefetchUseful(it->second.tableIndex);
    origins_.erase(it);
}

void
PrefetchEngine::onDemandFetch(const DemandFetchEvent &event)
{
    if (!prefetcher_)
        return;

    history_.push(event.lineAddr);
    queue_.demandFetched(event.lineAddr);

    if (event.firstUseOfPrefetch || event.latePrefetchHit) {
        if (event.latePrefetchHit)
            ++latePrefetches;
        credit(event.lineAddr);
    }

    scratch_.clear();
    prefetcher_->onDemandFetch(event, scratch_);
    enqueueCandidates();
}

void
PrefetchEngine::onBranch(const BranchEvent &event)
{
    auto *wp = dynamic_cast<WrongPathPrefetcher *>(prefetcher_.get());
    if (!wp)
        return;
    scratch_.clear();
    wp->onBranch(event, scratch_);
    enqueueCandidates();
}

void
PrefetchEngine::onFunction(const FunctionEvent &event)
{
    auto *cg = dynamic_cast<CallGraphPrefetcher *>(prefetcher_.get());
    if (!cg)
        return;
    scratch_.clear();
    cg->onFunction(event, scratch_);
    enqueueCandidates();
}

void
PrefetchEngine::enqueueCandidates()
{
    candidates += scratch_.size();
    for (const auto &cand : scratch_) {
        if (history_.contains(cand.lineAddr)) {
            ++filteredRecent;
            continue;
        }
        queue_.push(cand);
    }
}

void
PrefetchEngine::tick(Cycle now, bool tagPortFree)
{
    if (!prefetcher_ || !tagPortFree)
        return;

    auto cand = queue_.popForIssue();
    if (!cand)
        return;

    if (confidence_) {
        // Confidence filtering [15]: gate on per-line confidence
        // counters instead of inspecting the cache tags.
        if (!confidence_->confident(cand->lineAddr)) {
            ++confidenceSuppressed;
            return;
        }
    } else {
        // Low-priority tag-port probe: is the line already resident?
        ++tagProbes;
        if (hierarchy_.probeL1I(core_, cand->lineAddr)) {
            ++tagProbeHits;
            return;
        }
    }

    PrefetchResult res =
        hierarchy_.prefetchRequest(core_, cand->lineAddr, now);
    switch (res.outcome) {
      case PrefetchOutcome::Issued:
      case PrefetchOutcome::Merged:
        ++issued;
        if (res.fromMemory)
            ++issuedOffChip;
        origins_[hierarchy_.lineOf(cand->lineAddr)] =
            Origin{cand->origin, cand->tableIndex};
        break;
      case PrefetchOutcome::DroppedPresent:
        ++tagProbeHits;
        // The line was resident after all: the confidence filter
        // learns this prefetch was ineffective.
        if (confidence_)
            confidence_->prefetchIneffective(cand->lineAddr);
        break;
      case PrefetchOutcome::DroppedInFlight:
        ++droppedInFlight;
        break;
    }
}

void
PrefetchEngine::instrLineEvicted(CoreId core, Addr lineAddr)
{
    (void)core;
    if (confidence_)
        confidence_->lineEvicted(lineAddr);
}

void
PrefetchEngine::prefetchedLineEvicted(CoreId core, Addr lineAddr,
                                      bool used)
{
    (void)core;
    if (!used) {
        ++uselessPrefetches;
        origins_.erase(lineAddr);
    } else {
        // Normally credited at first use; cover the rare case where
        // the line was used but the use event was not observed.
        origins_.erase(lineAddr);
    }
}

void
PrefetchEngine::registerStats(StatGroup &group)
{
    group.addCounter("candidates", &candidates);
    group.addCounter("filtered_recent", &filteredRecent);
    group.addCounter("tag_probes", &tagProbes);
    group.addCounter("tag_probe_hits", &tagProbeHits);
    group.addCounter("issued", &issued);
    group.addCounter("issued_offchip", &issuedOffChip);
    group.addCounter("dropped_inflight", &droppedInFlight);
    group.addCounter("confidence_suppressed", &confidenceSuppressed);
    group.addCounter("useful", &usefulPrefetches);
    group.addCounter("late", &latePrefetches);
    group.addCounter("useless", &uselessPrefetches);
    group.addFormula("accuracy", [this] { return accuracy(); },
                     "useful / issued");
    group.addCounter("queue_pushes", &queue_.pushes);
    group.addCounter("queue_hoists", &queue_.hoists);
    group.addCounter("queue_dup_drops", &queue_.duplicateDrops);
    group.addCounter("queue_overflow_drops", &queue_.overflowDrops);
    group.addCounter("queue_demand_invalidations",
                     &queue_.demandInvalidations);
}

} // namespace ipref
