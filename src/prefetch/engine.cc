#include "prefetch/engine.hh"

#include "prefetch/fetch_profiler.hh"
#include "util/metrics.hh"
#include "util/trace_event.hh"

namespace ipref
{

namespace
{

/**
 * Process-wide prefetch telemetry, summed across every engine (all
 * cores, all concurrent runs). Per-run attribution stays in the
 * StatGroup counters; these exist so ipref_top can show aggregate
 * issue/useful rates while a campaign executes.
 */
struct EngineMetricRefs
{
    metrics::Counter &issued;
    metrics::Counter &useful;
    metrics::Counter &useless;
    metrics::Gauge &inFlight;
};

EngineMetricRefs &
engineMetrics()
{
    static EngineMetricRefs refs{
        metrics::registry().counter("ipref_prefetch_issued_total",
                                    "prefetch fills started"),
        metrics::registry().counter(
            "ipref_prefetch_useful_total",
            "prefetched lines credited at first use"),
        metrics::registry().counter(
            "ipref_prefetch_useless_total",
            "prefetched lines evicted without use"),
        metrics::registry().gauge(
            "ipref_prefetch_in_flight",
            "issued, not yet used / evicted / replaced"),
    };
    return refs;
}

} // namespace

PrefetchEngine::PrefetchEngine(const PrefetchConfig &cfg, CoreId core,
                               CacheHierarchy &hierarchy)
    : cfg_(cfg),
      core_(core),
      hierarchy_(hierarchy),
      prefetcher_(createPrefetcher(cfg)),
      queue_(cfg.queueSize),
      history_(cfg.historySize)
{
    wrongPath_ = dynamic_cast<WrongPathPrefetcher *>(prefetcher_.get());
    callGraph_ = dynamic_cast<CallGraphPrefetcher *>(prefetcher_.get());
    if (prefetcher_)
        hierarchy_.setEvictionListener(core_, this);
    if (cfg.useConfidenceFilter)
        confidence_ = std::make_unique<ConfidenceFilter>(
            cfg.confidenceEntries, cfg.lineBytes,
            cfg.confidenceThreshold);
}

PrefetchEngine::~PrefetchEngine()
{
    // Lifecycles still unresolved at teardown leave the process-wide
    // in-flight gauge; without this, destroyed runs would pin it high.
    engineMetrics().inFlight.sub(
        static_cast<std::int64_t>(origins_.size()));
}

void
PrefetchEngine::credit(Addr lineAddr, Cycle now)
{
    auto it = origins_.find(lineAddr);
    if (it == origins_.end())
        return;
    const LivePrefetch &lp = it->second;
    ++usefulPrefetches;
    engineMetrics().useful.add(1);
    ++usefulByOrigin[static_cast<std::size_t>(lp.origin)];
    if (now >= lp.issuedAt)
        issueToUse_.add(now - lp.issuedAt);
    if (lp.origin == PrefetchOrigin::Discontinuity)
        prefetcher_->prefetchUseful(lp.tableIndex);
    IPREF_TRACE(TraceEventType::PrefetchUseful, core_, lineAddr,
                lp.id, static_cast<std::uint8_t>(lp.origin), now,
                lp.trigger);
    if (profiler_)
        profiler_->prefetchResolved(lp.trigger, lineAddr, lp.origin,
                                    true);
    lastCredit_ = {lineAddr, lp.origin, lp.id};
    origins_.erase(it);
    engineMetrics().inFlight.sub(1);
}

void
PrefetchEngine::notePartialStall(Addr lineAddr, std::uint64_t cycles,
                                 PrefetchOrigin origin)
{
    (void)lineAddr;
    ++partialStallEpisodes;
    partialStallCycles += cycles;
    partialExposed_.add(cycles);
    if (origin != PrefetchOrigin::NumOrigins)
        partialStallByOrigin[static_cast<std::size_t>(origin)] +=
            cycles;
}

void
PrefetchEngine::onDemandFetch(const DemandFetchEvent &event)
{
    // Site attribution is independent of any prefetcher being
    // configured: baseline (scheme none) runs profile misses too.
    if (profiler_ && event.miss)
        profiler_->demandMiss(event.lineAddr, event.transition);

    if (!prefetcher_)
        return;

    history_.push(event.lineAddr);
    std::uint64_t invBefore = queue_.demandInvalidations.value();
    queue_.demandFetched(event.lineAddr);
    if (queue_.demandInvalidations.value() != invBefore)
        IPREF_TRACE(TraceEventType::QueueInvalidate, core_,
                    event.lineAddr, 0, 0, event.now);

    if (event.firstUseOfPrefetch || event.latePrefetchHit) {
        if (event.latePrefetchHit)
            ++latePrefetches;
        credit(event.lineAddr, event.now);
    }

    scratch_.clear();
    prefetcher_->onDemandFetch(event, scratch_);
    enqueueCandidates(event.lineAddr);
}

void
PrefetchEngine::onBranch(const BranchEvent &event)
{
    if (!wrongPath_)
        return;
    scratch_.clear();
    wrongPath_->onBranch(event, scratch_);
    enqueueCandidates(hierarchy_.lineOf(event.branchPc));
}

void
PrefetchEngine::onFunction(const FunctionEvent &event)
{
    if (!callGraph_)
        return;
    scratch_.clear();
    callGraph_->onFunction(event, scratch_);
    enqueueCandidates(hierarchy_.lineOf(event.sitePc));
}

void
PrefetchEngine::enqueueCandidates(Addr defaultTrigger)
{
    candidates += scratch_.size();
    for (auto &cand : scratch_) {
        if (cand.triggerAddr == invalidAddr)
            cand.triggerAddr = defaultTrigger;
        if (history_.contains(cand.lineAddr)) {
            ++filteredRecent;
            continue;
        }
        if (queue_.push(cand) == PrefetchQueue::PushResult::Hoisted)
            IPREF_TRACE(TraceEventType::QueueHoist, core_,
                        cand.lineAddr);
    }
}

void
PrefetchEngine::issueOne(Cycle now)
{
    auto cand = queue_.popForIssue();
    if (!cand)
        return;

    if (confidence_) {
        // Confidence filtering [15]: gate on per-line confidence
        // counters instead of inspecting the cache tags.
        if (!confidence_->confident(cand->lineAddr)) {
            ++confidenceSuppressed;
            IPREF_TRACE(TraceEventType::PrefetchDrop, core_,
                        cand->lineAddr, 0, traceDropConfidence, now);
            return;
        }
    } else {
        // Low-priority tag-port probe: is the line already resident?
        ++tagProbes;
        if (hierarchy_.probeL1I(core_, cand->lineAddr)) {
            ++tagProbeHits;
            IPREF_TRACE(TraceEventType::PrefetchDrop, core_,
                        cand->lineAddr, 0, traceDropTagProbe, now);
            return;
        }
    }

    PrefetchResult res =
        hierarchy_.prefetchRequest(core_, cand->lineAddr, now);
    switch (res.outcome) {
      case PrefetchOutcome::Issued:
      case PrefetchOutcome::Merged: {
        ++issued;
        engineMetrics().issued.add(1);
        ++issuedByOrigin[static_cast<std::size_t>(cand->origin)];
        if (res.fromMemory)
            ++issuedOffChip;
        if (res.ready >= now)
            fillLatency_.add(res.ready - now);
        Addr line = hierarchy_.lineOf(cand->lineAddr);
        auto it = origins_.find(line);
        if (it != origins_.end()) {
            // A previous lifecycle for this line is still unresolved:
            // the new issue supersedes it.
            ++replacedInFlight;
            IPREF_TRACE(TraceEventType::PrefetchReplaced, core_, line,
                        it->second.id,
                        static_cast<std::uint8_t>(it->second.origin),
                        now, it->second.trigger);
            origins_.erase(it);
            engineMetrics().inFlight.sub(1);
        }
        LivePrefetch lp;
        lp.origin = cand->origin;
        lp.tableIndex = cand->tableIndex;
        lp.id = nextPrefetchId_++;
        lp.issuedAt = now;
        lp.trigger = cand->triggerAddr != invalidAddr
                         ? hierarchy_.lineOf(cand->triggerAddr)
                         : invalidAddr;
        IPREF_TRACE(TraceEventType::PrefetchIssue, core_, line, lp.id,
                    static_cast<std::uint8_t>(cand->origin), now,
                    lp.trigger);
        if (profiler_)
            profiler_->prefetchIssued(lp.trigger, line, lp.origin);
        origins_.emplace(line, lp);
        engineMetrics().inFlight.add(1);
        break;
      }
      case PrefetchOutcome::DroppedPresent:
        ++tagProbeHits;
        IPREF_TRACE(TraceEventType::PrefetchDrop, core_,
                    cand->lineAddr, 0, traceDropPresent, now);
        // The line was resident after all: the confidence filter
        // learns this prefetch was ineffective.
        if (confidence_)
            confidence_->prefetchIneffective(cand->lineAddr);
        break;
      case PrefetchOutcome::DroppedInFlight:
        ++droppedInFlight;
        IPREF_TRACE(TraceEventType::PrefetchDrop, core_,
                    cand->lineAddr, 0, traceDropInFlight, now);
        break;
    }
}

void
PrefetchEngine::instrLineEvicted(CoreId core, Addr lineAddr)
{
    (void)core;
    if (confidence_)
        confidence_->lineEvicted(lineAddr);
}

void
PrefetchEngine::prefetchedLineEvicted(CoreId core, Addr lineAddr,
                                      bool used)
{
    (void)core;
    auto it = origins_.find(lineAddr);
    if (!used) {
        ++uselessPrefetches;
        engineMetrics().useless.add(1);
        if (it != origins_.end()) {
            IPREF_TRACE(TraceEventType::PrefetchUseless, core_,
                        lineAddr, it->second.id,
                        static_cast<std::uint8_t>(it->second.origin),
                        TraceSink::traceNowHint, it->second.trigger);
            if (profiler_)
                profiler_->prefetchResolved(it->second.trigger,
                                            lineAddr,
                                            it->second.origin, false);
            origins_.erase(it);
            engineMetrics().inFlight.sub(1);
        } else {
            IPREF_TRACE(TraceEventType::PrefetchUseless, core_,
                        lineAddr, 0, 0, TraceSink::traceNowHint);
        }
    } else if (it != origins_.end()) {
        // Normally credited (and erased) at first use; the line was
        // used but the use event was not observed — close the
        // lifecycle as useful without a latency sample.
        ++uncreditedUseful;
        engineMetrics().useful.add(1);
        ++usefulByOrigin[static_cast<std::size_t>(it->second.origin)];
        IPREF_TRACE(TraceEventType::PrefetchUseful, core_, lineAddr,
                    it->second.id,
                    static_cast<std::uint8_t>(it->second.origin),
                    TraceSink::traceNowHint, it->second.trigger);
        if (profiler_)
            profiler_->prefetchResolved(it->second.trigger, lineAddr,
                                        it->second.origin, true);
        origins_.erase(it);
        engineMetrics().inFlight.sub(1);
    }
}

PrefetchEngine::Lifecycle
PrefetchEngine::lifecycle() const
{
    Lifecycle lc;
    lc.issued = issued.value();
    lc.useful = usefulPrefetches.value() + uncreditedUseful.value();
    lc.useless = uselessPrefetches.value();
    lc.inFlight = origins_.size();
    lc.dropped = replacedInFlight.value();
    return lc;
}

void
PrefetchEngine::registerStats(StatGroup &group)
{
    group.addCounter("candidates", &candidates);
    group.addCounter("filtered_recent", &filteredRecent);
    group.addCounter("tag_probes", &tagProbes);
    group.addCounter("tag_probe_hits", &tagProbeHits);
    group.addCounter("issued", &issued);
    group.addCounter("issued_offchip", &issuedOffChip);
    group.addCounter("dropped_inflight", &droppedInFlight);
    group.addCounter("confidence_suppressed", &confidenceSuppressed);
    group.addCounter("useful", &usefulPrefetches);
    group.addCounter("late", &latePrefetches);
    group.addCounter("useless", &uselessPrefetches);
    group.addCounter("uncredited_useful", &uncreditedUseful,
                     "evicted used without an observed use");
    group.addCounter("replaced_inflight", &replacedInFlight,
                     "lifecycles superseded by a re-issue");
    group.addCounter("partial_stall_episodes", &partialStallEpisodes,
                     "late prefetches that still stalled fetch");
    group.addCounter("partial_stall_cycles", &partialStallCycles,
                     "miss cycles a late prefetch left exposed");
    for (std::size_t i = 0;
         i < static_cast<std::size_t>(PrefetchOrigin::NumOrigins);
         ++i) {
        std::string origin =
            originName(static_cast<PrefetchOrigin>(i));
        group.addCounter("issued_by." + origin, &issuedByOrigin[i]);
        group.addCounter("useful_by." + origin, &usefulByOrigin[i]);
        group.addCounter("partial_stall_by." + origin,
                         &partialStallByOrigin[i]);
    }
    group.addFormula("accuracy", [this] { return accuracy(); },
                     "useful / issued");
    group.addFormula("in_flight",
                     [this] {
                         return static_cast<double>(origins_.size());
                     },
                     "issued, not yet used / evicted / replaced");
    group.addHistogram("issue_to_use_cycles", &issueToUse_,
                       "prefetch timeliness: issue to first use");
    group.addHistogram("fill_latency_cycles", &fillLatency_,
                       "prefetch issue to fill completion");
    group.addHistogram("partial_stall_exposed_cycles",
                       &partialExposed_,
                       "exposed stall cycles per late prefetch");
    group.addCounter("queue_pushes", &queue_.pushes);
    group.addCounter("queue_hoists", &queue_.hoists);
    group.addCounter("queue_dup_drops", &queue_.duplicateDrops);
    group.addCounter("queue_overflow_drops", &queue_.overflowDrops);
    group.addCounter("queue_demand_invalidations",
                     &queue_.demandInvalidations);
    group.addFormula("queue_waiting_high_water",
                     [this] {
                         return static_cast<double>(
                             queue_.waitingHighWater());
                     },
                     "most waiting prefetches ever queued at once");
}

} // namespace ipref
