#include "prefetch/call_graph.hh"

#include "util/bitutil.hh"
#include "util/error.hh"
#include "util/logging.hh"

namespace ipref
{

CallGraphPrefetcher::CallGraphPrefetcher(unsigned entries,
                                         unsigned calleeSlots,
                                         unsigned degree,
                                         unsigned lineBytes)
    : calleeSlots_(calleeSlots),
      degree_(degree),
      lineBytes_(lineBytes)
{
    if (!isPowerOfTwo(entries))
        ipref_raise(ConfigError, "call-graph table entries (%u) must be a power "
                    "of two", entries);
    ipref_assert(calleeSlots_ >= 1);
    ipref_assert(degree_ >= 1);
    table_.resize(entries);
    mask_ = entries - 1;
}

std::uint32_t
CallGraphPrefetcher::indexOf(Addr functionEntry) const
{
    std::uint64_t v = functionEntry >> 2;
    return static_cast<std::uint32_t>(
        (v ^ (v >> (floorLog2(static_cast<std::uint64_t>(mask_) + 1))))
        & mask_);
}

void
CallGraphPrefetcher::predictEntry(Addr functionEntry,
                                  std::vector<PrefetchCandidate> &out)
{
    ++predictions;
    Addr line = functionEntry & ~static_cast<Addr>(lineBytes_ - 1);
    for (unsigned i = 0; i < degree_; ++i) {
        PrefetchCandidate c;
        c.lineAddr = line + static_cast<Addr>(i) * lineBytes_;
        c.origin = PrefetchOrigin::TargetTable;
        out.push_back(c);
    }
}

void
CallGraphPrefetcher::onDemandFetch(const DemandFetchEvent &event,
                                   std::vector<PrefetchCandidate> &out)
{
    // Sequential component (next-line tagged): CGP relies on its
    // host's sequential prefetcher for straight-line misses.
    if (!event.taggedTrigger())
        return;
    PrefetchCandidate c;
    c.lineAddr = event.lineAddr + lineBytes_;
    c.origin = PrefetchOrigin::Sequential;
    out.push_back(c);
}

void
CallGraphPrefetcher::onFunction(const FunctionEvent &event,
                                std::vector<PrefetchCandidate> &out)
{
    if (event.isReturn) {
        if (!stack_.empty())
            stack_.pop_back();
        // Back in the caller: prefetch its next predicted callee.
        if (!stack_.empty()) {
            Frame &f = stack_.back();
            ++f.calleeIdx;
            const Entry &e = table_[indexOf(f.function)];
            if (e.valid && e.function == f.function &&
                f.calleeIdx < e.callees.size()) {
                ++tableHits;
                predictEntry(e.callees[f.calleeIdx], out);
            }
        }
        return;
    }

    Addr callee = event.target;

    // Learn: record the callee in the caller's sequence slot.
    if (!stack_.empty()) {
        Frame &f = stack_.back();
        Entry &e = table_[indexOf(f.function)];
        if (!e.valid || e.function != f.function) {
            e.valid = true;
            e.function = f.function;
            e.callees.clear();
        }
        if (f.calleeIdx < calleeSlots_) {
            if (e.callees.size() <= f.calleeIdx)
                e.callees.resize(f.calleeIdx + 1, 0);
            e.callees[f.calleeIdx] = callee;
        }
    }

    // Enter the callee; prefetch ITS first predicted callee.
    if (stack_.size() < maxStackDepth)
        stack_.push_back({callee, 0});
    const Entry &e = table_[indexOf(callee)];
    if (e.valid && e.function == callee && !e.callees.empty() &&
        e.callees[0]) {
        ++tableHits;
        predictEntry(e.callees[0], out);
    }
}

} // namespace ipref
