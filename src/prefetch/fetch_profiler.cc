#include "prefetch/fetch_profiler.hh"

#include "util/json.hh"

namespace ipref
{

void
FetchProfiler::registerStats(StatGroup &group)
{
    group.addCounter("misses_attributed", &missesAttributed,
                     "demand L1I misses seen by the site table");
    group.addCounter("issues_attributed", &issuesAttributed,
                     "prefetch issues attributed to a site");
    group.addFormula(
        "sites_tracked",
        [this] { return static_cast<double>(sites_.size()); });
    group.addFormula(
        "site_replacements",
        [this] { return static_cast<double>(sites_.replacements()); },
        "Space-Saving entries recycled (sketch pressure)");
    group.addFormula(
        "edges_tracked",
        [this] { return static_cast<double>(edges_.size()); });
    group.addFormula(
        "edge_replacements",
        [this] { return static_cast<double>(edges_.replacements()); });
}

void
FetchProfiler::dumpJson(std::ostream &os, std::size_t topN) const
{
    os << "{\n    \"site_capacity\": " << sites_.capacity()
       << ",\n    \"site_replacements\": " << sites_.replacements()
       << ",\n    \"edge_capacity\": " << edges_.capacity()
       << ",\n    \"edge_replacements\": " << edges_.replacements()
       << ",\n    \"sites\": [";
    bool first = true;
    for (const auto &e : sites_.top(topN)) {
        os << (first ? "\n" : ",\n")
           << "      {\"line\": \"" << jsonHex(e.key)
           << "\", \"touches\": " << e.count
           << ", \"error\": " << e.error
           << ", \"misses\": " << e.aux.misses
           << ", \"pf_issued\": " << e.aux.pfIssued
           << ", \"pf_useful\": " << e.aux.pfUseful
           << ", \"pf_useless\": " << e.aux.pfUseless
           << ", \"by_class\": {";
        bool firstClass = true;
        for (std::size_t t = 0; t < e.aux.missByTransition.size();
             ++t) {
            if (e.aux.missByTransition[t] == 0)
                continue;
            os << (firstClass ? "" : ", ")
               << jsonString(transitionName(
                      static_cast<FetchTransition>(t)))
               << ": " << e.aux.missByTransition[t];
            firstClass = false;
        }
        os << "}}";
        first = false;
    }
    os << (first ? "" : "\n    ") << "],\n    \"edges\": [";
    first = true;
    for (const auto &e : edges_.top(topN)) {
        os << (first ? "\n" : ",\n")
           << "      {\"src\": \"" << jsonHex(e.key.src)
           << "\", \"dst\": \"" << jsonHex(e.key.dst)
           << "\", \"issued\": " << e.aux.issued
           << ", \"useful\": " << e.aux.useful
           << ", \"useless\": " << e.aux.useless << "}";
        first = false;
    }
    os << (first ? "" : "\n    ") << "]\n  }";
}

} // namespace ipref
