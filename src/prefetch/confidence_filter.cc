#include "prefetch/confidence_filter.hh"

#include "util/bitutil.hh"
#include "util/error.hh"
#include "util/logging.hh"

namespace ipref
{

ConfidenceFilter::ConfidenceFilter(unsigned entries,
                                   unsigned lineBytes,
                                   std::uint8_t threshold,
                                   std::uint8_t initial)
    : threshold_(threshold)
{
    if (!isPowerOfTwo(entries))
        ipref_raise(ConfigError, "confidence filter entries (%u) must be a power "
                    "of two", entries);
    ipref_assert(threshold <= counterMax);
    ipref_assert(initial <= counterMax);
    table_.assign(entries, initial);
    lineShift_ = floorLog2(lineBytes);
    mask_ = entries - 1;
}

std::uint32_t
ConfidenceFilter::indexOf(Addr lineAddr) const
{
    std::uint64_t ln = lineAddr >> lineShift_;
    return static_cast<std::uint32_t>(
        (ln ^ (ln >> (floorLog2(static_cast<std::uint64_t>(mask_) + 1))))
        & mask_);
}

bool
ConfidenceFilter::confident(Addr lineAddr) const
{
    bool ok = table_[indexOf(lineAddr)] >= threshold_;
    if (!ok)
        const_cast<Counter &>(suppressed)++;
    return ok;
}

void
ConfidenceFilter::lineEvicted(Addr lineAddr)
{
    std::uint8_t &c = table_[indexOf(lineAddr)];
    if (c < counterMax) {
        ++c;
        ++increments;
    }
}

void
ConfidenceFilter::prefetchIneffective(Addr lineAddr)
{
    std::uint8_t &c = table_[indexOf(lineAddr)];
    if (c > 0) {
        --c;
        ++decrements;
    }
}

} // namespace ipref
