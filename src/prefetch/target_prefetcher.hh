/**
 * @file
 * Classic history-based target prefetcher (Smith & Hsu [1,5]):
 * a table maps each fetched line to the next line(s) that followed it
 * in the past; on every demand fetch the table is probed with the
 * active line and prefetches are issued for the remembered
 * successors. Retains multiple targets per entry — the baseline the
 * paper's single-target, miss-allocated design is contrasted with.
 */

#ifndef IPREF_PREFETCH_TARGET_PREFETCHER_HH
#define IPREF_PREFETCH_TARGET_PREFETCHER_HH

#include <vector>

#include "prefetch/prefetcher.hh"
#include "util/stats.hh"

namespace ipref
{

/** Multi-target history prefetcher. */
class TargetPrefetcher : public InstructionPrefetcher
{
  public:
    /**
     * @param entries    table entries (power of two)
     * @param ways       targets remembered per entry
     * @param lineBytes  L1I line size
     * @param nonSeqOnly record only non-sequential successors (the
     *                   usual space optimization)
     */
    TargetPrefetcher(unsigned entries, unsigned ways,
                     unsigned lineBytes, bool nonSeqOnly = true);

    void onDemandFetch(const DemandFetchEvent &event,
                       std::vector<PrefetchCandidate> &out) override;

    const char *name() const override { return "target"; }

    Counter tableHits;
    Counter tableMisses;

  private:
    struct Way
    {
        Addr target = 0;
        std::uint32_t lastUse = 0;
        bool valid = false;
    };
    struct Entry
    {
        Addr trigger = 0;
        bool valid = false;
        std::vector<Way> ways;
    };

    std::uint32_t indexOf(Addr line) const;
    void record(Addr trigger, Addr target);

    std::vector<Entry> table_;
    unsigned ways_;
    unsigned lineShift_;
    std::uint32_t mask_;
    bool nonSeqOnly_;
    std::uint32_t useClock_ = 0;

    Addr lastLine_ = invalidAddr;
};

} // namespace ipref

#endif // IPREF_PREFETCH_TARGET_PREFETCHER_HH
