#include "prefetch/next_line.hh"

#include "util/logging.hh"

namespace ipref
{

NextLinePrefetcher::NextLinePrefetcher(Policy policy, unsigned degree,
                                       unsigned lineBytes,
                                       bool lookahead)
    : policy_(policy),
      degree_(degree),
      lineBytes_(lineBytes),
      lookahead_(lookahead)
{
    ipref_assert(degree_ >= 1);
    ipref_assert(lineBytes_ >= 4);
}

void
NextLinePrefetcher::onDemandFetch(const DemandFetchEvent &event,
                                  std::vector<PrefetchCandidate> &out)
{
    bool trigger = false;
    switch (policy_) {
      case Policy::Always:
        trigger = true;
        break;
      case Policy::OnMiss:
        trigger = event.miss;
        break;
      case Policy::Tagged:
        trigger = event.taggedTrigger();
        break;
    }
    if (!trigger)
        return;

    if (lookahead_) {
        PrefetchCandidate c;
        c.lineAddr = event.lineAddr +
                     static_cast<Addr>(degree_) * lineBytes_;
        c.origin = PrefetchOrigin::Sequential;
        out.push_back(c);
        return;
    }
    for (unsigned i = 1; i <= degree_; ++i) {
        PrefetchCandidate c;
        c.lineAddr = event.lineAddr +
                     static_cast<Addr>(i) * lineBytes_;
        c.origin = PrefetchOrigin::Sequential;
        out.push_back(c);
    }
}

const char *
NextLinePrefetcher::name() const
{
    if (lookahead_)
        return "lookahead-N";
    switch (policy_) {
      case Policy::Always:
        return "next-line (always)";
      case Policy::OnMiss:
        return "next-line (on miss)";
      case Policy::Tagged:
        return degree_ == 1 ? "next-line (tagged)"
                            : "next-N-lines (tagged)";
    }
    return "?";
}

} // namespace ipref
