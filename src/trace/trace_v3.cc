#include "trace/trace_v3.hh"

#include <algorithm>
#include <cstring>

#include "trace/wire.hh"
#include "util/crc32.hh"
#include "util/varint.hh"

namespace ipref
{

using namespace tracewire;

namespace
{

/** Block frame: u32 payload bytes + u32 payload CRC. */
constexpr std::size_t v3FrameBytes = 8;

/**
 * Upper bound on one record's encoded size (worst case: 10-byte
 * varints everywhere) — used to sanity-check frame headers before
 * trusting their payload size.
 */
constexpr std::size_t v3MaxRecordEncoded = 36;

/**
 * Unchecked LEB128 decode for the hot column loops. Only legal while
 * the cursor is at least 10 bytes (one maximal varint) from the end
 * of the payload; the loops fall back to the bounds-checked cursor
 * for the tail.
 */
inline std::uint64_t
uvarintUnchecked(const unsigned char *&p)
{
    std::uint64_t b = *p++;
    if (b < 0x80)
        return b;
    std::uint64_t v = b & 0x7f;
    unsigned shift = 7;
    do {
        b = *p++;
        v |= (b & 0x7f) << shift;
        shift += 7;
    } while ((b & 0x80) != 0 && shift < 70);
    return v;
}

inline std::int64_t
svarintUnchecked(const unsigned char *&p)
{
    return zigzagDecode(uvarintUnchecked(p));
}

TraceError::Context
fileContext(const std::string &path, std::uint64_t byteOffset,
            std::uint64_t recordIndex)
{
    TraceError::Context ctx;
    ctx.path = path;
    ctx.byteOffset = byteOffset;
    ctx.recordIndex = recordIndex;
    return ctx;
}

} // namespace

void
encodeTraceBlockV3(std::span<const InstrRecord> records,
                   bool dataAddresses, std::vector<unsigned char> &out)
{
    out.clear();
    const std::size_t n = records.size();
    if (n == 0)
        return;

    // pc column: absolute first, deltas after.
    putVarint(out, records[0].pc);
    for (std::size_t i = 1; i < n; ++i)
        putSvarint(out, static_cast<std::int64_t>(records[i].pc -
                                                  records[i - 1].pc));

    // op column: run-length pairs.
    std::size_t i = 0;
    while (i < n) {
        std::size_t run = 1;
        while (i + run < n && records[i + run].op == records[i].op)
            ++run;
        out.push_back(static_cast<unsigned char>(records[i].op));
        putVarint(out, run);
        i += run;
    }

    // taken bitmap.
    std::size_t bitmapAt = out.size();
    out.resize(out.size() + (n + 7) / 8, 0);
    for (std::size_t r = 0; r < n; ++r) {
        if (records[r].taken)
            out[bitmapAt + r / 8] |=
                static_cast<unsigned char>(1u << (r % 8));
    }

    // target column: presence bitmap + per-present pc-relative delta.
    bitmapAt = out.size();
    out.resize(out.size() + (n + 7) / 8, 0);
    for (std::size_t r = 0; r < n; ++r) {
        if (records[r].target != 0)
            out[bitmapAt + r / 8] |=
                static_cast<unsigned char>(1u << (r % 8));
    }
    for (std::size_t r = 0; r < n; ++r) {
        if (records[r].target != 0)
            putSvarint(out,
                       static_cast<std::int64_t>(records[r].target -
                                                 records[r].pc));
    }

    // data-address column (optional): presence bitmap + deltas from
    // the previous present address (strided data encodes small).
    if (dataAddresses) {
        bitmapAt = out.size();
        out.resize(out.size() + (n + 7) / 8, 0);
        for (std::size_t r = 0; r < n; ++r) {
            if (records[r].dataAddr != 0)
                out[bitmapAt + r / 8] |=
                    static_cast<unsigned char>(1u << (r % 8));
        }
        Addr prev = 0;
        for (std::size_t r = 0; r < n; ++r) {
            if (records[r].dataAddr == 0)
                continue;
            putSvarint(out, static_cast<std::int64_t>(
                                records[r].dataAddr - prev));
            prev = records[r].dataAddr;
        }
    }

    // register column: raw (src0, src1, dst) triples.
    for (std::size_t r = 0; r < n; ++r) {
        out.push_back(records[r].srcReg[0]);
        out.push_back(records[r].srcReg[1]);
        out.push_back(records[r].dstReg);
    }
}

void
decodeTraceBlockV3(const unsigned char *payload,
                   std::size_t payloadBytes, std::size_t n,
                   bool dataAddresses, std::vector<InstrRecord> &out)
{
    out.resize(n);
    if (n == 0)
        return;
    VarintCursor cur(payload, payload + payloadBytes);

    auto malformed = [](const char *what) -> void {
        throw TraceError(std::string("malformed v3 block: ") + what);
    };

    // Hot loops decode unchecked while at least one maximal varint
    // from the payload end, falling back to the bounds-checked cursor
    // for the tail; `safe` marks that boundary.
    const unsigned char *safe =
        payloadBytes > 10 ? payload + payloadBytes - 10 : payload;

    // pc column (running value kept in a register, not re-read from
    // the output array).
    std::uint64_t pc0 = 0;
    if (!cur.getVarint(pc0))
        malformed("truncated pc column");
    Addr pc = pc0;
    out[0].pc = pc;
    {
        std::size_t r = 1;
        while (r < n && cur.pos < safe) {
            pc += static_cast<Addr>(svarintUnchecked(cur.pos));
            out[r++].pc = pc;
        }
        for (; r < n; ++r) {
            std::int64_t d = 0;
            if (!cur.getSvarint(d))
                malformed("truncated pc column");
            pc += static_cast<Addr>(d);
            out[r].pc = pc;
        }
    }

    // op column.
    std::size_t filled = 0;
    while (filled < n) {
        const unsigned char *opb = cur.getBytes(1);
        std::uint64_t run = 0;
        if (!opb || !cur.getVarint(run))
            malformed("truncated op column");
        if (*opb >= static_cast<unsigned char>(OpClass::NumOpClasses))
            throw TraceError(detail::formatMessage(
                "invalid op class byte 0x%02x in v3 block", *opb));
        if (run == 0 || run > n - filled)
            malformed("op run overflows block");
        OpClass op = static_cast<OpClass>(*opb);
        for (std::uint64_t k = 0; k < run; ++k)
            out[filled + k].op = op;
        filled += static_cast<std::size_t>(run);
    }

    // taken bitmap, one byte (8 records) per iteration.
    const unsigned char *taken = cur.getBytes((n + 7) / 8);
    if (!taken)
        malformed("truncated taken bitmap");
    for (std::size_t r = 0; r < n; r += 8) {
        unsigned bits = taken[r / 8];
        std::size_t lim = std::min<std::size_t>(8, n - r);
        for (std::size_t k = 0; k < lim; ++k)
            out[r + k].taken = (bits >> k) & 1;
    }

    // target column: most records are not CTIs, so whole-zero
    // presence bytes short-circuit to a zero-fill of 8 targets.
    const unsigned char *tpresent = cur.getBytes((n + 7) / 8);
    if (!tpresent)
        malformed("truncated target bitmap");
    for (std::size_t r = 0; r < n; r += 8) {
        unsigned bits = tpresent[r / 8];
        std::size_t lim = std::min<std::size_t>(8, n - r);
        if (bits == 0) {
            for (std::size_t k = 0; k < lim; ++k)
                out[r + k].target = 0;
            continue;
        }
        for (std::size_t k = 0; k < lim; ++k) {
            if (((bits >> k) & 1) == 0) {
                out[r + k].target = 0;
                continue;
            }
            std::int64_t d = 0;
            if (cur.pos < safe) {
                d = svarintUnchecked(cur.pos);
            } else if (!cur.getSvarint(d)) {
                malformed("truncated target column");
            }
            out[r + k].target = out[r + k].pc + static_cast<Addr>(d);
        }
    }

    // data-address column, same byte-at-a-time shape as targets.
    if (dataAddresses) {
        const unsigned char *dpresent = cur.getBytes((n + 7) / 8);
        if (!dpresent)
            malformed("truncated data-address bitmap");
        Addr prev = 0;
        for (std::size_t r = 0; r < n; r += 8) {
            unsigned bits = dpresent[r / 8];
            std::size_t lim = std::min<std::size_t>(8, n - r);
            if (bits == 0) {
                for (std::size_t k = 0; k < lim; ++k)
                    out[r + k].dataAddr = 0;
                continue;
            }
            for (std::size_t k = 0; k < lim; ++k) {
                if (((bits >> k) & 1) == 0) {
                    out[r + k].dataAddr = 0;
                    continue;
                }
                std::int64_t d = 0;
                if (cur.pos < safe) {
                    d = svarintUnchecked(cur.pos);
                } else if (!cur.getSvarint(d)) {
                    malformed("truncated data-address column");
                }
                prev += static_cast<Addr>(d);
                out[r + k].dataAddr = prev;
            }
        }
    } else {
        for (std::size_t r = 0; r < n; ++r)
            out[r].dataAddr = 0;
    }

    // register column.
    const unsigned char *regs = cur.getBytes(3 * n);
    if (!regs)
        malformed("truncated register column");
    for (std::size_t r = 0; r < n; ++r) {
        out[r].srcReg[0] = regs[3 * r + 0];
        out[r].srcReg[1] = regs[3 * r + 1];
        out[r].dstReg = regs[3 * r + 2];
    }

    if (cur.remaining() != 0)
        malformed("trailing bytes after the register column");
}

// --- MappedTraceReader ------------------------------------------------

MappedTraceReader::MappedTraceReader(const std::string &path,
                                     TraceReadMode mode)
    : map_(path), path_(path), mode_(mode)
{
    if (map_.size() < traceV3HeaderBytes)
        throw TraceError("trace file too short for a v3 header",
                         fileContext(path_, map_.size(), 0));
    const unsigned char *hdr = map_.data();
    if (!isMagic(hdr, magicV3))
        throw TraceError("not a v3 trace file (bad magic)",
                         fileContext(path_, 0, 0));
    // A damaged header leaves nothing trustworthy to salvage, so this
    // throws even in tolerant mode.
    if (get32(hdr + 44) != crc32(hdr, 44))
        throw TraceError("trace header CRC mismatch",
                         fileContext(path_, 44, 0));
    count_ = get64(hdr + 8);
    blockRecords_ = get32(hdr + 16);
    std::uint32_t flags = get32(hdr + 20);
    hasData_ = (flags & traceV3FlagDataAddr) != 0;
    if (blockRecords_ == 0)
        throw TraceError("invalid trace block size",
                         fileContext(path_, 16, 0));
    reset();
}

bool
MappedTraceReader::damaged(const TraceError &err)
{
    if (mode_ == TraceReadMode::Strict)
        throw err;
    corrupt_ = true;
    ended_ = true;
    detail_ = err.what();
    return false;
}

bool
MappedTraceReader::decodeBlockAt(std::uint64_t fileOff,
                                 std::uint64_t firstRecord,
                                 std::vector<InstrRecord> &out,
                                 std::uint64_t &nextOff)
{
    std::uint64_t remaining = count_ - firstRecord;
    if (remaining == 0)
        return false;
    std::uint64_t n = std::min<std::uint64_t>(remaining, blockRecords_);

    if (fileOff + v3FrameBytes > map_.size())
        return damaged(TraceError(
            "truncated trace file (missing block frame)",
            fileContext(path_, map_.size(), firstRecord)));
    const unsigned char *frame = map_.data() + fileOff;
    std::uint32_t payloadBytes = get32(frame);
    std::uint32_t payloadCrc = get32(frame + 4);

    // The frame header is not separately checksummed: bound it before
    // trusting it, so a flipped size byte reads as damage instead of
    // a wild allocation or out-of-bounds CRC scan.
    if (payloadBytes >
            static_cast<std::uint64_t>(n) * v3MaxRecordEncoded ||
        fileOff + v3FrameBytes + payloadBytes > map_.size())
        return damaged(TraceError(
            "implausible v3 block size (corrupt frame header or "
            "truncated file)",
            fileContext(path_, fileOff, firstRecord)));

    const unsigned char *payload = frame + v3FrameBytes;
    if (crc32Sliced(payload, payloadBytes) != payloadCrc)
        return damaged(
            TraceError("trace block CRC mismatch",
                       fileContext(path_, fileOff, firstRecord)));

    try {
        decodeTraceBlockV3(payload, payloadBytes,
                           static_cast<std::size_t>(n), hasData_, out);
    } catch (const TraceError &e) {
        return damaged(TraceError(
            e.what(), fileContext(path_, fileOff, firstRecord)));
    }
    nextOff = fileOff + v3FrameBytes + payloadBytes;
    return true;
}

bool
MappedTraceReader::advance()
{
    if (!haveAhead_) {
        cur_.clear();
        curPos_ = 0;
        return false;
    }
    cur_.swap(ahead_);
    curPos_ = 0;
    std::uint64_t firstRecord = aheadFirst_ + cur_.size();
    std::uint64_t nextOff = 0;
    if (!ended_ &&
        decodeBlockAt(aheadOff_, firstRecord, ahead_, nextOff)) {
        aheadOff_ = nextOff;
        aheadFirst_ = firstRecord;
        haveAhead_ = true;
    } else {
        ahead_.clear();
        haveAhead_ = false;
    }
    return !cur_.empty();
}

bool
MappedTraceReader::next(InstrRecord &out)
{
    if (curPos_ >= cur_.size() && !advance())
        return false;
    out = cur_[curPos_++];
    ++deliveredTotal_;
    return true;
}

std::size_t
MappedTraceReader::nextBatch(std::span<InstrRecord> out)
{
    std::size_t n = 0;
    while (n < out.size()) {
        if (curPos_ >= cur_.size() && !advance())
            break;
        std::size_t take =
            std::min(out.size() - n, cur_.size() - curPos_);
        std::memcpy(out.data() + n, cur_.data() + curPos_,
                    take * sizeof(InstrRecord));
        curPos_ += take;
        n += take;
    }
    deliveredTotal_ += n;
    return n;
}

void
MappedTraceReader::reset()
{
    cur_.clear();
    curPos_ = 0;
    deliveredTotal_ = 0;
    corrupt_ = false;
    ended_ = false;
    detail_.clear();

    // Prime the decode-ahead pipeline: the first consumed block is
    // decoded now, and every advance() keeps one decoded block in
    // front of the consumer.
    std::uint64_t nextOff = 0;
    if (decodeBlockAt(traceV3HeaderBytes, 0, ahead_, nextOff)) {
        haveAhead_ = true;
        aheadOff_ = nextOff;
        aheadFirst_ = 0;
    } else {
        ahead_.clear();
        haveAhead_ = false;
    }
}

// --- version-sniffing factory ----------------------------------------

std::unique_ptr<TraceReader>
openTraceReader(const std::string &path, TraceReadMode mode)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        throw TraceError("cannot open trace file",
                         fileContext(path, 0, 0));
    unsigned char magic[magicBytes] = {};
    std::size_t got = std::fread(magic, 1, magicBytes, f);
    std::fclose(f);
    if (got != magicBytes)
        throw TraceError("trace file too short for a header",
                         fileContext(path, got, 0));
    if (isMagic(magic, magicV3))
        return std::make_unique<MappedTraceReader>(path, mode);
    return std::make_unique<TraceFileReader>(path, mode);
}

} // namespace ipref
