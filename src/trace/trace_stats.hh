/**
 * @file
 * Trace summarizer: instruction mix, CTI/transition breakdown, and
 * footprint estimates for a TraceSource.
 */

#ifndef IPREF_TRACE_TRACE_STATS_HH
#define IPREF_TRACE_TRACE_STATS_HH

#include <array>
#include <cstdint>
#include <ostream>

#include "trace/record.hh"
#include "trace/trace_source.hh"

namespace ipref
{

/** Aggregate statistics of an instruction stream. */
struct TraceSummary
{
    std::uint64_t instructions = 0;
    std::array<std::uint64_t,
               static_cast<std::size_t>(OpClass::NumOpClasses)> opCounts{};
    std::array<std::uint64_t,
               static_cast<std::size_t>(FetchTransition::NumTransitions)>
        lineTransitions{}; //!< transitions into a *new* 64B line
    std::uint64_t takenCondBranches = 0;
    std::uint64_t condBranches = 0;
    std::uint64_t codeLinesTouched = 0;  //!< unique 64B code lines
    std::uint64_t dataLinesTouched = 0;  //!< unique 64B data lines

    /** Fraction of instructions of class @p op. */
    double opFraction(OpClass op) const;

    /** Fraction of line transitions that are non-sequential. */
    double discontinuityFraction() const;

    /** Pretty-print the summary. */
    void print(std::ostream &os) const;
};

/**
 * Consume up to @p maxInstrs records from @p src and summarize them.
 * Uses 64-byte lines for transition/footprint accounting.
 */
TraceSummary summarizeTrace(TraceSource &src,
                            std::uint64_t maxInstrs = ~std::uint64_t{0});

} // namespace ipref

#endif // IPREF_TRACE_TRACE_STATS_HH
