/**
 * @file
 * The instruction record: the unit of information flowing from a
 * workload/trace into the simulator.
 *
 * The record carries the SPARC-flavoured control-transfer taxonomy the
 * paper's Figure 3 uses: conditional branches (taken-forward,
 * taken-backward, not-taken), unconditional branches, and function
 * calls implemented with call / (indirect) jump / return instructions,
 * plus traps.
 */

#ifndef IPREF_TRACE_RECORD_HH
#define IPREF_TRACE_RECORD_HH

#include <cstdint>
#include <string>

#include "util/types.hh"

namespace ipref
{

/** Fixed instruction size (SPARC-like RISC encoding). */
inline constexpr Addr instrBytes = 4;

/** Broad instruction classes; CTI classes mirror the paper's taxonomy. */
enum class OpClass : std::uint8_t
{
    IntAlu,       //!< single-cycle integer op
    IntMul,       //!< multi-cycle integer op
    FpAlu,        //!< floating-point op
    Load,         //!< memory read
    Store,        //!< memory write
    CondBranch,   //!< PC-relative conditional branch
    UncondBranch, //!< PC-relative unconditional branch
    Call,         //!< direct call (target embedded in instruction)
    Jump,         //!< indirect jump (register target; indirect calls)
    Return,       //!< function return (register target)
    Trap,         //!< trap into the (simulated) kernel
    NumOpClasses
};

/** Human-readable op class name. */
const char *opClassName(OpClass op);

/**
 * Category of the fetch-stream transition *into* a cache line; used
 * to attribute instruction misses (paper Figure 3).
 */
enum class FetchTransition : std::uint8_t
{
    Sequential,    //!< fall-through from the previous line
    CondNotTaken,  //!< line entered past a not-taken conditional branch
    CondTakenFwd,  //!< taken conditional branch, forward target
    CondTakenBack, //!< taken conditional branch, backward target
    UncondBranch,
    Call,
    Jump,
    Return,
    Trap,
    NumTransitions
};

/** Human-readable transition name (matches Fig. 3 legend). */
const char *transitionName(FetchTransition t);

/** Coarse grouping used by the limit study (paper Figure 4). */
enum class MissGroup : std::uint8_t
{
    Sequential, //!< Sequential
    Branch,     //!< conditional (all outcomes) + unconditional branches
    Function,   //!< call + jump + return
    Trap,
    NumGroups
};

/** Map a transition to its limit-study group. */
MissGroup missGroup(FetchTransition t);

/** One dynamic instruction. */
struct InstrRecord
{
    Addr pc = 0;                //!< instruction address
    Addr target = 0;            //!< next PC if this is a taken CTI
    Addr dataAddr = 0;          //!< effective address for Load/Store
    OpClass op = OpClass::IntAlu;
    bool taken = false;         //!< outcome for CondBranch (true for
                                //!< unconditional CTIs)
    std::uint8_t srcReg[2] = {0, 0}; //!< source architectural registers
    std::uint8_t dstReg = 0;         //!< destination register (0 = none)

    /** Is this a control-transfer instruction? */
    bool
    isCti() const
    {
        return op == OpClass::CondBranch || op == OpClass::UncondBranch ||
               op == OpClass::Call || op == OpClass::Jump ||
               op == OpClass::Return || op == OpClass::Trap;
    }

    /** Is this a memory instruction? */
    bool isMem() const { return op == OpClass::Load || op == OpClass::Store; }

    /** Does this CTI redirect the fetch stream? */
    bool
    redirects() const
    {
        return isCti() && (op != OpClass::CondBranch || taken);
    }

    /** Address of the next dynamic instruction. */
    Addr
    nextPc() const
    {
        return redirects() ? target : pc + instrBytes;
    }

    /**
     * Transition category caused by this instruction when the *next*
     * instruction lands in a different cache line.
     */
    FetchTransition transitionType() const;
};

} // namespace ipref

#endif // IPREF_TRACE_RECORD_HH
