#include "trace/record.hh"

#include "util/error.hh"
#include "util/logging.hh"

namespace ipref
{

const char *
opClassName(OpClass op)
{
    switch (op) {
      case OpClass::IntAlu: return "IntAlu";
      case OpClass::IntMul: return "IntMul";
      case OpClass::FpAlu: return "FpAlu";
      case OpClass::Load: return "Load";
      case OpClass::Store: return "Store";
      case OpClass::CondBranch: return "CondBranch";
      case OpClass::UncondBranch: return "UncondBranch";
      case OpClass::Call: return "Call";
      case OpClass::Jump: return "Jump";
      case OpClass::Return: return "Return";
      case OpClass::Trap: return "Trap";
      default: return "?";
    }
}

const char *
transitionName(FetchTransition t)
{
    switch (t) {
      case FetchTransition::Sequential: return "Sequential";
      case FetchTransition::CondNotTaken: return "Cond branch (nt)";
      case FetchTransition::CondTakenFwd: return "Cond branch (tf)";
      case FetchTransition::CondTakenBack: return "Cond branch (tb)";
      case FetchTransition::UncondBranch: return "Uncond branch";
      case FetchTransition::Call: return "Call";
      case FetchTransition::Jump: return "Jump";
      case FetchTransition::Return: return "Return";
      case FetchTransition::Trap: return "Trap";
      default: return "?";
    }
}

MissGroup
missGroup(FetchTransition t)
{
    switch (t) {
      case FetchTransition::Sequential:
        return MissGroup::Sequential;
      case FetchTransition::CondNotTaken:
      case FetchTransition::CondTakenFwd:
      case FetchTransition::CondTakenBack:
      case FetchTransition::UncondBranch:
        return MissGroup::Branch;
      case FetchTransition::Call:
      case FetchTransition::Jump:
      case FetchTransition::Return:
        return MissGroup::Function;
      case FetchTransition::Trap:
        return MissGroup::Trap;
      default:
        // Out-of-range values come from untrusted bytes (a trace
        // file, a parsed event log), so this is recoverable — the
        // readers validate at decode time, and anything that slips
        // through poisons one run, not the process.
        ipref_raise(InvariantError, "bad transition %d",
                    static_cast<int>(t));
    }
}

FetchTransition
InstrRecord::transitionType() const
{
    switch (op) {
      case OpClass::CondBranch:
        if (!taken)
            return FetchTransition::CondNotTaken;
        return target > pc ? FetchTransition::CondTakenFwd
                           : FetchTransition::CondTakenBack;
      case OpClass::UncondBranch:
        return FetchTransition::UncondBranch;
      case OpClass::Call:
        return FetchTransition::Call;
      case OpClass::Jump:
        return FetchTransition::Jump;
      case OpClass::Return:
        return FetchTransition::Return;
      case OpClass::Trap:
        return FetchTransition::Trap;
      default:
        return FetchTransition::Sequential;
    }
}

} // namespace ipref
