/**
 * @file
 * Binary trace file format: a fixed header followed by fixed-width
 * little-endian records. Simple, seekable, and dependency-free.
 *
 * v2 layout (written by TraceFileWriter):
 *   header (44B): magic "IPRTRC02" (8B), record count (8B),
 *                 records per block (4B), record size (4B),
 *                 reserved (16B), CRC32 of the first 40 bytes (4B)
 *   blocks: up to blockRecords records (29B each, see below),
 *           followed by the CRC32 of the block payload (4B)
 *   record: pc (8B), target (8B), dataAddr (8B), op (1B),
 *           flags (1B: bit0 = taken), src0, src1, dst (3B) = 29 bytes
 *
 * v1 layout (magic "IPRTRC01", still readable): 32-byte header with
 * no checksums, records back to back.
 *
 * Corruption, truncation and undecodable bytes surface as TraceError
 * (with byte offset and record index) — never as a process abort and
 * never as garbage records. TraceReadMode::Tolerant instead ends the
 * stream at the last intact block and reports what was salvaged.
 */

#ifndef IPREF_TRACE_TRACE_FILE_HH
#define IPREF_TRACE_TRACE_FILE_HH

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "trace/record.hh"
#include "trace/trace_source.hh"
#include "util/error.hh"

namespace ipref
{

/** Size in bytes of one on-disk record. */
inline constexpr std::size_t traceRecordBytes = 29;

/** Default records per CRC-protected block (v2). */
inline constexpr std::uint32_t traceDefaultBlockRecords = 256;

/** Streams InstrRecords into a binary trace file (v2 format). */
class TraceFileWriter
{
  public:
    /**
     * Open @p path for writing; throws TraceError (with errno
     * context) on failure. @p blockRecords sets the CRC block
     * granularity — smaller blocks waste more bytes but salvage more
     * data from a damaged file.
     */
    explicit TraceFileWriter(const std::string &path,
                             std::uint32_t blockRecords =
                                 traceDefaultBlockRecords);
    ~TraceFileWriter();

    TraceFileWriter(const TraceFileWriter &) = delete;
    TraceFileWriter &operator=(const TraceFileWriter &) = delete;

    /** Append one record; throws TraceError on I/O failure. */
    void write(const InstrRecord &rec);

    /**
     * Flush the trailing block, rewrite the header with the final
     * count, and verify the flush and close succeeded — a disk-full
     * truncation is reported here (as TraceError), not at next read.
     */
    void close();

    /** Records written so far. */
    std::uint64_t count() const { return count_; }

  private:
    void writeHeader();
    void flushBlock();

    std::FILE *file_ = nullptr;
    std::string path_;
    std::uint64_t count_ = 0;
    std::uint32_t blockRecords_;
    std::vector<unsigned char> block_; //!< pending block payload
    bool closed_ = false;
};

/** How TraceFileReader treats a damaged file. */
enum class TraceReadMode
{
    Strict,  //!< any corruption throws TraceError
    Tolerant //!< end the stream at the valid prefix; see corrupt()
};

/** Reads a binary trace file (v1 or v2) as a TraceSource. */
class TraceFileReader : public TraceSource
{
  public:
    /**
     * Open @p path; throws TraceError on a missing file or a bad /
     * corrupt header (a damaged header leaves nothing to salvage,
     * even in tolerant mode).
     */
    explicit TraceFileReader(const std::string &path,
                             TraceReadMode mode = TraceReadMode::Strict);
    ~TraceFileReader() override;

    TraceFileReader(const TraceFileReader &) = delete;
    TraceFileReader &operator=(const TraceFileReader &) = delete;

    /**
     * Produce the next record. On corruption: throws TraceError
     * (Strict) or ends the stream and sets corrupt() (Tolerant).
     */
    bool next(InstrRecord &out) override;
    void reset() override;

    /** Total records promised by the header. */
    std::uint64_t count() const { return count_; }

    /** Format version (1 or 2). */
    unsigned version() const { return version_; }

    /** Tolerant mode: did the stream end early on corruption? */
    bool corrupt() const { return corrupt_; }

    /** Tolerant mode: human-readable description of the damage. */
    const std::string &corruptionDetail() const { return detail_; }

    /** Records successfully delivered since open/reset. */
    std::uint64_t delivered() const { return pos_; }

  private:
    /** Load and verify the next block into block_; false on EOF. */
    bool loadBlock();

    /** Raise @p err (Strict) or record it and end the stream. */
    bool damaged(const TraceError &err);

    std::FILE *file_ = nullptr;
    std::string path_;
    TraceReadMode mode_;
    unsigned version_ = 2;
    std::uint64_t count_ = 0;
    std::uint64_t pos_ = 0;       //!< records delivered
    std::uint32_t blockRecords_ = 0;
    std::uint64_t dataStart_ = 0; //!< file offset of the first block

    std::vector<unsigned char> block_; //!< verified block payload
    std::size_t blockPos_ = 0;         //!< consumed bytes in block_
    std::uint64_t blockFileOff_ = 0;   //!< file offset of block_

    bool corrupt_ = false;
    bool ended_ = false;
    std::string detail_;
};

} // namespace ipref

#endif // IPREF_TRACE_TRACE_FILE_HH
