/**
 * @file
 * Binary trace file format: a fixed header followed by fixed-width
 * little-endian records. Simple, seekable, and dependency-free.
 *
 * Layout:
 *   header: magic "IPRTRC01" (8B), record count (8B), reserved (16B)
 *   record: pc (8B), target (8B), dataAddr (8B), op (1B),
 *           flags (1B: bit0 = taken), src0, src1, dst (3B) = 29 bytes
 */

#ifndef IPREF_TRACE_TRACE_FILE_HH
#define IPREF_TRACE_TRACE_FILE_HH

#include <cstdio>
#include <memory>
#include <string>

#include "trace/record.hh"
#include "trace/trace_source.hh"

namespace ipref
{

/** Size in bytes of one on-disk record. */
inline constexpr std::size_t traceRecordBytes = 29;

/** Streams InstrRecords into a binary trace file. */
class TraceFileWriter
{
  public:
    /** Open @p path for writing; fatal on failure. */
    explicit TraceFileWriter(const std::string &path);
    ~TraceFileWriter();

    TraceFileWriter(const TraceFileWriter &) = delete;
    TraceFileWriter &operator=(const TraceFileWriter &) = delete;

    /** Append one record. */
    void write(const InstrRecord &rec);

    /** Flush buffers and rewrite the header with the final count. */
    void close();

    /** Records written so far. */
    std::uint64_t count() const { return count_; }

  private:
    void writeHeader();

    std::FILE *file_ = nullptr;
    std::string path_;
    std::uint64_t count_ = 0;
    bool closed_ = false;
};

/** Reads a binary trace file as a TraceSource. */
class TraceFileReader : public TraceSource
{
  public:
    /** Open @p path; fatal on missing file or bad magic. */
    explicit TraceFileReader(const std::string &path);
    ~TraceFileReader() override;

    TraceFileReader(const TraceFileReader &) = delete;
    TraceFileReader &operator=(const TraceFileReader &) = delete;

    bool next(InstrRecord &out) override;
    void reset() override;

    /** Total records in the file (from the header). */
    std::uint64_t count() const { return count_; }

  private:
    std::FILE *file_ = nullptr;
    std::uint64_t count_ = 0;
    std::uint64_t pos_ = 0;
};

} // namespace ipref

#endif // IPREF_TRACE_TRACE_FILE_HH
