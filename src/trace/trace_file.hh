/**
 * @file
 * Binary trace files: writer and the stdio streaming reader.
 *
 * Three on-disk formats:
 *
 *   v3 (magic "IPRTRC03", default for new files): columnar
 *   delta+varint blocks — see trace_v3.hh for the layout. Written by
 *   TraceFileWriter, decoded by the mmap-backed MappedTraceReader.
 *
 *   v2 (magic "IPRTRC02"): fixed-width 29-byte records in
 *   CRC32-protected blocks behind a 44-byte header.
 *
 *   v1 (magic "IPRTRC01", still readable): 32-byte header with no
 *   checksums, records back to back.
 *
 * Use openTraceReader() (trace_v3.hh) to read a file of any version
 * through the common TraceReader interface.
 *
 * Corruption, truncation and undecodable bytes surface as TraceError
 * (with byte offset and record index) — never as a process abort and
 * never as garbage records. TraceReadMode::Tolerant instead ends the
 * stream at the last intact block and reports what was salvaged.
 */

#ifndef IPREF_TRACE_TRACE_FILE_HH
#define IPREF_TRACE_TRACE_FILE_HH

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "trace/record.hh"
#include "trace/trace_source.hh"
#include "util/error.hh"

namespace ipref
{

/** Size in bytes of one on-disk v1/v2 record. */
inline constexpr std::size_t traceRecordBytes = 29;

/** Default records per CRC-protected block (v2). */
inline constexpr std::uint32_t traceDefaultBlockRecords = 256;

/** Default records per columnar block (v3; larger = better batching). */
inline constexpr std::uint32_t traceV3DefaultBlockRecords = 4096;

/** On-disk format selector for TraceFileWriter. */
enum class TraceFormat
{
    V2, //!< fixed-width records, per-block CRC32
    V3, //!< columnar delta+varint blocks, per-block CRC32
};

/** How a trace reader treats a damaged file. */
enum class TraceReadMode
{
    Strict,  //!< any corruption throws TraceError
    Tolerant //!< end the stream at the valid prefix; see corrupt()
};

/**
 * Common read interface over every trace file version: a TraceSource
 * plus the header/damage introspection shared by the stdio reader
 * (v1/v2) and the mmap reader (v3). Obtain one via openTraceReader().
 */
class TraceReader : public TraceSource
{
  public:
    /** Total records promised by the header. */
    virtual std::uint64_t count() const = 0;

    /** On-disk format version (1, 2 or 3). */
    virtual unsigned version() const = 0;

    /** Tolerant mode: did the stream end early on corruption? */
    virtual bool corrupt() const = 0;

    /** Tolerant mode: human-readable description of the damage. */
    virtual const std::string &corruptionDetail() const = 0;

    /** Records successfully delivered since open/reset. */
    virtual std::uint64_t delivered() const = 0;

    std::uint64_t sizeHint() const override { return count(); }
};

/** Streams InstrRecords into a binary trace file (v3 by default). */
class TraceFileWriter
{
  public:
    /**
     * Open @p path for writing; throws TraceError (with errno
     * context) on failure. @p blockRecords sets the CRC block
     * granularity (0 = the format's default) — smaller blocks waste
     * more bytes but salvage more data from a damaged file.
     * @p dataAddresses controls the v3 data-address column; dropping
     * it shrinks files that only feed instruction-side studies.
     */
    explicit TraceFileWriter(const std::string &path,
                             std::uint32_t blockRecords = 0,
                             TraceFormat format = TraceFormat::V3,
                             bool dataAddresses = true);
    ~TraceFileWriter();

    TraceFileWriter(const TraceFileWriter &) = delete;
    TraceFileWriter &operator=(const TraceFileWriter &) = delete;

    /** Append one record; throws TraceError on I/O failure. */
    void write(const InstrRecord &rec);

    /**
     * Flush the trailing block, rewrite the header with the final
     * count, and verify the flush and close succeeded — a disk-full
     * truncation is reported here (as TraceError), not at next read.
     */
    void close();

    /** Records written so far. */
    std::uint64_t count() const { return count_; }

    /** The format being written. */
    TraceFormat format() const { return format_; }

  private:
    void writeHeader();
    void flushBlock();

    std::FILE *file_ = nullptr;
    std::string path_;
    std::uint64_t count_ = 0;
    std::uint32_t blockRecords_;
    TraceFormat format_;
    bool dataAddresses_;
    std::vector<unsigned char> block_;  //!< pending v2 block payload
    std::vector<InstrRecord> pending_;  //!< pending v3 block records
    std::vector<unsigned char> encoded_; //!< v3 encode scratch
    bool closed_ = false;
};

/** Streaming stdio reader for v1/v2 trace files. */
class TraceFileReader : public TraceReader
{
  public:
    /**
     * Open @p path; throws TraceError on a missing file, a bad /
     * corrupt header (a damaged header leaves nothing to salvage,
     * even in tolerant mode), or a v3 file (read those through
     * MappedTraceReader / openTraceReader).
     */
    explicit TraceFileReader(const std::string &path,
                             TraceReadMode mode = TraceReadMode::Strict);
    ~TraceFileReader() override;

    TraceFileReader(const TraceFileReader &) = delete;
    TraceFileReader &operator=(const TraceFileReader &) = delete;

    /**
     * Produce the next record. On corruption: throws TraceError
     * (Strict) or ends the stream and sets corrupt() (Tolerant).
     */
    bool next(InstrRecord &out) override;
    void reset() override;

    std::uint64_t count() const override { return count_; }
    unsigned version() const override { return version_; }
    bool corrupt() const override { return corrupt_; }
    const std::string &corruptionDetail() const override
    {
        return detail_;
    }
    std::uint64_t delivered() const override { return pos_; }

  private:
    /** Load and verify the next block into block_; false on EOF. */
    bool loadBlock();

    /** Raise @p err (Strict) or record it and end the stream. */
    bool damaged(const TraceError &err);

    std::FILE *file_ = nullptr;
    std::string path_;
    TraceReadMode mode_;
    unsigned version_ = 2;
    std::uint64_t count_ = 0;
    std::uint64_t pos_ = 0;       //!< records delivered
    std::uint32_t blockRecords_ = 0;
    std::uint64_t dataStart_ = 0; //!< file offset of the first block

    std::vector<unsigned char> block_; //!< verified block payload
    std::size_t blockPos_ = 0;         //!< consumed bytes in block_
    std::uint64_t blockFileOff_ = 0;   //!< file offset of block_

    bool corrupt_ = false;
    bool ended_ = false;
    std::string detail_;
};

} // namespace ipref

#endif // IPREF_TRACE_TRACE_FILE_HH
