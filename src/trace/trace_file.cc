#include "trace/trace_file.hh"

#include <cstring>

#include "util/logging.hh"

namespace ipref
{

namespace
{

constexpr char traceMagic[8] = {'I', 'P', 'R', 'T', 'R', 'C', '0', '1'};
constexpr std::size_t headerBytes = 32;

void
put64(unsigned char *p, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        p[i] = static_cast<unsigned char>(v >> (8 * i));
}

std::uint64_t
get64(const unsigned char *p)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

void
packRecord(const InstrRecord &rec, unsigned char *buf)
{
    put64(buf + 0, rec.pc);
    put64(buf + 8, rec.target);
    put64(buf + 16, rec.dataAddr);
    buf[24] = static_cast<unsigned char>(rec.op);
    buf[25] = rec.taken ? 1 : 0;
    buf[26] = rec.srcReg[0];
    buf[27] = rec.srcReg[1];
    buf[28] = rec.dstReg;
}

void
unpackRecord(const unsigned char *buf, InstrRecord &rec)
{
    rec.pc = get64(buf + 0);
    rec.target = get64(buf + 8);
    rec.dataAddr = get64(buf + 16);
    rec.op = static_cast<OpClass>(buf[24]);
    rec.taken = buf[25] != 0;
    rec.srcReg[0] = buf[26];
    rec.srcReg[1] = buf[27];
    rec.dstReg = buf[28];
}

} // namespace

TraceFileWriter::TraceFileWriter(const std::string &path) : path_(path)
{
    file_ = std::fopen(path.c_str(), "wb");
    if (!file_)
        ipref_fatal("cannot open trace file for writing: %s", path.c_str());
    writeHeader();
}

TraceFileWriter::~TraceFileWriter()
{
    if (!closed_)
        close();
}

void
TraceFileWriter::writeHeader()
{
    unsigned char hdr[headerBytes] = {};
    std::memcpy(hdr, traceMagic, sizeof(traceMagic));
    put64(hdr + 8, count_);
    if (std::fwrite(hdr, 1, headerBytes, file_) != headerBytes)
        ipref_fatal("short write on trace header: %s", path_.c_str());
}

void
TraceFileWriter::write(const InstrRecord &rec)
{
    ipref_assert(!closed_);
    unsigned char buf[traceRecordBytes];
    packRecord(rec, buf);
    if (std::fwrite(buf, 1, traceRecordBytes, file_) != traceRecordBytes)
        ipref_fatal("short write on trace record: %s", path_.c_str());
    ++count_;
}

void
TraceFileWriter::close()
{
    if (closed_)
        return;
    std::fseek(file_, 0, SEEK_SET);
    writeHeader();
    std::fclose(file_);
    file_ = nullptr;
    closed_ = true;
}

TraceFileReader::TraceFileReader(const std::string &path)
{
    file_ = std::fopen(path.c_str(), "rb");
    if (!file_)
        ipref_fatal("cannot open trace file: %s", path.c_str());
    unsigned char hdr[headerBytes];
    if (std::fread(hdr, 1, headerBytes, file_) != headerBytes)
        ipref_fatal("trace file too short: %s", path.c_str());
    if (std::memcmp(hdr, traceMagic, sizeof(traceMagic)) != 0)
        ipref_fatal("bad trace magic in %s", path.c_str());
    count_ = get64(hdr + 8);
}

TraceFileReader::~TraceFileReader()
{
    if (file_)
        std::fclose(file_);
}

bool
TraceFileReader::next(InstrRecord &out)
{
    if (pos_ >= count_)
        return false;
    unsigned char buf[traceRecordBytes];
    if (std::fread(buf, 1, traceRecordBytes, file_) != traceRecordBytes)
        ipref_fatal("truncated trace file (record %llu)",
                    static_cast<unsigned long long>(pos_));
    unpackRecord(buf, out);
    ++pos_;
    return true;
}

void
TraceFileReader::reset()
{
    std::fseek(file_, static_cast<long>(headerBytes), SEEK_SET);
    pos_ = 0;
}

} // namespace ipref
