#include "trace/trace_file.hh"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "trace/trace_v3.hh"
#include "trace/wire.hh"
#include "util/crc32.hh"
#include "util/logging.hh"

namespace ipref
{

using namespace tracewire;

namespace
{

void
packRecord(const InstrRecord &rec, unsigned char *buf)
{
    put64(buf + 0, rec.pc);
    put64(buf + 8, rec.target);
    put64(buf + 16, rec.dataAddr);
    buf[24] = static_cast<unsigned char>(rec.op);
    buf[25] = rec.taken ? 1 : 0;
    buf[26] = rec.srcReg[0];
    buf[27] = rec.srcReg[1];
    buf[28] = rec.dstReg;
}

void
unpackRecord(const unsigned char *buf, InstrRecord &rec)
{
    rec.pc = get64(buf + 0);
    rec.target = get64(buf + 8);
    rec.dataAddr = get64(buf + 16);
    rec.op = static_cast<OpClass>(buf[24]);
    rec.taken = buf[25] != 0;
    rec.srcReg[0] = buf[26];
    rec.srcReg[1] = buf[27];
    rec.dstReg = buf[28];
}

TraceError::Context
fileContext(const std::string &path, std::uint64_t byteOffset,
            std::uint64_t recordIndex, int sysErrno = 0)
{
    TraceError::Context ctx;
    ctx.path = path;
    ctx.byteOffset = byteOffset;
    ctx.recordIndex = recordIndex;
    ctx.sysErrno = sysErrno;
    return ctx;
}

} // namespace

// --- writer ----------------------------------------------------------

TraceFileWriter::TraceFileWriter(const std::string &path,
                                 std::uint32_t blockRecords,
                                 TraceFormat format, bool dataAddresses)
    : path_(path),
      blockRecords_(blockRecords
                        ? blockRecords
                        : (format == TraceFormat::V3
                               ? traceV3DefaultBlockRecords
                               : traceDefaultBlockRecords)),
      format_(format),
      dataAddresses_(dataAddresses)
{
    file_ = std::fopen(path.c_str(), "wb");
    if (!file_)
        throw TraceError("cannot open trace file for writing",
                         fileContext(path_, 0, 0, errno),
                         isTransientErrno(errno));
    if (format_ == TraceFormat::V3)
        pending_.reserve(blockRecords_);
    else
        block_.reserve(blockRecords_ * traceRecordBytes);
    writeHeader();
}

TraceFileWriter::~TraceFileWriter()
{
    if (closed_)
        return;
    try {
        close();
    } catch (const SimError &e) {
        ipref_warn("%s", e.what());
    }
}

void
TraceFileWriter::writeHeader()
{
    if (format_ == TraceFormat::V3) {
        unsigned char hdr[traceV3HeaderBytes] = {};
        std::memcpy(hdr, magicV3, magicBytes);
        put64(hdr + 8, count_);
        put32(hdr + 16, blockRecords_);
        put32(hdr + 20, dataAddresses_ ? traceV3FlagDataAddr : 0u);
        // bytes [24, 44) reserved; CRC covers everything before itself.
        put32(hdr + 44, crc32(hdr, 44));
        if (std::fwrite(hdr, 1, traceV3HeaderBytes, file_) !=
            traceV3HeaderBytes)
            throw TraceError("short write on trace header",
                             fileContext(path_, 0, count_, errno),
                             isTransientErrno(errno));
        return;
    }
    unsigned char hdr[headerBytesV2] = {};
    std::memcpy(hdr, magicV2, magicBytes);
    put64(hdr + 8, count_);
    put32(hdr + 16, blockRecords_);
    put32(hdr + 20, static_cast<std::uint32_t>(traceRecordBytes));
    // bytes [24, 40) reserved; CRC covers everything before itself.
    put32(hdr + 40, crc32(hdr, 40));
    if (std::fwrite(hdr, 1, headerBytesV2, file_) != headerBytesV2)
        throw TraceError("short write on trace header",
                         fileContext(path_, 0, count_, errno),
                         isTransientErrno(errno));
}

void
TraceFileWriter::flushBlock()
{
    if (format_ == TraceFormat::V3) {
        if (pending_.empty())
            return;
        long at = std::ftell(file_);
        std::uint64_t off = at > 0 ? static_cast<std::uint64_t>(at) : 0;
        encodeTraceBlockV3(pending_, dataAddresses_, encoded_);
        unsigned char frame[8];
        put32(frame,
              static_cast<std::uint32_t>(encoded_.size()));
        put32(frame + 4, crc32(encoded_.data(), encoded_.size()));
        if (std::fwrite(frame, 1, sizeof(frame), file_) !=
                sizeof(frame) ||
            std::fwrite(encoded_.data(), 1, encoded_.size(), file_) !=
                encoded_.size())
            throw TraceError("short write on trace block",
                             fileContext(path_, off, count_, errno),
                             isTransientErrno(errno));
        pending_.clear();
        return;
    }
    if (block_.empty())
        return;
    long at = std::ftell(file_);
    std::uint64_t off = at > 0 ? static_cast<std::uint64_t>(at) : 0;
    unsigned char tail[blockCrcBytes];
    put32(tail, crc32(block_.data(), block_.size()));
    if (std::fwrite(block_.data(), 1, block_.size(), file_) !=
            block_.size() ||
        std::fwrite(tail, 1, blockCrcBytes, file_) != blockCrcBytes)
        throw TraceError("short write on trace block",
                         fileContext(path_, off, count_, errno),
                         isTransientErrno(errno));
    block_.clear();
}

void
TraceFileWriter::write(const InstrRecord &rec)
{
    ipref_assert(!closed_);
    ++count_;
    if (format_ == TraceFormat::V3) {
        pending_.push_back(rec);
        if (pending_.size() >= blockRecords_)
            flushBlock();
        return;
    }
    unsigned char buf[traceRecordBytes];
    packRecord(rec, buf);
    block_.insert(block_.end(), buf, buf + traceRecordBytes);
    if (block_.size() >= blockRecords_ * traceRecordBytes)
        flushBlock();
}

void
TraceFileWriter::close()
{
    if (closed_)
        return;
    closed_ = true;
    std::FILE *f = file_;

    // Every step is verified: a disk-full truncation that fwrite
    // buffered silently must be caught here, not at the next read.
    // fail() releases the handle before throwing (fclose frees the
    // FILE even when it reports an error).
    auto fail = [&](const char *what) {
        int err = errno;
        if (file_) {
            file_ = nullptr;
            std::fclose(f);
        }
        throw TraceError(what, fileContext(path_, 0, count_, err),
                         isTransientErrno(err));
    };
    try {
        flushBlock();
        if (std::fflush(f) != 0)
            fail("flush failed on trace file");
        if (std::fseek(f, 0, SEEK_SET) != 0)
            fail("seek failed on trace file");
        writeHeader(); // rewrite with the final count
        if (std::fflush(f) != 0)
            fail("flush failed on trace header");
    } catch (...) {
        if (file_) {
            file_ = nullptr;
            std::fclose(f);
        }
        throw;
    }
    file_ = nullptr;
    if (std::fclose(f) != 0)
        fail("close failed on trace file");
}

// --- reader ----------------------------------------------------------

TraceFileReader::TraceFileReader(const std::string &path,
                                 TraceReadMode mode)
    : path_(path), mode_(mode)
{
    file_ = std::fopen(path.c_str(), "rb");
    if (!file_)
        throw TraceError("cannot open trace file",
                         fileContext(path_, 0, 0, errno),
                         isTransientErrno(errno));

    unsigned char hdr[headerBytesV2];
    std::size_t got = std::fread(hdr, 1, magicBytes, file_);
    if (got != magicBytes)
        throw TraceError("trace file too short for a header",
                         fileContext(path_, got, 0));

    if (isMagic(hdr, magicV1)) {
        version_ = 1;
        if (std::fread(hdr + 8, 1, headerBytesV1 - 8, file_) !=
            headerBytesV1 - 8)
            throw TraceError("trace file too short for a header",
                             fileContext(path_, 8, 0));
        count_ = get64(hdr + 8);
        dataStart_ = headerBytesV1;
    } else if (isMagic(hdr, magicV2)) {
        version_ = 2;
        if (std::fread(hdr + 8, 1, headerBytesV2 - 8, file_) !=
            headerBytesV2 - 8)
            throw TraceError("trace file too short for a header",
                             fileContext(path_, 8, 0));
        // A damaged header leaves nothing trustworthy to salvage, so
        // this throws even in tolerant mode.
        if (get32(hdr + 40) != crc32(hdr, 40))
            throw TraceError("trace header CRC mismatch",
                             fileContext(path_, 40, 0));
        count_ = get64(hdr + 8);
        blockRecords_ = get32(hdr + 16);
        if (get32(hdr + 20) != traceRecordBytes)
            throw TraceError("unsupported trace record size",
                             fileContext(path_, 20, 0));
        if (blockRecords_ == 0)
            throw TraceError("invalid trace block size",
                             fileContext(path_, 16, 0));
        dataStart_ = headerBytesV2;
    } else if (isMagic(hdr, magicV3)) {
        throw TraceError(
            "v3 trace file: read it through openTraceReader() / "
            "MappedTraceReader, not the stdio v1/v2 reader",
            fileContext(path_, 0, 0));
    } else {
        throw TraceError("bad trace magic", fileContext(path_, 0, 0));
    }
}

TraceFileReader::~TraceFileReader()
{
    if (file_)
        std::fclose(file_);
}

bool
TraceFileReader::damaged(const TraceError &err)
{
    if (mode_ == TraceReadMode::Strict)
        throw err;
    corrupt_ = true;
    ended_ = true;
    detail_ = err.what();
    return false;
}

bool
TraceFileReader::loadBlock()
{
    std::uint64_t remaining = count_ - pos_;
    if (remaining == 0)
        return false;
    std::uint64_t records =
        std::min<std::uint64_t>(remaining, blockRecords_);
    std::size_t payload =
        static_cast<std::size_t>(records) * traceRecordBytes;

    long at = std::ftell(file_);
    blockFileOff_ = at > 0 ? static_cast<std::uint64_t>(at) : 0;

    std::vector<unsigned char> buf(payload + blockCrcBytes);
    std::size_t got = std::fread(buf.data(), 1, buf.size(), file_);
    if (got != buf.size())
        return damaged(TraceError(
            "truncated trace file",
            fileContext(path_, blockFileOff_ + got, pos_)));
    if (get32(buf.data() + payload) != crc32(buf.data(), payload))
        return damaged(TraceError(
            "trace block CRC mismatch",
            fileContext(path_, blockFileOff_, pos_)));
    buf.resize(payload);
    block_ = std::move(buf);
    blockPos_ = 0;
    return true;
}

bool
TraceFileReader::next(InstrRecord &out)
{
    if (ended_ || pos_ >= count_)
        return false;

    const unsigned char *rec = nullptr;
    std::uint64_t recOff = 0;
    unsigned char v1buf[traceRecordBytes];

    if (version_ == 1) {
        recOff = dataStart_ + pos_ * traceRecordBytes;
        std::size_t got =
            std::fread(v1buf, 1, traceRecordBytes, file_);
        if (got != traceRecordBytes)
            return damaged(TraceError(
                "truncated trace file",
                fileContext(path_, recOff + got, pos_)));
        rec = v1buf;
    } else {
        if (blockPos_ >= block_.size() && !loadBlock())
            return false;
        rec = block_.data() + blockPos_;
        recOff = blockFileOff_ + blockPos_;
    }

    // An untrusted byte from disk: an out-of-range op class must
    // surface as TraceError, never reach transitionType()/missGroup()
    // as garbage (satellite of the CRC check, and the only line of
    // defense for v1 files).
    if (rec[24] >=
        static_cast<unsigned char>(OpClass::NumOpClasses))
        return damaged(TraceError(
            detail::formatMessage("invalid op class byte 0x%02x",
                                  rec[24]),
            fileContext(path_, recOff + 24, pos_)));

    unpackRecord(rec, out);
    if (version_ == 2)
        blockPos_ += traceRecordBytes;
    ++pos_;
    return true;
}

void
TraceFileReader::reset()
{
    std::fseek(file_, static_cast<long>(dataStart_), SEEK_SET);
    pos_ = 0;
    block_.clear();
    blockPos_ = 0;
    blockFileOff_ = 0;
    ended_ = false;
    corrupt_ = false;
    detail_.clear();
}

} // namespace ipref
