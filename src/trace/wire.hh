/**
 * @file
 * Internal on-disk helpers shared by the trace writers/readers:
 * little-endian scalar packing and the per-version magic strings.
 * Not part of the public trace API.
 */

#ifndef IPREF_TRACE_WIRE_HH
#define IPREF_TRACE_WIRE_HH

#include <cstdint>
#include <cstring>

namespace ipref
{
namespace tracewire
{

inline constexpr char magicV1[8] = {'I', 'P', 'R', 'T', 'R', 'C', '0', '1'};
inline constexpr char magicV2[8] = {'I', 'P', 'R', 'T', 'R', 'C', '0', '2'};
inline constexpr char magicV3[8] = {'I', 'P', 'R', 'T', 'R', 'C', '0', '3'};
inline constexpr std::size_t magicBytes = 8;
inline constexpr std::size_t headerBytesV1 = 32;
inline constexpr std::size_t headerBytesV2 = 44;
inline constexpr std::size_t blockCrcBytes = 4;

inline void
put64(unsigned char *p, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        p[i] = static_cast<unsigned char>(v >> (8 * i));
}

inline std::uint64_t
get64(const unsigned char *p)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

inline void
put32(unsigned char *p, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        p[i] = static_cast<unsigned char>(v >> (8 * i));
}

inline std::uint32_t
get32(const unsigned char *p)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    return v;
}

inline bool
isMagic(const unsigned char *p, const char (&magic)[8])
{
    return std::memcmp(p, magic, magicBytes) == 0;
}

} // namespace tracewire
} // namespace ipref

#endif // IPREF_TRACE_WIRE_HH
