/**
 * @file
 * Trace format v3: columnar delta+varint block codec and the
 * mmap-backed zero-copy reader.
 *
 * v3 layout (all integers little-endian):
 *
 *   header (48B):
 *     [ 0, 8)  magic "IPRTRC03"
 *     [ 8,16)  u64 record count
 *     [16,20)  u32 records per block (K)
 *     [20,24)  u32 flags (bit0: data-address column present)
 *     [24,44)  reserved (zero)
 *     [44,48)  u32 CRC32 of bytes [0,44)
 *
 *   block (n = min(K, remaining records)), repeated to EOF:
 *     u32 payload bytes
 *     u32 CRC32 of the payload
 *     payload, six columns back to back:
 *       pc:      varint(pc[0]), then svarint(pc[i] - pc[i-1])
 *       op:      run-length pairs (u8 op class, varint run) summing
 *                to n
 *       taken:   bitmap, ceil(n/8) bytes, LSB-first
 *       target:  presence bitmap (target != 0), then per present
 *                record svarint(target - pc)
 *       data:    [flags bit0 only] presence bitmap (dataAddr != 0),
 *                then per present record svarint(dataAddr - prev),
 *                prev starting at 0 per block
 *       regs:    3 bytes per record (src0, src1, dst)
 *
 * Every block decodes independently (PC and data-address deltas
 * restart per block), so tolerant mode salvages the intact prefix at
 * block granularity — the same semantics as v2. Typical instruction
 * streams encode in ~3-4 bytes/record against v2's fixed 29.
 */

#ifndef IPREF_TRACE_TRACE_V3_HH
#define IPREF_TRACE_TRACE_V3_HH

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "trace/trace_file.hh"
#include "util/mmap_file.hh"

namespace ipref
{

/** v3 header size in bytes. */
inline constexpr std::size_t traceV3HeaderBytes = 48;

/** v3 header flags. */
inline constexpr std::uint32_t traceV3FlagDataAddr = 1u << 0;

/**
 * Encode @p records as one v3 block payload into @p out (cleared
 * first). Framing (payload size + CRC) is the caller's job.
 */
void encodeTraceBlockV3(std::span<const InstrRecord> records,
                        bool dataAddresses,
                        std::vector<unsigned char> &out);

/**
 * Decode one v3 block payload of @p n records into @p out (resized).
 * Throws TraceError (without file context — the caller decorates) on
 * malformed input.
 */
void decodeTraceBlockV3(const unsigned char *payload,
                        std::size_t payloadBytes, std::size_t n,
                        bool dataAddresses,
                        std::vector<InstrRecord> &out);

/**
 * Zero-copy v3 reader: the file is mmap()ed, blocks are
 * CRC-verified and decoded into a reusable record buffer one block
 * ahead of the consumer, and nextBatch() serves straight memcpy()s
 * out of that buffer — no per-record syscalls, no steady-state
 * allocation.
 */
class MappedTraceReader final : public TraceReader
{
  public:
    /**
     * Map @p path; throws TraceError on a missing file, a non-v3
     * magic, or a corrupt header (nothing trustworthy to salvage,
     * even in tolerant mode).
     */
    explicit MappedTraceReader(const std::string &path,
                               TraceReadMode mode =
                                   TraceReadMode::Strict);

    bool next(InstrRecord &out) override;
    std::size_t nextBatch(std::span<InstrRecord> out) override;
    void reset() override;

    std::uint64_t count() const override { return count_; }
    unsigned version() const override { return 3; }
    bool corrupt() const override { return corrupt_; }
    const std::string &corruptionDetail() const override
    {
        return detail_;
    }
    std::uint64_t delivered() const override { return deliveredTotal_; }

    /** Mapped file size in bytes. */
    std::uint64_t fileBytes() const { return map_.size(); }

    /** Records per block from the header. */
    std::uint32_t blockRecords() const { return blockRecords_; }

    /** Does the file carry the data-address column? */
    bool hasDataAddresses() const { return hasData_; }

  private:
    /**
     * Decode the block at @p fileOff into @p out; returns false at
     * end of stream or (tolerant) on damage. @p firstRecord is the
     * index of the block's first record (error context).
     */
    bool decodeBlockAt(std::uint64_t fileOff,
                       std::uint64_t firstRecord,
                       std::vector<InstrRecord> &out,
                       std::uint64_t &nextOff);

    /** Advance cur_ to the decoded-ahead block, decode one further. */
    bool advance();

    /** Raise @p err (Strict) or record it and end the stream. */
    bool damaged(const TraceError &err);

    MappedFile map_;
    std::string path_;
    TraceReadMode mode_;
    std::uint64_t count_ = 0;
    std::uint32_t blockRecords_ = 0;
    bool hasData_ = false;

    std::vector<InstrRecord> cur_;   //!< block being consumed
    std::vector<InstrRecord> ahead_; //!< decoded one block ahead
    std::size_t curPos_ = 0;         //!< record index into cur_
    bool haveAhead_ = false;
    std::uint64_t aheadOff_ = 0;     //!< file offset after ahead_
    std::uint64_t aheadFirst_ = 0;   //!< ahead_'s first record index
    std::uint64_t deliveredTotal_ = 0;

    bool corrupt_ = false;
    bool ended_ = false;
    std::string detail_;
};

/**
 * Open a trace file of any version (sniffs the magic): v3 through
 * MappedTraceReader, v1/v2 through the stdio TraceFileReader.
 */
std::unique_ptr<TraceReader>
openTraceReader(const std::string &path,
                TraceReadMode mode = TraceReadMode::Strict);

} // namespace ipref

#endif // IPREF_TRACE_TRACE_V3_HH
