#include "trace/trace_cache.hh"

#include <algorithm>
#include <condition_variable>

#include "trace/trace_v3.hh"
#include "util/metrics.hh"

namespace ipref
{

/**
 * A cache slot. `ready` flips under the owning cache's mutex once the
 * decode (done outside the lock) lands; racers wait on `cv`.
 */
struct TraceCache::Entry
{
    std::string path;
    FileFingerprint fingerprint;
    bool ready = false;
    bool failed = false;
    std::string failure; //!< TraceError text when failed
    std::shared_ptr<const DecodedTrace> trace;
    std::condition_variable cv;

    /** Decoded payload size counted in the resident-bytes gauge; 0
     *  until the decode lands (or when it landed after eviction). */
    std::size_t bytes = 0;
};

namespace
{

/** Live mirrors of TraceCache::Stats plus decoded-bytes residency. */
struct CacheMetricRefs
{
    metrics::Counter &hits;
    metrics::Counter &decodes;
    metrics::Counter &evictions;
    metrics::Counter &staleReloads;
    metrics::Gauge &residentBytes;
};

CacheMetricRefs &
cacheMetrics()
{
    static CacheMetricRefs refs{
        metrics::registry().counter("ipref_trace_cache_hits_total",
                                    "acquires served from cache"),
        metrics::registry().counter("ipref_trace_cache_decodes_total",
                                    "trace files actually decoded"),
        metrics::registry().counter("ipref_trace_cache_evictions_total",
                                    "entries dropped by LRU"),
        metrics::registry().counter(
            "ipref_trace_cache_stale_reloads_total",
            "re-decodes forced by a changed file fingerprint"),
        metrics::registry().gauge("ipref_trace_cache_resident_bytes",
                                  "decoded records resident in cache"),
    };
    return refs;
}

} // namespace

TraceCache &
TraceCache::instance()
{
    static TraceCache cache;
    return cache;
}

namespace
{

std::shared_ptr<const DecodedTrace>
decodeFile(const std::string &path, const FileFingerprint &fp)
{
    auto out = std::make_shared<DecodedTrace>();
    out->path = path;
    out->fingerprint = fp;

    // Always decode tolerantly: the one stored entry must serve both
    // strict and tolerant acquirers, so damage is recorded here and
    // re-raised per-acquire for strict callers.
    auto reader = openTraceReader(path, TraceReadMode::Tolerant);
    out->version = reader->version();
    out->headerCount = reader->count();
    out->records.reserve(
        static_cast<std::size_t>(reader->count()));
    std::size_t chunk = 8192;
    std::size_t used = 0;
    for (;;) {
        out->records.resize(used + chunk);
        std::size_t got = reader->nextBatch(
            std::span<InstrRecord>(out->records.data() + used, chunk));
        used += got;
        if (got < chunk)
            break;
    }
    out->records.resize(used);
    out->corrupt = reader->corrupt();
    out->corruptionDetail = reader->corruptionDetail();
    return out;
}

} // namespace

std::shared_ptr<const DecodedTrace>
TraceCache::acquire(const std::string &path, TraceReadMode mode)
{
    // The fingerprint read is outside the lock (stat can be slow on
    // network filesystems); a racing rewrite of the file just causes
    // one extra decode.
    FileFingerprint fp = fingerprintFile(path);

    std::shared_ptr<Entry> entry;
    bool owner = false;
    {
        std::unique_lock<std::mutex> lk(mu_);
        auto it = std::find_if(
            entries_.begin(), entries_.end(),
            [&](const auto &e) { return e->path == path; });
        if (it != entries_.end() && (*it)->fingerprint == fp &&
            !(*it)->failed) {
            entry = *it;
            // Refresh LRU position (MRU at the front). The hit is
            // counted below once the entry proves ready — whether it
            // already was or this thread waited for the decode.
            std::rotate(entries_.begin(), it, it + 1);
        } else {
            if (it != entries_.end()) {
                // Same path, different bytes (or a failed decode
                // worth retrying): replace the stale entry.
                if ((*it)->fingerprint == fp) {
                    ; // failed entry — plain retry, not staleness
                } else {
                    ++stats_.staleReloads;
                    cacheMetrics().staleReloads.add(1);
                }
                cacheMetrics().residentBytes.sub(
                    static_cast<std::int64_t>((*it)->bytes));
                entries_.erase(it);
            }
            entry = std::make_shared<Entry>();
            entry->path = path;
            entry->fingerprint = fp;
            entries_.insert(entries_.begin(), entry);
            while (entries_.size() > capacity_) {
                cacheMetrics().residentBytes.sub(
                    static_cast<std::int64_t>(entries_.back()->bytes));
                entries_.pop_back();
                ++stats_.evictions;
                cacheMetrics().evictions.add(1);
            }
            ++stats_.decodes;
            cacheMetrics().decodes.add(1);
            owner = true;
        }

        if (!owner) {
            entry->cv.wait(lk, [&] {
                return entry->ready || entry->failed;
            });
            if (entry->ready) {
                ++stats_.hits; // waited-for decode counts as a hit
                cacheMetrics().hits.add(1);
            }
        }
    }

    if (owner) {
        std::shared_ptr<const DecodedTrace> decoded;
        std::string failure;
        try {
            decoded = decodeFile(path, fp);
        } catch (const SimError &e) {
            failure = e.what();
        }
        {
            std::lock_guard<std::mutex> lk(mu_);
            if (decoded) {
                entry->trace = decoded;
                entry->ready = true;
                // Count the payload only while the entry is actually
                // retained — it may have been evicted mid-decode.
                if (std::find(entries_.begin(), entries_.end(),
                              entry) != entries_.end()) {
                    entry->bytes = decoded->records.size() *
                                   sizeof(InstrRecord);
                    cacheMetrics().residentBytes.add(
                        static_cast<std::int64_t>(entry->bytes));
                }
            } else {
                entry->failed = true;
                entry->failure = failure;
                // Drop the poisoned slot so a later acquire retries.
                auto it = std::find(entries_.begin(), entries_.end(),
                                    entry);
                if (it != entries_.end())
                    entries_.erase(it);
            }
        }
        entry->cv.notify_all();
    }

    if (entry->failed)
        throw TraceError(entry->failure);
    if (mode == TraceReadMode::Strict && entry->trace->corrupt)
        throw TraceError(entry->trace->corruptionDetail);
    return entry->trace;
}

TraceCache::Stats
TraceCache::stats() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return stats_;
}

void
TraceCache::clear()
{
    std::lock_guard<std::mutex> lk(mu_);
    for (const auto &e : entries_)
        cacheMetrics().residentBytes.sub(
            static_cast<std::int64_t>(e->bytes));
    entries_.clear();
    stats_ = Stats{};
}

void
TraceCache::setCapacity(std::size_t entries)
{
    std::lock_guard<std::mutex> lk(mu_);
    capacity_ = entries == 0 ? 1 : entries;
    while (entries_.size() > capacity_) {
        cacheMetrics().residentBytes.sub(
            static_cast<std::int64_t>(entries_.back()->bytes));
        entries_.pop_back();
        ++stats_.evictions;
        cacheMetrics().evictions.add(1);
    }
}

} // namespace ipref
