/**
 * @file
 * Process-wide shared trace store: N concurrent runs replaying the
 * same trace file share one decode.
 *
 * TraceCache::instance().acquire(path) returns an immutable,
 * refcounted DecodedTrace — the fully decoded record array plus the
 * file's header metadata. The cache keys entries by (path,
 * fingerprint): a rewritten file (size or mtime changed) is decoded
 * fresh, and concurrent acquirers of the same key block on the one
 * in-flight decode instead of duplicating it. Entries are always
 * decoded tolerantly and remember any damage, so one entry serves
 * both strict and tolerant acquirers (strict ones get the TraceError
 * a direct strict read would have thrown).
 *
 * CachedTraceSource adapts a DecodedTrace back into the TraceSource
 * interface — each source carries its own cursor, so any number of
 * cores/runs iterate one shared decode independently.
 */

#ifndef IPREF_TRACE_TRACE_CACHE_HH
#define IPREF_TRACE_TRACE_CACHE_HH

#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "trace/trace_file.hh"
#include "util/mmap_file.hh"

namespace ipref
{

/** One fully decoded, immutable trace file. */
struct DecodedTrace
{
    std::string path;
    FileFingerprint fingerprint;
    unsigned version = 0;       //!< on-disk format (1, 2 or 3)
    bool corrupt = false;       //!< the file had a damaged suffix
    std::string corruptionDetail;
    std::uint64_t headerCount = 0; //!< records promised by the header
    std::vector<InstrRecord> records; //!< what actually decoded
};

/**
 * The process-wide shared decode store. Thread-safe; all methods may
 * be called concurrently.
 */
class TraceCache
{
  public:
    /** Cache effectiveness counters (cumulative since clear()). */
    struct Stats
    {
        std::uint64_t decodes = 0;   //!< files actually decoded
        std::uint64_t hits = 0;      //!< acquires served from cache
        std::uint64_t evictions = 0; //!< entries dropped by LRU
        std::uint64_t staleReloads = 0; //!< fingerprint-change decodes
    };

    /** The process-wide instance. */
    static TraceCache &instance();

    /**
     * Return the decoded trace for @p path, decoding it at most once
     * per (path, fingerprint) across all threads. In Strict mode a
     * damaged file throws TraceError; Tolerant returns the salvaged
     * prefix with corrupt/corruptionDetail set.
     */
    std::shared_ptr<const DecodedTrace>
    acquire(const std::string &path,
            TraceReadMode mode = TraceReadMode::Strict);

    /** Counters snapshot. */
    Stats stats() const;

    /** Drop every entry and zero the counters (tests). */
    void clear();

    /**
     * Cap on retained entries (strong refs; least recently acquired
     * evicted first). Live shared_ptrs held by callers are unaffected
     * by eviction.
     */
    void setCapacity(std::size_t entries);

  private:
    struct Entry;

    TraceCache() = default;

    mutable std::mutex mu_;
    std::vector<std::shared_ptr<Entry>> entries_; //!< MRU first
    std::size_t capacity_ = 8;
    Stats stats_;
};

/**
 * A TraceSource iterating one shared DecodedTrace. Cheap to create;
 * each instance has an independent cursor.
 */
class CachedTraceSource final : public TraceSource
{
  public:
    explicit CachedTraceSource(
        std::shared_ptr<const DecodedTrace> trace)
        : trace_(std::move(trace))
    {}

    bool
    next(InstrRecord &out) override
    {
        if (pos_ >= trace_->records.size())
            return false;
        out = trace_->records[pos_++];
        return true;
    }

    std::size_t
    nextBatch(std::span<InstrRecord> out) override
    {
        std::size_t take = std::min(out.size(),
                                    trace_->records.size() - pos_);
        std::memcpy(out.data(), trace_->records.data() + pos_,
                    take * sizeof(InstrRecord));
        pos_ += take;
        return take;
    }

    void reset() override { pos_ = 0; }

    std::uint64_t
    sizeHint() const override
    {
        return trace_->records.size();
    }

    const DecodedTrace &trace() const { return *trace_; }

  private:
    std::shared_ptr<const DecodedTrace> trace_;
    std::size_t pos_ = 0;
};

} // namespace ipref

#endif // IPREF_TRACE_TRACE_CACHE_HH
