#include "trace/trace_stats.hh"

#include <unordered_set>

namespace ipref
{

double
TraceSummary::opFraction(OpClass op) const
{
    if (instructions == 0)
        return 0.0;
    return static_cast<double>(opCounts[static_cast<std::size_t>(op)]) /
           static_cast<double>(instructions);
}

double
TraceSummary::discontinuityFraction() const
{
    std::uint64_t total = 0;
    for (auto c : lineTransitions)
        total += c;
    if (total == 0)
        return 0.0;
    std::uint64_t seq =
        lineTransitions[static_cast<std::size_t>(
            FetchTransition::Sequential)] +
        lineTransitions[static_cast<std::size_t>(
            FetchTransition::CondNotTaken)];
    return 1.0 - static_cast<double>(seq) / static_cast<double>(total);
}

void
TraceSummary::print(std::ostream &os) const
{
    os << "instructions: " << instructions << "\n";
    os << "unique code lines: " << codeLinesTouched << " ("
       << codeLinesTouched * 64 / 1024 << " KB)\n";
    os << "unique data lines: " << dataLinesTouched << " ("
       << dataLinesTouched * 64 / 1024 << " KB)\n";
    os << "op mix:\n";
    for (std::size_t i = 0;
         i < static_cast<std::size_t>(OpClass::NumOpClasses); ++i) {
        if (opCounts[i] == 0)
            continue;
        os << "  " << opClassName(static_cast<OpClass>(i)) << ": "
           << opCounts[i] << " ("
           << 100.0 * static_cast<double>(opCounts[i]) /
                  static_cast<double>(instructions)
           << "%)\n";
    }
    os << "line transitions:\n";
    for (std::size_t i = 0;
         i < static_cast<std::size_t>(FetchTransition::NumTransitions);
         ++i) {
        if (lineTransitions[i] == 0)
            continue;
        os << "  " << transitionName(static_cast<FetchTransition>(i))
           << ": " << lineTransitions[i] << "\n";
    }
}

TraceSummary
summarizeTrace(TraceSource &src, std::uint64_t maxInstrs)
{
    constexpr unsigned lineShift = 6; // 64B lines
    TraceSummary s;
    std::unordered_set<Addr> code_lines, data_lines;

    InstrRecord rec;
    InstrRecord prev;
    bool have_prev = false;
    while (s.instructions < maxInstrs && src.next(rec)) {
        ++s.instructions;
        ++s.opCounts[static_cast<std::size_t>(rec.op)];
        if (rec.op == OpClass::CondBranch) {
            ++s.condBranches;
            if (rec.taken)
                ++s.takenCondBranches;
        }
        code_lines.insert(rec.pc >> lineShift);
        if (rec.isMem())
            data_lines.insert(rec.dataAddr >> lineShift);
        if (have_prev && (rec.pc >> lineShift) != (prev.pc >> lineShift)) {
            FetchTransition t = prev.transitionType();
            ++s.lineTransitions[static_cast<std::size_t>(t)];
        }
        prev = rec;
        have_prev = true;
    }
    s.codeLinesTouched = code_lines.size();
    s.dataLinesTouched = data_lines.size();
    return s;
}

} // namespace ipref
