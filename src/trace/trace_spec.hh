/**
 * @file
 * TraceSpec: the value type naming one instruction-stream input.
 *
 * RunSpec / SystemConfig consume this instead of loose
 * tracePath/tolerant fields: a spec either points at a binary trace
 * file (replayed on every core) or names a synthetic workload preset
 * ("db", "tpcw", "japp", "web", "mixed"), and carries the replay
 * knobs (loop on exhaustion, tolerant salvage, shared decode through
 * the process-wide TraceCache).
 */

#ifndef IPREF_TRACE_TRACE_SPEC_HH
#define IPREF_TRACE_TRACE_SPEC_HH

#include <string>

namespace ipref
{

/** Where a simulation's instruction stream comes from. */
struct TraceSpec
{
    /** Binary trace file to replay (empty = synthetic workloads). */
    std::string path;

    /**
     * Synthetic workload preset name ("db", "mixed", ...); only
     * consulted when path is empty. Empty = use the RunSpec /
     * SystemConfig workload list as-is.
     */
    std::string preset;

    /** Wrap to the beginning when the trace file is exhausted. */
    bool loop = true;

    /** Salvage the intact prefix of a damaged file (see trace_file). */
    bool tolerant = false;

    /**
     * Decode through the process-wide TraceCache so concurrent runs
     * replaying the same file share one mapping and one decode. Turn
     * off to give every core its own streaming reader (constant
     * memory, one decode per reader).
     */
    bool shared = true;

    /** Does this spec name a trace file to replay? */
    bool enabled() const { return !path.empty(); }

    /** A file-replay spec with default knobs. */
    static TraceSpec
    file(std::string tracePath, bool tolerantRead = false)
    {
        TraceSpec s;
        s.path = std::move(tracePath);
        s.tolerant = tolerantRead;
        return s;
    }

    /** A synthetic-workload spec ("db", ..., "mixed"). */
    static TraceSpec
    workloadPreset(std::string name)
    {
        TraceSpec s;
        s.preset = std::move(name);
        return s;
    }
};

} // namespace ipref

#endif // IPREF_TRACE_TRACE_SPEC_HH
