/**
 * @file
 * Abstract instruction stream interface and small adapters.
 *
 * The contract is bulk-first: nextBatch() is the primary decode path
 * (file readers fill whole spans from their decoded block buffers),
 * with next() as the one-record convenience. Implementations override
 * whichever is natural — each has a default written in terms of the
 * other, so every source supports both, and the two are required to
 * deliver identical record streams.
 */

#ifndef IPREF_TRACE_TRACE_SOURCE_HH
#define IPREF_TRACE_TRACE_SOURCE_HH

#include <cstring>
#include <span>
#include <vector>

#include "trace/record.hh"
#include "util/error.hh"

namespace ipref
{

/**
 * A producer of dynamic instructions. Workload generators and trace
 * file readers both implement this; the CPU model consumes it.
 */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /**
     * Produce the next instruction into @p out.
     * @return false when the stream is exhausted.
     */
    virtual bool
    next(InstrRecord &out)
    {
        return nextBatch({&out, 1}) == 1;
    }

    /**
     * Fill @p out from the stream; @return the number of records
     * produced (< out.size() only at end of stream). The default is
     * implemented over next(); bulk sources override it to decode
     * without a per-record virtual call.
     */
    virtual std::size_t
    nextBatch(std::span<InstrRecord> out)
    {
        std::size_t n = 0;
        while (n < out.size() && next(out[n]))
            ++n;
        return n;
    }

    /** Restart the stream from the beginning (if supported). */
    virtual void reset() = 0;

    /**
     * Total records this source will produce, when known up front
     * (0 = unknown or unbounded). Lets consumers size buffers and
     * loop bounds without a prior pass.
     */
    virtual std::uint64_t sizeHint() const { return 0; }
};

/** A TraceSource over a fixed vector of records (testing aid). */
class VectorTraceSource : public TraceSource
{
  public:
    explicit VectorTraceSource(std::vector<InstrRecord> records)
        : records_(std::move(records))
    {}

    bool
    next(InstrRecord &out) override
    {
        if (pos_ >= records_.size())
            return false;
        out = records_[pos_++];
        return true;
    }

    std::size_t
    nextBatch(std::span<InstrRecord> out) override
    {
        std::size_t n =
            std::min(out.size(), records_.size() - pos_);
        if (n > 0)
            std::memcpy(out.data(), records_.data() + pos_,
                        n * sizeof(InstrRecord));
        pos_ += n;
        return n;
    }

    void reset() override { pos_ = 0; }

    std::uint64_t sizeHint() const override { return records_.size(); }

  private:
    std::vector<InstrRecord> records_;
    std::size_t pos_ = 0;
};

/**
 * Wraps another source, looping it forever (reset on exhaustion).
 * Useful for running short test traces under long simulations.
 *
 * An empty underlying source is an input error, not an end-of-stream:
 * silently yielding nothing forever would hang every consumer that
 * polls for a record, so the wrap surfaces a TraceError instead.
 */
class LoopingTraceSource : public TraceSource
{
  public:
    explicit LoopingTraceSource(TraceSource &inner) : inner_(inner) {}

    bool
    next(InstrRecord &out) override
    {
        if (inner_.next(out))
            return true;
        inner_.reset();
        if (!inner_.next(out))
            throw TraceError(
                "cannot loop an empty trace source (the underlying "
                "stream produced no records after reset)");
        return true;
    }

    std::size_t
    nextBatch(std::span<InstrRecord> out) override
    {
        std::size_t n = 0;
        bool freshReset = false;
        while (n < out.size()) {
            std::size_t got = inner_.nextBatch(out.subspan(n));
            if (got == 0 && freshReset)
                throw TraceError(
                    "cannot loop an empty trace source (the "
                    "underlying stream produced no records after "
                    "reset)");
            n += got;
            if (n < out.size()) {
                inner_.reset();
                freshReset = true;
            } else {
                freshReset = false;
            }
        }
        return n;
    }

    void reset() override { inner_.reset(); }

  private:
    TraceSource &inner_;
};

} // namespace ipref

#endif // IPREF_TRACE_TRACE_SOURCE_HH
