/**
 * @file
 * Abstract instruction stream interface and an in-memory
 * implementation for tests.
 */

#ifndef IPREF_TRACE_TRACE_SOURCE_HH
#define IPREF_TRACE_TRACE_SOURCE_HH

#include <vector>

#include "trace/record.hh"

namespace ipref
{

/**
 * A producer of dynamic instructions. Workload generators and trace
 * file readers both implement this; the CPU model consumes it.
 */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /**
     * Produce the next instruction into @p out.
     * @return false when the stream is exhausted.
     */
    virtual bool next(InstrRecord &out) = 0;

    /** Restart the stream from the beginning (if supported). */
    virtual void reset() = 0;
};

/** A TraceSource over a fixed vector of records (testing aid). */
class VectorTraceSource : public TraceSource
{
  public:
    explicit VectorTraceSource(std::vector<InstrRecord> records)
        : records_(std::move(records))
    {}

    bool
    next(InstrRecord &out) override
    {
        if (pos_ >= records_.size())
            return false;
        out = records_[pos_++];
        return true;
    }

    void reset() override { pos_ = 0; }

  private:
    std::vector<InstrRecord> records_;
    std::size_t pos_ = 0;
};

/**
 * Wraps another source, looping it forever (reset on exhaustion).
 * Useful for running short test traces under long simulations.
 */
class LoopingTraceSource : public TraceSource
{
  public:
    explicit LoopingTraceSource(TraceSource &inner) : inner_(inner) {}

    bool
    next(InstrRecord &out) override
    {
        if (inner_.next(out))
            return true;
        inner_.reset();
        return inner_.next(out);
    }

    void reset() override { inner_.reset(); }

  private:
    TraceSource &inner_;
};

} // namespace ipref

#endif // IPREF_TRACE_TRACE_SOURCE_HH
