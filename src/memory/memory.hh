/**
 * @file
 * Off-chip memory model: fixed access latency plus a single
 * bandwidth-limited channel shared by all cores on the chip.
 *
 * A line transfer occupies the channel for lineBytes / bytesPerCycle
 * cycles; a request's completion time is its (possibly queued) channel
 * start plus the fixed latency. This makes inaccurate prefetching
 * cost real bandwidth and delay later requests, which is the effect
 * Section 7 of the paper leans on.
 */

#ifndef IPREF_MEMORY_MEMORY_HH
#define IPREF_MEMORY_MEMORY_HH

#include <cstdint>

#include "util/stats.hh"
#include "util/types.hh"

namespace ipref
{

/** Memory channel parameters. */
struct MemoryParams
{
    Cycle latency = 400;          //!< fixed access latency (cycles)
    double gbPerSec = 20.0;       //!< off-chip bandwidth
    double coreGhz = 3.0;         //!< core clock (to convert GB/s)
    unsigned lineBytes = 64;

    /** Bytes the channel moves per core cycle. */
    double
    bytesPerCycle() const
    {
        return gbPerSec / coreGhz;
    }

    /** Channel occupancy of one line transfer, in cycles. */
    double
    lineOccupancy() const
    {
        return static_cast<double>(lineBytes) / bytesPerCycle();
    }
};

/** The shared off-chip channel. */
class MemoryChannel
{
  public:
    explicit MemoryChannel(const MemoryParams &params);

    /**
     * Issue a line read at @p now.
     *
     * Demand reads have priority: they queue only behind other
     * demand reads. Prefetch reads are scheduled in the spare
     * bandwidth behind ALL outstanding traffic, so inaccurate
     * prefetching delays useful prefetches (paper §7) but not the
     * demand stream, matching a demand-priority memory controller.
     *
     * @return the cycle the line is available on chip.
     */
    Cycle read(Cycle now, bool isPrefetch);

    /**
     * Issue a line writeback at @p now (fire-and-forget: consumes
     * channel bandwidth but nothing waits for it).
     */
    void write(Cycle now);

    /** When latency is zero the model is functional (no queuing). */
    bool functional() const { return params_.latency == 0; }

    const MemoryParams &params() const { return params_; }

    Counter reads;
    Counter prefetchReads;
    Counter writes;
    /** Total queueing delay imposed on reads by bandwidth limits. */
    Counter queueDelayCycles;

    /** Total bytes moved (reads + writes). */
    std::uint64_t
    bytesTransferred() const
    {
        return (reads.value() + writes.value()) *
               params_.lineBytes;
    }

    void registerStats(StatGroup &group);

  private:
    MemoryParams params_;
    /** Next cycle the channel is free considering ALL traffic. */
    double channelFreeAt_ = 0.0;
    /** Next cycle the channel is free of demand traffic only. */
    double demandFreeAt_ = 0.0;
};

} // namespace ipref

#endif // IPREF_MEMORY_MEMORY_HH
