#include "memory/memory.hh"

#include <algorithm>

namespace ipref
{

MemoryChannel::MemoryChannel(const MemoryParams &params)
    : params_(params)
{}

Cycle
MemoryChannel::read(Cycle now, bool isPrefetch)
{
    ++reads;
    if (isPrefetch)
        ++prefetchReads;
    if (functional())
        return now;

    double occ = params_.lineOccupancy();
    double start;
    if (isPrefetch) {
        // Prefetches use spare bandwidth behind everything.
        start = std::max(static_cast<double>(now), channelFreeAt_);
        channelFreeAt_ = start + occ;
    } else {
        // Demand reads queue only behind other demand traffic
        // (demand-priority controller); they still occupy the
        // channel, pushing subsequent prefetches back.
        start = std::max(static_cast<double>(now), demandFreeAt_);
        demandFreeAt_ = start + occ;
        channelFreeAt_ = std::max(channelFreeAt_, start) + occ;
    }
    queueDelayCycles += static_cast<Cycle>(start) - now;
    return static_cast<Cycle>(start) + params_.latency;
}

void
MemoryChannel::write(Cycle now)
{
    ++writes;
    if (functional())
        return;
    // Writebacks drain at low priority in spare bandwidth.
    double start = std::max(static_cast<double>(now), channelFreeAt_);
    channelFreeAt_ = start + params_.lineOccupancy();
}

void
MemoryChannel::registerStats(StatGroup &group)
{
    group.addCounter("reads", &reads, "line reads");
    group.addCounter("prefetch_reads", &prefetchReads,
                     "line reads on behalf of prefetches");
    group.addCounter("writes", &writes, "line writebacks");
    group.addCounter("queue_delay_cycles", &queueDelayCycles,
                     "total read queueing delay");
}

} // namespace ipref
