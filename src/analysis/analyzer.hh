/**
 * @file
 * Offline trace analysis: parse the simulator's JSON-lines event
 * trace (util/trace_event.hh writers) and reconstruct what happened —
 * hot miss sites, mispredicting discontinuity edges, the Fig.-3 style
 * miss-class breakdown, per-origin prefetch lifecycles (accuracy,
 * coverage, timeliness) — entirely from events, so results can be
 * cross-checked against the simulator's own lifecycle counters.
 *
 * Consumed by tools/ipref_analyze.cc, the examples and the tests.
 * Everything here is cold-path code: it never runs inside a
 * simulation loop.
 */

#ifndef IPREF_ANALYSIS_ANALYZER_HH
#define IPREF_ANALYSIS_ANALYZER_HH

#include <array>
#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "prefetch/prefetcher.hh"
#include "sim/cycle_ledger.hh"
#include "trace/record.hh"
#include "util/json.hh"
#include "util/types.hh"

namespace ipref
{

/** One trace event parsed back from a JSON line. */
struct ParsedEvent
{
    std::uint64_t cycle = 0;
    std::string type;
    bool hasCore = false;      //!< false when the line carried null
    std::uint16_t core = 0;
    Addr addr = 0;
    Addr pc = 0;               //!< triggering site (0 = not recorded)
    std::uint64_t arg = 0;
    std::uint8_t detail = 0;
};

/**
 * Parse a JSON-lines event stream (one object per line; blank lines
 * ignored). Throws std::runtime_error on malformed input.
 */
std::vector<ParsedEvent> readTraceJsonLines(std::istream &is);

/** readTraceJsonLines() over a file; throws if unreadable. */
std::vector<ParsedEvent> loadTrace(const std::string &path);

/** Issue/resolution tally of one prefetch population. */
struct LifecycleTally
{
    std::uint64_t issued = 0;
    std::uint64_t useful = 0;
    std::uint64_t useless = 0;
    std::uint64_t replaced = 0; //!< superseded by a re-issue

    /** Issues never seen resolving inside the trace window. */
    std::uint64_t
    inFlight() const
    {
        std::uint64_t done = useful + useless + replaced;
        return issued > done ? issued - done : 0;
    }

    double
    accuracy() const
    {
        return issued ? static_cast<double>(useful) /
                            static_cast<double>(issued)
                      : 0.0;
    }
};

/** Everything analyze() reconstructs from one event stream. */
struct TraceAnalysis
{
    std::uint64_t events = 0;
    std::uint64_t firstCycle = 0;
    std::uint64_t lastCycle = 0;

    /** Demand L1I misses by CTI transition class (Fig. 3 axis). */
    std::array<std::uint64_t,
               static_cast<std::size_t>(FetchTransition::NumTransitions)>
        l1iMissByTransition{};
    std::uint64_t l1iMisses = 0;
    std::uint64_t l1iHits = 0;
    std::uint64_t l2iMisses = 0;

    /** A fetch line ranked by demand misses observed there. */
    struct Site
    {
        Addr line = 0;
        std::uint64_t misses = 0;
        std::array<std::uint64_t,
                   static_cast<std::size_t>(
                       FetchTransition::NumTransitions)>
            byTransition{};
    };
    std::vector<Site> hotMissSites; //!< sorted by misses, descending

    /** A discontinuity edge ranked by wasted (useless) prefetches. */
    struct Edge
    {
        Addr src = 0;
        Addr dst = 0;
        LifecycleTally tally;
    };
    std::vector<Edge> hotEdges; //!< sorted by useless, descending

    /** Per-origin lifecycles (index = PrefetchOrigin), plus total. */
    std::array<LifecycleTally,
               static_cast<std::size_t>(PrefetchOrigin::NumOrigins)>
        byOrigin{};
    LifecycleTally total;

    /**
     * CPI-stack reconstruction from fetch_stall episode events:
     * cycles and episode counts per CycleBucket. Busy cycles are
     * never traced (only stall episodes are), so index 0 stays zero
     * here — busy is derived as cycles * cores minus all stalls when
     * cross-checking against a simulator report.
     */
    std::array<std::uint64_t, kNumCycleBuckets> stallCycles{};
    std::array<std::uint64_t, kNumCycleBuckets> stallEpisodes{};

    /** Sum of every traced stall bucket (everything but busy). */
    std::uint64_t
    stallCycleTotal() const
    {
        std::uint64_t sum = 0;
        for (std::uint64_t v : stallCycles)
            sum += v;
        return sum;
    }

    /** Issue-to-useful latencies of resolved prefetches (cycles). */
    std::vector<std::uint64_t> issueToUseCycles; //!< sorted ascending

    std::uint64_t
    issueToUseQuantile(double q) const
    {
        if (issueToUseCycles.empty())
            return 0;
        double idx = q * static_cast<double>(issueToUseCycles.size() -
                                             1);
        return issueToUseCycles[static_cast<std::size_t>(idx)];
    }
};

/** Reconstruct a TraceAnalysis from parsed events. */
TraceAnalysis analyze(const std::vector<ParsedEvent> &events);

/**
 * Working-set concentration: given per-line counts (any order), how
 * many lines cover each quantile of the total. Shared by the
 * trace_tools example and the analyzer report.
 */
struct Concentration
{
    std::uint64_t total = 0;   //!< sum of all counts
    std::size_t uniqueLines = 0;
    struct Point
    {
        double quantile = 0.0;
        std::size_t lines = 0; //!< hottest lines covering it
    };
    std::vector<Point> points;
};

Concentration lineConcentration(std::vector<std::uint64_t> counts,
                                const std::vector<double> &quantiles);

/**
 * Interval timeline CSV: bucket the event stream into @p buckets
 * equal cycle windows and emit one row per window (cycle_start,
 * l1i_misses, pf_issued, pf_useful, pf_useless).
 */
void writeIntervalCsv(const std::vector<ParsedEvent> &events,
                      std::ostream &os, std::size_t buckets = 50);

/**
 * Chrome-trace-format (Perfetto-loadable) export: prefetch
 * lifecycles become complete ("X") slices from issue to resolution
 * (pid = core, tid = origin), demand L1I misses become instant ("i")
 * events. One JSON object with a "traceEvents" array.
 */
void writeChromeTrace(const std::vector<ParsedEvent> &events,
                      std::ostream &os);

/** Event-derived vs simulator-reported counter comparison. */
struct CrossCheck
{
    bool ok = true;
    std::vector<std::string> mismatches; //!< human-readable diffs
};

/**
 * Compare per-origin issued/useful and the lifecycle totals of
 * @p analysis against one simulator JSON report (an element of the
 * --stats-json array; its "prefetch" section). Exact agreement is
 * expected when the trace ring did not wrap and the report covers
 * the same window as the trace.
 */
CrossCheck crossCheck(const TraceAnalysis &analysis,
                      const JsonValue &report);

} // namespace ipref

#endif // IPREF_ANALYSIS_ANALYZER_HH
