#include "analysis/analyzer.hh"

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <tuple>
#include <unordered_map>

#include "util/trace_event.hh"

namespace ipref
{

std::vector<ParsedEvent>
readTraceJsonLines(std::istream &is)
{
    std::vector<ParsedEvent> events;
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(is, line)) {
        ++lineno;
        if (line.find_first_not_of(" \t\r") == std::string::npos)
            continue;
        JsonValue v;
        try {
            v = parseJson(line);
        } catch (const std::exception &e) {
            throw std::runtime_error("trace line " +
                                     std::to_string(lineno) + ": " +
                                     e.what());
        }
        ParsedEvent ev;
        ev.cycle = static_cast<std::uint64_t>(v.numberOr("cycle", 0));
        ev.type = v.stringOr("type", "unknown");
        if (v.has("core") && !v.at("core").isNull()) {
            ev.hasCore = true;
            ev.core = static_cast<std::uint16_t>(
                v.at("core").asUint());
        }
        if (v.has("addr"))
            ev.addr = v.at("addr").asUint();
        if (v.has("pc"))
            ev.pc = v.at("pc").asUint();
        ev.arg = static_cast<std::uint64_t>(v.numberOr("arg", 0));
        ev.detail =
            static_cast<std::uint8_t>(v.numberOr("detail", 0));
        events.push_back(ev);
    }
    return events;
}

std::vector<ParsedEvent>
loadTrace(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        throw std::runtime_error("cannot read trace file: " + path);
    return readTraceJsonLines(in);
}

TraceAnalysis
analyze(const std::vector<ParsedEvent> &events)
{
    TraceAnalysis a;
    a.events = events.size();

    /** Unresolved issue state, keyed by prefetch id. */
    struct LiveIssue
    {
        std::uint64_t cycle = 0;
        std::uint8_t origin = 0;
        Addr src = 0; //!< trigger site (0 = unattributed)
        Addr dst = 0;
    };
    std::unordered_map<std::uint64_t, LiveIssue> live;
    std::unordered_map<Addr, TraceAnalysis::Site> sites;
    std::map<std::pair<Addr, Addr>, LifecycleTally> edges;

    constexpr std::size_t numOrigins =
        static_cast<std::size_t>(PrefetchOrigin::NumOrigins);

    bool first = true;
    for (const ParsedEvent &ev : events) {
        if (first || ev.cycle < a.firstCycle)
            a.firstCycle = ev.cycle;
        if (first || ev.cycle > a.lastCycle)
            a.lastCycle = ev.cycle;
        first = false;

        if (ev.type == "cache_miss" || ev.type == "cache_hit") {
            std::uint8_t level = traceDetailLevel(ev.detail);
            int tr = traceDetailTransition(ev.detail);
            bool instr = tr >= 0; // transitions ride on I-side events
            if (ev.type == "cache_hit") {
                if (level == traceLevelL1I)
                    ++a.l1iHits;
                continue;
            }
            if (level == traceLevelL1I) {
                ++a.l1iMisses;
                TraceAnalysis::Site &s = sites[ev.addr];
                s.line = ev.addr;
                ++s.misses;
                if (tr >= 0 &&
                    tr < static_cast<int>(
                             a.l1iMissByTransition.size())) {
                    ++a.l1iMissByTransition[static_cast<std::size_t>(
                        tr)];
                    ++s.byTransition[static_cast<std::size_t>(tr)];
                }
            } else if (level == traceLevelL2 && instr) {
                ++a.l2iMisses;
            }
            continue;
        }

        if (ev.type == "fetch_stall") {
            if (ev.detail < kNumCycleBuckets) {
                a.stallCycles[ev.detail] += ev.arg;
                ++a.stallEpisodes[ev.detail];
            }
            continue;
        }

        if (ev.type == "prefetch_issue") {
            ++a.total.issued;
            if (ev.detail < numOrigins)
                ++a.byOrigin[ev.detail].issued;
            LiveIssue li;
            li.cycle = ev.cycle;
            li.origin = ev.detail;
            li.src = ev.pc;
            li.dst = ev.addr;
            live[ev.arg] = li;
            if (ev.detail == static_cast<std::uint8_t>(
                                 PrefetchOrigin::Discontinuity) &&
                ev.pc != 0)
                ++edges[{ev.pc, ev.addr}].issued;
            continue;
        }

        bool useful = ev.type == "prefetch_useful";
        bool useless = ev.type == "prefetch_useless";
        bool replaced = ev.type == "prefetch_replaced";
        if (!useful && !useless && !replaced)
            continue;

        if (useful) {
            ++a.total.useful;
            if (ev.detail < numOrigins)
                ++a.byOrigin[ev.detail].useful;
        } else if (useless) {
            ++a.total.useless;
            if (ev.arg != 0 && ev.detail < numOrigins)
                ++a.byOrigin[ev.detail].useless;
        } else {
            ++a.total.replaced;
            if (ev.detail < numOrigins)
                ++a.byOrigin[ev.detail].replaced;
        }

        auto it = live.find(ev.arg);
        if (it == live.end())
            continue;
        const LiveIssue &li = it->second;
        if (useful && ev.cycle >= li.cycle && ev.cycle > 0)
            a.issueToUseCycles.push_back(ev.cycle - li.cycle);
        if (li.origin == static_cast<std::uint8_t>(
                             PrefetchOrigin::Discontinuity) &&
            li.src != 0) {
            LifecycleTally &e = edges[{li.src, li.dst}];
            if (useful)
                ++e.useful;
            else if (useless)
                ++e.useless;
            else
                ++e.replaced;
        }
        live.erase(it);
    }

    a.hotMissSites.reserve(sites.size());
    for (auto &kv : sites)
        a.hotMissSites.push_back(kv.second);
    std::sort(a.hotMissSites.begin(), a.hotMissSites.end(),
              [](const TraceAnalysis::Site &x,
                 const TraceAnalysis::Site &y) {
                  return x.misses != y.misses ? x.misses > y.misses
                                              : x.line < y.line;
              });

    a.hotEdges.reserve(edges.size());
    for (const auto &kv : edges) {
        TraceAnalysis::Edge e;
        e.src = kv.first.first;
        e.dst = kv.first.second;
        e.tally = kv.second;
        a.hotEdges.push_back(e);
    }
    std::sort(a.hotEdges.begin(), a.hotEdges.end(),
              [](const TraceAnalysis::Edge &x,
                 const TraceAnalysis::Edge &y) {
                  if (x.tally.useless != y.tally.useless)
                      return x.tally.useless > y.tally.useless;
                  if (x.tally.issued != y.tally.issued)
                      return x.tally.issued > y.tally.issued;
                  return std::tie(x.src, x.dst) <
                         std::tie(y.src, y.dst);
              });

    std::sort(a.issueToUseCycles.begin(), a.issueToUseCycles.end());
    return a;
}

Concentration
lineConcentration(std::vector<std::uint64_t> counts,
                  const std::vector<double> &quantiles)
{
    Concentration c;
    c.uniqueLines = counts.size();
    std::sort(counts.rbegin(), counts.rend());
    for (std::uint64_t v : counts)
        c.total += v;
    for (double q : quantiles) {
        std::uint64_t target = static_cast<std::uint64_t>(
            q * static_cast<double>(c.total));
        std::uint64_t acc = 0;
        std::size_t k = 0;
        while (k < counts.size() && acc < target)
            acc += counts[k++];
        c.points.push_back({q, k});
    }
    return c;
}

void
writeIntervalCsv(const std::vector<ParsedEvent> &events,
                 std::ostream &os, std::size_t buckets)
{
    os << "cycle_start,cycle_end,l1i_misses,l1i_hits,pf_issued,"
          "pf_useful,pf_useless\n";
    if (events.empty() || buckets == 0)
        return;
    std::uint64_t lo = events.front().cycle;
    std::uint64_t hi = events.front().cycle;
    for (const ParsedEvent &ev : events) {
        lo = std::min(lo, ev.cycle);
        hi = std::max(hi, ev.cycle);
    }
    std::uint64_t span = hi - lo + 1;
    std::uint64_t width = (span + buckets - 1) / buckets;

    struct Row
    {
        std::uint64_t misses = 0, hits = 0;
        std::uint64_t issued = 0, useful = 0, useless = 0;
    };
    std::vector<Row> rows((span + width - 1) / width);
    for (const ParsedEvent &ev : events) {
        Row &r = rows[(ev.cycle - lo) / width];
        if (ev.type == "cache_miss") {
            if (traceDetailLevel(ev.detail) == traceLevelL1I)
                ++r.misses;
        } else if (ev.type == "cache_hit") {
            if (traceDetailLevel(ev.detail) == traceLevelL1I)
                ++r.hits;
        } else if (ev.type == "prefetch_issue") {
            ++r.issued;
        } else if (ev.type == "prefetch_useful") {
            ++r.useful;
        } else if (ev.type == "prefetch_useless") {
            ++r.useless;
        }
    }
    for (std::size_t i = 0; i < rows.size(); ++i) {
        std::uint64_t start = lo + i * width;
        os << start << "," << std::min(hi, start + width - 1) << ","
           << rows[i].misses << "," << rows[i].hits << ","
           << rows[i].issued << "," << rows[i].useful << ","
           << rows[i].useless << "\n";
    }
}

void
writeChromeTrace(const std::vector<ParsedEvent> &events,
                 std::ostream &os)
{
    constexpr std::size_t numOrigins =
        static_cast<std::size_t>(PrefetchOrigin::NumOrigins);

    struct LiveIssue
    {
        std::uint64_t cycle = 0;
        std::uint16_t core = 0;
        std::uint8_t origin = 0;
        Addr addr = 0;
        Addr src = 0;
    };
    std::unordered_map<std::uint64_t, LiveIssue> live;

    /** Cumulative stall cycles per core, rendered as one counter
     *  ("C") track per core so Perfetto draws a stacked area chart
     *  of the fetch-stall breakdown over time. */
    std::unordered_map<std::uint16_t,
                       std::array<std::uint64_t, kNumCycleBuckets>>
        stallCum;

    os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
    bool first = true;
    auto emit = [&](const std::string &obj) {
        os << (first ? "\n" : ",\n") << obj;
        first = false;
    };

    // Metadata: pid = core, tid = prefetch origin (instant events for
    // demand misses ride on tid = numOrigins).
    std::vector<std::uint16_t> coresSeen;
    for (const ParsedEvent &ev : events) {
        if (!ev.hasCore)
            continue;
        if (std::find(coresSeen.begin(), coresSeen.end(), ev.core) ==
            coresSeen.end())
            coresSeen.push_back(ev.core);
    }
    std::sort(coresSeen.begin(), coresSeen.end());
    for (std::uint16_t core : coresSeen) {
        std::ostringstream m;
        m << "{\"ph\":\"M\",\"pid\":" << core
          << ",\"name\":\"process_name\",\"args\":{\"name\":"
          << jsonString("core " + std::to_string(core)) << "}}";
        emit(m.str());
        for (std::size_t o = 0; o <= numOrigins; ++o) {
            std::string tname =
                o < numOrigins
                    ? std::string("prefetch: ") +
                          originName(static_cast<PrefetchOrigin>(o))
                    : std::string("demand misses");
            std::ostringstream t;
            t << "{\"ph\":\"M\",\"pid\":" << core << ",\"tid\":" << o
              << ",\"name\":\"thread_name\",\"args\":{\"name\":"
              << jsonString(tname) << "}}";
            emit(t.str());
        }
    }

    auto slice = [&](const LiveIssue &li, std::uint64_t endCycle,
                     const char *outcome) {
        std::uint64_t dur =
            endCycle > li.cycle ? endCycle - li.cycle : 1;
        std::ostringstream s;
        s << "{\"name\":" << jsonString(outcome)
          << ",\"cat\":\"prefetch\",\"ph\":\"X\",\"ts\":" << li.cycle
          << ",\"dur\":" << dur << ",\"pid\":" << li.core
          << ",\"tid\":" << static_cast<unsigned>(li.origin)
          << ",\"args\":{\"line\":\"" << jsonHex(li.addr)
          << "\",\"trigger\":\"" << jsonHex(li.src) << "\"}}";
        emit(s.str());
    };

    for (const ParsedEvent &ev : events) {
        if (ev.type == "prefetch_issue") {
            LiveIssue li;
            li.cycle = ev.cycle;
            li.core = ev.hasCore ? ev.core : 0;
            li.origin = ev.detail;
            li.addr = ev.addr;
            li.src = ev.pc;
            live[ev.arg] = li;
        } else if (ev.type == "prefetch_useful" ||
                   ev.type == "prefetch_useless" ||
                   ev.type == "prefetch_replaced") {
            auto it = live.find(ev.arg);
            if (it == live.end())
                continue;
            slice(it->second, ev.cycle,
                  ev.type == "prefetch_useful"
                      ? "useful"
                      : ev.type == "prefetch_useless" ? "useless"
                                                      : "replaced");
            live.erase(it);
        } else if (ev.type == "cache_miss" &&
                   traceDetailLevel(ev.detail) == traceLevelL1I) {
            std::ostringstream m;
            m << "{\"name\":\"l1i_miss\",\"cat\":\"demand\",\"ph\":"
                 "\"i\",\"s\":\"t\",\"ts\":"
              << ev.cycle << ",\"pid\":" << (ev.hasCore ? ev.core : 0)
              << ",\"tid\":" << numOrigins << ",\"args\":{\"line\":\""
              << jsonHex(ev.addr) << "\"}}";
            emit(m.str());
        } else if (ev.type == "fetch_stall" &&
                   ev.detail < kNumCycleBuckets) {
            std::uint16_t core = ev.hasCore ? ev.core : 0;
            auto &cum = stallCum[core];
            cum[ev.detail] += ev.arg;
            std::ostringstream c;
            c << "{\"name\":\"fetch stall cycles\",\"ph\":\"C\","
                 "\"ts\":"
              << ev.cycle << ",\"pid\":" << core << ",\"args\":{";
            bool firstArg = true;
            for (std::size_t b = 1; b < kNumCycleBuckets; ++b) {
                c << (firstArg ? "" : ",")
                  << jsonString(cycleBucketName(
                         static_cast<CycleBucket>(b)))
                  << ":" << cum[b];
                firstArg = false;
            }
            c << "}}";
            emit(c.str());
        }
    }

    // Unresolved issues: minimal slices so the view shows them.
    for (const auto &kv : live)
        slice(kv.second, kv.second.cycle + 1, "in-flight");

    os << (first ? "" : "\n") << "]}\n";
}

CrossCheck
crossCheck(const TraceAnalysis &analysis, const JsonValue &report)
{
    CrossCheck cc;
    auto check = [&cc](const std::string &what, std::uint64_t fromTrace,
                       std::uint64_t fromSim) {
        if (fromTrace == fromSim)
            return;
        cc.ok = false;
        cc.mismatches.push_back(
            what + ": trace=" + std::to_string(fromTrace) +
            " sim=" + std::to_string(fromSim));
    };

    const JsonValue &pf = report.at("prefetch");
    std::uint64_t simUseful =
        static_cast<std::uint64_t>(pf.numberOr("useful", 0)) +
        static_cast<std::uint64_t>(
            pf.numberOr("uncredited_useful", 0));
    std::uint64_t simIssued =
        static_cast<std::uint64_t>(pf.numberOr("issued", 0));
    std::uint64_t simUseless =
        static_cast<std::uint64_t>(pf.numberOr("useless", 0));
    std::uint64_t simDropped =
        static_cast<std::uint64_t>(pf.numberOr("dropped", 0));
    std::uint64_t simInFlight =
        static_cast<std::uint64_t>(pf.numberOr("in_flight", 0));
    check("issued", analysis.total.issued, simIssued);
    check("useful", analysis.total.useful, simUseful);
    check("useless", analysis.total.useless, simUseless);
    check("dropped (replaced in flight)", analysis.total.replaced,
          simDropped);
    // in_flight is window-relative: when warm-up-issued prefetches
    // resolve inside the measurement window the simulator's own
    // lifecycle identity does not hold, and neither side's in-flight
    // figure is comparable — only check it on reconciling reports
    // (fresh-system runs, e.g. warmup_instrs = 0).
    if (simIssued == simUseful + simUseless + simDropped + simInFlight)
        check("in_flight", analysis.total.inFlight(), simInFlight);

    if (pf.has("by_origin")) {
        const JsonValue &byOrigin = pf.at("by_origin");
        for (std::size_t i = 0;
             i < static_cast<std::size_t>(PrefetchOrigin::NumOrigins);
             ++i) {
            std::string name =
                originName(static_cast<PrefetchOrigin>(i));
            if (!byOrigin.has(name))
                continue;
            const JsonValue &o = byOrigin.at(name);
            check("by_origin." + name + ".issued",
                  analysis.byOrigin[i].issued,
                  static_cast<std::uint64_t>(
                      o.numberOr("issued", 0)));
            check("by_origin." + name + ".useful",
                  analysis.byOrigin[i].useful,
                  static_cast<std::uint64_t>(
                      o.numberOr("useful", 0)));
        }
    }

    // CPI-stack cross-check: the traced fetch_stall episodes re-sum
    // exactly to the simulator's per-bucket ledger, and the derived
    // busy figure (cycles * cores minus every traced stall) matches
    // the reported busy bucket. Skipped for functional-mode reports
    // ("timing": false), which carry no cycle accounting.
    if (report.has("cpi_stack")) {
        const JsonValue &cs = report.at("cpi_stack");
        bool timing = cs.has("timing") && cs.at("timing").boolean;
        if (timing && cs.has("buckets")) {
            const JsonValue &buckets = cs.at("buckets");
            std::uint64_t chipCycles =
                static_cast<std::uint64_t>(
                    cs.numberOr("cycles", 0)) *
                static_cast<std::uint64_t>(cs.numberOr("cores", 1));
            std::uint64_t stallSum = 0;
            for (std::size_t b = 1; b < kNumCycleBuckets; ++b) {
                std::string name =
                    cycleBucketName(static_cast<CycleBucket>(b));
                check("cpi_stack." + name, analysis.stallCycles[b],
                      static_cast<std::uint64_t>(
                          buckets.numberOr(name, 0)));
                stallSum += analysis.stallCycles[b];
            }
            std::uint64_t derivedBusy =
                chipCycles >= stallSum ? chipCycles - stallSum : 0;
            check("cpi_stack.busy (derived)", derivedBusy,
                  static_cast<std::uint64_t>(
                      buckets.numberOr("busy", 0)));
        }
    }
    return cc;
}

} // namespace ipref
