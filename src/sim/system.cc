#include "sim/system.hh"

#include "util/logging.hh"
#include "util/stats.hh"

namespace ipref
{

std::string
SystemConfig::workloadSetName() const
{
    if (workloads.empty())
        return "none";
    if (workloads.size() > 1)
        return "Mixed";
    return workloadName(workloads[0]);
}

SimResults
SimResults::delta(const SimResults &end, const SimResults &start)
{
    SimResults d;
    d.instructions = end.instructions - start.instructions;
    d.cycles = end.cycles - start.cycles;
    d.fetchLineAccesses =
        end.fetchLineAccesses - start.fetchLineAccesses;
    d.l1iMisses = end.l1iMisses - start.l1iMisses;
    d.l1iEliminated = end.l1iEliminated - start.l1iEliminated;
    d.l1iFirstUseHits = end.l1iFirstUseHits - start.l1iFirstUseHits;
    d.l1iLateHits = end.l1iLateHits - start.l1iLateHits;
    d.l2iMisses = end.l2iMisses - start.l2iMisses;
    d.l1dAccesses = end.l1dAccesses - start.l1dAccesses;
    d.l1dMisses = end.l1dMisses - start.l1dMisses;
    d.l2dMisses = end.l2dMisses - start.l2dMisses;
    for (std::size_t i = 0; i < d.l1iMissByTransition.size(); ++i) {
        d.l1iMissByTransition[i] = end.l1iMissByTransition[i] -
                                   start.l1iMissByTransition[i];
        d.l2iMissByTransition[i] = end.l2iMissByTransition[i] -
                                   start.l2iMissByTransition[i];
    }
    d.pfCandidates = end.pfCandidates - start.pfCandidates;
    d.pfIssued = end.pfIssued - start.pfIssued;
    d.pfIssuedOffChip = end.pfIssuedOffChip - start.pfIssuedOffChip;
    d.pfUseful = end.pfUseful - start.pfUseful;
    d.pfLate = end.pfLate - start.pfLate;
    d.pfUseless = end.pfUseless - start.pfUseless;
    d.pfFiltered = end.pfFiltered - start.pfFiltered;
    d.pfTagProbes = end.pfTagProbes - start.pfTagProbes;
    d.pfTagProbeHits = end.pfTagProbeHits - start.pfTagProbeHits;
    d.bypassInstalls = end.bypassInstalls - start.bypassInstalls;
    d.bypassDrops = end.bypassDrops - start.bypassDrops;
    d.memReads = end.memReads - start.memReads;
    d.memPrefetchReads =
        end.memPrefetchReads - start.memPrefetchReads;
    d.memWrites = end.memWrites - start.memWrites;
    d.memQueueDelayCycles =
        end.memQueueDelayCycles - start.memQueueDelayCycles;
    d.branchCtis = end.branchCtis - start.branchCtis;
    d.branchMispredicts =
        end.branchMispredicts - start.branchMispredicts;
    return d;
}

System::System(const SystemConfig &cfg) : cfg_(cfg)
{
    if (cfg_.numCores == 0)
        ipref_fatal("numCores must be >= 1");
    if (cfg_.workloads.empty())
        ipref_fatal("no workloads configured");
    if (cfg_.workloads.size() != 1 &&
        cfg_.workloads.size() != cfg_.numCores && cfg_.numCores != 1)
        ipref_fatal("workload list must have 1 entry, numCores "
                    "entries, or run on a single core (time-sliced)");

    cfg_.hierarchy.numCores = cfg_.numCores;
    if (cfg_.functional)
        cfg_.hierarchy.makeFunctional();
    cfg_.prefetch.lineBytes = cfg_.hierarchy.l1i.lineBytes;

    hierarchy_ = std::make_unique<CacheHierarchy>(cfg_.hierarchy);

    // Workload walkers.
    if (cfg_.numCores == 1 && cfg_.workloads.size() > 1) {
        // Time-sliced mixed on one core: one walker per application.
        for (std::size_t i = 0; i < cfg_.workloads.size(); ++i)
            workloads_.push_back(makeWorkload(
                cfg_.workloads[i], static_cast<CoreId>(i),
                cfg_.baseSeed));
    } else {
        for (unsigned c = 0; c < cfg_.numCores; ++c) {
            WorkloadKind kind = cfg_.workloads.size() == 1
                                    ? cfg_.workloads[0]
                                    : cfg_.workloads[c];
            workloads_.push_back(
                makeWorkload(kind, c, cfg_.baseSeed));
        }
    }

    for (unsigned c = 0; c < cfg_.numCores; ++c)
        engines_.push_back(std::make_unique<PrefetchEngine>(
            cfg_.prefetch, c, *hierarchy_));

    // Core c starts on walker c; a single time-sliced core starts on
    // slice 0 and rotates during run().
    if (cfg_.functional) {
        funcState_.resize(cfg_.numCores);
        for (unsigned c = 0; c < cfg_.numCores; ++c)
            funcState_[c].trace = workloads_[c].get();
    } else {
        for (unsigned c = 0; c < cfg_.numCores; ++c)
            cores_.push_back(std::make_unique<OoOCore>(
                c, cfg_.core, *hierarchy_, *engines_[c],
                workloads_[c].get()));
    }
}

System::~System() = default;

std::uint64_t
System::progress() const
{
    std::uint64_t total = 0;
    if (cfg_.functional) {
        for (const auto &st : funcState_)
            total += st.emitted;
    } else {
        for (const auto &core : cores_)
            total += core->committed();
    }
    return total;
}

void
System::runTiming(std::uint64_t targetInstrs)
{
    bool sliced = cfg_.numCores == 1 && workloads_.size() > 1;
    Cycle guard =
        now_ + 1000 + 400 * (targetInstrs - std::min(targetInstrs,
                                                     progress()));
    while (progress() < targetInstrs) {
        for (auto &core : cores_)
            core->tick(now_);
        ++now_;
        if (sliced) {
            std::uint64_t done = cores_[0]->committed();
            if (done - sliceStart_ >= cfg_.timeSliceInstrs) {
                activeSlice_ =
                    (activeSlice_ + 1) % workloads_.size();
                cores_[0]->setTrace(workloads_[activeSlice_].get());
                sliceStart_ = done;
            }
        }
        if (now_ > guard)
            ipref_panic("timing simulation is not making progress "
                        "(IPC < 0.0025)");
    }
}

void
System::runFunctional(std::uint64_t targetInstrs)
{
    bool sliced = cfg_.numCores == 1 && workloads_.size() > 1;
    while (progress() < targetInstrs) {
        for (unsigned c = 0; c < cfg_.numCores; ++c) {
            FuncState &st = funcState_[c];
            InstrRecord rec;
            if (!st.trace->next(rec))
                ipref_panic("workload stream ended unexpectedly");
            Addr line = hierarchy_->lineOf(rec.pc);
            bool line_access = line != st.curLine;
            if (line_access) {
                FetchTransition tr =
                    st.havePrev ? st.prev.transitionType()
                                : FetchTransition::Sequential;
                FetchResult res = hierarchy_->fetchAccess(
                    c, rec.pc, tr, now_);
                DemandFetchEvent ev;
                ev.lineAddr = line;
                ev.prevLineAddr = st.curLine;
                ev.transition = tr;
                ev.miss = res.l1Miss;
                ev.firstUseOfPrefetch = res.firstUseOfPrefetch;
                ev.latePrefetchHit = res.latePrefetchHit;
                engines_[c]->onDemandFetch(ev);
                st.curLine = line;
            }
            if (rec.isMem())
                hierarchy_->dataAccess(c, rec.dataAddr,
                                       rec.op == OpClass::Store,
                                       now_);
            if (rec.op == OpClass::Call ||
                rec.op == OpClass::Jump ||
                rec.op == OpClass::Return) {
                FunctionEvent fe;
                fe.isReturn = rec.op == OpClass::Return;
                fe.sitePc = rec.pc;
                fe.target = rec.target;
                engines_[c]->onFunction(fe);
            }
            if (rec.op == OpClass::CondBranch) {
                BranchEvent be;
                be.branchPc = rec.pc;
                be.takenTarget = rec.target;
                be.fallthrough = rec.pc + instrBytes;
                be.taken = rec.taken;
                engines_[c]->onBranch(be);
            }
            engines_[c]->tick(now_, !line_access);
            st.prev = rec;
            st.havePrev = true;
            ++st.emitted;
        }
        ++now_;
        if (sliced) {
            FuncState &st = funcState_[0];
            if (st.emitted - sliceStart_ >= cfg_.timeSliceInstrs) {
                activeSlice_ =
                    (activeSlice_ + 1) % workloads_.size();
                st.trace = workloads_[activeSlice_].get();
                sliceStart_ = st.emitted;
            }
        }
    }
}

SimResults
System::collect() const
{
    SimResults r;
    r.instructions = progress();
    r.cycles = now_;

    const CacheHierarchy &h = *hierarchy_;
    r.fetchLineAccesses = h.fetchLineAccesses.value();
    r.l1iMisses = h.l1iMisses.value();
    r.l1iEliminated = h.l1iEliminated.value();
    r.l1iFirstUseHits = h.l1iFirstUseHits.value();
    r.l1iLateHits = h.l1iLateHits.value();
    r.l2iMisses = h.l2iMisses.value();
    r.l1dAccesses = h.l1dAccesses.value();
    r.l1dMisses = h.l1dMisses.value();
    r.l2dMisses = h.l2dMisses.value();
    for (std::size_t i = 0; i < r.l1iMissByTransition.size(); ++i) {
        r.l1iMissByTransition[i] = h.l1iMissByTransition[i].value();
        r.l2iMissByTransition[i] = h.l2iMissByTransition[i].value();
    }
    r.bypassInstalls = h.bypassInstalls.value();
    r.bypassDrops = h.bypassDrops.value();

    for (const auto &e : engines_) {
        r.pfCandidates += e->candidates.value();
        r.pfIssued += e->issued.value();
        r.pfIssuedOffChip += e->issuedOffChip.value();
        r.pfUseful += e->usefulPrefetches.value();
        r.pfLate += e->latePrefetches.value();
        r.pfUseless += e->uselessPrefetches.value();
        r.pfFiltered += e->filteredRecent.value();
        r.pfTagProbes += e->tagProbes.value();
        r.pfTagProbeHits += e->tagProbeHits.value();
    }

    r.memReads = hierarchy_->memory().reads.value();
    r.memPrefetchReads =
        hierarchy_->memory().prefetchReads.value();
    r.memWrites = hierarchy_->memory().writes.value();
    r.memQueueDelayCycles =
        hierarchy_->memory().queueDelayCycles.value();

    for (const auto &core : cores_) {
        r.branchCtis += core->predictor().ctis.value();
        r.branchMispredicts +=
            core->predictor().mispredicts.value();
    }
    return r;
}

SimResults
System::run()
{
    if (cfg_.warmupInstrs > 0) {
        if (cfg_.functional)
            runFunctional(cfg_.warmupInstrs);
        else
            runTiming(cfg_.warmupInstrs);
    }
    SimResults start = collect();
    std::uint64_t target = cfg_.warmupInstrs + cfg_.measureInstrs;
    if (cfg_.functional)
        runFunctional(target);
    else
        runTiming(target);
    SimResults end = collect();
    results_ = SimResults::delta(end, start);
    results_.ipc =
        results_.cycles
            ? static_cast<double>(results_.instructions) /
                  static_cast<double>(results_.cycles)
            : 0.0;
    return results_;
}

void
System::dumpStats(std::ostream &os) const
{
    StatGroup root("system");

    StatGroup hier("hierarchy");
    hierarchy_->registerStats(hier);
    hierarchy_->memory().registerStats(hier);
    root.addChild(&hier);

    std::vector<std::unique_ptr<StatGroup>> groups;
    for (std::size_t c = 0; c < engines_.size(); ++c) {
        auto g = std::make_unique<StatGroup>(
            "prefetch." + std::to_string(c));
        engines_[c]->registerStats(*g);
        root.addChild(g.get());
        groups.push_back(std::move(g));
    }
    for (std::size_t c = 0; c < cores_.size(); ++c) {
        auto g = std::make_unique<StatGroup>(
            "core." + std::to_string(c));
        cores_[c]->registerStats(*g);
        root.addChild(g.get());
        groups.push_back(std::move(g));
    }
    root.dump(os);
}

} // namespace ipref
