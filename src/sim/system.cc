#include "sim/system.hh"

#include <algorithm>
#include <chrono>

#include "prefetch/fetch_profiler.hh"
#include "trace/trace_cache.hh"
#include "trace/trace_v3.hh"
#include "util/error.hh"
#include "util/json.hh"
#include "util/logging.hh"
#include "util/metrics.hh"
#include "util/stats.hh"
#include "util/trace_event.hh"

namespace ipref
{

namespace
{

/**
 * Publishing stride for the live instruction counters: coarse enough
 * that the run loops see one predictable branch per iteration and an
 * atomic add only every ~16k instructions, fine enough that ipref_top
 * sampling at tens of milliseconds still tracks real progress.
 */
constexpr std::uint64_t kMetricsStride = 16384;

/** Process-wide simulation telemetry, summed across concurrent runs. */
struct SystemMetricRefs
{
    metrics::Counter &instructions;
    metrics::Counter &warmupInstructions;
    metrics::Counter &measureInstructions;
    metrics::Counter &runsStarted;
    metrics::Counter &runsFinished;
    metrics::Counter &measureBegins;
    metrics::Gauge &activeRuns;
};

SystemMetricRefs &
systemMetrics()
{
    static SystemMetricRefs refs{
        metrics::registry().counter("ipref_sim_instructions_total",
                                    "instructions simulated (all "
                                    "phases, all runs)"),
        metrics::registry().counter(
            "ipref_sim_warmup_instructions_total",
            "instructions simulated during warm-up"),
        metrics::registry().counter(
            "ipref_sim_measure_instructions_total",
            "instructions simulated during measurement"),
        metrics::registry().counter("ipref_sim_runs_started_total",
                                    "System::run() invocations"),
        metrics::registry().counter(
            "ipref_sim_runs_finished_total",
            "System::run() exits (including failures)"),
        metrics::registry().counter(
            "ipref_sim_measure_begin_total",
            "warm-up/measurement boundary crossings"),
        metrics::registry().gauge("ipref_sim_active_runs",
                                  "System::run() calls in flight"),
    };
    return refs;
}

/**
 * Process-wide CPI-stack telemetry: one monotonic cycle counter per
 * bucket, summed across all cores of all concurrent timing runs, so
 * ipref_top can render a live stall breakdown.
 */
std::array<metrics::Counter *, kNumCycleBuckets> &
cpiMetrics()
{
    static std::array<metrics::Counter *, kNumCycleBuckets> refs =
        [] {
            std::array<metrics::Counter *, kNumCycleBuckets> r{};
            for (std::size_t i = 0; i < kNumCycleBuckets; ++i)
                r[i] = &metrics::registry().counter(
                    std::string("ipref_cpi_") +
                        cycleBucketName(static_cast<CycleBucket>(i)) +
                        "_cycles_total",
                    "core cycles charged to this CPI bucket");
            return r;
        }();
    return refs;
}

} // namespace

std::string
SystemConfig::workloadSetName() const
{
    if (effectiveTrace().enabled())
        return "trace";
    if (workloads.empty())
        return "none";
    if (workloads.size() > 1)
        return "Mixed";
    return workloadName(workloads[0]);
}

SimResults
SimResults::delta(const SimResults &end, const SimResults &start)
{
    SimResults d;
    d.instructions = end.instructions - start.instructions;
    d.cycles = end.cycles - start.cycles;
    d.fetchLineAccesses =
        end.fetchLineAccesses - start.fetchLineAccesses;
    d.l1iMisses = end.l1iMisses - start.l1iMisses;
    d.l1iEliminated = end.l1iEliminated - start.l1iEliminated;
    d.l1iFirstUseHits = end.l1iFirstUseHits - start.l1iFirstUseHits;
    d.l1iLateHits = end.l1iLateHits - start.l1iLateHits;
    d.l2iMisses = end.l2iMisses - start.l2iMisses;
    d.l1dAccesses = end.l1dAccesses - start.l1dAccesses;
    d.l1dMisses = end.l1dMisses - start.l1dMisses;
    d.l2dMisses = end.l2dMisses - start.l2dMisses;
    for (std::size_t i = 0; i < d.l1iMissByTransition.size(); ++i) {
        d.l1iMissByTransition[i] = end.l1iMissByTransition[i] -
                                   start.l1iMissByTransition[i];
        d.l2iMissByTransition[i] = end.l2iMissByTransition[i] -
                                   start.l2iMissByTransition[i];
    }
    d.pfCandidates = end.pfCandidates - start.pfCandidates;
    d.pfIssued = end.pfIssued - start.pfIssued;
    d.pfIssuedOffChip = end.pfIssuedOffChip - start.pfIssuedOffChip;
    d.pfUseful = end.pfUseful - start.pfUseful;
    d.pfLate = end.pfLate - start.pfLate;
    d.pfUseless = end.pfUseless - start.pfUseless;
    d.pfFiltered = end.pfFiltered - start.pfFiltered;
    d.pfTagProbes = end.pfTagProbes - start.pfTagProbes;
    d.pfTagProbeHits = end.pfTagProbeHits - start.pfTagProbeHits;
    for (std::size_t i = 0; i < d.pfIssuedByOrigin.size(); ++i) {
        d.pfIssuedByOrigin[i] =
            end.pfIssuedByOrigin[i] - start.pfIssuedByOrigin[i];
        d.pfUsefulByOrigin[i] =
            end.pfUsefulByOrigin[i] - start.pfUsefulByOrigin[i];
    }
    d.bypassInstalls = end.bypassInstalls - start.bypassInstalls;
    d.bypassDrops = end.bypassDrops - start.bypassDrops;
    d.memReads = end.memReads - start.memReads;
    d.memPrefetchReads =
        end.memPrefetchReads - start.memPrefetchReads;
    d.memWrites = end.memWrites - start.memWrites;
    d.memQueueDelayCycles =
        end.memQueueDelayCycles - start.memQueueDelayCycles;
    d.branchCtis = end.branchCtis - start.branchCtis;
    d.branchMispredicts =
        end.branchMispredicts - start.branchMispredicts;
    for (std::size_t i = 0; i < d.cpiStack.size(); ++i)
        d.cpiStack[i] = end.cpiStack[i] - start.cpiStack[i];
    return d;
}

System::System(const SystemConfig &cfg) : cfg_(cfg)
{
    if (cfg_.numCores == 0)
        ipref_raise(ConfigError, "numCores must be >= 1");
    const TraceSpec trace = cfg_.effectiveTrace();
    if (cfg_.workloads.empty() && !trace.enabled())
        ipref_raise(ConfigError, "no workloads configured");
    if (!trace.enabled() && cfg_.workloads.size() != 1 &&
        cfg_.workloads.size() != cfg_.numCores && cfg_.numCores != 1)
        ipref_raise(ConfigError,
                    "workload list must have 1 entry, numCores "
                    "entries, or run on a single core (time-sliced)");

    cfg_.hierarchy.numCores = cfg_.numCores;
    if (cfg_.functional)
        cfg_.hierarchy.makeFunctional();
    cfg_.prefetch.lineBytes = cfg_.hierarchy.l1i.lineBytes;

    hierarchy_ = std::make_unique<CacheHierarchy>(cfg_.hierarchy);

    // Instruction sources: either a replayed trace file (per-core
    // cursors over one shared decode, or per-core streaming readers)
    // or synthetic workload walkers.
    if (trace.enabled()) {
        TraceReadMode mode = trace.tolerant ? TraceReadMode::Tolerant
                                            : TraceReadMode::Strict;
        for (unsigned c = 0; c < cfg_.numCores; ++c) {
            std::unique_ptr<TraceSource> reader;
            if (trace.shared) {
                reader = std::make_unique<CachedTraceSource>(
                    TraceCache::instance().acquire(trace.path, mode));
            } else {
                reader = openTraceReader(trace.path, mode);
            }
            if (trace.loop) {
                traceSources_.push_back(
                    std::make_unique<LoopingTraceSource>(*reader));
                traceReaders_.push_back(std::move(reader));
            } else {
                traceSources_.push_back(std::move(reader));
            }
        }
    } else if (cfg_.numCores == 1 && cfg_.workloads.size() > 1) {
        // Time-sliced mixed on one core: one walker per application.
        for (std::size_t i = 0; i < cfg_.workloads.size(); ++i)
            workloads_.push_back(makeWorkload(
                cfg_.workloads[i], static_cast<CoreId>(i),
                cfg_.baseSeed));
    } else {
        for (unsigned c = 0; c < cfg_.numCores; ++c) {
            WorkloadKind kind = cfg_.workloads.size() == 1
                                    ? cfg_.workloads[0]
                                    : cfg_.workloads[c];
            workloads_.push_back(
                makeWorkload(kind, c, cfg_.baseSeed));
        }
    }

    for (unsigned c = 0; c < cfg_.numCores; ++c)
        engines_.push_back(std::make_unique<PrefetchEngine>(
            cfg_.prefetch, c, *hierarchy_));

    // Chip-wide per-site attribution (optional; one-branch overhead
    // in the engines when off).
    if (cfg_.profileSites > 0) {
        profiler_ = std::make_unique<FetchProfiler>(cfg_.profileSites);
        for (auto &e : engines_)
            e->setProfiler(profiler_.get());
    }

    // Private event ring: keeps concurrent runs off the global sink
    // (installed as the thread's current sink during run()).
    if (cfg_.traceCapacity > 0) {
        traceSink_ = std::make_unique<TraceSink>();
        traceSink_->enable(cfg_.traceCapacity);
    }

    // Core c starts on walker/reader c; a single time-sliced core
    // starts on slice 0 and rotates during run().
    auto sourceFor = [this](unsigned c) -> TraceSource * {
        return traceSources_.empty() ? workloads_[c].get()
                                     : traceSources_[c].get();
    };
    if (cfg_.functional) {
        funcState_.resize(cfg_.numCores);
        for (unsigned c = 0; c < cfg_.numCores; ++c)
            funcState_[c].trace = sourceFor(c);
    } else {
        for (unsigned c = 0; c < cfg_.numCores; ++c)
            cores_.push_back(std::make_unique<OoOCore>(
                c, cfg_.core, *hierarchy_, *engines_[c],
                sourceFor(c)));
    }

    // Persistent stats tree: built once, reused by dumps, reset at
    // the warm-up/measure boundary.
    statsRoot_ = std::make_unique<StatGroup>("system");
    auto hier = std::make_unique<StatGroup>("hierarchy");
    hierarchy_->registerStats(*hier);
    hierarchy_->memory().registerStats(*hier);
    statsRoot_->addChild(hier.get());
    statGroups_.push_back(std::move(hier));
    for (std::size_t c = 0; c < engines_.size(); ++c) {
        auto g = std::make_unique<StatGroup>(
            "prefetch." + std::to_string(c));
        engines_[c]->registerStats(*g);
        statsRoot_->addChild(g.get());
        statGroups_.push_back(std::move(g));
    }
    for (std::size_t c = 0; c < cores_.size(); ++c) {
        auto g = std::make_unique<StatGroup>(
            "core." + std::to_string(c));
        cores_[c]->registerStats(*g);
        statsRoot_->addChild(g.get());
        statGroups_.push_back(std::move(g));
    }
    if (profiler_) {
        auto g = std::make_unique<StatGroup>("profiler");
        profiler_->registerStats(*g);
        statsRoot_->addChild(g.get());
        statGroups_.push_back(std::move(g));
    }
}

System::~System() = default;

void
System::checkControl(std::uint64_t p, std::uint64_t &ctl) const
{
    if (cfg_.faultAtInstr && p >= cfg_.faultAtInstr)
        throw SimError(cfg_.faultTransient ? SimError::Kind::Io
                                           : SimError::Kind::Invariant,
                       detail::formatMessage(
                           "injected fault at instruction %llu",
                           static_cast<unsigned long long>(p)),
                       cfg_.faultTransient);
    if (!cfg_.control || (ctl++ & 1023) != 0)
        return;
    int s = cfg_.control->stop.load(std::memory_order_relaxed);
    if (s == RunControl::stopTimeout)
        throw SimError(SimError::Kind::Timeout,
                       "run exceeded its deadline");
    if (s == RunControl::stopInterrupt)
        throw SimError(SimError::Kind::Interrupted,
                       "run interrupted");
}

std::uint64_t
System::progress() const
{
    std::uint64_t total = 0;
    if (cfg_.functional) {
        for (const auto &st : funcState_)
            total += st.emitted;
    } else {
        for (const auto &core : cores_)
            total += core->committed();
    }
    return total;
}

void
System::publishProgressMetrics(std::uint64_t p)
{
    SystemMetricRefs &m = systemMetrics();
    std::uint64_t delta = p - metricsLastProgress_;
    if (delta) {
        m.instructions.add(delta);
        (metricsInMeasure_ ? m.measureInstructions
                           : m.warmupInstructions)
            .add(delta);
    }
    metricsLastProgress_ = p;
    metricsNextAt_ = p + kMetricsStride;

    // CPI-stack deltas ride the same stride. The cursor only moves
    // forward here; the warm-up/measure boundary re-syncs it after
    // the ledger counters reset (see beginMeasurement()).
    if (!cores_.empty()) {
        auto &cm = cpiMetrics();
        for (std::size_t i = 0; i < kNumCycleBuckets; ++i) {
            std::uint64_t cur = 0;
            for (const auto &core : cores_)
                cur += core->ledger().value(
                    static_cast<CycleBucket>(i));
            if (cur > metricsLastStack_[i])
                cm[i]->add(cur - metricsLastStack_[i]);
            metricsLastStack_[i] = cur;
        }
    }
}

void
System::maybeSample(std::uint64_t p)
{
    while (p >= nextSampleAt_) {
        SimResults cur = collect();
        IntervalSample s;
        s.endInstructions = cur.instructions;
        s.delta = SimResults::delta(cur, lastSample_);
        s.delta.ipc =
            s.delta.cycles
                ? static_cast<double>(s.delta.instructions) /
                      static_cast<double>(s.delta.cycles)
                : 0.0;
        samples_.push_back(s);
        lastSample_ = cur;
        nextSampleAt_ += cfg_.statsIntervalInstrs;
    }
}

void
System::runTiming(std::uint64_t targetInstrs)
{
    bool sliced = cfg_.numCores == 1 && workloads_.size() > 1;
    bool sampling = cfg_.statsIntervalInstrs > 0 && nextSampleAt_ > 0;
    bool guarded = cfg_.faultAtInstr > 0 || cfg_.control != nullptr;
    std::uint64_t ctl = 0;
    Cycle guard =
        now_ + 1000 + 400 * (targetInstrs - std::min(targetInstrs,
                                                     progress()));
    while (true) {
        std::uint64_t p = progress();
        if (p >= targetInstrs)
            break;
        if (guarded)
            checkControl(p, ctl);
        if (sampling)
            maybeSample(p);
        if constexpr (metrics::kCompiled)
            if (p >= metricsNextAt_)
                publishProgressMetrics(p);
        for (auto &core : cores_)
            core->tick(now_);
        ++now_;
        if (sliced) {
            std::uint64_t done = cores_[0]->committed();
            if (done - sliceStart_ >= cfg_.timeSliceInstrs) {
                activeSlice_ =
                    (activeSlice_ + 1) % workloads_.size();
                cores_[0]->setTrace(workloads_[activeSlice_].get());
                sliceStart_ = done;
            }
        }
        if (now_ > guard)
            ipref_raise(InvariantError,
                        "timing simulation is not making progress "
                        "(IPC < 0.0025)");
    }
}

void
System::runFunctional(std::uint64_t targetInstrs)
{
    bool sliced = cfg_.numCores == 1 && workloads_.size() > 1;
    bool sampling = cfg_.statsIntervalInstrs > 0 && nextSampleAt_ > 0;
    bool guarded = cfg_.faultAtInstr > 0 || cfg_.control != nullptr;
    std::uint64_t ctl = 0;
    while (true) {
        std::uint64_t p = progress();
        if (p >= targetInstrs)
            break;
        if (guarded)
            checkControl(p, ctl);
        if (sampling)
            maybeSample(p);
        if constexpr (metrics::kCompiled)
            if (p >= metricsNextAt_)
                publishProgressMetrics(p);
        for (unsigned c = 0; c < cfg_.numCores; ++c) {
            FuncState &st = funcState_[c];
            InstrRecord rec;
            if (!st.trace->next(rec))
                throw TraceError(
                    "instruction stream ended unexpectedly",
                    {cfg_.effectiveTrace().path, 0, st.emitted, 0});
            Addr line = hierarchy_->lineOf(rec.pc);
            bool line_access = line != st.curLine;
            if (line_access) {
                FetchTransition tr =
                    st.havePrev ? st.prev.transitionType()
                                : FetchTransition::Sequential;
                FetchResult res = hierarchy_->fetchAccess(
                    c, rec.pc, tr, now_);
                DemandFetchEvent ev;
                ev.lineAddr = line;
                ev.prevLineAddr = st.curLine;
                ev.transition = tr;
                ev.now = now_;
                ev.miss = res.l1Miss;
                ev.firstUseOfPrefetch = res.firstUseOfPrefetch;
                ev.latePrefetchHit = res.latePrefetchHit;
                engines_[c]->onDemandFetch(ev);
                st.curLine = line;
            }
            if (rec.isMem())
                hierarchy_->dataAccess(c, rec.dataAddr,
                                       rec.op == OpClass::Store,
                                       now_);
            if (engines_[c]->wantsFunctionEvents() &&
                (rec.op == OpClass::Call ||
                 rec.op == OpClass::Jump ||
                 rec.op == OpClass::Return)) {
                FunctionEvent fe;
                fe.isReturn = rec.op == OpClass::Return;
                fe.sitePc = rec.pc;
                fe.target = rec.target;
                engines_[c]->onFunction(fe);
            }
            if (engines_[c]->wantsBranchEvents() &&
                rec.op == OpClass::CondBranch) {
                BranchEvent be;
                be.branchPc = rec.pc;
                be.takenTarget = rec.target;
                be.fallthrough = rec.pc + instrBytes;
                be.taken = rec.taken;
                engines_[c]->onBranch(be);
            }
            engines_[c]->tick(now_, !line_access);
            st.prev = rec;
            st.havePrev = true;
            ++st.emitted;
        }
        ++now_;
        if (sliced) {
            FuncState &st = funcState_[0];
            if (st.emitted - sliceStart_ >= cfg_.timeSliceInstrs) {
                activeSlice_ =
                    (activeSlice_ + 1) % workloads_.size();
                st.trace = workloads_[activeSlice_].get();
                sliceStart_ = st.emitted;
            }
        }
    }
}

SimResults
System::collect() const
{
    SimResults r;
    r.instructions = progress() - measureInstrBase_;
    r.cycles = now_ - measureCycleBase_;

    const CacheHierarchy &h = *hierarchy_;
    r.fetchLineAccesses = h.fetchLineAccesses.value();
    r.l1iMisses = h.l1iMisses.value();
    r.l1iEliminated = h.l1iEliminated.value();
    r.l1iFirstUseHits = h.l1iFirstUseHits.value();
    r.l1iLateHits = h.l1iLateHits.value();
    r.l2iMisses = h.l2iMisses.value();
    r.l1dAccesses = h.l1dAccesses.value();
    r.l1dMisses = h.l1dMisses.value();
    r.l2dMisses = h.l2dMisses.value();
    for (std::size_t i = 0; i < r.l1iMissByTransition.size(); ++i) {
        r.l1iMissByTransition[i] = h.l1iMissByTransition[i].value();
        r.l2iMissByTransition[i] = h.l2iMissByTransition[i].value();
    }
    r.bypassInstalls = h.bypassInstalls.value();
    r.bypassDrops = h.bypassDrops.value();

    for (const auto &e : engines_) {
        r.pfCandidates += e->candidates.value();
        r.pfIssued += e->issued.value();
        r.pfIssuedOffChip += e->issuedOffChip.value();
        r.pfUseful += e->usefulPrefetches.value();
        r.pfLate += e->latePrefetches.value();
        r.pfUseless += e->uselessPrefetches.value();
        r.pfFiltered += e->filteredRecent.value();
        r.pfTagProbes += e->tagProbes.value();
        r.pfTagProbeHits += e->tagProbeHits.value();
        for (std::size_t i = 0; i < r.pfIssuedByOrigin.size(); ++i) {
            r.pfIssuedByOrigin[i] += e->issuedByOrigin[i].value();
            r.pfUsefulByOrigin[i] += e->usefulByOrigin[i].value();
        }
    }

    r.memReads = hierarchy_->memory().reads.value();
    r.memPrefetchReads =
        hierarchy_->memory().prefetchReads.value();
    r.memWrites = hierarchy_->memory().writes.value();
    r.memQueueDelayCycles =
        hierarchy_->memory().queueDelayCycles.value();

    for (const auto &core : cores_) {
        r.branchCtis += core->predictor().ctis.value();
        r.branchMispredicts +=
            core->predictor().mispredicts.value();
        for (std::size_t i = 0; i < kNumCycleBuckets; ++i)
            r.cpiStack[i] +=
                core->ledger().value(static_cast<CycleBucket>(i));
    }
    return r;
}

TraceSink &
System::activeTraceSink() const
{
    return traceSink_ ? *traceSink_ : TraceSink::current();
}

void
System::beginMeasurement()
{
    // Flush the warm-up remainder to the live phase counters before
    // anything resets: in timing mode resetAll() clears the per-core
    // committed counters progress() reads, and the publish delta
    // must never see progress move backward.
    publishProgressMetrics(progress());

    // Counters restart from zero (collect() then reads measurement
    // deltas directly — no hand-kept start snapshot).
    statsRoot_->resetAll();
    // Align the event trace with the counters: the retained ring
    // covers the measurement window only, so offline analysis of the
    // trace is directly comparable to the reported counters.
    if (activeTraceSink().enabled())
        activeTraceSink().clear();
    measureInstrBase_ = progress();
    measureCycleBase_ = now_;
    if (!cfg_.functional && !cores_.empty())
        sliceStart_ = cores_[0]->committed();

    // Cycle accounting restarts with the reset ledgers: open stall
    // episodes forget their pre-boundary cycles (the sink was just
    // cleared) and the live-metrics cursor re-syncs at zero.
    for (auto &core : cores_)
        core->onMeasureBegin();
    metricsLastStack_.fill(0);

    samples_.clear();
    lastSample_ = SimResults{};
    nextSampleAt_ = cfg_.statsIntervalInstrs > 0
                        ? measureInstrBase_ + cfg_.statsIntervalInstrs
                        : 0;

    // Re-sync the publish cursor with the post-reset progress value,
    // then attribute what follows to the measurement phase.
    metricsLastProgress_ = progress();
    metricsNextAt_ = metricsLastProgress_ + kMetricsStride;
    metricsInMeasure_ = true;
    systemMetrics().measureBegins.add(1);
}

SimResults
System::run()
{
    // Route IPREF_TRACE sites on this thread into the owned sink (if
    // any) for the duration of the run.
    TraceSinkScope traceScope(traceSink_.get());

    // Live run accounting, exception-safe: a run that throws (fault
    // injection, cancellation, trace damage) still decrements the
    // active-runs gauge and flushes its final instruction delta.
    systemMetrics().runsStarted.add(1);
    systemMetrics().activeRuns.add(1);
    metricsInMeasure_ = false;
    struct MetricsRunScope
    {
        System &sys;
        ~MetricsRunScope()
        {
            sys.publishProgressMetrics(sys.progress());
            systemMetrics().runsFinished.add(1);
            systemMetrics().activeRuns.sub(1);
        }
    } metricsScope{*this};

    using clock = std::chrono::steady_clock;
    auto seconds = [](clock::time_point a, clock::time_point b) {
        return std::chrono::duration<double>(b - a).count();
    };

    auto t0 = clock::now();
    if (cfg_.warmupInstrs > 0) {
        std::uint64_t target = progress() + cfg_.warmupInstrs;
        if (cfg_.functional)
            runFunctional(target);
        else
            runTiming(target);
    }
    auto t1 = clock::now();
    profile_.warmupSeconds = seconds(t0, t1);
    profile_.warmupInstructions = progress();

    beginMeasurement();
    std::uint64_t target = progress() + cfg_.measureInstrs;
    if (cfg_.functional)
        runFunctional(target);
    else
        runTiming(target);
    auto t2 = clock::now();

    // Flush the trailing stall episode on every core so the traced
    // fetch_stall events account for every charged cycle.
    for (auto &core : cores_)
        core->finishAccounting(now_);

    results_ = collect();
    results_.ipc =
        results_.cycles
            ? static_cast<double>(results_.instructions) /
                  static_cast<double>(results_.cycles)
            : 0.0;

    // Conservation invariant: in timing mode every core charges every
    // measurement cycle to exactly one bucket, so each ledger totals
    // the cycle count and the aggregate stack totals cycles * cores.
    if (!cfg_.functional) {
        for (const auto &core : cores_) {
            std::uint64_t total = core->ledger().total();
            if (total != results_.cycles)
                ipref_raise(
                    InvariantError,
                    "CPI stack does not conserve cycles: core %u "
                    "charged %llu of %llu measurement cycles",
                    static_cast<unsigned>(core->id()),
                    static_cast<unsigned long long>(total),
                    static_cast<unsigned long long>(results_.cycles));
        }
        std::uint64_t want =
            results_.cycles * static_cast<std::uint64_t>(cfg_.numCores);
        if (results_.cpiStackTotal() != want)
            ipref_raise(
                InvariantError,
                "CPI stack does not conserve cycles: aggregate %llu "
                "!= cycles * cores = %llu",
                static_cast<unsigned long long>(
                    results_.cpiStackTotal()),
                static_cast<unsigned long long>(want));
    }
    profile_.measureSeconds = seconds(t1, t2);
    profile_.measureInstructions = results_.instructions;

    // Close the trailing partial interval so sample deltas cover the
    // whole measurement window.
    if (cfg_.statsIntervalInstrs > 0 &&
        (samples_.empty() ||
         lastSample_.instructions < results_.instructions)) {
        IntervalSample s;
        s.endInstructions = results_.instructions;
        s.delta = SimResults::delta(results_, lastSample_);
        s.delta.ipc =
            s.delta.cycles
                ? static_cast<double>(s.delta.instructions) /
                      static_cast<double>(s.delta.cycles)
                : 0.0;
        samples_.push_back(s);
        lastSample_ = results_;
    }
    return results_;
}

TimelinessSummary
System::timeliness() const
{
    // Merge per-engine histograms bucket-wise for chip-level
    // quantiles (same bucket-boundary estimate as
    // Log2Histogram::quantile).
    std::vector<std::uint64_t> buckets;
    std::uint64_t sum = 0;
    TimelinessSummary t;
    for (const auto &e : engines_) {
        const Log2Histogram &h = e->issueToUseLatency();
        if (h.buckets().size() > buckets.size())
            buckets.resize(h.buckets().size(), 0);
        for (std::size_t b = 0; b < h.buckets().size(); ++b)
            buckets[b] += h.buckets()[b];
        t.count += h.count();
        sum += h.sum();
        t.maxCycles = std::max(t.maxCycles, h.max());
    }
    if (t.count == 0)
        return t;
    t.meanCycles =
        static_cast<double>(sum) / static_cast<double>(t.count);
    auto quantile = [&](double q) -> std::uint64_t {
        std::uint64_t target = static_cast<std::uint64_t>(
            q * static_cast<double>(t.count));
        std::uint64_t seen = 0;
        for (std::size_t i = 0; i < buckets.size(); ++i) {
            seen += buckets[i];
            if (seen > target)
                return i == 0 ? 1 : (std::uint64_t{1} << i);
        }
        return t.maxCycles;
    };
    t.p50Cycles = quantile(0.5);
    t.p90Cycles = quantile(0.9);
    return t;
}

void
System::dumpStats(std::ostream &os) const
{
    statsRoot_->dump(os);
}

void
System::dumpJson(std::ostream &os) const
{
    const SimResults &r = results_;
    os << "{\n";

    // --- configuration ------------------------------------------------
    os << "  \"config\": {\n"
       << "    \"workload\": " << jsonString(cfg_.workloadSetName())
       << ",\n"
       << "    \"cores\": " << cfg_.numCores << ",\n"
       << "    \"scheme\": "
       << jsonString(schemeName(cfg_.prefetch.scheme)) << ",\n"
       << "    \"degree\": " << cfg_.prefetch.degree << ",\n"
       << "    \"bypass_l2\": "
       << (cfg_.hierarchy.prefetchBypassL2 ? "true" : "false") << ",\n"
       << "    \"functional\": "
       << (cfg_.functional ? "true" : "false") << ",\n"
       << "    \"warmup_instrs\": " << cfg_.warmupInstrs << ",\n"
       << "    \"measure_instrs\": " << cfg_.measureInstrs << ",\n"
       << "    \"stats_interval_instrs\": " << cfg_.statsIntervalInstrs
       << ",\n"
       << "    \"profile_sites\": " << cfg_.profileSites << ",\n"
       << "    \"base_seed\": " << cfg_.baseSeed << "\n"
       << "  },\n";

    // --- headline results --------------------------------------------
    os << "  \"results\": {\n"
       << "    \"instructions\": " << r.instructions << ",\n"
       << "    \"cycles\": " << r.cycles << ",\n"
       << "    \"ipc\": " << jsonNumber(r.ipc) << ",\n"
       << "    \"l1i_miss_per_instr\": "
       << jsonNumber(r.l1iMissPerInstr()) << ",\n"
       << "    \"l2i_miss_per_instr\": "
       << jsonNumber(r.l2iMissPerInstr()) << ",\n"
       << "    \"l2d_miss_per_instr\": "
       << jsonNumber(r.l2dMissPerInstr()) << "\n"
       << "  },\n";

    // --- per-scheme prefetch lifecycle attribution --------------------
    TimelinessSummary t = timeliness();
    std::uint64_t inFlight = 0, dropped = 0, uncredited = 0;
    for (const auto &e : engines_) {
        inFlight += e->liveUnresolved();
        dropped += e->replacedInFlight.value();
        uncredited += e->uncreditedUseful.value();
    }
    os << "  \"prefetch\": {\n"
       << "    \"scheme\": "
       << jsonString(schemeName(cfg_.prefetch.scheme)) << ",\n"
       << "    \"issued\": " << r.pfIssued << ",\n"
       << "    \"useful\": " << r.pfUseful << ",\n"
       << "    \"uncredited_useful\": " << uncredited << ",\n"
       << "    \"late\": " << r.pfLate << ",\n"
       << "    \"useless\": " << r.pfUseless << ",\n"
       << "    \"in_flight\": " << inFlight << ",\n"
       << "    \"dropped\": " << dropped << ",\n"
       << "    \"accuracy\": " << jsonNumber(r.pfAccuracy()) << ",\n"
       << "    \"coverage\": " << jsonNumber(r.l1iCoverage()) << ",\n"
       << "    \"timeliness\": {\"count\": " << t.count
       << ", \"mean_cycles\": " << jsonNumber(t.meanCycles)
       << ", \"p50_cycles\": " << t.p50Cycles
       << ", \"p90_cycles\": " << t.p90Cycles
       << ", \"max_cycles\": " << t.maxCycles << "},\n"
       << "    \"by_origin\": {";
    for (std::size_t i = 0; i < r.pfIssuedByOrigin.size(); ++i) {
        os << (i ? ", " : "")
           << jsonString(originName(static_cast<PrefetchOrigin>(i)))
           << ": {\"issued\": " << r.pfIssuedByOrigin[i]
           << ", \"useful\": " << r.pfUsefulByOrigin[i] << "}";
    }
    os << "}\n  },\n";

    // --- CPI stack ---------------------------------------------------
    // Bucket cycles sum exactly to cycles * cores in timing mode (the
    // run-time invariant); all-zero in functional mode, flagged by
    // "timing": false so consumers skip the cross-check.
    os << "  \"cpi_stack\": {\n"
       << "    \"timing\": " << (cfg_.functional ? "false" : "true")
       << ",\n"
       << "    \"cores\": " << cfg_.numCores << ",\n"
       << "    \"cycles\": " << r.cycles << ",\n"
       << "    \"total\": " << r.cpiStackTotal() << ",\n"
       << "    \"buckets\": {";
    for (std::size_t i = 0; i < kNumCycleBuckets; ++i) {
        os << (i ? ", " : "")
           << jsonString(
                  cycleBucketName(static_cast<CycleBucket>(i)))
           << ": " << r.cpiStack[i];
    }
    os << "}\n  },\n";

    // --- interval samples --------------------------------------------
    os << "  \"intervals\": [";
    for (std::size_t i = 0; i < samples_.size(); ++i) {
        const IntervalSample &s = samples_[i];
        os << (i ? ",\n" : "\n") << "    {\"end_instructions\": "
           << s.endInstructions
           << ", \"instructions\": " << s.delta.instructions
           << ", \"cycles\": " << s.delta.cycles
           << ", \"ipc\": " << jsonNumber(s.delta.ipc)
           << ", \"l1i_misses\": " << s.delta.l1iMisses
           << ", \"l2i_misses\": " << s.delta.l2iMisses
           << ", \"l2d_misses\": " << s.delta.l2dMisses
           << ", \"pf_issued\": " << s.delta.pfIssued
           << ", \"pf_useful\": " << s.delta.pfUseful
           << ", \"pf_late\": " << s.delta.pfLate
           << ", \"mem_reads\": " << s.delta.memReads
           << ", \"cpi_stack\": [";
        for (std::size_t b = 0; b < kNumCycleBuckets; ++b)
            os << (b ? ", " : "") << s.delta.cpiStack[b];
        os << "]}";
    }
    os << (samples_.empty() ? "" : "\n  ") << "],\n";

    // --- phase profile -----------------------------------------------
    os << "  \"profile\": {\n"
       << "    \"warmup_seconds\": "
       << jsonNumber(profile_.warmupSeconds) << ",\n"
       << "    \"measure_seconds\": "
       << jsonNumber(profile_.measureSeconds) << ",\n"
       << "    \"warmup_instructions\": "
       << profile_.warmupInstructions << ",\n"
       << "    \"measure_instructions\": "
       << profile_.measureInstructions << ",\n"
       << "    \"measure_instrs_per_sec\": "
       << jsonNumber(profile_.measureInstrsPerSec()) << "\n"
       << "  },\n";

    // --- per-site heavy-hitter attribution (when enabled) -------------
    if (profiler_) {
        os << "  \"profiler\": ";
        profiler_->dumpJson(os);
        os << ",\n";
    }

    // --- tracing summary (only meaningful when enabled) ---------------
    const TraceSink &sink = activeTraceSink();
    os << "  \"trace\": {\"enabled\": "
       << (sink.enabled() ? "true" : "false")
       << ", \"recorded\": " << sink.recorded()
       << ", \"dropped\": " << sink.dropped() << "},\n";

    // --- full stats tree ---------------------------------------------
    os << "  \"stats\": ";
    statsRoot_->dumpJson(os, 2);
    os << "\n}\n";
}

} // namespace ipref
