#include "sim/campaign.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "sim/experiment.hh"
#include "util/json.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace ipref
{

namespace
{

/** Scalar counters of SimResults, by manifest key. */
struct U64Field
{
    const char *name;
    std::uint64_t SimResults::*ptr;
};

constexpr U64Field u64Fields[] = {
    {"instructions", &SimResults::instructions},
    {"cycles", &SimResults::cycles},
    {"fetch_line_accesses", &SimResults::fetchLineAccesses},
    {"l1i_misses", &SimResults::l1iMisses},
    {"l1i_eliminated", &SimResults::l1iEliminated},
    {"l1i_first_use_hits", &SimResults::l1iFirstUseHits},
    {"l1i_late_hits", &SimResults::l1iLateHits},
    {"l2i_misses", &SimResults::l2iMisses},
    {"l1d_accesses", &SimResults::l1dAccesses},
    {"l1d_misses", &SimResults::l1dMisses},
    {"l2d_misses", &SimResults::l2dMisses},
    {"pf_candidates", &SimResults::pfCandidates},
    {"pf_issued", &SimResults::pfIssued},
    {"pf_issued_off_chip", &SimResults::pfIssuedOffChip},
    {"pf_useful", &SimResults::pfUseful},
    {"pf_late", &SimResults::pfLate},
    {"pf_useless", &SimResults::pfUseless},
    {"pf_filtered", &SimResults::pfFiltered},
    {"pf_tag_probes", &SimResults::pfTagProbes},
    {"pf_tag_probe_hits", &SimResults::pfTagProbeHits},
    {"bypass_installs", &SimResults::bypassInstalls},
    {"bypass_drops", &SimResults::bypassDrops},
    {"mem_reads", &SimResults::memReads},
    {"mem_prefetch_reads", &SimResults::memPrefetchReads},
    {"mem_writes", &SimResults::memWrites},
    {"mem_queue_delay_cycles", &SimResults::memQueueDelayCycles},
    {"branch_ctis", &SimResults::branchCtis},
    {"branch_mispredicts", &SimResults::branchMispredicts},
};

template <std::size_t N>
void
emitArray(std::ostream &os, const char *name,
          const std::array<std::uint64_t, N> &arr, bool &first)
{
    os << (first ? "" : ", ") << jsonString(name) << ": [";
    first = false;
    for (std::size_t i = 0; i < N; ++i)
        os << (i ? ", " : "") << jsonString(jsonHex(arr[i]));
    os << "]";
}

template <std::size_t N>
bool
parseArray(const JsonValue &v, const char *name,
           std::array<std::uint64_t, N> &arr, std::string &err)
{
    if (!v.has(name)) {
        err = std::string("missing array: ") + name;
        return false;
    }
    const JsonValue &a = v.at(name);
    if (a.kind != JsonValue::Array || a.items.size() != N) {
        err = std::string("bad array: ") + name;
        return false;
    }
    for (std::size_t i = 0; i < N; ++i)
        arr[i] = a.items[i].asUint();
    return true;
}

} // namespace

const char *
runStatusName(RunStatus s)
{
    switch (s) {
      case RunStatus::Ok: return "ok";
      case RunStatus::Failed: return "failed";
      case RunStatus::TimedOut: return "timed_out";
      case RunStatus::Interrupted: return "interrupted";
      default: return "failed";
    }
}

RunStatus
parseRunStatus(const std::string &name)
{
    if (name == "ok")
        return RunStatus::Ok;
    if (name == "timed_out")
        return RunStatus::TimedOut;
    if (name == "interrupted")
        return RunStatus::Interrupted;
    return RunStatus::Failed;
}

std::uint64_t
fingerprintSpec(const RunSpec &spec)
{
    // SplitMix64 chain over every result-affecting field; doubles are
    // mixed by bit pattern so the fingerprint is exact, not rounded.
    std::uint64_t h = hashString("ipref.campaign.v2");
    auto mix = [&h](std::uint64_t v) {
        std::uint64_t s = h ^ v;
        h = splitMix64(s);
    };
    auto mixDouble = [&](double d) {
        std::uint64_t bits = 0;
        std::memcpy(&bits, &d, sizeof(bits));
        mix(bits);
    };
    mix(spec.cmp ? 1 : 0);
    mix(spec.workloads.size());
    for (WorkloadKind k : spec.workloads)
        mix(static_cast<std::uint64_t>(k));
    mix(static_cast<std::uint64_t>(spec.scheme));
    mix(spec.degree);
    mix(spec.tableEntries);
    mix(spec.targetWays);
    mix(spec.bypassL2 ? 1 : 0);
    for (bool b : spec.idealEliminate)
        mix(b ? 1 : 0);
    mix(spec.useConfidenceFilter ? 1 : 0);
    mix(static_cast<std::uint64_t>(
        static_cast<std::int64_t>(spec.historySize)));
    mix(static_cast<std::uint64_t>(
        static_cast<std::int64_t>(spec.queueSize)));
    mixDouble(spec.memGbPerSec);
    mix(spec.functional ? 1 : 0);
    mix(spec.l2Bytes);
    mix(spec.l1iBytes);
    mix(spec.l1iAssoc);
    mix(spec.lineBytes);
    mixDouble(spec.instrScale);
    mix(spec.baseSeed);
    // The trace input is fingerprinted in its effective (merged)
    // form, so the deprecated loose-field spelling and an equivalent
    // TraceSpec hash identically. `shared` is a performance knob with
    // no effect on results, so it is deliberately excluded.
    TraceSpec trace = spec.effectiveTrace();
    mix(hashString(trace.path));
    mix(hashString(trace.preset));
    mix(trace.loop ? 1 : 0);
    mix(trace.tolerant ? 1 : 0);
    mix(spec.faultAtInstr);
    mix(spec.faultTransient ? 1 : 0);
    mix(spec.faultAttempts);
    return h;
}

std::string
resultsToJson(const SimResults &r)
{
    std::ostringstream os;
    os << "{";
    bool first = true;
    for (const U64Field &f : u64Fields) {
        os << (first ? "" : ", ") << jsonString(f.name) << ": "
           << jsonString(jsonHex(r.*f.ptr));
        first = false;
    }
    emitArray(os, "l1i_miss_by_transition", r.l1iMissByTransition,
              first);
    emitArray(os, "l2i_miss_by_transition", r.l2iMissByTransition,
              first);
    emitArray(os, "pf_issued_by_origin", r.pfIssuedByOrigin, first);
    emitArray(os, "pf_useful_by_origin", r.pfUsefulByOrigin, first);
    emitArray(os, "cpi_stack", r.cpiStack, first);
    os << "}";
    return os.str();
}

Expected<SimResults>
resultsFromJson(const JsonValue &v)
{
    if (v.kind != JsonValue::Object)
        return SimError(SimError::Kind::Io,
                        "manifest results: not an object");
    SimResults r;
    try {
        for (const U64Field &f : u64Fields) {
            if (!v.has(f.name))
                return SimError(SimError::Kind::Io,
                                std::string("manifest results: "
                                            "missing counter: ") +
                                    f.name);
            r.*f.ptr = v.at(f.name).asUint();
        }
        std::string err;
        if (!parseArray(v, "l1i_miss_by_transition",
                        r.l1iMissByTransition, err) ||
            !parseArray(v, "l2i_miss_by_transition",
                        r.l2iMissByTransition, err) ||
            !parseArray(v, "pf_issued_by_origin", r.pfIssuedByOrigin,
                        err) ||
            !parseArray(v, "pf_useful_by_origin", r.pfUsefulByOrigin,
                        err))
            return SimError(SimError::Kind::Io,
                            "manifest results: " + err);
        // Manifests written before cycle accounting existed have no
        // stack; read them as all-zero rather than rejecting them.
        if (v.has("cpi_stack") &&
            !parseArray(v, "cpi_stack", r.cpiStack, err))
            return SimError(SimError::Kind::Io,
                            "manifest results: " + err);
    } catch (const std::exception &e) {
        return SimError(SimError::Kind::Io,
                        std::string("manifest results: ") + e.what());
    }
    // Recomputed exactly as System::run() does, so a checkpointed
    // result is bit-identical to a live one.
    r.ipc = r.cycles ? static_cast<double>(r.instructions) /
                           static_cast<double>(r.cycles)
                     : 0.0;
    return r;
}

const ManifestEntry *
CampaignManifest::find(std::uint64_t fingerprint) const
{
    auto it = entries_.find(fingerprint);
    return it == entries_.end() ? nullptr : &it->second;
}

std::vector<const ManifestEntry *>
CampaignManifest::entriesInOrder() const
{
    std::vector<const ManifestEntry *> out;
    out.reserve(order_.size());
    for (std::uint64_t fp : order_) {
        auto it = entries_.find(fp);
        if (it != entries_.end())
            out.push_back(&it->second);
    }
    return out;
}

void
CampaignManifest::record(ManifestEntry entry)
{
    auto it = entries_.find(entry.fingerprint);
    if (it == entries_.end())
        order_.push_back(entry.fingerprint);
    entries_[entry.fingerprint] = std::move(entry);
    if (!path_.empty())
        write();
}

void
CampaignManifest::write() const
{
    std::string tmp = path_ + ".tmp";
    {
        std::ofstream out(tmp, std::ios::trunc);
        if (!out)
            throw SimError(SimError::Kind::Io,
                           "cannot write campaign manifest '" + tmp +
                               "': " + std::strerror(errno),
                           isTransientErrno(errno));
        out << "{\n  \"version\": 1,\n  \"runs\": [";
        bool first = true;
        for (std::uint64_t fp : order_) {
            const ManifestEntry &e = entries_.at(fp);
            out << (first ? "\n" : ",\n") << "    {\"fingerprint\": "
                << jsonString(jsonHex(e.fingerprint))
                << ", \"status\": "
                << jsonString(runStatusName(e.status))
                << ", \"attempts\": " << e.attempts
                << ", \"wall_ms\": " << e.wallMs;
            if (e.status == RunStatus::Ok)
                out << ", \"results\": " << resultsToJson(e.results);
            else
                out << ", \"error_kind\": "
                    << jsonString(errorKindName(e.errorKind))
                    << ", \"error\": " << jsonString(e.errorMessage);
            if (!e.jsonReport.empty())
                out << ", \"json_report\": "
                    << jsonString(e.jsonReport);
            out << "}";
            first = false;
        }
        out << (first ? "" : "\n  ") << "]\n}\n";
        out.flush();
        if (!out)
            throw SimError(SimError::Kind::Io,
                           "short write on campaign manifest '" + tmp +
                               "': " + std::strerror(errno),
                           isTransientErrno(errno));
    }
    // rename() is atomic within a filesystem: the manifest is always
    // either the old complete state or the new complete state.
    if (std::rename(tmp.c_str(), path_.c_str()) != 0)
        throw SimError(SimError::Kind::Io,
                       "cannot replace campaign manifest '" + path_ +
                           "': " + std::strerror(errno),
                       isTransientErrno(errno));
}

Expected<CampaignManifest>
CampaignManifest::load(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return SimError(SimError::Kind::Io,
                        "cannot open campaign manifest '" + path +
                            "': " + std::strerror(errno),
                        isTransientErrno(errno));
    std::ostringstream buf;
    buf << in.rdbuf();

    // Built with no path so record() does not rewrite the file we are
    // in the middle of reading; the path is attached at the end.
    CampaignManifest m;
    try {
        JsonValue doc = parseJson(buf.str());
        if (doc.numberOr("version", 0) != 1)
            return SimError(SimError::Kind::Io,
                            "campaign manifest '" + path +
                                "': unsupported version");
        for (const JsonValue &run : doc.at("runs").items) {
            ManifestEntry e;
            e.fingerprint = run.at("fingerprint").asUint();
            e.status = parseRunStatus(run.stringOr("status", ""));
            e.attempts = static_cast<unsigned>(
                run.numberOr("attempts", 0));
            e.wallMs = static_cast<std::uint64_t>(
                run.numberOr("wall_ms", 0));
            if (e.status == RunStatus::Ok) {
                Expected<SimResults> res =
                    resultsFromJson(run.at("results"));
                if (!res.ok())
                    return res.error();
                e.results = res.value();
            } else {
                e.errorKind =
                    parseErrorKind(run.stringOr("error_kind", ""));
                e.errorMessage = run.stringOr("error", "");
            }
            e.jsonReport = run.stringOr("json_report", "");
            m.record(std::move(e));
        }
    } catch (const std::exception &e) {
        return SimError(SimError::Kind::Io,
                        "corrupt campaign manifest '" + path +
                            "': " + e.what());
    }
    m.path_ = path;
    return m;
}

} // namespace ipref
