/**
 * @file
 * Whole-system configuration and the results record every experiment
 * consumes.
 */

#ifndef IPREF_SIM_CONFIG_HH
#define IPREF_SIM_CONFIG_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cache/hierarchy.hh"
#include "cpu/core.hh"
#include "prefetch/prefetcher.hh"
#include "sim/cycle_ledger.hh"
#include "trace/trace_spec.hh"
#include "workload/presets.hh"

namespace ipref
{

/**
 * Cooperative cancellation shared between a running System and the
 * batch runner's watchdog. The simulation loops poll stop and throw
 * SimError(Timeout/Interrupted) when it is raised, so a runaway or
 * cancelled run unwinds cleanly and frees its pool slot.
 */
struct RunControl
{
    static constexpr int stopNone = 0;
    static constexpr int stopTimeout = 1;
    static constexpr int stopInterrupt = 2;

    std::atomic<int> stop{stopNone};
};

/** Everything needed to build and run one simulation. */
struct SystemConfig
{
    /** Cores on the chip (1 = the paper's single-core comparison). */
    unsigned numCores = 4;

    HierarchyParams hierarchy;
    CoreParams core;
    PrefetchConfig prefetch;

    /**
     * Workloads to run. One entry: every core runs it (distinct walk
     * seeds / data segments). numCores entries: one per core (the
     * CMP "Mix"). Multiple entries on a single core: time-sliced.
     */
    std::vector<WorkloadKind> workloads{WorkloadKind::DB};

    std::uint64_t baseSeed = 1;

    /** Aggregate committed instructions of warm-up / measurement. */
    std::uint64_t warmupInstrs = 400'000;
    std::uint64_t measureInstrs = 1'200'000;

    /** Quantum for single-core time-sliced mixed runs. */
    std::uint64_t timeSliceInstrs = 50'000;

    /**
     * Functional mode: drive the hierarchy directly (1 instruction
     * per "cycle", zero latencies) — used for the pure miss-rate
     * studies (Figures 1-3). Timing mode runs the OoO cores.
     */
    bool functional = false;

    /**
     * Interval sampling: every N committed instructions of the
     * measurement window, snapshot a delta sample (0 = disabled).
     * Samples are retrievable via System::samples() and land in the
     * JSON report's "intervals" array.
     */
    std::uint64_t statsIntervalInstrs = 0;

    /**
     * Event tracing: when > 0 the System owns a private TraceSink
     * ring of this capacity and installs it as the thread's current
     * sink for the duration of run(), so concurrent runs never share
     * a ring (see trace_event.hh for the thread-ownership rule).
     * 0 = no owned sink; instrumentation falls through to whatever
     * sink the thread has current (the global one by default).
     */
    std::uint64_t traceCapacity = 0;

    /**
     * Per-site fetch profiling: track the K hottest miss sites and
     * discontinuity edges in a chip-wide heavy-hitter sketch
     * (0 = disabled; see prefetch/fetch_profiler.hh). Attribution
     * lands in the JSON report's "profiler" section.
     */
    unsigned profileSites = 0;

    /**
     * Trace-driven input: when trace.enabled(), every core replays
     * the named binary trace file (ChampSim-style ingestion) instead
     * of running a synthetic workload walker. Loop/tolerant/shared
     * behavior comes from the spec; see trace/trace_spec.hh.
     */
    TraceSpec trace;

    /**
     * @deprecated Pre-TraceSpec spelling, still honored when trace is
     * not enabled() — see effectiveTrace(). Use `trace` instead.
     */
    std::string tracePath;
    bool traceReadTolerant = false;

    /**
     * The trace input after merging the deprecated loose fields: the
     * TraceSpec wins when set, else tracePath/traceReadTolerant are
     * lifted into one. Every consumer (System, fingerprints) reads
     * this, so both spellings behave identically.
     */
    TraceSpec
    effectiveTrace() const
    {
        if (trace.enabled() || !trace.preset.empty())
            return trace;
        if (!tracePath.empty())
            return TraceSpec::file(tracePath, traceReadTolerant);
        return trace;
    }

    /** Cancellation handle polled by the run loops (may be null). */
    std::shared_ptr<RunControl> control;

    /**
     * Fault-injection test hook: when > 0, throw a SimError once
     * aggregate progress reaches this instruction count (transient or
     * not per faultTransient). Exercises the batch runner's failure
     * domains; never set outside tests.
     */
    std::uint64_t faultAtInstr = 0;
    bool faultTransient = false;

    /** Display name of the workload set ("DB", ..., "Mixed"). */
    std::string workloadSetName() const;

    /** Convenience: is this the 4-way mixed configuration? */
    bool
    isMixed() const
    {
        return workloads.size() > 1;
    }
};

/** Counter deltas over the measurement window. */
struct SimResults
{
    std::uint64_t instructions = 0; //!< committed (aggregate)
    std::uint64_t cycles = 0;
    double ipc = 0.0;

    std::uint64_t fetchLineAccesses = 0;
    std::uint64_t l1iMisses = 0;
    std::uint64_t l1iEliminated = 0;
    std::uint64_t l1iFirstUseHits = 0;
    std::uint64_t l1iLateHits = 0;
    std::uint64_t l2iMisses = 0;
    std::uint64_t l1dAccesses = 0;
    std::uint64_t l1dMisses = 0;
    std::uint64_t l2dMisses = 0;

    std::array<std::uint64_t,
               static_cast<std::size_t>(FetchTransition::NumTransitions)>
        l1iMissByTransition{};
    std::array<std::uint64_t,
               static_cast<std::size_t>(FetchTransition::NumTransitions)>
        l2iMissByTransition{};

    std::uint64_t pfCandidates = 0;
    std::uint64_t pfIssued = 0;
    std::uint64_t pfIssuedOffChip = 0;
    std::uint64_t pfUseful = 0;
    std::uint64_t pfLate = 0;
    std::uint64_t pfUseless = 0;
    std::uint64_t pfFiltered = 0;
    std::uint64_t pfTagProbes = 0;
    std::uint64_t pfTagProbeHits = 0;

    /** Per-origin lifecycle attribution (index = PrefetchOrigin). */
    std::array<std::uint64_t,
               static_cast<std::size_t>(PrefetchOrigin::NumOrigins)>
        pfIssuedByOrigin{};
    std::array<std::uint64_t,
               static_cast<std::size_t>(PrefetchOrigin::NumOrigins)>
        pfUsefulByOrigin{};

    std::uint64_t bypassInstalls = 0;
    std::uint64_t bypassDrops = 0;

    std::uint64_t memReads = 0;
    std::uint64_t memPrefetchReads = 0;
    std::uint64_t memWrites = 0;
    std::uint64_t memQueueDelayCycles = 0;

    std::uint64_t branchCtis = 0;
    std::uint64_t branchMispredicts = 0;

    /**
     * CPI stack: cycles charged to each bucket, summed over all
     * cores. In timing mode this partitions cycles exactly:
     * sum == cycles * numCores (every core ticks every cycle) — the
     * conservation invariant the System enforces at end of run.
     * All-zero in functional mode (no cycle accounting exists there).
     */
    std::array<std::uint64_t, kNumCycleBuckets> cpiStack{};

    /** Sum of every CPI-stack bucket. */
    std::uint64_t
    cpiStackTotal() const
    {
        std::uint64_t sum = 0;
        for (std::uint64_t v : cpiStack)
            sum += v;
        return sum;
    }

    // --- derived ------------------------------------------------------
    /** L1I demand misses per committed instruction. */
    double
    l1iMissPerInstr() const
    {
        return instructions ? static_cast<double>(l1iMisses) /
                                  static_cast<double>(instructions)
                            : 0.0;
    }

    /** L2 demand instruction misses per committed instruction. */
    double
    l2iMissPerInstr() const
    {
        return instructions ? static_cast<double>(l2iMisses) /
                                  static_cast<double>(instructions)
                            : 0.0;
    }

    /** L2 demand data misses per committed instruction. */
    double
    l2dMissPerInstr() const
    {
        return instructions ? static_cast<double>(l2dMisses) /
                                  static_cast<double>(instructions)
                            : 0.0;
    }

    /** Prefetch accuracy: useful / issued. */
    double
    pfAccuracy() const
    {
        return pfIssued ? static_cast<double>(pfUseful) /
                              static_cast<double>(pfIssued)
                        : 0.0;
    }

    /** Fraction of would-be L1I misses covered by prefetching. */
    double
    l1iCoverage() const
    {
        std::uint64_t covered = l1iFirstUseHits + l1iLateHits;
        std::uint64_t base = covered + l1iMisses;
        return base ? static_cast<double>(covered) /
                          static_cast<double>(base)
                    : 0.0;
    }

    /** a - b, field-wise (measurement-window delta). */
    static SimResults delta(const SimResults &end,
                            const SimResults &start);
};

} // namespace ipref

#endif // IPREF_SIM_CONFIG_HH
