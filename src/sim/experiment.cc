#include "sim/experiment.hh"

#include <cstdlib>
#include <fstream>
#include <mutex>
#include <sstream>
#include <thread>
#include <utility>

#include "util/logging.hh"
#include "util/thread_pool.hh"
#include "util/trace_event.hh"

namespace ipref
{

namespace
{

ObservabilityOptions g_observability;

/**
 * Buffered observability side effects. g_reportMutex serializes every
 * access: runs executing on pool workers produce their output
 * privately (each System is self-contained) and the collector commits
 * it here in input order.
 */
std::mutex g_reportMutex;
std::vector<std::string> g_jsonReports;
bool g_reportsDirty = false;
bool g_flushRegistered = false;

/** Everything one run emits besides its SimResults. */
struct RunOutput
{
    SimResults results;
    std::string jsonReport; //!< empty when JSON reporting is off
    std::string traceJsonl; //!< empty when tracing is off
    bool traced = false;
};

/** Build and run one System; no shared state is touched. */
RunOutput
produceRun(const RunSpec &spec)
{
    System system(makeConfig(spec));
    RunOutput out;
    out.results = system.run();
    if (!g_observability.jsonPath.empty()) {
        std::ostringstream report;
        system.dumpJson(report);
        out.jsonReport = report.str();
    }
    if (system.traceSink() && !g_observability.tracePath.empty()) {
        std::ostringstream trace;
        system.traceSink()->writeJsonLines(trace);
        out.traceJsonl = trace.str();
        out.traced = true;
    }
    return out;
}

/**
 * Commit one run's side effects, in input order: buffer the JSON
 * report and overwrite the trace file with this run's tail (matching
 * the sequential behaviour where the file holds the most recent run).
 */
void
commitRun(RunOutput &&out)
{
    std::lock_guard<std::mutex> lock(g_reportMutex);
    if (!out.jsonReport.empty()) {
        g_jsonReports.push_back(std::move(out.jsonReport));
        g_reportsDirty = true;
    }
    if (out.traced) {
        std::ofstream trace(g_observability.tracePath);
        if (trace)
            trace << out.traceJsonl;
    }
}

} // namespace

void
flushObservability()
{
    std::lock_guard<std::mutex> lock(g_reportMutex);
    if (!g_reportsDirty || g_observability.jsonPath.empty())
        return;
    std::ofstream out(g_observability.jsonPath);
    if (!out)
        ipref_fatal("cannot write JSON report to '%s'",
                    g_observability.jsonPath.c_str());
    out << "[\n";
    for (std::size_t i = 0; i < g_jsonReports.size(); ++i)
        out << (i ? ",\n" : "") << g_jsonReports[i];
    out << "]\n";
    g_reportsDirty = false;
}

void
setObservability(const ObservabilityOptions &opts)
{
    std::lock_guard<std::mutex> lock(g_reportMutex);
    g_observability = opts;
    g_jsonReports.clear();
    g_reportsDirty = false;
    if (!opts.jsonPath.empty() && !g_flushRegistered) {
        std::atexit(flushObservability);
        g_flushRegistered = true;
    }
}

const ObservabilityOptions &
observability()
{
    return g_observability;
}

SystemConfig
makeConfig(const RunSpec &spec)
{
    SystemConfig cfg;
    cfg.numCores = spec.cmp ? 4 : 1;
    cfg.workloads = spec.workloads;
    cfg.baseSeed = spec.baseSeed;
    cfg.functional = spec.functional;

    cfg.hierarchy.l1i.sizeBytes = spec.l1iBytes;
    cfg.hierarchy.l1i.assoc = spec.l1iAssoc;
    cfg.hierarchy.l1i.lineBytes = spec.lineBytes;
    cfg.hierarchy.l1d.lineBytes = spec.lineBytes;
    cfg.hierarchy.l2.sizeBytes = spec.l2Bytes;
    cfg.hierarchy.l2.lineBytes = spec.lineBytes;
    cfg.hierarchy.prefetchBypassL2 = spec.bypassL2;
    cfg.hierarchy.idealEliminate = spec.idealEliminate;

    // Off-chip bandwidth: 10 GB/s single core, 20 GB/s CMP (paper §5).
    cfg.hierarchy.memory.gbPerSec =
        spec.memGbPerSec > 0.0 ? spec.memGbPerSec
                               : (spec.cmp ? 20.0 : 10.0);
    cfg.hierarchy.memory.lineBytes = spec.lineBytes;

    cfg.prefetch.scheme = spec.scheme;
    cfg.prefetch.degree = spec.degree;
    cfg.prefetch.tableEntries = spec.tableEntries;
    cfg.prefetch.targetWays = spec.targetWays;
    cfg.prefetch.useConfidenceFilter = spec.useConfidenceFilter;
    if (spec.historySize >= 0)
        cfg.prefetch.historySize =
            static_cast<unsigned>(spec.historySize);
    if (spec.queueSize >= 0)
        cfg.prefetch.queueSize = static_cast<unsigned>(spec.queueSize);

    cfg.statsIntervalInstrs = g_observability.intervalInstrs;
    cfg.traceCapacity = g_observability.traceCapacity;
    cfg.profileSites =
        static_cast<unsigned>(g_observability.profileSites);

    double scale = spec.instrScale;
    if (spec.functional) {
        cfg.warmupInstrs =
            static_cast<std::uint64_t>(1'000'000 * scale);
        cfg.measureInstrs =
            static_cast<std::uint64_t>(3'000'000 * scale);
    } else {
        cfg.warmupInstrs =
            static_cast<std::uint64_t>(600'000 * scale);
        cfg.measureInstrs =
            static_cast<std::uint64_t>(1'600'000 * scale);
    }
    return cfg;
}

SimResults
runSpec(const RunSpec &spec)
{
    RunOutput out = produceRun(spec);
    SimResults results = out.results;
    commitRun(std::move(out));
    return results;
}

std::vector<SimResults>
runSpecs(const std::vector<RunSpec> &specs, unsigned jobs)
{
    if (jobs == 0)
        jobs = std::thread::hardware_concurrency();
    if (jobs == 0)
        jobs = 1;
    jobs = static_cast<unsigned>(
        std::min<std::size_t>(jobs, specs.size()));

    std::vector<SimResults> results;
    results.reserve(specs.size());

    if (jobs <= 1) {
        for (const RunSpec &spec : specs)
            results.push_back(runSpec(spec));
        return results;
    }

    ThreadPool pool(jobs);
    std::vector<std::future<RunOutput>> futures;
    futures.reserve(specs.size());
    for (const RunSpec &spec : specs)
        futures.push_back(
            pool.submit([spec] { return produceRun(spec); }));

    // Collect (and commit side effects) strictly in input order.
    for (auto &future : futures) {
        RunOutput out = future.get();
        results.push_back(out.results);
        commitRun(std::move(out));
    }
    return results;
}

std::vector<WorkloadSet>
figureWorkloads(bool includeMix)
{
    std::vector<WorkloadSet> sets;
    for (WorkloadKind k : allWorkloadKinds())
        sets.push_back({workloadName(k), {k}});
    if (includeMix) {
        sets.push_back({"Mixed",
                        {WorkloadKind::DB, WorkloadKind::TPCW,
                         WorkloadKind::JAPP, WorkloadKind::WEB}});
    }
    return sets;
}

double
envScale()
{
    const char *s = std::getenv("IPREF_SCALE");
    if (!s)
        return 1.0;
    double v = std::strtod(s, nullptr);
    return v > 0 ? v : 1.0;
}

} // namespace ipref
