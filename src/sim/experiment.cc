#include "sim/experiment.hh"

#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>
#include <utility>

#include "trace/trace_cache.hh"
#include "util/json.hh"
#include "util/logging.hh"
#include "util/metrics.hh"
#include "util/rng.hh"
#include "util/thread_pool.hh"
#include "util/trace_event.hh"

namespace ipref
{

namespace
{

/**
 * Live campaign telemetry: batch-level progress counters ipref_top
 * renders as "done / total" plus per-run wall-time distribution.
 * `completed` counts fresh runs reaching a final status this process;
 * `restored` counts checkpoint restores (done = completed + restored).
 */
struct BatchMetricRefs
{
    metrics::Counter &specs;
    metrics::Counter &started;
    metrics::Counter &ok;
    metrics::Counter &failed;
    metrics::Counter &timedOut;
    metrics::Counter &interrupted;
    metrics::Counter &restored;
    metrics::Counter &completed;
    metrics::Counter &attempts;
    metrics::Counter &retries;
    metrics::Gauge &active;
    metrics::LatencyHistogram &wallMs;
};

BatchMetricRefs &
batchMetrics()
{
    static BatchMetricRefs refs{
        metrics::registry().counter("ipref_batch_specs_total",
                                    "specs submitted to runBatch"),
        metrics::registry().counter("ipref_batch_runs_started_total",
                                    "runs entering their failure "
                                    "domain"),
        metrics::registry().counter("ipref_batch_runs_ok_total",
                                    "runs finishing Ok"),
        metrics::registry().counter("ipref_batch_runs_failed_total",
                                    "runs finishing Failed"),
        metrics::registry().counter("ipref_batch_runs_timeout_total",
                                    "runs finishing TimedOut"),
        metrics::registry().counter(
            "ipref_batch_runs_interrupted_total",
            "runs finishing Interrupted"),
        metrics::registry().counter(
            "ipref_batch_runs_restored_total",
            "runs restored from a campaign checkpoint"),
        metrics::registry().counter(
            "ipref_batch_runs_completed_total",
            "fresh runs reaching any final status"),
        metrics::registry().counter("ipref_batch_attempts_total",
                                    "produceRun attempts (incl. "
                                    "retries)"),
        metrics::registry().counter("ipref_batch_retries_total",
                                    "attempts beyond a run's first"),
        metrics::registry().gauge("ipref_batch_active_runs",
                                  "runs currently executing"),
        metrics::registry().histogram(
            "ipref_batch_run_wall_ms", metrics::defaultMsBounds(),
            "per-run wall time incl. retries (ms)"),
    };
    return refs;
}

ObservabilityOptions g_observability;

/**
 * The installed report sink. g_reportMutex guards the pointer itself;
 * sinks are internally thread-safe, so holders may use a grabbed
 * shared_ptr without the lock. Lazily defaults to a FileReportSink
 * over the (empty) default ObservabilityOptions.
 */
std::mutex g_reportMutex;
std::shared_ptr<ReportSink> g_reportSink;
bool g_flushRegistered = false;

std::shared_ptr<ReportSink>
currentSink()
{
    std::lock_guard<std::mutex> lock(g_reportMutex);
    if (!g_reportSink)
        g_reportSink = std::make_shared<FileReportSink>(
            g_observability.jsonPath, g_observability.tracePath);
    return g_reportSink;
}

/** Everything one run emits besides its SimResults. */
struct RunOutput
{
    SimResults results;
    std::string jsonReport; //!< empty when JSON reporting is off
    std::string traceJsonl; //!< empty when tracing is off
    bool traced = false;
};

/** Build and run one System; no shared state is touched. */
RunOutput
produceRun(const RunSpec &spec, unsigned attempt = 1,
           std::shared_ptr<RunControl> control = nullptr)
{
    SystemConfig cfg = makeConfig(spec);
    // Fault-injection gating: with faultAttempts set, the fault fires
    // only on the first faultAttempts attempts, so a retried (or
    // resumed) spec eventually succeeds.
    if (spec.faultAttempts > 0 && attempt > spec.faultAttempts)
        cfg.faultAtInstr = 0;
    cfg.control = std::move(control);
    System system(cfg);
    RunOutput out;
    out.results = system.run();
    if (!g_observability.jsonPath.empty()) {
        std::ostringstream report;
        system.dumpJson(report);
        out.jsonReport = report.str();
    }
    if (system.traceSink() && !g_observability.tracePath.empty()) {
        std::ostringstream trace;
        system.traceSink()->writeJsonLines(trace);
        out.traceJsonl = trace.str();
        out.traced = true;
    }
    return out;
}

/**
 * Commit one run's side effects, in input order: buffer the JSON
 * report and hand the trace tail to the sink (which, for the default
 * file sink, overwrites the trace file so it holds the most recent
 * run — the sequential behaviour).
 */
void
commitRun(RunOutput &&out)
{
    std::shared_ptr<ReportSink> sink = currentSink();
    if (!out.jsonReport.empty())
        sink->recordReport(out.jsonReport);
    if (out.traced)
        sink->recordTrace(out.traceJsonl);
}

} // namespace

// --- report sink ------------------------------------------------------

FileReportSink::FileReportSink(std::string jsonPath,
                               std::string tracePath)
    : jsonPath_(std::move(jsonPath)), tracePath_(std::move(tracePath))
{}

void
FileReportSink::recordReport(const std::string &json)
{
    std::lock_guard<std::mutex> lock(mu_);
    reports_.push_back(json);
    dirty_ = true;
}

void
FileReportSink::recordTrace(const std::string &jsonl)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (tracePath_.empty())
        return;
    std::ofstream trace(tracePath_);
    if (trace)
        trace << jsonl;
}

void
FileReportSink::flush()
{
    std::lock_guard<std::mutex> lock(mu_);
    if (!dirty_ || jsonPath_.empty())
        return;
    std::ofstream out(jsonPath_);
    if (!out) {
        // Runs from atexit(): aborting the whole process over a report
        // it was already exiting from helps nobody — warn and keep the
        // buffered reports for a later explicit flush.
        ipref_warn("cannot write JSON report to '%s'",
                   jsonPath_.c_str());
        return;
    }
    out << "[\n";
    for (std::size_t i = 0; i < reports_.size(); ++i)
        out << (i ? ",\n" : "") << reports_[i];
    // Trailing campaign-summary document: process-wide shared-decode
    // effectiveness for the whole report. Tooling distinguishes it
    // from per-run reports by the absence of a "results" section.
    if (!reports_.empty()) {
        TraceCache::Stats tc = TraceCache::instance().stats();
        out << ",\n{\"campaign_summary\": {\"trace_cache\": "
            << "{\"decodes\": " << tc.decodes
            << ", \"hits\": " << tc.hits
            << ", \"evictions\": " << tc.evictions
            << ", \"stale_reloads\": " << tc.staleReloads << "}}}\n";
    }
    out << "]\n";
    dirty_ = false;
}

void
setReportSink(std::shared_ptr<ReportSink> sink)
{
    std::lock_guard<std::mutex> lock(g_reportMutex);
    g_reportSink = std::move(sink);
}

std::shared_ptr<ReportSink>
reportSink()
{
    return currentSink();
}

void
commitSystemReport(const System &system)
{
    std::ostringstream report;
    system.dumpJson(report);
    currentSink()->recordReport(report.str());
}

void
flushObservability()
{
    currentSink()->flush();
}

void
setObservability(const ObservabilityOptions &opts)
{
    std::lock_guard<std::mutex> lock(g_reportMutex);
    g_observability = opts;
    // Installing options resets the sink: buffered reports from a
    // previous configuration are dropped, as before.
    g_reportSink = std::make_shared<FileReportSink>(opts.jsonPath,
                                                    opts.tracePath);
    if (!opts.jsonPath.empty() && !g_flushRegistered) {
        std::atexit(flushObservability);
        g_flushRegistered = true;
    }
}

const ObservabilityOptions &
observability()
{
    return g_observability;
}

namespace
{

/** Resolve a TraceSpec preset name to a workload list. */
std::vector<WorkloadKind>
presetWorkloads(const std::string &preset)
{
    if (preset == "mixed" || preset == "Mixed")
        return {WorkloadKind::DB, WorkloadKind::TPCW,
                WorkloadKind::JAPP, WorkloadKind::WEB};
    return {parseWorkloadKind(preset)};
}

} // namespace

RunSpec::Builder &
RunSpec::Builder::scheme(const std::string &token)
{
    spec_.scheme = parseScheme(token);
    return *this;
}

RunSpec::Builder &
RunSpec::Builder::policy(const PrefetchPolicy &p)
{
    spec_.scheme = p.scheme;
    spec_.degree = p.degree;
    spec_.tableEntries = p.tableEntries;
    spec_.targetWays = p.targetWays;
    spec_.queueSize = p.queueSize;
    spec_.historySize = p.historySize;
    spec_.useConfidenceFilter = p.useConfidenceFilter;
    return *this;
}

RunSpec
RunSpec::Builder::build() const
{
    const RunSpec &s = spec_;
    TraceSpec trace = s.effectiveTrace();

    if (!trace.enabled() && trace.preset.empty() &&
        s.workloads.empty())
        ipref_raise(ConfigError,
                    "RunSpec: no instruction stream (set workloads, "
                    "a trace file, or a workload preset)");
    if (trace.enabled() && !trace.preset.empty())
        ipref_raise(ConfigError,
                    "RunSpec: trace path and workload preset are "
                    "mutually exclusive");
    if (!trace.preset.empty())
        presetWorkloads(trace.preset); // throws on an unknown name
    if (s.scheme != PrefetchScheme::None && s.degree == 0)
        ipref_raise(ConfigError,
                    "RunSpec: prefetch degree must be >= 1");
    if (s.instrScale <= 0.0)
        ipref_raise(ConfigError,
                    "RunSpec: instrScale must be > 0 (got %g)",
                    s.instrScale);
    if (s.memGbPerSec < 0.0)
        ipref_raise(ConfigError,
                    "RunSpec: memGbPerSec must be >= 0 (got %g)",
                    s.memGbPerSec);
    if (s.l1iBytes == 0 || s.l2Bytes == 0)
        ipref_raise(ConfigError,
                    "RunSpec: cache sizes must be non-zero");
    if (s.l1iAssoc == 0)
        ipref_raise(ConfigError, "RunSpec: l1iAssoc must be >= 1");
    if (s.lineBytes == 0 || (s.lineBytes & (s.lineBytes - 1)) != 0)
        ipref_raise(ConfigError,
                    "RunSpec: lineBytes must be a power of two (got "
                    "%u)",
                    s.lineBytes);
    if (s.l1iBytes % (static_cast<std::uint64_t>(s.lineBytes) *
                      s.l1iAssoc) != 0)
        ipref_raise(ConfigError,
                    "RunSpec: l1iBytes must be divisible by lineBytes "
                    "* l1iAssoc");
    return s;
}

SystemConfig
makeConfig(const RunSpec &spec)
{
    SystemConfig cfg;
    cfg.numCores = spec.cmp ? 4 : 1;
    cfg.workloads = spec.workloads;

    TraceSpec trace = spec.effectiveTrace();
    if (!trace.preset.empty() && !trace.enabled())
        cfg.workloads = presetWorkloads(trace.preset);
    cfg.baseSeed = spec.baseSeed;
    cfg.functional = spec.functional;

    cfg.hierarchy.l1i.sizeBytes = spec.l1iBytes;
    cfg.hierarchy.l1i.assoc = spec.l1iAssoc;
    cfg.hierarchy.l1i.lineBytes = spec.lineBytes;
    cfg.hierarchy.l1d.lineBytes = spec.lineBytes;
    cfg.hierarchy.l2.sizeBytes = spec.l2Bytes;
    cfg.hierarchy.l2.lineBytes = spec.lineBytes;
    cfg.hierarchy.prefetchBypassL2 = spec.bypassL2;
    cfg.hierarchy.idealEliminate = spec.idealEliminate;

    // Off-chip bandwidth: 10 GB/s single core, 20 GB/s CMP (paper §5).
    cfg.hierarchy.memory.gbPerSec =
        spec.memGbPerSec > 0.0 ? spec.memGbPerSec
                               : (spec.cmp ? 20.0 : 10.0);
    cfg.hierarchy.memory.lineBytes = spec.lineBytes;

    cfg.prefetch.scheme = spec.scheme;
    cfg.prefetch.degree = spec.degree;
    cfg.prefetch.tableEntries = spec.tableEntries;
    cfg.prefetch.targetWays = spec.targetWays;
    cfg.prefetch.useConfidenceFilter = spec.useConfidenceFilter;
    if (spec.historySize >= 0)
        cfg.prefetch.historySize =
            static_cast<unsigned>(spec.historySize);
    if (spec.queueSize >= 0)
        cfg.prefetch.queueSize = static_cast<unsigned>(spec.queueSize);

    cfg.statsIntervalInstrs = g_observability.intervalInstrs;
    cfg.traceCapacity = g_observability.traceCapacity;
    cfg.profileSites =
        static_cast<unsigned>(g_observability.profileSites);

    cfg.trace = trace;
    cfg.faultAtInstr = spec.faultAtInstr;
    cfg.faultTransient = spec.faultTransient;

    double scale = spec.instrScale;
    if (spec.functional) {
        cfg.warmupInstrs =
            static_cast<std::uint64_t>(1'000'000 * scale);
        cfg.measureInstrs =
            static_cast<std::uint64_t>(3'000'000 * scale);
    } else {
        cfg.warmupInstrs =
            static_cast<std::uint64_t>(600'000 * scale);
        cfg.measureInstrs =
            static_cast<std::uint64_t>(1'600'000 * scale);
    }
    return cfg;
}

SimResults
runSpec(const RunSpec &spec)
{
    RunOutput out = produceRun(spec);
    SimResults results = out.results;
    commitRun(std::move(out));
    return results;
}

namespace
{

/** Batch-wide SIGINT latch (async-signal-safe: flag only). */
volatile std::sig_atomic_t g_batchSigint = 0;

void
batchSigintHandler(int)
{
    g_batchSigint = 1;
}

/**
 * One thread watching every in-flight run: raises stopTimeout on runs
 * past their deadline and stopInterrupt on all of them after SIGINT.
 * The runs notice cooperatively (System::checkControl) and unwind with
 * a SimError, so pool slots always drain — no thread is ever killed.
 */
class BatchWatchdog
{
  public:
    BatchWatchdog() : thread_([this] { loop(); }) {}

    ~BatchWatchdog()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            done_ = true;
        }
        cv_.notify_all();
        thread_.join();
    }

    std::shared_ptr<RunControl>
    add(std::uint64_t timeoutMs)
    {
        Watch w;
        w.control = std::make_shared<RunControl>();
        w.hasDeadline = timeoutMs > 0;
        if (w.hasDeadline)
            w.deadline = std::chrono::steady_clock::now() +
                         std::chrono::milliseconds(timeoutMs);
        std::lock_guard<std::mutex> lock(mutex_);
        watches_.push_back(w);
        return w.control;
    }

    void
    remove(const std::shared_ptr<RunControl> &control)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (auto it = watches_.begin(); it != watches_.end(); ++it) {
            if (it->control == control) {
                watches_.erase(it);
                return;
            }
        }
    }

  private:
    struct Watch
    {
        std::shared_ptr<RunControl> control;
        std::chrono::steady_clock::time_point deadline;
        bool hasDeadline = false;
    };

    void
    loop()
    {
        std::unique_lock<std::mutex> lock(mutex_);
        while (!done_) {
            cv_.wait_for(lock, std::chrono::milliseconds(20));
            auto now = std::chrono::steady_clock::now();
            for (Watch &w : watches_) {
                if (g_batchSigint)
                    w.control->stop.store(
                        RunControl::stopInterrupt,
                        std::memory_order_relaxed);
                else if (w.hasDeadline && now >= w.deadline)
                    w.control->stop.store(
                        RunControl::stopTimeout,
                        std::memory_order_relaxed);
            }
        }
    }

    std::mutex mutex_;
    std::condition_variable cv_;
    bool done_ = false;
    std::vector<Watch> watches_;
    std::thread thread_;
};

/** A worker's full product: the public outcome + buffered output. */
struct WorkerResult
{
    RunOutcome outcome;
    RunOutput output;
};

/**
 * One spec's failure domain: run, catch, classify, retry transient
 * failures with capped exponential backoff and deterministic jitter.
 * Attempt numbers continue from @p priorAttempts (a resumed failed
 * entry), keeping fault gating and jitter reproducible across resume.
 */
WorkerResult
runOne(const RunSpec &spec, std::uint64_t fingerprint,
       unsigned priorAttempts, const BatchOptions &opt,
       BatchWatchdog &watchdog)
{
    WorkerResult wr;
    auto t0 = std::chrono::steady_clock::now();
    unsigned maxAttempts = opt.maxAttempts ? opt.maxAttempts : 1;

    BatchMetricRefs &bm = batchMetrics();
    bm.started.add(1);
    bm.active.add(1);

    for (unsigned local = 1; local <= maxAttempts; ++local) {
        unsigned attempt = priorAttempts + local;
        wr.outcome.attempts = attempt;
        bm.attempts.add(1);
        if (local > 1)
            bm.retries.add(1);
        if (g_batchSigint) {
            wr.outcome.status = RunStatus::Interrupted;
            wr.outcome.errorKind = SimError::Kind::Interrupted;
            wr.outcome.error = "batch interrupted before run";
            break;
        }

        std::shared_ptr<RunControl> control =
            watchdog.add(opt.runTimeoutMs);
        try {
            wr.output = produceRun(spec, attempt, control);
            watchdog.remove(control);
            wr.outcome.status = RunStatus::Ok;
            wr.outcome.results = wr.output.results;
            break;
        } catch (const SimError &e) {
            watchdog.remove(control);
            wr.outcome.error = e.what();
            wr.outcome.errorKind = e.kind();
            if (e.kind() == SimError::Kind::Timeout) {
                wr.outcome.status = RunStatus::TimedOut;
                break;
            }
            if (e.kind() == SimError::Kind::Interrupted) {
                wr.outcome.status = RunStatus::Interrupted;
                break;
            }
            wr.outcome.status = RunStatus::Failed;
            if (!e.transient() || local == maxAttempts)
                break;
            // Capped exponential backoff; the jitter comes from the
            // project's deterministic RNG keyed on (fingerprint,
            // attempt), so a replayed campaign waits identically.
            std::uint64_t base = opt.retryBaseMs ? opt.retryBaseMs : 1;
            unsigned shift = local - 1 < 20 ? local - 1 : 20;
            std::uint64_t delay = base << shift;
            if (opt.retryCapMs && delay > opt.retryCapMs)
                delay = opt.retryCapMs;
            Rng rng(fingerprint ^
                    (0x9e3779b97f4a7c15ULL * attempt));
            std::uint64_t jittered =
                delay / 2 + rng.below(delay / 2 + 1);
            std::this_thread::sleep_for(
                std::chrono::milliseconds(jittered));
        } catch (const std::exception &e) {
            watchdog.remove(control);
            wr.outcome.status = RunStatus::Failed;
            wr.outcome.errorKind = SimError::Kind::Invariant;
            wr.outcome.error = e.what();
            break;
        }
    }

    wr.outcome.wallMs = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());

    bm.active.sub(1);
    bm.completed.add(1);
    bm.wallMs.observe(static_cast<double>(wr.outcome.wallMs));
    switch (wr.outcome.status) {
      case RunStatus::Ok:
        bm.ok.add(1);
        break;
      case RunStatus::Failed:
        bm.failed.add(1);
        break;
      case RunStatus::TimedOut:
        bm.timedOut.add(1);
        break;
      case RunStatus::Interrupted:
        bm.interrupted.add(1);
        break;
    }
    return wr;
}

/**
 * A failed run still appears in the JSON report array, as a small
 * object carrying the failure instead of results, so a campaign's
 * report accounts for every spec.
 */
void
commitFailure(std::uint64_t fingerprint, const RunOutcome &outcome)
{
    std::ostringstream report;
    report << "{\"fingerprint\": " << jsonString(jsonHex(fingerprint))
           << ", \"status\": "
           << jsonString(runStatusName(outcome.status))
           << ", \"error_kind\": "
           << jsonString(errorKindName(outcome.errorKind))
           << ", \"error\": " << jsonString(outcome.error)
           << ", \"attempts\": " << outcome.attempts
           << ", \"wall_ms\": " << outcome.wallMs << "}";
    currentSink()->recordReport(report.str());
}

/** Re-commit a checkpointed run's buffered report, in input order. */
void
commitCheckpointed(const ManifestEntry &entry)
{
    if (entry.jsonReport.empty())
        return;
    currentSink()->recordReport(entry.jsonReport);
}

} // namespace

std::vector<RunOutcome>
runBatch(const std::vector<RunSpec> &specs, const BatchOptions &opt)
{
    unsigned jobs = opt.jobs;
    if (jobs == 0)
        jobs = std::thread::hardware_concurrency();
    if (jobs == 0)
        jobs = 1;
    jobs = static_cast<unsigned>(
        std::min<std::size_t>(jobs, specs.size()));
    if (jobs == 0)
        jobs = 1;

    CampaignManifest manifest(opt.manifestPath);
    if (!opt.manifestPath.empty() && opt.resume) {
        Expected<CampaignManifest> loaded =
            CampaignManifest::load(opt.manifestPath);
        if (loaded.ok())
            manifest = std::move(loaded.value());
        else
            ipref_warn("starting campaign fresh: %s",
                       loaded.error().what());
    }

    batchMetrics().specs.add(specs.size());

    std::vector<std::uint64_t> fingerprints;
    fingerprints.reserve(specs.size());
    for (const RunSpec &spec : specs)
        fingerprints.push_back(fingerprintSpec(spec));

    g_batchSigint = 0;
    auto prevHandler = std::signal(SIGINT, batchSigintHandler);

    std::vector<RunOutcome> outcomes(specs.size());
    {
        BatchWatchdog watchdog;
        ThreadPool pool(jobs);
        std::vector<std::future<WorkerResult>> futures(specs.size());
        std::vector<const ManifestEntry *> checkpointed(specs.size(),
                                                        nullptr);

        for (std::size_t i = 0; i < specs.size(); ++i) {
            unsigned prior = 0;
            if (opt.resume) {
                const ManifestEntry *e =
                    manifest.find(fingerprints[i]);
                if (e && e->status == RunStatus::Ok) {
                    checkpointed[i] = e;
                    continue;
                }
                prior = e ? e->attempts : 0;
            }
            const RunSpec &spec = specs[i];
            std::uint64_t fp = fingerprints[i];
            futures[i] = pool.submit([&spec, fp, prior, &opt,
                                      &watchdog] {
                return runOne(spec, fp, prior, opt, watchdog);
            });
        }

        // Collect strictly in input order: observability commits and
        // manifest records land deterministically, so the final JSON
        // report is identical whether runs were live, retried, or
        // restored from the checkpoint.
        for (std::size_t i = 0; i < specs.size(); ++i) {
            if (checkpointed[i]) {
                const ManifestEntry &e = *checkpointed[i];
                RunOutcome &o = outcomes[i];
                o.status = RunStatus::Ok;
                o.results = e.results;
                o.attempts = e.attempts;
                o.wallMs = 0;
                o.fromCheckpoint = true;
                batchMetrics().restored.add(1);
                commitCheckpointed(e);
                continue;
            }
            WorkerResult wr = futures[i].get();
            outcomes[i] = wr.outcome;

            if (!opt.manifestPath.empty()) {
                ManifestEntry e;
                e.fingerprint = fingerprints[i];
                e.status = wr.outcome.status;
                e.attempts = wr.outcome.attempts;
                e.wallMs = wr.outcome.wallMs;
                e.errorKind = wr.outcome.errorKind;
                e.errorMessage = wr.outcome.error;
                e.results = wr.outcome.results;
                e.jsonReport = wr.output.jsonReport;
                try {
                    manifest.record(std::move(e));
                } catch (const SimError &err) {
                    ipref_warn("checkpoint write failed: %s",
                               err.what());
                }
            }
            if (!wr.outcome.ok())
                commitFailure(fingerprints[i], wr.outcome);
            commitRun(std::move(wr.output));
        }
    }

    std::signal(SIGINT, prevHandler);
    return outcomes;
}

std::vector<SimResults>
runSpecs(const std::vector<RunSpec> &specs, unsigned jobs)
{
    // Compatibility wrapper over the fault-tolerant runner: every run
    // still executes in its own failure domain (so one bad spec can't
    // abort in-flight work), but the first failure surfaces as an
    // exception once the batch has drained.
    BatchOptions opt;
    opt.jobs = jobs;
    opt.maxAttempts = 1;
    std::vector<RunOutcome> outcomes = runBatch(specs, opt);

    std::vector<SimResults> results;
    results.reserve(outcomes.size());
    for (const RunOutcome &outcome : outcomes) {
        if (!outcome.ok())
            throw SimError(outcome.errorKind, outcome.error);
        results.push_back(outcome.results);
    }
    return results;
}

std::vector<WorkloadSet>
figureWorkloads(bool includeMix)
{
    std::vector<WorkloadSet> sets;
    for (WorkloadKind k : allWorkloadKinds())
        sets.push_back({workloadName(k), {k}});
    if (includeMix) {
        sets.push_back({"Mixed",
                        {WorkloadKind::DB, WorkloadKind::TPCW,
                         WorkloadKind::JAPP, WorkloadKind::WEB}});
    }
    return sets;
}

double
envScale()
{
    const char *s = std::getenv("IPREF_SCALE");
    if (!s)
        return 1.0;
    double v = std::strtod(s, nullptr);
    return v > 0 ? v : 1.0;
}

} // namespace ipref
