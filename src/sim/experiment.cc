#include "sim/experiment.hh"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/logging.hh"
#include "util/trace_event.hh"

namespace ipref
{

namespace
{

ObservabilityOptions g_observability;

/** JSON reports of every runSpec() since setObservability(). */
std::vector<std::string> g_jsonReports;

void
rewriteJsonArray()
{
    std::ofstream out(g_observability.jsonPath);
    if (!out)
        ipref_fatal("cannot write JSON report to '%s'",
                    g_observability.jsonPath.c_str());
    out << "[\n";
    for (std::size_t i = 0; i < g_jsonReports.size(); ++i)
        out << (i ? ",\n" : "") << g_jsonReports[i];
    out << "]\n";
}

} // namespace

void
setObservability(const ObservabilityOptions &opts)
{
    g_observability = opts;
    g_jsonReports.clear();
    if (opts.traceCapacity > 0)
        TraceSink::global().enable(opts.traceCapacity);
    else
        TraceSink::global().disable();
}

const ObservabilityOptions &
observability()
{
    return g_observability;
}

SystemConfig
makeConfig(const RunSpec &spec)
{
    SystemConfig cfg;
    cfg.numCores = spec.cmp ? 4 : 1;
    cfg.workloads = spec.workloads;
    cfg.baseSeed = spec.baseSeed;
    cfg.functional = spec.functional;

    cfg.hierarchy.l1i.sizeBytes = spec.l1iBytes;
    cfg.hierarchy.l1i.assoc = spec.l1iAssoc;
    cfg.hierarchy.l1i.lineBytes = spec.lineBytes;
    cfg.hierarchy.l1d.lineBytes = spec.lineBytes;
    cfg.hierarchy.l2.sizeBytes = spec.l2Bytes;
    cfg.hierarchy.l2.lineBytes = spec.lineBytes;
    cfg.hierarchy.prefetchBypassL2 = spec.bypassL2;
    cfg.hierarchy.idealEliminate = spec.idealEliminate;

    // Off-chip bandwidth: 10 GB/s single core, 20 GB/s CMP (paper §5).
    cfg.hierarchy.memory.gbPerSec = spec.cmp ? 20.0 : 10.0;
    cfg.hierarchy.memory.lineBytes = spec.lineBytes;

    cfg.prefetch.scheme = spec.scheme;
    cfg.prefetch.degree = spec.degree;
    cfg.prefetch.tableEntries = spec.tableEntries;
    cfg.prefetch.targetWays = spec.targetWays;

    cfg.statsIntervalInstrs = g_observability.intervalInstrs;
    cfg.profileSites =
        static_cast<unsigned>(g_observability.profileSites);

    double scale = spec.instrScale;
    if (spec.functional) {
        cfg.warmupInstrs =
            static_cast<std::uint64_t>(1'000'000 * scale);
        cfg.measureInstrs =
            static_cast<std::uint64_t>(3'000'000 * scale);
    } else {
        cfg.warmupInstrs =
            static_cast<std::uint64_t>(600'000 * scale);
        cfg.measureInstrs =
            static_cast<std::uint64_t>(1'600'000 * scale);
    }
    return cfg;
}

SimResults
runSpec(const RunSpec &spec)
{
    System system(makeConfig(spec));
    SimResults results = system.run();

    if (!g_observability.jsonPath.empty()) {
        std::ostringstream report;
        system.dumpJson(report);
        g_jsonReports.push_back(report.str());
        rewriteJsonArray();
    }
    if (g_observability.traceCapacity > 0 &&
        !g_observability.tracePath.empty()) {
        // Retained tail of the most recent run (the ring is cleared
        // between runs so events don't bleed across configurations).
        std::ofstream out(g_observability.tracePath);
        if (out)
            TraceSink::global().writeJsonLines(out);
        TraceSink::global().clear();
    }
    return results;
}

std::vector<WorkloadSet>
figureWorkloads(bool includeMix)
{
    std::vector<WorkloadSet> sets;
    for (WorkloadKind k : allWorkloadKinds())
        sets.push_back({workloadName(k), {k}});
    if (includeMix) {
        sets.push_back({"Mixed",
                        {WorkloadKind::DB, WorkloadKind::TPCW,
                         WorkloadKind::JAPP, WorkloadKind::WEB}});
    }
    return sets;
}

double
envScale()
{
    const char *s = std::getenv("IPREF_SCALE");
    if (!s)
        return 1.0;
    double v = std::strtod(s, nullptr);
    return v > 0 ? v : 1.0;
}

} // namespace ipref
