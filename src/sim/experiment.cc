#include "sim/experiment.hh"

#include <cstdlib>

namespace ipref
{

SystemConfig
makeConfig(const RunSpec &spec)
{
    SystemConfig cfg;
    cfg.numCores = spec.cmp ? 4 : 1;
    cfg.workloads = spec.workloads;
    cfg.baseSeed = spec.baseSeed;
    cfg.functional = spec.functional;

    cfg.hierarchy.l1i.sizeBytes = spec.l1iBytes;
    cfg.hierarchy.l1i.assoc = spec.l1iAssoc;
    cfg.hierarchy.l1i.lineBytes = spec.lineBytes;
    cfg.hierarchy.l1d.lineBytes = spec.lineBytes;
    cfg.hierarchy.l2.sizeBytes = spec.l2Bytes;
    cfg.hierarchy.l2.lineBytes = spec.lineBytes;
    cfg.hierarchy.prefetchBypassL2 = spec.bypassL2;
    cfg.hierarchy.idealEliminate = spec.idealEliminate;

    // Off-chip bandwidth: 10 GB/s single core, 20 GB/s CMP (paper §5).
    cfg.hierarchy.memory.gbPerSec = spec.cmp ? 20.0 : 10.0;
    cfg.hierarchy.memory.lineBytes = spec.lineBytes;

    cfg.prefetch.scheme = spec.scheme;
    cfg.prefetch.degree = spec.degree;
    cfg.prefetch.tableEntries = spec.tableEntries;
    cfg.prefetch.targetWays = spec.targetWays;

    double scale = spec.instrScale;
    if (spec.functional) {
        cfg.warmupInstrs =
            static_cast<std::uint64_t>(1'000'000 * scale);
        cfg.measureInstrs =
            static_cast<std::uint64_t>(3'000'000 * scale);
    } else {
        cfg.warmupInstrs =
            static_cast<std::uint64_t>(600'000 * scale);
        cfg.measureInstrs =
            static_cast<std::uint64_t>(1'600'000 * scale);
    }
    return cfg;
}

SimResults
runSpec(const RunSpec &spec)
{
    System system(makeConfig(spec));
    return system.run();
}

std::vector<WorkloadSet>
figureWorkloads(bool includeMix)
{
    std::vector<WorkloadSet> sets;
    for (WorkloadKind k : allWorkloadKinds())
        sets.push_back({workloadName(k), {k}});
    if (includeMix) {
        sets.push_back({"Mixed",
                        {WorkloadKind::DB, WorkloadKind::TPCW,
                         WorkloadKind::JAPP, WorkloadKind::WEB}});
    }
    return sets;
}

double
envScale()
{
    const char *s = std::getenv("IPREF_SCALE");
    if (!s)
        return 1.0;
    double v = std::strtod(s, nullptr);
    return v > 0 ? v : 1.0;
}

} // namespace ipref
