/**
 * @file
 * Campaign checkpointing: a JSON manifest mapping spec fingerprints to
 * completed results, written atomically after every run so an
 * interrupted batch (crash, SIGKILL, Ctrl-C) can resume without
 * re-running finished work — and without perturbing the results, which
 * round-trip bit-exactly (counters are serialized as hex strings).
 */

#ifndef IPREF_SIM_CAMPAIGN_HH
#define IPREF_SIM_CAMPAIGN_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/config.hh"
#include "util/error.hh"

namespace ipref
{

struct RunSpec;
struct JsonValue;

/** Terminal status of one run in a batch. */
enum class RunStatus : std::uint8_t
{
    Ok,          //!< completed; results are valid
    Failed,      //!< threw (after exhausting any retries)
    TimedOut,    //!< exceeded the per-run deadline
    Interrupted, //!< cancelled by SIGINT / batch shutdown
};

/** Stable lower-case name ("ok", "failed", ...). */
const char *runStatusName(RunStatus s);

/** Parse runStatusName() output back (unknown -> Failed). */
RunStatus parseRunStatus(const std::string &name);

/**
 * 64-bit fingerprint over every RunSpec field that affects results.
 * Two specs collide only if they would produce identical runs, so the
 * manifest can key completed work on it across process restarts.
 */
std::uint64_t fingerprintSpec(const RunSpec &spec);

/** Exact JSON serialization of SimResults (counters as hex strings). */
std::string resultsToJson(const SimResults &r);

/** Inverse of resultsToJson (ipc is recomputed, not stored). */
Expected<SimResults> resultsFromJson(const JsonValue &v);

/** One run as remembered by the manifest. */
struct ManifestEntry
{
    std::uint64_t fingerprint = 0;
    RunStatus status = RunStatus::Failed;
    unsigned attempts = 0;
    std::uint64_t wallMs = 0;
    SimError::Kind errorKind = SimError::Kind::Invariant;
    std::string errorMessage;
    SimResults results;     //!< valid when status == Ok
    std::string jsonReport; //!< buffered observability report ("" = none)
};

/**
 * The on-disk campaign state. Every record() persists the whole
 * manifest via temp-file + rename, so a reader never observes a
 * partially written file no matter when the process dies.
 */
class CampaignManifest
{
  public:
    CampaignManifest() = default;
    explicit CampaignManifest(std::string path) : path_(std::move(path))
    {}

    /**
     * Read and parse @p path. A missing, unreadable or corrupt file is
     * an answer, not an exception (the caller decides whether to start
     * fresh), hence Expected.
     */
    static Expected<CampaignManifest> load(const std::string &path);

    const std::string &path() const { return path_; }
    std::size_t size() const { return order_.size(); }

    /** Entry for @p fingerprint, or nullptr. */
    const ManifestEntry *find(std::uint64_t fingerprint) const;

    /** Every entry in stable record order (monitoring / tooling). */
    std::vector<const ManifestEntry *> entriesInOrder() const;

    /** Insert/replace @p entry; persists when a path is set. */
    void record(ManifestEntry entry);

    /**
     * Write the manifest atomically (temp-file + rename). Throws
     * SimError(Io) on failure, transient-flagged when the errno is.
     */
    void write() const;

  private:
    std::string path_;
    std::vector<std::uint64_t> order_; //!< stable dump order
    std::map<std::uint64_t, ManifestEntry> entries_;
};

} // namespace ipref

#endif // IPREF_SIM_CAMPAIGN_HH
