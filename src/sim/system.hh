/**
 * @file
 * System assembly and the simulation loops (timing and functional).
 */

#ifndef IPREF_SIM_SYSTEM_HH
#define IPREF_SIM_SYSTEM_HH

#include <memory>
#include <ostream>
#include <vector>

#include "sim/config.hh"

namespace ipref
{

/**
 * A complete simulated chip: workload walkers, hierarchy, prefetch
 * engines and cores, with warm-up/measure orchestration.
 */
class System
{
  public:
    explicit System(const SystemConfig &cfg);
    ~System();

    System(const System &) = delete;
    System &operator=(const System &) = delete;

    /** Run warm-up then measurement; @return measurement deltas. */
    SimResults run();

    /** Results of the most recent run(). */
    const SimResults &results() const { return results_; }

    const SystemConfig &config() const { return cfg_; }

    CacheHierarchy &hierarchy() { return *hierarchy_; }
    PrefetchEngine &engine(CoreId core) { return *engines_[core]; }
    OoOCore &cpuCore(CoreId core) { return *cores_[core]; }
    Workload &workload(std::size_t i) { return *workloads_[i]; }
    std::size_t workloadCount() const { return workloads_.size(); }

    /** Dump every component's statistics. */
    void dumpStats(std::ostream &os) const;

  private:
    /** Snapshot all counters into a SimResults (absolute values). */
    SimResults collect() const;

    void runTiming(std::uint64_t targetInstrs);
    void runFunctional(std::uint64_t targetInstrs);

    /** Total committed (timing) or emitted (functional). */
    std::uint64_t progress() const;

    SystemConfig cfg_;
    std::unique_ptr<CacheHierarchy> hierarchy_;
    std::vector<std::unique_ptr<Workload>> workloads_;
    std::vector<std::unique_ptr<PrefetchEngine>> engines_;
    std::vector<std::unique_ptr<OoOCore>> cores_;

    /** Functional-mode per-core fetch state. */
    struct FuncState
    {
        TraceSource *trace = nullptr;
        InstrRecord prev;
        bool havePrev = false;
        Addr curLine = invalidAddr;
        std::uint64_t emitted = 0;
    };
    std::vector<FuncState> funcState_;

    /** Single-core time-sliced workload rotation. */
    std::size_t activeSlice_ = 0;
    std::uint64_t sliceStart_ = 0;

    Cycle now_ = 0;
    SimResults results_;
};

} // namespace ipref

#endif // IPREF_SIM_SYSTEM_HH
