/**
 * @file
 * System assembly and the simulation loops (timing and functional),
 * plus the observability surface: a persistent stats tree, warm-up /
 * measurement phase profiling, interval sampling and JSON reporting.
 */

#ifndef IPREF_SIM_SYSTEM_HH
#define IPREF_SIM_SYSTEM_HH

#include <array>
#include <memory>
#include <ostream>
#include <vector>

#include "sim/config.hh"
#include "util/stats.hh"

namespace ipref
{

class FetchProfiler;
class TraceSink;

/** Wall-clock / throughput profile of the most recent run(). */
struct PhaseProfile
{
    double warmupSeconds = 0.0;
    double measureSeconds = 0.0;
    std::uint64_t warmupInstructions = 0;
    std::uint64_t measureInstructions = 0;

    /** Simulation speed over the measurement phase (instrs/sec). */
    double
    measureInstrsPerSec() const
    {
        return measureSeconds > 0.0
                   ? static_cast<double>(measureInstructions) /
                         measureSeconds
                   : 0.0;
    }
};

/** One interval sample: counter deltas over the last N instructions. */
struct IntervalSample
{
    /** Committed instructions since the measurement started. */
    std::uint64_t endInstructions = 0;
    /** Deltas relative to the previous sample (or measure start). */
    SimResults delta;
};

/** Aggregate timeliness summary across all prefetch engines. */
struct TimelinessSummary
{
    std::uint64_t count = 0; //!< credited prefetches with a sample
    double meanCycles = 0.0;
    std::uint64_t p50Cycles = 0;
    std::uint64_t p90Cycles = 0;
    std::uint64_t maxCycles = 0;
};

/**
 * A complete simulated chip: workload walkers, hierarchy, prefetch
 * engines and cores, with warm-up/measure orchestration.
 */
class System
{
  public:
    explicit System(const SystemConfig &cfg);
    ~System();

    System(const System &) = delete;
    System &operator=(const System &) = delete;

    /** Run warm-up then measurement; @return measurement deltas. */
    SimResults run();

    /** Results of the most recent run(). */
    const SimResults &results() const { return results_; }

    const SystemConfig &config() const { return cfg_; }

    CacheHierarchy &hierarchy() { return *hierarchy_; }
    PrefetchEngine &engine(CoreId core) { return *engines_[core]; }

    /** Per-site fetch profiler (nullptr when cfg.profileSites == 0). */
    FetchProfiler *profiler() { return profiler_.get(); }
    const FetchProfiler *profiler() const { return profiler_.get(); }

    /** Owned per-run sink (nullptr when cfg.traceCapacity == 0). */
    TraceSink *traceSink() { return traceSink_.get(); }
    const TraceSink *traceSink() const { return traceSink_.get(); }
    OoOCore &cpuCore(CoreId core) { return *cores_[core]; }
    Workload &workload(std::size_t i) { return *workloads_[i]; }
    std::size_t workloadCount() const { return workloads_.size(); }

    /** Interval samples collected by the most recent run(). */
    const std::vector<IntervalSample> &samples() const { return samples_; }

    /** Wall-clock profile of the most recent run(). */
    const PhaseProfile &profile() const { return profile_; }

    /** Issue-to-first-use latency summary across all engines. */
    TimelinessSummary timeliness() const;

    /** Dump every component's statistics as text. */
    void dumpStats(std::ostream &os) const;

    /**
     * Machine-readable report: config, measurement results with
     * per-scheme prefetch lifecycle attribution, the full stats tree,
     * interval samples and the phase profile, as one JSON object.
     */
    void dumpJson(std::ostream &os) const;

  private:
    /** Snapshot all counters into a SimResults (measure-relative). */
    SimResults collect() const;

    /** The sink this run's events land in (owned or thread-current). */
    TraceSink &activeTraceSink() const;

    /** Reset registered stats at the warm-up/measure boundary. */
    void beginMeasurement();

    /** Emit due interval samples given current progress @p p. */
    void maybeSample(std::uint64_t p);

    void runTiming(std::uint64_t targetInstrs);
    void runFunctional(std::uint64_t targetInstrs);

    /**
     * Fault-injection / cancellation poll, called from the run loops
     * when either hook is armed. Throws SimError (Io/Invariant on an
     * injected fault, Timeout/Interrupted when the RunControl stop
     * flag is raised). @p ctl rate-limits the atomic load to every
     * 1024th call.
     */
    void checkControl(std::uint64_t p, std::uint64_t &ctl) const;

    /** Total committed (timing) or emitted (functional). */
    std::uint64_t progress() const;

    /**
     * Publish the instruction delta since the last publish into the
     * process-wide telemetry counters (phase-attributed). Called on a
     * coarse stride from the run loops and at phase boundaries so the
     * counters track live progress without per-instruction atomics.
     */
    void publishProgressMetrics(std::uint64_t p);

    SystemConfig cfg_;
    std::unique_ptr<CacheHierarchy> hierarchy_;
    std::vector<std::unique_ptr<Workload>> workloads_;
    /** Trace replay: per-core readers + looping wrappers (may be empty). */
    std::vector<std::unique_ptr<TraceSource>> traceReaders_;
    std::vector<std::unique_ptr<TraceSource>> traceSources_;
    std::vector<std::unique_ptr<PrefetchEngine>> engines_;
    std::vector<std::unique_ptr<OoOCore>> cores_;
    std::unique_ptr<FetchProfiler> profiler_;
    std::unique_ptr<TraceSink> traceSink_;

    /** Functional-mode per-core fetch state. */
    struct FuncState
    {
        TraceSource *trace = nullptr;
        InstrRecord prev;
        bool havePrev = false;
        Addr curLine = invalidAddr;
        std::uint64_t emitted = 0;
    };
    std::vector<FuncState> funcState_;

    /** Single-core time-sliced workload rotation. */
    std::size_t activeSlice_ = 0;
    std::uint64_t sliceStart_ = 0;

    Cycle now_ = 0;
    SimResults results_;

    // --- observability ------------------------------------------------
    /** Persistent stats tree over every component (built once). */
    std::unique_ptr<StatGroup> statsRoot_;
    std::vector<std::unique_ptr<StatGroup>> statGroups_;

    /** Progress/cycle bases of the measurement window. */
    std::uint64_t measureInstrBase_ = 0;
    Cycle measureCycleBase_ = 0;

    std::vector<IntervalSample> samples_;
    SimResults lastSample_;
    std::uint64_t nextSampleAt_ = 0;

    PhaseProfile profile_;

    /** Live-telemetry publishing state (see publishProgressMetrics). */
    std::uint64_t metricsLastProgress_ = 0;
    std::uint64_t metricsNextAt_ = 0;
    bool metricsInMeasure_ = false;
    /** Last CPI-stack totals published to the process-wide gauges. */
    std::array<std::uint64_t, kNumCycleBuckets> metricsLastStack_{};
};

} // namespace ipref

#endif // IPREF_SIM_SYSTEM_HH
