/**
 * @file
 * Experiment helpers shared by the benches and examples: canonical
 * paper configurations (Section 5) and one-call runners.
 */

#ifndef IPREF_SIM_EXPERIMENT_HH
#define IPREF_SIM_EXPERIMENT_HH

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "sim/campaign.hh"
#include "sim/system.hh"

namespace ipref
{

/** Declarative description of one experimental run. */
struct RunSpec
{
    /** 4-way CMP (true) or the single-core comparison point. */
    bool cmp = true;
    /** Workloads (see SystemConfig::workloads semantics). */
    std::vector<WorkloadKind> workloads{WorkloadKind::DB};
    /** Single-core time-sliced mixed when !cmp and 4 workloads. */

    PrefetchScheme scheme = PrefetchScheme::None;
    unsigned degree = 4;
    unsigned tableEntries = 8192;
    unsigned targetWays = 2;
    bool bypassL2 = false;

    /** Limit study (Figure 4): miss groups to eliminate. */
    std::array<bool, static_cast<std::size_t>(MissGroup::NumGroups)>
        idealEliminate{};

    /** Confidence filter [15] instead of the tag-port probe. */
    bool useConfidenceFilter = false;

    /** Recent-fetch filter / prefetch queue sizes (-1 = default;
     *  history 0 is a real value meaning "no filter"). */
    int historySize = -1;
    int queueSize = -1;

    /** Off-chip bandwidth override in GB/s (0 = paper default). */
    double memGbPerSec = 0.0;

    /** Functional (miss-rate-only) instead of timing simulation. */
    bool functional = false;

    std::uint64_t l2Bytes = 2u << 20;
    std::uint64_t l1iBytes = 32u << 10;
    unsigned l1iAssoc = 4;
    unsigned lineBytes = 64;

    /** Scales the default warm-up/measure instruction budgets. */
    double instrScale = 1.0;

    std::uint64_t baseSeed = 1;

    /**
     * Instruction-stream input: a trace file to replay (with
     * loop/tolerant/shared knobs) or a workload preset name. When not
     * set, the workloads vector above applies directly. See
     * trace/trace_spec.hh.
     */
    TraceSpec trace;

    /**
     * @deprecated Pre-TraceSpec spelling, still honored when `trace`
     * is unset — see effectiveTrace(). Use `trace` instead.
     */
    std::string tracePath;
    bool traceTolerant = false;

    /**
     * Fault-injection test hooks (see SystemConfig::faultAtInstr):
     * throw a SimError once aggregate progress reaches faultAtInstr.
     * When faultAttempts > 0 the fault only fires on the first
     * faultAttempts attempts of this spec, so retries can succeed;
     * attempt numbering continues across --resume.
     */
    std::uint64_t faultAtInstr = 0;
    bool faultTransient = false;
    unsigned faultAttempts = 0;

    /** The trace input after merging the deprecated loose fields. */
    TraceSpec
    effectiveTrace() const
    {
        if (trace.enabled() || !trace.preset.empty())
            return trace;
        if (!tracePath.empty())
            return TraceSpec::file(tracePath, traceTolerant);
        return trace;
    }

    class Builder;

    /** Start a fluent, build()-validated spec (paper defaults). */
    static Builder builder();
};

/**
 * Fluent RunSpec constructor. Setters accumulate silently; build()
 * validates the whole spec at once and throws ConfigError naming the
 * offending field, so a bad bench loop fails before any simulation
 * time is spent. A default-built Builder yields the same spec as
 * `RunSpec{}`.
 */
class RunSpec::Builder
{
  public:
    Builder() = default;

    /** Start from an existing spec (sweeps mutating one knob). */
    explicit Builder(RunSpec base) : spec_(std::move(base)) {}

    Builder &cmp(bool v) { spec_.cmp = v; return *this; }

    Builder &
    workloads(std::vector<WorkloadKind> w)
    {
        spec_.workloads = std::move(w);
        return *this;
    }

    Builder &
    workload(WorkloadKind k)
    {
        spec_.workloads = {k};
        return *this;
    }

    Builder &
    scheme(PrefetchScheme s)
    {
        spec_.scheme = s;
        return *this;
    }

    /** Parse a registry token/alias; throws ConfigError if unknown. */
    Builder &scheme(const std::string &token);

    /** Apply a whole policy bundle (scheme + knobs) at once. */
    Builder &policy(const PrefetchPolicy &p);

    Builder &degree(unsigned v) { spec_.degree = v; return *this; }

    Builder &
    tableEntries(unsigned v)
    {
        spec_.tableEntries = v;
        return *this;
    }

    Builder &
    targetWays(unsigned v)
    {
        spec_.targetWays = v;
        return *this;
    }

    Builder &bypassL2(bool v = true) { spec_.bypassL2 = v; return *this; }

    Builder &
    eliminate(MissGroup g, bool on = true)
    {
        spec_.idealEliminate[static_cast<std::size_t>(g)] = on;
        return *this;
    }

    Builder &
    eliminate(const std::array<
              bool, static_cast<std::size_t>(MissGroup::NumGroups)> &e)
    {
        spec_.idealEliminate = e;
        return *this;
    }

    Builder &
    confidenceFilter(bool v = true)
    {
        spec_.useConfidenceFilter = v;
        return *this;
    }

    Builder &historySize(int v) { spec_.historySize = v; return *this; }
    Builder &queueSize(int v) { spec_.queueSize = v; return *this; }

    Builder &
    memGbPerSec(double v)
    {
        spec_.memGbPerSec = v;
        return *this;
    }

    Builder &
    functional(bool v = true)
    {
        spec_.functional = v;
        return *this;
    }

    Builder &l2Bytes(std::uint64_t v) { spec_.l2Bytes = v; return *this; }

    Builder &
    l1iBytes(std::uint64_t v)
    {
        spec_.l1iBytes = v;
        return *this;
    }

    Builder &l1iAssoc(unsigned v) { spec_.l1iAssoc = v; return *this; }
    Builder &lineBytes(unsigned v) { spec_.lineBytes = v; return *this; }

    Builder &
    instrScale(double v)
    {
        spec_.instrScale = v;
        return *this;
    }

    Builder &
    baseSeed(std::uint64_t v)
    {
        spec_.baseSeed = v;
        return *this;
    }

    Builder &
    trace(TraceSpec t)
    {
        spec_.trace = std::move(t);
        return *this;
    }

    /** Shorthand for trace(TraceSpec::file(path, tolerant)). */
    Builder &
    traceFile(std::string path, bool tolerant = false)
    {
        spec_.trace = TraceSpec::file(std::move(path), tolerant);
        return *this;
    }

    Builder &
    faultAt(std::uint64_t instr, bool transient = false,
            unsigned attempts = 0)
    {
        spec_.faultAtInstr = instr;
        spec_.faultTransient = transient;
        spec_.faultAttempts = attempts;
        return *this;
    }

    /** Validate everything and return the spec; throws ConfigError. */
    RunSpec build() const;

  private:
    RunSpec spec_;
};

inline RunSpec::Builder
RunSpec::builder()
{
    return Builder();
}

/** Expand a RunSpec into a full SystemConfig (paper defaults). */
SystemConfig makeConfig(const RunSpec &spec);

/** Build, run, and return measurement results for @p spec. */
SimResults runSpec(const RunSpec &spec);

/**
 * Run every spec, fanning out across a thread pool of @p jobs workers
 * (0 = hardware_concurrency), and return results in input order.
 *
 * Each run is fully self-contained (its own System, stats tree, RNG
 * streams and — when tracing is on — its own TraceSink ring), so the
 * returned SimResults are bit-identical to a sequential runSpec()
 * loop regardless of jobs. Observability side effects (JSON reports,
 * the trace tail) are committed in input order under a mutex, so the
 * report array is also identical to the sequential one.
 */
std::vector<SimResults> runSpecs(const std::vector<RunSpec> &specs,
                                 unsigned jobs = 0);

/** Knobs for the fault-tolerant batch runner. */
struct BatchOptions
{
    /** Pool workers (0 = hardware_concurrency). */
    unsigned jobs = 0;

    /**
     * Attempts per spec per batch invocation. Only errors flagged
     * transient() are retried; retries back off exponentially from
     * retryBaseMs, capped at retryCapMs, with deterministic jitter
     * derived from the spec fingerprint and attempt number.
     */
    unsigned maxAttempts = 3;
    std::uint64_t retryBaseMs = 10;
    std::uint64_t retryCapMs = 1000;

    /**
     * Per-run deadline (0 = none). A watchdog thread raises the run's
     * RunControl stop flag; the simulation loops notice, throw
     * SimError(Timeout), and the pool slot keeps draining. Timed-out
     * runs are not retried.
     */
    std::uint64_t runTimeoutMs = 0;

    /**
     * Campaign manifest path (empty = no checkpointing). Written
     * atomically after each run completes. With resume, specs whose
     * fingerprint has an Ok entry are restored from the manifest
     * (bit-identical results, buffered JSON report and all) instead
     * of re-run; failed entries re-run with continued attempt counts.
     */
    std::string manifestPath;
    bool resume = false;
};

/** What one spec's failure domain produced. */
struct RunOutcome
{
    RunStatus status = RunStatus::Failed;
    SimResults results;              //!< valid when ok()
    std::string error;               //!< what() of the final failure
    SimError::Kind errorKind = SimError::Kind::Invariant;
    unsigned attempts = 0;           //!< lifetime attempts (spans resume)
    std::uint64_t wallMs = 0;        //!< this invocation's wall time
    bool fromCheckpoint = false;     //!< restored, not re-run

    bool ok() const { return status == RunStatus::Ok; }
};

/**
 * Fault-tolerant batch runner: every spec runs in its own failure
 * domain, so a corrupt trace, a thrown SimError or a runaway run
 * produces a RunOutcome instead of killing the batch. Outcomes are
 * returned in input order and successful runs are bit-identical to a
 * sequential runSpec() loop at any job count. SIGINT cancels in-flight
 * runs cooperatively, flushes the manifest, and returns with the
 * remaining outcomes marked Interrupted.
 */
std::vector<RunOutcome> runBatch(const std::vector<RunSpec> &specs,
                                 const BatchOptions &opt = {});

/**
 * Process-wide observability options, consulted by makeConfig() and
 * runSpec() so every bench and example honours the same CLI flags
 * without per-driver plumbing.
 */
struct ObservabilityOptions
{
    /**
     * Destination for the JSON report (empty = off). Each run
     * buffers one report; the complete JSON array is written once,
     * by flushObservability() — registered atexit() — rather than
     * being rewritten after every run.
     */
    std::string jsonPath;

    /** SystemConfig::statsIntervalInstrs for every run (0 = off). */
    std::uint64_t intervalInstrs = 0;

    /**
     * SystemConfig::traceCapacity for every run (0 = off): each
     * System owns a private ring of this capacity, and the captured
     * tail of the most recent run (input order under runSpecs) is
     * written to tracePath (JSON lines). The ring is cleared at the
     * warm-up / measure boundary, so the retained events cover the
     * same measurement window as the counters.
     */
    std::uint64_t traceCapacity = 0;
    std::string tracePath = "trace_events.jsonl";

    /** SystemConfig::profileSites for every run (0 = off). */
    std::uint64_t profileSites = 0;
};

/** Install process-wide observability options (resets JSON state). */
void setObservability(const ObservabilityOptions &opts);

/** The currently installed options. */
const ObservabilityOptions &observability();

/**
 * Write the buffered JSON reports to ObservabilityOptions::jsonPath
 * as one array. Called automatically at process exit; call earlier to
 * make the file available mid-process. Idempotent until another run
 * buffers a new report.
 */
void flushObservability();

/**
 * Where a run's observability output goes. The old trio of loose
 * outputs (--stats-json report array, --trace-events tail file,
 * campaign failure entries) all funnel through one installed sink,
 * so drivers can redirect everything at once (in-memory for tests, a
 * socket, ...). Implementations must be thread-safe: the batch runner
 * commits from its collector under its own ordering guarantee, but
 * commitSystemReport() may be called from anywhere.
 */
class ReportSink
{
  public:
    virtual ~ReportSink() = default;

    /**
     * Buffer one JSON report document — a run's full report, or a
     * small failure object for a spec that never produced results.
     * Documents arrive in commit (input) order.
     */
    virtual void recordReport(const std::string &json) = 0;

    /**
     * Store the event-trace tail (JSON lines) of the most recent
     * traced run.
     */
    virtual void recordTrace(const std::string &jsonl) = 0;

    /** Write buffered output to its destination; idempotent. */
    virtual void flush() = 0;
};

/**
 * The default sink: reports accumulate and flush() writes them to
 * @p jsonPath as one JSON array (matching --stats-json); each trace
 * tail overwrites @p tracePath immediately (matching --trace-events).
 * Either path may be empty to drop that output.
 */
class FileReportSink final : public ReportSink
{
  public:
    FileReportSink(std::string jsonPath, std::string tracePath);

    void recordReport(const std::string &json) override;
    void recordTrace(const std::string &jsonl) override;
    void flush() override;

  private:
    std::mutex mu_;
    std::string jsonPath_;
    std::string tracePath_;
    std::vector<std::string> reports_;
    bool dirty_ = false;
};

/**
 * Install @p sink as the process-wide report destination (replacing
 * the FileReportSink that setObservability() installs). Passing
 * nullptr reverts to a FileReportSink over the current
 * ObservabilityOptions paths.
 */
void setReportSink(std::shared_ptr<ReportSink> sink);

/** The currently installed sink (never null). */
std::shared_ptr<ReportSink> reportSink();

/**
 * Buffer @p system's JSON report into the installed sink — for
 * drivers that run a System directly instead of going through
 * runSpec()/runBatch() (e.g. the quickstart example).
 */
void commitSystemReport(const System &system);

/** A labelled workload set for figure loops ("DB".."Web", "Mixed"). */
struct WorkloadSet
{
    std::string label;
    std::vector<WorkloadKind> kinds;
};

/** The paper's x-axis: four applications, optionally plus Mixed. */
std::vector<WorkloadSet> figureWorkloads(bool includeMix);

/**
 * Benchmark scale factor: from the IPREF_SCALE environment variable
 * (default 1.0). Larger values run longer and smooth the curves.
 */
double envScale();

} // namespace ipref

#endif // IPREF_SIM_EXPERIMENT_HH
