/**
 * @file
 * Experiment helpers shared by the benches and examples: canonical
 * paper configurations (Section 5) and one-call runners.
 */

#ifndef IPREF_SIM_EXPERIMENT_HH
#define IPREF_SIM_EXPERIMENT_HH

#include <string>
#include <vector>

#include "sim/campaign.hh"
#include "sim/system.hh"

namespace ipref
{

/** Declarative description of one experimental run. */
struct RunSpec
{
    /** 4-way CMP (true) or the single-core comparison point. */
    bool cmp = true;
    /** Workloads (see SystemConfig::workloads semantics). */
    std::vector<WorkloadKind> workloads{WorkloadKind::DB};
    /** Single-core time-sliced mixed when !cmp and 4 workloads. */

    PrefetchScheme scheme = PrefetchScheme::None;
    unsigned degree = 4;
    unsigned tableEntries = 8192;
    unsigned targetWays = 2;
    bool bypassL2 = false;

    /** Limit study (Figure 4): miss groups to eliminate. */
    std::array<bool, static_cast<std::size_t>(MissGroup::NumGroups)>
        idealEliminate{};

    /** Confidence filter [15] instead of the tag-port probe. */
    bool useConfidenceFilter = false;

    /** Recent-fetch filter / prefetch queue sizes (-1 = default;
     *  history 0 is a real value meaning "no filter"). */
    int historySize = -1;
    int queueSize = -1;

    /** Off-chip bandwidth override in GB/s (0 = paper default). */
    double memGbPerSec = 0.0;

    /** Functional (miss-rate-only) instead of timing simulation. */
    bool functional = false;

    std::uint64_t l2Bytes = 2u << 20;
    std::uint64_t l1iBytes = 32u << 10;
    unsigned l1iAssoc = 4;
    unsigned lineBytes = 64;

    /** Scales the default warm-up/measure instruction budgets. */
    double instrScale = 1.0;

    std::uint64_t baseSeed = 1;

    /**
     * Trace replay: every core replays this binary trace file instead
     * of a synthetic walker (empty = walkers). Tolerant reads salvage
     * the valid prefix of a damaged file instead of failing the run.
     */
    std::string tracePath;
    bool traceTolerant = false;

    /**
     * Fault-injection test hooks (see SystemConfig::faultAtInstr):
     * throw a SimError once aggregate progress reaches faultAtInstr.
     * When faultAttempts > 0 the fault only fires on the first
     * faultAttempts attempts of this spec, so retries can succeed;
     * attempt numbering continues across --resume.
     */
    std::uint64_t faultAtInstr = 0;
    bool faultTransient = false;
    unsigned faultAttempts = 0;
};

/** Expand a RunSpec into a full SystemConfig (paper defaults). */
SystemConfig makeConfig(const RunSpec &spec);

/** Build, run, and return measurement results for @p spec. */
SimResults runSpec(const RunSpec &spec);

/**
 * Run every spec, fanning out across a thread pool of @p jobs workers
 * (0 = hardware_concurrency), and return results in input order.
 *
 * Each run is fully self-contained (its own System, stats tree, RNG
 * streams and — when tracing is on — its own TraceSink ring), so the
 * returned SimResults are bit-identical to a sequential runSpec()
 * loop regardless of jobs. Observability side effects (JSON reports,
 * the trace tail) are committed in input order under a mutex, so the
 * report array is also identical to the sequential one.
 */
std::vector<SimResults> runSpecs(const std::vector<RunSpec> &specs,
                                 unsigned jobs = 0);

/** Knobs for the fault-tolerant batch runner. */
struct BatchOptions
{
    /** Pool workers (0 = hardware_concurrency). */
    unsigned jobs = 0;

    /**
     * Attempts per spec per batch invocation. Only errors flagged
     * transient() are retried; retries back off exponentially from
     * retryBaseMs, capped at retryCapMs, with deterministic jitter
     * derived from the spec fingerprint and attempt number.
     */
    unsigned maxAttempts = 3;
    std::uint64_t retryBaseMs = 10;
    std::uint64_t retryCapMs = 1000;

    /**
     * Per-run deadline (0 = none). A watchdog thread raises the run's
     * RunControl stop flag; the simulation loops notice, throw
     * SimError(Timeout), and the pool slot keeps draining. Timed-out
     * runs are not retried.
     */
    std::uint64_t runTimeoutMs = 0;

    /**
     * Campaign manifest path (empty = no checkpointing). Written
     * atomically after each run completes. With resume, specs whose
     * fingerprint has an Ok entry are restored from the manifest
     * (bit-identical results, buffered JSON report and all) instead
     * of re-run; failed entries re-run with continued attempt counts.
     */
    std::string manifestPath;
    bool resume = false;
};

/** What one spec's failure domain produced. */
struct RunOutcome
{
    RunStatus status = RunStatus::Failed;
    SimResults results;              //!< valid when ok()
    std::string error;               //!< what() of the final failure
    SimError::Kind errorKind = SimError::Kind::Invariant;
    unsigned attempts = 0;           //!< lifetime attempts (spans resume)
    std::uint64_t wallMs = 0;        //!< this invocation's wall time
    bool fromCheckpoint = false;     //!< restored, not re-run

    bool ok() const { return status == RunStatus::Ok; }
};

/**
 * Fault-tolerant batch runner: every spec runs in its own failure
 * domain, so a corrupt trace, a thrown SimError or a runaway run
 * produces a RunOutcome instead of killing the batch. Outcomes are
 * returned in input order and successful runs are bit-identical to a
 * sequential runSpec() loop at any job count. SIGINT cancels in-flight
 * runs cooperatively, flushes the manifest, and returns with the
 * remaining outcomes marked Interrupted.
 */
std::vector<RunOutcome> runBatch(const std::vector<RunSpec> &specs,
                                 const BatchOptions &opt = {});

/**
 * Process-wide observability options, consulted by makeConfig() and
 * runSpec() so every bench and example honours the same CLI flags
 * without per-driver plumbing.
 */
struct ObservabilityOptions
{
    /**
     * Destination for the JSON report (empty = off). Each run
     * buffers one report; the complete JSON array is written once,
     * by flushObservability() — registered atexit() — rather than
     * being rewritten after every run.
     */
    std::string jsonPath;

    /** SystemConfig::statsIntervalInstrs for every run (0 = off). */
    std::uint64_t intervalInstrs = 0;

    /**
     * SystemConfig::traceCapacity for every run (0 = off): each
     * System owns a private ring of this capacity, and the captured
     * tail of the most recent run (input order under runSpecs) is
     * written to tracePath (JSON lines). The ring is cleared at the
     * warm-up / measure boundary, so the retained events cover the
     * same measurement window as the counters.
     */
    std::uint64_t traceCapacity = 0;
    std::string tracePath = "trace_events.jsonl";

    /** SystemConfig::profileSites for every run (0 = off). */
    std::uint64_t profileSites = 0;
};

/** Install process-wide observability options (resets JSON state). */
void setObservability(const ObservabilityOptions &opts);

/** The currently installed options. */
const ObservabilityOptions &observability();

/**
 * Write the buffered JSON reports to ObservabilityOptions::jsonPath
 * as one array. Called automatically at process exit; call earlier to
 * make the file available mid-process. Idempotent until another run
 * buffers a new report.
 */
void flushObservability();

/** A labelled workload set for figure loops ("DB".."Web", "Mixed"). */
struct WorkloadSet
{
    std::string label;
    std::vector<WorkloadKind> kinds;
};

/** The paper's x-axis: four applications, optionally plus Mixed. */
std::vector<WorkloadSet> figureWorkloads(bool includeMix);

/**
 * Benchmark scale factor: from the IPREF_SCALE environment variable
 * (default 1.0). Larger values run longer and smooth the curves.
 */
double envScale();

} // namespace ipref

#endif // IPREF_SIM_EXPERIMENT_HH
