/**
 * @file
 * Top-down cycle accounting: every timing-mode core cycle is charged
 * to exactly one CycleBucket, so the per-bucket sums form a CPI stack
 * that conserves cycles by construction (sum(buckets) == cycles, an
 * end-of-run invariant the System enforces and ipref_analyze
 * re-verifies from the event trace).
 *
 * Header-only on purpose: the charge points live in src/cpu, which
 * does not link against ipref_sim.
 */

#ifndef IPREF_SIM_CYCLE_LEDGER_HH
#define IPREF_SIM_CYCLE_LEDGER_HH

#include <array>
#include <cstddef>
#include <cstdint>

#include "util/stats.hh"

namespace ipref
{

/**
 * The single cause a core cycle is charged to.  One bucket per core
 * per cycle — the fetch stage decides the cause exactly once per
 * tick, so the buckets partition the cycle count with no overlap.
 *
 * Busy must stay 0 so the stall buckets (the only ones exported as
 * fetch_stall trace events) all have non-zero detail ids.
 */
enum class CycleBucket : std::uint8_t
{
    Busy,            //!< fetch delivered at least one instruction
    FetchL1I,        //!< stalled on a line satisfied by the L1I
    FetchL2,         //!< stalled on a line satisfied by the L2
    FetchMem,        //!< stalled on a line satisfied by memory
    PrefetchPartial, //!< stalled on a line whose in-flight prefetch
                     //!< hid part (not all) of the miss latency
    BranchRedirect,  //!< unresolved branch or redirect penalty
    Backpressure,    //!< fetch buffer full: back end not draining
    Itlb,            //!< I-TLB miss / walk penalty portion of a stall
    Drain,           //!< no instruction available (trace exhausted)
    NumBuckets,
};

constexpr std::size_t kNumCycleBuckets =
    static_cast<std::size_t>(CycleBucket::NumBuckets);

/** Stable snake_case bucket names (JSON keys, metric names). */
constexpr const char *
cycleBucketName(CycleBucket b)
{
    switch (b) {
      case CycleBucket::Busy: return "busy";
      case CycleBucket::FetchL1I: return "fetch_l1i";
      case CycleBucket::FetchL2: return "fetch_l2";
      case CycleBucket::FetchMem: return "fetch_mem";
      case CycleBucket::PrefetchPartial: return "prefetch_partial";
      case CycleBucket::BranchRedirect: return "branch_redirect";
      case CycleBucket::Backpressure: return "backpressure";
      case CycleBucket::Itlb: return "itlb";
      case CycleBucket::Drain: return "drain";
      case CycleBucket::NumBuckets: break;
    }
    return "?";
}

/**
 * Per-core cycle ledger: one Counter per bucket, registered in the
 * core's StatGroup so the warm-up/measure boundary reset and the
 * end-of-run collection work like every other core counter.
 */
class CycleLedger
{
  public:
    void charge(CycleBucket b) { ++buckets_[idx(b)]; }

    std::uint64_t
    value(CycleBucket b) const
    {
        return buckets_[idx(b)].value();
    }

    /** Sum of all buckets; equals the cycles this core was charged. */
    std::uint64_t
    total() const
    {
        std::uint64_t sum = 0;
        for (const Counter &c : buckets_)
            sum += c.value();
        return sum;
    }

    /** Register one "cpi.<bucket>" counter per bucket in @p group. */
    void
    registerStats(StatGroup &group)
    {
        for (std::size_t i = 0; i < kNumCycleBuckets; ++i) {
            group.addCounter(
                std::string("cpi.") +
                    cycleBucketName(static_cast<CycleBucket>(i)),
                &buckets_[i], "cycles charged to this CPI bucket");
        }
    }

  private:
    static std::size_t idx(CycleBucket b)
    {
        return static_cast<std::size_t>(b);
    }

    std::array<Counter, kNumCycleBuckets> buckets_{};
};

} // namespace ipref

#endif // IPREF_SIM_CYCLE_LEDGER_HH
