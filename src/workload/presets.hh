/**
 * @file
 * Workload presets standing in for the paper's four commercial
 * applications, plus helpers to instantiate per-core walkers.
 */

#ifndef IPREF_WORKLOAD_PRESETS_HH
#define IPREF_WORKLOAD_PRESETS_HH

#include <memory>
#include <string>
#include <vector>

#include "workload/workload.hh"

namespace ipref
{

/** The four commercial applications studied by the paper. */
enum class WorkloadKind
{
    DB,   //!< OLTP database workload
    TPCW, //!< TPC-W transactional web benchmark
    JAPP, //!< SPECjAppServer2002 (Java middleware)
    WEB,  //!< SPECweb99 (static/dynamic web serving)
    NumKinds
};

/** All four kinds, in the paper's presentation order. */
const std::vector<WorkloadKind> &allWorkloadKinds();

/** Display name matching the paper's figures ("DB", "TPC-W", ...). */
const char *workloadName(WorkloadKind kind);

/** Parse a name (case-insensitive: "db", "tpcw", "tpc-w", ...). */
WorkloadKind parseWorkloadKind(const std::string &name);

/** The tuned generator configuration for @p kind. */
WorkloadConfig presetConfig(WorkloadKind kind);

/**
 * Build (and memoize) the static program for @p kind. All callers
 * share one immutable ProgramCfg per kind, like processes sharing a
 * binary's text segment.
 */
std::shared_ptr<const ProgramCfg> buildProgram(WorkloadKind kind);

/**
 * Create a walker of @p kind for core @p core. Cores running the same
 * kind share code (same ProgramCfg) but get disjoint data segments and
 * distinct walk seeds derived from @p baseSeed.
 */
std::unique_ptr<Workload> makeWorkload(WorkloadKind kind, CoreId core,
                                       std::uint64_t baseSeed = 1);

} // namespace ipref

#endif // IPREF_WORKLOAD_PRESETS_HH
