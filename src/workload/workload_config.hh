/**
 * @file
 * Parameters of the synthetic commercial-workload generator.
 *
 * The generator substitutes for the paper's proprietary traces
 * (database, TPC-W, SPECjAppServer2002, SPECweb99). Each preset tunes
 * these knobs so the resulting instruction stream reproduces the
 * statistical structure the paper reports: multi-megabyte instruction
 * footprints, small functions, 40-60% sequential / 20-40% branch /
 * 15-20% function-call instruction-miss mixes, and data working sets
 * that pressure a 2 MB shared L2.
 */

#ifndef IPREF_WORKLOAD_WORKLOAD_CONFIG_HH
#define IPREF_WORKLOAD_WORKLOAD_CONFIG_HH

#include <cstdint>
#include <string>

#include "util/types.hh"

namespace ipref
{

/** All knobs of the synthetic workload generator. */
struct WorkloadConfig
{
    std::string name = "generic";

    /** Seed for the *static* program structure (code layout, CFG). */
    std::uint64_t layoutSeed = 1;
    /** Seed for the *dynamic* walk (branch outcomes, data addrs). */
    std::uint64_t walkSeed = 1;

    /** Base of the code segment. */
    Addr codeBase = 0x0000000010000000ULL;
    /** Base of the data segment (heap); stack sits above it. */
    Addr dataBase = 0x0000001000000000ULL;

    /** Target total code footprint in bytes. */
    std::uint64_t codeFootprintBytes = 2u << 20;

    // --- Function / CFG structure -----------------------------------
    /** Number of call-graph layers (bounds call depth). */
    unsigned callLayers = 6;
    /** Fraction of functions in layer 0 (transaction entry points). */
    double rootFraction = 0.02;
    /** Basic blocks per function: 1 + geometric(blockCountP). */
    double blockCountP = 0.16;
    /** Instructions per block: min + geometric(blockSizeP), capped. */
    unsigned minBlockInstrs = 3;
    unsigned maxBlockInstrs = 24;
    double blockSizeP = 0.18;

    /** Probability a non-final block terminates in each CTI kind
     *  (remainder falls through). */
    double condBranchFraction = 0.38;
    double uncondFraction = 0.13;
    double callFraction = 0.20;
    double indirectCallFraction = 0.03; //!< Jump (virtual dispatch)

    /** Fraction of unconditional-branch sites that are tail calls to
     *  a sibling function (shared helpers / error paths) — these are
     *  the distant branch targets commercial code is full of. */
    double tailCallFraction = 0.62;

    /** Fraction of conditional branches that are loop back-edges. */
    double loopBackFraction = 0.22;
    /** Mean loop trip count (geometric). */
    double meanLoopTrips = 6.0;
    /** Forward conditional branches: probability the site is
     *  mostly-taken (else mostly-not-taken). */
    double fwdTakenSiteFraction = 0.45;
    /** Bias of a mostly-taken / mostly-not-taken site. */
    double takenBias = 0.88;
    /** Per-site jitter applied to the bias (uniform +/-). */
    double biasJitter = 0.08;

    /** Zipf exponent of callee popularity (function hotness). */
    double calleeZipfAlpha = 0.55;
    /** Candidate indirect-jump targets per site. */
    unsigned indirectTargets = 4;
    /** Zipf exponent over transaction types (layer-0 functions). */
    double transactionZipfAlpha = 0.40;

    // --- Instruction mix (non-terminator slots) ---------------------
    double loadFraction = 0.24;
    double storeFraction = 0.11;
    double mulFraction = 0.02;
    double fpFraction = 0.01;

    // --- Data stream -------------------------------------------------
    /** Hot heap region size (zipf-reused). */
    std::uint64_t hotDataBytes = 6u << 20;
    /** Zipf exponent over hot heap lines. */
    double hotDataZipfAlpha = 1.05;
    /**
     * Warm region (buffer pool / session state): uniformly reused,
     * sized at L2 scale, so its hit rate tracks how much L2 capacity
     * the data actually gets — the pollution sensor of Figure 7.
     */
    std::uint64_t warmDataBytes = 2u << 20;
    /** Cold/streaming region size. */
    std::uint64_t coldDataBytes = 32u << 20;
    /** Probability a heap access goes to the hot region. */
    double hotAccessFraction = 0.86;
    /** Probability a heap access goes to the warm region (the
     *  remainder after hot+warm streams through the cold region). */
    double warmAccessFraction = 0.0;
    /** Probability a memory access targets the stack. */
    double stackAccessFraction = 0.30;
    /** Stack frame size in bytes. */
    std::uint64_t stackFrameBytes = 192;

    // --- Concurrency --------------------------------------------------
    /**
     * Number of concurrent request contexts (server threads) the
     * walker interleaves. Context switches go through a trap handler
     * (timer interrupt + scheduler), exactly like an OS preemption,
     * so the fetch stream stays CTI-consistent. This is the main
     * temporal-mixing knob: more contexts stretch instruction reuse
     * distances, which is where commercial I-cache thrash comes from.
     */
    unsigned concurrentContexts = 1;
    /** Mean instructions between context switches (0 = never). */
    double contextSwitchPeriod = 0.0;

    // --- Traps / interrupts -----------------------------------------
    /** Per-instruction probability of taking a trap/interrupt. */
    double trapProbability = 1.5e-5;
    /** Number of trap-handler functions (separate code region). */
    unsigned trapHandlers = 4;

    /** Architectural integer registers available to the generator. */
    static constexpr unsigned numRegs = 32;
};

} // namespace ipref

#endif // IPREF_WORKLOAD_WORKLOAD_CONFIG_HH
