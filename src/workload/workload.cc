#include "workload/workload.hh"

#include <algorithm>

#include "util/bitutil.hh"
#include "util/logging.hh"

namespace ipref
{

Workload::Workload(std::shared_ptr<const ProgramCfg> prog,
                   std::uint64_t walkSeed, Addr dataOffset)
    : prog_(std::move(prog)),
      walkSeed_(walkSeed),
      dataOffset_(dataOffset),
      rng_(walkSeed ^ hashString("workload-walk")),
      hotZipf_(std::max<std::size_t>(
                   1, prog_->config().hotDataBytes / 64),
               prog_->config().hotDataZipfAlpha)
{
    const WorkloadConfig &cfg = prog_->config();
    coldWrap_ = std::max<std::uint64_t>(64, cfg.coldDataBytes);
    hotBase_ = cfg.dataBase + dataOffset_;
    warmBase_ = hotBase_ + alignUp(cfg.hotDataBytes, 1u << 20);
    coldBase_ = warmBase_ + alignUp(cfg.warmDataBytes, 1u << 20);
    stackBase_ = coldBase_ + alignUp(cfg.coldDataBytes, 1u << 20) +
                 (16u << 20);
    loopTaken_.assign(prog_->blocks().size(), 0);
    reset();
}

void
Workload::reset()
{
    const WorkloadConfig &cfg = prog_->config();
    rng_ = Rng(walkSeed_ ^ hashString("workload-walk"));
    std::fill(loopTaken_.begin(), loopTaken_.end(), 0);
    inTrap_ = false;
    coldCursor_ = 0;
    transactions_ = 0;
    emitted_ = 0;
    switches_ = 0;
    active_ = 0;

    unsigned k = std::max(1u, cfg.concurrentContexts);
    contexts_.assign(k, Context{});
    // All contexts start in the dispatcher; their walks diverge.
    for (auto &ctx : contexts_) {
        ctx.curBlock = prog_->functions()[0].firstBlock;
        ctx.instrIdx = 0;
    }
    switchProb_ = cfg.contextSwitchPeriod > 0 && k > 1
                      ? 1.0 / cfg.contextSwitchPeriod
                      : 0.0;
}

Addr
Workload::addrOf(std::uint32_t gb, unsigned idx) const
{
    const BasicBlock &bb = prog_->blocks()[gb];
    return bb.startPc + static_cast<Addr>(idx) * instrBytes;
}

Addr
Workload::genDataAddr()
{
    const WorkloadConfig &cfg = prog_->config();
    double u = rng_.uniform();
    if (u < cfg.stackAccessFraction) {
        // Per-context stacks, 64 KB apart.
        std::uint64_t depth = contexts_[active_].stack.size() + 1;
        Addr base = stackBase_ + (static_cast<Addr>(active_) << 16);
        Addr frame_top = base - depth * cfg.stackFrameBytes;
        return alignDown(frame_top + rng_.below(cfg.stackFrameBytes),
                         4);
    }
    double v = rng_.uniform();
    if (v < cfg.hotAccessFraction) {
        std::uint64_t line = hotZipf_.sample(rng_);
        return hotBase_ + line * 64 + (rng_.below(16) * 4);
    }
    if (v < cfg.hotAccessFraction + cfg.warmAccessFraction &&
        cfg.warmDataBytes >= 64) {
        std::uint64_t line = rng_.below(cfg.warmDataBytes / 64);
        return warmBase_ + line * 64 + (rng_.below(16) * 4);
    }
    // Cold/streaming: walk through the region at word granularity
    // (a scan touches each line ~16 times before moving on). The
    // cursor stays below coldWrap_ and advances by 4 <= coldWrap_, so
    // a single conditional subtract equals the modulo it replaces.
    coldCursor_ += 4;
    if (coldCursor_ >= coldWrap_)
        coldCursor_ -= coldWrap_;
    return coldBase_ + alignDown(coldCursor_, 4);
}

void
Workload::emitStatic(const BasicBlock &bb, InstrRecord &out)
{
    unsigned idx = inTrap_ ? trapInstr_ : contexts_[active_].instrIdx;
    const StaticInstr &si = prog_->instrs()[bb.instrBase + idx];
    out.pc = bb.startPc + static_cast<Addr>(idx) * instrBytes;
    out.op = si.op;
    out.taken = false;
    out.target = 0;
    out.srcReg[0] = si.src0;
    out.srcReg[1] = si.src1;
    out.dstReg = si.dst;
    out.dataAddr = si.op == OpClass::Load || si.op == OpClass::Store
                       ? genDataAddr()
                       : 0;
}

void
Workload::takeTrap(InstrRecord &out, std::size_t resumeCtx)
{
    const auto &funcs = prog_->functions();
    std::uint32_t h =
        prog_->trapFuncs()[rng_.below(prog_->trapFuncs().size())];
    const Context &ctx = contexts_[active_];
    out = InstrRecord{};
    out.pc = addrOf(ctx.curBlock, ctx.instrIdx);
    out.op = OpClass::Trap;
    out.taken = true;
    out.target = funcs[h].entry;
    inTrap_ = true;
    trapBlock_ = funcs[h].firstBlock;
    trapInstr_ = 0;
    trapResumeCtx_ = resumeCtx;
}

bool
Workload::next(InstrRecord &out)
{
    const auto &blocks = prog_->blocks();
    const auto &funcs = prog_->functions();
    const WorkloadConfig &cfg = prog_->config();

    // Asynchronous events, taken "at" the address of the instruction
    // about to execute: timer-interrupt context switches and plain
    // traps. Both run a trap-handler function; the handler's return
    // resumes either the next context (switch) or the same one.
    if (!inTrap_ && !prog_->trapFuncs().empty()) {
        if (switchProb_ > 0 && rng_.chance(switchProb_)) {
            ++switches_;
            takeTrap(out, (active_ + 1) % contexts_.size());
            ++emitted_;
            return true;
        }
        if (cfg.trapProbability > 0 &&
            rng_.chance(cfg.trapProbability)) {
            takeTrap(out, active_);
            ++emitted_;
            return true;
        }
    }

    if (inTrap_) {
        // Execute the (leaf) trap handler.
        const BasicBlock &bb = blocks[trapBlock_];
        bool is_term = trapInstr_ + 1u >= bb.numInstrs;
        if (!is_term || bb.term == TermKind::FallThrough) {
            emitStatic(bb, out);
            if (++trapInstr_ >= bb.numInstrs) {
                ++trapBlock_;
                trapInstr_ = 0;
            }
            ++emitted_;
            return true;
        }
        const StaticInstr &si = prog_->instrs()[bb.instrBase +
                                                trapInstr_];
        out = InstrRecord{};
        out.pc = bb.termPc();
        out.srcReg[0] = si.src0;
        out.srcReg[1] = si.src1;
        switch (bb.term) {
          case TermKind::CondBranch: {
            out.op = OpClass::CondBranch;
            out.target = blocks[bb.targetBlock].startPc;
            bool taken = rng_.chance(bb.takenProb);
            if (bb.isBackEdge) {
                std::uint8_t &cnt = loopTaken_[trapBlock_];
                if (taken) {
                    if (++cnt >= maxConsecutiveTrips) {
                        taken = false;
                        cnt = 0;
                    }
                } else {
                    cnt = 0;
                }
            }
            out.taken = taken;
            if (taken) {
                trapBlock_ = bb.targetBlock;
            } else {
                ++trapBlock_;
            }
            trapInstr_ = 0;
            break;
          }
          case TermKind::UncondBranch:
            out.op = OpClass::UncondBranch;
            out.taken = true;
            out.target = blocks[bb.targetBlock].startPc;
            trapBlock_ = bb.targetBlock;
            trapInstr_ = 0;
            break;
          case TermKind::Return: {
            // End of handler: resume the chosen context.
            out.op = OpClass::Return;
            out.taken = true;
            out.srcReg[0] = 31;
            inTrap_ = false;
            active_ = trapResumeCtx_;
            const Context &ctx = contexts_[active_];
            out.target = addrOf(ctx.curBlock, ctx.instrIdx);
            break;
          }
          default:
            ipref_panic("trap handlers are leaf functions");
        }
        ++emitted_;
        return true;
    }

    Context &ctx = contexts_[active_];
    const BasicBlock &bb = blocks[ctx.curBlock];
    bool is_term = ctx.instrIdx + 1u >= bb.numInstrs;

    if (!is_term || bb.term == TermKind::FallThrough) {
        emitStatic(bb, out);
        ++ctx.instrIdx;
        if (ctx.instrIdx >= bb.numInstrs) {
            ++ctx.curBlock; // blocks are contiguous
            ctx.instrIdx = 0;
        }
        ++emitted_;
        return true;
    }

    // Terminator CTI.
    const StaticInstr &si = prog_->instrs()[bb.instrBase +
                                            ctx.instrIdx];
    out = InstrRecord{};
    out.pc = bb.termPc();
    out.srcReg[0] = si.src0;
    out.srcReg[1] = si.src1;
    out.dstReg = 0;

    auto goto_block = [&](std::uint32_t gb) {
        ctx.curBlock = gb;
        ctx.instrIdx = 0;
    };

    switch (bb.term) {
      case TermKind::CondBranch: {
        out.op = OpClass::CondBranch;
        out.target = blocks[bb.targetBlock].startPc;
        bool taken = rng_.chance(bb.takenProb);
        if (bb.isBackEdge) {
            std::uint8_t &cnt = loopTaken_[ctx.curBlock];
            if (taken) {
                if (++cnt >= maxConsecutiveTrips) {
                    taken = false;
                    cnt = 0;
                }
            } else {
                cnt = 0;
            }
        }
        out.taken = taken;
        if (taken)
            goto_block(bb.targetBlock);
        else
            goto_block(ctx.curBlock + 1);
        break;
      }
      case TermKind::UncondBranch:
        out.op = OpClass::UncondBranch;
        out.taken = true;
        if (bb.isTailCall) {
            // Tail call: jump to the sibling's entry without pushing
            // a frame; its return unwinds to our caller.
            out.target = funcs[bb.targetFunc].entry;
            goto_block(funcs[bb.targetFunc].firstBlock);
        } else {
            out.target = blocks[bb.targetBlock].startPc;
            goto_block(bb.targetBlock);
        }
        break;
      case TermKind::Call:
        out.op = OpClass::Call;
        out.taken = true;
        out.target = funcs[bb.targetFunc].entry;
        out.dstReg = 31; // link register
        ctx.stack.push_back({ctx.curBlock + 1, 0});
        goto_block(funcs[bb.targetFunc].firstBlock);
        break;
      case TermKind::IndirectCall: {
        out.op = OpClass::Jump;
        out.taken = true;
        const IndirectSet &iset =
            prog_->indirectSets()[bb.indirectSet];
        double u = rng_.uniform();
        std::size_t pick = 0;
        while (pick + 1 < iset.cdf.size() && iset.cdf[pick] < u)
            ++pick;
        std::uint32_t callee = iset.funcs[pick];
        out.target = funcs[callee].entry;
        out.dstReg = 31;
        ctx.stack.push_back({ctx.curBlock + 1, 0});
        goto_block(funcs[callee].firstBlock);
        break;
      }
      case TermKind::Return: {
        out.op = OpClass::Return;
        out.taken = true;
        out.srcReg[0] = 31;
        if (ctx.stack.empty()) {
            // Should not happen (dispatcher loops), but recover.
            out.target = funcs[0].entry;
            goto_block(funcs[0].firstBlock);
            break;
        }
        Frame f = ctx.stack.back();
        ctx.stack.pop_back();
        out.target = addrOf(f.retBlock, f.retInstr);
        ctx.curBlock = f.retBlock;
        ctx.instrIdx = f.retInstr;
        // Returning into the dispatcher completes a transaction.
        const Function &d = funcs[0];
        if (f.retBlock >= d.firstBlock &&
            f.retBlock < d.firstBlock + d.numBlocks) {
            ++transactions_;
        }
        break;
      }
      case TermKind::FallThrough:
        ipref_panic("fall-through handled above");
    }

    ++emitted_;
    return true;
}

} // namespace ipref
