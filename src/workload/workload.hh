/**
 * @file
 * The dynamic workload walker: traverses a ProgramCfg and emits a
 * deterministic, repetitive instruction stream with transaction
 * semantics, call stacks, loops, traps, a layered data stream
 * (stack / hot heap / cold streaming) and multi-context (server
 * thread) interleaving via trap-mediated context switches.
 */

#ifndef IPREF_WORKLOAD_WORKLOAD_HH
#define IPREF_WORKLOAD_WORKLOAD_HH

#include <memory>
#include <vector>

#include "trace/trace_source.hh"
#include "util/rng.hh"
#include "workload/cfg.hh"

namespace ipref
{

/**
 * A TraceSource over a static program. The stream is infinite (the
 * dispatcher loops forever); consumers bound it by instruction count.
 *
 * Multiple Workload instances may share one ProgramCfg (same binary)
 * with different walk seeds — this models several cores running the
 * same commercial application on a CMP, sharing code but executing
 * different transaction interleavings.
 */
class Workload : public TraceSource
{
  public:
    /**
     * @param prog     the static program (shared, immutable)
     * @param walkSeed seed of the dynamic walk
     * @param dataOffset added to all data addresses (per-core/process
     *                   disjoint data segments)
     */
    Workload(std::shared_ptr<const ProgramCfg> prog,
             std::uint64_t walkSeed, Addr dataOffset = 0);

    bool next(InstrRecord &out) override;
    void reset() override;

    /** Completed transactions (returns into the dispatcher). */
    std::uint64_t transactionsCompleted() const { return transactions_; }

    /** Instructions emitted since construction/reset. */
    std::uint64_t instructionsEmitted() const { return emitted_; }

    /** Trap-mediated context switches taken. */
    std::uint64_t contextSwitches() const { return switches_; }

    const ProgramCfg &program() const { return *prog_; }

  private:
    struct Frame
    {
        std::uint32_t retBlock;
        std::uint16_t retInstr;
    };

    /** A suspended or running request context (server thread). */
    struct Context
    {
        std::vector<Frame> stack;
        std::uint32_t curBlock = 0;
        unsigned instrIdx = 0;
    };

    /** Address of instruction slot @p idx in block @p gb. */
    Addr addrOf(std::uint32_t gb, unsigned idx) const;

    /** Fill a record from a static (non-CTI) instruction slot. */
    void emitStatic(const BasicBlock &bb, InstrRecord &out);

    /** Generate a data effective address for a memory op. */
    Addr genDataAddr();

    /** Enter a trap handler; on its return, resume context
     *  @p resumeCtx (== active for plain interrupts). */
    void takeTrap(InstrRecord &out, std::size_t resumeCtx);

    std::shared_ptr<const ProgramCfg> prog_;
    std::uint64_t walkSeed_;
    Addr dataOffset_;

    Rng rng_;
    std::vector<Context> contexts_;
    std::size_t active_ = 0;

    /** Trap handler execution state (handlers are leaf functions). */
    bool inTrap_ = false;
    std::uint32_t trapBlock_ = 0;
    unsigned trapInstr_ = 0;
    std::size_t trapResumeCtx_ = 0;

    /** Consecutive-taken counters for loop back-edges (safety cap). */
    std::vector<std::uint8_t> loopTaken_;

    ZipfSampler hotZipf_;
    std::uint64_t coldCursor_ = 0;
    std::uint64_t coldWrap_ = 64; //!< cold-region size (cursor modulus)

    Addr hotBase_ = 0;
    Addr warmBase_ = 0;
    Addr coldBase_ = 0;
    Addr stackBase_ = 0;

    std::uint64_t transactions_ = 0;
    std::uint64_t emitted_ = 0;
    std::uint64_t switches_ = 0;

    double switchProb_ = 0.0;

    /** Back-edge runaway cap (forces loop exit). */
    static constexpr std::uint8_t maxConsecutiveTrips = 96;
};

} // namespace ipref

#endif // IPREF_WORKLOAD_WORKLOAD_HH
