#include "workload/cfg.hh"

#include <algorithm>
#include <cmath>

#include "util/bitutil.hh"
#include "util/logging.hh"

namespace ipref
{

namespace
{

/** Function address alignment (link-time layout granularity). */
constexpr Addr funcAlign = 32;

/** Draw a static instruction for a non-terminator slot. */
StaticInstr
drawInstr(const WorkloadConfig &cfg, Rng &rng)
{
    StaticInstr si;
    double u = rng.uniform();
    if (u < cfg.loadFraction) {
        si.op = OpClass::Load;
    } else if (u < cfg.loadFraction + cfg.storeFraction) {
        si.op = OpClass::Store;
    } else if (u < cfg.loadFraction + cfg.storeFraction +
                       cfg.mulFraction) {
        si.op = OpClass::IntMul;
    } else if (u < cfg.loadFraction + cfg.storeFraction +
                       cfg.mulFraction + cfg.fpFraction) {
        si.op = OpClass::FpAlu;
    } else {
        si.op = OpClass::IntAlu;
    }
    si.dst = static_cast<std::uint8_t>(1 + rng.below(31));
    si.src0 = static_cast<std::uint8_t>(1 + rng.below(31));
    si.src1 = rng.chance(0.5)
                  ? static_cast<std::uint8_t>(1 + rng.below(31))
                  : 0;
    if (si.op == OpClass::Store)
        si.dst = 0; // stores produce no register result
    return si;
}

} // namespace

ProgramCfg::ProgramCfg(const WorkloadConfig &cfg) : cfg_(cfg)
{
    ipref_assert(cfg_.callLayers >= 2);
    Rng rng(cfg_.layoutSeed ^ hashString("cfg-layout"));
    buildFunctions(rng);
    assignTargets(rng);
    layoutCode();
}

void
ProgramCfg::buildFunctions(Rng &rng)
{
    // Expected function size from the block distributions, used to
    // size the function count to the requested code footprint.
    double mean_blocks = 1.0 + (1.0 - cfg_.blockCountP) / cfg_.blockCountP;
    double mean_extra = (1.0 - cfg_.blockSizeP) / cfg_.blockSizeP;
    double mean_instrs = std::min<double>(
        cfg_.maxBlockInstrs,
        static_cast<double>(cfg_.minBlockInstrs) + mean_extra);
    double mean_func_bytes =
        mean_blocks * mean_instrs * static_cast<double>(instrBytes) +
        static_cast<double>(funcAlign) / 2;

    std::size_t num_funcs = std::max<std::size_t>(
        16, static_cast<std::size_t>(
                static_cast<double>(cfg_.codeFootprintBytes) /
                mean_func_bytes));

    // Layer sizes: a thin root layer, the rest split evenly.
    unsigned layers = cfg_.callLayers;
    std::vector<std::size_t> layer_size(layers, 0);
    layer_size[0] = std::max<std::size_t>(
        2, static_cast<std::size_t>(cfg_.rootFraction *
                                    static_cast<double>(num_funcs)));
    std::size_t rest = num_funcs - std::min(num_funcs, layer_size[0]);
    for (unsigned l = 1; l < layers; ++l)
        layer_size[l] = std::max<std::size_t>(2, rest / (layers - 1));

    layerFuncs_.assign(layers, {});

    auto build_one = [&](unsigned layer, bool trap_handler,
                         bool dispatcher) {
        Function fn;
        fn.layer = layer;
        fn.isTrapHandler = trap_handler;
        fn.firstBlock = static_cast<std::uint32_t>(blocks_.size());
        unsigned nblocks =
            dispatcher ? 3
                       : 1 + static_cast<unsigned>(
                                 rng.geometric(cfg_.blockCountP));
        nblocks = std::min(nblocks, 24u);
        fn.numBlocks = nblocks;
        // Addresses are assigned later by layoutCode().
        for (unsigned b = 0; b < nblocks; ++b) {
            BasicBlock bb;
            unsigned n = cfg_.minBlockInstrs +
                         static_cast<unsigned>(
                             rng.geometric(cfg_.blockSizeP));
            n = std::min(n, cfg_.maxBlockInstrs);
            bb.numInstrs = static_cast<std::uint16_t>(n);
            bb.instrBase = static_cast<std::uint32_t>(instrs_.size());
            for (unsigned i = 0; i < n; ++i)
                instrs_.push_back(drawInstr(cfg_, rng));

            // Terminator kind. Targets are assigned in a second pass.
            if (b + 1 == nblocks) {
                bb.term = dispatcher ? TermKind::UncondBranch
                                     : TermKind::Return;
            } else if (dispatcher) {
                // dispatcher: block 0 falls through, block 1 does the
                // indirect transaction dispatch.
                bb.term = b == 1 ? TermKind::IndirectCall
                                 : TermKind::FallThrough;
            } else {
                double u = rng.uniform();
                double c1 = cfg_.condBranchFraction;
                double c2 = c1 + cfg_.uncondFraction;
                double c3 = c2 + cfg_.callFraction;
                double c4 = c3 + cfg_.indirectCallFraction;
                bool leaf = layer + 1 >= layers || trap_handler;
                if (u < c1 && nblocks >= 2) {
                    bb.term = TermKind::CondBranch;
                } else if (u < c2 && b + 2 < nblocks) {
                    bb.term = TermKind::UncondBranch;
                } else if (u < c3 && !leaf) {
                    bb.term = TermKind::Call;
                } else if (u < c4 && !leaf) {
                    bb.term = TermKind::IndirectCall;
                } else {
                    bb.term = TermKind::FallThrough;
                }
            }
            blocks_.push_back(bb);
        }
        funcs_.push_back(fn);
        return static_cast<std::uint32_t>(funcs_.size() - 1);
    };

    // Function 0 is the transaction dispatcher loop.
    build_one(0, false, true);

    for (unsigned l = 0; l < layers; ++l) {
        for (std::size_t i = 0; i < layer_size[l]; ++i) {
            std::uint32_t idx = build_one(l, false, false);
            layerFuncs_[l].push_back(idx);
            if (l == 0)
                roots_.push_back(idx);
        }
    }

    for (unsigned i = 0; i < cfg_.trapHandlers; ++i)
        traps_.push_back(build_one(layers - 1, true, false));

    // Transaction popularity CDF over root functions.
    ZipfSampler zipf(roots_.size(), cfg_.transactionZipfAlpha);
    rootCdf_.resize(roots_.size());
    {
        double sum = 0.0;
        for (std::size_t i = 0; i < roots_.size(); ++i) {
            sum += 1.0 / std::pow(static_cast<double>(i + 1),
                                  cfg_.transactionZipfAlpha);
            rootCdf_[i] = sum;
        }
        for (auto &v : rootCdf_)
            v /= sum;
        rootCdf_.back() = 1.0;
    }
}

void
ProgramCfg::assignTargets(Rng &rng)
{
    unsigned layers = cfg_.callLayers;

    // Per-layer zipf samplers for callee popularity: rank == position
    // in the layer (earlier functions are laid out first and hotter,
    // mimicking link-time layout that clusters hot code).
    std::vector<ZipfSampler> layer_zipf;
    layer_zipf.reserve(layers);
    for (unsigned l = 0; l < layers; ++l) {
        layer_zipf.emplace_back(std::max<std::size_t>(
                                    1, layerFuncs_[l].size()),
                                cfg_.calleeZipfAlpha);
    }

    auto pick_callee = [&](unsigned caller_layer) -> std::uint32_t {
        // Mostly call the adjacent layer; occasionally skip deeper.
        unsigned target_layer = caller_layer + 1;
        while (target_layer + 1 < layers && rng.chance(0.25))
            ++target_layer;
        const auto &cands = layerFuncs_[target_layer];
        ipref_assert(!cands.empty());
        std::size_t rank = layer_zipf[target_layer].sample(rng);
        return cands[rank % cands.size()];
    };

    for (std::size_t fi = 0; fi < funcs_.size(); ++fi) {
        const Function &fn = funcs_[fi];
        bool dispatcher = fi == 0;
        for (std::uint32_t b = 0; b < fn.numBlocks; ++b) {
            std::uint32_t gb = fn.firstBlock + b;
            BasicBlock &bb = blocks_[gb];
            switch (bb.term) {
              case TermKind::CondBranch: {
                bool back = b > 0 && rng.chance(cfg_.loopBackFraction);
                if (back) {
                    std::uint32_t off = 1 + static_cast<std::uint32_t>(
                                                rng.below(b));
                    bb.targetBlock = gb - off;
                    bb.isBackEdge = true;
                    double trips = std::max(1.5, cfg_.meanLoopTrips);
                    bb.takenProb =
                        static_cast<float>(1.0 - 1.0 / trips);
                } else if (b + 2 < fn.numBlocks) {
                    std::uint32_t skip = 2 + static_cast<std::uint32_t>(
                        rng.below(std::min<std::uint32_t>(
                            8, fn.numBlocks - b - 2)));
                    bb.targetBlock = std::min(gb + skip,
                                              fn.firstBlock +
                                                  fn.numBlocks - 1);
                    bool mostly_taken =
                        rng.chance(cfg_.fwdTakenSiteFraction);
                    double bias = cfg_.takenBias +
                                  (rng.uniform() * 2 - 1) *
                                      cfg_.biasJitter;
                    bias = std::clamp(bias, 0.03, 0.97);
                    bb.takenProb = static_cast<float>(
                        mostly_taken ? bias : 1.0 - bias);
                } else {
                    // no room for a forward skip: make it a rarely
                    // taken exit to the function's last block
                    bb.targetBlock = fn.firstBlock + fn.numBlocks - 1;
                    bb.takenProb = 0.1f;
                }
                break;
              }
              case TermKind::UncondBranch: {
                if (dispatcher) {
                    // dispatcher's final block loops back to its head
                    bb.targetBlock = fn.firstBlock;
                    break;
                }
                // Some unconditional branches are tail calls to a
                // sibling function: distant targets that create the
                // branch-class misses of Figure 3.
                const auto &sibs = layerFuncs_[fn.layer];
                if (!fn.isTrapHandler && sibs.size() > 1 &&
                    rng.chance(cfg_.tailCallFraction)) {
                    bb.isTailCall = true;
                    std::size_t rank = layer_zipf[fn.layer].sample(rng);
                    bb.targetFunc = sibs[rank % sibs.size()];
                    if (bb.targetFunc == fi)
                        bb.targetFunc =
                            sibs[(rank + 1) % sibs.size()];
                    break;
                }
                std::uint32_t last = fn.firstBlock + fn.numBlocks - 1;
                std::uint32_t skip = 2 + static_cast<std::uint32_t>(
                    rng.below(6));
                bb.targetBlock = std::min(gb + skip, last);
                break;
              }
              case TermKind::Call:
                bb.targetFunc = pick_callee(fn.layer);
                break;
              case TermKind::IndirectCall: {
                IndirectSet iset;
                if (dispatcher) {
                    iset.funcs = roots_;
                    iset.cdf = rootCdf_;
                } else {
                    unsigned k = std::max(2u, cfg_.indirectTargets);
                    double sum = 0.0;
                    for (unsigned t = 0; t < k; ++t) {
                        iset.funcs.push_back(pick_callee(fn.layer));
                        // skewed weights: 1, 1/2, 1/4, ...
                        sum += 1.0 / static_cast<double>(1u << t);
                        iset.cdf.push_back(sum);
                    }
                    for (auto &v : iset.cdf)
                        v /= sum;
                    iset.cdf.back() = 1.0;
                }
                bb.indirectSet =
                    static_cast<std::uint32_t>(isets_.size());
                isets_.push_back(std::move(iset));
                break;
              }
              case TermKind::FallThrough:
              case TermKind::Return:
                break;
            }
        }
    }
}

void
ProgramCfg::layoutCode()
{
    // Call-affinity (Pettis-Hansen style) placement: DFS from the
    // dispatcher, placing each function's callees (and tail-call
    // targets) immediately after it in first-use order. Functions
    // never reached from the dispatcher are appended afterwards;
    // trap handlers go to a separate, distant region.
    std::vector<bool> placed(funcs_.size(), false);
    std::vector<std::uint32_t> order;
    order.reserve(funcs_.size());

    std::vector<std::uint32_t> stack;
    stack.push_back(0);
    std::vector<std::uint32_t> callees;
    while (!stack.empty()) {
        std::uint32_t fi = stack.back();
        stack.pop_back();
        if (placed[fi] || funcs_[fi].isTrapHandler)
            continue;
        placed[fi] = true;
        order.push_back(fi);
        // Gather callees in block order; push in reverse so the
        // first call site's target is placed first (right after us).
        callees.clear();
        const Function &fn = funcs_[fi];
        for (std::uint32_t b = 0; b < fn.numBlocks; ++b) {
            const BasicBlock &bb = blocks_[fn.firstBlock + b];
            switch (bb.term) {
              case TermKind::Call:
                callees.push_back(bb.targetFunc);
                break;
              case TermKind::UncondBranch:
                if (bb.isTailCall)
                    callees.push_back(bb.targetFunc);
                break;
              case TermKind::IndirectCall:
                for (std::uint32_t t :
                     isets_[bb.indirectSet].funcs)
                    callees.push_back(t);
                break;
              default:
                break;
            }
        }
        for (auto it = callees.rbegin(); it != callees.rend(); ++it)
            stack.push_back(*it);
    }
    for (std::uint32_t fi = 0; fi < funcs_.size(); ++fi)
        if (!placed[fi] && !funcs_[fi].isTrapHandler)
            order.push_back(fi);

    Addr pc = cfg_.codeBase;
    auto place = [&](std::uint32_t fi) {
        Function &fn = funcs_[fi];
        pc = alignUp(pc, funcAlign);
        fn.entry = pc;
        for (std::uint32_t b = 0; b < fn.numBlocks; ++b) {
            BasicBlock &bb = blocks_[fn.firstBlock + b];
            bb.startPc = pc;
            pc += static_cast<Addr>(bb.numInstrs) * instrBytes;
        }
    };
    for (std::uint32_t fi : order)
        place(fi);

    // Trap handlers in a distant region.
    pc = alignUp(pc + (256u << 10), 64u << 10);
    for (std::uint32_t fi : traps_)
        place(fi);

    codeBytes_ = pc - cfg_.codeBase;
}

} // namespace ipref
