/**
 * @file
 * Static program structure for the synthetic workloads: a layered
 * call graph of functions, each a list of basic blocks with fixed
 * per-site control-flow behaviour.
 *
 * The structure is built once from the layout seed and is immutable
 * afterwards; the dynamic walker (Workload) traverses it. Fixing
 * branch targets, call targets and per-site biases at build time is
 * what gives the fetch stream the *repetitive* discontinuity structure
 * that history-based prefetchers (and the paper's discontinuity
 * predictor) exploit.
 */

#ifndef IPREF_WORKLOAD_CFG_HH
#define IPREF_WORKLOAD_CFG_HH

#include <cstdint>
#include <vector>

#include "trace/record.hh"
#include "util/rng.hh"
#include "util/types.hh"
#include "workload/workload_config.hh"

namespace ipref
{

/** How a basic block ends. */
enum class TermKind : std::uint8_t
{
    FallThrough, //!< no CTI; execution continues in the next block
    CondBranch,  //!< conditional branch to targetBlock (else next)
    UncondBranch,//!< unconditional branch to targetBlock
    Call,        //!< direct call to targetFunc; resumes at next block
    IndirectCall,//!< Jump to one of several callee functions
    Return,      //!< return to caller
};

/** A basic block: contiguous instructions ending in a terminator. */
struct BasicBlock
{
    Addr startPc = 0;
    std::uint16_t numInstrs = 0;   //!< includes the terminator slot
    TermKind term = TermKind::FallThrough;
    std::uint32_t targetBlock = 0; //!< global block index (branches)
    std::uint32_t targetFunc = 0;  //!< callee (Call)
    std::uint32_t indirectSet = 0; //!< index into indirect target sets
    float takenProb = 0.0f;        //!< CondBranch: P(taken)
    bool isBackEdge = false;       //!< CondBranch: loop back-edge?
    bool isTailCall = false;       //!< UncondBranch to targetFunc
    std::uint32_t instrBase = 0;   //!< index into ProgramCfg::instrs

    /** Address of the block's terminator (last instruction). */
    Addr
    termPc() const
    {
        return startPc + static_cast<Addr>(numInstrs - 1) * instrBytes;
    }

    /** Address just past the block. */
    Addr
    endPc() const
    {
        return startPc + static_cast<Addr>(numInstrs) * instrBytes;
    }
};

/** Static (non-CTI) instruction description. */
struct StaticInstr
{
    OpClass op = OpClass::IntAlu;
    std::uint8_t src0 = 0;
    std::uint8_t src1 = 0;
    std::uint8_t dst = 0;
};

/** A function: a contiguous range of blocks; entry is the first. */
struct Function
{
    std::uint32_t firstBlock = 0;
    std::uint32_t numBlocks = 0;
    std::uint32_t layer = 0;   //!< call-graph layer (0 = roots)
    Addr entry = 0;
    bool isTrapHandler = false;
};

/** A set of candidate targets for one indirect-call site. */
struct IndirectSet
{
    std::vector<std::uint32_t> funcs; //!< candidate callees
    std::vector<double> cdf;          //!< skewed selection CDF
};

/**
 * The whole static program: functions, blocks, instruction slots and
 * indirect-target sets, plus the transaction-dispatch metadata.
 */
class ProgramCfg
{
  public:
    /** Build a program from the config's layoutSeed. */
    explicit ProgramCfg(const WorkloadConfig &cfg);

    const WorkloadConfig &config() const { return cfg_; }

    const std::vector<Function> &functions() const { return funcs_; }
    const std::vector<BasicBlock> &blocks() const { return blocks_; }
    const std::vector<StaticInstr> &instrs() const { return instrs_; }
    const std::vector<IndirectSet> &indirectSets() const { return isets_; }

    /** Indices of layer-0 functions (transaction entry points). */
    const std::vector<std::uint32_t> &rootFuncs() const { return roots_; }
    /** Zipf CDF over rootFuncs (transaction popularity). */
    const std::vector<double> &rootCdf() const { return rootCdf_; }

    /** Indices of trap-handler functions. */
    const std::vector<std::uint32_t> &trapFuncs() const { return traps_; }

    /** Total bytes of generated code (including trap handlers). */
    Addr codeBytes() const { return codeBytes_; }

    /** Number of call-graph layers. */
    unsigned layers() const { return cfg_.callLayers; }

  private:
    void buildFunctions(Rng &rng);
    void assignTargets(Rng &rng);

    /**
     * Assign code addresses in call-affinity order (a Pettis-Hansen
     * style DFS of the call graph from the dispatcher), mirroring the
     * paper's aggressively link-time-optimized binaries: a function's
     * callees tend to sit right after it, so sequential prefetch
     * overrun lands on soon-to-be-executed code.
     */
    void layoutCode();

    WorkloadConfig cfg_;
    std::vector<Function> funcs_;
    std::vector<BasicBlock> blocks_;
    std::vector<StaticInstr> instrs_;
    std::vector<IndirectSet> isets_;
    std::vector<std::uint32_t> roots_;
    std::vector<double> rootCdf_;
    std::vector<std::uint32_t> traps_;
    std::vector<std::vector<std::uint32_t>> layerFuncs_;
    Addr codeBytes_ = 0;
};

} // namespace ipref

#endif // IPREF_WORKLOAD_CFG_HH
