#include "workload/presets.hh"

#include <algorithm>
#include <cctype>
#include <map>
#include <mutex>

#include "util/error.hh"
#include "util/logging.hh"

namespace ipref
{

const std::vector<WorkloadKind> &
allWorkloadKinds()
{
    static const std::vector<WorkloadKind> kinds = {
        WorkloadKind::DB, WorkloadKind::TPCW, WorkloadKind::JAPP,
        WorkloadKind::WEB};
    return kinds;
}

const char *
workloadName(WorkloadKind kind)
{
    switch (kind) {
      case WorkloadKind::DB: return "DB";
      case WorkloadKind::TPCW: return "TPC-W";
      case WorkloadKind::JAPP: return "jApp";
      case WorkloadKind::WEB: return "Web";
      default: return "?";
    }
}

WorkloadKind
parseWorkloadKind(const std::string &name)
{
    std::string s;
    for (char c : name)
        if (c != '-' && c != '_')
            s.push_back(static_cast<char>(std::tolower(
                static_cast<unsigned char>(c))));
    if (s == "db" || s == "database")
        return WorkloadKind::DB;
    if (s == "tpcw")
        return WorkloadKind::TPCW;
    if (s == "japp" || s == "jappserver" || s == "specjappserver")
        return WorkloadKind::JAPP;
    if (s == "web" || s == "specweb" || s == "specweb99")
        return WorkloadKind::WEB;
    ipref_raise(ConfigError, "unknown workload '%s' (want db|tpcw|japp|web)",
                name.c_str());
}

WorkloadConfig
presetConfig(WorkloadKind kind)
{
    WorkloadConfig c;
    switch (kind) {
      case WorkloadKind::DB:
        // OLTP database: large code footprint, deep call chains,
        // big data working set with strong reuse skew.
        c.name = "DB";
        c.layoutSeed = 0xDB01;
        c.codeBase = 0x0000000010000000ULL;
        c.dataBase = 0x0000001000000000ULL;
        c.codeFootprintBytes = 3u << 20;
        c.callLayers = 7;
        c.callFraction = 0.25;
        c.indirectCallFraction = 0.02;
        c.condBranchFraction = 0.38;
        c.calleeZipfAlpha = 0.66;
        c.transactionZipfAlpha = 0.46;
        c.loopBackFraction = 0.13;
        c.meanLoopTrips = 5.0;
        c.concurrentContexts = 3;
        c.contextSwitchPeriod = 2600;
        c.hotDataBytes = 16u << 20;
        c.hotDataZipfAlpha = 1.28;
        c.warmDataBytes = 128u << 10;
        c.coldDataBytes = 48u << 20;
        c.hotAccessFraction = 0.88;
        c.warmAccessFraction = 0.0;
        c.loadFraction = 0.25;
        c.storeFraction = 0.12;
        break;
      case WorkloadKind::TPCW:
        // Transactional web server: moderate footprint, fewer layers.
        c.name = "TPC-W";
        c.layoutSeed = 0x79C3;
        c.codeBase = 0x0000000050000000ULL;
        c.dataBase = 0x0000001400000000ULL;
        c.codeFootprintBytes = 2560u << 10;
        c.callLayers = 6;
        c.callFraction = 0.20;
        c.indirectCallFraction = 0.03;
        c.calleeZipfAlpha = 0.88;
        c.transactionZipfAlpha = 0.45;
        c.loopBackFraction = 0.22;
        c.meanLoopTrips = 4.0;
        c.concurrentContexts = 4;
        c.contextSwitchPeriod = 1400;
        c.hotDataBytes = 16u << 20;
        c.hotDataZipfAlpha = 1.31;
        c.warmDataBytes = 96u << 10;
        c.coldDataBytes = 24u << 20;
        c.hotAccessFraction = 0.88;
        c.warmAccessFraction = 0.0;
        break;
      case WorkloadKind::JAPP:
        // Java application server: the largest footprint, very small
        // methods, many (virtual) calls, flat function popularity.
        c.name = "jApp";
        c.layoutSeed = 0x3A99;
        c.codeBase = 0x0000000090000000ULL;
        c.dataBase = 0x0000001800000000ULL;
        c.codeFootprintBytes = 4u << 20;
        c.callLayers = 8;
        c.rootFraction = 0.05;
        c.blockCountP = 0.18;      // fewer blocks per method
        c.blockSizeP = 0.22;       // shorter blocks
        c.callFraction = 0.25;
        c.indirectCallFraction = 0.06; // virtual dispatch
        c.condBranchFraction = 0.34;
        c.calleeZipfAlpha = 0.90;
        c.transactionZipfAlpha = 0.48;
        c.loopBackFraction = 0.11;
        c.meanLoopTrips = 3.5;
        c.concurrentContexts = 4;
        c.contextSwitchPeriod = 1500;
        c.hotDataBytes = 16u << 20;
        c.hotDataZipfAlpha = 1.26;
        c.warmDataBytes = 128u << 10;
        c.coldDataBytes = 32u << 20;
        c.hotAccessFraction = 0.88;
        c.warmAccessFraction = 0.0;
        c.loadFraction = 0.26;
        break;
      case WorkloadKind::WEB:
        // SPECweb99: smaller, hotter code; lighter data reuse skew.
        c.name = "Web";
        c.layoutSeed = 0x3EB9;
        c.codeBase = 0x00000000D0000000ULL;
        c.dataBase = 0x0000001C00000000ULL;
        c.codeFootprintBytes = 1280u << 10;
        c.callLayers = 5;
        c.callFraction = 0.24;
        c.indirectCallFraction = 0.02;
        c.calleeZipfAlpha = 0.72;
        c.transactionZipfAlpha = 0.60;
        c.loopBackFraction = 0.15;
        c.concurrentContexts = 3;
        c.contextSwitchPeriod = 2200;
        c.hotDataBytes = 16u << 20;
        c.hotDataZipfAlpha = 1.35;
        c.warmDataBytes = 64u << 10;
        c.coldDataBytes = 40u << 20;
        c.hotAccessFraction = 0.88;
        c.warmAccessFraction = 0.0;
        c.loadFraction = 0.22;
        c.storeFraction = 0.09;
        break;
      default:
        ipref_raise(InvariantError, "bad workload kind");
    }
    return c;
}

std::shared_ptr<const ProgramCfg>
buildProgram(WorkloadKind kind)
{
    // Shared, lazily-built cache: guarded so Systems constructed
    // concurrently (the parallel experiment runner) don't race. The
    // cached programs themselves are immutable.
    static std::mutex cacheMutex;
    static std::map<WorkloadKind, std::shared_ptr<const ProgramCfg>>
        cache;
    std::lock_guard<std::mutex> lock(cacheMutex);
    auto it = cache.find(kind);
    if (it != cache.end())
        return it->second;
    auto prog = std::make_shared<const ProgramCfg>(presetConfig(kind));
    cache[kind] = prog;
    return prog;
}

std::unique_ptr<Workload>
makeWorkload(WorkloadKind kind, CoreId core, std::uint64_t baseSeed)
{
    auto prog = buildProgram(kind);
    std::uint64_t walk_seed =
        baseSeed * 0x9e3779b97f4a7c15ULL + core * 0x100000001b3ULL +
        static_cast<std::uint64_t>(kind);
    Addr data_offset = static_cast<Addr>(core) << 28; // 256 MB apart
    return std::make_unique<Workload>(prog, walk_seed, data_offset);
}

} // namespace ipref
