/**
 * @file
 * Trace-driven, cycle-stepped out-of-order core model.
 *
 * Models the paper's core (Section 5): 8-wide fetch, 3-wide issue,
 * 64-entry window/ROB, 16-stage pipeline, gshare + BTB + RAS front
 * end, two-level TLBs. Each tick() advances one cycle through
 * commit -> issue -> dispatch -> fetch.
 *
 * Trace-driven approximations (documented in DESIGN.md): no wrong
 * path is simulated; a mispredicted CTI blocks fetch until it issues,
 * then fetch resumes after a redirect penalty. Instruction cache
 * misses stall fetch until the fill arrives, which is the first-order
 * effect the paper's prefetchers attack.
 */

#ifndef IPREF_CPU_CORE_HH
#define IPREF_CPU_CORE_HH

#include <deque>
#include <optional>

#include "cache/hierarchy.hh"
#include "cpu/branch_predictor.hh"
#include "cpu/tlb.hh"
#include "prefetch/engine.hh"
#include "sim/cycle_ledger.hh"
#include "trace/trace_source.hh"
#include "util/stats.hh"

namespace ipref
{

/** Core microarchitecture parameters (paper defaults). */
struct CoreParams
{
    unsigned fetchWidth = 8;
    unsigned dispatchWidth = 4;
    unsigned issueWidth = 3;
    unsigned commitWidth = 4;
    unsigned robEntries = 64;
    unsigned fetchBufferEntries = 24;
    /** Fetch-to-dispatch latency (front half of the 16-stage pipe). */
    unsigned frontendDelay = 8;
    /** Additional refill penalty after a mispredict resolves. */
    unsigned redirectPenalty = 8;
    Cycle intMulLatency = 5;
    Cycle fpLatency = 3;
    BranchPredictorParams bp;
    TlbParams tlb;
    static constexpr unsigned numRegs = 32;
};

/** One out-of-order core bound to a trace, a hierarchy and a
 *  prefetch engine. */
class OoOCore
{
  public:
    OoOCore(CoreId id, const CoreParams &params,
            CacheHierarchy &hierarchy, PrefetchEngine &engine,
            TraceSource *trace);

    /** Advance one cycle at time @p now. */
    void tick(Cycle now);

    /** Trace exhausted and pipeline drained. */
    bool done() const;

    /**
     * Called at the warm-up/measure boundary, after the stats tree
     * (including the cycle ledger) was reset and the trace sink
     * cleared: forget the open stall episode's pre-boundary cycles so
     * the episode trace events re-sum exactly to the reset ledger.
     */
    void onMeasureBegin();

    /**
     * Flush the trailing stall episode at end of run so the
     * fetch_stall trace events account for every charged cycle.
     */
    void finishAccounting(Cycle now);

    /** Per-cycle CPI-stack attribution (one bucket per tick). */
    const CycleLedger &ledger() const { return ledger_; }

    /** Swap the instruction stream (time-sliced mixed workloads).
     *  The pipeline naturally drains the old stream's instructions. */
    void setTrace(TraceSource *trace) { trace_ = trace; }

    CoreId id() const { return id_; }
    std::uint64_t committed() const { return committed_.value(); }

    FrontEndPredictor &predictor() { return bp_; }
    Tlb &itlb() { return itlb_; }
    Tlb &dtlb() { return dtlb_; }

    // Statistics.
    Counter committed_;
    Counter fetchedInstrs;
    Counter fetchStallCycles;   //!< cycles fetch waited on a fill
    Counter branchStallCycles;  //!< cycles fetch blocked on a branch
    Counter robFullCycles;
    Counter loadsIssued;
    Counter storesIssued;

    void registerStats(StatGroup &group);

  private:
    struct FetchedInstr
    {
        InstrRecord rec;
        Cycle availAt;      //!< dispatchable from this cycle
        std::uint64_t seq;
    };
    struct RobEntry
    {
        InstrRecord rec;
        std::uint64_t seq;
        Cycle execDone = neverCycle;
        bool issued = false;
    };

    void commitStage(Cycle now);
    void issueStage(Cycle now);
    void dispatchStage(Cycle now);
    void fetchStage(Cycle now);

    Cycle execute(const InstrRecord &rec, Cycle now);

    /** Charge this tick to @p b; extends or opens a stall episode. */
    void chargeCycle(CycleBucket b, Cycle now, Addr line);

    /** Close the open episode (emits its fetch_stall trace event). */
    void closeEpisode(Cycle now);

    /** Bucket for one cycle of the recorded fetch stall. */
    CycleBucket
    stallBucket(Cycle now) const
    {
        if (stallIsRedirect_)
            return CycleBucket::BranchRedirect;
        // The fill portion of the wait charges to the satisfying
        // level; the remainder is translation penalty.
        return now < stallFillReady_ ? stallFillBucket_
                                     : CycleBucket::Itlb;
    }

    CoreId id_;
    CoreParams params_;
    CacheHierarchy &hierarchy_;
    PrefetchEngine &engine_;
    TraceSource *trace_;

    FrontEndPredictor bp_;
    Tlb itlb_;
    Tlb dtlb_;

    std::deque<RobEntry> rob_;
    std::deque<FetchedInstr> fetchBuf_;
    std::array<Cycle, CoreParams::numRegs> regReady_{};

    InstrRecord pendingRec_;
    bool havePending_ = false;
    bool exhausted_ = false;

    Addr curFetchLine_ = invalidAddr;
    InstrRecord prevFetched_;
    bool havePrev_ = false;

    Cycle fetchResumeAt_ = 0;
    std::optional<std::uint64_t> blockedOnSeq_;
    bool demandFetchedThisCycle_ = false;

    std::uint64_t nextSeq_ = 0;

    // --- cycle accounting --------------------------------------------
    CycleLedger ledger_;
    /** Cause of the stall behind fetchResumeAt_, recorded when the
     *  stall begins (the FetchResult is out of scope by the time the
     *  waited cycles are charged). */
    CycleBucket stallFillBucket_ = CycleBucket::FetchL1I;
    Cycle stallFillReady_ = 0;  //!< fill done; later cycles are I-TLB
    bool stallIsRedirect_ = false;
    Addr stallLine_ = invalidAddr;
    /** Lifecycle origin captured at stall start for a late prefetch
     *  (the engine erases the record when it credits the line). */
    PrefetchOrigin stallPartialOrigin_ = PrefetchOrigin::NumOrigins;

    /** Open run of same-bucket cycles, emitted as one fetch_stall
     *  trace event (arg = cycles, detail = bucket) when it closes. */
    bool epOpen_ = false;
    CycleBucket epBucket_ = CycleBucket::Busy;
    std::uint64_t epCycles_ = 0;
    Addr epLine_ = invalidAddr;
    PrefetchOrigin epPartialOrigin_ = PrefetchOrigin::NumOrigins;
};

} // namespace ipref

#endif // IPREF_CPU_CORE_HH
