/**
 * @file
 * Trace-driven, cycle-stepped out-of-order core model.
 *
 * Models the paper's core (Section 5): 8-wide fetch, 3-wide issue,
 * 64-entry window/ROB, 16-stage pipeline, gshare + BTB + RAS front
 * end, two-level TLBs. Each tick() advances one cycle through
 * commit -> issue -> dispatch -> fetch.
 *
 * Trace-driven approximations (documented in DESIGN.md): no wrong
 * path is simulated; a mispredicted CTI blocks fetch until it issues,
 * then fetch resumes after a redirect penalty. Instruction cache
 * misses stall fetch until the fill arrives, which is the first-order
 * effect the paper's prefetchers attack.
 */

#ifndef IPREF_CPU_CORE_HH
#define IPREF_CPU_CORE_HH

#include <deque>
#include <optional>

#include "cache/hierarchy.hh"
#include "cpu/branch_predictor.hh"
#include "cpu/tlb.hh"
#include "prefetch/engine.hh"
#include "trace/trace_source.hh"
#include "util/stats.hh"

namespace ipref
{

/** Core microarchitecture parameters (paper defaults). */
struct CoreParams
{
    unsigned fetchWidth = 8;
    unsigned dispatchWidth = 4;
    unsigned issueWidth = 3;
    unsigned commitWidth = 4;
    unsigned robEntries = 64;
    unsigned fetchBufferEntries = 24;
    /** Fetch-to-dispatch latency (front half of the 16-stage pipe). */
    unsigned frontendDelay = 8;
    /** Additional refill penalty after a mispredict resolves. */
    unsigned redirectPenalty = 8;
    Cycle intMulLatency = 5;
    Cycle fpLatency = 3;
    BranchPredictorParams bp;
    TlbParams tlb;
    static constexpr unsigned numRegs = 32;
};

/** One out-of-order core bound to a trace, a hierarchy and a
 *  prefetch engine. */
class OoOCore
{
  public:
    OoOCore(CoreId id, const CoreParams &params,
            CacheHierarchy &hierarchy, PrefetchEngine &engine,
            TraceSource *trace);

    /** Advance one cycle at time @p now. */
    void tick(Cycle now);

    /** Trace exhausted and pipeline drained. */
    bool done() const;

    /** Swap the instruction stream (time-sliced mixed workloads).
     *  The pipeline naturally drains the old stream's instructions. */
    void setTrace(TraceSource *trace) { trace_ = trace; }

    CoreId id() const { return id_; }
    std::uint64_t committed() const { return committed_.value(); }

    FrontEndPredictor &predictor() { return bp_; }
    Tlb &itlb() { return itlb_; }
    Tlb &dtlb() { return dtlb_; }

    // Statistics.
    Counter committed_;
    Counter fetchedInstrs;
    Counter fetchStallCycles;   //!< cycles fetch waited on a fill
    Counter branchStallCycles;  //!< cycles fetch blocked on a branch
    Counter robFullCycles;
    Counter loadsIssued;
    Counter storesIssued;

    void registerStats(StatGroup &group);

  private:
    struct FetchedInstr
    {
        InstrRecord rec;
        Cycle availAt;      //!< dispatchable from this cycle
        std::uint64_t seq;
    };
    struct RobEntry
    {
        InstrRecord rec;
        std::uint64_t seq;
        Cycle execDone = neverCycle;
        bool issued = false;
    };

    void commitStage(Cycle now);
    void issueStage(Cycle now);
    void dispatchStage(Cycle now);
    void fetchStage(Cycle now);

    Cycle execute(const InstrRecord &rec, Cycle now);

    CoreId id_;
    CoreParams params_;
    CacheHierarchy &hierarchy_;
    PrefetchEngine &engine_;
    TraceSource *trace_;

    FrontEndPredictor bp_;
    Tlb itlb_;
    Tlb dtlb_;

    std::deque<RobEntry> rob_;
    std::deque<FetchedInstr> fetchBuf_;
    std::array<Cycle, CoreParams::numRegs> regReady_{};

    InstrRecord pendingRec_;
    bool havePending_ = false;
    bool exhausted_ = false;

    Addr curFetchLine_ = invalidAddr;
    InstrRecord prevFetched_;
    bool havePrev_ = false;

    Cycle fetchResumeAt_ = 0;
    std::optional<std::uint64_t> blockedOnSeq_;
    bool demandFetchedThisCycle_ = false;

    std::uint64_t nextSeq_ = 0;
};

} // namespace ipref

#endif // IPREF_CPU_CORE_HH
