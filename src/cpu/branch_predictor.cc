#include "cpu/branch_predictor.hh"

#include "util/bitutil.hh"
#include "util/error.hh"
#include "util/logging.hh"

namespace ipref
{

GsharePredictor::GsharePredictor(std::uint32_t entries)
{
    if (!isPowerOfTwo(entries))
        ipref_raise(ConfigError, "gshare entries must be a power of two");
    table_.assign(entries, 2); // weakly taken
    mask_ = entries - 1;
}

std::uint32_t
GsharePredictor::indexOf(Addr pc) const
{
    return static_cast<std::uint32_t>(
        ((pc >> 2) ^ history_) & mask_);
}

bool
GsharePredictor::predict(Addr pc) const
{
    return table_[indexOf(pc)] >= 2;
}

void
GsharePredictor::update(Addr pc, bool taken)
{
    ++lookups;
    std::uint8_t &ctr = table_[indexOf(pc)];
    bool predicted = ctr >= 2;
    if (predicted != taken)
        ++mispredicts;
    if (taken) {
        if (ctr < 3)
            ++ctr;
    } else {
        if (ctr > 0)
            --ctr;
    }
    history_ = (history_ << 1) | (taken ? 1 : 0);
}

Btb::Btb(std::uint32_t entries)
{
    if (!isPowerOfTwo(entries))
        ipref_raise(ConfigError, "BTB entries must be a power of two");
    table_.assign(entries, 0);
    mask_ = entries - 1;
}

Addr
Btb::predict(Addr pc) const
{
    return table_[(pc >> 2) & mask_];
}

void
Btb::update(Addr pc, Addr target)
{
    table_[(pc >> 2) & mask_] = target;
}

ReturnAddressStack::ReturnAddressStack(std::uint32_t entries)
    : stack_(entries, 0)
{
    ipref_assert(entries >= 1);
}

void
ReturnAddressStack::push(Addr returnAddr)
{
    // Conditional wrap instead of modulo: push/pop run once per
    // call/return in the fetch loop.
    if (++top_ == stack_.size())
        top_ = 0;
    stack_[top_] = returnAddr;
    if (count_ < stack_.size())
        ++count_;
}

Addr
ReturnAddressStack::pop()
{
    if (count_ == 0)
        return 0;
    Addr v = stack_[top_];
    top_ = (top_ == 0 ? stack_.size() : top_) - 1;
    --count_;
    return v;
}

FrontEndPredictor::FrontEndPredictor(const BranchPredictorParams &params)
    : gshare_(params.gshareEntries),
      btb_(params.btbEntries),
      ras_(params.rasEntries)
{}

bool
FrontEndPredictor::predict(const InstrRecord &rec)
{
    ++ctis;
    switch (rec.op) {
      case OpClass::CondBranch: {
        bool predicted = gshare_.predict(rec.pc);
        gshare_.update(rec.pc, rec.taken);
        if (predicted != rec.taken) {
            ++mispredicts;
            ++condMispredicts;
            return false;
        }
        return true;
      }
      case OpClass::UncondBranch:
        return true; // PC-relative: resolved in decode
      case OpClass::Call:
        ras_.push(rec.pc + instrBytes);
        return true; // direct: target embedded
      case OpClass::Jump: {
        // Indirect call: predict via BTB, push the return address.
        Addr predicted = btb_.predict(rec.pc);
        btb_.update(rec.pc, rec.target);
        ras_.push(rec.pc + instrBytes);
        if (predicted != rec.target) {
            ++mispredicts;
            ++jumpMispredicts;
            return false;
        }
        return true;
      }
      case OpClass::Return: {
        Addr predicted = ras_.pop();
        if (predicted != rec.target) {
            ++mispredicts;
            ++returnMispredicts;
            return false;
        }
        return true;
      }
      case OpClass::Trap:
        ++mispredicts;
        return false; // traps always flush the front end
      default:
        ipref_panic("predict() called on a non-CTI");
    }
}

void
FrontEndPredictor::registerStats(StatGroup &group)
{
    group.addCounter("ctis", &ctis);
    group.addCounter("mispredicts", &mispredicts);
    group.addCounter("cond_mispredicts", &condMispredicts);
    group.addCounter("jump_mispredicts", &jumpMispredicts);
    group.addCounter("return_mispredicts", &returnMispredicts);
}

} // namespace ipref
