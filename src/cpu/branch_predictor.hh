/**
 * @file
 * Front-end branch prediction: a gshare conditional predictor, a
 * direct-mapped tagless BTB for indirect-jump targets, and a return
 * address stack — the configuration of the paper's Section 5
 * (64K-entry gshare, 1K-entry BTB, 16-entry RAS).
 *
 * The simulator is trace-driven, so prediction reduces to deciding
 * whether the front end *would* have redirected correctly:
 *  - conditional branches mispredict on a wrong direction (targets
 *    are PC-relative and available at decode);
 *  - direct calls and unconditional branches never mispredict;
 *  - indirect jumps mispredict when the BTB's target differs;
 *  - returns mispredict when the RAS top differs;
 *  - traps always flush.
 */

#ifndef IPREF_CPU_BRANCH_PREDICTOR_HH
#define IPREF_CPU_BRANCH_PREDICTOR_HH

#include <cstdint>
#include <vector>

#include "trace/record.hh"
#include "util/stats.hh"
#include "util/types.hh"

namespace ipref
{

/** Predictor sizing. */
struct BranchPredictorParams
{
    std::uint32_t gshareEntries = 64u << 10; //!< 2-bit counters
    std::uint32_t btbEntries = 1u << 10;     //!< direct-mapped, tagless
    std::uint32_t rasEntries = 16;
};

/** gshare: global history XOR PC indexing a 2-bit counter table. */
class GsharePredictor
{
  public:
    explicit GsharePredictor(std::uint32_t entries);

    /** Predict direction for the branch at @p pc. */
    bool predict(Addr pc) const;

    /** Update with the actual outcome and advance global history. */
    void update(Addr pc, bool taken);

    Counter lookups;
    Counter mispredicts;

  private:
    std::uint32_t indexOf(Addr pc) const;

    std::vector<std::uint8_t> table_;
    std::uint32_t mask_;
    std::uint64_t history_ = 0;
};

/** Direct-mapped, tagless branch target buffer. */
class Btb
{
  public:
    explicit Btb(std::uint32_t entries);

    /** Predicted target for the CTI at @p pc (0 if never trained). */
    Addr predict(Addr pc) const;

    void update(Addr pc, Addr target);

  private:
    std::vector<Addr> table_;
    std::uint32_t mask_;
};

/** Return address stack (wraps on overflow, as real RASes do). */
class ReturnAddressStack
{
  public:
    explicit ReturnAddressStack(std::uint32_t entries);

    void push(Addr returnAddr);
    Addr pop();
    bool empty() const { return count_ == 0; }

  private:
    std::vector<Addr> stack_;
    std::uint32_t top_ = 0;
    std::uint32_t count_ = 0;
};

/** The assembled front-end predictor. */
class FrontEndPredictor
{
  public:
    explicit FrontEndPredictor(const BranchPredictorParams &params);

    /**
     * Process the CTI @p rec through the predictor (predict + train).
     * @return true when the front end redirects *correctly* — false
     * means a flush/mispredict.
     */
    bool predict(const InstrRecord &rec);

    Counter ctis;
    Counter mispredicts;
    Counter condMispredicts;
    Counter jumpMispredicts;
    Counter returnMispredicts;

    void registerStats(StatGroup &group);

  private:
    GsharePredictor gshare_;
    Btb btb_;
    ReturnAddressStack ras_;
};

} // namespace ipref

#endif // IPREF_CPU_BRANCH_PREDICTOR_HH
