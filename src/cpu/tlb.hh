/**
 * @file
 * Two-level TLB model: small set-associative L1 instruction and data
 * TLBs backed by a large shared second-level TLB, with fixed miss
 * penalties (paper Section 5: 128-entry 2-way primaries, 2K-entry
 * secondary).
 */

#ifndef IPREF_CPU_TLB_HH
#define IPREF_CPU_TLB_HH

#include <cstdint>
#include <vector>

#include "util/stats.hh"
#include "util/types.hh"

namespace ipref
{

/** TLB sizing and penalties. */
struct TlbParams
{
    unsigned pageBytes = 8u << 10;
    unsigned l1Entries = 128;
    unsigned l1Assoc = 2;
    unsigned l2Entries = 2048;
    unsigned l2Assoc = 4;
    Cycle l2HitPenalty = 10;   //!< L1 TLB miss, L2 TLB hit
    Cycle walkPenalty = 150;   //!< both miss: page table walk
};

/** A single set-associative TLB level. */
class TlbLevel
{
  public:
    TlbLevel(unsigned entries, unsigned assoc, unsigned pageBytes);

    /** Look up the page of @p addr; fills on miss. */
    bool access(Addr addr);

  private:
    struct Entry
    {
        std::uint64_t vpn = 0;
        std::uint64_t lastUse = 0;
        bool valid = false;
    };

    std::vector<Entry> entries_;
    unsigned assoc_;
    unsigned numSets_;
    unsigned pageShift_;
    std::uint64_t useClock_ = 0;
};

/** L1 TLB backed by a (shared per-core here) L2 TLB. */
class Tlb
{
  public:
    explicit Tlb(const TlbParams &params);

    /**
     * Translate @p addr.
     * @return the added penalty in cycles (0 on an L1 TLB hit).
     */
    Cycle translate(Addr addr);

    Counter accesses;
    Counter l1Misses;
    Counter walks;
    Counter penaltyCycles; //!< total penalty cycles returned

    void registerStats(StatGroup &group);

  private:
    TlbParams params_;
    TlbLevel l1_;
    TlbLevel l2_;
};

} // namespace ipref

#endif // IPREF_CPU_TLB_HH
