#include "cpu/core.hh"

#include <algorithm>

#include "util/logging.hh"
#include "util/trace_event.hh"

namespace ipref
{

OoOCore::OoOCore(CoreId id, const CoreParams &params,
                 CacheHierarchy &hierarchy, PrefetchEngine &engine,
                 TraceSource *trace)
    : id_(id),
      params_(params),
      hierarchy_(hierarchy),
      engine_(engine),
      trace_(trace),
      bp_(params.bp),
      itlb_(params.tlb),
      dtlb_(params.tlb)
{
    regReady_.fill(0);
}

bool
OoOCore::done() const
{
    return exhausted_ && !havePending_ && fetchBuf_.empty() &&
           rob_.empty();
}

void
OoOCore::chargeCycle(CycleBucket b, Cycle now, Addr line)
{
    ledger_.charge(b);
    if (epOpen_ && epBucket_ == b) {
        ++epCycles_;
        return;
    }
    closeEpisode(now);
    epOpen_ = true;
    epBucket_ = b;
    epCycles_ = 1;
    epLine_ = line;
    if (b == CycleBucket::PrefetchPartial)
        epPartialOrigin_ = stallPartialOrigin_;
}

void
OoOCore::closeEpisode(Cycle now)
{
    if (epOpen_ && epCycles_ > 0 &&
        epBucket_ != CycleBucket::Busy) {
        // Busy runs are derived (cycles minus stalls) rather than
        // traced; every stall bucket has a non-zero detail id.
        IPREF_TRACE(TraceEventType::FetchStall,
                    static_cast<std::uint16_t>(id_), epLine_,
                    epCycles_,
                    static_cast<std::uint8_t>(epBucket_), now);
        if (epBucket_ == CycleBucket::PrefetchPartial)
            engine_.notePartialStall(epLine_, epCycles_,
                                     epPartialOrigin_);
    }
    epOpen_ = false;
    epCycles_ = 0;
}

void
OoOCore::onMeasureBegin()
{
    // The ledger counters were just reset with the stats tree and the
    // trace sink cleared: restart the open episode's cycle count so
    // its eventual trace event covers only post-boundary cycles.
    epCycles_ = 0;
}

void
OoOCore::finishAccounting(Cycle now)
{
    closeEpisode(now);
}

void
OoOCore::tick(Cycle now)
{
    commitStage(now);
    issueStage(now);
    dispatchStage(now);
    fetchStage(now);
    // Prefetches take the L1I tag port only on cycles with no demand
    // fetch access.
    engine_.tick(now, !demandFetchedThisCycle_);
}

void
OoOCore::commitStage(Cycle now)
{
    unsigned n = 0;
    while (n < params_.commitWidth && !rob_.empty()) {
        const RobEntry &head = rob_.front();
        if (!head.issued || head.execDone > now)
            break;
        rob_.pop_front();
        ++committed_;
        ++n;
    }
}

Cycle
OoOCore::execute(const InstrRecord &rec, Cycle now)
{
    switch (rec.op) {
      case OpClass::IntMul:
        return now + params_.intMulLatency;
      case OpClass::FpAlu:
        return now + params_.fpLatency;
      case OpClass::Load: {
        ++loadsIssued;
        Cycle pen = dtlb_.translate(rec.dataAddr);
        DataResult res =
            hierarchy_.dataAccess(id_, rec.dataAddr, false, now);
        return res.ready + pen;
      }
      case OpClass::Store:
        ++storesIssued;
        dtlb_.translate(rec.dataAddr);
        hierarchy_.dataAccess(id_, rec.dataAddr, true, now);
        return now + 1; // store buffer hides the latency
      default:
        return now + 1;
    }
}

void
OoOCore::issueStage(Cycle now)
{
    unsigned issued = 0;
    for (auto &entry : rob_) {
        if (issued >= params_.issueWidth)
            break;
        if (entry.issued)
            continue;
        const InstrRecord &rec = entry.rec;
        if ((rec.srcReg[0] && regReady_[rec.srcReg[0]] > now) ||
            (rec.srcReg[1] && regReady_[rec.srcReg[1]] > now))
            continue;
        entry.issued = true;
        entry.execDone = execute(rec, now);
        if (rec.dstReg)
            regReady_[rec.dstReg] = entry.execDone;
        if (blockedOnSeq_ && *blockedOnSeq_ == entry.seq) {
            // The mispredicted CTI resolved: schedule the redirect.
            fetchResumeAt_ =
                entry.execDone + params_.redirectPenalty;
            blockedOnSeq_.reset();
            stallIsRedirect_ = true;
            stallLine_ = curFetchLine_;
        }
        ++issued;
    }
}

void
OoOCore::dispatchStage(Cycle now)
{
    unsigned n = 0;
    while (n < params_.dispatchWidth && !fetchBuf_.empty() &&
           rob_.size() < params_.robEntries) {
        if (fetchBuf_.front().availAt > now)
            break;
        RobEntry e;
        e.rec = fetchBuf_.front().rec;
        e.seq = fetchBuf_.front().seq;
        rob_.push_back(e);
        fetchBuf_.pop_front();
        ++n;
    }
    if (rob_.size() >= params_.robEntries)
        ++robFullCycles;
}

void
OoOCore::fetchStage(Cycle now)
{
    demandFetchedThisCycle_ = false;

    if (blockedOnSeq_) {
        ++branchStallCycles;
        chargeCycle(CycleBucket::BranchRedirect, now, curFetchLine_);
        return;
    }
    if (now < fetchResumeAt_) {
        ++fetchStallCycles;
        chargeCycle(stallBucket(now), now, stallLine_);
        return;
    }

    unsigned fetched = 0;
    bool stalled = false;
    const bool bufferFull =
        fetchBuf_.size() >= params_.fetchBufferEntries;
    while (fetched < params_.fetchWidth &&
           fetchBuf_.size() < params_.fetchBufferEntries) {
        if (!havePending_) {
            if (exhausted_ || !trace_ || !trace_->next(pendingRec_)) {
                exhausted_ = trace_ != nullptr;
                break;
            }
            havePending_ = true;
        }

        Addr line = hierarchy_.lineOf(pendingRec_.pc);
        if (line != curFetchLine_) {
            FetchTransition tr = havePrev_
                                     ? prevFetched_.transitionType()
                                     : FetchTransition::Sequential;
            Cycle tlb_pen = itlb_.translate(pendingRec_.pc);
            FetchResult res = hierarchy_.fetchAccess(
                id_, pendingRec_.pc, tr, now);
            demandFetchedThisCycle_ = true;

            DemandFetchEvent ev;
            ev.lineAddr = line;
            ev.prevLineAddr = curFetchLine_;
            ev.transition = tr;
            ev.now = now;
            ev.miss = res.l1Miss;
            ev.firstUseOfPrefetch = res.firstUseOfPrefetch;
            ev.latePrefetchHit = res.latePrefetchHit;
            engine_.onDemandFetch(ev);

            curFetchLine_ = line;
            Cycle ready = res.ready + tlb_pen;
            if (ready > now + hierarchy_.params().l1Latency) {
                // Line not deliverable this cycle: stall fetch until
                // the fill (or translation) completes. Record the
                // cause so the waited cycles charge to the level
                // satisfying the miss (and the translation remainder
                // to the I-TLB bucket).
                fetchResumeAt_ = ready;
                stallIsRedirect_ = false;
                stallFillReady_ = res.ready;
                stallLine_ = line;
                if (res.latePrefetchHit) {
                    stallFillBucket_ = CycleBucket::PrefetchPartial;
                    stallPartialOrigin_ =
                        engine_.lastCreditedOrigin(line);
                } else if (res.l2Miss || res.fromMemory) {
                    stallFillBucket_ = CycleBucket::FetchMem;
                } else if (res.l1Miss) {
                    stallFillBucket_ = CycleBucket::FetchL2;
                } else {
                    stallFillBucket_ = CycleBucket::FetchL1I;
                }
                stalled = true;
                break;
            }
        }

        FetchedInstr fi;
        fi.rec = pendingRec_;
        fi.availAt = now + params_.frontendDelay;
        fi.seq = nextSeq_++;
        fetchBuf_.push_back(fi);
        havePending_ = false;
        prevFetched_ = pendingRec_;
        havePrev_ = true;
        ++fetchedInstrs;
        ++fetched;

        if (fi.rec.isCti()) {
            // Event construction is skipped when the configured
            // scheme ignores the event class (only call-graph
            // consumes function events, only wrong-path consumes
            // branch events).
            if (engine_.wantsFunctionEvents() &&
                (fi.rec.op == OpClass::Call ||
                 fi.rec.op == OpClass::Jump ||
                 fi.rec.op == OpClass::Return)) {
                FunctionEvent fe;
                fe.isReturn = fi.rec.op == OpClass::Return;
                fe.sitePc = fi.rec.pc;
                fe.target = fi.rec.target;
                engine_.onFunction(fe);
            }
            if (engine_.wantsBranchEvents() &&
                fi.rec.op == OpClass::CondBranch) {
                BranchEvent be;
                be.branchPc = fi.rec.pc;
                be.takenTarget = fi.rec.target;
                be.fallthrough = fi.rec.pc + instrBytes;
                be.taken = fi.rec.taken;
                engine_.onBranch(be);
            }
            bool correct = bp_.predict(fi.rec);
            if (!correct) {
                // No wrong path in a trace-driven model: block fetch
                // until this CTI issues, then apply the redirect
                // penalty (see issueStage).
                blockedOnSeq_ = fi.seq;
                break;
            }
            if (fi.rec.redirects())
                break; // a taken CTI ends the fetch group
        }
    }

    // Attribute this tick to exactly one CPI bucket. Order matters:
    // any delivered instruction makes the cycle busy; a fresh stall
    // charges like the waited cycles will; a full fetch buffer is
    // back-end backpressure; otherwise the stream has drained.
    if (fetched > 0)
        chargeCycle(CycleBucket::Busy, now, curFetchLine_);
    else if (stalled)
        chargeCycle(stallBucket(now), now, stallLine_);
    else if (bufferFull)
        chargeCycle(CycleBucket::Backpressure, now, curFetchLine_);
    else
        chargeCycle(CycleBucket::Drain, now, curFetchLine_);
}

void
OoOCore::registerStats(StatGroup &group)
{
    group.addCounter("committed", &committed_);
    group.addCounter("fetched", &fetchedInstrs);
    group.addCounter("fetch_stall_cycles", &fetchStallCycles);
    group.addCounter("branch_stall_cycles", &branchStallCycles);
    group.addCounter("rob_full_cycles", &robFullCycles);
    group.addCounter("loads", &loadsIssued);
    group.addCounter("stores", &storesIssued);
    ledger_.registerStats(group);
    bp_.registerStats(group);
}

} // namespace ipref
