#include "cpu/tlb.hh"

#include "util/bitutil.hh"
#include "util/error.hh"
#include "util/logging.hh"

namespace ipref
{

TlbLevel::TlbLevel(unsigned entries, unsigned assoc, unsigned pageBytes)
    : assoc_(assoc)
{
    ipref_assert(entries % assoc == 0);
    numSets_ = entries / assoc;
    if (!isPowerOfTwo(numSets_))
        ipref_raise(ConfigError, "TLB sets must be a power of two");
    if (!isPowerOfTwo(pageBytes))
        ipref_raise(ConfigError, "page size must be a power of two");
    pageShift_ = floorLog2(pageBytes);
    entries_.resize(entries);
}

bool
TlbLevel::access(Addr addr)
{
    std::uint64_t vpn = addr >> pageShift_;
    unsigned set = static_cast<unsigned>(vpn & (numSets_ - 1));
    Entry *base = &entries_[static_cast<std::size_t>(set) * assoc_];
    for (unsigned w = 0; w < assoc_; ++w) {
        if (base[w].valid && base[w].vpn == vpn) {
            base[w].lastUse = ++useClock_;
            return true;
        }
    }
    // Miss: fill the LRU way.
    Entry *victim = base;
    for (unsigned w = 1; w < assoc_; ++w) {
        if (!base[w].valid) {
            victim = &base[w];
            break;
        }
        if (base[w].lastUse < victim->lastUse)
            victim = &base[w];
    }
    victim->valid = true;
    victim->vpn = vpn;
    victim->lastUse = ++useClock_;
    return false;
}

Tlb::Tlb(const TlbParams &params)
    : params_(params),
      l1_(params.l1Entries, params.l1Assoc, params.pageBytes),
      l2_(params.l2Entries, params.l2Assoc, params.pageBytes)
{}

Cycle
Tlb::translate(Addr addr)
{
    ++accesses;
    if (l1_.access(addr))
        return 0;
    ++l1Misses;
    if (l2_.access(addr)) {
        penaltyCycles += params_.l2HitPenalty;
        return params_.l2HitPenalty;
    }
    ++walks;
    penaltyCycles += params_.walkPenalty;
    return params_.walkPenalty;
}

void
Tlb::registerStats(StatGroup &group)
{
    group.addCounter("accesses", &accesses);
    group.addCounter("l1_misses", &l1Misses);
    group.addCounter("walks", &walks);
    group.addCounter("penalty_cycles", &penaltyCycles,
                     "translation penalty cycles handed to fetch");
}

} // namespace ipref
