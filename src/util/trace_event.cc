#include "util/trace_event.hh"

#include "util/json.hh"

namespace ipref
{

const char *
traceEventName(TraceEventType type)
{
    switch (type) {
      case TraceEventType::CacheHit: return "cache_hit";
      case TraceEventType::CacheMiss: return "cache_miss";
      case TraceEventType::CacheFill: return "cache_fill";
      case TraceEventType::CacheEvict: return "cache_evict";
      case TraceEventType::PrefetchIssue: return "prefetch_issue";
      case TraceEventType::PrefetchDrop: return "prefetch_drop";
      case TraceEventType::PrefetchFill: return "prefetch_fill";
      case TraceEventType::PrefetchUseful: return "prefetch_useful";
      case TraceEventType::PrefetchUseless: return "prefetch_useless";
      case TraceEventType::PrefetchReplaced:
        return "prefetch_replaced";
      case TraceEventType::QueueHoist: return "queue_hoist";
      case TraceEventType::QueueInvalidate: return "queue_invalidate";
      case TraceEventType::DiscAlloc: return "disc_alloc";
      case TraceEventType::DiscEvict: return "disc_evict";
      case TraceEventType::DiscHit: return "disc_hit";
      case TraceEventType::FetchStall: return "fetch_stall";
      case TraceEventType::NumTypes: break;
    }
    return "unknown";
}

void
TraceSink::enable(std::size_t capacity)
{
    ring_.assign(capacity ? capacity : 1, TraceEvent{});
    head_ = 0;
    recorded_ = 0;
    countsByType_.fill(0);
    enabled_ = true;
}

void
TraceSink::disable()
{
    enabled_ = false;
    ring_.clear();
    ring_.shrink_to_fit();
    head_ = 0;
    recorded_ = 0;
}

void
TraceSink::clear()
{
    head_ = 0;
    recorded_ = 0;
    countsByType_.fill(0);
}

std::vector<TraceEvent>
TraceSink::snapshot() const
{
    std::vector<TraceEvent> out;
    std::size_t n = size();
    out.reserve(n);
    // Oldest event: head_ when wrapped, index 0 otherwise.
    std::size_t start = recorded_ > ring_.size() ? head_ : 0;
    for (std::size_t i = 0; i < n; ++i)
        out.push_back(ring_[(start + i) % ring_.size()]);
    return out;
}

void
TraceSink::writeJsonLines(std::ostream &os) const
{
    for (const TraceEvent &e : snapshot()) {
        os << "{\"cycle\":" << e.cycle << ",\"type\":\""
           << traceEventName(e.type) << "\",\"core\":";
        // Uniform schema: events without a core context carry an
        // explicit null, never the 0xffff sentinel.
        if (e.core != traceNoCore)
            os << e.core;
        else
            os << "null";
        os << ",\"addr\":\"" << jsonHex(e.addr) << "\"";
        if (e.pc)
            os << ",\"pc\":\"" << jsonHex(e.pc) << "\"";
        if (e.arg)
            os << ",\"arg\":" << e.arg;
        if (e.detail)
            os << ",\"detail\":" << static_cast<unsigned>(e.detail);
        os << "}\n";
    }
}


} // namespace ipref
