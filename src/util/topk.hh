/**
 * @file
 * Bounded heavy-hitter tracking: the Space-Saving sketch of Metwally,
 * Agrawal & El Abbadi (ICDT'05), extended with a per-entry auxiliary
 * payload.
 *
 * The sketch keeps at most K (key, count) entries in O(K) memory.
 * A touch of a tracked key increments its count; a touch of an
 * untracked key when the table is full replaces the minimum-count
 * entry, inheriting its count as the new entry's overestimation
 * `error`. Any key whose true frequency exceeds N/K (N = total
 * touches) is guaranteed to be resident, which is exactly the
 * property per-site miss/prefetch attribution needs: the hot sites
 * are never lost, no matter how large the code footprint.
 *
 * The auxiliary payload (per-site class counters, per-edge
 * usefulness counts, ...) is reset when an entry is recycled, so aux
 * values are exact *for the tracked residency window* while `count`
 * carries the sketch's usual [count - error, count] bound.
 */

#ifndef IPREF_UTIL_TOPK_HH
#define IPREF_UTIL_TOPK_HH

#include <algorithm>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

namespace ipref
{

/**
 * Space-Saving sketch over keys of type @p Key with payload @p Aux.
 *
 * @tparam Key  key type (hashable, equality-comparable)
 * @tparam Aux  default-constructible per-entry payload
 * @tparam Hash hash functor for Key
 */
template <typename Key, typename Aux, typename Hash = std::hash<Key>>
class SpaceSaving
{
  public:
    struct Entry
    {
        Key key{};
        std::uint64_t count = 0; //!< upper bound on the true frequency
        std::uint64_t error = 0; //!< count inherited at replacement
        Aux aux{};
    };

    explicit SpaceSaving(std::size_t capacity)
        : capacity_(capacity ? capacity : 1)
    {
        entries_.reserve(capacity_);
        index_.reserve(capacity_ * 2);
    }

    /**
     * Count one touch (weight @p w) of @p key and return its payload
     * for the caller to update. Never returns nullptr.
     */
    Aux *
    touch(const Key &key, std::uint64_t w = 1)
    {
        touches_ += w;
        auto it = index_.find(key);
        if (it != index_.end()) {
            Entry &e = entries_[it->second];
            e.count += w;
            return &e.aux;
        }
        if (entries_.size() < capacity_) {
            index_.emplace(key, entries_.size());
            entries_.push_back(Entry{key, w, 0, Aux{}});
            return &entries_.back().aux;
        }
        // Replace the minimum-count entry (linear scan: replacement
        // only happens on untracked keys, and K is small).
        std::size_t victim = 0;
        for (std::size_t i = 1; i < entries_.size(); ++i)
            if (entries_[i].count < entries_[victim].count)
                victim = i;
        Entry &e = entries_[victim];
        index_.erase(e.key);
        ++replacements_;
        e.error = e.count;
        e.count += w;
        e.key = key;
        e.aux = Aux{};
        index_.emplace(key, victim);
        return &e.aux;
    }

    /** Payload of @p key if tracked, else nullptr (no counting). */
    const Aux *
    find(const Key &key) const
    {
        auto it = index_.find(key);
        return it == index_.end() ? nullptr
                                  : &entries_[it->second].aux;
    }

    /** Tracked entries, highest count first. */
    std::vector<Entry>
    top(std::size_t n = ~std::size_t{0}) const
    {
        std::vector<Entry> out(entries_);
        std::sort(out.begin(), out.end(),
                  [](const Entry &a, const Entry &b) {
                      return a.count > b.count;
                  });
        if (out.size() > n)
            out.resize(n);
        return out;
    }

    std::size_t size() const { return entries_.size(); }
    std::size_t capacity() const { return capacity_; }

    /** Total touch weight observed (tracked or not). */
    std::uint64_t touches() const { return touches_; }

    /** Entries recycled to admit new keys (sketch pressure). */
    std::uint64_t replacements() const { return replacements_; }

    /**
     * Guaranteed-frequency floor: any key with true frequency above
     * touches()/capacity() is currently tracked.
     */
    std::uint64_t
    guaranteedFloor() const
    {
        return touches_ / capacity_;
    }

    void
    clear()
    {
        entries_.clear();
        index_.clear();
        touches_ = 0;
        replacements_ = 0;
    }

  private:
    std::size_t capacity_;
    std::vector<Entry> entries_;
    std::unordered_map<Key, std::size_t, Hash> index_;
    std::uint64_t touches_ = 0;
    std::uint64_t replacements_ = 0;
};

} // namespace ipref

#endif // IPREF_UTIL_TOPK_HH
