/**
 * @file
 * Small bit-manipulation helpers used throughout the cache and
 * predictor models.
 */

#ifndef IPREF_UTIL_BITUTIL_HH
#define IPREF_UTIL_BITUTIL_HH

#include <bit>
#include <cstdint>

#include "util/types.hh"

namespace ipref
{

/** True iff @p v is a power of two (and non-zero). */
constexpr bool
isPowerOfTwo(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** floor(log2(v)); @p v must be non-zero. */
constexpr unsigned
floorLog2(std::uint64_t v)
{
    return 63u - static_cast<unsigned>(std::countl_zero(v));
}

/** ceil(log2(v)); @p v must be non-zero. */
constexpr unsigned
ceilLog2(std::uint64_t v)
{
    return isPowerOfTwo(v) ? floorLog2(v) : floorLog2(v) + 1;
}

/** Round @p v down to a multiple of power-of-two @p align. */
constexpr Addr
alignDown(Addr v, std::uint64_t align)
{
    return v & ~(align - 1);
}

/** Round @p v up to a multiple of power-of-two @p align. */
constexpr Addr
alignUp(Addr v, std::uint64_t align)
{
    return (v + align - 1) & ~(align - 1);
}

/** Extract bits [lo, hi] (inclusive) of @p v. */
constexpr std::uint64_t
bits(std::uint64_t v, unsigned hi, unsigned lo)
{
    return (v >> lo) & ((std::uint64_t{1} << (hi - lo + 1)) - 1);
}

} // namespace ipref

#endif // IPREF_UTIL_BITUTIL_HH
