#include "util/mmap_file.hh"

#include <cerrno>
#include <cstdio>

#include "util/error.hh"

#if defined(__unix__) || defined(__APPLE__)
#define IPREF_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define IPREF_HAVE_MMAP 0
#include <sys/stat.h>
#endif

namespace ipref
{

namespace
{

[[noreturn]] void
raiseIo(const char *what, const std::string &path, int err)
{
    throw SimError(SimError::Kind::Io,
                   detail::formatMessage("%s: '%s' (errno %d)", what,
                                         path.c_str(), err),
                   isTransientErrno(err));
}

} // namespace

MappedFile::MappedFile(const std::string &path) : path_(path)
{
#if IPREF_HAVE_MMAP
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        raiseIo("cannot open file for mapping", path, errno);
    struct stat st = {};
    if (::fstat(fd, &st) != 0) {
        int err = errno;
        ::close(fd);
        raiseIo("cannot stat file for mapping", path, err);
    }
    size_ = static_cast<std::size_t>(st.st_size);
    if (size_ == 0) {
        // mmap(0) is undefined; an empty file is a valid (empty) view.
        ::close(fd);
        data_ = nullptr;
        return;
    }
    void *p = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
    int maperr = errno;
    ::close(fd); // the mapping holds its own reference
    if (p == MAP_FAILED)
        raiseIo("cannot mmap file", path, maperr);
    data_ = static_cast<const unsigned char *>(p);
    mapped_ = true;
#else
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        raiseIo("cannot open file", path, errno);
    std::fseek(f, 0, SEEK_END);
    long bytes = std::ftell(f);
    std::fseek(f, 0, SEEK_SET);
    fallback_.resize(bytes > 0 ? static_cast<std::size_t>(bytes) : 0);
    if (!fallback_.empty() &&
        std::fread(fallback_.data(), 1, fallback_.size(), f) !=
            fallback_.size()) {
        int err = errno;
        std::fclose(f);
        raiseIo("short read loading file", path, err);
    }
    std::fclose(f);
    data_ = fallback_.data();
    size_ = fallback_.size();
#endif
}

MappedFile::~MappedFile()
{
#if IPREF_HAVE_MMAP
    if (mapped_ && data_)
        ::munmap(const_cast<unsigned char *>(data_), size_);
#endif
}

FileFingerprint
fingerprintFile(const std::string &path)
{
    struct stat st = {};
    if (::stat(path.c_str(), &st) != 0)
        raiseIo("cannot stat file", path, errno);
    FileFingerprint fp;
    fp.sizeBytes = static_cast<std::uint64_t>(st.st_size);
#if defined(__APPLE__)
    fp.mtimeNs =
        static_cast<std::uint64_t>(st.st_mtimespec.tv_sec) *
            1'000'000'000ull +
        static_cast<std::uint64_t>(st.st_mtimespec.tv_nsec);
#elif defined(__unix__)
    fp.mtimeNs = static_cast<std::uint64_t>(st.st_mtim.tv_sec) *
                     1'000'000'000ull +
                 static_cast<std::uint64_t>(st.st_mtim.tv_nsec);
#else
    fp.mtimeNs = static_cast<std::uint64_t>(st.st_mtime) *
                 1'000'000'000ull;
#endif
    return fp;
}

} // namespace ipref
