/**
 * @file
 * Deterministic random number generation for the simulator.
 *
 * All randomness in the project flows through named Rng streams seeded
 * from the experiment configuration, so a given configuration always
 * produces a bit-identical simulation. We use SplitMix64 for seeding
 * and xoshiro256** as the main generator (fast, high quality, and
 * trivially reproducible across platforms, unlike std::mt19937
 * distributions whose outputs are implementation-defined).
 */

#ifndef IPREF_UTIL_RNG_HH
#define IPREF_UTIL_RNG_HH

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

#include "util/logging.hh"

namespace ipref
{

/** SplitMix64 step; used for seed expansion and hashing. */
constexpr std::uint64_t
splitMix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/** Stable 64-bit hash of a string (FNV-1a), for named seed streams. */
constexpr std::uint64_t
hashString(std::string_view s)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

/**
 * xoshiro256** generator with convenience distributions.
 *
 * Distributions are implemented by hand (not via <random>) so that
 * results are identical on every standard library implementation.
 */
class Rng
{
  public:
    /** Construct from a root seed; use fork() for derived streams. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
    {
        std::uint64_t sm = seed;
        for (auto &w : state_)
            w = splitMix64(sm);
    }

    /** Derive an independent stream named @p tag from this one. */
    Rng
    fork(std::string_view tag) const
    {
        std::uint64_t mix = state_[0] ^ (state_[1] << 1) ^ hashString(tag);
        return Rng(mix);
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound); @p bound must be non-zero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        ipref_assert(bound != 0);
        // Lemire-style rejection-free-ish mapping; bias is negligible
        // for the bounds used here, but we use 128-bit multiply to be
        // exact in distribution shape across platforms.
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        ipref_assert(hi >= lo);
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with probability @p p of returning true. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

    /** Geometric draw: number of failures before first success. */
    std::uint64_t
    geometric(double p)
    {
        ipref_assert(p > 0.0 && p <= 1.0);
        if (p >= 1.0)
            return 0;
        std::uint64_t n = 0;
        while (!chance(p) && n < 1u << 20)
            ++n;
        return n;
    }

  private:
    static constexpr std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::array<std::uint64_t, 4> state_;
};

/**
 * Precomputed Zipf(alpha) sampler over {0, ..., n-1}.
 *
 * Uses an inverse-CDF table with binary search; construction is
 * O(n), sampling is O(log n). Rank 0 is the most popular item.
 */
class ZipfSampler
{
  public:
    /** Build a sampler over @p n items with exponent @p alpha. */
    ZipfSampler(std::size_t n, double alpha);

    /** Draw a rank in [0, n). */
    std::size_t sample(Rng &rng) const;

    /** Number of items. */
    std::size_t size() const { return cdf_.size(); }

  private:
    std::vector<double> cdf_;
};

} // namespace ipref

#endif // IPREF_UTIL_RNG_HH
