/**
 * @file
 * Live telemetry: a process-wide registry of lock-free instruments
 * (Counter, Gauge, LatencyHistogram), a background sampler that
 * snapshots the registry on a wall-clock interval, and pluggable
 * exporters (JSON-lines time series, Prometheus text exposition with
 * an optional localhost TCP endpoint, an in-process snapshot ring).
 *
 * Unlike util/stats.hh — per-run StatGroup trees dumped after a run
 * completes — these instruments are process-wide and readable *while*
 * a campaign executes, so `ipref_top` can watch a `runBatch --jobs N`
 * sweep live. Instruments are updated with relaxed atomics (no locks
 * on the hot side) and the whole layer compiles down to no-ops when
 * IPREF_METRICS is defined to 0; the snapshot/serialization types
 * stay available either way so tooling builds unconditionally.
 *
 * Naming follows Prometheus conventions: `ipref_<subsystem>_<what>`
 * with a `_total` suffix on counters.
 */

#ifndef IPREF_UTIL_METRICS_HH
#define IPREF_UTIL_METRICS_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#ifndef IPREF_METRICS
#define IPREF_METRICS 1
#endif

namespace ipref::metrics
{

/** True when the instrument layer is compiled in. */
#if IPREF_METRICS
inline constexpr bool kCompiled = true;
#else
inline constexpr bool kCompiled = false;
#endif

// --- snapshots (always compiled; tooling depends on them) -------------

/** Instrument taxonomy. */
enum class Kind : std::uint8_t { Counter, Gauge, Histogram };

/** One histogram's state at snapshot time. */
struct HistogramSample
{
    std::string name;
    std::vector<double> bounds;         //!< bucket upper bounds, ascending
    std::vector<std::uint64_t> counts;  //!< bounds.size() + 1 (+Inf last)
    std::uint64_t count = 0;            //!< total observations
    double sum = 0.0;                   //!< sum of observed values

    bool operator==(const HistogramSample &) const = default;
};

/**
 * A point-in-time view of every registered instrument, ordered by
 * name within each section (deterministic rendering).
 */
struct Snapshot
{
    std::uint64_t seq = 0;    //!< sampler sequence number
    std::uint64_t unixMs = 0; //!< wall-clock timestamp (ms since epoch)
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, std::int64_t>> gauges;
    std::vector<HistogramSample> histograms;

    /** Value of counter @p name, or nullptr when absent. */
    const std::uint64_t *counter(const std::string &name) const;

    /** Value of gauge @p name, or nullptr when absent. */
    const std::int64_t *gauge(const std::string &name) const;

    bool operator==(const Snapshot &) const = default;
};

/** Serialize @p s as one JSON-lines record (no trailing newline). */
std::string snapshotToJsonLine(const Snapshot &s);

/**
 * Parse one JSON-lines record produced by snapshotToJsonLine. Throws
 * std::runtime_error on malformed input. Exact round trip:
 * parseSnapshotLine(snapshotToJsonLine(s)) == s for integral values
 * within the double-exact range.
 */
Snapshot parseSnapshotLine(const std::string &line);

/** Render @p s in the Prometheus text exposition format. */
std::string renderPrometheus(const Snapshot &s);

/**
 * Parse a Prometheus text exposition produced by renderPrometheus
 * back into a Snapshot (counters/gauges only; histogram series are
 * reconstructed from their _bucket/_sum/_count samples). Used by
 * `ipref_top --prom` and the golden-format tests.
 */
Snapshot parsePrometheus(const std::string &text);

// --- instruments ------------------------------------------------------

#if IPREF_METRICS

/** Monotonic counter; relaxed atomic add, safe from any thread. */
class Counter
{
  public:
    void
    add(std::uint64_t n = 1)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }

    std::uint64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    /** Own cache line: hot counters never false-share. */
    alignas(64) std::atomic<std::uint64_t> value_{0};
};

/** Up/down instantaneous value (queue depths, in-flight counts). */
class Gauge
{
  public:
    void
    add(std::int64_t n = 1)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }

    void sub(std::int64_t n = 1) { add(-n); }
    void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }

    std::int64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    void reset() { set(0); }

  private:
    alignas(64) std::atomic<std::int64_t> value_{0};
};

/**
 * Fixed-bucket latency histogram: bucket upper bounds are set at
 * registration and never change, so observation is a linear scan over
 * a handful of bounds plus two relaxed atomic adds. Cumulative
 * rendering (Prometheus `le` semantics) happens at snapshot time.
 */
class LatencyHistogram
{
  public:
    explicit LatencyHistogram(std::vector<double> bounds);

    /** Record one observation (any unit; pick one per instrument). */
    void observe(double v);

    const std::vector<double> &bounds() const { return bounds_; }

    /** Snapshot helper (per-bucket counts, non-cumulative). */
    HistogramSample sample() const;

    void reset();

  private:
    std::vector<double> bounds_;
    std::vector<std::atomic<std::uint64_t>> counts_; //!< bounds+1
    std::atomic<std::uint64_t> count_{0};
    std::atomic<std::uint64_t> sumBits_{0}; //!< double, CAS-updated
};

#else // !IPREF_METRICS — no-op stand-ins, identical call surface

class Counter
{
  public:
    void add(std::uint64_t = 1) {}
    std::uint64_t value() const { return 0; }
    void reset() {}
};

class Gauge
{
  public:
    void add(std::int64_t = 1) {}
    void sub(std::int64_t = 1) {}
    void set(std::int64_t) {}
    std::int64_t value() const { return 0; }
    void reset() {}
};

class LatencyHistogram
{
  public:
    explicit LatencyHistogram(std::vector<double>) {}
    void observe(double) {}

    const std::vector<double> &
    bounds() const
    {
        static const std::vector<double> none;
        return none;
    }

    HistogramSample sample() const { return {}; }
    void reset() {}
};

#endif // IPREF_METRICS

/** Default wall-time bucket ladder in milliseconds (1ms .. 5min). */
std::vector<double> defaultMsBounds();

/**
 * The process-wide instrument registry. Registration deduplicates by
 * name — asking for the same name (with the same kind) returns the
 * same instrument, so call sites can hold `static` references without
 * coordinating. Returned references stay valid for the process
 * lifetime. All methods are thread-safe.
 */
class Registry
{
  public:
    /** The process-wide instance. */
    static Registry &instance();

    /** Register (or look up) a counter. */
    Counter &counter(const std::string &name,
                     const std::string &help = "");

    /** Register (or look up) a gauge. */
    Gauge &gauge(const std::string &name, const std::string &help = "");

    /**
     * Register (or look up) a histogram. @p bounds applies on first
     * registration only; later lookups ignore it.
     */
    LatencyHistogram &histogram(const std::string &name,
                                std::vector<double> bounds,
                                const std::string &help = "");

    /** Point-in-time view of every instrument (name-ordered). */
    Snapshot snapshot() const;

    /** Zero every instrument (tests; not atomic across instruments). */
    void resetAll();

  private:
    Registry() = default;

    struct Impl;
    Impl *impl() const;
};

/** Shorthand for Registry::instance(). */
Registry &registry();

// --- exporters --------------------------------------------------------

/** Where sampled snapshots go. Implementations must be thread-safe. */
class Exporter
{
  public:
    virtual ~Exporter() = default;

    /** Consume one snapshot (called from the sampler thread). */
    virtual void consume(const Snapshot &s) = 0;

    /** Push buffered output to its destination; idempotent. */
    virtual void flush() {}
};

/**
 * Appends one JSON-lines record per snapshot to @p path (truncated at
 * construction) and flushes after every record, so `ipref_top` and
 * `tail -f` see snapshots as they land.
 */
class JsonLinesExporter final : public Exporter
{
  public:
    explicit JsonLinesExporter(std::string path);
    ~JsonLinesExporter() override;

    void consume(const Snapshot &s) override;
    void flush() override;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/**
 * Rewrites @p path atomically (temp + rename) with the latest
 * Prometheus text exposition on every snapshot, and — when @p port is
 * non-zero — serves the same text over a localhost TCP listener to
 * any client that connects (minimal HTTP/1.0 response, one exposition
 * per connection; `curl localhost:PORT/metrics` works). Either the
 * file (empty path = none) or the endpoint can be used alone.
 */
class PrometheusExporter final : public Exporter
{
  public:
    explicit PrometheusExporter(std::string path, unsigned port = 0);
    ~PrometheusExporter() override;

    void consume(const Snapshot &s) override;

    /** The port actually bound (0 = no endpoint; useful with port
     *  auto-assignment in tests). */
    unsigned boundPort() const;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/** Keeps the most recent @p capacity snapshots in memory. */
class SnapshotRing final : public Exporter
{
  public:
    explicit SnapshotRing(std::size_t capacity);
    ~SnapshotRing() override;

    void consume(const Snapshot &s) override;

    /** Buffered snapshots, oldest first. */
    std::vector<Snapshot> recent() const;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

// --- sampler ----------------------------------------------------------

/**
 * Background thread snapshotting the registry every @p intervalMs and
 * fanning each snapshot out to the attached exporters. stop() (and
 * destruction) takes one final snapshot before joining, so the last
 * exported record always reflects final instrument totals — interval
 * deltas summed over the stream reconcile exactly with the registry.
 */
class Sampler
{
  public:
    explicit Sampler(std::uint64_t intervalMs);
    ~Sampler();

    Sampler(const Sampler &) = delete;
    Sampler &operator=(const Sampler &) = delete;

    /** Attach an exporter (before start()). */
    void addExporter(std::shared_ptr<Exporter> exporter);

    /** Start the sampling thread (idempotent). */
    void start();

    /** Final snapshot, flush exporters, join (idempotent). */
    void stop();

    /** Snapshot + export immediately (any thread; also pre-start). */
    void sampleNow();

    std::uint64_t intervalMs() const;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

// --- process-wide wiring ---------------------------------------------

/** CLI-facing sampler configuration (see bench_common.hh flags). */
struct MetricsOptions
{
    /** Sampling period; 0 disables the sampler entirely. */
    std::uint64_t intervalMs = 0;

    /** JSON-lines time-series destination (empty = off). */
    std::string jsonlPath;

    /** Prometheus exposition file (empty = off). */
    std::string promPath;

    /** Localhost TCP port for the exposition endpoint (0 = off). */
    unsigned promPort = 0;

    /** In-process ring capacity (0 = no ring). */
    std::size_t ringCapacity = 0;

    bool
    anySink() const
    {
        return !jsonlPath.empty() || !promPath.empty() ||
               promPort != 0 || ringCapacity != 0;
    }
};

/**
 * Install the process-wide sampler described by @p opts, replacing
 * (and stopping) any previous one. With intervalMs == 0 or no sinks
 * the sampler is simply torn down. Registered atexit: the active
 * sampler is stopped — final snapshot included — at process exit.
 */
void configureMetrics(const MetricsOptions &opts);

/** The active process-wide sampler (nullptr when not configured). */
Sampler *globalSampler();

/** Stop and drop the process-wide sampler (final snapshot + flush). */
void shutdownMetrics();

} // namespace ipref::metrics

#endif // IPREF_UTIL_METRICS_HH
