#include "util/rng.hh"

#include <algorithm>
#include <cmath>

namespace ipref
{

ZipfSampler::ZipfSampler(std::size_t n, double alpha)
{
    ipref_assert(n > 0);
    cdf_.resize(n);
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        sum += 1.0 / std::pow(static_cast<double>(i + 1), alpha);
        cdf_[i] = sum;
    }
    for (auto &v : cdf_)
        v /= sum;
    cdf_.back() = 1.0;
}

std::size_t
ZipfSampler::sample(Rng &rng) const
{
    double u = rng.uniform();
    auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    if (it == cdf_.end())
        --it;
    return static_cast<std::size_t>(it - cdf_.begin());
}

} // namespace ipref
