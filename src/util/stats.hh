/**
 * @file
 * Statistics package: named scalar counters, derived formulas and
 * latency histograms collected into groups, with aligned text and
 * machine-readable JSON dump support plus recursive reset (warm-up /
 * measurement delta collection).
 *
 * Modeled (loosely) on gem5's stats: a component owns a StatGroup,
 * registers counters at construction, and the simulation driver dumps
 * everything at the end of a run.
 */

#ifndef IPREF_UTIL_STATS_HH
#define IPREF_UTIL_STATS_HH

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "util/histogram.hh"

namespace ipref
{

/** A single monotonically increasing counter. */
class Counter
{
  public:
    Counter() = default;

    void operator++() { ++value_; }
    void operator++(int) { ++value_; }
    void operator+=(std::uint64_t n) { value_ += n; }

    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/**
 * A named collection of counters, derived values and histograms.
 *
 * Groups can nest; dump() prints "prefix.name value" lines and
 * dumpJson() emits one nested JSON object for the whole tree.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    /** Register a counter under @p name; the counter must outlive us. */
    void
    addCounter(std::string name, Counter *c, std::string desc = "")
    {
        counters_.push_back({std::move(name), c, std::move(desc)});
    }

    /** Register a derived value computed at dump time. */
    void
    addFormula(std::string name, std::function<double()> fn,
               std::string desc = "")
    {
        formulas_.push_back({std::move(name), std::move(fn),
                             std::move(desc)});
    }

    /** Register a histogram; dumped as count/mean/max/p50/p90. */
    void
    addHistogram(std::string name, Log2Histogram *h,
                 std::string desc = "")
    {
        histograms_.push_back({std::move(name), h, std::move(desc)});
    }

    /** Attach a child group (not owned). */
    void addChild(StatGroup *child) { children_.push_back(child); }

    /** Print all stats as aligned "prefix.name  value  # desc" lines. */
    void dump(std::ostream &os, const std::string &prefix = "") const;

    /**
     * Emit the group as one JSON object:
     *   {"stats": {name: value, ...}, "children": {name: {...}}}
     * Histograms render as {"count","sum","mean","max","p50","p90"}.
     */
    void dumpJson(std::ostream &os, int indent = 0) const;

    /** Recursively reset every registered counter and histogram. */
    void resetAll();

    const std::string &name() const { return name_; }

  private:
    struct NamedCounter
    {
        std::string name;
        Counter *counter;
        std::string desc;
    };
    struct NamedFormula
    {
        std::string name;
        std::function<double()> fn;
        std::string desc;
    };
    struct NamedHistogram
    {
        std::string name;
        Log2Histogram *hist;
        std::string desc;
    };

    std::string name_;
    std::vector<NamedCounter> counters_;
    std::vector<NamedFormula> formulas_;
    std::vector<NamedHistogram> histograms_;
    std::vector<StatGroup *> children_;
};

} // namespace ipref

#endif // IPREF_UTIL_STATS_HH
