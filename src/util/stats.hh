/**
 * @file
 * Minimal statistics package: named scalar counters and derived
 * formulas collected into groups, with text dump support.
 *
 * Modeled (loosely) on gem5's stats: a component owns a StatGroup,
 * registers counters at construction, and the simulation driver dumps
 * everything at the end of a run.
 */

#ifndef IPREF_UTIL_STATS_HH
#define IPREF_UTIL_STATS_HH

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

namespace ipref
{

/** A single monotonically increasing counter. */
class Counter
{
  public:
    Counter() = default;

    void operator++() { ++value_; }
    void operator++(int) { ++value_; }
    void operator+=(std::uint64_t n) { value_ += n; }

    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/**
 * A named collection of counters and derived values.
 *
 * Groups can nest; dump() prints "prefix.name value" lines.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    /** Register a counter under @p name; the counter must outlive us. */
    void
    addCounter(std::string name, const Counter *c, std::string desc = "")
    {
        counters_.push_back({std::move(name), c, std::move(desc)});
    }

    /** Register a derived value computed at dump time. */
    void
    addFormula(std::string name, std::function<double()> fn,
               std::string desc = "")
    {
        formulas_.push_back({std::move(name), std::move(fn),
                             std::move(desc)});
    }

    /** Attach a child group (not owned). */
    void addChild(const StatGroup *child) { children_.push_back(child); }

    /** Print all stats as "prefix.name  value  # desc" lines. */
    void dump(std::ostream &os, const std::string &prefix = "") const;

    const std::string &name() const { return name_; }

  private:
    struct NamedCounter
    {
        std::string name;
        const Counter *counter;
        std::string desc;
    };
    struct NamedFormula
    {
        std::string name;
        std::function<double()> fn;
        std::string desc;
    };

    std::string name_;
    std::vector<NamedCounter> counters_;
    std::vector<NamedFormula> formulas_;
    std::vector<const StatGroup *> children_;
};

} // namespace ipref

#endif // IPREF_UTIL_STATS_HH
