#include "util/table.hh"

#include <algorithm>
#include <cstdio>

#include "util/logging.hh"

namespace ipref
{

void
Table::header(std::vector<std::string> cells)
{
    header_ = std::move(cells);
}

void
Table::row(std::vector<std::string> cells)
{
    ipref_assert(header_.empty() || cells.size() == header_.size());
    rows_.push_back(std::move(cells));
}

std::string
Table::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
Table::pct(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision, v * 100.0);
    return buf;
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(header_.size(), 0);
    auto widen = [&](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < cells.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    widen(header_);
    for (const auto &r : rows_)
        widen(r);

    if (!title_.empty())
        os << "== " << title_ << " ==\n";

    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            os << cells[i];
            if (i + 1 < cells.size())
                os << std::string(widths[i] - cells[i].size() + 2, ' ');
        }
        os << "\n";
    };
    emit(header_);
    std::size_t total = 0;
    for (auto w : widths)
        total += w + 2;
    os << std::string(total > 2 ? total - 2 : total, '-') << "\n";
    for (const auto &r : rows_)
        emit(r);
}

void
Table::printCsv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            os << cells[i];
            if (i + 1 < cells.size())
                os << ",";
        }
        os << "\n";
    };
    emit(header_);
    for (const auto &r : rows_)
        emit(r);
}

} // namespace ipref
