/**
 * @file
 * gem5-style status/error reporting: panic, fatal, warn, inform.
 *
 * panic() is for internal invariant violations (simulator bugs) and
 * aborts; fatal() is for user-induced unrecoverable conditions (bad
 * configuration) and exits cleanly with an error code.
 */

#ifndef IPREF_UTIL_LOGGING_HH
#define IPREF_UTIL_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace ipref
{

/** Verbosity control for inform(); warnings are always printed. */
enum class LogLevel { Quiet, Normal, Verbose };

/** Get/set the process-wide log level (defaults to Normal). */
LogLevel logLevel();
void setLogLevel(LogLevel level);

namespace detail
{
[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);
std::string formatMessage(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));
} // namespace detail

/** Abort with a message: something that should never happen did. */
#define ipref_panic(...)                                                      \
    ::ipref::detail::panicImpl(__FILE__, __LINE__,                            \
        ::ipref::detail::formatMessage(__VA_ARGS__))

/** Exit with a message: the user asked for something unsupportable. */
#define ipref_fatal(...)                                                      \
    ::ipref::detail::fatalImpl(__FILE__, __LINE__,                            \
        ::ipref::detail::formatMessage(__VA_ARGS__))

/** Print a warning (always shown). */
#define ipref_warn(...)                                                       \
    ::ipref::detail::warnImpl(::ipref::detail::formatMessage(__VA_ARGS__))

/** Print an informational message (suppressed when quiet). */
#define ipref_inform(...)                                                     \
    ::ipref::detail::informImpl(::ipref::detail::formatMessage(__VA_ARGS__))

/** Check an invariant; panics with the condition text on failure. */
#define ipref_assert(cond)                                                    \
    do {                                                                      \
        if (!(cond)) {                                                        \
            ipref_panic("assertion failed: %s", #cond);                       \
        }                                                                     \
    } while (0)

} // namespace ipref

#endif // IPREF_UTIL_LOGGING_HH
