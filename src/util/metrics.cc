#include "util/metrics.hh"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <deque>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <thread>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "util/json.hh"
#include "util/logging.hh"

namespace ipref::metrics
{

// --- snapshot accessors ----------------------------------------------

const std::uint64_t *
Snapshot::counter(const std::string &name) const
{
    for (const auto &[n, v] : counters)
        if (n == name)
            return &v;
    return nullptr;
}

const std::int64_t *
Snapshot::gauge(const std::string &name) const
{
    for (const auto &[n, v] : gauges)
        if (n == name)
            return &v;
    return nullptr;
}

std::vector<double>
defaultMsBounds()
{
    return {1,    2,    5,     10,    20,    50,     100,   200,
            500,  1000, 2000,  5000,  10000, 30000,  60000, 120000,
            300000};
}

// --- serialization (always compiled) ---------------------------------

std::string
snapshotToJsonLine(const Snapshot &s)
{
    std::ostringstream os;
    os << "{\"seq\": " << s.seq << ", \"unix_ms\": " << s.unixMs
       << ", \"counters\": {";
    for (std::size_t i = 0; i < s.counters.size(); ++i)
        os << (i ? ", " : "") << jsonString(s.counters[i].first)
           << ": " << s.counters[i].second;
    os << "}, \"gauges\": {";
    for (std::size_t i = 0; i < s.gauges.size(); ++i)
        os << (i ? ", " : "") << jsonString(s.gauges[i].first) << ": "
           << s.gauges[i].second;
    os << "}, \"histograms\": {";
    for (std::size_t i = 0; i < s.histograms.size(); ++i) {
        const HistogramSample &h = s.histograms[i];
        os << (i ? ", " : "") << jsonString(h.name)
           << ": {\"bounds\": [";
        for (std::size_t b = 0; b < h.bounds.size(); ++b)
            os << (b ? ", " : "") << jsonNumber(h.bounds[b]);
        os << "], \"counts\": [";
        for (std::size_t b = 0; b < h.counts.size(); ++b)
            os << (b ? ", " : "") << h.counts[b];
        os << "], \"count\": " << h.count
           << ", \"sum\": " << jsonNumber(h.sum) << "}";
    }
    os << "}}";
    return os.str();
}

Snapshot
parseSnapshotLine(const std::string &line)
{
    JsonValue doc = parseJson(line);
    if (doc.kind != JsonValue::Object)
        throw std::runtime_error("metrics: snapshot is not an object");
    Snapshot s;
    s.seq = static_cast<std::uint64_t>(doc.numberOr("seq", 0));
    s.unixMs = static_cast<std::uint64_t>(doc.numberOr("unix_ms", 0));
    if (doc.has("counters"))
        for (const auto &[name, v] : doc.at("counters").fields)
            s.counters.emplace_back(
                name, static_cast<std::uint64_t>(v.number));
    if (doc.has("gauges"))
        for (const auto &[name, v] : doc.at("gauges").fields)
            s.gauges.emplace_back(
                name, static_cast<std::int64_t>(v.number));
    if (doc.has("histograms")) {
        for (const auto &[name, v] : doc.at("histograms").fields) {
            HistogramSample h;
            h.name = name;
            if (v.has("bounds"))
                for (const JsonValue &b : v.at("bounds").items)
                    h.bounds.push_back(b.number);
            if (v.has("counts"))
                for (const JsonValue &c : v.at("counts").items)
                    h.counts.push_back(
                        static_cast<std::uint64_t>(c.number));
            h.count = static_cast<std::uint64_t>(v.numberOr("count", 0));
            h.sum = v.numberOr("sum", 0.0);
            s.histograms.push_back(std::move(h));
        }
    }
    return s;
}

namespace
{

/** Prometheus `le` label rendering for a bucket bound. */
std::string
leLabel(double bound)
{
    std::string n = jsonNumber(bound);
    return n;
}

} // namespace

std::string
renderPrometheus(const Snapshot &s)
{
    std::ostringstream os;
    for (const auto &[name, value] : s.counters) {
        os << "# TYPE " << name << " counter\n"
           << name << " " << value << "\n";
    }
    for (const auto &[name, value] : s.gauges) {
        os << "# TYPE " << name << " gauge\n"
           << name << " " << value << "\n";
    }
    for (const HistogramSample &h : s.histograms) {
        os << "# TYPE " << h.name << " histogram\n";
        std::uint64_t cum = 0;
        for (std::size_t b = 0; b < h.bounds.size(); ++b) {
            cum += b < h.counts.size() ? h.counts[b] : 0;
            os << h.name << "_bucket{le=\"" << leLabel(h.bounds[b])
               << "\"} " << cum << "\n";
        }
        os << h.name << "_bucket{le=\"+Inf\"} " << h.count << "\n"
           << h.name << "_sum " << jsonNumber(h.sum) << "\n"
           << h.name << "_count " << h.count << "\n";
    }
    return os.str();
}

Snapshot
parsePrometheus(const std::string &text)
{
    Snapshot s;
    std::map<std::string, std::string> types; //!< name -> type token
    std::map<std::string, HistogramSample> hists;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        if (line[0] == '#') {
            // "# TYPE <name> <type>"
            std::istringstream ls(line);
            std::string hash, kw, name, type;
            ls >> hash >> kw >> name >> type;
            if (kw == "TYPE")
                types[name] = type;
            continue;
        }
        // "<name>[{le="B"}] <value>"
        std::size_t sp = line.rfind(' ');
        if (sp == std::string::npos)
            throw std::runtime_error("metrics: bad exposition line: " +
                                     line);
        std::string key = line.substr(0, sp);
        double value = std::strtod(line.c_str() + sp + 1, nullptr);

        std::string le;
        std::size_t brace = key.find('{');
        if (brace != std::string::npos) {
            std::size_t q1 = key.find('"', brace);
            std::size_t q2 = q1 == std::string::npos
                                 ? std::string::npos
                                 : key.find('"', q1 + 1);
            if (q2 == std::string::npos)
                throw std::runtime_error(
                    "metrics: bad label in exposition line: " + line);
            le = key.substr(q1 + 1, q2 - q1 - 1);
            key = key.substr(0, brace);
        }

        auto baseOf = [&](const std::string &suffix) {
            return key.size() > suffix.size() &&
                           key.compare(key.size() - suffix.size(),
                                       suffix.size(), suffix) == 0
                       ? key.substr(0, key.size() - suffix.size())
                       : std::string();
        };
        std::string bucketBase = baseOf("_bucket");
        std::string sumBase = baseOf("_sum");
        std::string countBase = baseOf("_count");

        if (!bucketBase.empty() &&
            types[bucketBase] == "histogram") {
            HistogramSample &h = hists[bucketBase];
            h.name = bucketBase;
            if (le != "+Inf") {
                h.bounds.push_back(std::strtod(le.c_str(), nullptr));
                h.counts.push_back(static_cast<std::uint64_t>(value));
            }
        } else if (!sumBase.empty() && types[sumBase] == "histogram") {
            hists[sumBase].sum = value;
        } else if (!countBase.empty() &&
                   types[countBase] == "histogram") {
            hists[countBase].count =
                static_cast<std::uint64_t>(value);
        } else if (types[key] == "gauge") {
            s.gauges.emplace_back(key,
                                  static_cast<std::int64_t>(value));
        } else {
            s.counters.emplace_back(key,
                                    static_cast<std::uint64_t>(value));
        }
    }
    for (auto &[name, h] : hists) {
        // De-cumulate the bucket series back to per-bucket counts and
        // append the +Inf bucket (count minus the last cumulative).
        std::uint64_t prev = 0;
        for (std::uint64_t &c : h.counts) {
            std::uint64_t cum = c;
            c = cum - prev;
            prev = cum;
        }
        h.counts.push_back(h.count - prev);
        s.histograms.push_back(h);
    }
    return s;
}

#if IPREF_METRICS

// --- LatencyHistogram -------------------------------------------------

namespace
{

double
bitsToDouble(std::uint64_t bits)
{
    double d;
    std::memcpy(&d, &bits, sizeof(d));
    return d;
}

std::uint64_t
doubleToBits(double d)
{
    std::uint64_t bits;
    std::memcpy(&bits, &d, sizeof(bits));
    return bits;
}

} // namespace

LatencyHistogram::LatencyHistogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1)
{
    // Ascending bounds are a registration-time contract; sorting here
    // beats asserting in a telemetry layer.
    std::sort(bounds_.begin(), bounds_.end());
}

void
LatencyHistogram::observe(double v)
{
    std::size_t b = 0;
    while (b < bounds_.size() && v > bounds_[b])
        ++b;
    counts_[b].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    std::uint64_t old = sumBits_.load(std::memory_order_relaxed);
    while (!sumBits_.compare_exchange_weak(
        old, doubleToBits(bitsToDouble(old) + v),
        std::memory_order_relaxed, std::memory_order_relaxed)) {
    }
}

HistogramSample
LatencyHistogram::sample() const
{
    HistogramSample h;
    h.bounds = bounds_;
    h.counts.reserve(counts_.size());
    for (const auto &c : counts_)
        h.counts.push_back(c.load(std::memory_order_relaxed));
    h.count = count_.load(std::memory_order_relaxed);
    h.sum = bitsToDouble(sumBits_.load(std::memory_order_relaxed));
    return h;
}

void
LatencyHistogram::reset()
{
    for (auto &c : counts_)
        c.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sumBits_.store(0, std::memory_order_relaxed);
}

// --- Registry ---------------------------------------------------------

struct Registry::Impl
{
    mutable std::mutex mu;
    /** Deques: stable addresses for the handed-out references. */
    std::deque<Counter> counters;
    std::deque<Gauge> gauges;
    std::deque<LatencyHistogram> histograms;

    struct Record
    {
        Kind kind;
        std::size_t index;
        std::string help;
    };
    std::map<std::string, Record> byName;
};

Registry::Impl *
Registry::impl() const
{
    // Leaked singleton: instruments are referenced from static call
    // sites and the sampler may run until process exit, so the
    // registry must never be destroyed (static-destruction order).
    static Impl *impl = new Impl;
    return impl;
}

Registry &
Registry::instance()
{
    static Registry r;
    return r;
}

Registry &
registry()
{
    return Registry::instance();
}

Counter &
Registry::counter(const std::string &name, const std::string &help)
{
    Impl *im = impl();
    std::lock_guard<std::mutex> lock(im->mu);
    auto it = im->byName.find(name);
    if (it != im->byName.end()) {
        if (it->second.kind != Kind::Counter)
            ipref_panic("metric '%s' re-registered with a different "
                        "kind", name.c_str());
        return im->counters[it->second.index];
    }
    im->counters.emplace_back();
    im->byName[name] = {Kind::Counter, im->counters.size() - 1, help};
    return im->counters.back();
}

Gauge &
Registry::gauge(const std::string &name, const std::string &help)
{
    Impl *im = impl();
    std::lock_guard<std::mutex> lock(im->mu);
    auto it = im->byName.find(name);
    if (it != im->byName.end()) {
        if (it->second.kind != Kind::Gauge)
            ipref_panic("metric '%s' re-registered with a different "
                        "kind", name.c_str());
        return im->gauges[it->second.index];
    }
    im->gauges.emplace_back();
    im->byName[name] = {Kind::Gauge, im->gauges.size() - 1, help};
    return im->gauges.back();
}

LatencyHistogram &
Registry::histogram(const std::string &name, std::vector<double> bounds,
                    const std::string &help)
{
    Impl *im = impl();
    std::lock_guard<std::mutex> lock(im->mu);
    auto it = im->byName.find(name);
    if (it != im->byName.end()) {
        if (it->second.kind != Kind::Histogram)
            ipref_panic("metric '%s' re-registered with a different "
                        "kind", name.c_str());
        return im->histograms[it->second.index];
    }
    im->histograms.emplace_back(std::move(bounds));
    im->byName[name] = {Kind::Histogram, im->histograms.size() - 1,
                        help};
    return im->histograms.back();
}

Snapshot
Registry::snapshot() const
{
    Impl *im = impl();
    Snapshot s;
    std::lock_guard<std::mutex> lock(im->mu);
    // byName is a std::map: iteration is already name-ordered, which
    // keeps every rendering deterministic.
    for (const auto &[name, rec] : im->byName) {
        switch (rec.kind) {
          case Kind::Counter:
            s.counters.emplace_back(
                name, im->counters[rec.index].value());
            break;
          case Kind::Gauge:
            s.gauges.emplace_back(name,
                                  im->gauges[rec.index].value());
            break;
          case Kind::Histogram: {
            HistogramSample h = im->histograms[rec.index].sample();
            h.name = name;
            s.histograms.push_back(std::move(h));
            break;
          }
        }
    }
    return s;
}

void
Registry::resetAll()
{
    Impl *im = impl();
    std::lock_guard<std::mutex> lock(im->mu);
    for (auto &c : im->counters)
        c.reset();
    for (auto &g : im->gauges)
        g.reset();
    for (auto &h : im->histograms)
        h.reset();
}

#else // !IPREF_METRICS

struct Registry::Impl
{};

Registry::Impl *
Registry::impl() const
{
    return nullptr;
}

Registry &
Registry::instance()
{
    static Registry r;
    return r;
}

Registry &
registry()
{
    return Registry::instance();
}

Counter &
Registry::counter(const std::string &, const std::string &)
{
    static Counter c;
    return c;
}

Gauge &
Registry::gauge(const std::string &, const std::string &)
{
    static Gauge g;
    return g;
}

LatencyHistogram &
Registry::histogram(const std::string &, std::vector<double>,
                    const std::string &)
{
    static LatencyHistogram h{{}};
    return h;
}

Snapshot
Registry::snapshot() const
{
    return {};
}

void
Registry::resetAll()
{}

#endif // IPREF_METRICS

// --- exporters --------------------------------------------------------

struct JsonLinesExporter::Impl
{
    std::mutex mu;
    std::string path;
    std::ofstream out;
};

JsonLinesExporter::JsonLinesExporter(std::string path)
    : impl_(std::make_unique<Impl>())
{
    impl_->path = std::move(path);
    impl_->out.open(impl_->path, std::ios::trunc);
    if (!impl_->out)
        ipref_warn("metrics: cannot open '%s' for writing",
                   impl_->path.c_str());
}

JsonLinesExporter::~JsonLinesExporter() = default;

void
JsonLinesExporter::consume(const Snapshot &s)
{
    std::lock_guard<std::mutex> lock(impl_->mu);
    if (!impl_->out)
        return;
    impl_->out << snapshotToJsonLine(s) << "\n";
    // Per-record flush: the stream is tailed live by ipref_top.
    impl_->out.flush();
}

void
JsonLinesExporter::flush()
{
    std::lock_guard<std::mutex> lock(impl_->mu);
    if (impl_->out)
        impl_->out.flush();
}

struct PrometheusExporter::Impl
{
    std::mutex mu;
    std::string path;
    std::string latest; //!< most recent rendered exposition
    int listenFd = -1;
    unsigned port = 0;
    std::thread server;

    void
    serveLoop()
    {
        for (;;) {
            int fd = ::accept(listenFd, nullptr, nullptr);
            if (fd < 0)
                return; // listener closed: shutting down
            std::string body;
            {
                std::lock_guard<std::mutex> lock(mu);
                body = latest;
            }
            std::ostringstream resp;
            resp << "HTTP/1.0 200 OK\r\n"
                 << "Content-Type: text/plain; version=0.0.4\r\n"
                 << "Content-Length: " << body.size() << "\r\n"
                 << "Connection: close\r\n\r\n"
                 << body;
            std::string text = resp.str();
            std::size_t off = 0;
            while (off < text.size()) {
                ssize_t n = ::send(fd, text.data() + off,
                                   text.size() - off, MSG_NOSIGNAL);
                if (n <= 0)
                    break;
                off += static_cast<std::size_t>(n);
            }
            ::close(fd);
        }
    }
};

PrometheusExporter::PrometheusExporter(std::string path, unsigned port)
    : impl_(std::make_unique<Impl>())
{
    impl_->path = std::move(path);
    if (port == 0 && impl_->path.empty())
        return;
    if (port == 0)
        return;

    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        ipref_warn("metrics: socket() failed; exposition endpoint "
                   "disabled");
        return;
    }
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(fd, 8) != 0) {
        ipref_warn("metrics: cannot bind localhost:%u; exposition "
                   "endpoint disabled", port);
        ::close(fd);
        return;
    }
    socklen_t len = sizeof(addr);
    ::getsockname(fd, reinterpret_cast<sockaddr *>(&addr), &len);
    impl_->listenFd = fd;
    impl_->port = ntohs(addr.sin_port);
    impl_->server = std::thread([this] { impl_->serveLoop(); });
}

PrometheusExporter::~PrometheusExporter()
{
    if (impl_->listenFd >= 0) {
        ::shutdown(impl_->listenFd, SHUT_RDWR);
        ::close(impl_->listenFd);
        impl_->server.join();
    }
}

unsigned
PrometheusExporter::boundPort() const
{
    return impl_->port;
}

void
PrometheusExporter::consume(const Snapshot &s)
{
    std::string text = renderPrometheus(s);
    {
        std::lock_guard<std::mutex> lock(impl_->mu);
        impl_->latest = text;
    }
    if (impl_->path.empty())
        return;
    // Atomic rewrite: readers never observe a torn exposition.
    std::string tmp = impl_->path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::trunc);
        if (!out) {
            ipref_warn("metrics: cannot write '%s'", tmp.c_str());
            return;
        }
        out << text;
    }
    if (std::rename(tmp.c_str(), impl_->path.c_str()) != 0)
        ipref_warn("metrics: cannot rename '%s' into place",
                   tmp.c_str());
}

struct SnapshotRing::Impl
{
    mutable std::mutex mu;
    std::size_t capacity;
    std::deque<Snapshot> ring;
};

SnapshotRing::SnapshotRing(std::size_t capacity)
    : impl_(std::make_unique<Impl>())
{
    impl_->capacity = capacity == 0 ? 1 : capacity;
}

SnapshotRing::~SnapshotRing() = default;

void
SnapshotRing::consume(const Snapshot &s)
{
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->ring.push_back(s);
    while (impl_->ring.size() > impl_->capacity)
        impl_->ring.pop_front();
}

std::vector<Snapshot>
SnapshotRing::recent() const
{
    std::lock_guard<std::mutex> lock(impl_->mu);
    return {impl_->ring.begin(), impl_->ring.end()};
}

// --- sampler ----------------------------------------------------------

struct Sampler::Impl
{
    std::uint64_t intervalMs;
    std::vector<std::shared_ptr<Exporter>> exporters;

    std::mutex mu;
    std::condition_variable cv;
    std::thread thread;
    bool running = false;
    bool stopRequested = false;
    std::uint64_t seq = 0;

    /** Serializes exports from the thread and sampleNow() callers. */
    std::mutex exportMu;

    void
    exportOne()
    {
        Snapshot s = Registry::instance().snapshot();
        std::lock_guard<std::mutex> lock(exportMu);
        s.seq = seq++;
        s.unixMs = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::system_clock::now().time_since_epoch())
                .count());
        for (const auto &e : exporters)
            e->consume(s);
    }

    void
    loop()
    {
        std::unique_lock<std::mutex> lock(mu);
        while (!stopRequested) {
            cv.wait_for(lock, std::chrono::milliseconds(intervalMs));
            if (stopRequested)
                break;
            lock.unlock();
            exportOne();
            lock.lock();
        }
    }
};

Sampler::Sampler(std::uint64_t intervalMs)
    : impl_(std::make_unique<Impl>())
{
    impl_->intervalMs = intervalMs == 0 ? 1000 : intervalMs;
}

Sampler::~Sampler()
{
    stop();
}

void
Sampler::addExporter(std::shared_ptr<Exporter> exporter)
{
    if (exporter)
        impl_->exporters.push_back(std::move(exporter));
}

void
Sampler::start()
{
    std::lock_guard<std::mutex> lock(impl_->mu);
    if (impl_->running)
        return;
    impl_->running = true;
    impl_->stopRequested = false;
    impl_->thread = std::thread([this] { impl_->loop(); });
}

void
Sampler::stop()
{
    {
        std::lock_guard<std::mutex> lock(impl_->mu);
        if (!impl_->running) {
            return;
        }
        impl_->stopRequested = true;
    }
    impl_->cv.notify_all();
    impl_->thread.join();
    impl_->running = false;
    // Final snapshot: the stream's last record carries the final
    // instrument totals, so interval deltas reconcile exactly.
    impl_->exportOne();
    for (const auto &e : impl_->exporters)
        e->flush();
}

void
Sampler::sampleNow()
{
    impl_->exportOne();
}

std::uint64_t
Sampler::intervalMs() const
{
    return impl_->intervalMs;
}

// --- process-wide wiring ---------------------------------------------

namespace
{

std::mutex g_samplerMu;
std::unique_ptr<Sampler> g_sampler;
bool g_atexitRegistered = false;

} // namespace

void
shutdownMetrics()
{
    std::unique_ptr<Sampler> doomed;
    {
        std::lock_guard<std::mutex> lock(g_samplerMu);
        doomed = std::move(g_sampler);
    }
    if (doomed)
        doomed->stop();
}

void
configureMetrics(const MetricsOptions &opts)
{
    std::unique_ptr<Sampler> previous;
    {
        std::lock_guard<std::mutex> lock(g_samplerMu);
        previous = std::move(g_sampler);
    }
    if (previous)
        previous->stop();
    previous.reset();

    if (opts.intervalMs == 0 || !opts.anySink())
        return;

    auto sampler = std::make_unique<Sampler>(opts.intervalMs);
    if (!opts.jsonlPath.empty())
        sampler->addExporter(
            std::make_shared<JsonLinesExporter>(opts.jsonlPath));
    if (!opts.promPath.empty() || opts.promPort != 0)
        sampler->addExporter(std::make_shared<PrometheusExporter>(
            opts.promPath, opts.promPort));
    if (opts.ringCapacity != 0)
        sampler->addExporter(
            std::make_shared<SnapshotRing>(opts.ringCapacity));
    sampler->start();

    std::lock_guard<std::mutex> lock(g_samplerMu);
    g_sampler = std::move(sampler);
    if (!g_atexitRegistered) {
        std::atexit(shutdownMetrics);
        g_atexitRegistered = true;
    }
}

Sampler *
globalSampler()
{
    std::lock_guard<std::mutex> lock(g_samplerMu);
    return g_sampler.get();
}

} // namespace ipref::metrics
