#include "util/stats.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/json.hh"

namespace ipref
{

namespace
{

/** Descriptions may contain newlines; keep each stat on one line. */
std::string
sanitizeDesc(const std::string &desc)
{
    std::string out;
    out.reserve(desc.size());
    for (char c : desc) {
        if (c == '\n' || c == '\r')
            out += ' ';
        else
            out += c;
    }
    return out;
}

void
emitLine(std::ostream &os, const std::string &name,
         const std::string &value, const std::string &desc,
         std::size_t nameWidth)
{
    os << std::left << std::setw(static_cast<int>(nameWidth)) << name
       << " " << value;
    if (!desc.empty())
        os << "  # " << sanitizeDesc(desc);
    os << "\n";
}

} // namespace

void
StatGroup::dump(std::ostream &os, const std::string &prefix) const
{
    std::string full = prefix.empty() ? name_ : prefix + "." + name_;

    // Align values within the group: pad names to the widest.
    std::size_t width = 0;
    for (const auto &c : counters_)
        width = std::max(width, full.size() + 1 + c.name.size());
    for (const auto &f : formulas_)
        width = std::max(width, full.size() + 1 + f.name.size());
    for (const auto &h : histograms_)
        width = std::max(width,
                         full.size() + 1 + h.name.size() + 5);

    for (const auto &c : counters_)
        emitLine(os, full + "." + c.name,
                 std::to_string(c.counter->value()), c.desc, width);
    for (const auto &f : formulas_) {
        std::ostringstream val;
        val << std::setprecision(6) << f.fn();
        emitLine(os, full + "." + f.name, val.str(), f.desc, width);
    }
    for (const auto &h : histograms_) {
        const Log2Histogram &hist = *h.hist;
        std::string base = full + "." + h.name;
        emitLine(os, base + ".count",
                 std::to_string(hist.count()), h.desc, width);
        std::ostringstream mean;
        mean << std::setprecision(6) << hist.mean();
        emitLine(os, base + ".mean", mean.str(), "", width);
        emitLine(os, base + ".max", std::to_string(hist.max()), "",
                 width);
        emitLine(os, base + ".p50",
                 std::to_string(hist.quantile(0.5)), "", width);
        emitLine(os, base + ".p90",
                 std::to_string(hist.quantile(0.9)), "", width);
    }
    for (const auto *child : children_)
        child->dump(os, full);
}

void
StatGroup::dumpJson(std::ostream &os, int indent) const
{
    std::string pad(static_cast<std::size_t>(indent), ' ');
    std::string pad2(static_cast<std::size_t>(indent) + 2, ' ');
    std::string pad4(static_cast<std::size_t>(indent) + 4, ' ');

    os << "{\n" << pad2 << "\"stats\": {";
    bool first = true;
    for (const auto &c : counters_) {
        os << (first ? "\n" : ",\n") << pad4
           << jsonString(c.name) << ": " << c.counter->value();
        first = false;
    }
    for (const auto &f : formulas_) {
        os << (first ? "\n" : ",\n") << pad4
           << jsonString(f.name) << ": " << jsonNumber(f.fn());
        first = false;
    }
    for (const auto &h : histograms_) {
        const Log2Histogram &hist = *h.hist;
        os << (first ? "\n" : ",\n") << pad4
           << jsonString(h.name) << ": {\"count\": " << hist.count()
           << ", \"sum\": " << hist.sum()
           << ", \"mean\": " << jsonNumber(hist.mean())
           << ", \"max\": " << hist.max()
           << ", \"p50\": " << hist.p50()
           << ", \"p90\": " << hist.quantile(0.9)
           << ", \"p95\": " << hist.p95()
           << ", \"p99\": " << hist.p99() << "}";
        first = false;
    }
    if (!first)
        os << "\n" << pad2;
    os << "}";

    if (!children_.empty()) {
        os << ",\n" << pad2 << "\"children\": {";
        bool firstChild = true;
        for (const auto *child : children_) {
            os << (firstChild ? "\n" : ",\n") << pad4
               << jsonString(child->name()) << ": ";
            child->dumpJson(os, indent + 4);
            firstChild = false;
        }
        os << "\n" << pad2 << "}";
    }
    os << "\n" << pad << "}";
}

void
StatGroup::resetAll()
{
    for (auto &c : counters_)
        c.counter->reset();
    for (auto &h : histograms_)
        h.hist->reset();
    for (auto *child : children_)
        child->resetAll();
}

} // namespace ipref
