#include "util/stats.hh"

#include <iomanip>

namespace ipref
{

void
StatGroup::dump(std::ostream &os, const std::string &prefix) const
{
    std::string full = prefix.empty() ? name_ : prefix + "." + name_;
    for (const auto &c : counters_) {
        os << full << "." << c.name << " " << c.counter->value();
        if (!c.desc.empty())
            os << "  # " << c.desc;
        os << "\n";
    }
    for (const auto &f : formulas_) {
        os << full << "." << f.name << " " << std::setprecision(6)
           << f.fn();
        if (!f.desc.empty())
            os << "  # " << f.desc;
        os << "\n";
    }
    for (const auto *child : children_)
        child->dump(os, full);
}

} // namespace ipref
