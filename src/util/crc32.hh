/**
 * @file
 * CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320), used by the
 * v2 trace format to detect block corruption. Table-driven, one byte
 * at a time — plenty fast for trace I/O, zero dependencies.
 */

#ifndef IPREF_UTIL_CRC32_HH
#define IPREF_UTIL_CRC32_HH

#include <array>
#include <cstddef>
#include <cstdint>

namespace ipref
{

namespace detail
{

constexpr std::array<std::uint32_t, 256>
makeCrc32Table()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
        table[i] = c;
    }
    return table;
}

inline constexpr std::array<std::uint32_t, 256> crc32Table =
    makeCrc32Table();

} // namespace detail

/**
 * CRC-32 of @p n bytes at @p data. Pass a previous return value as
 * @p seed to checksum incrementally (seed 0 starts a fresh sum).
 */
inline std::uint32_t
crc32(const void *data, std::size_t n, std::uint32_t seed = 0)
{
    const unsigned char *p = static_cast<const unsigned char *>(data);
    std::uint32_t c = seed ^ 0xFFFFFFFFu;
    for (std::size_t i = 0; i < n; ++i)
        c = detail::crc32Table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

} // namespace ipref

#endif // IPREF_UTIL_CRC32_HH
