/**
 * @file
 * CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320), used by the
 * v2 trace format to detect block corruption. Table-driven, one byte
 * at a time — plenty fast for trace I/O, zero dependencies.
 */

#ifndef IPREF_UTIL_CRC32_HH
#define IPREF_UTIL_CRC32_HH

#include <array>
#include <cstddef>
#include <cstdint>

namespace ipref
{

namespace detail
{

constexpr std::array<std::uint32_t, 256>
makeCrc32Table()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
        table[i] = c;
    }
    return table;
}

inline constexpr std::array<std::uint32_t, 256> crc32Table =
    makeCrc32Table();

} // namespace detail

namespace detail
{

/** Slicing-by-8 tables: table[k][b] advances byte b through k+1
 * zero bytes of the shift register. */
constexpr std::array<std::array<std::uint32_t, 256>, 8>
makeCrc32Tables8()
{
    std::array<std::array<std::uint32_t, 256>, 8> t{};
    t[0] = makeCrc32Table();
    for (std::size_t k = 1; k < 8; ++k)
        for (std::uint32_t i = 0; i < 256; ++i)
            t[k][i] = (t[k - 1][i] >> 8) ^ t[0][t[k - 1][i] & 0xFFu];
    return t;
}

inline constexpr std::array<std::array<std::uint32_t, 256>, 8>
    crc32Tables8 = makeCrc32Tables8();

} // namespace detail

/**
 * CRC-32 of @p n bytes at @p data. Pass a previous return value as
 * @p seed to checksum incrementally (seed 0 starts a fresh sum).
 */
inline std::uint32_t
crc32(const void *data, std::size_t n, std::uint32_t seed = 0)
{
    const unsigned char *p = static_cast<const unsigned char *>(data);
    std::uint32_t c = seed ^ 0xFFFFFFFFu;
    for (std::size_t i = 0; i < n; ++i)
        c = detail::crc32Table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

/**
 * Same CRC-32, slicing-by-8: eight table lookups per 8-byte chunk
 * break the byte-serial dependency chain, roughly 5x the byte-wise
 * routine on bulk data. Used by the v3 trace reader, whose block
 * verification is bandwidth-bound; returns identical values to
 * crc32().
 */
inline std::uint32_t
crc32Sliced(const void *data, std::size_t n, std::uint32_t seed = 0)
{
    const auto &t = detail::crc32Tables8;
    const unsigned char *p = static_cast<const unsigned char *>(data);
    std::uint32_t c = seed ^ 0xFFFFFFFFu;
    while (n >= 8) {
        std::uint32_t lo = static_cast<std::uint32_t>(p[0]) |
                           static_cast<std::uint32_t>(p[1]) << 8 |
                           static_cast<std::uint32_t>(p[2]) << 16 |
                           static_cast<std::uint32_t>(p[3]) << 24;
        std::uint32_t hi = static_cast<std::uint32_t>(p[4]) |
                           static_cast<std::uint32_t>(p[5]) << 8 |
                           static_cast<std::uint32_t>(p[6]) << 16 |
                           static_cast<std::uint32_t>(p[7]) << 24;
        lo ^= c;
        c = t[7][lo & 0xFFu] ^ t[6][(lo >> 8) & 0xFFu] ^
            t[5][(lo >> 16) & 0xFFu] ^ t[4][lo >> 24] ^
            t[3][hi & 0xFFu] ^ t[2][(hi >> 8) & 0xFFu] ^
            t[1][(hi >> 16) & 0xFFu] ^ t[0][hi >> 24];
        p += 8;
        n -= 8;
    }
    while (n--)
        c = detail::crc32Table[(c ^ *p++) & 0xFFu] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

} // namespace ipref

#endif // IPREF_UTIL_CRC32_HH
