/**
 * @file
 * LEB128 variable-length integers and zigzag signed mapping, used by
 * the columnar v3 trace block codec. Encoders append to a byte
 * vector; decoders consume from a bounds-checked cursor and report
 * malformed input by returning false (the caller owns the error
 * policy — the trace layer turns it into a TraceError).
 */

#ifndef IPREF_UTIL_VARINT_HH
#define IPREF_UTIL_VARINT_HH

#include <cstdint>
#include <vector>

namespace ipref
{

/** Append @p v as an unsigned LEB128 varint (1-10 bytes). */
inline void
putVarint(std::vector<unsigned char> &out, std::uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<unsigned char>(v) | 0x80);
        v >>= 7;
    }
    out.push_back(static_cast<unsigned char>(v));
}

/** Map a signed delta onto small unsigned values (-1 -> 1, 1 -> 2). */
inline std::uint64_t
zigzagEncode(std::int64_t v)
{
    return (static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63);
}

/** Inverse of zigzagEncode. */
inline std::int64_t
zigzagDecode(std::uint64_t v)
{
    return static_cast<std::int64_t>(v >> 1) ^
           -static_cast<std::int64_t>(v & 1);
}

/** Append a signed value as a zigzag varint. */
inline void
putSvarint(std::vector<unsigned char> &out, std::int64_t v)
{
    putVarint(out, zigzagEncode(v));
}

/**
 * Bounds-checked read cursor over an encoded byte range. All get*
 * methods return false on truncated or overlong input and never read
 * past @p end.
 */
struct VarintCursor
{
    const unsigned char *pos = nullptr;
    const unsigned char *end = nullptr;

    VarintCursor(const unsigned char *begin, const unsigned char *stop)
        : pos(begin), end(stop)
    {}

    std::size_t remaining() const
    {
        return static_cast<std::size_t>(end - pos);
    }

    bool
    getVarint(std::uint64_t &out)
    {
        // Fast path: single-byte values dominate delta streams.
        if (pos != end && *pos < 0x80) {
            out = *pos++;
            return true;
        }
        std::uint64_t v = 0;
        unsigned shift = 0;
        while (pos != end && shift < 64) {
            unsigned char b = *pos++;
            v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
            if ((b & 0x80) == 0) {
                out = v;
                return true;
            }
            shift += 7;
        }
        return false; // truncated or > 10 bytes
    }

    bool
    getSvarint(std::int64_t &out)
    {
        std::uint64_t raw = 0;
        if (!getVarint(raw))
            return false;
        out = zigzagDecode(raw);
        return true;
    }

    /** Raw byte run of length @p n; returns its start or nullptr. */
    const unsigned char *
    getBytes(std::size_t n)
    {
        if (remaining() < n)
            return nullptr;
        const unsigned char *p = pos;
        pos += n;
        return p;
    }
};

} // namespace ipref

#endif // IPREF_UTIL_VARINT_HH
