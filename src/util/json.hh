/**
 * @file
 * Minimal JSON support shared by the stats/tracing writers and the
 * offline analysis toolchain: emission helpers plus a small
 * recursive-descent parser (`parseJson`). The simulator hot paths
 * only emit; parsing is used by `ipref_analyze`, the examples and the
 * tests — keeping the dependency surface zero either way.
 */

#ifndef IPREF_UTIL_JSON_HH
#define IPREF_UTIL_JSON_HH

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace ipref
{

/** Escape @p s for use inside a JSON string literal. */
inline std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Quoted JSON string literal for @p s. */
inline std::string
jsonString(const std::string &s)
{
    return "\"" + jsonEscape(s) + "\"";
}

/** "0x..." hex rendering of @p v (JSON has no hex numbers). */
inline std::string
jsonHex(std::uint64_t v)
{
    std::ostringstream os;
    os << "0x" << std::hex << v;
    return os.str();
}

/** Finite JSON number for @p v (NaN/inf become 0). */
inline std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        v = 0.0;
    std::ostringstream os;
    os.precision(12);
    os << v;
    return os.str();
}

// --- parsing ---------------------------------------------------------

/**
 * A parsed JSON value. Object keys are ordered (std::map) so dumps of
 * parsed documents are deterministic.
 */
struct JsonValue
{
    enum Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Null;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<JsonValue> items;          //!< Array elements
    std::map<std::string, JsonValue> fields; //!< Object members

    bool isNull() const { return kind == Null; }

    bool has(const std::string &key) const { return fields.count(key); }

    /** Object member access; throws std::runtime_error if absent. */
    const JsonValue &
    at(const std::string &key) const
    {
        auto it = fields.find(key);
        if (it == fields.end())
            throw std::runtime_error("JSON: missing key: " + key);
        return it->second;
    }

    /** Member @p key as a number, or @p def when absent/null. */
    double
    numberOr(const std::string &key, double def) const
    {
        auto it = fields.find(key);
        return it == fields.end() || it->second.kind != Number
                   ? def
                   : it->second.number;
    }

    /** Member @p key as a string, or @p def when absent. */
    std::string
    stringOr(const std::string &key, const std::string &def) const
    {
        auto it = fields.find(key);
        return it == fields.end() || it->second.kind != String
                   ? def
                   : it->second.str;
    }

    /**
     * This value as a uint64: plain numbers round-trip below 2^53;
     * "0x..." strings (the writers' address encoding) parse exactly.
     */
    std::uint64_t
    asUint() const
    {
        if (kind == Number)
            return static_cast<std::uint64_t>(number);
        if (kind == String && str.rfind("0x", 0) == 0)
            return std::stoull(str.substr(2), nullptr, 16);
        throw std::runtime_error("JSON: not a uint: " + str);
    }
};

namespace detail
{

/** Recursive-descent JSON parser over a string view of the input. */
class JsonParser
{
  public:
    JsonParser(const char *s, std::size_t n) : s_(s), n_(n) {}

    JsonValue
    parse()
    {
        JsonValue v = value();
        skipWs();
        if (pos_ != n_)
            fail("trailing garbage");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &what) const
    {
        throw std::runtime_error("JSON error at offset " +
                                 std::to_string(pos_) + ": " + what);
    }

    void
    skipWs()
    {
        while (pos_ < n_ &&
               (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                s_[pos_] == '\n' || s_[pos_] == '\r'))
            ++pos_;
    }

    char
    peek()
    {
        skipWs();
        if (pos_ >= n_)
            fail("unexpected end");
        return s_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    void
    literal(const char *word)
    {
        skipWs();
        for (const char *p = word; *p; ++p, ++pos_)
            if (pos_ >= n_ || s_[pos_] != *p)
                fail(std::string("bad literal (expected ") + word +
                     ")");
    }

    JsonValue
    value()
    {
        switch (peek()) {
          case '{': return object();
          case '[': return array();
          case '"': return string();
          case 't': {
            literal("true");
            JsonValue v;
            v.kind = JsonValue::Bool;
            v.boolean = true;
            return v;
          }
          case 'f': {
            literal("false");
            JsonValue v;
            v.kind = JsonValue::Bool;
            return v;
          }
          case 'n':
            literal("null");
            return JsonValue{};
          default:
            return number();
        }
    }

    JsonValue
    object()
    {
        JsonValue v;
        v.kind = JsonValue::Object;
        expect('{');
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        while (true) {
            JsonValue key = string();
            expect(':');
            v.fields[key.str] = value();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return v;
        }
    }

    JsonValue
    array()
    {
        JsonValue v;
        v.kind = JsonValue::Array;
        expect('[');
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        while (true) {
            v.items.push_back(value());
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return v;
        }
    }

    JsonValue
    string()
    {
        JsonValue v;
        v.kind = JsonValue::String;
        expect('"');
        while (pos_ < n_ && s_[pos_] != '"') {
            char c = s_[pos_++];
            if (c != '\\') {
                v.str += c;
                continue;
            }
            if (pos_ >= n_)
                fail("bad escape");
            char e = s_[pos_++];
            switch (e) {
              case '"':
              case '\\':
              case '/': v.str += e; break;
              case 'n': v.str += '\n'; break;
              case 't': v.str += '\t'; break;
              case 'r': v.str += '\r'; break;
              case 'b': v.str += '\b'; break;
              case 'f': v.str += '\f'; break;
              case 'u': {
                if (pos_ + 4 > n_)
                    fail("bad \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = s_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("bad \\u digit");
                }
                // The writers only escape control characters; decode
                // the BMP into UTF-8 for general inputs.
                if (code < 0x80) {
                    v.str += static_cast<char>(code);
                } else if (code < 0x800) {
                    v.str += static_cast<char>(0xc0 | (code >> 6));
                    v.str += static_cast<char>(0x80 | (code & 0x3f));
                } else {
                    v.str += static_cast<char>(0xe0 | (code >> 12));
                    v.str += static_cast<char>(0x80 |
                                               ((code >> 6) & 0x3f));
                    v.str += static_cast<char>(0x80 | (code & 0x3f));
                }
                break;
              }
              default:
                fail("unknown escape");
            }
        }
        if (pos_ >= n_)
            fail("unterminated string");
        ++pos_; // closing quote
        return v;
    }

    JsonValue
    number()
    {
        skipWs();
        std::size_t start = pos_;
        while (pos_ < n_ &&
               ((s_[pos_] >= '0' && s_[pos_] <= '9') ||
                s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
                s_[pos_] == 'e' || s_[pos_] == 'E'))
            ++pos_;
        if (start == pos_)
            fail("bad number");
        JsonValue v;
        v.kind = JsonValue::Number;
        v.number = std::stod(std::string(s_ + start, pos_ - start));
        return v;
    }

    const char *s_;
    std::size_t n_;
    std::size_t pos_ = 0;
};

} // namespace detail

/** Parse one complete JSON document; throws std::runtime_error. */
inline JsonValue
parseJson(const std::string &text)
{
    return detail::JsonParser(text.data(), text.size()).parse();
}

} // namespace ipref

#endif // IPREF_UTIL_JSON_HH
