/**
 * @file
 * Minimal JSON emission helpers shared by the stats/tracing writers.
 * Emission only — the simulator never parses JSON; tests parse the
 * output with their own validator to keep the dependency surface zero.
 */

#ifndef IPREF_UTIL_JSON_HH
#define IPREF_UTIL_JSON_HH

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <sstream>
#include <string>

namespace ipref
{

/** Escape @p s for use inside a JSON string literal. */
inline std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Quoted JSON string literal for @p s. */
inline std::string
jsonString(const std::string &s)
{
    return "\"" + jsonEscape(s) + "\"";
}

/** "0x..." hex rendering of @p v (JSON has no hex numbers). */
inline std::string
jsonHex(std::uint64_t v)
{
    std::ostringstream os;
    os << "0x" << std::hex << v;
    return os.str();
}

/** Finite JSON number for @p v (NaN/inf become 0). */
inline std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        v = 0.0;
    std::ostringstream os;
    os.precision(12);
    os << v;
    return os.str();
}

} // namespace ipref

#endif // IPREF_UTIL_JSON_HH
