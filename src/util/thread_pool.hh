/**
 * @file
 * A small reusable fixed-size thread pool for embarrassingly
 * parallel work (the parallel experiment runner, offline analysis).
 *
 * Tasks are submitted as callables and their results retrieved
 * through std::future, so exceptions thrown by a task propagate to
 * whoever calls get(). With zero or one worker the pool degenerates
 * to inline execution at submit() time — same semantics, no threads —
 * which keeps single-job runs bit-for-bit identical to never having
 * had a pool at all.
 */

#ifndef IPREF_UTIL_THREAD_POOL_HH
#define IPREF_UTIL_THREAD_POOL_HH

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace ipref
{

/** Fixed-size worker pool; join-on-destruction. */
class ThreadPool
{
  public:
    /**
     * @param threads worker count; 0 or 1 means "run tasks inline on
     *                the submitting thread" (no workers are started).
     */
    explicit ThreadPool(unsigned threads)
    {
        if (threads <= 1)
            return;
        workers_.reserve(threads);
        for (unsigned i = 0; i < threads; ++i)
            workers_.emplace_back([this] { workerLoop(); });
    }

    ~ThreadPool()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            stopping_ = true;
        }
        cv_.notify_all();
        for (auto &w : workers_)
            w.join();
    }

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Started worker threads (0 = inline mode). */
    unsigned
    threads() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    /**
     * Enqueue @p fn; the returned future yields its result (or
     * rethrows its exception). In inline mode the task runs before
     * submit() returns.
     */
    template <typename F>
    std::future<std::invoke_result_t<F>>
    submit(F &&fn)
    {
        using R = std::invoke_result_t<F>;
        // shared_ptr wrapper: packaged_task is move-only but
        // std::function requires a copyable callable.
        auto task = std::make_shared<std::packaged_task<R()>>(
            std::forward<F>(fn));
        std::future<R> future = task->get_future();
        if (workers_.empty()) {
            (*task)();
            return future;
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            queue_.emplace_back([task] { (*task)(); });
        }
        cv_.notify_one();
        return future;
    }

  private:
    void
    workerLoop()
    {
        while (true) {
            std::function<void()> task;
            {
                std::unique_lock<std::mutex> lock(mutex_);
                cv_.wait(lock, [this] {
                    return stopping_ || !queue_.empty();
                });
                if (queue_.empty())
                    return; // stopping, queue drained
                task = std::move(queue_.front());
                queue_.pop_front();
            }
            task();
        }
    }

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stopping_ = false;
};

} // namespace ipref

#endif // IPREF_UTIL_THREAD_POOL_HH
