/**
 * @file
 * A small reusable fixed-size thread pool for embarrassingly
 * parallel work (the parallel experiment runner, offline analysis).
 *
 * Tasks are submitted as callables and their results retrieved
 * through std::future, so exceptions thrown by a task propagate to
 * whoever calls get(). With zero or one worker the pool degenerates
 * to inline execution at submit() time — same semantics, no threads —
 * which keeps single-job runs bit-for-bit identical to never having
 * had a pool at all.
 */

#ifndef IPREF_UTIL_THREAD_POOL_HH
#define IPREF_UTIL_THREAD_POOL_HH

#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/metrics.hh"

namespace ipref
{

/**
 * Process-wide pool telemetry, aggregated across every ThreadPool in
 * the process (ipref_top reads these as "the worker fleet"): queued
 * tasks, tasks currently executing, and per-task wall time.
 */
struct PoolMetricRefs
{
    metrics::Gauge &queueDepth;
    metrics::Gauge &busyWorkers;
    metrics::LatencyHistogram &taskMs;
};

inline PoolMetricRefs &
poolMetrics()
{
    static PoolMetricRefs refs{
        metrics::registry().gauge("ipref_pool_queue_depth",
                                  "tasks waiting in pool queues"),
        metrics::registry().gauge("ipref_pool_busy_workers",
                                  "pool tasks currently executing"),
        metrics::registry().histogram(
            "ipref_pool_task_ms", metrics::defaultMsBounds(),
            "pool task execution wall time (ms)"),
    };
    return refs;
}

/** Fixed-size worker pool; join-on-destruction. */
class ThreadPool
{
  public:
    /**
     * @param threads worker count; 0 or 1 means "run tasks inline on
     *                the submitting thread" (no workers are started).
     */
    explicit ThreadPool(unsigned threads)
    {
        if (threads <= 1)
            return;
        workers_.reserve(threads);
        for (unsigned i = 0; i < threads; ++i)
            workers_.emplace_back([this] { workerLoop(); });
    }

    ~ThreadPool()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            stopping_ = true;
        }
        cv_.notify_all();
        for (auto &w : workers_)
            w.join();
    }

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Started worker threads (0 = inline mode). */
    unsigned
    threads() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    /**
     * Enqueue @p fn; the returned future yields its result (or
     * rethrows its exception). In inline mode the task runs before
     * submit() returns.
     */
    template <typename F>
    std::future<std::invoke_result_t<F>>
    submit(F &&fn)
    {
        using R = std::invoke_result_t<F>;
        // shared_ptr wrapper: packaged_task is move-only but
        // std::function requires a copyable callable.
        auto task = std::make_shared<std::packaged_task<R()>>(
            std::forward<F>(fn));
        std::future<R> future = task->get_future();
        if (workers_.empty()) {
            runInstrumented([&] { (*task)(); });
            return future;
        }
        poolMetrics().queueDepth.add(1);
        {
            std::lock_guard<std::mutex> lock(mutex_);
            queue_.emplace_back([task] { (*task)(); });
        }
        cv_.notify_one();
        return future;
    }

  private:
    /** Run @p fn inside the busy-workers gauge + task-latency timer. */
    template <typename Fn>
    static void
    runInstrumented(Fn &&fn)
    {
        if constexpr (!metrics::kCompiled) {
            fn();
        } else {
            PoolMetricRefs &m = poolMetrics();
            m.busyWorkers.add(1);
            auto t0 = std::chrono::steady_clock::now();
            fn();
            std::chrono::duration<double, std::milli> elapsed =
                std::chrono::steady_clock::now() - t0;
            m.taskMs.observe(elapsed.count());
            m.busyWorkers.sub(1);
        }
    }

    void
    workerLoop()
    {
        while (true) {
            std::function<void()> task;
            {
                std::unique_lock<std::mutex> lock(mutex_);
                cv_.wait(lock, [this] {
                    return stopping_ || !queue_.empty();
                });
                if (queue_.empty())
                    return; // stopping, queue drained
                task = std::move(queue_.front());
                queue_.pop_front();
            }
            poolMetrics().queueDepth.sub(1);
            runInstrumented([&] { task(); });
        }
    }

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stopping_ = false;
};

} // namespace ipref

#endif // IPREF_UTIL_THREAD_POOL_HH
