/**
 * @file
 * Low-overhead structured event tracing for the simulator.
 *
 * A TraceSink is a fixed-capacity ring buffer of small POD events
 * (cache hits/misses/fills/evictions, prefetch issue/drop/fill, queue
 * hoist/invalidate, discontinuity-table traffic) with cycle
 * timestamps. Recording is a single branch plus a store when the sink
 * is enabled and exactly one predictable branch when it is not; with
 * IPREF_TRACE_EVENTS defined to 0 every IPREF_TRACE() site compiles
 * away entirely.
 *
 * Events are drained as JSON lines (one object per line) so external
 * tooling can consume them without a schema.
 */

#ifndef IPREF_UTIL_TRACE_EVENT_HH
#define IPREF_UTIL_TRACE_EVENT_HH

#include <array>
#include <cstdint>
#include <ostream>
#include <vector>

#include "util/types.hh"

namespace ipref
{

/** Event taxonomy (schema reference: DESIGN.md "Observability"). */
enum class TraceEventType : std::uint8_t
{
    CacheHit,        //!< demand hit (detail = level [+transition])
    CacheMiss,       //!< demand miss (detail = level [+transition])
    CacheFill,       //!< demand fill installed (detail = level)
    CacheEvict,      //!< line evicted (arg bit0 = used, bit1 = prefetched)
    PrefetchIssue,   //!< fill started (arg = prefetch id, detail = origin)
    PrefetchDrop,    //!< candidate not issued (detail = DropReason)
    PrefetchFill,    //!< prefetch fill installed into an L1I
    PrefetchUseful,  //!< lifecycle resolved useful (arg = id, detail = origin)
    PrefetchUseless, //!< evicted unused (arg = id, detail = origin)
    PrefetchReplaced, //!< lifecycle superseded by a re-issue (arg = old id)
    QueueHoist,      //!< waiting duplicate hoisted to the queue head
    QueueInvalidate, //!< demand fetch invalidated a waiting prefetch
    DiscAlloc,       //!< discontinuity-table allocation (arg = target)
    DiscEvict,       //!< discontinuity-table replacement (arg = target)
    DiscHit,         //!< discontinuity-table probe hit (arg = target)
    FetchStall,      //!< fetch-stall episode ended (arg = cycles
                     //!< charged, detail = CycleBucket id)
    NumTypes
};

/** Stable lower-case name of @p type ("prefetch_issue", ...). */
const char *traceEventName(TraceEventType type);

/** Cache levels used in the `detail` field of cache events. */
enum : std::uint8_t
{
    traceLevelL1I = 1,
    traceLevelL1D = 2,
    traceLevelL2 = 3,
};

/** Drop reasons used in the `detail` field of PrefetchDrop. */
enum : std::uint8_t
{
    traceDropPresent = 0,    //!< line already resident (hierarchy)
    traceDropInFlight = 1,   //!< fill already in flight
    traceDropConfidence = 2, //!< suppressed by the confidence filter
    traceDropTagProbe = 3,   //!< tag-port probe found the line
};

/** Core id used when the emitting component has no core context. */
inline constexpr std::uint16_t traceNoCore = 0xffff;

/**
 * Cache-event `detail` packing: cache level in the low nibble, the
 * fetch transition *into* the line (when known, instruction side
 * only) as transition+1 in the high nibble — 0 means "no transition
 * attached" (data-side events).
 */
inline constexpr std::uint8_t
traceDetailPack(std::uint8_t level, std::uint8_t transition)
{
    return static_cast<std::uint8_t>((level & 0x0f) |
                                     ((transition + 1) << 4));
}

/** Cache level from a packed cache-event `detail`. */
inline constexpr std::uint8_t
traceDetailLevel(std::uint8_t detail)
{
    return detail & 0x0f;
}

/** Transition from a packed `detail`, or -1 when none is attached. */
inline constexpr int
traceDetailTransition(std::uint8_t detail)
{
    return (detail >> 4) == 0 ? -1 : (detail >> 4) - 1;
}

/** One structured simulator event (40 bytes). */
struct TraceEvent
{
    Cycle cycle = 0;
    Addr addr = 0;
    std::uint64_t arg = 0;
    Addr pc = 0; //!< triggering fetch PC / generating site (0 = none)
    std::uint16_t core = traceNoCore;
    TraceEventType type = TraceEventType::CacheHit;
    std::uint8_t detail = 0;
};

/**
 * Ring-buffered event sink. Disabled (capacity 0) by default.
 * Instrumented components write into current(): a thread-local
 * pointer that defaults to the process-wide global() sink and can be
 * redirected to a per-run sink (System installs its own sink for the
 * duration of run() when SystemConfig::traceCapacity > 0).
 *
 * Thread-ownership rule: a TraceSink is single-threaded state. Every
 * sink is owned by exactly one run (System) and is only ever recorded
 * into by the thread executing that run; concurrent runs each install
 * their own sink as current() on their own thread, so ring insertion
 * needs no locks. The global() sink is an explicit single-threaded
 * opt-in alias — enabling it while simulations run on multiple
 * threads is unsupported (those threads would race on one ring).
 */
class TraceSink
{
  public:
    TraceSink() = default;

    /** Start recording into a fresh ring of @p capacity events. */
    void enable(std::size_t capacity);

    /** Stop recording and release the ring (buffered events drop). */
    void disable();

    bool enabled() const { return enabled_; }

    /**
     * Record one event. When @p cycle is traceNowHint the sink's last
     * setNow() value is used (components without a cycle in scope).
     */
    void
    record(TraceEventType type, std::uint16_t core, Addr addr,
           std::uint64_t arg = 0, std::uint8_t detail = 0,
           Cycle cycle = traceNowHint, Addr pc = 0)
    {
        if (!enabled_)
            return;
        TraceEvent &e = ring_[head_];
        e.cycle = cycle == traceNowHint ? now_ : cycle;
        e.addr = addr;
        e.arg = arg;
        e.pc = pc;
        e.core = core;
        e.type = type;
        e.detail = detail;
        head_ = head_ + 1 == ring_.size() ? 0 : head_ + 1;
        ++recorded_;
        ++countsByType_[static_cast<std::size_t>(type)];
    }

    /** Update the cycle used for events recorded without one. */
    void setNow(Cycle now) { now_ = now; }

    /** Total events recorded (including overwritten ones). */
    std::uint64_t recorded() const { return recorded_; }

    /** Events overwritten by ring wraparound. */
    std::uint64_t
    dropped() const
    {
        return recorded_ > ring_.size() ? recorded_ - ring_.size() : 0;
    }

    /** Events currently buffered. */
    std::size_t
    size() const
    {
        return recorded_ < ring_.size()
                   ? static_cast<std::size_t>(recorded_)
                   : ring_.size();
    }

    std::size_t capacity() const { return ring_.size(); }

    /** Per-type totals (indexed by TraceEventType). */
    const std::array<std::uint64_t,
                     static_cast<std::size_t>(TraceEventType::NumTypes)> &
    countsByType() const
    {
        return countsByType_;
    }

    /** Buffered events, oldest first. */
    std::vector<TraceEvent> snapshot() const;

    /** Write buffered events as JSON lines, oldest first. */
    void writeJsonLines(std::ostream &os) const;

    /** Forget buffered events and totals; keep the ring. */
    void clear();

    /** The process-wide default sink (single-threaded use only). */
    static TraceSink &global() { return globalSink_; }

    /** The calling thread's active sink (global() by default). */
    static TraceSink &
    current()
    {
        TraceSink *sink = currentSink_;
        return sink ? *sink : globalSink_;
    }

    /**
     * Redirect the calling thread's instrumentation to @p sink
     * (nullptr = back to global()). @return the previous override.
     * Prefer the RAII TraceSinkScope.
     */
    static TraceSink *
    setCurrent(TraceSink *sink)
    {
        TraceSink *prev = currentSink_;
        currentSink_ = sink;
        return prev;
    }

    /** Sentinel cycle: "use the setNow() hint". */
    static constexpr Cycle traceNowHint = ~static_cast<Cycle>(0);

  private:
    static inline thread_local TraceSink *currentSink_ = nullptr;
    /** Constant-initialized so trace sites skip the function-local
     *  static guard a Meyers singleton would cost on every event. */
    static TraceSink globalSink_;

    std::vector<TraceEvent> ring_;
    std::size_t head_ = 0;
    std::uint64_t recorded_ = 0;
    bool enabled_ = false;
    Cycle now_ = 0;
    std::array<std::uint64_t,
               static_cast<std::size_t>(TraceEventType::NumTypes)>
        countsByType_{};
};

inline constinit TraceSink TraceSink::globalSink_{};

/** RAII: install @p sink as the thread's current() for a scope. */
class TraceSinkScope
{
  public:
    /** @p sink may be nullptr: the scope is then a no-op. */
    explicit TraceSinkScope(TraceSink *sink)
        : installed_(sink != nullptr),
          prev_(installed_ ? TraceSink::setCurrent(sink) : nullptr)
    {}

    ~TraceSinkScope()
    {
        if (installed_)
            TraceSink::setCurrent(prev_);
    }

    TraceSinkScope(const TraceSinkScope &) = delete;
    TraceSinkScope &operator=(const TraceSinkScope &) = delete;

  private:
    bool installed_;
    TraceSink *prev_;
};

} // namespace ipref

/**
 * Instrumentation entry point. Compiles to nothing when
 * IPREF_TRACE_EVENTS is 0; otherwise a single enabled() branch.
 */
#ifndef IPREF_TRACE_EVENTS
#define IPREF_TRACE_EVENTS 1
#endif

#if IPREF_TRACE_EVENTS
#define IPREF_TRACE(...)                                               \
    do {                                                               \
        ::ipref::TraceSink &ts_ = ::ipref::TraceSink::current();       \
        if (ts_.enabled())                                             \
            ts_.record(__VA_ARGS__);                                   \
    } while (0)
#define IPREF_TRACE_SETNOW(now)                                        \
    do {                                                               \
        ::ipref::TraceSink &ts_ = ::ipref::TraceSink::current();       \
        if (ts_.enabled())                                             \
            ts_.setNow(now);                                           \
    } while (0)
#else
#define IPREF_TRACE(...) ((void)0)
#define IPREF_TRACE_SETNOW(now) ((void)0)
#endif

#endif // IPREF_UTIL_TRACE_EVENT_HH
