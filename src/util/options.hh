/**
 * @file
 * Tiny command-line option parser for the examples and benches.
 *
 * Supports "--name value", "--name=value" and boolean "--flag".
 * Unknown options are fatal (catches typos in experiment scripts).
 */

#ifndef IPREF_UTIL_OPTIONS_HH
#define IPREF_UTIL_OPTIONS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ipref
{

/** Parsed command-line options with typed accessors and defaults. */
class Options
{
  public:
    /**
     * Parse argv. @p known maps option name -> help text; parsing an
     * option not in @p known is fatal. Pass an empty map to accept
     * anything.
     */
    Options(int argc, char **argv,
            const std::map<std::string, std::string> &known = {});

    bool has(const std::string &name) const;

    std::string getString(const std::string &name,
                          const std::string &def = "") const;
    std::int64_t getInt(const std::string &name, std::int64_t def) const;
    std::uint64_t getUint(const std::string &name, std::uint64_t def) const;
    double getDouble(const std::string &name, double def) const;
    bool getBool(const std::string &name, bool def = false) const;

    /** Positional (non-option) arguments in order. */
    const std::vector<std::string> &positional() const { return positional_; }

    /** Program name (argv[0]). */
    const std::string &program() const { return program_; }

  private:
    std::string program_;
    std::map<std::string, std::string> values_;
    std::vector<std::string> positional_;
};

} // namespace ipref

#endif // IPREF_UTIL_OPTIONS_HH
