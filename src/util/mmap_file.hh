/**
 * @file
 * Read-only whole-file mapping. On POSIX hosts the file is mmap()ed
 * (zero-copy: pages fault in on demand and are shared between
 * processes mapping the same trace); elsewhere the file is read into
 * an owned buffer so callers see the same interface either way.
 */

#ifndef IPREF_UTIL_MMAP_FILE_HH
#define IPREF_UTIL_MMAP_FILE_HH

#include <cstddef>
#include <string>
#include <vector>

namespace ipref
{

/** An immutable byte view of one file, mapped or loaded. */
class MappedFile
{
  public:
    /**
     * Map @p path read-only; throws SimError(Io) (transient-flagged
     * when the errno is) if the file cannot be opened or mapped.
     */
    explicit MappedFile(const std::string &path);
    ~MappedFile();

    MappedFile(const MappedFile &) = delete;
    MappedFile &operator=(const MappedFile &) = delete;

    const unsigned char *data() const { return data_; }
    std::size_t size() const { return size_; }
    const std::string &path() const { return path_; }

    /** True when the bytes come from mmap (false: owned buffer). */
    bool mapped() const { return mapped_; }

  private:
    std::string path_;
    const unsigned char *data_ = nullptr;
    std::size_t size_ = 0;
    bool mapped_ = false;
    std::vector<unsigned char> fallback_; //!< non-mmap hosts
};

/**
 * Fingerprint of a file's identity on disk (size and mtime), used by
 * the trace cache to detect that a cached decode has gone stale.
 * Throws SimError(Io) when the file cannot be stat()ed.
 */
struct FileFingerprint
{
    std::uint64_t sizeBytes = 0;
    std::uint64_t mtimeNs = 0;

    bool
    operator==(const FileFingerprint &o) const
    {
        return sizeBytes == o.sizeBytes && mtimeNs == o.mtimeNs;
    }
};

FileFingerprint fingerprintFile(const std::string &path);

} // namespace ipref

#endif // IPREF_UTIL_MMAP_FILE_HH
