/**
 * @file
 * Fixed-bucket and power-of-two histograms for latency and distance
 * distributions.
 */

#ifndef IPREF_UTIL_HISTOGRAM_HH
#define IPREF_UTIL_HISTOGRAM_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace ipref
{

/**
 * Histogram with logarithmic (power-of-two) buckets: bucket i counts
 * samples in [2^(i-1), 2^i), bucket 0 counts zeros and ones.
 */
class Log2Histogram
{
  public:
    explicit Log2Histogram(unsigned num_buckets = 32)
        : buckets_(num_buckets, 0)
    {}

    /** Record one sample. */
    void add(std::uint64_t value);

    /** Samples recorded. */
    std::uint64_t count() const { return count_; }

    /** Sum of all samples. */
    std::uint64_t sum() const { return sum_; }

    /** Arithmetic mean (0 if empty). */
    double mean() const
    {
        return count_ ? static_cast<double>(sum_) / count_ : 0.0;
    }

    /** Largest sample seen. */
    std::uint64_t max() const { return max_; }

    /** Bucket counts (index = ceil(log2) class). */
    const std::vector<std::uint64_t> &buckets() const { return buckets_; }

    /** Approximate p-quantile from bucket boundaries. */
    std::uint64_t quantile(double q) const;

    // Conventional latency percentiles, as used by the JSON dumps.
    std::uint64_t p50() const { return quantile(0.5); }
    std::uint64_t p95() const { return quantile(0.95); }
    std::uint64_t p99() const { return quantile(0.99); }

    /** Pretty-print non-empty buckets. */
    void print(std::ostream &os, const std::string &label) const;

    void reset();

  private:
    std::vector<std::uint64_t> buckets_;
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t max_ = 0;
};

} // namespace ipref

#endif // IPREF_UTIL_HISTOGRAM_HH
