/**
 * @file
 * Fundamental scalar types shared by every subsystem.
 */

#ifndef IPREF_UTIL_TYPES_HH
#define IPREF_UTIL_TYPES_HH

#include <cstdint>

namespace ipref
{

/** A byte address in the simulated (flat, virtual == physical) space. */
using Addr = std::uint64_t;

/** A cache-line-granular address (byte address >> log2(line size)). */
using LineAddr = std::uint64_t;

/** A simulated clock cycle count. */
using Cycle = std::uint64_t;

/** Identifier of a core within a chip (0-based). */
using CoreId = std::uint32_t;

/** An invalid/unset address sentinel. */
inline constexpr Addr invalidAddr = ~std::uint64_t{0};

/** An invalid/unset cycle sentinel (used for "never"). */
inline constexpr Cycle neverCycle = ~std::uint64_t{0};

} // namespace ipref

#endif // IPREF_UTIL_TYPES_HH
