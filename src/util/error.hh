/**
 * @file
 * Recoverable error reporting for the simulator.
 *
 * Three tiers (see DESIGN.md §9):
 *   - ipref_panic: internal invariant violations — simulator bugs.
 *     Aborts; never catch it.
 *   - SimError and subclasses: recoverable failures induced by inputs
 *     (corrupt traces, bad configurations) or the environment (I/O).
 *     The batch runner catches these at the run boundary, so one bad
 *     input cannot take down a whole experiment campaign.
 *   - ipref_fatal: CLI-level unrecoverable exits; only appropriate in
 *     main()-adjacent code, never inside the library.
 *
 * Errors flagged `transient()` (EINTR/EAGAIN/ENOSPC-class I/O) are
 * eligible for retry with backoff; everything else fails fast.
 */

#ifndef IPREF_UTIL_ERROR_HH
#define IPREF_UTIL_ERROR_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

#include "util/logging.hh"

namespace ipref
{

/** Base class for every recoverable simulator error. */
class SimError : public std::runtime_error
{
  public:
    /** Broad classification, preserved across the run boundary. */
    enum class Kind : std::uint8_t
    {
        Config,      //!< invalid configuration / CLI input
        Trace,       //!< trace file corruption, truncation, bad decode
        Invariant,   //!< recoverable invariant failure in one run
        Io,          //!< filesystem / OS-level failure
        Timeout,     //!< run exceeded its deadline (batch watchdog)
        Interrupted, //!< run cancelled by SIGINT / batch shutdown
    };

    SimError(Kind kind, const std::string &msg, bool transient = false)
        : std::runtime_error(msg), kind_(kind), transient_(transient)
    {}

    Kind kind() const { return kind_; }

    /** May succeed on retry (I/O hiccup, disk briefly full, ...). */
    bool transient() const { return transient_; }

  private:
    Kind kind_;
    bool transient_;
};

/** Stable lower-case name for a Kind (manifest / JSON reports). */
const char *errorKindName(SimError::Kind kind);

/** Parse errorKindName() output back (unknown -> Invariant). */
SimError::Kind parseErrorKind(const std::string &name);

/** Is @p err (an errno value) worth retrying? */
bool isTransientErrno(int err);

/** The user asked for an unsupportable configuration. */
class ConfigError : public SimError
{
  public:
    explicit ConfigError(const std::string &msg)
        : SimError(Kind::Config, msg)
    {}
};

/**
 * Trace-file corruption, truncation or I/O failure, carrying enough
 * context (byte offset, record index, errno) to locate the damage.
 */
class TraceError : public SimError
{
  public:
    /** Where in the file the error was detected. */
    struct Context
    {
        std::string path;
        std::uint64_t byteOffset = 0;
        std::uint64_t recordIndex = 0;
        int sysErrno = 0; //!< 0 when not an OS-level failure
    };

    explicit TraceError(const std::string &msg)
        : SimError(Kind::Trace, msg)
    {}

    TraceError(const std::string &msg, Context ctx,
               bool transient = false)
        : SimError(Kind::Trace, decorate(msg, ctx), transient),
          ctx_(std::move(ctx))
    {}

    const Context &context() const { return ctx_; }
    std::uint64_t byteOffset() const { return ctx_.byteOffset; }
    std::uint64_t recordIndex() const { return ctx_.recordIndex; }
    int sysErrno() const { return ctx_.sysErrno; }

  private:
    static std::string decorate(const std::string &msg,
                                const Context &ctx);

    Context ctx_;
};

/**
 * A per-run invariant failed in a way that poisons only that run
 * (e.g. a stalled simulation loop). Distinct from ipref_panic, which
 * flags process-wide simulator bugs and aborts.
 */
class InvariantError : public SimError
{
  public:
    explicit InvariantError(const std::string &msg)
        : SimError(Kind::Invariant, msg)
    {}
};

/**
 * Minimal Expected<T>: a value or the SimError that prevented it.
 * Used where failure is an answer, not an exception (manifest loads,
 * salvage paths).
 */
template <typename T>
class Expected
{
  public:
    Expected(T value) : data_(std::move(value)) {} // NOLINT(implicit)
    Expected(SimError error) : data_(std::move(error)) {} // NOLINT

    bool ok() const { return data_.index() == 0; }
    explicit operator bool() const { return ok(); }

    T &value() { return std::get<0>(data_); }
    const T &value() const { return std::get<0>(data_); }

    const SimError &error() const { return std::get<1>(data_); }

    T
    valueOr(T def) const
    {
        return ok() ? std::get<0>(data_) : std::move(def);
    }

  private:
    std::variant<T, SimError> data_;
};

/** Throw @p ExType with a printf-formatted message. */
#define ipref_raise(ExType, ...)                                              \
    throw ExType(::ipref::detail::formatMessage(__VA_ARGS__))

} // namespace ipref

#endif // IPREF_UTIL_ERROR_HH
