#include "util/histogram.hh"

#include <algorithm>

#include "util/bitutil.hh"

namespace ipref
{

void
Log2Histogram::add(std::uint64_t value)
{
    unsigned idx = value <= 1 ? 0 : ceilLog2(value);
    idx = std::min<unsigned>(idx, buckets_.size() - 1);
    ++buckets_[idx];
    ++count_;
    sum_ += value;
    max_ = std::max(max_, value);
}

std::uint64_t
Log2Histogram::quantile(double q) const
{
    if (count_ == 0)
        return 0;
    std::uint64_t target =
        static_cast<std::uint64_t>(q * static_cast<double>(count_));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        seen += buckets_[i];
        if (seen > target)
            return i == 0 ? 1 : (std::uint64_t{1} << i);
    }
    return max_;
}

void
Log2Histogram::print(std::ostream &os, const std::string &label) const
{
    os << label << ": n=" << count_ << " mean=" << mean()
       << " max=" << max_ << "\n";
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        if (buckets_[i] == 0)
            continue;
        std::uint64_t lo = i == 0 ? 0 : (std::uint64_t{1} << (i - 1)) + 1;
        std::uint64_t hi = std::uint64_t{1} << i;
        os << "  [" << lo << ", " << hi << "]: " << buckets_[i] << "\n";
    }
}

void
Log2Histogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    count_ = sum_ = max_ = 0;
}

} // namespace ipref
