#include "util/error.hh"

#include <cerrno>
#include <cstring>

namespace ipref
{

const char *
errorKindName(SimError::Kind kind)
{
    switch (kind) {
      case SimError::Kind::Config: return "config";
      case SimError::Kind::Trace: return "trace";
      case SimError::Kind::Invariant: return "invariant";
      case SimError::Kind::Io: return "io";
      case SimError::Kind::Timeout: return "timeout";
      case SimError::Kind::Interrupted: return "interrupted";
    }
    return "invariant";
}

SimError::Kind
parseErrorKind(const std::string &name)
{
    if (name == "config")
        return SimError::Kind::Config;
    if (name == "trace")
        return SimError::Kind::Trace;
    if (name == "io")
        return SimError::Kind::Io;
    if (name == "timeout")
        return SimError::Kind::Timeout;
    if (name == "interrupted")
        return SimError::Kind::Interrupted;
    return SimError::Kind::Invariant;
}

bool
isTransientErrno(int err)
{
    switch (err) {
      case EINTR:
      case EAGAIN:
#if defined(EWOULDBLOCK) && EWOULDBLOCK != EAGAIN
      case EWOULDBLOCK:
#endif
      case EBUSY:
      case ENOSPC:
      case EMFILE:
      case ENFILE:
#ifdef EDQUOT
      case EDQUOT:
#endif
        return true;
      default:
        return false;
    }
}

std::string
TraceError::decorate(const std::string &msg, const Context &ctx)
{
    std::string out = msg;
    if (!ctx.path.empty())
        out += " [" + ctx.path + "]";
    if (ctx.byteOffset || ctx.recordIndex)
        out += " (byte offset " + std::to_string(ctx.byteOffset) +
               ", record " + std::to_string(ctx.recordIndex) + ")";
    if (ctx.sysErrno)
        out += std::string(": ") + std::strerror(ctx.sysErrno);
    return out;
}

} // namespace ipref
