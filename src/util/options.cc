#include "util/options.hh"

#include <cstdlib>

#include "util/error.hh"
#include "util/logging.hh"

namespace ipref
{

Options::Options(int argc, char **argv,
                 const std::map<std::string, std::string> &known)
{
    program_ = argc > 0 ? argv[0] : "";
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            positional_.push_back(arg);
            continue;
        }
        std::string name = arg.substr(2);
        std::string value;
        auto eq = name.find('=');
        if (eq != std::string::npos) {
            value = name.substr(eq + 1);
            name = name.substr(0, eq);
        } else if (i + 1 < argc &&
                   std::string(argv[i + 1]).rfind("--", 0) != 0) {
            value = argv[++i];
        } else {
            value = "1"; // boolean flag
        }
        if (!known.empty() && !known.count(name))
            ipref_raise(ConfigError, "unknown option --%s", name.c_str());
        values_[name] = value;
    }
}

bool
Options::has(const std::string &name) const
{
    return values_.count(name) != 0;
}

std::string
Options::getString(const std::string &name, const std::string &def) const
{
    auto it = values_.find(name);
    return it == values_.end() ? def : it->second;
}

std::int64_t
Options::getInt(const std::string &name, std::int64_t def) const
{
    auto it = values_.find(name);
    return it == values_.end() ? def : std::strtoll(it->second.c_str(),
                                                    nullptr, 0);
}

std::uint64_t
Options::getUint(const std::string &name, std::uint64_t def) const
{
    auto it = values_.find(name);
    return it == values_.end() ? def : std::strtoull(it->second.c_str(),
                                                     nullptr, 0);
}

double
Options::getDouble(const std::string &name, double def) const
{
    auto it = values_.find(name);
    return it == values_.end() ? def : std::strtod(it->second.c_str(),
                                                   nullptr);
}

bool
Options::getBool(const std::string &name, bool def) const
{
    auto it = values_.find(name);
    if (it == values_.end())
        return def;
    return it->second != "0" && it->second != "false" &&
           it->second != "no";
}

} // namespace ipref
