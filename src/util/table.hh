/**
 * @file
 * ASCII table formatter used by the benchmark harness to print
 * paper-figure-style tables, with optional CSV output.
 */

#ifndef IPREF_UTIL_TABLE_HH
#define IPREF_UTIL_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace ipref
{

/**
 * A simple row/column table. First row added is the header.
 * Cells are strings; numeric helpers format with fixed precision.
 */
class Table
{
  public:
    explicit Table(std::string title = "") : title_(std::move(title)) {}

    /** Set the header row. */
    void header(std::vector<std::string> cells);

    /** Append a data row (must match header width). */
    void row(std::vector<std::string> cells);

    /** Format a double with @p precision digits after the point. */
    static std::string num(double v, int precision = 3);

    /** Format a ratio as a percentage string ("12.3%"). */
    static std::string pct(double v, int precision = 1);

    /** Print aligned ASCII table. */
    void print(std::ostream &os) const;

    /** Print comma-separated values (header + rows). */
    void printCsv(std::ostream &os) const;

    const std::string &title() const { return title_; }
    std::size_t rows() const { return rows_.size(); }

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace ipref

#endif // IPREF_UTIL_TABLE_HH
