/**
 * @file
 * The chip's memory hierarchy: per-core L1 instruction/data caches, a
 * shared unified L2, and the off-chip channel, plus the in-flight fill
 * (MSHR) machinery that gives prefetches their timeliness semantics.
 *
 * Three paper-specific mechanisms live here:
 *  - demand-miss categorization by fetch transition (Figure 3),
 *  - the limit-study "ideal elimination" of selected miss groups
 *    (Figure 4), and
 *  - the selective-L2-install ("bypass") policy: prefetched lines are
 *    installed only into the L1I; on eviction, a line that was proven
 *    useful is installed into the L2, a useless one is dropped
 *    (Section 7).
 */

#ifndef IPREF_CACHE_HIERARCHY_HH
#define IPREF_CACHE_HIERARCHY_HH

#include <array>
#include <memory>
#include <queue>
#include <unordered_map>
#include <vector>

#include "cache/cache.hh"
#include "memory/memory.hh"
#include "trace/record.hh"
#include "util/stats.hh"
#include "util/types.hh"

namespace ipref
{

/** Receives notifications about prefetched lines leaving the L1I. */
class PrefetchEvictionListener
{
  public:
    virtual ~PrefetchEvictionListener() = default;

    /** A prefetched line was evicted from @p core's L1I. */
    virtual void prefetchedLineEvicted(CoreId core, Addr lineAddr,
                                       bool used) = 0;

    /** Any instruction line was evicted from @p core's L1I (used by
     *  the confidence filter of [15]). Default: ignored. */
    virtual void
    instrLineEvicted(CoreId core, Addr lineAddr)
    {
        (void)core;
        (void)lineAddr;
    }
};

/** Hierarchy-wide parameters. */
struct HierarchyParams
{
    unsigned numCores = 1;
    CacheParams l1i{"l1i", 32u << 10, 4, 64, ReplPolicy::LRU};
    CacheParams l1d{"l1d", 32u << 10, 4, 64, ReplPolicy::LRU};
    CacheParams l2{"l2", 2u << 20, 4, 64, ReplPolicy::LRU};
    Cycle l1Latency = 4;
    Cycle l2Latency = 25;
    MemoryParams memory;

    /** Selective L2 installation of instruction prefetches (§7). */
    bool prefetchBypassL2 = false;

    /** Limit study: demand I-misses in these groups become hits. */
    std::array<bool, static_cast<std::size_t>(MissGroup::NumGroups)>
        idealEliminate{};

    /** Fully functional mode: all latencies zero, no bandwidth. */
    void
    makeFunctional()
    {
        l1Latency = 0;
        l2Latency = 0;
        memory.latency = 0;
    }
};

/** Result of a demand instruction fetch of one line. */
struct FetchResult
{
    Cycle ready = 0;          //!< when the line can be consumed
    bool l1Hit = false;
    bool firstUseOfPrefetch = false; //!< first hit on a prefetched line
    bool latePrefetchHit = false;    //!< merged with in-flight prefetch
    bool l1Miss = false;      //!< true demand L1I miss
    bool l2Miss = false;      //!< ... that also missed in the L2
    bool eliminated = false;  //!< removed by the ideal filter
    bool fromMemory = false;  //!< satisfied off chip (directly or via
                              //!< the in-flight fill merged with)
};

/** Result of a demand data access. */
struct DataResult
{
    Cycle ready = 0;
    bool l1Hit = false;
    bool l2Miss = false;
};

/** Outcome of a prefetch request handed to the hierarchy. */
enum class PrefetchOutcome
{
    Issued,          //!< a fill was started (from L2 or memory)
    DroppedPresent,  //!< line already in the L1I
    DroppedInFlight, //!< line already being filled for this core
    Merged,          //!< attached to another core's in-flight fill
};

/** Result of a prefetch request. */
struct PrefetchResult
{
    PrefetchOutcome outcome = PrefetchOutcome::Issued;
    Cycle ready = 0;
    bool fromMemory = false; //!< missed L2 and went off chip
};

/**
 * The full on-chip hierarchy shared by all cores of one chip.
 *
 * Time is supplied by callers ("now") and must be monotonically
 * non-decreasing across calls; in-flight fills are drained lazily on
 * every entry point.
 */
class CacheHierarchy
{
  public:
    explicit CacheHierarchy(const HierarchyParams &params);

    const HierarchyParams &params() const { return params_; }

    /** Register @p l to hear about core @p core's L1I evictions. */
    void setEvictionListener(CoreId core, PrefetchEvictionListener *l);

    /**
     * Demand instruction fetch of the line containing @p pc by
     * @p core at @p now; @p transition categorizes a miss.
     */
    FetchResult fetchAccess(CoreId core, Addr pc,
                            FetchTransition transition, Cycle now);

    /** Demand data access (load or store). */
    DataResult dataAccess(CoreId core, Addr addr, bool isWrite,
                          Cycle now);

    /**
     * Instruction prefetch of the line containing @p addr for
     * @p core. The caller (prefetch engine) is expected to have
     * already probed the L1I tags.
     */
    PrefetchResult prefetchRequest(CoreId core, Addr addr, Cycle now);

    /** Tag-only L1I probe (models the prefetcher's tag-port use). */
    bool probeL1I(CoreId core, Addr addr) const;

    /** Complete all in-flight fills (end of simulation). */
    void drainAll();

    /** Line size shared by every level. */
    unsigned lineBytes() const { return params_.l2.lineBytes; }

    /** Line (byte-aligned) of @p addr. */
    Addr
    lineOf(Addr addr) const
    {
        return addr & ~static_cast<Addr>(lineBytes() - 1);
    }

    // --- component access (tests, stats) -----------------------------
    SetAssocCache &l1i(CoreId core) { return *l1i_[core]; }
    SetAssocCache &l1d(CoreId core) { return *l1d_[core]; }
    SetAssocCache &l2() { return l2_; }
    MemoryChannel &memory() { return memory_; }

    // --- demand statistics -------------------------------------------
    Counter fetchLineAccesses;  //!< demand line fetches (all cores)
    Counter l1iMisses;          //!< true L1I demand misses
    Counter l1iEliminated;      //!< misses removed by the ideal filter
    Counter l1iFirstUseHits;    //!< first use of a prefetched L1I line
    Counter l1iLateHits;        //!< demand merged with prefetch fill
    Counter l2iMisses;          //!< demand instruction misses in L2
    Counter l1dAccesses;
    Counter l1dMisses;
    Counter l2dMisses;          //!< demand data misses in L2
    Counter l2WritebacksToMem;
    Counter bypassInstalls;     //!< useful prefetches installed on evict
    Counter bypassDrops;        //!< useless prefetches dropped on evict

    /** L1I demand misses by fetch-transition category. */
    std::array<Counter,
               static_cast<std::size_t>(FetchTransition::NumTransitions)>
        l1iMissByTransition;
    /** L2 demand instruction misses by fetch-transition category. */
    std::array<Counter,
               static_cast<std::size_t>(FetchTransition::NumTransitions)>
        l2iMissByTransition;

    void registerStats(StatGroup &group);

  private:
    struct Fill
    {
        Addr lineAddr = 0;
        Cycle ready = 0;
        bool isPrefetch = false;
        bool demandMerged = false;
        bool isInstr = false;
        bool installL2 = false;
        bool dirty = false;
        bool fromMemory = false; //!< the data is coming from off chip
        CoreId srcCore = 0;
        /** cores whose L1I (instr) or L1D (data) receive the line */
        std::vector<CoreId> targets;
    };
    using FillPtr = std::shared_ptr<Fill>;

    /** Complete fills whose ready time has passed. */
    void drain(Cycle now);

    /** Install a completed fill into its targets. */
    void install(const FillPtr &fill);

    /** Insert into L2, handling dirty-victim writeback. */
    void insertL2(Addr lineAddr, const InsertFlags &flags, Cycle now);

    /** Start a fill and register it in the in-flight map. */
    FillPtr startFill(Addr lineAddr, Cycle ready, bool isPrefetch,
                      bool isInstr, bool installL2, bool dirty,
                      CoreId core);

    HierarchyParams params_;
    std::vector<std::unique_ptr<SetAssocCache>> l1i_;
    std::vector<std::unique_ptr<SetAssocCache>> l1d_;
    SetAssocCache l2_;
    MemoryChannel memory_;
    std::vector<PrefetchEvictionListener *> listeners_;

    std::unordered_map<Addr, FillPtr> inflight_;
    struct FillLater
    {
        bool
        operator()(const FillPtr &a, const FillPtr &b) const
        {
            return a->ready > b->ready;
        }
    };
    std::priority_queue<FillPtr, std::vector<FillPtr>, FillLater>
        fillQueue_;
    Cycle lastNow_ = 0;
};

} // namespace ipref

#endif // IPREF_CACHE_HIERARCHY_HH
