/**
 * @file
 * Parameterizable set-associative cache model with the per-line
 * metadata the paper's schemes need: a prefetched bit, a used bit
 * (prefetch tagging / selective-L2-install), an instruction/data bit
 * and the id of the core that inserted the line (CMP accounting).
 */

#ifndef IPREF_CACHE_CACHE_HH
#define IPREF_CACHE_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "util/stats.hh"
#include "util/types.hh"

namespace ipref
{

/** Replacement policy selection. */
enum class ReplPolicy : std::uint8_t
{
    LRU,
    Random,
};

/** Static cache geometry. */
struct CacheParams
{
    std::string name = "cache";
    std::uint64_t sizeBytes = 32u << 10;
    unsigned assoc = 4;
    unsigned lineBytes = 64;
    ReplPolicy repl = ReplPolicy::LRU;

    /** Number of sets implied by the geometry. */
    std::uint64_t
    numSets() const
    {
        return sizeBytes / (static_cast<std::uint64_t>(assoc) *
                            lineBytes);
    }
};

/** Flags attached to a line when it is inserted. */
struct InsertFlags
{
    bool prefetched = false;
    bool isInstr = false;
    bool dirty = false;
    CoreId srcCore = 0;
};

/** Description of a line pushed out by an insert. */
struct Eviction
{
    bool valid = false;   //!< false: no victim (empty way used)
    Addr lineAddr = 0;    //!< byte address of the victim line
    bool dirty = false;
    bool prefetched = false;
    bool used = false;
    bool isInstr = false;
    CoreId srcCore = 0;
};

/** Result of a demand access. */
struct AccessOutcome
{
    bool hit = false;
    /** Hit on a prefetched line that had never been used before —
     *  the "tagged" trigger and the proof-of-usefulness event. */
    bool firstUseOfPrefetch = false;
};

/**
 * A single-level set-associative cache. Purely functional: latency
 * and in-flight state live in the hierarchy, not here.
 */
class SetAssocCache
{
  public:
    explicit SetAssocCache(const CacheParams &params);

    const CacheParams &params() const { return params_; }

    /** Byte address of the line containing @p addr. */
    Addr lineOf(Addr addr) const { return addr & ~lineMask_; }

    /** Tag-only lookup: no LRU update, no metadata change. */
    bool probe(Addr addr) const;

    /**
     * Demand access. On a hit, updates recency, sets the used bit and
     * (for writes) the dirty bit.
     */
    AccessOutcome access(Addr addr, bool isWrite = false);

    /**
     * Install the line containing @p addr, evicting a victim if the
     * set is full. Re-inserting a resident line just updates flags.
     */
    Eviction insert(Addr addr, const InsertFlags &flags);

    /** Drop the line if present. @return true if it was resident. */
    bool invalidate(Addr addr);

    /** Read-only view of a resident line's metadata (tests/policies). */
    struct MetaView
    {
        bool valid = false;
        bool dirty = false;
        bool prefetched = false;
        bool used = false;
        bool isInstr = false;
        CoreId srcCore = 0;
    };
    MetaView lookup(Addr addr) const;

    /** Number of valid lines (tests). */
    std::uint64_t validLines() const;

    // Demand-access statistics.
    Counter hits;
    Counter misses;
    Counter insertions;
    Counter evictions;

    /** Register this cache's counters in @p group. */
    void registerStats(StatGroup &group);

  private:
    struct Line
    {
        Addr tag = 0;
        std::uint64_t lastTouch = 0;
        bool valid = false;
        bool dirty = false;
        bool prefetched = false;
        bool used = false;
        bool isInstr = false;
        CoreId srcCore = 0;
    };

    std::uint64_t setIndex(Addr addr) const;
    Line *findLine(Addr addr);
    const Line *findLine(Addr addr) const;
    unsigned victimWay(std::uint64_t set);

    CacheParams params_;
    Addr lineMask_;
    unsigned lineShift_;
    std::uint64_t numSets_;
    std::vector<Line> lines_; //!< numSets * assoc, set-major
    std::uint64_t touchClock_ = 0;
    std::uint64_t randState_;
};

} // namespace ipref

#endif // IPREF_CACHE_CACHE_HH
