#include "cache/cache.hh"

#include "util/bitutil.hh"
#include "util/error.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace ipref
{

SetAssocCache::SetAssocCache(const CacheParams &params)
    : params_(params),
      randState_(hashString(params.name) | 1)
{
    if (!isPowerOfTwo(params_.lineBytes))
        ipref_raise(ConfigError, "%s: line size %u not a power of two",
                    params_.name.c_str(), params_.lineBytes);
    if (params_.sizeBytes %
            (static_cast<std::uint64_t>(params_.assoc) *
             params_.lineBytes) != 0)
        ipref_raise(ConfigError, "%s: size %llu not divisible by assoc*line",
                    params_.name.c_str(),
                    static_cast<unsigned long long>(params_.sizeBytes));
    numSets_ = params_.numSets();
    if (!isPowerOfTwo(numSets_))
        ipref_raise(ConfigError, "%s: %llu sets (must be a power of two)",
                    params_.name.c_str(),
                    static_cast<unsigned long long>(numSets_));
    lineShift_ = floorLog2(params_.lineBytes);
    lineMask_ = params_.lineBytes - 1;
    lines_.resize(numSets_ * params_.assoc);
}

std::uint64_t
SetAssocCache::setIndex(Addr addr) const
{
    return (addr >> lineShift_) & (numSets_ - 1);
}

SetAssocCache::Line *
SetAssocCache::findLine(Addr addr)
{
    Addr tag = addr >> lineShift_;
    Line *set = &lines_[setIndex(addr) * params_.assoc];
    for (unsigned w = 0; w < params_.assoc; ++w) {
        if (set[w].valid && set[w].tag == tag)
            return &set[w];
    }
    return nullptr;
}

const SetAssocCache::Line *
SetAssocCache::findLine(Addr addr) const
{
    return const_cast<SetAssocCache *>(this)->findLine(addr);
}

bool
SetAssocCache::probe(Addr addr) const
{
    return findLine(addr) != nullptr;
}

AccessOutcome
SetAssocCache::access(Addr addr, bool isWrite)
{
    AccessOutcome out;
    Line *line = findLine(addr);
    if (!line) {
        ++misses;
        return out;
    }
    ++hits;
    out.hit = true;
    out.firstUseOfPrefetch = line->prefetched && !line->used;
    line->used = true;
    line->lastTouch = ++touchClock_;
    if (isWrite)
        line->dirty = true;
    return out;
}

unsigned
SetAssocCache::victimWay(std::uint64_t set)
{
    Line *base = &lines_[set * params_.assoc];
    // Prefer an invalid way.
    for (unsigned w = 0; w < params_.assoc; ++w)
        if (!base[w].valid)
            return w;
    if (params_.repl == ReplPolicy::Random)
        return static_cast<unsigned>(splitMix64(randState_) %
                                     params_.assoc);
    unsigned victim = 0;
    for (unsigned w = 1; w < params_.assoc; ++w)
        if (base[w].lastTouch < base[victim].lastTouch)
            victim = w;
    return victim;
}

Eviction
SetAssocCache::insert(Addr addr, const InsertFlags &flags)
{
    Eviction ev;
    Addr tag = addr >> lineShift_;
    std::uint64_t set = setIndex(addr);

    if (Line *line = findLine(addr)) {
        // Already resident: merge flags (e.g., writeback marks dirty).
        line->dirty = line->dirty || flags.dirty;
        line->isInstr = flags.isInstr;
        line->lastTouch = ++touchClock_;
        return ev;
    }

    unsigned way = victimWay(set);
    Line &line = lines_[set * params_.assoc + way];
    if (line.valid) {
        ev.valid = true;
        ev.lineAddr = (line.tag << lineShift_);
        ev.dirty = line.dirty;
        ev.prefetched = line.prefetched;
        ev.used = line.used;
        ev.isInstr = line.isInstr;
        ev.srcCore = line.srcCore;
        ++evictions;
    }
    line.valid = true;
    line.tag = tag;
    line.dirty = flags.dirty;
    line.prefetched = flags.prefetched;
    line.used = !flags.prefetched; // demand fills are used by definition
    line.isInstr = flags.isInstr;
    line.srcCore = flags.srcCore;
    line.lastTouch = ++touchClock_;
    ++insertions;
    return ev;
}

bool
SetAssocCache::invalidate(Addr addr)
{
    Line *line = findLine(addr);
    if (!line)
        return false;
    line->valid = false;
    return true;
}

SetAssocCache::MetaView
SetAssocCache::lookup(Addr addr) const
{
    MetaView v;
    const Line *line = findLine(addr);
    if (!line)
        return v;
    v.valid = true;
    v.dirty = line->dirty;
    v.prefetched = line->prefetched;
    v.used = line->used;
    v.isInstr = line->isInstr;
    v.srcCore = line->srcCore;
    return v;
}

std::uint64_t
SetAssocCache::validLines() const
{
    std::uint64_t n = 0;
    for (const auto &l : lines_)
        if (l.valid)
            ++n;
    return n;
}

void
SetAssocCache::registerStats(StatGroup &group)
{
    group.addCounter("hits", &hits, "demand hits");
    group.addCounter("misses", &misses, "demand misses");
    group.addCounter("insertions", &insertions, "lines installed");
    group.addCounter("evictions", &evictions, "valid lines evicted");
}

} // namespace ipref
