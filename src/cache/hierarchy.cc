#include "cache/hierarchy.hh"

#include <algorithm>

#include "util/error.hh"
#include "util/logging.hh"
#include "util/trace_event.hh"

namespace ipref
{

CacheHierarchy::CacheHierarchy(const HierarchyParams &params)
    : params_(params),
      l2_(params.l2),
      memory_(params.memory)
{
    if (params_.numCores == 0)
        ipref_raise(ConfigError, "hierarchy needs at least one core");
    if (params_.l1i.lineBytes != params_.l2.lineBytes ||
        params_.l1d.lineBytes != params_.l2.lineBytes)
        ipref_raise(ConfigError, "hierarchy requires a uniform line size "
                    "(standalone caches support mixed sizes)");
    for (unsigned c = 0; c < params_.numCores; ++c) {
        CacheParams pi = params_.l1i;
        CacheParams pd = params_.l1d;
        pi.name += "." + std::to_string(c);
        pd.name += "." + std::to_string(c);
        l1i_.push_back(std::make_unique<SetAssocCache>(pi));
        l1d_.push_back(std::make_unique<SetAssocCache>(pd));
    }
    listeners_.assign(params_.numCores, nullptr);
}

void
CacheHierarchy::setEvictionListener(CoreId core,
                                    PrefetchEvictionListener *l)
{
    ipref_assert(core < listeners_.size());
    listeners_[core] = l;
}

bool
CacheHierarchy::probeL1I(CoreId core, Addr addr) const
{
    return l1i_[core]->probe(addr);
}

CacheHierarchy::FillPtr
CacheHierarchy::startFill(Addr lineAddr, Cycle ready, bool isPrefetch,
                          bool isInstr, bool installL2, bool dirty,
                          CoreId core)
{
    auto fill = std::make_shared<Fill>();
    fill->lineAddr = lineAddr;
    fill->ready = ready;
    fill->isPrefetch = isPrefetch;
    fill->isInstr = isInstr;
    fill->installL2 = installL2;
    fill->dirty = dirty;
    fill->srcCore = core;
    fill->targets.push_back(core);
    inflight_[lineAddr] = fill;
    fillQueue_.push(fill);
    return fill;
}

void
CacheHierarchy::insertL2(Addr lineAddr, const InsertFlags &flags,
                         Cycle now)
{
    Eviction ev = l2_.insert(lineAddr, flags);
    if (ev.valid && ev.dirty) {
        ++l2WritebacksToMem;
        memory_.write(now);
    }
}

void
CacheHierarchy::install(const FillPtr &fill)
{
    // A fill that a demand access merged with installs as a demand
    // line (used); a pure prefetch installs with the prefetched bit.
    bool as_prefetch = fill->isPrefetch && !fill->demandMerged;

    // A bypassing prefetch that a demand access merged with has
    // proven itself useful while still in flight: install it into
    // the L2 like any demand fill (the selective-install policy only
    // excludes *unproven* prefetches).
    if (fill->isPrefetch && fill->demandMerged && !fill->installL2)
        fill->installL2 = true;

    if (fill->installL2) {
        InsertFlags f;
        f.prefetched = as_prefetch;
        f.isInstr = fill->isInstr;
        f.dirty = fill->dirty;
        f.srcCore = fill->srcCore;
        insertL2(fill->lineAddr, f, fill->ready);
    }

    for (CoreId core : fill->targets) {
        SetAssocCache &l1 =
            fill->isInstr ? *l1i_[core] : *l1d_[core];
        InsertFlags f;
        f.prefetched = as_prefetch && fill->isInstr;
        f.isInstr = fill->isInstr;
        f.dirty = fill->dirty && !fill->isInstr;
        f.srcCore = core;
        IPREF_TRACE(f.prefetched ? TraceEventType::PrefetchFill
                                 : TraceEventType::CacheFill,
                    static_cast<std::uint16_t>(core), fill->lineAddr,
                    0,
                    fill->isInstr ? traceLevelL1I : traceLevelL1D,
                    fill->ready);
        Eviction ev = l1.insert(fill->lineAddr, f);
        if (!ev.valid)
            continue;
        IPREF_TRACE(TraceEventType::CacheEvict,
                    static_cast<std::uint16_t>(core), ev.lineAddr,
                    static_cast<std::uint64_t>(ev.used) |
                        (static_cast<std::uint64_t>(ev.prefetched)
                         << 1),
                    fill->isInstr ? traceLevelL1I : traceLevelL1D,
                    fill->ready);
        if (fill->isInstr) {
            if (listeners_[core])
                listeners_[core]->instrLineEvicted(core,
                                                   ev.lineAddr);
            if (ev.prefetched) {
                if (listeners_[core])
                    listeners_[core]->prefetchedLineEvicted(
                        core, ev.lineAddr, ev.used);
                // Selective L2 install: a prefetched line earns its
                // place in the L2 only by being used.
                if (params_.prefetchBypassL2) {
                    if (ev.used) {
                        ++bypassInstalls;
                        InsertFlags lf;
                        lf.isInstr = true;
                        lf.srcCore = core;
                        insertL2(ev.lineAddr, lf, fill->ready);
                    } else {
                        ++bypassDrops;
                    }
                }
            }
        } else if (ev.dirty) {
            // L1D writeback into the L2.
            InsertFlags lf;
            lf.isInstr = false;
            lf.dirty = true;
            lf.srcCore = core;
            insertL2(ev.lineAddr, lf, fill->ready);
        }
    }
}

void
CacheHierarchy::drain(Cycle now)
{
    ipref_assert(now + 1 > lastNow_); // monotonic time
    lastNow_ = now;
    IPREF_TRACE_SETNOW(now);
    while (!fillQueue_.empty() && fillQueue_.top()->ready <= now) {
        FillPtr fill = fillQueue_.top();
        fillQueue_.pop();
        auto it = inflight_.find(fill->lineAddr);
        if (it != inflight_.end() && it->second == fill)
            inflight_.erase(it);
        install(fill);
    }
}

void
CacheHierarchy::drainAll()
{
    while (!fillQueue_.empty()) {
        FillPtr fill = fillQueue_.top();
        fillQueue_.pop();
        auto it = inflight_.find(fill->lineAddr);
        if (it != inflight_.end() && it->second == fill)
            inflight_.erase(it);
        install(fill);
    }
}

FetchResult
CacheHierarchy::fetchAccess(CoreId core, Addr pc,
                            FetchTransition transition, Cycle now)
{
    drain(now);
    FetchResult res;
    Addr line = lineOf(pc);
    ++fetchLineAccesses;

    AccessOutcome out = l1i_[core]->access(line);
    if (out.hit) {
        res.l1Hit = true;
        res.firstUseOfPrefetch = out.firstUseOfPrefetch;
        if (out.firstUseOfPrefetch)
            ++l1iFirstUseHits;
        res.ready = now + params_.l1Latency;
        IPREF_TRACE(TraceEventType::CacheHit,
                    static_cast<std::uint16_t>(core), line,
                    out.firstUseOfPrefetch,
                    traceDetailPack(traceLevelL1I,
                                    static_cast<std::uint8_t>(transition)), now,
                    pc);
        return res;
    }
    IPREF_TRACE(TraceEventType::CacheMiss,
                static_cast<std::uint16_t>(core), line, 0,
                traceDetailPack(traceLevelL1I,
                                    static_cast<std::uint8_t>(transition)), now, pc);

    // Merge with an in-flight fill?
    auto it = inflight_.find(line);
    if (it != inflight_.end()) {
        FillPtr fill = it->second;
        if (std::find(fill->targets.begin(), fill->targets.end(),
                      core) == fill->targets.end()) {
            fill->targets.push_back(core);
        }
        if (fill->isPrefetch && !fill->demandMerged) {
            fill->demandMerged = true;
            res.latePrefetchHit = true;
            ++l1iLateHits;
        } else if (fill->isPrefetch) {
            // an already-merged prefetch still covers this access
            res.latePrefetchHit = true;
        } else {
            // merged with another core's demand fill: a miss whose
            // latency is shortened
            res.l1Miss = true;
            ++l1iMisses;
            ++l1iMissByTransition[static_cast<std::size_t>(transition)];
        }
        res.fromMemory = fill->fromMemory;
        res.ready = std::max(fill->ready, now + params_.l1Latency);
        return res;
    }

    // True L1I demand miss.
    MissGroup group = missGroup(transition);
    if (params_.idealEliminate[static_cast<std::size_t>(group)]) {
        res.eliminated = true;
        ++l1iEliminated;
        res.ready = now + params_.l1Latency;
        return res;
    }

    res.l1Miss = true;
    ++l1iMisses;
    ++l1iMissByTransition[static_cast<std::size_t>(transition)];

    AccessOutcome l2out = l2_.access(line);
    if (l2out.hit) {
        Cycle ready = now + params_.l2Latency;
        startFill(line, ready, false, true, false, false, core);
        res.ready = ready;
        IPREF_TRACE(TraceEventType::CacheHit,
                    static_cast<std::uint16_t>(core), line, 0,
                    traceDetailPack(traceLevelL2,
                                    static_cast<std::uint8_t>(transition)), now,
                    pc);
        return res;
    }

    res.l2Miss = true;
    ++l2iMisses;
    ++l2iMissByTransition[static_cast<std::size_t>(transition)];
    IPREF_TRACE(TraceEventType::CacheMiss,
                static_cast<std::uint16_t>(core), line, 0,
                traceDetailPack(traceLevelL2,
                                    static_cast<std::uint8_t>(transition)), now, pc);
    Cycle ready = memory_.read(now, false);
    FillPtr fill = startFill(line, ready, false, true, true, false,
                             core);
    fill->fromMemory = true;
    res.fromMemory = true;
    res.ready = ready;
    return res;
}

DataResult
CacheHierarchy::dataAccess(CoreId core, Addr addr, bool isWrite,
                           Cycle now)
{
    drain(now);
    DataResult res;
    Addr line = lineOf(addr);
    ++l1dAccesses;

    AccessOutcome out = l1d_[core]->access(line, isWrite);
    if (out.hit) {
        res.l1Hit = true;
        res.ready = now + params_.l1Latency;
        IPREF_TRACE(TraceEventType::CacheHit,
                    static_cast<std::uint16_t>(core), line, 0,
                    traceLevelL1D, now);
        return res;
    }

    ++l1dMisses;
    IPREF_TRACE(TraceEventType::CacheMiss,
                static_cast<std::uint16_t>(core), line, 0,
                traceLevelL1D, now);

    auto it = inflight_.find(line);
    if (it != inflight_.end()) {
        FillPtr fill = it->second;
        if (std::find(fill->targets.begin(), fill->targets.end(),
                      core) == fill->targets.end())
            fill->targets.push_back(core);
        fill->demandMerged = true;
        if (isWrite)
            fill->dirty = true;
        res.ready = std::max(fill->ready, now + params_.l1Latency);
        return res;
    }

    AccessOutcome l2out = l2_.access(line, false);
    if (l2out.hit) {
        Cycle ready = now + params_.l2Latency;
        FillPtr f = startFill(line, ready, false, false, false,
                              isWrite, core);
        (void)f;
        res.ready = ready;
        return res;
    }

    res.l2Miss = true;
    ++l2dMisses;
    Cycle ready = memory_.read(now, false);
    FillPtr fill = startFill(line, ready, false, false, true, isWrite,
                             core);
    fill->fromMemory = true;
    res.ready = ready;
    return res;
}

PrefetchResult
CacheHierarchy::prefetchRequest(CoreId core, Addr addr, Cycle now)
{
    drain(now);
    PrefetchResult res;
    Addr line = lineOf(addr);

    if (l1i_[core]->probe(line)) {
        res.outcome = PrefetchOutcome::DroppedPresent;
        return res;
    }

    auto it = inflight_.find(line);
    if (it != inflight_.end()) {
        FillPtr fill = it->second;
        if (std::find(fill->targets.begin(), fill->targets.end(),
                      core) != fill->targets.end()) {
            res.outcome = PrefetchOutcome::DroppedInFlight;
            return res;
        }
        fill->targets.push_back(core);
        res.outcome = PrefetchOutcome::Merged;
        res.ready = fill->ready;
        return res;
    }

    AccessOutcome l2out = l2_.access(line);
    if (l2out.hit) {
        Cycle ready = now + params_.l2Latency;
        startFill(line, ready, true, true, false, false, core);
        res.outcome = PrefetchOutcome::Issued;
        res.ready = ready;
        return res;
    }

    Cycle ready = memory_.read(now, true);
    // Selective install: in bypass mode instruction prefetches do not
    // enter the L2 until proven useful.
    bool install_l2 = !params_.prefetchBypassL2;
    FillPtr fill = startFill(line, ready, true, true, install_l2,
                             false, core);
    fill->fromMemory = true;
    res.outcome = PrefetchOutcome::Issued;
    res.ready = ready;
    res.fromMemory = true;
    return res;
}

void
CacheHierarchy::registerStats(StatGroup &group)
{
    group.addCounter("fetch_line_accesses", &fetchLineAccesses);
    group.addCounter("l1i_misses", &l1iMisses);
    group.addCounter("l1i_eliminated", &l1iEliminated,
                     "misses removed by the ideal filter");
    group.addCounter("l1i_first_use_hits", &l1iFirstUseHits,
                     "first use of a prefetched line");
    group.addCounter("l1i_late_hits", &l1iLateHits,
                     "demand merged with in-flight prefetch");
    group.addCounter("l2i_misses", &l2iMisses);
    group.addCounter("l1d_accesses", &l1dAccesses);
    group.addCounter("l1d_misses", &l1dMisses);
    group.addCounter("l2d_misses", &l2dMisses);
    group.addCounter("l2_writebacks_mem", &l2WritebacksToMem);
    group.addCounter("bypass_installs", &bypassInstalls,
                     "useful prefetches installed into L2 on evict");
    group.addCounter("bypass_drops", &bypassDrops,
                     "useless prefetches dropped on evict");
    for (std::size_t i = 0;
         i < static_cast<std::size_t>(FetchTransition::NumTransitions);
         ++i) {
        group.addCounter(
            std::string("l1i_miss.") +
                transitionName(static_cast<FetchTransition>(i)),
            &l1iMissByTransition[i]);
        group.addCounter(
            std::string("l2i_miss.") +
                transitionName(static_cast<FetchTransition>(i)),
            &l2iMissByTransition[i]);
    }
}

} // namespace ipref
