#!/usr/bin/env python3
"""Compare a fresh benchmark JSON report against a checked-in baseline.

Works on the reports bench/perf_throughput and bench/trace_decode
write with --out.  Throughput-style metrics (minstr_per_sec,
mrec_per_sec, speedup_v3_over_v2) are higher-is-better; the fresh
value must stay within --tolerance of the baseline:

    fresh >= baseline * (1 - tolerance)

Anything else in the reports (wall seconds, file sizes, instruction
counts) depends on configuration, not performance, and is ignored.
Context fields (scale, reps, records, cores, workload) are checked
for equality and mismatches reported as warnings — a baseline taken
at a different scale is not comparable, but the comparison still
runs so CI logs show the numbers.

Exit status: 0 when every tracked metric is within tolerance,
1 on a regression or a metric missing from the fresh report,
2 on bad input.

With --update, the comparison still prints but the baseline file is
then rewritten in place with the fresh report (machine upgrades,
intentional perf changes), and the exit status is 0 regardless of
regressions — refreshing a stale baseline is the point.

Usage:
    bench_compare.py BASELINE FRESH [--tolerance 0.5] [--update]

Stdlib only — no third-party dependencies.
"""

import argparse
import json
import sys

# Higher-is-better metrics tracked across commits.
TRACKED = ("minstr_per_sec", "mrec_per_sec", "speedup_v3_over_v2")

# Keys that identify a row inside a report's series array.
IDENTITY_KEYS = ("scheme", "reader", "label", "name")

# Configuration fields that must match for the numbers to be
# comparable at all.
CONTEXT_KEYS = ("benchmark", "workload", "cores", "scale", "reps",
                "records")


def extract(doc):
    """Flatten a report into {(series, metric): value}.

    Top-level tracked numbers get an empty series id; arrays of
    objects contribute one series per identity key value.
    """
    out = {}
    for key, val in doc.items():
        if key in TRACKED and isinstance(val, (int, float)):
            out[("", key)] = float(val)
        elif isinstance(val, list):
            for item in val:
                if not isinstance(item, dict):
                    continue
                ident = next((str(item[k]) for k in IDENTITY_KEYS
                              if k in item), None)
                if ident is None:
                    continue
                for mk, mv in item.items():
                    if mk in TRACKED and isinstance(mv, (int, float)):
                        out[(ident, mk)] = float(mv)
    return out


def context(doc):
    return {k: doc[k] for k in CONTEXT_KEYS if k in doc}


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        print(f"bench_compare: cannot read {path}: {e}",
              file=sys.stderr)
        sys.exit(2)


def main():
    ap = argparse.ArgumentParser(
        description="compare a fresh benchmark report to a baseline")
    ap.add_argument("baseline", help="checked-in baseline JSON")
    ap.add_argument("fresh", help="freshly produced JSON")
    ap.add_argument("--tolerance", type=float, default=0.5,
                    help="allowed fractional slowdown before a "
                         "regression is flagged (default 0.5, i.e. "
                         "fresh must reach 50%% of baseline)")
    ap.add_argument("--update", action="store_true",
                    help="after comparing, rewrite BASELINE with the "
                         "fresh report and exit 0 (intentional "
                         "baseline refresh)")
    args = ap.parse_args()
    if not 0.0 <= args.tolerance < 1.0:
        print("bench_compare: --tolerance must be in [0, 1)",
              file=sys.stderr)
        sys.exit(2)

    base_doc = load(args.baseline)
    fresh_doc = load(args.fresh)

    base_ctx, fresh_ctx = context(base_doc), context(fresh_doc)
    for k in sorted(set(base_ctx) | set(fresh_ctx)):
        if base_ctx.get(k) != fresh_ctx.get(k):
            print(f"warning: context mismatch on '{k}': baseline="
                  f"{base_ctx.get(k)!r} fresh={fresh_ctx.get(k)!r}")

    base = extract(base_doc)
    fresh = extract(fresh_doc)
    if not base:
        print(f"bench_compare: no tracked metrics in {args.baseline}",
              file=sys.stderr)
        sys.exit(2)

    floor = 1.0 - args.tolerance
    rows = []
    failures = 0
    for (series, metric), b in sorted(base.items()):
        f = fresh.get((series, metric))
        if f is None:
            rows.append((series, metric, b, None, None, "MISSING"))
            failures += 1
            continue
        ratio = f / b if b else float("inf")
        ok = ratio >= floor
        rows.append((series, metric, b, f, ratio,
                     "ok" if ok else "REGRESSION"))
        if not ok:
            failures += 1
    for key in sorted(set(fresh) - set(base)):
        print(f"warning: '{key[1]}' [{key[0]}] in fresh report has "
              "no baseline; not compared")

    name = f"{base_doc.get('benchmark', '?')}"
    print(f"bench_compare: {name}  (tolerance {args.tolerance:.0%}, "
          f"floor {floor:.0%} of baseline)")
    width = max((len(s) for s, *_ in rows), default=0)
    for series, metric, b, f, ratio, status in rows:
        sid = series.ljust(width) if series else "-".ljust(width)
        if f is None:
            print(f"  {sid}  {metric:<22} base {b:>10.3f}  "
                  f"fresh    missing              {status}")
        else:
            print(f"  {sid}  {metric:<22} base {b:>10.3f}  "
                  f"fresh {f:>10.3f}  ({ratio:6.1%})  {status}")

    if args.update:
        try:
            with open(args.baseline, "w") as f:
                json.dump(fresh_doc, f, indent=2)
                f.write("\n")
        except OSError as e:
            print(f"bench_compare: cannot rewrite {args.baseline}: "
                  f"{e}", file=sys.stderr)
            sys.exit(2)
        print(f"bench_compare: baseline {args.baseline} updated from "
              f"{args.fresh}"
              + (f" (overrode {failures} regression(s))"
                 if failures else ""))
        return 0

    if failures:
        print(f"bench_compare: {failures} metric(s) below the "
              f"{floor:.0%} floor", file=sys.stderr)
        return 1
    print("bench_compare: all metrics within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
