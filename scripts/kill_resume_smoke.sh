#!/usr/bin/env bash
# Kill-and-resume smoke test for the fault-tolerant batch runner:
# SIGKILL a checkpointed bench sweep mid-batch, resume it, and require
# (a) the runs that completed before the kill are restored from the
#     manifest byte-identically (not re-run), and
# (b) the final JSON report equals an uninterrupted run's, after
#     masking wall-clock-derived fields (the "profile" subtree).
#
# Usage: scripts/kill_resume_smoke.sh [build-dir]
set -euo pipefail

BUILD=${1:-build}
BENCH=$BUILD/bench/fig02_l2_misses
SCALE=${IPREF_SMOKE_SCALE:-0.05}
SEED=${IPREF_SMOKE_SEED:-42}
JOBS=2

if [ ! -x "$BENCH" ]; then
    echo "error: $BENCH not built" >&2
    exit 2
fi

# The trap also reaps the background sweep: if an assertion fails
# between fork and kill, the orphaned bench must not outlive us.
pid=
tmp=$(mktemp -d)
trap '[ -n "$pid" ] && kill -9 "$pid" 2>/dev/null; rm -rf "$tmp"' EXIT

echo "== uninterrupted baseline"
"$BENCH" --scale "$SCALE" --jobs "$JOBS" --seed "$SEED" \
    --stats-json "$tmp/clean.json" \
    --manifest "$tmp/clean_manifest.json" >/dev/null

total=$(python3 -c "import json; print(len(json.load(open('$tmp/clean_manifest.json'))['runs']))")
echo "   $total runs"

echo "== start sweep, SIGKILL mid-batch"
"$BENCH" --scale "$SCALE" --jobs "$JOBS" --seed "$SEED" \
    --stats-json "$tmp/killed.json" \
    --manifest "$tmp/manifest.json" >/dev/null 2>&1 &
pid=$!
# Wait until some (but not all) runs have checkpointed, then kill -9.
for _ in $(seq 1 400); do
    n=$(python3 -c "import json; print(len(json.load(open('$tmp/manifest.json'))['runs']))" 2>/dev/null || echo 0)
    if [ "$n" -ge 1 ] && [ "$n" -lt "$total" ]; then
        break
    fi
    if ! kill -0 "$pid" 2>/dev/null; then
        break
    fi
    sleep 0.02
done
kill -9 "$pid" 2>/dev/null || true
wait "$pid" 2>/dev/null || true

done_at_kill=$(python3 -c "import json; print(len(json.load(open('$tmp/manifest.json'))['runs']))")
echo "   killed with $done_at_kill/$total runs checkpointed"
if [ "$done_at_kill" -ge "$total" ]; then
    echo "warning: batch finished before the kill landed; resume is" \
         "restore-only this time" >&2
fi
cp "$tmp/manifest.json" "$tmp/manifest_at_kill.json"

echo "== resume"
"$BENCH" --scale "$SCALE" --jobs "$JOBS" --seed "$SEED" \
    --stats-json "$tmp/resumed.json" \
    --manifest "$tmp/manifest.json" --resume >/dev/null
pid=

python3 - "$tmp" <<'EOF'
import json, sys

tmp = sys.argv[1]


def load(name):
    with open(f"{tmp}/{name}") as f:
        return json.load(f)


# (a) Entries checkpointed before the kill are byte-identical in the
# final manifest -- completed work was restored, not re-run.
snapshot = {r["fingerprint"]: r for r in load("manifest_at_kill.json")["runs"]}
final = {r["fingerprint"]: r for r in load("manifest.json")["runs"]}
clean = {r["fingerprint"]: r for r in load("clean_manifest.json")["runs"]}

assert set(final) == set(clean), "resumed manifest misses runs"
for fp, entry in snapshot.items():
    if entry["status"] != "ok":
        continue
    assert final[fp] == entry, f"completed run {fp} was re-run on resume"

# Results (exact hex counters) must match the uninterrupted sweep;
# wall_ms is the only nondeterministic manifest field.
for fp, entry in clean.items():
    assert entry["status"] == "ok", f"baseline run {fp} failed"
    assert final[fp]["status"] == "ok", f"resumed run {fp} failed"
    assert final[fp]["results"] == entry["results"], \
        f"run {fp}: resumed results differ from uninterrupted run"

# (b) The final JSON report equals the uninterrupted one after masking
# the wall-clock subtree and the trailing campaign_summary document:
# its trace-cache counters are process-global, so a resumed process
# (which decodes fewer traces) legitimately reports different totals.
def mask(reports):
    reports = [r for r in reports if "campaign_summary" not in r]
    for r in reports:
        r.pop("profile", None)
    return reports


clean_rep = mask(load("clean.json"))
resumed_rep = mask(load("resumed.json"))
assert clean_rep == resumed_rep, \
    "resumed JSON report differs from uninterrupted run"
print(f"   {len(snapshot)} restored + {len(final) - len(snapshot)} "
      f"resumed runs match the uninterrupted sweep")
EOF

echo "kill+resume smoke OK"
