/**
 * @file
 * Cycle-accounting CPI stack: conservation fuzz across schemes and
 * workloads (every timing cycle lands in exactly one bucket), the
 * trace-event reconstruction, interval-delta additivity, the JSON
 * report section and the campaign manifest round trip.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "analysis/analyzer.hh"
#include "sim/campaign.hh"
#include "sim/experiment.hh"
#include "util/trace_event.hh"

using namespace ipref;

namespace
{

std::size_t
busyIdx()
{
    return static_cast<std::size_t>(CycleBucket::Busy);
}

} // namespace

// Every timing-mode cycle is charged to exactly one bucket, on every
// core, for every scheme/workload/core-count combination. System::run
// itself raises InvariantError on a per-core mismatch, so merely
// completing each run is half the assertion.
TEST(CpiStack, ConservationFuzzAcrossSchemesAndWorkloads)
{
    const PrefetchScheme schemes[] = {
        PrefetchScheme::None,
        PrefetchScheme::NextLineTagged,
        PrefetchScheme::NextNLineTagged,
        PrefetchScheme::Discontinuity,
    };
    const WorkloadKind workloads[] = {WorkloadKind::DB,
                                      WorkloadKind::WEB};
    for (bool cmp : {false, true}) {
        for (PrefetchScheme scheme : schemes) {
            for (WorkloadKind w : workloads) {
                RunSpec spec;
                spec.cmp = cmp;
                spec.workloads = {w};
                spec.scheme = scheme;
                spec.instrScale = 0.02;
                SimResults r = runSpec(spec);
                std::uint64_t cores = cmp ? 4 : 1;
                EXPECT_EQ(r.cpiStackTotal(), r.cycles * cores)
                    << "scheme " << schemeName(scheme) << " cmp "
                    << cmp;
                EXPECT_GT(r.cpiStack[busyIdx()], 0u);
            }
        }
    }
}

// Functional mode has no cycle accounting: the stack stays all-zero
// (and the JSON report flags it so consumers skip the cross-check).
TEST(CpiStack, FunctionalModeReportsZeroStack)
{
    RunSpec spec;
    spec.cmp = false;
    spec.workloads = {WorkloadKind::WEB};
    spec.functional = true;
    spec.instrScale = 0.05;
    SimResults r = runSpec(spec);
    EXPECT_GT(r.instructions, 0u);
    EXPECT_EQ(r.cpiStackTotal(), 0u);
}

// The fetch_stall episode events re-sum exactly to the ledger: every
// stall bucket matches, and busy is derivable as the remainder.
TEST(CpiStack, TraceEventsResumToLedger)
{
#if !IPREF_TRACE_EVENTS
    GTEST_SKIP() << "trace events compiled out";
#endif
    RunSpec spec;
    spec.cmp = true;
    spec.workloads = {WorkloadKind::DB};
    spec.scheme = PrefetchScheme::Discontinuity;
    spec.instrScale = 0.05;
    SystemConfig cfg = makeConfig(spec);
    cfg.traceCapacity = 1u << 22; // ample: the ring must not wrap
    System system(cfg);
    SimResults r = system.run();

    ASSERT_NE(system.traceSink(), nullptr);
    ASSERT_EQ(system.traceSink()->dropped(), 0u);
    std::ostringstream os;
    system.traceSink()->writeJsonLines(os);
    std::istringstream is(os.str());
    TraceAnalysis a = analyze(readTraceJsonLines(is));

    std::uint64_t stallSum = 0;
    for (std::size_t b = 0; b < kNumCycleBuckets; ++b) {
        if (b == busyIdx()) {
            EXPECT_EQ(a.stallCycles[b], 0u); // busy is never traced
            continue;
        }
        EXPECT_EQ(a.stallCycles[b], r.cpiStack[b])
            << cycleBucketName(static_cast<CycleBucket>(b));
        stallSum += a.stallCycles[b];
    }
    EXPECT_EQ(r.cycles * cfg.numCores - stallSum,
              r.cpiStack[busyIdx()]);

    // The report's cpi_stack section cross-checks the same way the
    // ipref_analyze CI gate does: exact agreement.
    std::ostringstream report;
    system.dumpJson(report);
    CrossCheck cc = crossCheck(a, parseJson(report.str()));
    EXPECT_TRUE(cc.ok);
    for (const std::string &m : cc.mismatches)
        ADD_FAILURE() << m;
}

// Per-interval stack deltas partition the measurement window: each
// interval's buckets sum to its cycles * cores, and bucket-wise they
// sum to the whole run's stack.
TEST(CpiStack, IntervalDeltasSumToTotal)
{
    RunSpec spec;
    spec.cmp = true;
    spec.workloads = {WorkloadKind::WEB};
    spec.scheme = PrefetchScheme::NextLineTagged;
    spec.instrScale = 0.1;
    SystemConfig cfg = makeConfig(spec);
    cfg.statsIntervalInstrs = 30'000;
    System system(cfg);
    SimResults r = system.run();

    ASSERT_GE(system.samples().size(), 2u);
    std::array<std::uint64_t, kNumCycleBuckets> sum{};
    for (const auto &s : system.samples()) {
        std::uint64_t intervalTotal = 0;
        for (std::size_t b = 0; b < kNumCycleBuckets; ++b) {
            sum[b] += s.delta.cpiStack[b];
            intervalTotal += s.delta.cpiStack[b];
        }
        EXPECT_EQ(intervalTotal, s.delta.cycles * cfg.numCores);
    }
    for (std::size_t b = 0; b < kNumCycleBuckets; ++b)
        EXPECT_EQ(sum[b], r.cpiStack[b])
            << cycleBucketName(static_cast<CycleBucket>(b));
}

// The JSON report carries the stack with the conservation identity
// intact.
TEST(CpiStack, JsonReportSection)
{
    RunSpec spec;
    spec.cmp = false;
    spec.workloads = {WorkloadKind::JAPP};
    spec.scheme = PrefetchScheme::NextLineOnMiss;
    spec.instrScale = 0.05;
    System system(makeConfig(spec));
    system.run();

    std::ostringstream os;
    system.dumpJson(os);
    JsonValue v = parseJson(os.str());

    const JsonValue &cs = v.at("cpi_stack");
    EXPECT_TRUE(cs.at("timing").boolean);
    std::uint64_t cycles = cs.at("cycles").asUint();
    std::uint64_t cores = cs.at("cores").asUint();
    EXPECT_EQ(cs.at("total").asUint(), cycles * cores);
    const JsonValue &buckets = cs.at("buckets");
    std::uint64_t sum = 0;
    for (std::size_t b = 0; b < kNumCycleBuckets; ++b)
        sum += buckets.at(cycleBucketName(static_cast<CycleBucket>(b)))
                   .asUint();
    EXPECT_EQ(sum, cycles * cores);

    // Interval lines carry a bucket-order stack array.
    const JsonValue &intervals = v.at("intervals");
    ASSERT_EQ(intervals.kind, JsonValue::Array);
    if (!intervals.items.empty()) {
        const JsonValue &arr = intervals.items[0].at("cpi_stack");
        ASSERT_EQ(arr.kind, JsonValue::Array);
        EXPECT_EQ(arr.items.size(), kNumCycleBuckets);
    }
}

// Campaign manifests round-trip the stack exactly, and manifests
// written before cycle accounting existed (no cpi_stack key) still
// parse, as all-zero.
TEST(CpiStack, ManifestRoundTripAndBackCompat)
{
    RunSpec spec;
    spec.cmp = true;
    spec.workloads = {WorkloadKind::TPCW};
    spec.scheme = PrefetchScheme::NextNLineTagged;
    spec.instrScale = 0.02;
    SimResults r = runSpec(spec);
    ASSERT_GT(r.cpiStackTotal(), 0u);

    Expected<SimResults> back =
        resultsFromJson(parseJson(resultsToJson(r)));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value().cpiStack, r.cpiStack);
    EXPECT_EQ(resultsToJson(back.value()), resultsToJson(r));

    JsonValue legacy = parseJson(resultsToJson(r));
    legacy.fields.erase("cpi_stack");
    Expected<SimResults> old = resultsFromJson(legacy);
    ASSERT_TRUE(old.ok());
    EXPECT_EQ(old.value().cpiStackTotal(), 0u);
    EXPECT_EQ(old.value().cycles, r.cycles);
}
