/**
 * @file
 * Tests for the cache hierarchy: fill paths, in-flight merging,
 * miss categorization, the ideal-elimination filter and the
 * selective-L2-install (bypass) policy.
 */

#include <gtest/gtest.h>

#include "error_helpers.hh"

#include "cache/hierarchy.hh"
#include "util/rng.hh"

using namespace ipref;

namespace
{

HierarchyParams
timingParams(unsigned cores = 1, bool bypass = false)
{
    HierarchyParams p;
    p.numCores = cores;
    p.prefetchBypassL2 = bypass;
    return p;
}

HierarchyParams
functionalParams(unsigned cores = 1, bool bypass = false)
{
    HierarchyParams p = timingParams(cores, bypass);
    p.makeFunctional();
    return p;
}

constexpr Addr codeA = 0x10000000;
constexpr Addr codeB = 0x10010000;
constexpr Addr dataA = 0x2000000000;

/** Records eviction callbacks. */
struct Listener : public PrefetchEvictionListener
{
    struct Event
    {
        CoreId core;
        Addr line;
        bool used;
    };
    std::vector<Event> events;

    void
    prefetchedLineEvicted(CoreId core, Addr line, bool used) override
    {
        events.push_back({core, line, used});
    }
};

} // namespace

TEST(Hierarchy, FetchMissLatencies)
{
    CacheHierarchy h(timingParams());
    // Cold miss goes to memory: 400 cycles.
    FetchResult r =
        h.fetchAccess(0, codeA, FetchTransition::Sequential, 0);
    EXPECT_TRUE(r.l1Miss);
    EXPECT_TRUE(r.l2Miss);
    EXPECT_EQ(r.ready, 400u);
    // After the fill, an access hits in the L1I with 4-cycle latency.
    r = h.fetchAccess(0, codeA, FetchTransition::Sequential, 1000);
    EXPECT_TRUE(r.l1Hit);
    EXPECT_EQ(r.ready, 1004u);
}

TEST(Hierarchy, L2HitPath)
{
    CacheHierarchy h(timingParams());
    h.fetchAccess(0, codeA, FetchTransition::Sequential, 0);
    // Evict codeA from the tiny... actually invalidate L1I directly.
    h.drainAll();
    h.l1i(0).invalidate(codeA);
    FetchResult r =
        h.fetchAccess(0, codeA, FetchTransition::Sequential, 1000);
    EXPECT_TRUE(r.l1Miss);
    EXPECT_FALSE(r.l2Miss);
    EXPECT_EQ(r.ready, 1025u);
}

TEST(Hierarchy, DemandMergesWithInflightPrefetch)
{
    CacheHierarchy h(timingParams());
    PrefetchResult pr = h.prefetchRequest(0, codeA, 0);
    EXPECT_EQ(pr.outcome, PrefetchOutcome::Issued);
    EXPECT_TRUE(pr.fromMemory);
    // Demand arrives at cycle 100: late prefetch hit, residual wait.
    FetchResult r =
        h.fetchAccess(0, codeA, FetchTransition::Sequential, 100);
    EXPECT_TRUE(r.latePrefetchHit);
    EXPECT_FALSE(r.l1Miss);
    EXPECT_EQ(r.ready, pr.ready);
    EXPECT_EQ(h.l1iLateHits.value(), 1u);
}

TEST(Hierarchy, PrefetchFirstUseDetected)
{
    CacheHierarchy h(functionalParams());
    h.prefetchRequest(0, codeA, 0);
    FetchResult r =
        h.fetchAccess(0, codeA, FetchTransition::Sequential, 1);
    EXPECT_TRUE(r.l1Hit);
    EXPECT_TRUE(r.firstUseOfPrefetch);
    EXPECT_EQ(h.l1iFirstUseHits.value(), 1u);
    r = h.fetchAccess(0, codeA, FetchTransition::Sequential, 2);
    EXPECT_FALSE(r.firstUseOfPrefetch);
}

TEST(Hierarchy, PrefetchDroppedWhenPresent)
{
    CacheHierarchy h(functionalParams());
    h.fetchAccess(0, codeA, FetchTransition::Sequential, 0);
    PrefetchResult pr = h.prefetchRequest(0, codeA, 1);
    EXPECT_EQ(pr.outcome, PrefetchOutcome::DroppedPresent);
}

TEST(Hierarchy, PrefetchDroppedWhenInFlight)
{
    CacheHierarchy h(timingParams());
    h.prefetchRequest(0, codeA, 0);
    PrefetchResult pr = h.prefetchRequest(0, codeA, 1);
    EXPECT_EQ(pr.outcome, PrefetchOutcome::DroppedInFlight);
}

TEST(Hierarchy, CrossCoreMerge)
{
    CacheHierarchy h(timingParams(2));
    h.fetchAccess(0, codeA, FetchTransition::Sequential, 0);
    FetchResult r =
        h.fetchAccess(1, codeA, FetchTransition::Sequential, 10);
    // Core 1 misses but merges with core 0's in-flight demand fill.
    EXPECT_TRUE(r.l1Miss);
    EXPECT_FALSE(r.l2Miss);
    EXPECT_EQ(r.ready, 400u);
    // Both L1Is receive the line.
    h.drainAll();
    EXPECT_TRUE(h.l1i(0).probe(codeA));
    EXPECT_TRUE(h.l1i(1).probe(codeA));
}

TEST(Hierarchy, MissCategorization)
{
    CacheHierarchy h(functionalParams());
    h.fetchAccess(0, codeA, FetchTransition::Sequential, 0);
    h.fetchAccess(0, codeB, FetchTransition::Call, 1);
    h.fetchAccess(0, codeB + 64, FetchTransition::CondTakenFwd, 2);
    EXPECT_EQ(h.l1iMissByTransition[static_cast<std::size_t>(
                                        FetchTransition::Sequential)]
                  .value(),
              1u);
    EXPECT_EQ(h.l1iMissByTransition[static_cast<std::size_t>(
                                        FetchTransition::Call)]
                  .value(),
              1u);
    EXPECT_EQ(
        h.l1iMissByTransition[static_cast<std::size_t>(
                                  FetchTransition::CondTakenFwd)]
            .value(),
        1u);
}

TEST(Hierarchy, IdealEliminationFilter)
{
    HierarchyParams p = functionalParams();
    p.idealEliminate[static_cast<std::size_t>(MissGroup::Function)] =
        true;
    CacheHierarchy h(p);
    FetchResult r = h.fetchAccess(0, codeA, FetchTransition::Call, 0);
    EXPECT_TRUE(r.eliminated);
    EXPECT_FALSE(r.l1Miss);
    EXPECT_EQ(h.l1iEliminated.value(), 1u);
    EXPECT_EQ(h.l1iMisses.value(), 0u);
    // Non-eliminated categories still miss.
    r = h.fetchAccess(0, codeB, FetchTransition::Sequential, 1);
    EXPECT_TRUE(r.l1Miss);
    // Eliminated lines are NOT installed: next access repeats.
    r = h.fetchAccess(0, codeA, FetchTransition::Call, 2);
    EXPECT_TRUE(r.eliminated);
}

TEST(Hierarchy, DataPathAndWriteback)
{
    CacheHierarchy h(functionalParams());
    DataResult d = h.dataAccess(0, dataA, true, 0);
    EXPECT_FALSE(d.l1Hit);
    EXPECT_TRUE(d.l2Miss);
    d = h.dataAccess(0, dataA, false, 1);
    EXPECT_TRUE(d.l1Hit);
    EXPECT_TRUE(h.l1d(0).lookup(dataA).dirty);

    // Conflict-evict the dirty line: it must be written to the L2.
    std::uint64_t sets =
        h.l1d(0).params().numSets();
    unsigned assoc = h.l1d(0).params().assoc;
    for (unsigned i = 1; i <= assoc; ++i)
        h.dataAccess(0, dataA + i * sets * 64, false, 10 + i);
    h.drainAll();
    EXPECT_FALSE(h.l1d(0).probe(dataA));
    EXPECT_TRUE(h.l2().lookup(dataA).dirty);
}

TEST(Hierarchy, BypassUnusedPrefetchNeverEntersL2)
{
    CacheHierarchy h(functionalParams(1, /*bypass=*/true));
    h.prefetchRequest(0, codeA, 0);
    h.fetchAccess(0, codeB, FetchTransition::Sequential, 1);
    EXPECT_TRUE(h.l1i(0).probe(codeA));
    EXPECT_FALSE(h.l2().probe(codeA)); // bypassed

    // Conflict-evict codeA unused from the L1I.
    std::uint64_t sets = h.l1i(0).params().numSets();
    unsigned assoc = h.l1i(0).params().assoc;
    for (unsigned i = 1; i <= assoc; ++i)
        h.fetchAccess(0, codeA + i * sets * 64,
                      FetchTransition::Sequential, 10 + i);
    h.drainAll();
    EXPECT_FALSE(h.l1i(0).probe(codeA));
    EXPECT_FALSE(h.l2().probe(codeA)); // dropped entirely
    EXPECT_EQ(h.bypassDrops.value(), 1u);
    EXPECT_EQ(h.bypassInstalls.value(), 0u);
}

TEST(Hierarchy, BypassUsedPrefetchInstalledOnEvict)
{
    CacheHierarchy h(functionalParams(1, /*bypass=*/true));
    h.prefetchRequest(0, codeA, 0);
    FetchResult r =
        h.fetchAccess(0, codeA, FetchTransition::Sequential, 1);
    EXPECT_TRUE(r.firstUseOfPrefetch); // proven useful
    EXPECT_FALSE(h.l2().probe(codeA)); // still not in L2

    std::uint64_t sets = h.l1i(0).params().numSets();
    unsigned assoc = h.l1i(0).params().assoc;
    for (unsigned i = 1; i <= assoc; ++i)
        h.fetchAccess(0, codeA + i * sets * 64,
                      FetchTransition::Sequential, 10 + i);
    h.drainAll();
    EXPECT_FALSE(h.l1i(0).probe(codeA));
    EXPECT_TRUE(h.l2().probe(codeA)); // installed on eviction
    EXPECT_EQ(h.bypassInstalls.value(), 1u);
}

TEST(Hierarchy, BypassDemandMergedPrefetchInstallsL2)
{
    CacheHierarchy h(timingParams(1, /*bypass=*/true));
    h.prefetchRequest(0, codeA, 0);
    FetchResult r =
        h.fetchAccess(0, codeA, FetchTransition::Sequential, 10);
    EXPECT_TRUE(r.latePrefetchHit);
    h.drainAll();
    // Proven useful while in flight: goes to L2 like a demand fill.
    EXPECT_TRUE(h.l2().probe(codeA));
}

TEST(Hierarchy, NoBypassPrefetchInstallsL2Immediately)
{
    CacheHierarchy h(functionalParams(1, /*bypass=*/false));
    h.prefetchRequest(0, codeA, 0);
    h.fetchAccess(0, codeB, FetchTransition::Sequential, 1);
    EXPECT_TRUE(h.l2().probe(codeA)); // pollution path
}

TEST(Hierarchy, EvictionListenerFires)
{
    CacheHierarchy h(functionalParams());
    Listener listener;
    h.setEvictionListener(0, &listener);
    h.prefetchRequest(0, codeA, 0);
    h.fetchAccess(0, codeB, FetchTransition::Sequential, 1);
    std::uint64_t sets = h.l1i(0).params().numSets();
    unsigned assoc = h.l1i(0).params().assoc;
    for (unsigned i = 1; i <= assoc; ++i)
        h.fetchAccess(0, codeA + i * sets * 64,
                      FetchTransition::Sequential, 10 + i);
    h.drainAll();
    ASSERT_EQ(listener.events.size(), 1u);
    EXPECT_EQ(listener.events[0].line, codeA);
    EXPECT_FALSE(listener.events[0].used);
    EXPECT_EQ(listener.events[0].core, 0u);
}

TEST(Hierarchy, UniformReuseConvergesToCompulsoryMisses)
{
    // 128KB of uniformly reused data: after first touch, everything
    // must live in the 2MB L2 (only 2048 compulsory misses).
    CacheHierarchy h(functionalParams());
    Rng rng(42);
    for (int i = 0; i < 200000; ++i)
        h.dataAccess(0, dataA + rng.below(2048) * 64, false, i);
    EXPECT_EQ(h.l2dMisses.value(), 2048u);
}

TEST(Hierarchy, MismatchedLineSizesThrow)
{
    HierarchyParams p = timingParams();
    p.l1i.lineBytes = 32;
    test::expectThrows<ConfigError>([&] { CacheHierarchy h{p}; },
                                    "uniform line size");
}

TEST(Hierarchy, SharedL2SeenByAllCores)
{
    CacheHierarchy h(functionalParams(4));
    h.fetchAccess(0, codeA, FetchTransition::Sequential, 0);
    h.fetchAccess(1, codeA, FetchTransition::Sequential, 1);
    // Core 1 missed its private L1I but hit the shared L2.
    EXPECT_EQ(h.l1iMisses.value(), 2u);
    EXPECT_EQ(h.l2iMisses.value(), 1u);
}
