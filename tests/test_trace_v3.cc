/**
 * @file
 * Tests for the v3 columnar trace format, the mmap reader, the shared
 * TraceCache and the redesigned TraceSource/RunSpec APIs: round-trip
 * fidelity, v2->v3 conversion replay equivalence, corruption fuzzing,
 * decode sharing under a parallel batch, and Builder validation.
 */

#include <gtest/gtest.h>

#include "error_helpers.hh"

#include <cstdio>
#include <fstream>
#include <random>
#include <vector>

#include "sim/campaign.hh"
#include "sim/experiment.hh"
#include "trace/trace_cache.hh"
#include "trace/trace_file.hh"
#include "trace/trace_source.hh"
#include "trace/trace_v3.hh"
#include "util/crc32.hh"
#include "workload/presets.hh"

using namespace ipref;

namespace
{

/** A deterministic, column-exercising instruction stream. */
std::vector<InstrRecord>
syntheticStream(std::size_t n, std::uint32_t seed = 1)
{
    std::mt19937 rng(seed);
    std::vector<InstrRecord> recs;
    recs.reserve(n);
    Addr pc = 0x400000;
    for (std::size_t i = 0; i < n; ++i) {
        InstrRecord r;
        r.pc = pc;
        unsigned roll = rng() % 100;
        if (roll < 8) {
            r.op = OpClass::CondBranch;
            r.taken = (rng() & 1) != 0;
            r.target = pc + (rng() % 2 ? 0x40 : -0x80);
        } else if (roll < 12) {
            r.op = OpClass::Call;
            r.taken = true;
            r.target = 0x500000 + (rng() % 64) * 0x100;
        } else if (roll < 40) {
            r.op = OpClass::Load;
            r.dataAddr = 0x900000 + (rng() % 4096) * 8;
        } else if (roll < 50) {
            r.op = OpClass::Store;
            r.dataAddr = 0xa00000 + (rng() % 4096) * 8;
        } else {
            r.op = OpClass::IntAlu;
        }
        r.srcReg[0] = static_cast<std::uint8_t>(rng() % 32);
        r.srcReg[1] = static_cast<std::uint8_t>(rng() % 32);
        r.dstReg = static_cast<std::uint8_t>(rng() % 32);
        recs.push_back(r);
        pc = r.redirects() ? r.target : pc + instrBytes;
    }
    return recs;
}

void
writeTraceFile(const std::string &path,
               const std::vector<InstrRecord> &recs,
               TraceFormat format = TraceFormat::V3,
               std::uint32_t blockRecords = 0,
               bool dataAddresses = true)
{
    TraceFileWriter writer(path, blockRecords, format, dataAddresses);
    for (const InstrRecord &rec : recs)
        writer.write(rec);
    writer.close();
}

void
expectSameRecords(const std::vector<InstrRecord> &got,
                  const std::vector<InstrRecord> &want)
{
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
        const InstrRecord &g = got[i], &w = want[i];
        ASSERT_EQ(g.pc, w.pc) << "record " << i;
        ASSERT_EQ(g.op, w.op) << "record " << i;
        ASSERT_EQ(g.taken, w.taken) << "record " << i;
        ASSERT_EQ(g.target, w.target) << "record " << i;
        ASSERT_EQ(g.dataAddr, w.dataAddr) << "record " << i;
        ASSERT_EQ(g.srcReg[0], w.srcReg[0]) << "record " << i;
        ASSERT_EQ(g.srcReg[1], w.srcReg[1]) << "record " << i;
        ASSERT_EQ(g.dstReg, w.dstReg) << "record " << i;
    }
}

/** Drain a source via next() into a vector. */
std::vector<InstrRecord>
drainNext(TraceSource &src)
{
    std::vector<InstrRecord> out;
    InstrRecord r;
    while (src.next(r))
        out.push_back(r);
    return out;
}

/** Drain a source via nextBatch() with an odd batch size. */
std::vector<InstrRecord>
drainBatch(TraceSource &src, std::size_t batch = 37)
{
    std::vector<InstrRecord> out;
    std::vector<InstrRecord> buf(batch);
    for (;;) {
        std::size_t got = src.nextBatch(
            std::span<InstrRecord>(buf.data(), buf.size()));
        out.insert(out.end(), buf.begin(),
                   buf.begin() + static_cast<std::ptrdiff_t>(got));
        if (got < buf.size())
            return out;
    }
}

std::vector<unsigned char>
readFileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good());
    return std::vector<unsigned char>(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
}

void
writeFileBytes(const std::string &path,
               const std::vector<unsigned char> &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char *>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
}

} // namespace

// --- round-trip -------------------------------------------------------

TEST(TraceV3, WriterDefaultsToV3)
{
    std::string path = ::testing::TempDir() + "v3_default.trc";
    writeTraceFile(path, syntheticStream(100));
    auto reader = openTraceReader(path);
    EXPECT_EQ(reader->version(), 3u);
    EXPECT_NE(dynamic_cast<MappedTraceReader *>(reader.get()),
              nullptr);
    std::remove(path.c_str());
}

TEST(TraceV3, RoundTripAllColumns)
{
    std::string path = ::testing::TempDir() + "v3_rt.trc";
    // Multiple blocks plus a partial trailing block.
    std::vector<InstrRecord> truth =
        syntheticStream(3 * traceV3DefaultBlockRecords / 2);
    writeTraceFile(path, truth);

    auto reader = openTraceReader(path);
    EXPECT_EQ(reader->count(), truth.size());
    expectSameRecords(drainNext(*reader), truth);
    EXPECT_EQ(reader->delivered(), truth.size());
    EXPECT_FALSE(reader->corrupt());
    std::remove(path.c_str());
}

TEST(TraceV3, ResetRewinds)
{
    std::string path = ::testing::TempDir() + "v3_reset.trc";
    std::vector<InstrRecord> truth = syntheticStream(1000);
    writeTraceFile(path, truth, TraceFormat::V3, 64);
    auto reader = openTraceReader(path);
    expectSameRecords(drainNext(*reader), truth);
    reader->reset();
    expectSameRecords(drainBatch(*reader), truth);
    std::remove(path.c_str());
}

TEST(TraceV3, EmptyFileRoundTrips)
{
    std::string path = ::testing::TempDir() + "v3_empty.trc";
    writeTraceFile(path, {});
    auto reader = openTraceReader(path);
    EXPECT_EQ(reader->count(), 0u);
    InstrRecord r;
    EXPECT_FALSE(reader->next(r));
    std::remove(path.c_str());
}

TEST(TraceV3, SingleRecordAndTinyBlocks)
{
    std::string path = ::testing::TempDir() + "v3_tiny.trc";
    std::vector<InstrRecord> truth = syntheticStream(11, 7);
    writeTraceFile(path, truth, TraceFormat::V3, /*blockRecords=*/4);
    auto reader = openTraceReader(path);
    expectSameRecords(drainNext(*reader), truth);
    std::remove(path.c_str());
}

TEST(TraceV3, DroppedDataAddressColumn)
{
    std::string path = ::testing::TempDir() + "v3_nodata.trc";
    std::vector<InstrRecord> truth = syntheticStream(500);
    writeTraceFile(path, truth, TraceFormat::V3, 0,
                   /*dataAddresses=*/false);
    for (InstrRecord &r : truth)
        r.dataAddr = 0; // the column was dropped on write
    auto reader = openTraceReader(path);
    auto *mapped = dynamic_cast<MappedTraceReader *>(reader.get());
    ASSERT_NE(mapped, nullptr);
    EXPECT_FALSE(mapped->hasDataAddresses());
    expectSameRecords(drainNext(*reader), truth);
    std::remove(path.c_str());
}

TEST(TraceV3, StdioReaderRejectsV3Files)
{
    std::string path = ::testing::TempDir() + "v3_reject.trc";
    writeTraceFile(path, syntheticStream(10));
    test::expectThrows<TraceError>([&] { TraceFileReader r{path}; },
                                   "v3 trace file");
    std::remove(path.c_str());
}

TEST(TraceV3, SlicedCrcMatchesBytewise)
{
    std::mt19937 rng(99);
    std::vector<unsigned char> data(4099);
    for (auto &b : data)
        b = static_cast<unsigned char>(rng());
    for (std::size_t n : {0u, 1u, 7u, 8u, 9u, 64u, 4099u}) {
        EXPECT_EQ(crc32Sliced(data.data(), n),
                  crc32(data.data(), n))
            << "n=" << n;
    }
    // Incremental seeding agrees too.
    std::uint32_t a = crc32(data.data(), 100);
    EXPECT_EQ(crc32Sliced(data.data() + 100, 999, a),
              crc32(data.data() + 100, 999, a));
}

// --- conversion golden ------------------------------------------------

TEST(TraceV3, ConvertedV2ReplaysBitIdentically)
{
    std::string v2 = ::testing::TempDir() + "conv_v2.trc";
    std::string v3 = ::testing::TempDir() + "conv_v3.trc";
    std::vector<InstrRecord> truth = syntheticStream(20000, 5);
    writeTraceFile(v2, truth, TraceFormat::V2);

    // Convert exactly as `ipref_trace convert` does.
    {
        auto reader = openTraceReader(v2);
        TraceFileWriter writer(v3);
        InstrRecord r;
        while (reader->next(r))
            writer.write(r);
        writer.close();
    }
    {
        auto r2 = openTraceReader(v2);
        auto r3 = openTraceReader(v3);
        expectSameRecords(drainBatch(*r3), drainBatch(*r2));
    }

    // Replaying either file produces bit-identical SimResults.
    auto replay = [](const std::string &path) {
        return runSpec(RunSpec::builder()
                           .cmp(false)
                           .functional()
                           .traceFile(path)
                           .instrScale(0.02)
                           .build());
    };
    SimResults a = replay(v2);
    SimResults b = replay(v3);
    EXPECT_EQ(resultsToJson(a), resultsToJson(b));
    std::remove(v2.c_str());
    std::remove(v3.c_str());
}

// --- damage -----------------------------------------------------------

TEST(TraceV3, TruncationStrictThrowsTolerantSalvages)
{
    std::string path = ::testing::TempDir() + "v3_trunc.trc";
    std::vector<InstrRecord> truth = syntheticStream(2000, 3);
    writeTraceFile(path, truth, TraceFormat::V3, 256);
    std::vector<unsigned char> intact = readFileBytes(path);

    // Clip at several depths, from mid-payload to mid-frame-header.
    for (std::size_t clip : {1u, 5u, 200u, 997u}) {
        ASSERT_GT(intact.size(), clip);
        std::vector<unsigned char> cut(intact.begin(),
                                       intact.end() -
                                           static_cast<std::ptrdiff_t>(
                                               clip));
        writeFileBytes(path, cut);

        test::expectThrows<TraceError>(
            [&] {
                auto r =
                    openTraceReader(path, TraceReadMode::Strict);
                drainNext(*r);
            },
            "");

        auto reader = openTraceReader(path, TraceReadMode::Tolerant);
        std::vector<InstrRecord> got = drainNext(*reader);
        EXPECT_TRUE(reader->corrupt());
        EXPECT_FALSE(reader->corruptionDetail().empty());
        // Whole blocks up to the damage decode exactly; never garbage.
        ASSERT_LE(got.size(), truth.size());
        EXPECT_EQ(got.size() % 256, 0u);
        expectSameRecords(got,
                          std::vector<InstrRecord>(
                              truth.begin(),
                              truth.begin() +
                                  static_cast<std::ptrdiff_t>(
                                      got.size())));
    }
    std::remove(path.c_str());
}

TEST(TraceV3, BitFlipFuzzNeverYieldsGarbage)
{
    std::string path = ::testing::TempDir() + "v3_fuzz.trc";
    std::vector<InstrRecord> truth = syntheticStream(3000, 11);
    writeTraceFile(path, truth, TraceFormat::V3, 128);
    std::vector<unsigned char> intact = readFileBytes(path);

    std::mt19937 rng(1234);
    for (int trial = 0; trial < 60; ++trial) {
        std::vector<unsigned char> bytes = intact;
        // Flip one bit anywhere past the header (header damage is
        // always fatal and covered separately).
        std::size_t at = traceV3HeaderBytes +
                         rng() % (bytes.size() - traceV3HeaderBytes);
        bytes[at] ^= static_cast<unsigned char>(1u << (rng() % 8));
        writeFileBytes(path, bytes);

        auto reader = openTraceReader(path, TraceReadMode::Tolerant);
        std::vector<InstrRecord> got = drainNext(*reader);
        // Every delivered record must match the original stream —
        // damage may shorten the stream but never corrupt it.
        ASSERT_LE(got.size(), truth.size()) << "trial " << trial;
        expectSameRecords(got,
                          std::vector<InstrRecord>(
                              truth.begin(),
                              truth.begin() +
                                  static_cast<std::ptrdiff_t>(
                                      got.size())));
        if (got.size() != truth.size())
            EXPECT_TRUE(reader->corrupt()) << "trial " << trial;
    }

    std::remove(path.c_str());
}

TEST(TraceV3, HeaderDamageIsFatalEvenTolerant)
{
    std::string path = ::testing::TempDir() + "v3_hdr.trc";
    writeTraceFile(path, syntheticStream(100));
    std::vector<unsigned char> bytes = readFileBytes(path);
    bytes[9] ^= 0xff; // record count, protected by the header CRC
    writeFileBytes(path, bytes);
    test::expectThrows<TraceError>(
        [&] { openTraceReader(path, TraceReadMode::Tolerant); },
        "header CRC");
    std::remove(path.c_str());
}

// --- TraceCache -------------------------------------------------------

TEST(TraceCache, SharesOneDecodeAcrossAcquires)
{
    std::string path = ::testing::TempDir() + "cache_share.trc";
    std::vector<InstrRecord> truth = syntheticStream(500);
    writeTraceFile(path, truth);
    TraceCache::instance().clear();

    auto a = TraceCache::instance().acquire(path);
    auto b = TraceCache::instance().acquire(path);
    EXPECT_EQ(a.get(), b.get());
    TraceCache::Stats s = TraceCache::instance().stats();
    EXPECT_EQ(s.decodes, 1u);
    EXPECT_EQ(s.hits, 1u);

    CachedTraceSource src(a);
    expectSameRecords(drainBatch(src), truth);
    EXPECT_EQ(src.sizeHint(), truth.size());

    TraceCache::instance().clear();
    std::remove(path.c_str());
}

TEST(TraceCache, RewrittenFileIsReloaded)
{
    std::string path = ::testing::TempDir() + "cache_stale.trc";
    writeTraceFile(path, syntheticStream(100, 1));
    TraceCache::instance().clear();
    auto a = TraceCache::instance().acquire(path);
    EXPECT_EQ(a->records.size(), 100u);

    writeTraceFile(path, syntheticStream(150, 2));
    auto b = TraceCache::instance().acquire(path);
    EXPECT_EQ(b->records.size(), 150u);
    TraceCache::Stats s = TraceCache::instance().stats();
    EXPECT_EQ(s.decodes, 2u);
    EXPECT_EQ(s.staleReloads, 1u);
    // The old decode stays valid for holders of the old handle.
    EXPECT_EQ(a->records.size(), 100u);

    TraceCache::instance().clear();
    std::remove(path.c_str());
}

TEST(TraceCache, StrictAcquireOfDamagedFileThrows)
{
    std::string path = ::testing::TempDir() + "cache_damaged.trc";
    writeTraceFile(path, syntheticStream(1000), TraceFormat::V3, 128);
    std::vector<unsigned char> bytes = readFileBytes(path);
    bytes[bytes.size() - 3] ^= 0x40;
    writeFileBytes(path, bytes);
    TraceCache::instance().clear();

    test::expectThrows<TraceError>(
        [&] { TraceCache::instance().acquire(path); }, "");
    // Tolerant acquire of the same entry salvages the prefix.
    auto t = TraceCache::instance().acquire(path,
                                            TraceReadMode::Tolerant);
    EXPECT_TRUE(t->corrupt);
    EXPECT_LT(t->records.size(), 1000u);

    TraceCache::instance().clear();
    std::remove(path.c_str());
}

TEST(TraceCache, ParallelBatchSharingOneTraceDecodesOnce)
{
    std::string path = ::testing::TempDir() + "cache_jobs.trc";
    writeTraceFile(path, syntheticStream(5000, 21));
    TraceCache::instance().clear();

    std::vector<RunSpec> specs;
    for (int i = 0; i < 8; ++i)
        specs.push_back(RunSpec::builder()
                            .cmp(false)
                            .functional()
                            .traceFile(path)
                            .instrScale(0.01)
                            .baseSeed(100 + i)
                            .build());

    BatchOptions batch;
    batch.jobs = 8;
    std::vector<RunOutcome> outcomes = runBatch(specs, batch);
    ASSERT_EQ(outcomes.size(), 8u);
    for (const RunOutcome &o : outcomes)
        EXPECT_TRUE(o.ok()) << o.error;

    // The acceptance assertion: 8 concurrent runs over one shared
    // trace perform exactly one decode; the rest are cache hits.
    TraceCache::Stats s = TraceCache::instance().stats();
    EXPECT_EQ(s.decodes, 1u);
    EXPECT_EQ(s.hits, 7u);

    // Sharing does not change results: the same spec unshared is
    // bit-identical.
    TraceSpec unshared = TraceSpec::file(path);
    unshared.shared = false;
    SimResults direct = runSpec(RunSpec::Builder(specs[0])
                                    .trace(unshared)
                                    .build());
    EXPECT_EQ(resultsToJson(direct),
              resultsToJson(outcomes[0].results));

    TraceCache::instance().clear();
    std::remove(path.c_str());
}

// --- TraceSource API --------------------------------------------------

TEST(TraceSourceApi, NextAndNextBatchAgreeAcrossSources)
{
    std::vector<InstrRecord> truth = syntheticStream(701, 13);

    std::string v2 = ::testing::TempDir() + "agree_v2.trc";
    std::string v3 = ::testing::TempDir() + "agree_v3.trc";
    writeTraceFile(v2, truth, TraceFormat::V2);
    writeTraceFile(v3, truth, TraceFormat::V3, 64);

    for (const std::string &path : {v2, v3}) {
        auto a = openTraceReader(path);
        auto b = openTraceReader(path);
        expectSameRecords(drainNext(*a), drainBatch(*b));
    }

    VectorTraceSource vecNext(truth), vecBatch(truth);
    expectSameRecords(drainNext(vecNext), drainBatch(vecBatch));

    // Looping sources: compare a bounded prefix.
    VectorTraceSource innerA(truth), innerB(truth);
    LoopingTraceSource loopA(innerA), loopB(innerB);
    std::vector<InstrRecord> viaNext(1800), viaBatch(1800);
    for (auto &r : viaNext)
        ASSERT_TRUE(loopA.next(r));
    ASSERT_EQ(loopB.nextBatch(std::span<InstrRecord>(
                  viaBatch.data(), viaBatch.size())),
              viaBatch.size());
    expectSameRecords(viaBatch, viaNext);

    std::remove(v2.c_str());
    std::remove(v3.c_str());
}

TEST(TraceSourceApi, SizeHintReportsHeaderCount)
{
    std::string path = ::testing::TempDir() + "hint.trc";
    std::vector<InstrRecord> truth = syntheticStream(321);
    writeTraceFile(path, truth);
    auto reader = openTraceReader(path);
    EXPECT_EQ(reader->sizeHint(), truth.size());
    std::remove(path.c_str());
}

TEST(TraceSourceApi, LoopingAnEmptySourceThrows)
{
    VectorTraceSource empty{std::vector<InstrRecord>{}};
    LoopingTraceSource loop(empty);
    InstrRecord r;
    test::expectThrows<TraceError>([&] { loop.next(r); },
                                   "empty trace source");

    VectorTraceSource empty2{std::vector<InstrRecord>{}};
    LoopingTraceSource loop2(empty2);
    std::vector<InstrRecord> buf(4);
    test::expectThrows<TraceError>(
        [&] {
            loop2.nextBatch(
                std::span<InstrRecord>(buf.data(), buf.size()));
        },
        "empty trace source");
}

// --- RunSpec::Builder -------------------------------------------------

TEST(RunSpecBuilder, BuildsEquivalentSpecToLooseFields)
{
    RunSpec loose;
    loose.cmp = true;
    loose.workloads = {WorkloadKind::TPCW};
    loose.scheme = PrefetchScheme::Discontinuity;
    loose.degree = 2;
    loose.bypassL2 = true;
    loose.instrScale = 0.05;
    loose.baseSeed = 42;

    RunSpec built = RunSpec::builder()
                        .cmp(true)
                        .workload(WorkloadKind::TPCW)
                        .scheme("discontinuity")
                        .degree(2)
                        .bypassL2()
                        .instrScale(0.05)
                        .baseSeed(42)
                        .build();
    EXPECT_EQ(fingerprintSpec(loose), fingerprintSpec(built));
}

TEST(RunSpecBuilder, DeprecatedTracePathFingerprintsLikeTraceSpec)
{
    RunSpec loose;
    loose.tracePath = "/tmp/x.trc";
    loose.traceTolerant = true;
    RunSpec modern = RunSpec::builder()
                         .trace(TraceSpec::file("/tmp/x.trc", true))
                         .build();
    EXPECT_EQ(fingerprintSpec(loose), fingerprintSpec(modern));
}

TEST(RunSpecBuilder, PolicyAppliesAllKnobs)
{
    PrefetchPolicy p = PrefetchPolicy::of(
        PrefetchScheme::NextNLineTagged, 6);
    p.tableEntries = 1024;
    p.useConfidenceFilter = true;
    RunSpec spec = RunSpec::builder().policy(p).build();
    EXPECT_EQ(spec.scheme, PrefetchScheme::NextNLineTagged);
    EXPECT_EQ(spec.degree, 6u);
    EXPECT_EQ(spec.tableEntries, 1024u);
    EXPECT_TRUE(spec.useConfidenceFilter);
}

TEST(RunSpecBuilder, ValidationRejectsBadSpecs)
{
    test::expectThrows<ConfigError>(
        [] { RunSpec::builder().degree(0).scheme("nl-miss").build(); },
        "degree");
    test::expectThrows<ConfigError>(
        [] { RunSpec::builder().instrScale(0.0).build(); },
        "instrScale");
    test::expectThrows<ConfigError>(
        [] {
            TraceSpec both = TraceSpec::file("/tmp/a.trc");
            both.preset = "db";
            RunSpec::builder().trace(both).build();
        },
        "mutually exclusive");
    test::expectThrows<ConfigError>(
        [] {
            RunSpec::builder()
                .trace(TraceSpec::workloadPreset("nonsense"))
                .build();
        },
        "");
    test::expectThrows<ConfigError>(
        [] { RunSpec::builder().scheme("warp-drive").build(); },
        "unknown prefetch scheme");
}

TEST(SchemeRegistry, TokensRoundTripAndAliasesResolve)
{
    for (const SchemeInfo &info : schemeRegistry()) {
        EXPECT_EQ(parseScheme(info.token), info.scheme);
        EXPECT_EQ(schemeToken(info.scheme), info.token);
        for (const std::string &alias : info.aliases)
            EXPECT_EQ(parseScheme(alias), info.scheme);
    }
    EXPECT_EQ(parseScheme("discontinuity"),
              PrefetchScheme::Discontinuity);
    EXPECT_EQ(parseScheme("disc"), PrefetchScheme::Discontinuity);
    EXPECT_EQ(parseScheme("n4l"), PrefetchScheme::NextNLineTagged);
}
