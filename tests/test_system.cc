/**
 * @file
 * Integration tests: full-system runs, determinism, prefetch and
 * bypass end-to-end effects, CMP vs single core, the limit study,
 * and time-sliced mixed workloads.
 */

#include <gtest/gtest.h>

#include "error_helpers.hh"

#include <sstream>

#include "sim/experiment.hh"

using namespace ipref;

namespace
{

/** Small-budget spec so integration tests stay fast. */
RunSpec
fastSpec(bool cmp, PrefetchScheme scheme = PrefetchScheme::None)
{
    RunSpec s;
    s.cmp = cmp;
    s.workloads = {WorkloadKind::WEB};
    s.scheme = scheme;
    s.instrScale = 0.2;
    return s;
}

} // namespace

TEST(System, DeterministicRuns)
{
    SimResults a = runSpec(fastSpec(false));
    SimResults b = runSpec(fastSpec(false));
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.l1iMisses, b.l1iMisses);
    EXPECT_EQ(a.l2dMisses, b.l2dMisses);
    EXPECT_EQ(a.memReads, b.memReads);
}

TEST(System, FunctionalAndTimingBothRun)
{
    RunSpec s = fastSpec(true);
    SimResults timing = runSpec(s);
    s.functional = true;
    SimResults functional = runSpec(s);
    EXPECT_GT(timing.cycles, timing.instructions / 4);
    EXPECT_GT(functional.instructions, 0u);
    // Functional mode advances one instruction per core per cycle.
    EXPECT_NEAR(static_cast<double>(functional.l1iMissPerInstr()),
                static_cast<double>(timing.l1iMissPerInstr()), 0.02);
}

TEST(System, PrefetchingReducesInstructionMisses)
{
    SimResults base = runSpec(fastSpec(true));
    SimResults nl =
        runSpec(fastSpec(true, PrefetchScheme::NextLineTagged));
    SimResults disc =
        runSpec(fastSpec(true, PrefetchScheme::Discontinuity));
    EXPECT_LT(nl.l1iMissPerInstr(), base.l1iMissPerInstr());
    EXPECT_LT(disc.l1iMissPerInstr(), nl.l1iMissPerInstr());
    EXPECT_GT(disc.ipc, base.ipc);
}

TEST(System, AggressivePrefetchingPollutesL2)
{
    SimResults base = runSpec(fastSpec(true));
    SimResults disc =
        runSpec(fastSpec(true, PrefetchScheme::Discontinuity));
    EXPECT_GT(disc.l2dMisses, base.l2dMisses);
}

TEST(System, BypassEliminatesPollution)
{
    RunSpec s = fastSpec(true, PrefetchScheme::Discontinuity);
    SimResults noBypass = runSpec(s);
    s.bypassL2 = true;
    SimResults bypass = runSpec(s);
    EXPECT_LT(bypass.l2dMisses, noBypass.l2dMisses);
    EXPECT_GT(bypass.bypassDrops + bypass.bypassInstalls, 0u);
    EXPECT_EQ(noBypass.bypassDrops, 0u);
}

TEST(System, CmpHasHigherL2InstructionMissRate)
{
    RunSpec s = fastSpec(false);
    s.workloads = {WorkloadKind::DB};
    s.functional = true;
    SimResults single = runSpec(s);
    s.cmp = true;
    SimResults cmp = runSpec(s);
    EXPECT_GT(cmp.l2iMissPerInstr(), single.l2iMissPerInstr());
}

TEST(System, LimitStudyEliminationHelps)
{
    RunSpec s = fastSpec(false);
    s.workloads = {WorkloadKind::DB};
    SimResults base = runSpec(s);
    s.idealEliminate.fill(true);
    SimResults ideal = runSpec(s);
    EXPECT_GT(ideal.ipc, base.ipc * 1.05);
    EXPECT_EQ(ideal.l1iMisses, 0u);
    EXPECT_GT(ideal.l1iEliminated, 0u);
}

TEST(System, LimitStudyPartialElimination)
{
    RunSpec s = fastSpec(false);
    s.workloads = {WorkloadKind::DB};
    s.idealEliminate[static_cast<std::size_t>(
        MissGroup::Sequential)] = true;
    SimResults seq = runSpec(s);
    // Sequential misses are gone; CTI misses remain.
    EXPECT_EQ(seq.l1iMissByTransition[static_cast<std::size_t>(
                  FetchTransition::Sequential)],
              0u);
    std::uint64_t cti = 0;
    for (std::size_t i = 1; i < seq.l1iMissByTransition.size(); ++i)
        cti += seq.l1iMissByTransition[i];
    EXPECT_GT(cti, 0u);
}

TEST(System, MixedCmpRunsFourApplications)
{
    RunSpec s;
    s.cmp = true;
    s.workloads = {WorkloadKind::DB, WorkloadKind::TPCW,
                   WorkloadKind::JAPP, WorkloadKind::WEB};
    s.instrScale = 0.15;
    s.functional = true;
    System system(makeConfig(s));
    SimResults r = system.run();
    EXPECT_GT(r.instructions, 0u);
    EXPECT_EQ(system.config().workloadSetName(), "Mixed");
    EXPECT_TRUE(system.config().isMixed());
}

TEST(System, TimeSlicedSingleCoreMix)
{
    RunSpec s;
    s.cmp = false;
    s.workloads = {WorkloadKind::DB, WorkloadKind::TPCW,
                   WorkloadKind::JAPP, WorkloadKind::WEB};
    s.instrScale = 0.15;
    System system(makeConfig(s));
    SimResults r = system.run();
    EXPECT_GT(r.instructions, 0u);
    // All four walkers made progress across the slices.
    int active = 0;
    for (std::size_t i = 0; i < system.workloadCount(); ++i)
        active += system.workload(i).instructionsEmitted() > 0;
    EXPECT_EQ(active, 4);
}

TEST(System, StatsDump)
{
    RunSpec s = fastSpec(false, PrefetchScheme::Discontinuity);
    System system(makeConfig(s));
    system.run();
    std::ostringstream os;
    system.dumpStats(os);
    EXPECT_NE(os.str().find("hierarchy.l1i_misses"),
              std::string::npos);
    EXPECT_NE(os.str().find("prefetch.0.issued"), std::string::npos);
    EXPECT_NE(os.str().find("core.0.committed"), std::string::npos);
}

TEST(System, MemoryBandwidthAccounted)
{
    SimResults r = runSpec(fastSpec(true));
    EXPECT_GT(r.memReads, 0u);
    EXPECT_GE(r.memReads, r.l2iMisses + r.l2dMisses);
}

TEST(System, CoverageAndAccuracyInRange)
{
    SimResults r =
        runSpec(fastSpec(true, PrefetchScheme::Discontinuity));
    EXPECT_GT(r.pfAccuracy(), 0.05);
    EXPECT_LE(r.pfAccuracy(), 1.0);
    EXPECT_GT(r.l1iCoverage(), 0.3);
    EXPECT_LE(r.l1iCoverage(), 1.0);
}

TEST(System, InvalidConfigsThrow)
{
    SystemConfig bad;
    bad.numCores = 0;
    test::expectThrows<ConfigError>([&] { System s{bad}; },
                                    "numCores");
    SystemConfig bad2;
    bad2.workloads.clear();
    test::expectThrows<ConfigError>([&] { System s{bad2}; },
                                    "no workloads");
    SystemConfig bad3;
    bad3.numCores = 4;
    bad3.workloads = {WorkloadKind::DB, WorkloadKind::WEB};
    test::expectThrows<ConfigError>([&] { System s{bad3}; },
                                    "workload list");
}

TEST(System, BranchPredictionReasonable)
{
    SimResults r = runSpec(fastSpec(false));
    ASSERT_GT(r.branchCtis, 0u);
    double mispredict_rate =
        static_cast<double>(r.branchMispredicts) /
        static_cast<double>(r.branchCtis);
    EXPECT_LT(mispredict_rate, 0.25);
}
