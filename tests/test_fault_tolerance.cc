/**
 * @file
 * Fault-tolerance tests: trace-corruption fuzzing (truncation at
 * every record boundary, single-bit flips over every byte), the
 * crash-isolated batch runner (injected faults, retries, timeouts),
 * and campaign checkpoint/resume.
 */

#include <gtest/gtest.h>

#include "error_helpers.hh"

#include <cstdio>
#include <fstream>
#include <vector>

#include "sim/campaign.hh"
#include "sim/experiment.hh"
#include "trace/trace_file.hh"
#include "util/json.hh"

using namespace ipref;

namespace
{

InstrRecord
makeInstr(Addr pc, OpClass op, bool taken = false, Addr target = 0)
{
    InstrRecord r;
    r.pc = pc;
    r.op = op;
    r.taken = taken;
    r.target = target;
    return r;
}

/** A varied but deterministic record stream for trace files. */
std::vector<InstrRecord>
sampleRecords(unsigned n)
{
    std::vector<InstrRecord> recs;
    recs.reserve(n);
    for (unsigned i = 0; i < n; ++i) {
        Addr pc = 0x400000 + 4u * i;
        if (i % 13 == 5)
            recs.push_back(makeInstr(pc, OpClass::CondBranch,
                                     i % 2 == 0, pc + 0x100));
        else if (i % 17 == 3)
            recs.push_back(
                makeInstr(pc, OpClass::Call, false, pc + 0x4000));
        else if (i % 7 == 1)
            recs.push_back(makeInstr(pc, OpClass::Load));
        else
            recs.push_back(makeInstr(pc, OpClass::IntAlu));
    }
    return recs;
}

void
writeTrace(const std::string &path,
           const std::vector<InstrRecord> &recs,
           std::uint32_t blockRecords)
{
    // These tests exercise the v2 stdio reader's damage semantics,
    // so pin the v2 format (the writer default is now v3).
    TraceFileWriter writer(path, blockRecords, TraceFormat::V2);
    for (const InstrRecord &rec : recs)
        writer.write(rec);
    writer.close();
}

std::vector<unsigned char>
readFileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good());
    return std::vector<unsigned char>(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
}

void
writeFileBytes(const std::string &path,
               const std::vector<unsigned char> &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char *>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
}

/**
 * Drain @p reader, asserting every delivered record equals the
 * original stream (never garbage). @return records delivered before
 * the stream ended or threw.
 */
std::uint64_t
drainChecked(TraceFileReader &reader,
             const std::vector<InstrRecord> &truth, bool *threw)
{
    InstrRecord r;
    std::uint64_t n = 0;
    *threw = false;
    try {
        while (reader.next(r)) {
            if (n >= truth.size()) {
                ADD_FAILURE() << "more records than written";
                break;
            }
            EXPECT_EQ(r.pc, truth[n].pc);
            EXPECT_EQ(r.target, truth[n].target);
            EXPECT_EQ(static_cast<int>(r.op),
                      static_cast<int>(truth[n].op));
            EXPECT_EQ(r.taken, truth[n].taken);
            ++n;
        }
    } catch (const TraceError &) {
        *threw = true;
    }
    return n;
}

/** A cheap functional run spec for batch tests. */
RunSpec
quickSpec(std::uint64_t seed)
{
    RunSpec s;
    s.cmp = false;
    s.workloads = {WorkloadKind::WEB};
    s.functional = true;
    s.instrScale = 0.01;
    s.baseSeed = seed;
    return s;
}

} // namespace

TEST(FaultTolerance, MissGroupBadTransitionThrows)
{
    test::expectThrows<InvariantError>(
        [] { missGroup(static_cast<FetchTransition>(200)); },
        "bad transition");
}

TEST(FaultTolerance, TruncationFuzz)
{
    const unsigned kRecords = 64;
    const std::uint32_t kBlock = 8;
    std::string path = ::testing::TempDir() + "trunc_fuzz.trc";
    std::vector<InstrRecord> truth = sampleRecords(kRecords);
    writeTrace(path, truth, kBlock);
    std::vector<unsigned char> whole = readFileBytes(path);

    const std::size_t headerBytes = 44;
    const std::size_t blockBytes = kBlock * traceRecordBytes + 4;

    for (unsigned t = 0; t < kRecords; ++t) {
        // File offset of record t's boundary in the blocked layout.
        std::size_t off = headerBytes + (t / kBlock) * blockBytes +
                          (t % kBlock) * traceRecordBytes;
        ASSERT_LT(off, whole.size());
        writeFileBytes(path, std::vector<unsigned char>(
                                 whole.begin(),
                                 whole.begin() +
                                     static_cast<std::ptrdiff_t>(off)));

        // Strict: the promised record count cannot be delivered, so
        // the reader must throw — after a correct prefix only.
        {
            TraceFileReader reader(path, TraceReadMode::Strict);
            bool threw = false;
            std::uint64_t got = drainChecked(reader, truth, &threw);
            EXPECT_TRUE(threw) << "truncation at record " << t;
            EXPECT_LE(got, t);
        }
        // Tolerant: ends cleanly at the last intact block.
        {
            TraceFileReader reader(path, TraceReadMode::Tolerant);
            bool threw = false;
            std::uint64_t got = drainChecked(reader, truth, &threw);
            EXPECT_FALSE(threw) << "truncation at record " << t;
            EXPECT_TRUE(reader.corrupt());
            EXPECT_FALSE(reader.corruptionDetail().empty());
            EXPECT_LE(got, t);
            EXPECT_EQ(got % kBlock, 0u) << "partial block salvaged";
            EXPECT_EQ(got, reader.delivered());
        }
    }
    std::remove(path.c_str());
}

TEST(FaultTolerance, BitFlipFuzz)
{
    const unsigned kRecords = 64;
    const std::uint32_t kBlock = 8;
    std::string path = ::testing::TempDir() + "flip_fuzz.trc";
    std::vector<InstrRecord> truth = sampleRecords(kRecords);
    writeTrace(path, truth, kBlock);
    std::vector<unsigned char> whole = readFileBytes(path);

    for (std::size_t i = 0; i < whole.size(); ++i) {
        std::vector<unsigned char> damaged = whole;
        damaged[i] ^= 1u << (i % 8);
        writeFileBytes(path, damaged);

        // Strict: every byte is covered by the magic check, the
        // header CRC, or a block CRC — a flip anywhere must surface
        // as TraceError (from open or from a read), never as garbage.
        bool threw = false;
        try {
            TraceFileReader reader(path, TraceReadMode::Strict);
            drainChecked(reader, truth, &threw);
        } catch (const TraceError &) {
            threw = true;
        }
        EXPECT_TRUE(threw) << "undetected bit flip at byte " << i;

        // Tolerant: a damaged header still throws (nothing to
        // salvage); body damage ends the stream at a block boundary.
        try {
            TraceFileReader reader(path, TraceReadMode::Tolerant);
            bool tolerantThrew = false;
            std::uint64_t got =
                drainChecked(reader, truth, &tolerantThrew);
            EXPECT_FALSE(tolerantThrew);
            EXPECT_TRUE(reader.corrupt());
            EXPECT_EQ(got % kBlock, 0u);
        } catch (const TraceError &) {
            EXPECT_LT(i, 44u) << "only header damage may throw in "
                                 "tolerant mode (byte "
                              << i << ")";
        }
    }
    std::remove(path.c_str());
}

TEST(FaultTolerance, BatchIsolatesFailures)
{
    // A batch where one spec replays a corrupt trace and another
    // throws mid-run must complete the healthy runs bit-identically
    // to a clean sequential baseline.
    std::string corruptPath =
        ::testing::TempDir() + "batch_corrupt.trc";
    writeTrace(corruptPath, sampleRecords(2048), 256);
    std::vector<unsigned char> bytes = readFileBytes(corruptPath);
    bytes.resize(bytes.size() - 1000); // rip the tail off
    writeFileBytes(corruptPath, bytes);

    RunSpec good1 = quickSpec(11);
    RunSpec good2 = quickSpec(22);
    RunSpec corrupt = quickSpec(33);
    corrupt.tracePath = corruptPath;
    RunSpec faulty = quickSpec(44);
    faulty.faultAtInstr = 5000;

    SimResults base1 = runSpec(good1);
    SimResults base2 = runSpec(good2);

    BatchOptions opt;
    opt.jobs = 4;
    opt.maxAttempts = 1;
    std::string reportPath =
        ::testing::TempDir() + "batch_report.json";
    ObservabilityOptions obs;
    obs.jsonPath = reportPath;
    setObservability(obs);
    std::vector<RunOutcome> outcomes =
        runBatch({good1, corrupt, faulty, good2}, opt);
    flushObservability();
    setObservability(ObservabilityOptions{});

    ASSERT_EQ(outcomes.size(), 4u);
    EXPECT_TRUE(outcomes[0].ok());
    EXPECT_TRUE(outcomes[3].ok());
    EXPECT_EQ(resultsToJson(outcomes[0].results),
              resultsToJson(base1));
    EXPECT_EQ(resultsToJson(outcomes[3].results),
              resultsToJson(base2));

    EXPECT_EQ(outcomes[1].status, RunStatus::Failed);
    EXPECT_EQ(outcomes[1].errorKind, SimError::Kind::Trace);
    EXPECT_NE(outcomes[1].error.find(corruptPath), std::string::npos);

    EXPECT_EQ(outcomes[2].status, RunStatus::Failed);
    EXPECT_NE(outcomes[2].error.find("injected fault"),
              std::string::npos);

    // The JSON report accounts for every spec: two full run reports
    // and two failure entries naming the error.
    std::ifstream in(reportPath);
    std::string report((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
    std::size_t failureEntries = 0;
    for (std::size_t at = report.find("\"error_kind\"");
         at != std::string::npos;
         at = report.find("\"error_kind\"", at + 1))
        ++failureEntries;
    EXPECT_EQ(failureEntries, 2u);
    EXPECT_NE(report.find("\"trace\""), std::string::npos);
    EXPECT_NE(report.find("injected fault"), std::string::npos);
    std::remove(reportPath.c_str());
    std::remove(corruptPath.c_str());
}

TEST(FaultTolerance, TolerantTraceRunSalvages)
{
    // The same damaged trace succeeds when the spec opts into
    // tolerant reads: the valid prefix loops for the whole run.
    std::string path = ::testing::TempDir() + "tolerant_run.trc";
    writeTrace(path, sampleRecords(2048), 256);
    std::vector<unsigned char> bytes = readFileBytes(path);
    bytes.resize(bytes.size() - 1000);
    writeFileBytes(path, bytes);

    RunSpec spec = quickSpec(5);
    spec.tracePath = path;
    spec.traceTolerant = true;
    BatchOptions opt;
    opt.maxAttempts = 1;
    std::vector<RunOutcome> outcomes = runBatch({spec}, opt);
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_TRUE(outcomes[0].ok()) << outcomes[0].error;
    EXPECT_GT(outcomes[0].results.instructions, 0u);
    std::remove(path.c_str());
}

TEST(FaultTolerance, RetryHonorsAttemptCounts)
{
    RunSpec spec = quickSpec(7);
    spec.faultAtInstr = 3000;
    spec.faultTransient = true;
    spec.faultAttempts = 2; // attempts 1 and 2 fail, 3 succeeds

    BatchOptions opt;
    opt.maxAttempts = 3;
    opt.retryBaseMs = 1;
    opt.retryCapMs = 2;

    std::vector<RunOutcome> outcomes = runBatch({spec}, opt);
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_TRUE(outcomes[0].ok()) << outcomes[0].error;
    EXPECT_EQ(outcomes[0].attempts, 3u);

    // With the retry budget below the fault count the spec fails.
    opt.maxAttempts = 2;
    outcomes = runBatch({spec}, opt);
    EXPECT_EQ(outcomes[0].status, RunStatus::Failed);
    EXPECT_EQ(outcomes[0].attempts, 2u);

    // Non-transient faults are not retried at all.
    RunSpec hardFault = spec;
    hardFault.faultTransient = false;
    opt.maxAttempts = 3;
    outcomes = runBatch({hardFault}, opt);
    EXPECT_EQ(outcomes[0].status, RunStatus::Failed);
    EXPECT_EQ(outcomes[0].attempts, 1u);
}

TEST(FaultTolerance, ResumeSkipsCompletedRuns)
{
    std::string manifestPath =
        ::testing::TempDir() + "resume_campaign.json";
    std::remove(manifestPath.c_str());

    RunSpec good = quickSpec(101);
    RunSpec failing = quickSpec(202);
    failing.faultAtInstr = 3000;
    failing.faultTransient = true;
    failing.faultAttempts = 1; // only the first lifetime attempt fails

    BatchOptions opt;
    opt.maxAttempts = 1;
    opt.manifestPath = manifestPath;

    std::vector<RunOutcome> first = runBatch({good, failing}, opt);
    ASSERT_EQ(first.size(), 2u);
    EXPECT_TRUE(first[0].ok());
    EXPECT_EQ(first[1].status, RunStatus::Failed);
    EXPECT_EQ(first[1].attempts, 1u);

    // Resume: the completed spec is restored (not re-run); the failed
    // one re-runs as lifetime attempt 2, past its fault budget.
    opt.resume = true;
    std::vector<RunOutcome> second = runBatch({good, failing}, opt);
    ASSERT_EQ(second.size(), 2u);
    EXPECT_TRUE(second[0].ok());
    EXPECT_TRUE(second[0].fromCheckpoint);
    EXPECT_EQ(resultsToJson(second[0].results),
              resultsToJson(first[0].results));

    EXPECT_TRUE(second[1].ok()) << second[1].error;
    EXPECT_FALSE(second[1].fromCheckpoint);
    EXPECT_EQ(second[1].attempts, 2u);

    // The retried run matches a clean run of the same configuration.
    RunSpec clean = failing;
    clean.faultAtInstr = 0;
    clean.faultAttempts = 0;
    clean.faultTransient = false;
    EXPECT_EQ(resultsToJson(second[1].results),
              resultsToJson(runSpec(clean)));

    // A third resume restores everything from the checkpoint.
    std::vector<RunOutcome> third = runBatch({good, failing}, opt);
    EXPECT_TRUE(third[0].fromCheckpoint);
    EXPECT_TRUE(third[1].fromCheckpoint);
    EXPECT_EQ(resultsToJson(third[1].results),
              resultsToJson(second[1].results));
    std::remove(manifestPath.c_str());
}

TEST(FaultTolerance, WatchdogTimesOutRunawayRuns)
{
    RunSpec runaway = quickSpec(9);
    runaway.instrScale = 500.0; // far longer than the deadline

    BatchOptions opt;
    opt.maxAttempts = 3; // timeouts must not be retried
    opt.runTimeoutMs = 50;

    std::vector<RunOutcome> outcomes = runBatch({runaway}, opt);
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_EQ(outcomes[0].status, RunStatus::TimedOut);
    EXPECT_EQ(outcomes[0].errorKind, SimError::Kind::Timeout);
    EXPECT_EQ(outcomes[0].attempts, 1u);
    EXPECT_LT(outcomes[0].wallMs, 30000u);
}

TEST(FaultTolerance, ManifestRoundTrip)
{
    std::string path = ::testing::TempDir() + "manifest_rt.json";
    std::remove(path.c_str());

    SimResults results = runSpec(quickSpec(3));

    ManifestEntry ok;
    ok.fingerprint = fingerprintSpec(quickSpec(3));
    ok.status = RunStatus::Ok;
    ok.attempts = 2;
    ok.wallMs = 17;
    ok.results = results;
    ok.jsonReport = "{\"x\": 1}\n";

    ManifestEntry failed;
    failed.fingerprint = 0xdeadbeef;
    failed.status = RunStatus::Failed;
    failed.attempts = 3;
    failed.errorKind = SimError::Kind::Trace;
    failed.errorMessage = "truncated trace file [/tmp/x.trc]";

    {
        CampaignManifest m(path);
        m.record(ok);
        m.record(failed);
    }

    Expected<CampaignManifest> loaded = CampaignManifest::load(path);
    ASSERT_TRUE(loaded.ok()) << loaded.error().what();
    CampaignManifest &m = loaded.value();
    EXPECT_EQ(m.size(), 2u);

    const ManifestEntry *e = m.find(ok.fingerprint);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->status, RunStatus::Ok);
    EXPECT_EQ(e->attempts, 2u);
    EXPECT_EQ(e->wallMs, 17u);
    EXPECT_EQ(e->jsonReport, ok.jsonReport);
    EXPECT_EQ(resultsToJson(e->results), resultsToJson(results));
    EXPECT_EQ(e->results.ipc, results.ipc); // bit-exact recompute

    const ManifestEntry *f = m.find(0xdeadbeef);
    ASSERT_NE(f, nullptr);
    EXPECT_EQ(f->status, RunStatus::Failed);
    EXPECT_EQ(f->errorKind, SimError::Kind::Trace);
    EXPECT_EQ(f->errorMessage, failed.errorMessage);
    std::remove(path.c_str());
}

TEST(FaultTolerance, ManifestLoadErrorsAreValues)
{
    Expected<CampaignManifest> missing =
        CampaignManifest::load("/nonexistent/dir/campaign.json");
    EXPECT_FALSE(missing.ok());
    EXPECT_EQ(missing.error().kind(), SimError::Kind::Io);

    std::string path = ::testing::TempDir() + "garbage_manifest.json";
    std::ofstream(path) << "{not json at all";
    Expected<CampaignManifest> corrupt = CampaignManifest::load(path);
    EXPECT_FALSE(corrupt.ok());
    EXPECT_NE(std::string(corrupt.error().what()).find("corrupt"),
              std::string::npos);
    std::remove(path.c_str());
}

TEST(FaultTolerance, ResultsJsonRoundTrip)
{
    SimResults r = runSpec(quickSpec(1));
    JsonValue doc = parseJson(resultsToJson(r));
    Expected<SimResults> back = resultsFromJson(doc);
    ASSERT_TRUE(back.ok()) << back.error().what();
    EXPECT_EQ(resultsToJson(back.value()), resultsToJson(r));
    EXPECT_EQ(back.value().ipc, r.ipc);

    // Missing counters surface as errors, not zeros.
    Expected<SimResults> bad = resultsFromJson(parseJson("{}"));
    EXPECT_FALSE(bad.ok());
}

TEST(FaultTolerance, RunSpecsSurfacesFirstFailureAfterDraining)
{
    RunSpec good = quickSpec(61);
    RunSpec bad = quickSpec(62);
    bad.faultAtInstr = 2000;
    test::expectThrows<SimError>(
        [&] { runSpecs({good, bad, good}, 2); }, "injected fault");
}

TEST(FaultTolerance, ExpectedBasics)
{
    Expected<int> v(42);
    EXPECT_TRUE(v.ok());
    EXPECT_EQ(v.value(), 42);
    EXPECT_EQ(v.valueOr(7), 42);

    Expected<int> e(SimError(SimError::Kind::Io, "nope", true));
    EXPECT_FALSE(e.ok());
    EXPECT_EQ(e.valueOr(7), 7);
    EXPECT_TRUE(e.error().transient());
    EXPECT_STREQ(errorKindName(e.error().kind()), "io");
    EXPECT_EQ(parseErrorKind("io"), SimError::Kind::Io);
}
