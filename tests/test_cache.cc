/**
 * @file
 * Unit tests for the set-associative cache model.
 */

#include <gtest/gtest.h>

#include "error_helpers.hh"

#include "cache/cache.hh"

using namespace ipref;

namespace
{

CacheParams
tinyParams(unsigned assoc = 2, unsigned line = 64,
           std::uint64_t size = 1024)
{
    CacheParams p;
    p.name = "tiny";
    p.sizeBytes = size; // e.g. 1KB, 2-way, 64B: 8 sets
    p.assoc = assoc;
    p.lineBytes = line;
    return p;
}

} // namespace

TEST(Cache, MissThenHit)
{
    SetAssocCache c(tinyParams());
    EXPECT_FALSE(c.access(0x1000).hit);
    c.insert(0x1000, {});
    EXPECT_TRUE(c.access(0x1000).hit);
    EXPECT_EQ(c.hits.value(), 1u);
    EXPECT_EQ(c.misses.value(), 1u);
}

TEST(Cache, SameLineDifferentOffsets)
{
    SetAssocCache c(tinyParams());
    c.insert(0x1000, {});
    EXPECT_TRUE(c.access(0x1004).hit);
    EXPECT_TRUE(c.access(0x103F).hit);
    EXPECT_FALSE(c.access(0x1040).hit);
}

TEST(Cache, ProbeDoesNotTouchState)
{
    SetAssocCache c(tinyParams());
    c.insert(0x1000, {});
    EXPECT_TRUE(c.probe(0x1000));
    EXPECT_FALSE(c.probe(0x2000));
    EXPECT_EQ(c.hits.value(), 0u);
    EXPECT_EQ(c.misses.value(), 0u);
}

TEST(Cache, LruEviction)
{
    // 2-way; three conflicting lines: the least recently used leaves.
    SetAssocCache c(tinyParams());
    // set stride: 8 sets * 64B = 512B
    Addr a = 0x0000, b = 0x0200, d = 0x0400;
    c.insert(a, {});
    c.insert(b, {});
    c.access(a); // b is now LRU
    Eviction ev = c.insert(d, {});
    ASSERT_TRUE(ev.valid);
    EXPECT_EQ(ev.lineAddr, b);
    EXPECT_TRUE(c.probe(a));
    EXPECT_FALSE(c.probe(b));
    EXPECT_TRUE(c.probe(d));
}

TEST(Cache, InsertPrefersInvalidWay)
{
    SetAssocCache c(tinyParams());
    Eviction ev = c.insert(0x0000, {});
    EXPECT_FALSE(ev.valid);
    ev = c.insert(0x0200, {});
    EXPECT_FALSE(ev.valid);
}

TEST(Cache, ReinsertMergesFlags)
{
    SetAssocCache c(tinyParams());
    c.insert(0x1000, {});
    InsertFlags dirty;
    dirty.dirty = true;
    Eviction ev = c.insert(0x1000, dirty);
    EXPECT_FALSE(ev.valid);
    EXPECT_TRUE(c.lookup(0x1000).dirty);
    EXPECT_EQ(c.validLines(), 1u);
}

TEST(Cache, WriteSetsDirty)
{
    SetAssocCache c(tinyParams());
    c.insert(0x1000, {});
    EXPECT_FALSE(c.lookup(0x1000).dirty);
    c.access(0x1000, /*isWrite=*/true);
    EXPECT_TRUE(c.lookup(0x1000).dirty);
}

TEST(Cache, EvictionCarriesMetadata)
{
    SetAssocCache c(tinyParams(1)); // direct mapped: 16 sets
    InsertFlags f;
    f.prefetched = true;
    f.isInstr = true;
    f.srcCore = 3;
    c.insert(0x0000, f);
    Eviction ev = c.insert(0x0400, {}); // 16 sets * 64 = 1024 stride
    ASSERT_TRUE(ev.valid);
    EXPECT_TRUE(ev.prefetched);
    EXPECT_TRUE(ev.isInstr);
    EXPECT_FALSE(ev.used);
    EXPECT_EQ(ev.srcCore, 3u);
}

TEST(Cache, PrefetchedFirstUse)
{
    SetAssocCache c(tinyParams());
    InsertFlags f;
    f.prefetched = true;
    c.insert(0x1000, f);
    AccessOutcome out = c.access(0x1000);
    EXPECT_TRUE(out.hit);
    EXPECT_TRUE(out.firstUseOfPrefetch);
    out = c.access(0x1000);
    EXPECT_TRUE(out.hit);
    EXPECT_FALSE(out.firstUseOfPrefetch);
}

TEST(Cache, DemandInsertIsUsed)
{
    SetAssocCache c(tinyParams());
    c.insert(0x1000, {});
    AccessOutcome out = c.access(0x1000);
    EXPECT_FALSE(out.firstUseOfPrefetch);
    EXPECT_TRUE(c.lookup(0x1000).used);
}

TEST(Cache, Invalidate)
{
    SetAssocCache c(tinyParams());
    c.insert(0x1000, {});
    EXPECT_TRUE(c.invalidate(0x1000));
    EXPECT_FALSE(c.probe(0x1000));
    EXPECT_FALSE(c.invalidate(0x1000));
}

TEST(Cache, LineSizeGeometry)
{
    SetAssocCache c(tinyParams(2, 128, 2048));
    EXPECT_EQ(c.lineOf(0x1234), 0x1200u & ~Addr(0x7F));
    c.insert(0x1000, {});
    EXPECT_TRUE(c.access(0x107F).hit);
    EXPECT_FALSE(c.access(0x1080).hit);
}

TEST(Cache, RandomPolicyStillCaches)
{
    CacheParams p = tinyParams();
    p.repl = ReplPolicy::Random;
    SetAssocCache c(p);
    c.insert(0x1000, {});
    EXPECT_TRUE(c.access(0x1000).hit);
    // Fill a set beyond capacity; exactly one line must leave.
    c.insert(0x1200, {});
    Eviction ev = c.insert(0x1400, {});
    EXPECT_TRUE(ev.valid);
}

TEST(Cache, CapacitySweepProperty)
{
    // Property: doubling capacity never increases misses for an
    // LRU cache on the same access stream (stack inclusion).
    std::vector<Addr> stream;
    std::uint64_t seed = 123;
    for (int i = 0; i < 20000; ++i) {
        seed = seed * 6364136223846793005ULL + 13;
        stream.push_back(((seed >> 33) % 512) * 64);
    }
    std::uint64_t prev_misses = ~0ull;
    for (std::uint64_t kb : {1, 2, 4, 8, 16}) {
        CacheParams p = tinyParams(4, 64, kb << 10);
        // full associativity relative to sets is not required for the
        // inclusion property to hold in practice on random streams
        SetAssocCache c(p);
        for (Addr a : stream) {
            if (!c.access(a).hit)
                c.insert(a, {});
        }
        EXPECT_LE(c.misses.value(), prev_misses);
        prev_misses = c.misses.value();
    }
}

TEST(Cache, BadGeometryThrows)
{
    CacheParams p = tinyParams();
    p.lineBytes = 48;
    test::expectThrows<ConfigError>([&] { SetAssocCache cache{p}; },
                                    "power of two");
    p = tinyParams();
    p.sizeBytes = 1000;
    test::expectThrows<ConfigError>([&] { SetAssocCache cache{p}; },
                                    "divisible");
}

TEST(Cache, ValidLinesTracksOccupancy)
{
    SetAssocCache c(tinyParams());
    EXPECT_EQ(c.validLines(), 0u);
    for (int i = 0; i < 100; ++i)
        c.insert(static_cast<Addr>(i) * 64, {});
    EXPECT_EQ(c.validLines(), 16u); // 1KB / 64B
}
