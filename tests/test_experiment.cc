/**
 * @file
 * Tests for the experiment runner: the parallel runSpecs() path must
 * produce bit-identical SimResults to a sequential runSpec() loop —
 * with and without observability features enabled — and buffered JSON
 * reports must flush as one well-formed array in input order.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "sim/experiment.hh"

using namespace ipref;

namespace
{

/** Field-by-field equality over every SimResults counter. */
void
expectIdentical(const SimResults &a, const SimResults &b,
                const std::string &what)
{
    SCOPED_TRACE(what);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.ipc, b.ipc); // bit-identical, not just close
    EXPECT_EQ(a.fetchLineAccesses, b.fetchLineAccesses);
    EXPECT_EQ(a.l1iMisses, b.l1iMisses);
    EXPECT_EQ(a.l1iEliminated, b.l1iEliminated);
    EXPECT_EQ(a.l1iFirstUseHits, b.l1iFirstUseHits);
    EXPECT_EQ(a.l1iLateHits, b.l1iLateHits);
    EXPECT_EQ(a.l2iMisses, b.l2iMisses);
    EXPECT_EQ(a.l1dAccesses, b.l1dAccesses);
    EXPECT_EQ(a.l1dMisses, b.l1dMisses);
    EXPECT_EQ(a.l2dMisses, b.l2dMisses);
    EXPECT_EQ(a.l1iMissByTransition, b.l1iMissByTransition);
    EXPECT_EQ(a.l2iMissByTransition, b.l2iMissByTransition);
    EXPECT_EQ(a.pfCandidates, b.pfCandidates);
    EXPECT_EQ(a.pfIssued, b.pfIssued);
    EXPECT_EQ(a.pfIssuedOffChip, b.pfIssuedOffChip);
    EXPECT_EQ(a.pfUseful, b.pfUseful);
    EXPECT_EQ(a.pfLate, b.pfLate);
    EXPECT_EQ(a.pfUseless, b.pfUseless);
    EXPECT_EQ(a.pfFiltered, b.pfFiltered);
    EXPECT_EQ(a.pfTagProbes, b.pfTagProbes);
    EXPECT_EQ(a.pfTagProbeHits, b.pfTagProbeHits);
    EXPECT_EQ(a.pfIssuedByOrigin, b.pfIssuedByOrigin);
    EXPECT_EQ(a.pfUsefulByOrigin, b.pfUsefulByOrigin);
    EXPECT_EQ(a.bypassInstalls, b.bypassInstalls);
    EXPECT_EQ(a.bypassDrops, b.bypassDrops);
    EXPECT_EQ(a.memReads, b.memReads);
    EXPECT_EQ(a.memPrefetchReads, b.memPrefetchReads);
    EXPECT_EQ(a.memWrites, b.memWrites);
    EXPECT_EQ(a.memQueueDelayCycles, b.memQueueDelayCycles);
    EXPECT_EQ(a.branchCtis, b.branchCtis);
    EXPECT_EQ(a.branchMispredicts, b.branchMispredicts);
}

/** A small but non-trivial mixed batch (timing + prefetchers). */
std::vector<RunSpec>
sampleSpecs()
{
    std::vector<RunSpec> specs;
    RunSpec base;
    base.cmp = true;
    base.workloads = {WorkloadKind::DB};
    base.instrScale = 0.02;
    specs.push_back(base);

    RunSpec disc = base;
    disc.scheme = PrefetchScheme::Discontinuity;
    disc.bypassL2 = true;
    specs.push_back(disc);

    RunSpec tagged = base;
    tagged.scheme = PrefetchScheme::NextNLineTagged;
    tagged.workloads = {WorkloadKind::JAPP};
    specs.push_back(tagged);

    RunSpec single = base;
    single.cmp = false;
    single.workloads = {WorkloadKind::WEB};
    specs.push_back(single);
    return specs;
}

/** Restores default (disabled) observability on scope exit. */
struct ObservabilityGuard
{
    ~ObservabilityGuard() { setObservability({}); }
};

} // namespace

TEST(RunSpecs, ParallelMatchesSequentialBitForBit)
{
    ObservabilityGuard guard;
    setObservability({});
    std::vector<RunSpec> specs = sampleSpecs();

    std::vector<SimResults> sequential;
    for (const RunSpec &spec : specs)
        sequential.push_back(runSpec(spec));

    std::vector<SimResults> parallel = runSpecs(specs, 4);
    ASSERT_EQ(parallel.size(), sequential.size());
    for (std::size_t i = 0; i < specs.size(); ++i)
        expectIdentical(sequential[i], parallel[i],
                        "spec " + std::to_string(i));
}

TEST(RunSpecs, DeterministicWithObservabilityEnabled)
{
    ObservabilityGuard guard;
    ObservabilityOptions obs;
    obs.profileSites = 8;
    obs.intervalInstrs = 20'000;
    setObservability(obs);
    std::vector<RunSpec> specs = sampleSpecs();

    std::vector<SimResults> sequential;
    for (const RunSpec &spec : specs)
        sequential.push_back(runSpec(spec));

    std::vector<SimResults> parallel = runSpecs(specs, 4);
    ASSERT_EQ(parallel.size(), sequential.size());
    for (std::size_t i = 0; i < specs.size(); ++i)
        expectIdentical(sequential[i], parallel[i],
                        "spec " + std::to_string(i));
}

TEST(RunSpecs, JobsOneFallsBackToSequential)
{
    ObservabilityGuard guard;
    setObservability({});
    std::vector<RunSpec> specs = sampleSpecs();
    specs.resize(2);

    std::vector<SimResults> sequential;
    for (const RunSpec &spec : specs)
        sequential.push_back(runSpec(spec));

    std::vector<SimResults> one = runSpecs(specs, 1);
    ASSERT_EQ(one.size(), sequential.size());
    for (std::size_t i = 0; i < specs.size(); ++i)
        expectIdentical(sequential[i], one[i],
                        "spec " + std::to_string(i));
}

TEST(RunSpecs, FlushWritesBufferedReportsInInputOrder)
{
    ObservabilityGuard guard;
    const std::string path = "test_experiment_reports.json";
    ObservabilityOptions obs;
    obs.jsonPath = path;
    setObservability(obs);

    std::vector<RunSpec> specs = sampleSpecs();
    specs.resize(3);
    runSpecs(specs, 3);
    flushObservability();

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream buf;
    buf << in.rdbuf();
    std::string text = buf.str();

    // One well-formed array with one report per run.
    EXPECT_EQ(text.front(), '[');
    std::size_t reports = 0, pos = 0;
    while ((pos = text.find("\"config\"", pos)) !=
           std::string::npos) {
        ++reports;
        pos += 1;
    }
    EXPECT_EQ(reports, specs.size());

    // Reports appear in input order: workload set names in sequence.
    std::size_t db = text.find("\"DB\"");
    std::size_t japp = text.find("\"jApp\"");
    EXPECT_NE(db, std::string::npos);
    EXPECT_NE(japp, std::string::npos);
    EXPECT_LT(db, japp);

    std::remove(path.c_str());
}
