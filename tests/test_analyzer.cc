/**
 * @file
 * Analysis-toolchain tests: the Space-Saving heavy-hitter sketch
 * backing the fetch profiler, the offline trace analyzer, and the
 * golden end-to-end check that event-derived prefetch lifecycles
 * agree exactly with the simulator's own counters.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/analyzer.hh"
#include "prefetch/fetch_profiler.hh"
#include "sim/experiment.hh"
#include "util/json.hh"
#include "util/topk.hh"
#include "util/trace_event.hh"

using namespace ipref;

// --- Space-Saving sketch ---------------------------------------------

TEST(SpaceSaving, ExactBelowCapacity)
{
    SpaceSaving<int, std::uint64_t> sk(4);
    *sk.touch(1) += 10;
    *sk.touch(2) += 20;
    *sk.touch(1) += 5;
    EXPECT_EQ(sk.size(), 2u);
    EXPECT_EQ(sk.capacity(), 4u);
    EXPECT_EQ(sk.touches(), 3u);
    EXPECT_EQ(sk.replacements(), 0u);

    ASSERT_NE(sk.find(1), nullptr);
    EXPECT_EQ(*sk.find(1), 15u);
    EXPECT_EQ(sk.find(3), nullptr);

    auto top = sk.top();
    ASSERT_EQ(top.size(), 2u);
    EXPECT_EQ(top[0].key, 1);
    EXPECT_EQ(top[0].count, 2u);
    EXPECT_EQ(top[0].error, 0u); // exact while below capacity
    EXPECT_EQ(top[1].key, 2);
    EXPECT_EQ(top[1].count, 1u);
}

TEST(SpaceSaving, ReplacementEvictsMinAndInheritsError)
{
    SpaceSaving<int, std::uint64_t> sk(2);
    for (int i = 0; i < 5; ++i)
        sk.touch(1);
    for (int i = 0; i < 3; ++i)
        sk.touch(2);
    *sk.touch(2, 0) = 99; // set payload without counting

    // Table full: an untracked key replaces the minimum (key 2,
    // count 3), inheriting its count as the overestimation error.
    sk.touch(3);
    EXPECT_EQ(sk.size(), 2u);
    EXPECT_EQ(sk.replacements(), 1u);
    EXPECT_EQ(sk.find(2), nullptr);

    auto top = sk.top();
    ASSERT_EQ(top.size(), 2u);
    EXPECT_EQ(top[0].key, 1);
    EXPECT_EQ(top[0].count, 5u);
    EXPECT_EQ(top[1].key, 3);
    EXPECT_EQ(top[1].count, 4u); // 3 inherited + 1
    EXPECT_EQ(top[1].error, 3u);
    EXPECT_EQ(top[1].aux, 0u); // payload reset on recycle

    // 5 + 3 + 0 (weight-0 touch) + 1 touches over capacity 2.
    EXPECT_EQ(sk.touches(), 9u);
    EXPECT_EQ(sk.guaranteedFloor(), 4u);

    sk.clear();
    EXPECT_EQ(sk.size(), 0u);
    EXPECT_EQ(sk.touches(), 0u);
    EXPECT_EQ(sk.replacements(), 0u);
}

// --- concentration helper --------------------------------------------

TEST(Concentration, CountsLinesCoveringEachQuantile)
{
    Concentration c =
        lineConcentration({50, 30, 20}, {0.5, 0.8, 1.0});
    EXPECT_EQ(c.total, 100u);
    EXPECT_EQ(c.uniqueLines, 3u);
    ASSERT_EQ(c.points.size(), 3u);
    EXPECT_EQ(c.points[0].lines, 1u); // 50 covers 50%
    EXPECT_EQ(c.points[1].lines, 2u); // 50+30 covers 80%
    EXPECT_EQ(c.points[2].lines, 3u);

    // Order of the input counts must not matter.
    Concentration skew = lineConcentration({1, 97, 1, 1}, {0.9});
    ASSERT_EQ(skew.points.size(), 1u);
    EXPECT_EQ(skew.points[0].lines, 1u);
}

// --- trace parsing ----------------------------------------------------

TEST(TraceParse, EmptyAndBlankLines)
{
    std::istringstream is("\n   \n");
    EXPECT_TRUE(readTraceJsonLines(is).empty());
    TraceAnalysis a = analyze({});
    EXPECT_EQ(a.events, 0u);
    EXPECT_EQ(a.total.issued, 0u);
    EXPECT_EQ(a.issueToUseQuantile(0.5), 0u);
}

TEST(TraceParse, MalformedLineThrowsWithLineNumber)
{
    std::istringstream is(
        "{\"cycle\":1,\"type\":\"cache_miss\"}\nnot json\n");
    try {
        readTraceJsonLines(is);
        FAIL() << "expected std::runtime_error";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("line 2"),
                  std::string::npos);
    }
}

// --- analyzer on a hand-built trace ----------------------------------

namespace
{

ParsedEvent
mkEvent(std::uint64_t cycle, const std::string &type, Addr addr,
        std::uint64_t arg = 0, std::uint8_t detail = 0, Addr pc = 0)
{
    ParsedEvent ev;
    ev.cycle = cycle;
    ev.type = type;
    ev.hasCore = true;
    ev.core = 0;
    ev.addr = addr;
    ev.arg = arg;
    ev.detail = detail;
    ev.pc = pc;
    return ev;
}

constexpr std::uint8_t kDisc =
    static_cast<std::uint8_t>(PrefetchOrigin::Discontinuity);

/** One miss, one useful discontinuity prefetch, one in-flight. */
std::vector<ParsedEvent>
syntheticTrace()
{
    return {
        mkEvent(50, "cache_miss", 0x3000, 0,
                traceDetailPack(traceLevelL1I, 0)),
        mkEvent(100, "prefetch_issue", 0x1000, 7, kDisc, 0x2000),
        mkEvent(250, "prefetch_useful", 0x1000, 7, kDisc),
        mkEvent(300, "prefetch_issue", 0x5000, 8, kDisc, 0x2000),
    };
}

} // namespace

TEST(TraceAnalyze, ReconstructsLifecyclesSitesAndEdges)
{
    TraceAnalysis a = analyze(syntheticTrace());
    EXPECT_EQ(a.events, 4u);
    EXPECT_EQ(a.firstCycle, 50u);
    EXPECT_EQ(a.lastCycle, 300u);

    EXPECT_EQ(a.l1iMisses, 1u);
    EXPECT_EQ(a.l1iMissByTransition[0], 1u);
    ASSERT_EQ(a.hotMissSites.size(), 1u);
    EXPECT_EQ(a.hotMissSites[0].line, 0x3000u);
    EXPECT_EQ(a.hotMissSites[0].misses, 1u);

    EXPECT_EQ(a.total.issued, 2u);
    EXPECT_EQ(a.total.useful, 1u);
    EXPECT_EQ(a.total.inFlight(), 1u);
    EXPECT_DOUBLE_EQ(a.total.accuracy(), 0.5);
    EXPECT_EQ(a.byOrigin[kDisc].issued, 2u);
    EXPECT_EQ(a.byOrigin[kDisc].useful, 1u);

    // Both issues share the trigger site 0x2000 → one edge per
    // (src, dst); the resolved one carries the useful credit.
    ASSERT_EQ(a.hotEdges.size(), 2u);
    for (const auto &e : a.hotEdges) {
        EXPECT_EQ(e.src, 0x2000u);
        EXPECT_EQ(e.tally.issued, 1u);
    }

    ASSERT_EQ(a.issueToUseCycles.size(), 1u);
    EXPECT_EQ(a.issueToUseCycles[0], 150u);
    EXPECT_EQ(a.issueToUseQuantile(0.5), 150u);
}

TEST(TraceAnalyze, IntervalCsvBucketsEvents)
{
    std::ostringstream os;
    writeIntervalCsv(syntheticTrace(), os, 4);
    std::istringstream lines(os.str());
    std::string header;
    ASSERT_TRUE(std::getline(lines, header));
    EXPECT_EQ(header,
              "cycle_start,cycle_end,l1i_misses,l1i_hits,pf_issued,"
              "pf_useful,pf_useless");
    std::string row;
    std::size_t rows = 0;
    while (std::getline(lines, row))
        ++rows;
    EXPECT_GE(rows, 2u);
    // All four events land somewhere: count issue markers.
    EXPECT_NE(os.str().find(",1,"), std::string::npos);
}

TEST(TraceAnalyze, ChromeTraceIsValidJson)
{
    std::ostringstream os;
    writeChromeTrace(syntheticTrace(), os);
    JsonValue v = parseJson(os.str());

    EXPECT_EQ(v.at("displayTimeUnit").str, "ns");
    const JsonValue &evs = v.at("traceEvents");
    ASSERT_EQ(evs.kind, JsonValue::Array);
    ASSERT_FALSE(evs.items.empty());

    bool sawComplete = false, sawInstant = false, sawMeta = false;
    bool sawInFlight = false;
    for (const JsonValue &ev : evs.items) {
        const std::string &ph = ev.at("ph").str;
        if (ph == "X") {
            EXPECT_TRUE(ev.has("ts"));
            EXPECT_TRUE(ev.has("dur"));
            EXPECT_TRUE(ev.has("pid"));
            EXPECT_TRUE(ev.has("tid"));
            if (ev.at("name").str == "useful") {
                sawComplete = true;
                EXPECT_EQ(ev.at("ts").number, 100);
                EXPECT_EQ(ev.at("dur").number, 150);
                EXPECT_EQ(ev.at("args").at("trigger").str, "0x2000");
            }
            if (ev.at("name").str == "in-flight")
                sawInFlight = true;
        } else if (ph == "i") {
            sawInstant = true;
            EXPECT_EQ(ev.at("ts").number, 50);
        } else if (ph == "M") {
            sawMeta = true;
        }
    }
    EXPECT_TRUE(sawComplete);
    EXPECT_TRUE(sawInstant);
    EXPECT_TRUE(sawMeta);
    EXPECT_TRUE(sawInFlight); // the unresolved issue still shows
}

// --- golden end-to-end ------------------------------------------------

namespace
{

/** RAII: tests must not leak the global trace sink's state. */
struct SinkGuard
{
    ~SinkGuard() { TraceSink::global().disable(); }
};

} // namespace

TEST(Golden, EventDerivedLifecycleMatchesSimulatorCounters)
{
    SinkGuard guard;

    RunSpec spec;
    spec.cmp = false;
    spec.workloads = {WorkloadKind::WEB};
    spec.scheme = PrefetchScheme::Discontinuity;
    spec.instrScale = 0.1;
    SystemConfig cfg = makeConfig(spec);
    // Fresh-system window: no warm-up, so the lifecycle identity
    // issued == useful + useless + in_flight + dropped is exact and
    // the trace covers every issue the counters saw.
    cfg.warmupInstrs = 0;
    cfg.profileSites = 64;

    TraceSink::global().enable(1u << 20);
    System system(cfg);
    SimResults r = system.run();
    ASSERT_GT(r.pfIssued, 0u);
    ASSERT_EQ(TraceSink::global().dropped(), 0u)
        << "trace ring wrapped; exact cross-check impossible";

    std::ostringstream trace;
    TraceSink::global().writeJsonLines(trace);
    std::istringstream is(trace.str());
    TraceAnalysis a = analyze(readTraceJsonLines(is));

    // Event-derived totals vs the engines' lifecycle counters.
    std::uint64_t issued = 0, inFlight = 0, dropped = 0;
    for (unsigned c = 0; c < system.config().numCores; ++c) {
        PrefetchEngine::Lifecycle lc = system.engine(c).lifecycle();
        issued += lc.issued;
        inFlight += lc.inFlight;
        dropped += lc.dropped;
    }
    EXPECT_EQ(a.total.issued, issued);
    EXPECT_EQ(a.total.issued, r.pfIssued);
    EXPECT_EQ(a.total.replaced, dropped);
    EXPECT_EQ(a.total.inFlight(), inFlight);

    // Per-origin issue attribution must agree exactly.
    for (std::size_t i = 0; i < a.byOrigin.size(); ++i)
        EXPECT_EQ(a.byOrigin[i].issued, r.pfIssuedByOrigin[i])
            << originName(static_cast<PrefetchOrigin>(i));
    EXPECT_GT(a.byOrigin[static_cast<std::size_t>(
                  PrefetchOrigin::Discontinuity)].issued,
              0u);

    // The canonical cross-check against the full JSON report — the
    // same comparison tools/ipref_analyze.cc --stats performs.
    std::ostringstream rep;
    system.dumpJson(rep);
    CrossCheck cc = crossCheck(a, parseJson(rep.str()));
    EXPECT_TRUE(cc.ok);
    for (const std::string &m : cc.mismatches)
        ADD_FAILURE() << "cross-check mismatch: " << m;

    // Fig.-3 style breakdown: every L1I miss carries a transition.
    EXPECT_GT(a.l1iMisses, 0u);
    std::uint64_t byTransition = 0;
    for (auto v : a.l1iMissByTransition)
        byTransition += v;
    EXPECT_EQ(byTransition, a.l1iMisses);
    EXPECT_FALSE(a.hotMissSites.empty());

    // Timeliness distribution is populated and ordered.
    ASSERT_FALSE(a.issueToUseCycles.empty());
    EXPECT_TRUE(std::is_sorted(a.issueToUseCycles.begin(),
                               a.issueToUseCycles.end()));
    EXPECT_LE(a.issueToUseQuantile(0.5), a.issueToUseQuantile(0.99));

    // The in-simulator profiler saw the same run.
    const FetchProfiler *fp = system.profiler();
    ASSERT_NE(fp, nullptr);
    EXPECT_GT(fp->missesAttributed.value(), 0u);
    EXPECT_EQ(fp->issuesAttributed.value(), r.pfIssued);
    EXPECT_FALSE(fp->sites().top(1).empty());
    EXPECT_GT(fp->sites().top(1)[0].count, 0u);

    // The Chrome export of a real run parses as one JSON object.
    std::istringstream is2(trace.str());
    std::vector<ParsedEvent> evs = readTraceJsonLines(is2);
    std::ostringstream chrome;
    writeChromeTrace(evs, chrome);
    JsonValue cv = parseJson(chrome.str());
    EXPECT_FALSE(cv.at("traceEvents").items.empty());
}
