/**
 * @file
 * Tests for the CPU building blocks: branch predictors, TLBs, and
 * the out-of-order core timing model.
 */

#include <gtest/gtest.h>

#include "cpu/branch_predictor.hh"
#include "cpu/core.hh"
#include "cpu/tlb.hh"
#include "trace/trace_source.hh"

using namespace ipref;

namespace
{

InstrRecord
makeInstr(Addr pc, OpClass op, bool taken = false, Addr target = 0)
{
    InstrRecord r;
    r.pc = pc;
    r.op = op;
    r.taken = taken;
    r.target = target;
    return r;
}

} // namespace

TEST(Gshare, LearnsBias)
{
    GsharePredictor g(1024);
    Addr pc = 0x4000;
    for (int i = 0; i < 50; ++i)
        g.update(pc, true);
    EXPECT_TRUE(g.predict(pc));
    for (int i = 0; i < 50; ++i)
        g.update(pc, false);
    EXPECT_FALSE(g.predict(pc));
}

TEST(Gshare, LearnsAlternationViaHistory)
{
    GsharePredictor g(64u << 10);
    Addr pc = 0x4000;
    // Strict alternation is perfectly predictable with history.
    bool taken = false;
    for (int i = 0; i < 4000; ++i) {
        g.update(pc, taken);
        taken = !taken;
    }
    std::uint64_t before = g.mispredicts.value();
    for (int i = 0; i < 1000; ++i) {
        g.update(pc, taken);
        taken = !taken;
    }
    EXPECT_LT(g.mispredicts.value() - before, 50u);
}

TEST(Btb, RemembersTargets)
{
    Btb btb(1024);
    EXPECT_EQ(btb.predict(0x4000), 0u);
    btb.update(0x4000, 0x8000);
    EXPECT_EQ(btb.predict(0x4000), 0x8000u);
    btb.update(0x4000, 0x9000);
    EXPECT_EQ(btb.predict(0x4000), 0x9000u);
}

TEST(Ras, NestedCallsPredictReturns)
{
    ReturnAddressStack ras(16);
    ras.push(0x100);
    ras.push(0x200);
    EXPECT_EQ(ras.pop(), 0x200u);
    EXPECT_EQ(ras.pop(), 0x100u);
    EXPECT_TRUE(ras.empty());
    EXPECT_EQ(ras.pop(), 0u);
}

TEST(Ras, OverflowWraps)
{
    ReturnAddressStack ras(4);
    for (Addr a = 1; a <= 6; ++a)
        ras.push(a * 0x10);
    // Deepest entries were overwritten; the newest 4 survive.
    EXPECT_EQ(ras.pop(), 0x60u);
    EXPECT_EQ(ras.pop(), 0x50u);
    EXPECT_EQ(ras.pop(), 0x40u);
    EXPECT_EQ(ras.pop(), 0x30u);
    EXPECT_TRUE(ras.empty());
}

TEST(FrontEnd, DirectCtisNeverMispredict)
{
    FrontEndPredictor fe(BranchPredictorParams{});
    EXPECT_TRUE(fe.predict(
        makeInstr(0x100, OpClass::UncondBranch, true, 0x900)));
    EXPECT_TRUE(
        fe.predict(makeInstr(0x104, OpClass::Call, true, 0x2000)));
    EXPECT_EQ(fe.mispredicts.value(), 0u);
}

TEST(FrontEnd, CallReturnPairsPredict)
{
    FrontEndPredictor fe(BranchPredictorParams{});
    fe.predict(makeInstr(0x100, OpClass::Call, true, 0x2000));
    // Matching return goes back to pc+4.
    EXPECT_TRUE(
        fe.predict(makeInstr(0x2004, OpClass::Return, true, 0x104)));
    // A return to the wrong place mispredicts.
    fe.predict(makeInstr(0x100, OpClass::Call, true, 0x2000));
    EXPECT_FALSE(
        fe.predict(makeInstr(0x2004, OpClass::Return, true, 0x999)));
    EXPECT_EQ(fe.returnMispredicts.value(), 1u);
}

TEST(FrontEnd, IndirectJumpLearns)
{
    FrontEndPredictor fe(BranchPredictorParams{});
    // First encounter mispredicts; a stable target then predicts.
    EXPECT_FALSE(
        fe.predict(makeInstr(0x100, OpClass::Jump, true, 0x3000)));
    fe.predict(makeInstr(0x3000, OpClass::Return, true, 0x104));
    EXPECT_TRUE(
        fe.predict(makeInstr(0x100, OpClass::Jump, true, 0x3000)));
}

TEST(FrontEnd, TrapAlwaysFlushes)
{
    FrontEndPredictor fe(BranchPredictorParams{});
    EXPECT_FALSE(
        fe.predict(makeInstr(0x100, OpClass::Trap, true, 0x7000)));
    EXPECT_FALSE(
        fe.predict(makeInstr(0x100, OpClass::Trap, true, 0x7000)));
    EXPECT_EQ(fe.mispredicts.value(), 2u);
}

TEST(Tlb, HitAfterFill)
{
    Tlb tlb(TlbParams{});
    EXPECT_GT(tlb.translate(0x10000), 0u); // cold: walk
    EXPECT_EQ(tlb.translate(0x10000), 0u); // now hits
    EXPECT_EQ(tlb.translate(0x11000), 0u); // same 8KB page
    EXPECT_EQ(tlb.walks.value(), 1u);
}

TEST(Tlb, SecondLevelCatchesL1Misses)
{
    TlbParams p;
    p.l1Entries = 4;
    p.l1Assoc = 2;
    p.l2Entries = 512;
    p.l2Assoc = 4;
    Tlb tlb(p);
    // Touch many pages: first pass all walks.
    for (Addr a = 0; a < 64; ++a)
        tlb.translate(a * 8192);
    std::uint64_t walks = tlb.walks.value();
    EXPECT_EQ(walks, 64u);
    // Second pass: L1 TLB (4 entries) misses, but the 512-entry L2
    // TLB holds everything: penalties are l2HitPenalty, no walks.
    for (Addr a = 0; a < 64; ++a) {
        Cycle pen = tlb.translate(a * 8192);
        EXPECT_LE(pen, p.l2HitPenalty);
    }
    EXPECT_EQ(tlb.walks.value(), walks);
}

namespace
{

/** Build a core over a record vector with a private hierarchy. */
struct CoreHarness
{
    explicit CoreHarness(std::vector<InstrRecord> recs,
                         HierarchyParams hp = HierarchyParams{})
        : hierarchy(hp),
          engine(PrefetchConfig{}, 0, hierarchy),
          source(std::move(recs)),
          core(0, CoreParams{}, hierarchy, engine, &source)
    {}

    /** Run until the core drains; @return cycles taken. */
    Cycle
    run(Cycle max_cycles = 1'000'000)
    {
        Cycle now = 0;
        while (!core.done() && now < max_cycles)
            core.tick(now++);
        return now;
    }

    CacheHierarchy hierarchy;
    PrefetchEngine engine;
    VectorTraceSource source;
    OoOCore core;
};

std::vector<InstrRecord>
linearAlu(int n, Addr base = 0x10000000)
{
    std::vector<InstrRecord> v;
    for (int i = 0; i < n; ++i) {
        InstrRecord r = makeInstr(base + 4u * i, OpClass::IntAlu);
        r.dstReg = static_cast<std::uint8_t>(1 + (i % 30));
        v.push_back(r);
    }
    return v;
}

HierarchyParams
zeroLatency()
{
    HierarchyParams p;
    p.makeFunctional();
    return p;
}

} // namespace

TEST(OoOCore, CommitsEverything)
{
    CoreHarness h(linearAlu(1000));
    h.run();
    EXPECT_TRUE(h.core.done());
    EXPECT_EQ(h.core.committed(), 1000u);
}

TEST(OoOCore, IpcBoundedByIssueWidth)
{
    // Zero-latency hierarchy isolates the core's structural limits.
    CoreHarness h(linearAlu(30000), zeroLatency());
    Cycle cycles = h.run();
    double ipc = 30000.0 / static_cast<double>(cycles);
    EXPECT_LE(ipc, 3.01); // 3-wide issue
    // Independent ALU stream in warm caches should get close to it.
    EXPECT_GT(ipc, 2.0);
}

TEST(OoOCore, DependentChainSerializes)
{
    // Every instruction depends on the previous one's result.
    std::vector<InstrRecord> v;
    for (int i = 0; i < 10000; ++i) {
        InstrRecord r =
            makeInstr(0x10000000 + 4u * i, OpClass::IntAlu);
        r.dstReg = 5;
        r.srcReg[0] = 5;
        v.push_back(r);
    }
    CoreHarness h(std::move(v), zeroLatency());
    Cycle cycles = h.run();
    double ipc = 10000.0 / static_cast<double>(cycles);
    EXPECT_LT(ipc, 1.05);
    EXPECT_GT(ipc, 0.8);
}

TEST(OoOCore, LoadMissesSlowExecution)
{
    // All loads share one code line so instruction fetch is free and
    // the data path dominates the comparison.
    std::vector<InstrRecord> hits, misses;
    for (int i = 0; i < 3000; ++i) {
        InstrRecord r = makeInstr(0x10000000, OpClass::Load);
        r.dstReg = static_cast<std::uint8_t>(1 + (i % 30));
        r.dataAddr = 0x2000000000ULL; // same line: hits after first
        hits.push_back(r);
        r.dataAddr = 0x2000000000ULL +
                     static_cast<Addr>(i) * 64 * 131; // conflict+cold
        misses.push_back(r);
    }
    CoreHarness a(std::move(hits));
    CoreHarness b(std::move(misses));
    Cycle fast = a.run();
    Cycle slow = b.run(10'000'000);
    EXPECT_GT(slow, fast * 5);
}

TEST(OoOCore, MispredictsCostCycles)
{
    // Alternating taken/not-taken pattern... use indirect jumps with
    // changing targets: always mispredicted.
    std::vector<InstrRecord> bad, good;
    Addr pc = 0x10000000;
    for (int i = 0; i < 2000; ++i) {
        // good: direct calls (never mispredict), matched returns
        InstrRecord c = makeInstr(pc, OpClass::Call, true, pc + 64);
        InstrRecord r =
            makeInstr(pc + 64, OpClass::Return, true, pc + 4);
        InstrRecord f = makeInstr(pc + 4, OpClass::IntAlu);
        good.push_back(c);
        good.push_back(r);
        good.push_back(f);
        // bad: indirect jumps alternating between two targets
        Addr t = (i % 2) ? pc + 64 : pc + 128;
        InstrRecord j = makeInstr(pc, OpClass::Jump, true, t);
        InstrRecord r2 = makeInstr(t, OpClass::Return, true, pc + 4);
        bad.push_back(j);
        bad.push_back(r2);
        bad.push_back(f);
    }
    CoreHarness g(std::move(good));
    CoreHarness b(std::move(bad));
    Cycle gc = g.run();
    Cycle bc = b.run();
    EXPECT_GT(bc, gc + 2000 * 8); // at least the redirect penalty each
}

TEST(OoOCore, FetchStallsOnInstructionMiss)
{
    // Jump across 1000 distinct lines: every line is an I$ miss to
    // memory; the run must cost at least ~400 cycles per line.
    std::vector<InstrRecord> v;
    Addr pc = 0x10000000;
    for (int i = 0; i < 1000; ++i) {
        Addr next = pc + 64 * 17; // distinct lines, conflict-heavy
        v.push_back(makeInstr(pc, OpClass::UncondBranch, true, next));
        pc = next;
    }
    CoreHarness h(std::move(v));
    Cycle cycles = h.run(10'000'000);
    EXPECT_GT(cycles, 300'000u);
    EXPECT_GT(h.core.fetchStallCycles.value(), 250'000u);
}

TEST(OoOCore, StoresDoNotStall)
{
    std::vector<InstrRecord> v;
    for (int i = 0; i < 3000; ++i) {
        InstrRecord r =
            makeInstr(0x10000000 + 4u * i, OpClass::Store);
        r.dataAddr =
            0x2000000000ULL + static_cast<Addr>(i) * 64 * 131;
        v.push_back(r);
    }
    CoreHarness h(std::move(v), zeroLatency());
    Cycle cycles = h.run();
    double ipc = 3000.0 / static_cast<double>(cycles);
    EXPECT_GT(ipc, 1.5); // store buffer hides miss latency
}
