/**
 * @file
 * Shape-lock tests: parameterized sweeps asserting that the
 * synthetic workloads and prefetchers reproduce the paper's
 * qualitative results. Deliberately loose bounds — these protect the
 * calibration from regressions, not exact numbers.
 */

#include <gtest/gtest.h>

#include <map>

#include "sim/experiment.hh"

using namespace ipref;

namespace
{

/** Functional CMP miss-rate run for one workload. */
SimResults
functionalRun(WorkloadKind kind, bool cmp, double scale = 0.5)
{
    RunSpec s;
    s.cmp = cmp;
    s.workloads = {kind};
    s.functional = true;
    s.instrScale = scale;
    return runSpec(s);
}

/** Cache of baseline results shared across tests in this file. */
SimResults &
cachedBaseline(WorkloadKind kind)
{
    static std::map<WorkloadKind, SimResults> cache;
    auto it = cache.find(kind);
    if (it == cache.end())
        it = cache.emplace(kind, functionalRun(kind, false)).first;
    return it->second;
}

} // namespace

class WorkloadShape
    : public ::testing::TestWithParam<WorkloadKind>
{};

TEST_P(WorkloadShape, L1IMissRateInPaperBand)
{
    // Paper Figure 1: 1.32% - 3.16% per instruction at the default
    // 32KB/4-way/64B configuration. Allow slack for the synthetic
    // substitution.
    SimResults r = cachedBaseline(GetParam());
    EXPECT_GT(r.l1iMissPerInstr(), 0.009);
    EXPECT_LT(r.l1iMissPerInstr(), 0.045);
}

TEST_P(WorkloadShape, MissBreakdownMatchesFigure3)
{
    SimResults r = cachedBaseline(GetParam());
    std::uint64_t total = 0;
    for (auto v : r.l1iMissByTransition)
        total += v;
    ASSERT_GT(total, 0u);
    auto frac = [&](FetchTransition t) {
        return static_cast<double>(
                   r.l1iMissByTransition[static_cast<std::size_t>(
                       t)]) /
               static_cast<double>(total);
    };
    double seq = frac(FetchTransition::Sequential);
    double branch = frac(FetchTransition::CondNotTaken) +
                    frac(FetchTransition::CondTakenFwd) +
                    frac(FetchTransition::CondTakenBack) +
                    frac(FetchTransition::UncondBranch);
    double func = frac(FetchTransition::Call) +
                  frac(FetchTransition::Jump) +
                  frac(FetchTransition::Return);
    double trap = frac(FetchTransition::Trap);
    // Paper: sequential 40-60%, branches 20-40%, calls 15-20%,
    // traps negligible (loose bounds).
    EXPECT_GT(seq, 0.35);
    EXPECT_LT(seq, 0.65);
    EXPECT_GT(branch, 0.12);
    EXPECT_LT(branch, 0.45);
    EXPECT_GT(func, 0.10);
    EXPECT_LT(func, 0.45);
    EXPECT_LT(trap, 0.02);
}

TEST_P(WorkloadShape, L2MissRateRisesOnCmp)
{
    SimResults single = cachedBaseline(GetParam());
    SimResults cmp = functionalRun(GetParam(), true);
    EXPECT_GT(cmp.l2iMissPerInstr(),
              single.l2iMissPerInstr() * 0.9);
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadShape,
    ::testing::Values(WorkloadKind::DB, WorkloadKind::TPCW,
                      WorkloadKind::JAPP, WorkloadKind::WEB),
    [](const auto &info) {
        std::string n = workloadName(info.param);
        n.erase(std::remove(n.begin(), n.end(), '-'), n.end());
        return n;
    });

TEST(CalibrationOrdering, JAppHighestWebLowest)
{
    double japp =
        cachedBaseline(WorkloadKind::JAPP).l1iMissPerInstr();
    double web = cachedBaseline(WorkloadKind::WEB).l1iMissPerInstr();
    double db = cachedBaseline(WorkloadKind::DB).l1iMissPerInstr();
    double tpcw =
        cachedBaseline(WorkloadKind::TPCW).l1iMissPerInstr();
    EXPECT_GT(japp, web);
    EXPECT_GT(db, web);
    EXPECT_GT(japp, tpcw);
}

class SchemeSweep : public ::testing::TestWithParam<PrefetchScheme>
{};

TEST_P(SchemeSweep, ReducesMissesWithSaneAccuracy)
{
    RunSpec s;
    s.cmp = true;
    s.workloads = {WorkloadKind::DB};
    s.instrScale = 0.25;
    SimResults base = runSpec(s);
    s.scheme = GetParam();
    SimResults pf = runSpec(s);
    EXPECT_LT(pf.l1iMissPerInstr(), base.l1iMissPerInstr());
    EXPECT_GT(pf.pfAccuracy(), 0.08);
    EXPECT_GE(pf.ipc, base.ipc * 0.98);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, SchemeSweep,
    ::testing::Values(PrefetchScheme::NextLineOnMiss,
                      PrefetchScheme::NextLineTagged,
                      PrefetchScheme::NextNLineTagged,
                      PrefetchScheme::Discontinuity,
                      PrefetchScheme::TargetHistory),
    [](const auto &info) {
        switch (info.param) {
          case PrefetchScheme::NextLineOnMiss: return "NLMiss";
          case PrefetchScheme::NextLineTagged: return "NLTagged";
          case PrefetchScheme::NextNLineTagged: return "N4L";
          case PrefetchScheme::Discontinuity: return "Disc";
          case PrefetchScheme::TargetHistory: return "Target";
          default: return "Other";
        }
    });

TEST(CalibrationPrefetch, CoverageOrdering)
{
    // Paper Figure 5: discontinuity > next-4-line > next-line.
    RunSpec s;
    s.cmp = true;
    s.workloads = {WorkloadKind::DB};
    s.instrScale = 0.25;
    s.scheme = PrefetchScheme::NextLineTagged;
    double nl = runSpec(s).l1iMissPerInstr();
    s.scheme = PrefetchScheme::NextNLineTagged;
    double n4l = runSpec(s).l1iMissPerInstr();
    s.scheme = PrefetchScheme::Discontinuity;
    double disc = runSpec(s).l1iMissPerInstr();
    EXPECT_LT(n4l, nl);
    EXPECT_LT(disc, n4l);
}

TEST(CalibrationPrefetch, AccuracyFallsWithAggressiveness)
{
    // Paper Figure 9(i): next-line (on miss) is the most accurate;
    // the 4-line schemes trade accuracy for coverage.
    RunSpec s;
    s.cmp = true;
    s.workloads = {WorkloadKind::DB};
    s.instrScale = 0.25;
    s.scheme = PrefetchScheme::NextLineOnMiss;
    double nl = runSpec(s).pfAccuracy();
    s.scheme = PrefetchScheme::NextNLineTagged;
    double n4l = runSpec(s).pfAccuracy();
    EXPECT_GT(nl, n4l);
}

TEST(CalibrationPrefetch, Discontinuity2NLMoreAccurate)
{
    // Paper Figure 9: halving the prefetch-ahead distance raises
    // accuracy.
    RunSpec s;
    s.cmp = true;
    s.workloads = {WorkloadKind::DB};
    s.instrScale = 0.25;
    s.scheme = PrefetchScheme::Discontinuity;
    s.degree = 4;
    double d4 = runSpec(s).pfAccuracy();
    s.degree = 2;
    double d2 = runSpec(s).pfAccuracy();
    EXPECT_GT(d2, d4);
}

TEST(CalibrationPrefetch, SmallTablesStillCover)
{
    // Paper Figure 10: a 4x smaller table loses little coverage.
    RunSpec s;
    s.cmp = true;
    s.workloads = {WorkloadKind::DB};
    s.instrScale = 0.25;
    s.scheme = PrefetchScheme::Discontinuity;
    s.tableEntries = 8192;
    double big = runSpec(s).l1iCoverage();
    s.tableEntries = 2048;
    double small = runSpec(s).l1iCoverage();
    s.tableEntries = 256;
    double tiny = runSpec(s).l1iCoverage();
    EXPECT_GT(small, big - 0.08);
    EXPECT_GT(tiny, 0.5 * big);
}

TEST(CalibrationBypass, RecoversPollutionWithoutLosingSpeed)
{
    RunSpec s;
    s.cmp = true;
    s.workloads = {WorkloadKind::DB};
    s.instrScale = 0.3;
    SimResults base = runSpec(s);
    s.scheme = PrefetchScheme::Discontinuity;
    SimResults noBypass = runSpec(s);
    s.bypassL2 = true;
    SimResults bypass = runSpec(s);
    // Pollution appears without bypass and disappears with it.
    EXPECT_GT(noBypass.l2dMissPerInstr(),
              base.l2dMissPerInstr() * 1.01);
    EXPECT_LT(bypass.l2dMissPerInstr(),
              noBypass.l2dMissPerInstr());
    // Bypass must not cost performance.
    EXPECT_GE(bypass.ipc, noBypass.ipc * 0.97);
}
