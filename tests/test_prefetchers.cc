/**
 * @file
 * Tests for the prefetcher candidate generators: next-line family,
 * the discontinuity predictor/prefetcher, and the target baseline.
 */

#include <gtest/gtest.h>

#include "error_helpers.hh"

#include <algorithm>

#include "prefetch/discontinuity.hh"
#include "prefetch/next_line.hh"
#include "prefetch/target_prefetcher.hh"

using namespace ipref;

namespace
{

DemandFetchEvent
event(Addr line, Addr prev = invalidAddr, bool miss = false,
      bool first_use = false)
{
    DemandFetchEvent e;
    e.lineAddr = line;
    e.prevLineAddr = prev;
    e.miss = miss;
    e.firstUseOfPrefetch = first_use;
    return e;
}

std::vector<Addr>
lines(const std::vector<PrefetchCandidate> &cands)
{
    std::vector<Addr> v;
    for (const auto &c : cands)
        v.push_back(c.lineAddr);
    return v;
}

} // namespace

TEST(NextLine, OnMissTriggersOnlyOnMiss)
{
    NextLinePrefetcher p(NextLinePrefetcher::Policy::OnMiss, 1, 64);
    std::vector<PrefetchCandidate> out;
    p.onDemandFetch(event(0x1000, invalidAddr, false), out);
    EXPECT_TRUE(out.empty());
    p.onDemandFetch(event(0x1000, invalidAddr, true), out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].lineAddr, 0x1040u);
}

TEST(NextLine, TaggedTriggersOnFirstUse)
{
    NextLinePrefetcher p(NextLinePrefetcher::Policy::Tagged, 1, 64);
    std::vector<PrefetchCandidate> out;
    p.onDemandFetch(event(0x1000, invalidAddr, false, false), out);
    EXPECT_TRUE(out.empty());
    p.onDemandFetch(event(0x1000, invalidAddr, false, true), out);
    EXPECT_EQ(out.size(), 1u);
}

TEST(NextLine, AlwaysTriggersAlways)
{
    NextLinePrefetcher p(NextLinePrefetcher::Policy::Always, 1, 64);
    std::vector<PrefetchCandidate> out;
    p.onDemandFetch(event(0x1000), out);
    EXPECT_EQ(out.size(), 1u);
}

TEST(NextLine, DegreeGeneratesRun)
{
    NextLinePrefetcher p(NextLinePrefetcher::Policy::Tagged, 4, 64);
    std::vector<PrefetchCandidate> out;
    p.onDemandFetch(event(0x1000, invalidAddr, true), out);
    EXPECT_EQ(lines(out),
              (std::vector<Addr>{0x1040, 0x1080, 0x10C0, 0x1100}));
}

TEST(NextLine, LookaheadSkipsToNth)
{
    NextLinePrefetcher p(NextLinePrefetcher::Policy::Tagged, 4, 64,
                         /*lookahead=*/true);
    std::vector<PrefetchCandidate> out;
    p.onDemandFetch(event(0x1000, invalidAddr, true), out);
    EXPECT_EQ(lines(out), (std::vector<Addr>{0x1100}));
}

TEST(NextLine, RespectsLineSize)
{
    NextLinePrefetcher p(NextLinePrefetcher::Policy::Tagged, 1, 128);
    std::vector<PrefetchCandidate> out;
    p.onDemandFetch(event(0x2000, invalidAddr, true), out);
    EXPECT_EQ(out[0].lineAddr, 0x2080u);
}

TEST(DiscPredictor, AllocateAndLookup)
{
    DiscontinuityPredictor p(256, 64);
    EXPECT_FALSE(p.lookup(0x1000).has_value());
    p.allocate(0x1000, 0x9000);
    auto hit = p.lookup(0x1000);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->target, 0x9000u);
    EXPECT_EQ(p.validEntries(), 1u);
    EXPECT_EQ(p.allocations.value(), 1u);
}

TEST(DiscPredictor, EvictionCounterProtects)
{
    DiscontinuityPredictor p(1, 64); // one entry: everything conflicts
    p.allocate(0x1000, 0x9000);
    // Three decays drain the 2-bit counter; the 4th conflict evicts.
    p.allocate(0x2000, 0xA000);
    p.allocate(0x2000, 0xA000);
    p.allocate(0x2000, 0xA000);
    EXPECT_EQ(p.lookup(0x1000)->target, 0x9000u);
    EXPECT_EQ(p.replacements.value(), 0u);
    p.allocate(0x2000, 0xA000);
    EXPECT_FALSE(p.lookup(0x1000).has_value());
    EXPECT_EQ(p.lookup(0x2000)->target, 0xA000u);
    EXPECT_EQ(p.replacements.value(), 1u);
    EXPECT_EQ(p.decays.value(), 3u);
}

TEST(DiscPredictor, CreditRestoresProtection)
{
    DiscontinuityPredictor p(1, 64);
    p.allocate(0x1000, 0x9000);
    p.allocate(0x2000, 0xA000);
    p.allocate(0x2000, 0xA000);
    // Counter is at 1; a useful prefetch bumps it back up.
    p.credit(p.lookup(0x1000)->index);
    p.allocate(0x2000, 0xA000);
    p.allocate(0x2000, 0xA000);
    EXPECT_TRUE(p.lookup(0x1000).has_value()); // still protected
}

TEST(DiscPredictor, RetargetRequiresDrainedCounter)
{
    DiscontinuityPredictor p(256, 64);
    p.allocate(0x1000, 0x9000);
    // Same trigger, new target: must drain the counter first.
    for (int i = 0; i < 3; ++i) {
        p.allocate(0x1000, 0xB000);
        EXPECT_EQ(p.lookup(0x1000)->target, 0x9000u);
    }
    p.allocate(0x1000, 0xB000);
    EXPECT_EQ(p.lookup(0x1000)->target, 0xB000u);
    EXPECT_EQ(p.retargets.value(), 1u);
}

TEST(DiscPredictor, ReallocateSameMappingIsIdempotent)
{
    DiscontinuityPredictor p(256, 64);
    p.allocate(0x1000, 0x9000);
    p.allocate(0x1000, 0x9000);
    p.allocate(0x1000, 0x9000);
    EXPECT_EQ(p.allocations.value(), 1u);
    EXPECT_EQ(p.decays.value(), 0u);
}

TEST(DiscPredictor, NonPow2Throws)
{
    test::expectThrows<ConfigError>(
        [] { DiscontinuityPredictor p{100, 64}; }, "power");
}

TEST(DiscPrefetcher, LearnsOnDiscontinuityMiss)
{
    DiscontinuityPrefetcher p(256, 4, 64);
    std::vector<PrefetchCandidate> out;
    // A miss on a far transition 0x1000 -> 0x9000 allocates.
    p.onDemandFetch(event(0x9000, 0x1000, true), out);
    EXPECT_TRUE(p.predictor().lookup(0x1000).has_value());
}

TEST(DiscPrefetcher, IgnoresSequentialAndSameLine)
{
    DiscontinuityPrefetcher p(256, 4, 64);
    std::vector<PrefetchCandidate> out;
    p.onDemandFetch(event(0x1040, 0x1000, true), out); // next line
    EXPECT_EQ(p.predictor().validEntries(), 0u);
    out.clear();
    p.onDemandFetch(event(0x1000, 0x1000, true), out); // same line
    EXPECT_EQ(p.predictor().validEntries(), 0u);
}

TEST(DiscPrefetcher, NoLearningOnHits)
{
    DiscontinuityPrefetcher p(256, 4, 64);
    std::vector<PrefetchCandidate> out;
    p.onDemandFetch(event(0x9000, 0x1000, false), out);
    EXPECT_EQ(p.predictor().validEntries(), 0u);
}

TEST(DiscPrefetcher, SequentialComponentAlwaysEmitted)
{
    DiscontinuityPrefetcher p(256, 4, 64);
    std::vector<PrefetchCandidate> out;
    p.onDemandFetch(event(0x1000, invalidAddr, true), out);
    auto v = lines(out);
    EXPECT_EQ(v, (std::vector<Addr>{0x1040, 0x1080, 0x10C0, 0x1100}));
    for (const auto &c : out)
        EXPECT_EQ(c.origin, PrefetchOrigin::Sequential);
}

TEST(DiscPrefetcher, ProbeAheadFindsDiscontinuity)
{
    DiscontinuityPrefetcher p(256, 4, 64);
    std::vector<PrefetchCandidate> out;
    // Teach: 0x1080 jumps to 0x9000.
    p.onDemandFetch(event(0x9000, 0x1080, true), out);
    out.clear();
    // Trigger at 0x1000: probing L..L+4 hits at 0x1080 (k=2), so
    // the target run 0x9000..0x9000+(4-2)*64 is prefetched too.
    p.onDemandFetch(event(0x1000, invalidAddr, true), out);
    auto v = lines(out);
    EXPECT_NE(std::find(v.begin(), v.end(), 0x9000u), v.end());
    EXPECT_NE(std::find(v.begin(), v.end(), 0x9040u), v.end());
    EXPECT_NE(std::find(v.begin(), v.end(), 0x9080u), v.end());
    EXPECT_EQ(std::find(v.begin(), v.end(), 0x90C0u), v.end());
    // The discontinuity-origin candidate carries the table index.
    bool found = false;
    for (const auto &c : out) {
        if (c.origin == PrefetchOrigin::Discontinuity) {
            EXPECT_EQ(c.lineAddr, 0x9000u);
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(DiscPrefetcher, CreditFlowsToPredictor)
{
    DiscontinuityPrefetcher p(1, 4, 64);
    std::vector<PrefetchCandidate> out;
    p.onDemandFetch(event(0x9000, 0x1000, true), out);
    // Drain protection, then credit, then verify protection again.
    p.predictor().allocate(0x2000, 0xA000);
    p.predictor().allocate(0x2000, 0xA000);
    p.predictor().allocate(0x2000, 0xA000);
    auto hit = p.predictor().lookup(0x1000);
    ASSERT_TRUE(hit.has_value());
    p.prefetchUseful(hit->index);
    p.predictor().allocate(0x2000, 0xA000);
    EXPECT_TRUE(p.predictor().lookup(0x1000).has_value());
}

TEST(DiscPrefetcher, Degree2Window)
{
    DiscontinuityPrefetcher p(256, 2, 64);
    std::vector<PrefetchCandidate> out;
    p.onDemandFetch(event(0x1000, invalidAddr, true), out);
    EXPECT_EQ(lines(out), (std::vector<Addr>{0x1040, 0x1080}));
    EXPECT_STREQ(p.name(), "discontinuity (2NL)");
}

TEST(TargetPrefetcher, LearnsSuccessors)
{
    TargetPrefetcher p(256, 2, 64);
    std::vector<PrefetchCandidate> out;
    // Walk 0x1000 -> 0x9000 twice so the successor is learned.
    p.onDemandFetch(event(0x1000), out);
    p.onDemandFetch(event(0x9000), out);
    p.onDemandFetch(event(0x1000), out);
    out.clear();
    p.onDemandFetch(event(0x1000), out);
    // Actually need the probe of 0x1000 after learning:
    auto v = lines(out);
    EXPECT_NE(std::find(v.begin(), v.end(), 0x9000u), v.end());
}

TEST(TargetPrefetcher, MultipleTargetsRetained)
{
    TargetPrefetcher p(256, 2, 64);
    std::vector<PrefetchCandidate> out;
    // 0x1000 alternates between 0x9000 and 0xA000.
    p.onDemandFetch(event(0x1000), out);
    p.onDemandFetch(event(0x9000), out);
    p.onDemandFetch(event(0x1000), out);
    p.onDemandFetch(event(0xA000), out);
    out.clear();
    p.onDemandFetch(event(0x1000), out);
    auto v = lines(out);
    EXPECT_NE(std::find(v.begin(), v.end(), 0x9000u), v.end());
    EXPECT_NE(std::find(v.begin(), v.end(), 0xA000u), v.end());
}

TEST(TargetPrefetcher, SequentialSuccessorsNotRecorded)
{
    TargetPrefetcher p(256, 2, 64, /*nonSeqOnly=*/true);
    std::vector<PrefetchCandidate> out;
    p.onDemandFetch(event(0x1000), out);
    p.onDemandFetch(event(0x1040), out); // sequential
    out.clear();
    p.onDemandFetch(event(0x1000), out);
    for (const auto &c : out)
        EXPECT_NE(c.origin, PrefetchOrigin::TargetTable);
}

TEST(Factory, CreatesAllSchemes)
{
    for (PrefetchScheme s :
         {PrefetchScheme::NextLineAlways, PrefetchScheme::NextLineOnMiss,
          PrefetchScheme::NextLineTagged,
          PrefetchScheme::NextNLineTagged, PrefetchScheme::LookaheadN,
          PrefetchScheme::Discontinuity,
          PrefetchScheme::TargetHistory}) {
        PrefetchConfig cfg;
        cfg.scheme = s;
        auto p = createPrefetcher(cfg);
        ASSERT_NE(p, nullptr) << schemeName(s);
        EXPECT_NE(p->name(), nullptr);
    }
    PrefetchConfig none;
    EXPECT_EQ(createPrefetcher(none), nullptr);
}

TEST(Factory, ParseSchemeRoundTrip)
{
    EXPECT_EQ(parseScheme("none"), PrefetchScheme::None);
    EXPECT_EQ(parseScheme("nl-miss"), PrefetchScheme::NextLineOnMiss);
    EXPECT_EQ(parseScheme("nl-tagged"),
              PrefetchScheme::NextLineTagged);
    EXPECT_EQ(parseScheme("n4l"), PrefetchScheme::NextNLineTagged);
    EXPECT_EQ(parseScheme("discontinuity"),
              PrefetchScheme::Discontinuity);
    EXPECT_EQ(parseScheme("target"), PrefetchScheme::TargetHistory);
    test::expectThrows<ConfigError>([] { parseScheme("bogus"); },
                                    "unknown prefetch scheme");
}
