/**
 * @file
 * Tests for the live telemetry layer: registry concurrency (the
 * serial sum must equal N threads' worth of relaxed-atomic updates),
 * sampler reconciliation (the stream's final record carries final
 * instrument totals), the Prometheus text exposition golden format,
 * the JSON-lines round trip ipref_top depends on, and end-to-end
 * reconciliation between the live counters and a run's reported
 * results.
 */

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <string>
#include <thread>
#include <vector>

#include "sim/experiment.hh"
#include "util/metrics.hh"

using namespace ipref;
using namespace ipref::metrics;

namespace
{

/** A fully populated snapshot with deterministic field values. */
Snapshot
sampleSnapshot()
{
    Snapshot s;
    s.seq = 7;
    s.unixMs = 1700000000123ULL;
    s.counters = {{"ipref_test_c", 3}, {"ipref_test_c2", 1ULL << 40}};
    s.gauges = {{"ipref_test_g", -2}};
    HistogramSample h;
    h.name = "ipref_test_h";
    h.bounds = {1, 5};
    h.counts = {2, 1, 4}; // per-bucket, +Inf last
    h.count = 7;
    h.sum = 42.5;
    s.histograms = {h};
    return s;
}

} // namespace

// --- serialization (always compiled) ----------------------------------

TEST(MetricsSnapshot, JsonLineRoundTripIsExact)
{
    Snapshot s = sampleSnapshot();
    Snapshot back = parseSnapshotLine(snapshotToJsonLine(s));
    EXPECT_EQ(back, s);
}

TEST(MetricsSnapshot, ParseRejectsDamagedLines)
{
    std::string line = snapshotToJsonLine(sampleSnapshot());
    // A torn tail from racing the writer must throw, not misparse.
    EXPECT_ANY_THROW(
        parseSnapshotLine(line.substr(0, line.size() / 2)));
    EXPECT_ANY_THROW(parseSnapshotLine("not json at all"));
    EXPECT_ANY_THROW(parseSnapshotLine("[1, 2, 3]"));
}

TEST(MetricsSnapshot, PrometheusGoldenFormat)
{
    Snapshot s = sampleSnapshot();
    const std::string expected =
        "# TYPE ipref_test_c counter\n"
        "ipref_test_c 3\n"
        "# TYPE ipref_test_c2 counter\n"
        "ipref_test_c2 1099511627776\n"
        "# TYPE ipref_test_g gauge\n"
        "ipref_test_g -2\n"
        "# TYPE ipref_test_h histogram\n"
        "ipref_test_h_bucket{le=\"1\"} 2\n"
        "ipref_test_h_bucket{le=\"5\"} 3\n"
        "ipref_test_h_bucket{le=\"+Inf\"} 7\n"
        "ipref_test_h_sum 42.5\n"
        "ipref_test_h_count 7\n";
    EXPECT_EQ(renderPrometheus(s), expected);
}

// --- localhost exposition endpoint (--metrics-port) -------------------

TEST(MetricsSnapshot, PrometheusTcpEndpointServesGoldenExposition)
{
    // The exporter binds a fixed localhost port (0 = endpoint off),
    // so probe a small candidate range; a machine with the whole
    // range occupied skips rather than fails.
    std::unique_ptr<PrometheusExporter> exporter;
    for (unsigned port = 18500; port <= 18530; ++port) {
        auto e = std::make_unique<PrometheusExporter>("", port);
        if (e->boundPort() != 0) {
            exporter = std::move(e);
            break;
        }
    }
    if (!exporter)
        GTEST_SKIP() << "no free port in 18500-18530";

    Snapshot s = sampleSnapshot();
    exporter->consume(s);

    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port =
        htons(static_cast<std::uint16_t>(exporter->boundPort()));
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof(addr)),
              0);
    const std::string req = "GET /metrics HTTP/1.0\r\n\r\n";
    ASSERT_EQ(::send(fd, req.data(), req.size(), 0),
              static_cast<ssize_t>(req.size()));

    std::string resp;
    char buf[4096];
    ssize_t n;
    while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0)
        resp.append(buf, static_cast<std::size_t>(n));
    ::close(fd);

    // Status line, scrape-compatible content type, and a body that is
    // exactly the golden text exposition of the consumed snapshot.
    EXPECT_NE(resp.find("HTTP/1.0 200 OK\r\n"), std::string::npos);
    EXPECT_NE(resp.find("Content-Type: text/plain; version=0.0.4"),
              std::string::npos);
    std::size_t split = resp.find("\r\n\r\n");
    ASSERT_NE(split, std::string::npos);
    std::string body = resp.substr(split + 4);
    EXPECT_EQ(body, renderPrometheus(s));
    EXPECT_NE(resp.find("Content-Length: " +
                        std::to_string(body.size())),
              std::string::npos);

    // A second scrape sees the refreshed exposition, not a stale one.
    s.counters.push_back({"ipref_test_c3", 9});
    exporter->consume(s);
    int fd2 = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd2, 0);
    ASSERT_EQ(::connect(fd2, reinterpret_cast<sockaddr *>(&addr),
                        sizeof(addr)),
              0);
    ASSERT_EQ(::send(fd2, req.data(), req.size(), 0),
              static_cast<ssize_t>(req.size()));
    std::string resp2;
    while ((n = ::recv(fd2, buf, sizeof(buf), 0)) > 0)
        resp2.append(buf, static_cast<std::size_t>(n));
    ::close(fd2);
    EXPECT_NE(resp2.find("ipref_test_c3 9\n"), std::string::npos);
}

TEST(MetricsSnapshot, PrometheusRoundTripRecoversSeries)
{
    Snapshot s = sampleSnapshot();
    // The exposition does not carry seq / timestamp.
    s.seq = 0;
    s.unixMs = 0;
    Snapshot back = parsePrometheus(renderPrometheus(s));
    EXPECT_EQ(back, s);
}

// --- instruments ------------------------------------------------------

TEST(MetricsRegistry, SameNameReturnsSameInstrument)
{
    metrics::Counter &a = registry().counter("ipref_test_registry_c");
    metrics::Counter &b = registry().counter("ipref_test_registry_c");
    EXPECT_EQ(&a, &b);
    Gauge &g1 = registry().gauge("ipref_test_registry_g");
    Gauge &g2 = registry().gauge("ipref_test_registry_g");
    EXPECT_EQ(&g1, &g2);
}

TEST(MetricsRegistry, ConcurrentUpdatesSumExactly)
{
    if constexpr (!kCompiled)
        GTEST_SKIP() << "metrics compiled out";

    metrics::Counter &c = registry().counter("ipref_test_conc_c");
    metrics::Gauge &g = registry().gauge("ipref_test_conc_g");
    LatencyHistogram &h = registry().histogram(
        "ipref_test_conc_h", {10, 100, 1000});
    c.reset();
    g.reset();
    h.reset();

    constexpr unsigned kThreads = 8;
    constexpr std::uint64_t kIters = 20000;
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (std::uint64_t i = 0; i < kIters; ++i) {
                c.add(1);
                g.add(3);
                g.sub(1);
                h.observe(static_cast<double>((i + t) % 150));
            }
        });
    }
    for (auto &th : threads)
        th.join();

    EXPECT_EQ(c.value(), kThreads * kIters);
    EXPECT_EQ(g.value(),
              static_cast<std::int64_t>(2 * kThreads * kIters));

    HistogramSample hs = h.sample();
    EXPECT_EQ(hs.count, kThreads * kIters);
    std::uint64_t bucketSum = 0;
    for (std::uint64_t b : hs.counts)
        bucketSum += b;
    EXPECT_EQ(bucketSum, hs.count);

    // Integral observations below 2^53: the CAS-loop double sum is
    // exact regardless of addition order.
    double expectedSum = 0;
    for (unsigned t = 0; t < kThreads; ++t)
        for (std::uint64_t i = 0; i < kIters; ++i)
            expectedSum += static_cast<double>((i + t) % 150);
    EXPECT_EQ(hs.sum, expectedSum);
}

// --- sampler ----------------------------------------------------------

TEST(MetricsSampler, FinalSnapshotCarriesFinalTotals)
{
    if constexpr (!kCompiled)
        GTEST_SKIP() << "metrics compiled out";

    metrics::Counter &c = registry().counter("ipref_test_sampler_c");
    c.reset();

    auto ring = std::make_shared<SnapshotRing>(1024);
    Sampler sampler(5);
    sampler.addExporter(ring);
    sampler.start();

    for (int i = 0; i < 50; ++i) {
        c.add(7);
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    std::uint64_t final = c.value();
    sampler.stop();

    std::vector<Snapshot> snaps = ring->recent();
    ASSERT_FALSE(snaps.empty());

    // stop() exports one last snapshot after joining the thread, so
    // the stream's final record reflects final instrument totals —
    // interval deltas summed over the stream reconcile exactly.
    const std::uint64_t *last =
        snaps.back().counter("ipref_test_sampler_c");
    ASSERT_NE(last, nullptr);
    EXPECT_EQ(*last, final);

    // The counter is monotonic: the recorded series must be too.
    std::uint64_t prev = 0;
    for (const Snapshot &s : snaps) {
        const std::uint64_t *v = s.counter("ipref_test_sampler_c");
        ASSERT_NE(v, nullptr);
        EXPECT_GE(*v, prev);
        prev = *v;
    }

    // Sequence numbers strictly increase across the stream.
    for (std::size_t i = 1; i < snaps.size(); ++i)
        EXPECT_GT(snaps[i].seq, snaps[i - 1].seq);
}

// --- end-to-end reconciliation ---------------------------------------

TEST(MetricsReconciliation, MeasureCountersMatchRunResults)
{
    if constexpr (!kCompiled)
        GTEST_SKIP() << "metrics compiled out";

    RunSpec spec;
    spec.cmp = true;
    spec.workloads = {WorkloadKind::DB};
    spec.scheme = PrefetchScheme::NextNLineTagged;
    spec.instrScale = 0.02;

    Snapshot before = registry().snapshot();
    SimResults r = runSpecs({spec}, 1).at(0);
    Snapshot after = registry().snapshot();

    auto delta = [&](const char *name) -> std::uint64_t {
        const std::uint64_t *b = before.counter(name);
        const std::uint64_t *a = after.counter(name);
        return (a ? *a : 0) - (b ? *b : 0);
    };

    // The run loops flush the live instruction counters at the
    // warm-up/measure boundary and at run exit, so the measure-phase
    // counter delta equals the run's reported instruction count
    // exactly — the acceptance criterion for live-vs-final totals.
    EXPECT_EQ(delta("ipref_sim_measure_instructions_total"),
              r.instructions);

    // Phase attribution must partition the total exactly — in timing
    // mode the boundary resets the committed counters progress()
    // reads, so the warm-up remainder has to flush before the reset
    // (a stale cursor would wrap the warm-up counter back to zero).
    EXPECT_GT(delta("ipref_sim_warmup_instructions_total"), 0u);
    EXPECT_EQ(delta("ipref_sim_instructions_total"),
              delta("ipref_sim_warmup_instructions_total") +
                  delta("ipref_sim_measure_instructions_total"));
    EXPECT_EQ(delta("ipref_sim_runs_started_total"), 1u);
    EXPECT_EQ(delta("ipref_sim_runs_finished_total"), 1u);
    EXPECT_EQ(delta("ipref_sim_measure_begin_total"), 1u);
    EXPECT_EQ(delta("ipref_batch_runs_ok_total"), 1u);
    EXPECT_EQ(delta("ipref_batch_runs_completed_total"), 1u);

    // Prefetch issue telemetry covers warm-up + measurement, so it
    // can only exceed the measurement-window counter.
    EXPECT_GE(delta("ipref_prefetch_issued_total"), r.pfIssued);

    // Gauges drain once the run is torn down.
    const std::int64_t *active =
        after.gauge("ipref_sim_active_runs");
    ASSERT_NE(active, nullptr);
    const std::int64_t *activeBefore =
        before.gauge("ipref_sim_active_runs");
    EXPECT_EQ(*active, activeBefore ? *activeBefore : 0);
}
