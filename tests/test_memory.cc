/**
 * @file
 * Tests for the bandwidth-limited, demand-priority memory channel.
 */

#include <gtest/gtest.h>

#include "memory/memory.hh"

using namespace ipref;

namespace
{

MemoryParams
params(double gbps = 20.0, Cycle lat = 400)
{
    MemoryParams p;
    p.gbPerSec = gbps;
    p.latency = lat;
    return p;
}

} // namespace

TEST(Memory, FixedLatencyWhenIdle)
{
    MemoryChannel m(params());
    EXPECT_EQ(m.read(100, false), 500u);
}

TEST(Memory, FunctionalModeIsInstant)
{
    MemoryChannel m(params(20.0, 0));
    EXPECT_TRUE(m.functional());
    EXPECT_EQ(m.read(42, false), 42u);
    EXPECT_EQ(m.read(42, true), 42u);
}

TEST(Memory, OccupancyMath)
{
    MemoryParams p = params(20.0);
    // 20 GB/s at 3 GHz = 6.67 B/cycle; 64B line = 9.6 cycles.
    EXPECT_NEAR(p.bytesPerCycle(), 6.667, 0.01);
    EXPECT_NEAR(p.lineOccupancy(), 9.6, 0.01);
}

TEST(Memory, BackToBackDemandQueues)
{
    MemoryChannel m(params());
    Cycle first = m.read(0, false);
    Cycle second = m.read(0, false);
    EXPECT_EQ(first, 400u);
    // second starts after the first transfer's occupancy (9.6 cyc)
    EXPECT_GE(second, 409u);
    EXPECT_GT(m.queueDelayCycles.value(), 0u);
}

TEST(Memory, PrefetchBacklogDoesNotDelayDemand)
{
    MemoryChannel m(params());
    for (int i = 0; i < 50; ++i)
        m.read(0, true); // huge prefetch backlog
    Cycle demand = m.read(0, false);
    EXPECT_EQ(demand, 400u); // demand sees only demand traffic
}

TEST(Memory, DemandPushesPrefetchesBack)
{
    MemoryChannel m(params());
    m.read(0, false);
    Cycle pf = m.read(0, true);
    EXPECT_GE(pf, 409u); // queued behind the demand transfer
}

TEST(Memory, PrefetchesQueueBehindEachOther)
{
    MemoryChannel m(params());
    Cycle p1 = m.read(0, true);
    Cycle p2 = m.read(0, true);
    EXPECT_EQ(p1, 400u);
    EXPECT_GE(p2, 409u);
}

TEST(Memory, IdleChannelRecovers)
{
    MemoryChannel m(params());
    m.read(0, false);
    // After the channel drains, a later request sees no queueing.
    EXPECT_EQ(m.read(1000, false), 1400u);
}

TEST(Memory, WritesConsumeBandwidth)
{
    MemoryChannel m(params());
    for (int i = 0; i < 10; ++i)
        m.write(0);
    Cycle pf = m.read(0, true);
    EXPECT_GE(pf, 400u + 90u); // behind ~10 write occupancies
    EXPECT_EQ(m.writes.value(), 10u);
}

TEST(Memory, Counters)
{
    MemoryChannel m(params());
    m.read(0, false);
    m.read(0, true);
    m.write(0);
    EXPECT_EQ(m.reads.value(), 2u);
    EXPECT_EQ(m.prefetchReads.value(), 1u);
    EXPECT_EQ(m.writes.value(), 1u);
    EXPECT_EQ(m.bytesTransferred(), 3u * 64);
}

TEST(Memory, LowerBandwidthQueuesMore)
{
    MemoryChannel fast(params(20.0));
    MemoryChannel slow(params(10.0));
    Cycle f = 0, s = 0;
    for (int i = 0; i < 20; ++i) {
        f = fast.read(0, false);
        s = slow.read(0, false);
    }
    EXPECT_GT(s, f);
}
