/**
 * @file
 * Tests for the prefetch queue (Section 4.1 semantics) and the
 * recent-demand-fetch filter.
 */

#include <gtest/gtest.h>

#include "prefetch/fetch_history.hh"
#include "prefetch/prefetch_queue.hh"

using namespace ipref;

namespace
{

PrefetchCandidate
cand(Addr line)
{
    PrefetchCandidate c;
    c.lineAddr = line;
    return c;
}

} // namespace

TEST(Queue, LifoOrder)
{
    PrefetchQueue q(8);
    q.push(cand(0x100));
    q.push(cand(0x200));
    q.push(cand(0x300));
    EXPECT_EQ(q.popForIssue()->lineAddr, 0x300u);
    EXPECT_EQ(q.popForIssue()->lineAddr, 0x200u);
    EXPECT_EQ(q.popForIssue()->lineAddr, 0x100u);
    EXPECT_FALSE(q.popForIssue().has_value());
}

TEST(Queue, DuplicateWaitingIsHoisted)
{
    PrefetchQueue q(8);
    q.push(cand(0x100));
    q.push(cand(0x200));
    EXPECT_EQ(q.push(cand(0x100)), PrefetchQueue::PushResult::Hoisted);
    EXPECT_EQ(q.size(), 2u);
    EXPECT_EQ(q.popForIssue()->lineAddr, 0x100u); // hoisted to head
    EXPECT_EQ(q.hoists.value(), 1u);
}

TEST(Queue, DuplicateOfIssuedIsDropped)
{
    PrefetchQueue q(8);
    q.push(cand(0x100));
    q.popForIssue();
    EXPECT_EQ(q.push(cand(0x100)),
              PrefetchQueue::PushResult::DroppedIssued);
    EXPECT_FALSE(q.popForIssue().has_value());
    EXPECT_EQ(q.duplicateDrops.value(), 1u);
}

TEST(Queue, DuplicateOfInvalidatedIsDropped)
{
    PrefetchQueue q(8);
    q.push(cand(0x100));
    q.demandFetched(0x100);
    EXPECT_EQ(q.push(cand(0x100)),
              PrefetchQueue::PushResult::DroppedInvalid);
    EXPECT_FALSE(q.popForIssue().has_value());
}

TEST(Queue, DemandInvalidatesWaiting)
{
    PrefetchQueue q(8);
    q.push(cand(0x100));
    q.push(cand(0x200));
    q.demandFetched(0x100);
    EXPECT_EQ(q.waiting(), 1u);
    EXPECT_EQ(q.popForIssue()->lineAddr, 0x200u);
    EXPECT_FALSE(q.popForIssue().has_value());
    EXPECT_EQ(q.demandInvalidations.value(), 1u);
}

TEST(Queue, OverflowDropsOldestWaiting)
{
    PrefetchQueue q(3);
    q.push(cand(0x100));
    q.push(cand(0x200));
    q.push(cand(0x300));
    q.push(cand(0x400)); // 0x100 (oldest) leaves
    EXPECT_EQ(q.overflowDrops.value(), 1u);
    EXPECT_EQ(q.popForIssue()->lineAddr, 0x400u);
    EXPECT_EQ(q.popForIssue()->lineAddr, 0x300u);
    EXPECT_EQ(q.popForIssue()->lineAddr, 0x200u);
    EXPECT_FALSE(q.popForIssue().has_value());
}

TEST(Queue, RecordsReclaimedBeforeWaiting)
{
    PrefetchQueue q(3);
    q.push(cand(0x100));
    q.popForIssue(); // 0x100 becomes an issued record
    q.push(cand(0x200));
    q.push(cand(0x300));
    // Queue full: 1 record + 2 waiting. The record is reclaimed,
    // not a waiting prefetch.
    q.push(cand(0x400));
    EXPECT_EQ(q.overflowDrops.value(), 0u);
    EXPECT_EQ(q.waiting(), 3u);
    // The issued record is gone: a duplicate now inserts fresh
    // (no suppression record left to drop it).
    EXPECT_EQ(q.push(cand(0x100)),
              PrefetchQueue::PushResult::Inserted);
}

TEST(Queue, RecordSuppressionWindow)
{
    PrefetchQueue q(4);
    q.push(cand(0x100));
    q.popForIssue();
    // While the record survives, duplicates are suppressed.
    EXPECT_EQ(q.push(cand(0x100)),
              PrefetchQueue::PushResult::DroppedIssued);
    EXPECT_EQ(q.push(cand(0x100)),
              PrefetchQueue::PushResult::DroppedIssued);
}

TEST(Queue, WaitingCount)
{
    PrefetchQueue q(8);
    EXPECT_EQ(q.waiting(), 0u);
    q.push(cand(0x100));
    q.push(cand(0x200));
    EXPECT_EQ(q.waiting(), 2u);
    q.popForIssue();
    EXPECT_EQ(q.waiting(), 1u);
    EXPECT_EQ(q.size(), 2u); // record retained
}

TEST(History, RemembersRecentFetches)
{
    FetchHistory h(4);
    h.push(0x100);
    h.push(0x200);
    EXPECT_TRUE(h.contains(0x100));
    EXPECT_TRUE(h.contains(0x200));
    EXPECT_FALSE(h.contains(0x300));
}

TEST(History, OldEntriesAgeOut)
{
    FetchHistory h(4);
    for (Addr a = 1; a <= 6; ++a)
        h.push(a * 0x100);
    EXPECT_FALSE(h.contains(0x100));
    EXPECT_FALSE(h.contains(0x200));
    EXPECT_TRUE(h.contains(0x300));
    EXPECT_TRUE(h.contains(0x600));
}

TEST(History, Capacity)
{
    FetchHistory h(32);
    EXPECT_EQ(h.capacity(), 32u);
    EXPECT_FALSE(h.contains(0));
}
