/**
 * @file
 * Tests for the synthetic workload generator: CFG structural
 * invariants, stream consistency (the PC chain property), determinism
 * and statistical shape.
 */

#include <gtest/gtest.h>

#include "error_helpers.hh"

#include <set>
#include <unordered_set>

#include "trace/trace_stats.hh"
#include "workload/presets.hh"

using namespace ipref;

namespace
{

std::shared_ptr<const ProgramCfg>
smallProgram()
{
    WorkloadConfig cfg;
    cfg.name = "tiny";
    cfg.layoutSeed = 99;
    cfg.codeFootprintBytes = 256u << 10;
    cfg.concurrentContexts = 2;
    cfg.contextSwitchPeriod = 500;
    static std::shared_ptr<const ProgramCfg> prog =
        std::make_shared<const ProgramCfg>(cfg);
    return prog;
}

} // namespace

TEST(Cfg, StructuralInvariants)
{
    auto prog = smallProgram();
    const auto &funcs = prog->functions();
    const auto &blocks = prog->blocks();
    ASSERT_GT(funcs.size(), 16u);

    for (const auto &fn : funcs) {
        ASSERT_GE(fn.numBlocks, 1u);
        // Entry is the first block's address, function-aligned.
        EXPECT_EQ(fn.entry, blocks[fn.firstBlock].startPc);
        EXPECT_EQ(fn.entry % 32, 0u);
        // Blocks are contiguous in memory.
        for (std::uint32_t b = 0; b + 1 < fn.numBlocks; ++b) {
            const BasicBlock &cur = blocks[fn.firstBlock + b];
            const BasicBlock &nxt = blocks[fn.firstBlock + b + 1];
            EXPECT_EQ(cur.endPc(), nxt.startPc);
        }
        // The last block returns (except the dispatcher's loop).
        const BasicBlock &last =
            blocks[fn.firstBlock + fn.numBlocks - 1];
        if (&fn != &funcs[0])
            EXPECT_EQ(last.term, TermKind::Return);
        // Branch targets stay inside the function.
        for (std::uint32_t b = 0; b < fn.numBlocks; ++b) {
            const BasicBlock &bb = blocks[fn.firstBlock + b];
            if (bb.term == TermKind::CondBranch ||
                (bb.term == TermKind::UncondBranch &&
                 !bb.isTailCall && &fn != &funcs[0])) {
                EXPECT_GE(bb.targetBlock, fn.firstBlock);
                EXPECT_LT(bb.targetBlock,
                          fn.firstBlock + fn.numBlocks);
            }
            if (bb.term == TermKind::Call ||
                (bb.term == TermKind::UncondBranch && bb.isTailCall))
                EXPECT_LT(bb.targetFunc, funcs.size());
        }
    }
}

TEST(Cfg, TrapHandlersAreLeaves)
{
    auto prog = smallProgram();
    const auto &blocks = prog->blocks();
    for (std::uint32_t ti : prog->trapFuncs()) {
        const Function &fn = prog->functions()[ti];
        EXPECT_TRUE(fn.isTrapHandler);
        for (std::uint32_t b = 0; b < fn.numBlocks; ++b) {
            TermKind t = blocks[fn.firstBlock + b].term;
            EXPECT_NE(t, TermKind::Call);
            EXPECT_NE(t, TermKind::IndirectCall);
        }
    }
}

TEST(Cfg, FunctionsDoNotOverlap)
{
    auto prog = smallProgram();
    std::vector<std::pair<Addr, Addr>> ranges;
    const auto &blocks = prog->blocks();
    for (const auto &fn : prog->functions()) {
        Addr lo = fn.entry;
        Addr hi =
            blocks[fn.firstBlock + fn.numBlocks - 1].endPc();
        ranges.push_back({lo, hi});
    }
    std::sort(ranges.begin(), ranges.end());
    for (std::size_t i = 0; i + 1 < ranges.size(); ++i)
        EXPECT_LE(ranges[i].second, ranges[i + 1].first);
}

TEST(Cfg, RootCdfIsMonotoneAndComplete)
{
    auto prog = smallProgram();
    const auto &cdf = prog->rootCdf();
    ASSERT_FALSE(cdf.empty());
    for (std::size_t i = 1; i < cdf.size(); ++i)
        EXPECT_GE(cdf[i], cdf[i - 1]);
    EXPECT_DOUBLE_EQ(cdf.back(), 1.0);
}

TEST(Workload, PcChainConsistency)
{
    // The defining stream property: every instruction's address is
    // the previous instruction's nextPc(). Traps and context
    // switches must preserve it too.
    Workload wl(smallProgram(), 1234);
    InstrRecord prev, cur;
    ASSERT_TRUE(wl.next(prev));
    for (int i = 0; i < 200000; ++i) {
        ASSERT_TRUE(wl.next(cur));
        ASSERT_EQ(cur.pc, prev.nextPc())
            << "broken chain at instruction " << i;
        prev = cur;
    }
}

TEST(Workload, DeterministicForSeed)
{
    Workload a(smallProgram(), 77);
    Workload b(smallProgram(), 77);
    InstrRecord ra, rb;
    for (int i = 0; i < 20000; ++i) {
        ASSERT_TRUE(a.next(ra));
        ASSERT_TRUE(b.next(rb));
        ASSERT_EQ(ra.pc, rb.pc);
        ASSERT_EQ(ra.dataAddr, rb.dataAddr);
        ASSERT_EQ(static_cast<int>(ra.op), static_cast<int>(rb.op));
    }
}

TEST(Workload, ResetReproducesStream)
{
    Workload wl(smallProgram(), 42);
    std::vector<Addr> first;
    InstrRecord r;
    for (int i = 0; i < 5000; ++i) {
        wl.next(r);
        first.push_back(r.pc);
    }
    wl.reset();
    for (int i = 0; i < 5000; ++i) {
        wl.next(r);
        ASSERT_EQ(r.pc, first[i]);
    }
}

TEST(Workload, SeedsDiverge)
{
    Workload a(smallProgram(), 1);
    Workload b(smallProgram(), 2);
    InstrRecord ra, rb;
    int same = 0;
    for (int i = 0; i < 10000; ++i) {
        a.next(ra);
        b.next(rb);
        same += ra.pc == rb.pc;
    }
    EXPECT_LT(same, 9000);
}

TEST(Workload, MakesProgress)
{
    Workload wl(smallProgram(), 5);
    InstrRecord r;
    for (int i = 0; i < 300000; ++i)
        wl.next(r);
    EXPECT_GT(wl.transactionsCompleted(), 10u);
    EXPECT_GT(wl.contextSwitches(), 100u);
    EXPECT_EQ(wl.instructionsEmitted(), 300000u);
}

TEST(Workload, CodeAddressesWithinFootprint)
{
    auto prog = smallProgram();
    Workload wl(prog, 6);
    const WorkloadConfig &cfg = prog->config();
    InstrRecord r;
    for (int i = 0; i < 100000; ++i) {
        wl.next(r);
        EXPECT_GE(r.pc, cfg.codeBase);
        EXPECT_LT(r.pc, cfg.codeBase + prog->codeBytes());
    }
}

TEST(Workload, DataAddressesInDataSegment)
{
    auto prog = smallProgram();
    Workload wl(prog, 7, /*dataOffset=*/0x10000000);
    const WorkloadConfig &cfg = prog->config();
    InstrRecord r;
    int mem_ops = 0;
    for (int i = 0; i < 100000; ++i) {
        wl.next(r);
        if (!r.isMem())
            continue;
        ++mem_ops;
        EXPECT_GE(r.dataAddr, cfg.dataBase + 0x10000000);
        EXPECT_EQ(r.dataAddr % 4, 0u);
    }
    EXPECT_GT(mem_ops, 20000);
}

TEST(Workload, DisjointDataSegmentsPerCore)
{
    auto w0 = makeWorkload(WorkloadKind::WEB, 0);
    auto w1 = makeWorkload(WorkloadKind::WEB, 1);
    std::unordered_set<Addr> lines0;
    InstrRecord r;
    for (int i = 0; i < 50000; ++i) {
        w0->next(r);
        if (r.isMem())
            lines0.insert(r.dataAddr >> 6);
    }
    for (int i = 0; i < 50000; ++i) {
        w1->next(r);
        if (r.isMem())
            EXPECT_EQ(lines0.count(r.dataAddr >> 6), 0u);
    }
}

TEST(Workload, SharedCodeAcrossCores)
{
    // Same application on two cores shares the program text.
    auto w0 = makeWorkload(WorkloadKind::WEB, 0);
    auto w1 = makeWorkload(WorkloadKind::WEB, 1);
    EXPECT_EQ(&w0->program(), &w1->program());
}

TEST(Workload, InstructionMixMatchesConfig)
{
    auto prog = smallProgram();
    Workload wl(prog, 9);
    TraceSummary s = summarizeTrace(wl, 300000);
    double loads = s.opFraction(OpClass::Load);
    double stores = s.opFraction(OpClass::Store);
    // Terminator slots dilute the static mix slightly.
    EXPECT_NEAR(loads, prog->config().loadFraction, 0.06);
    EXPECT_NEAR(stores, prog->config().storeFraction, 0.04);
    EXPECT_GT(s.opFraction(OpClass::CondBranch), 0.02);
    EXPECT_GT(s.opFraction(OpClass::Call) +
                  s.opFraction(OpClass::Jump),
              0.005);
}

TEST(Workload, TrapsAreRare)
{
    auto prog = smallProgram();
    Workload wl(prog, 10);
    TraceSummary s = summarizeTrace(wl, 400000);
    double traps = s.opFraction(OpClass::Trap);
    // switches (1/500) dominate the plain trap rate here
    EXPECT_GT(traps, 0.0005);
    EXPECT_LT(traps, 0.01);
}

TEST(Presets, AllBuildAndRun)
{
    for (WorkloadKind kind : allWorkloadKinds()) {
        auto wl = makeWorkload(kind, 0);
        InstrRecord r;
        for (int i = 0; i < 1000; ++i)
            ASSERT_TRUE(wl->next(r));
    }
}

TEST(Presets, NamesRoundTrip)
{
    EXPECT_EQ(parseWorkloadKind("db"), WorkloadKind::DB);
    EXPECT_EQ(parseWorkloadKind("TPC-W"), WorkloadKind::TPCW);
    EXPECT_EQ(parseWorkloadKind("jApp"), WorkloadKind::JAPP);
    EXPECT_EQ(parseWorkloadKind("SPECweb99"), WorkloadKind::WEB);
    EXPECT_STREQ(workloadName(WorkloadKind::TPCW), "TPC-W");
}

TEST(Presets, UnknownNameThrows)
{
    test::expectThrows<ConfigError>(
        [] { parseWorkloadKind("quake3"); }, "unknown workload");
}

TEST(Presets, ProgramsAreMemoized)
{
    auto a = buildProgram(WorkloadKind::DB);
    auto b = buildProgram(WorkloadKind::DB);
    EXPECT_EQ(a.get(), b.get());
}

TEST(Presets, DistinctAddressSpaces)
{
    // Different applications occupy different code regions so the
    // CMP "Mix" does not alias.
    std::set<Addr> bases;
    for (WorkloadKind kind : allWorkloadKinds())
        bases.insert(presetConfig(kind).codeBase);
    EXPECT_EQ(bases.size(), allWorkloadKinds().size());
}
