/**
 * @file
 * Tests for the related-work extensions: the wrong-path prefetcher
 * [12] and the confidence-based probe filter [15].
 */

#include <gtest/gtest.h>

#include "error_helpers.hh"

#include "cache/hierarchy.hh"
#include "prefetch/confidence_filter.hh"
#include "prefetch/call_graph.hh"
#include "prefetch/engine.hh"
#include "prefetch/wrong_path.hh"
#include "sim/experiment.hh"

using namespace ipref;

namespace
{

constexpr Addr codeA = 0x10000000;

BranchEvent
branch(Addr pc, Addr target, bool taken)
{
    BranchEvent e;
    e.branchPc = pc;
    e.takenTarget = target;
    e.fallthrough = pc + instrBytes;
    e.taken = taken;
    return e;
}

} // namespace

TEST(WrongPath, PrefetchesUntakenTarget)
{
    WrongPathPrefetcher p(1, 64);
    std::vector<PrefetchCandidate> out;
    // Not-taken branch: the wrong path is the taken target.
    p.onBranch(branch(codeA, codeA + 0x1000, false), out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].lineAddr, codeA + 0x1000);
}

TEST(WrongPath, PrefetchesFallthroughOnTaken)
{
    WrongPathPrefetcher p(1, 64);
    std::vector<PrefetchCandidate> out;
    // Taken branch whose fallthrough is in another line.
    Addr pc = codeA + 60; // last slot of the line
    p.onBranch(branch(pc, codeA + 0x1000, true), out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].lineAddr, codeA + 64);
}

TEST(WrongPath, SkipsSameLineAlternatives)
{
    WrongPathPrefetcher p(1, 64);
    std::vector<PrefetchCandidate> out;
    // Both directions land in the same line: nothing to prefetch.
    p.onBranch(branch(codeA, codeA + 16, false), out);
    EXPECT_TRUE(out.empty());
}

TEST(WrongPath, DegreeExtendsWrongPathRun)
{
    WrongPathPrefetcher p(2, 64);
    std::vector<PrefetchCandidate> out;
    p.onBranch(branch(codeA, codeA + 0x1000, false), out);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[1].lineAddr, codeA + 0x1000 + 64);
}

TEST(WrongPath, SequentialComponentOnTrigger)
{
    WrongPathPrefetcher p(1, 64);
    std::vector<PrefetchCandidate> out;
    DemandFetchEvent ev;
    ev.lineAddr = codeA;
    ev.miss = true;
    p.onDemandFetch(ev, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].lineAddr, codeA + 64);
}

TEST(Confidence, OptimisticDefaultAllowsColdPrefetches)
{
    ConfidenceFilter f(256, 64);
    EXPECT_TRUE(f.confident(codeA));
}

TEST(Confidence, IneffectivePrefetchesDrainConfidence)
{
    ConfidenceFilter f(256, 64, /*threshold=*/2, /*initial=*/2);
    f.prefetchIneffective(codeA);
    EXPECT_FALSE(f.confident(codeA));
    EXPECT_EQ(f.decrements.value(), 1u);
    EXPECT_GE(f.suppressed.value(), 1u);
}

TEST(Confidence, EvictionRestoresConfidence)
{
    ConfidenceFilter f(256, 64);
    f.prefetchIneffective(codeA);
    f.prefetchIneffective(codeA);
    EXPECT_FALSE(f.confident(codeA));
    f.lineEvicted(codeA);
    f.lineEvicted(codeA);
    EXPECT_TRUE(f.confident(codeA));
}

TEST(Confidence, CountersSaturate)
{
    ConfidenceFilter f(256, 64);
    for (int i = 0; i < 10; ++i)
        f.lineEvicted(codeA);
    EXPECT_EQ(f.increments.value(), 1u); // started at 2, max 3
    for (int i = 0; i < 10; ++i)
        f.prefetchIneffective(codeA);
    EXPECT_EQ(f.decrements.value(), 3u);
}

TEST(Confidence, NonPow2Throws)
{
    test::expectThrows<ConfigError>(
        [] { ConfidenceFilter f{100, 64}; }, "power");
}

TEST(ConfidenceEngine, ReplacesTagProbing)
{
    HierarchyParams hp;
    hp.makeFunctional();
    CacheHierarchy h(hp);
    PrefetchConfig cfg;
    cfg.scheme = PrefetchScheme::NextNLineTagged;
    cfg.useConfidenceFilter = true;
    PrefetchEngine e(cfg, 0, h);

    DemandFetchEvent ev;
    ev.lineAddr = codeA;
    ev.miss = true;
    e.onDemandFetch(ev);
    for (Cycle t = 1; t < 10; ++t)
        e.tick(t, true);
    EXPECT_EQ(e.tagProbes.value(), 0u); // no tag-port pressure
    EXPECT_EQ(e.issued.value(), 4u);
}

TEST(ConfidenceEngine, LearnsResidentLines)
{
    HierarchyParams hp;
    hp.makeFunctional();
    CacheHierarchy h(hp);
    PrefetchConfig cfg;
    cfg.scheme = PrefetchScheme::NextLineOnMiss;
    cfg.useConfidenceFilter = true;
    cfg.confidenceEntries = 1; // one shared counter, for the test
    cfg.historySize = 0;       // isolate the confidence path
    PrefetchEngine e(cfg, 0, h);

    // An ineffective prefetch (line resident) drains the shared
    // counter below threshold; the next prefetch is suppressed
    // before reaching the caches.
    h.fetchAccess(0, codeA + 64, FetchTransition::Sequential, 0);
    DemandFetchEvent ev;
    ev.lineAddr = codeA;
    ev.miss = true;
    e.onDemandFetch(ev);
    e.tick(1, true); // DroppedPresent -> ineffective -> counter 1
    ev.lineAddr = codeA + 0x4000;
    e.onDemandFetch(ev);
    e.tick(2, true); // gated by the drained counter
    EXPECT_GE(e.confidenceSuppressed.value(), 1u);
}

TEST(ConfidenceEngine, EndToEndStillCoversMisses)
{
    RunSpec spec;
    spec.cmp = true;
    spec.workloads = {WorkloadKind::WEB};
    spec.instrScale = 0.15;
    SimResults base = runSpec(spec);

    spec.scheme = PrefetchScheme::Discontinuity;
    SystemConfig cfg = makeConfig(spec);
    cfg.prefetch.useConfidenceFilter = true;
    System system(cfg);
    SimResults r = system.run();
    EXPECT_LT(r.l1iMissPerInstr(), base.l1iMissPerInstr());
    EXPECT_EQ(r.pfTagProbes, 0u);
}

TEST(WrongPathEngine, EndToEndReducesMisses)
{
    RunSpec spec;
    spec.cmp = true;
    spec.workloads = {WorkloadKind::WEB};
    spec.instrScale = 0.15;
    SimResults base = runSpec(spec);
    spec.scheme = PrefetchScheme::WrongPath;
    SimResults r = runSpec(spec);
    EXPECT_LT(r.l1iMissPerInstr(), base.l1iMissPerInstr());
    EXPECT_GT(r.pfIssued, 0u);
}

TEST(WrongPathEngine, ParseAndFactory)
{
    EXPECT_EQ(parseScheme("wrong-path"), PrefetchScheme::WrongPath);
    PrefetchConfig cfg;
    cfg.scheme = PrefetchScheme::WrongPath;
    auto p = createPrefetcher(cfg);
    ASSERT_NE(p, nullptr);
    EXPECT_STREQ(p->name(), "wrong-path");
}

TEST(CallGraph, LearnsAndPredictsCalleeSequence)
{
    CallGraphPrefetcher p(256, 8, 1, 64);
    std::vector<PrefetchCandidate> out;
    auto call = [&](Addr site, Addr target) {
        FunctionEvent e;
        e.sitePc = site;
        e.target = target;
        p.onFunction(e, out);
    };
    auto ret = [&]() {
        FunctionEvent e;
        e.isReturn = true;
        p.onFunction(e, out);
    };
    // First pass: F (0x9000) calls G (0xA000) then H (0xB000).
    call(0x1000, 0x9000); // enter F
    call(0x9010, 0xA000); // F -> G
    ret();                // back in F
    call(0x9020, 0xB000); // F -> H
    ret();
    ret();                // leave F
    out.clear();
    // Second pass: entering F predicts G; returning from G
    // predicts H.
    call(0x1000, 0x9000);
    bool predicted_g = false;
    for (const auto &c : out)
        predicted_g |= c.lineAddr == (0xA000ull & ~63ull);
    EXPECT_TRUE(predicted_g);
    out.clear();
    call(0x9010, 0xA000);
    ret(); // back in F -> next predicted callee is H
    bool predicted_h = false;
    for (const auto &c : out)
        predicted_h |= c.lineAddr == (0xB000ull & ~63ull);
    EXPECT_TRUE(predicted_h);
    EXPECT_GE(p.tableHits.value(), 2u);
}

TEST(CallGraph, EmptyTableMakesNoPredictions)
{
    CallGraphPrefetcher p(256, 8, 1, 64);
    std::vector<PrefetchCandidate> out;
    FunctionEvent e;
    e.sitePc = 0x1000;
    e.target = 0x9000;
    p.onFunction(e, out);
    EXPECT_TRUE(out.empty());
    EXPECT_EQ(p.predictions.value(), 0u);
}

TEST(CallGraph, EndToEndReducesMisses)
{
    RunSpec spec;
    spec.cmp = true;
    spec.workloads = {WorkloadKind::WEB};
    spec.instrScale = 0.15;
    SimResults base = runSpec(spec);
    spec.scheme = PrefetchScheme::CallGraph;
    SimResults r = runSpec(spec);
    EXPECT_LT(r.l1iMissPerInstr(), base.l1iMissPerInstr());
    EXPECT_GT(r.pfIssued, 0u);
    EXPECT_EQ(parseScheme("cgp"), PrefetchScheme::CallGraph);
}
