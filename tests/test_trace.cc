/**
 * @file
 * Tests for the trace layer: record semantics, sources, binary file
 * round-trips and the summarizer.
 */

#include <gtest/gtest.h>

#include "error_helpers.hh"

#include <cstdio>
#include <sstream>

#include "trace/record.hh"
#include "trace/trace_file.hh"
#include "trace/trace_source.hh"
#include "trace/trace_stats.hh"

using namespace ipref;

namespace
{

InstrRecord
makeInstr(Addr pc, OpClass op, bool taken = false, Addr target = 0)
{
    InstrRecord r;
    r.pc = pc;
    r.op = op;
    r.taken = taken;
    r.target = target;
    return r;
}

} // namespace

TEST(Record, NextPcSequential)
{
    InstrRecord r = makeInstr(0x1000, OpClass::IntAlu);
    EXPECT_FALSE(r.isCti());
    EXPECT_FALSE(r.redirects());
    EXPECT_EQ(r.nextPc(), 0x1004u);
}

TEST(Record, NextPcTakenBranch)
{
    InstrRecord r =
        makeInstr(0x1000, OpClass::CondBranch, true, 0x2000);
    EXPECT_TRUE(r.isCti());
    EXPECT_TRUE(r.redirects());
    EXPECT_EQ(r.nextPc(), 0x2000u);
}

TEST(Record, NextPcNotTakenBranch)
{
    InstrRecord r =
        makeInstr(0x1000, OpClass::CondBranch, false, 0x2000);
    EXPECT_FALSE(r.redirects());
    EXPECT_EQ(r.nextPc(), 0x1004u);
}

TEST(Record, TransitionTaxonomy)
{
    EXPECT_EQ(makeInstr(0, OpClass::IntAlu).transitionType(),
              FetchTransition::Sequential);
    EXPECT_EQ(makeInstr(0x100, OpClass::CondBranch, false, 0x200)
                  .transitionType(),
              FetchTransition::CondNotTaken);
    EXPECT_EQ(makeInstr(0x100, OpClass::CondBranch, true, 0x200)
                  .transitionType(),
              FetchTransition::CondTakenFwd);
    EXPECT_EQ(makeInstr(0x200, OpClass::CondBranch, true, 0x100)
                  .transitionType(),
              FetchTransition::CondTakenBack);
    EXPECT_EQ(makeInstr(0, OpClass::UncondBranch, true, 8)
                  .transitionType(),
              FetchTransition::UncondBranch);
    EXPECT_EQ(makeInstr(0, OpClass::Call, true, 8).transitionType(),
              FetchTransition::Call);
    EXPECT_EQ(makeInstr(0, OpClass::Jump, true, 8).transitionType(),
              FetchTransition::Jump);
    EXPECT_EQ(makeInstr(0, OpClass::Return, true, 8).transitionType(),
              FetchTransition::Return);
    EXPECT_EQ(makeInstr(0, OpClass::Trap, true, 8).transitionType(),
              FetchTransition::Trap);
}

TEST(Record, MissGroups)
{
    EXPECT_EQ(missGroup(FetchTransition::Sequential),
              MissGroup::Sequential);
    EXPECT_EQ(missGroup(FetchTransition::CondNotTaken),
              MissGroup::Branch);
    EXPECT_EQ(missGroup(FetchTransition::CondTakenFwd),
              MissGroup::Branch);
    EXPECT_EQ(missGroup(FetchTransition::CondTakenBack),
              MissGroup::Branch);
    EXPECT_EQ(missGroup(FetchTransition::UncondBranch),
              MissGroup::Branch);
    EXPECT_EQ(missGroup(FetchTransition::Call), MissGroup::Function);
    EXPECT_EQ(missGroup(FetchTransition::Jump), MissGroup::Function);
    EXPECT_EQ(missGroup(FetchTransition::Return),
              MissGroup::Function);
    EXPECT_EQ(missGroup(FetchTransition::Trap), MissGroup::Trap);
}

TEST(Record, Names)
{
    EXPECT_STREQ(opClassName(OpClass::Load), "Load");
    EXPECT_STREQ(transitionName(FetchTransition::CondTakenFwd),
                 "Cond branch (tf)");
}

TEST(VectorSource, IterationAndReset)
{
    std::vector<InstrRecord> recs = {
        makeInstr(0x10, OpClass::IntAlu),
        makeInstr(0x14, OpClass::Load)};
    VectorTraceSource src(recs);
    InstrRecord r;
    ASSERT_TRUE(src.next(r));
    EXPECT_EQ(r.pc, 0x10u);
    ASSERT_TRUE(src.next(r));
    EXPECT_EQ(r.pc, 0x14u);
    EXPECT_FALSE(src.next(r));
    src.reset();
    ASSERT_TRUE(src.next(r));
    EXPECT_EQ(r.pc, 0x10u);
}

TEST(LoopingSource, WrapsAround)
{
    std::vector<InstrRecord> recs = {makeInstr(0x10, OpClass::IntAlu)};
    VectorTraceSource inner(recs);
    LoopingTraceSource src(inner);
    InstrRecord r;
    for (int i = 0; i < 10; ++i) {
        ASSERT_TRUE(src.next(r));
        EXPECT_EQ(r.pc, 0x10u);
    }
}

TEST(TraceFile, RoundTrip)
{
    std::string path = ::testing::TempDir() + "roundtrip.trc";
    InstrRecord w;
    w.pc = 0x123456789abcULL;
    w.target = 0xfedcba987654ULL;
    w.dataAddr = 0x1122334455ULL;
    w.op = OpClass::CondBranch;
    w.taken = true;
    w.srcReg[0] = 7;
    w.srcReg[1] = 8;
    w.dstReg = 9;
    {
        TraceFileWriter writer(path, 0, TraceFormat::V2);
        for (int i = 0; i < 100; ++i) {
            w.pc += instrBytes;
            writer.write(w);
        }
        writer.close();
        EXPECT_EQ(writer.count(), 100u);
    }
    TraceFileReader reader(path);
    EXPECT_EQ(reader.count(), 100u);
    InstrRecord r;
    Addr pc = 0x123456789abcULL;
    int n = 0;
    while (reader.next(r)) {
        pc += instrBytes;
        EXPECT_EQ(r.pc, pc);
        EXPECT_EQ(r.target, w.target);
        EXPECT_EQ(r.dataAddr, w.dataAddr);
        EXPECT_EQ(r.op, OpClass::CondBranch);
        EXPECT_TRUE(r.taken);
        EXPECT_EQ(r.srcReg[0], 7);
        EXPECT_EQ(r.srcReg[1], 8);
        EXPECT_EQ(r.dstReg, 9);
        ++n;
    }
    EXPECT_EQ(n, 100);
    std::remove(path.c_str());
}

TEST(TraceFile, ResetRewinds)
{
    std::string path = ::testing::TempDir() + "rewind.trc";
    {
        TraceFileWriter writer(path, 0, TraceFormat::V2);
        writer.write(makeInstr(0x42, OpClass::IntAlu));
        writer.close();
    }
    TraceFileReader reader(path);
    InstrRecord r;
    ASSERT_TRUE(reader.next(r));
    EXPECT_FALSE(reader.next(r));
    reader.reset();
    ASSERT_TRUE(reader.next(r));
    EXPECT_EQ(r.pc, 0x42u);
    std::remove(path.c_str());
}

TEST(TraceFile, MissingFileThrows)
{
    test::expectThrows<TraceError>(
        [] { TraceFileReader r("/nonexistent/path/x.trc"); },
        "cannot open");
}

TEST(TraceFile, BadMagicIsFatal)
{
    std::string path = ::testing::TempDir() + "bad.trc";
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    const char junk[64] = "not a trace file at all............";
    std::fwrite(junk, 1, sizeof(junk), f);
    std::fclose(f);
    test::expectThrows<TraceError>([&] { TraceFileReader r{path}; },
                                   "bad trace magic");
    std::remove(path.c_str());
}

namespace
{

/** Little-endian u64 into a raw byte buffer. */
void
putLe64(unsigned char *p, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        p[i] = static_cast<unsigned char>(v >> (8 * i));
}

/** Pack one record exactly as the v1/v2 on-disk layout does. */
void
packRaw(const InstrRecord &rec, unsigned char *buf)
{
    putLe64(buf + 0, rec.pc);
    putLe64(buf + 8, rec.target);
    putLe64(buf + 16, rec.dataAddr);
    buf[24] = static_cast<unsigned char>(rec.op);
    buf[25] = rec.taken ? 1 : 0;
    buf[26] = rec.srcReg[0];
    buf[27] = rec.srcReg[1];
    buf[28] = rec.dstReg;
}

/** Hand-write a legacy v1 file: 32B header, raw records, no CRCs. */
void
writeV1File(const std::string &path,
            const std::vector<InstrRecord> &recs)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    unsigned char hdr[32] = {'I', 'P', 'R', 'T', 'R', 'C', '0', '1'};
    putLe64(hdr + 8, recs.size());
    std::fwrite(hdr, 1, sizeof(hdr), f);
    for (const InstrRecord &rec : recs) {
        unsigned char buf[traceRecordBytes];
        packRaw(rec, buf);
        std::fwrite(buf, 1, sizeof(buf), f);
    }
    std::fclose(f);
}

} // namespace

TEST(TraceFile, ReadsLegacyV1Files)
{
    std::string path = ::testing::TempDir() + "legacy.trc";
    std::vector<InstrRecord> recs;
    for (int i = 0; i < 5; ++i)
        recs.push_back(makeInstr(0x1000 + 4u * i, OpClass::IntAlu));
    recs.push_back(
        makeInstr(0x1014, OpClass::CondBranch, true, 0x2000));
    writeV1File(path, recs);

    TraceFileReader reader(path);
    EXPECT_EQ(reader.version(), 1u);
    EXPECT_EQ(reader.count(), recs.size());
    InstrRecord r;
    for (const InstrRecord &want : recs) {
        ASSERT_TRUE(reader.next(r));
        EXPECT_EQ(r.pc, want.pc);
        EXPECT_EQ(r.op, want.op);
        EXPECT_EQ(r.taken, want.taken);
        EXPECT_EQ(r.target, want.target);
    }
    EXPECT_FALSE(reader.next(r));
    std::remove(path.c_str());
}

TEST(TraceFile, V1InvalidOpByteThrows)
{
    // v1 has no checksums, so the decode-time op validation is the
    // only line of defense against garbage bytes.
    std::string path = ::testing::TempDir() + "legacy_bad_op.trc";
    std::vector<InstrRecord> recs = {makeInstr(0x42, OpClass::IntAlu)};
    recs.push_back(recs[0]);
    recs[1].op = static_cast<OpClass>(0xee);
    writeV1File(path, recs);

    TraceFileReader reader(path);
    InstrRecord r;
    ASSERT_TRUE(reader.next(r));
    test::expectThrows<TraceError>(
        [&] {
            while (reader.next(r)) {
            }
        },
        "invalid op class");
    std::remove(path.c_str());
}

TEST(TraceFile, WritesVersion2)
{
    std::string path = ::testing::TempDir() + "v2.trc";
    {
        // v2 must stay writable for compatibility studies.
        TraceFileWriter writer(path, 0, TraceFormat::V2);
        // Spill past one CRC block to cover the multi-block path.
        for (unsigned i = 0; i < traceDefaultBlockRecords + 10; ++i)
            writer.write(makeInstr(0x1000 + 4u * i, OpClass::IntAlu));
        writer.close();
    }
    TraceFileReader reader(path);
    EXPECT_EQ(reader.version(), 2u);
    EXPECT_EQ(reader.count(), traceDefaultBlockRecords + 10u);
    InstrRecord r;
    std::uint64_t n = 0;
    while (reader.next(r)) {
        EXPECT_EQ(r.pc, 0x1000 + 4u * n);
        ++n;
    }
    EXPECT_EQ(n, reader.count());
    EXPECT_FALSE(reader.corrupt());
    std::remove(path.c_str());
}

TEST(TraceFile, SmallBlocksRoundTrip)
{
    std::string path = ::testing::TempDir() + "smallblk.trc";
    {
        TraceFileWriter writer(path, /*blockRecords=*/4,
                               TraceFormat::V2);
        for (unsigned i = 0; i < 11; ++i) // partial trailing block
            writer.write(makeInstr(0x1000 + 4u * i, OpClass::IntAlu));
        writer.close();
    }
    TraceFileReader reader(path);
    InstrRecord r;
    std::uint64_t n = 0;
    while (reader.next(r))
        ++n;
    EXPECT_EQ(n, 11u);
    std::remove(path.c_str());
}

TEST(TraceStats, SummarizesMixAndTransitions)
{
    // Two lines: 16 ALU ops in line 0, then a call into line 4.
    std::vector<InstrRecord> recs;
    for (int i = 0; i < 15; ++i)
        recs.push_back(makeInstr(0x1000 + 4 * i, OpClass::IntAlu));
    recs.push_back(
        makeInstr(0x103c, OpClass::Call, true, 0x1100));
    recs.push_back(makeInstr(0x1100, OpClass::Load));
    recs.back().dataAddr = 0x900000;
    VectorTraceSource src(recs);
    TraceSummary s = summarizeTrace(src);
    EXPECT_EQ(s.instructions, 17u);
    EXPECT_EQ(s.opCounts[static_cast<std::size_t>(OpClass::Call)],
              1u);
    EXPECT_EQ(s.lineTransitions[static_cast<std::size_t>(
                  FetchTransition::Call)],
              1u);
    EXPECT_EQ(s.codeLinesTouched, 2u);
    EXPECT_EQ(s.dataLinesTouched, 1u);
    EXPECT_GT(s.discontinuityFraction(), 0.9);
    std::ostringstream os;
    s.print(os);
    EXPECT_NE(os.str().find("instructions: 17"), std::string::npos);
}

TEST(TraceStats, MaxInstrsBound)
{
    std::vector<InstrRecord> recs(50, makeInstr(0x10, OpClass::IntAlu));
    VectorTraceSource src(recs);
    TraceSummary s = summarizeTrace(src, 10);
    EXPECT_EQ(s.instructions, 10u);
}
