/**
 * @file
 * Shared assertion for the recoverable-error contract: @p fn must
 * throw exactly @p Ex, with @p needle somewhere in the message. Used
 * by the former death tests now that user-input failures throw
 * SimError subclasses instead of exiting the process.
 */

#ifndef IPREF_TESTS_ERROR_HELPERS_HH
#define IPREF_TESTS_ERROR_HELPERS_HH

#include <gtest/gtest.h>

#include <string>

#include "util/error.hh"

namespace ipref::test
{

template <typename Ex, typename Fn>
void
expectThrows(Fn &&fn, const std::string &needle)
{
    try {
        fn();
        ADD_FAILURE() << "expected an exception, none was thrown";
    } catch (const Ex &e) {
        EXPECT_NE(std::string(e.what()).find(needle),
                  std::string::npos)
            << "message '" << e.what() << "' lacks '" << needle << "'";
    } catch (const std::exception &e) {
        ADD_FAILURE() << "wrong exception type: " << e.what();
    }
}

} // namespace ipref::test

#endif // IPREF_TESTS_ERROR_HELPERS_HH
