/**
 * @file
 * Tests for the prefetch engine: filtering, tag-port arbitration,
 * issue, usefulness accounting and predictor crediting.
 */

#include <gtest/gtest.h>

#include "cache/hierarchy.hh"
#include "prefetch/discontinuity.hh"
#include "prefetch/engine.hh"

using namespace ipref;

namespace
{

constexpr Addr codeA = 0x10000000;

HierarchyParams
functionalParams(bool bypass = false)
{
    HierarchyParams p;
    p.numCores = 1;
    p.prefetchBypassL2 = bypass;
    p.makeFunctional();
    return p;
}

PrefetchConfig
n4lConfig()
{
    PrefetchConfig cfg;
    cfg.scheme = PrefetchScheme::NextNLineTagged;
    cfg.degree = 4;
    return cfg;
}

DemandFetchEvent
missEvent(Addr line, Addr prev = invalidAddr)
{
    DemandFetchEvent e;
    e.lineAddr = line;
    e.prevLineAddr = prev;
    e.miss = true;
    return e;
}

} // namespace

TEST(Engine, DisabledWithoutScheme)
{
    CacheHierarchy h(functionalParams());
    PrefetchEngine e(PrefetchConfig{}, 0, h);
    EXPECT_FALSE(e.enabled());
    e.onDemandFetch(missEvent(codeA));
    e.tick(0, true);
    EXPECT_EQ(e.issued.value(), 0u);
}

TEST(Engine, IssuesOnFreeTagPort)
{
    CacheHierarchy h(functionalParams());
    PrefetchEngine e(n4lConfig(), 0, h);
    e.onDemandFetch(missEvent(codeA));
    EXPECT_EQ(e.candidates.value(), 4u);
    e.tick(1, /*tagPortFree=*/false);
    EXPECT_EQ(e.issued.value(), 0u); // port busy
    for (Cycle t = 2; t < 10; ++t)
        e.tick(t, true);
    EXPECT_EQ(e.issued.value(), 4u);
    EXPECT_EQ(e.tagProbes.value(), 4u);
    // The prefetched lines landed in the L1I.
    h.drainAll();
    EXPECT_TRUE(h.l1i(0).probe(codeA + 64));
    EXPECT_TRUE(h.l1i(0).probe(codeA + 4 * 64));
}

TEST(Engine, OneProbePerCycle)
{
    CacheHierarchy h(functionalParams());
    PrefetchEngine e(n4lConfig(), 0, h);
    e.onDemandFetch(missEvent(codeA));
    e.tick(1, true);
    EXPECT_EQ(e.tagProbes.value(), 1u);
}

TEST(Engine, RecentFetchFilterDrops)
{
    CacheHierarchy h(functionalParams());
    PrefetchEngine e(n4lConfig(), 0, h);
    // Demand-fetch the next line first, then trigger at codeA: the
    // candidate for codeA+64 matches recent history and is dropped.
    e.onDemandFetch(missEvent(codeA + 64));
    e.onDemandFetch(missEvent(codeA));
    EXPECT_GE(e.filteredRecent.value(), 1u);
}

TEST(Engine, ProbeHitDropsResidentLines)
{
    CacheHierarchy h(functionalParams());
    PrefetchEngine e(n4lConfig(), 0, h);
    // Line already resident.
    h.fetchAccess(0, codeA + 64, FetchTransition::Sequential, 0);
    DemandFetchEvent ev = missEvent(codeA);
    // (not in history: use a different engine event path)
    e.onDemandFetch(ev);
    for (Cycle t = 1; t < 10; ++t)
        e.tick(t, true);
    EXPECT_GE(e.tagProbeHits.value(), 1u);
    EXPECT_EQ(e.issued.value(), 3u); // the other three lines
}

TEST(Engine, UsefulnessAccounting)
{
    CacheHierarchy h(functionalParams());
    PrefetchEngine e(n4lConfig(), 0, h);
    e.onDemandFetch(missEvent(codeA));
    for (Cycle t = 1; t < 10; ++t)
        e.tick(t, true);
    h.drainAll();
    ASSERT_EQ(e.issued.value(), 4u);
    // Demand uses one prefetched line: the hierarchy reports first
    // use and the engine credits it.
    FetchResult r = h.fetchAccess(0, codeA + 64,
                                  FetchTransition::Sequential, 20);
    ASSERT_TRUE(r.firstUseOfPrefetch);
    DemandFetchEvent ev;
    ev.lineAddr = codeA + 64;
    ev.prevLineAddr = codeA;
    ev.firstUseOfPrefetch = true;
    e.onDemandFetch(ev);
    EXPECT_EQ(e.usefulPrefetches.value(), 1u);
    EXPECT_NEAR(e.accuracy(), 0.25, 1e-9);
}

TEST(Engine, UselessTrackedOnEviction)
{
    CacheHierarchy h(functionalParams());
    PrefetchEngine e(n4lConfig(), 0, h);
    e.onDemandFetch(missEvent(codeA));
    for (Cycle t = 1; t < 10; ++t)
        e.tick(t, true);
    h.drainAll();
    // Conflict-evict codeA+64 without using it.
    std::uint64_t sets = h.l1i(0).params().numSets();
    unsigned assoc = h.l1i(0).params().assoc;
    for (unsigned i = 1; i <= assoc; ++i)
        h.fetchAccess(0, codeA + 64 + i * sets * 64,
                      FetchTransition::Sequential, 100 + i);
    h.drainAll();
    EXPECT_GE(e.uselessPrefetches.value(), 1u);
}

TEST(Engine, DiscontinuityCreditPath)
{
    CacheHierarchy h(functionalParams());
    PrefetchConfig cfg;
    cfg.scheme = PrefetchScheme::Discontinuity;
    cfg.degree = 4;
    cfg.tableEntries = 256;
    PrefetchEngine e(cfg, 0, h);
    auto *disc =
        dynamic_cast<DiscontinuityPrefetcher *>(e.prefetcher());
    ASSERT_NE(disc, nullptr);

    // Teach the predictor: codeA -> 0x20000000.
    e.onDemandFetch(missEvent(0x20000000, codeA));
    ASSERT_TRUE(disc->predictor().lookup(codeA).has_value());

    // Age the target out of the recent-fetch filter (32 entries),
    // otherwise the engine correctly suppresses the prefetch.
    for (unsigned i = 0; i < 33; ++i)
        e.onDemandFetch(missEvent(0x30000000 + i * 64ull));

    // Trigger at codeA: target run gets prefetched.
    e.onDemandFetch(missEvent(codeA));
    for (Cycle t = 1; t < 20; ++t)
        e.tick(t, true);
    h.drainAll();
    ASSERT_TRUE(h.l1i(0).probe(0x20000000));

    // Demand-use the discontinuity target: predictor entry credited.
    FetchResult r = h.fetchAccess(0, 0x20000000,
                                  FetchTransition::UncondBranch, 50);
    ASSERT_TRUE(r.firstUseOfPrefetch);
    DemandFetchEvent ev;
    ev.lineAddr = 0x20000000;
    ev.prevLineAddr = codeA;
    ev.firstUseOfPrefetch = true;
    e.onDemandFetch(ev);
    EXPECT_GE(e.usefulPrefetches.value(), 1u);
}

TEST(Engine, DemandInvalidatesQueuedPrefetch)
{
    CacheHierarchy h(functionalParams());
    PrefetchEngine e(n4lConfig(), 0, h);
    e.onDemandFetch(missEvent(codeA));
    // Before any issue, demand reaches codeA+64.
    e.onDemandFetch(missEvent(codeA + 64, codeA));
    EXPECT_GE(e.queue().demandInvalidations.value(), 1u);
}

TEST(Engine, StatsRegistration)
{
    CacheHierarchy h(functionalParams());
    PrefetchEngine e(n4lConfig(), 0, h);
    StatGroup g("pf");
    e.registerStats(g);
    std::ostringstream os;
    g.dump(os);
    EXPECT_NE(os.str().find("pf.issued"), std::string::npos);
    EXPECT_NE(os.str().find("pf.accuracy"), std::string::npos);
}
