/**
 * @file
 * Unit tests for the util library: RNG, bit utilities, histograms,
 * stats, tables and option parsing.
 */

#include <gtest/gtest.h>

#include "error_helpers.hh"

#include <atomic>
#include <chrono>
#include <map>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "util/bitutil.hh"
#include "util/histogram.hh"
#include "util/options.hh"
#include "util/rng.hh"
#include "util/stats.hh"
#include "util/table.hh"
#include "util/thread_pool.hh"

using namespace ipref;

TEST(Rng, DeterministicForSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 5);
}

TEST(Rng, ForkIsIndependentAndStable)
{
    Rng root(42);
    Rng f1 = root.fork("alpha");
    Rng f2 = root.fork("alpha");
    Rng f3 = root.fork("beta");
    EXPECT_EQ(f1.next(), f2.next());
    Rng f4 = root.fork("beta");
    EXPECT_EQ(f3.next(), f4.next());
}

TEST(Rng, BelowRespectsBound)
{
    Rng rng(7);
    for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.below(bound), bound);
    }
}

TEST(Rng, RangeInclusive)
{
    Rng rng(7);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        std::uint64_t v = rng.range(3, 5);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 5u);
        saw_lo |= v == 3;
        saw_hi |= v == 5;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(9);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ChanceProbability)
{
    Rng rng(11);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += rng.chance(0.25);
    EXPECT_NEAR(hits / 20000.0, 0.25, 0.02);
}

TEST(Rng, GeometricMean)
{
    Rng rng(13);
    double sum = 0;
    for (int i = 0; i < 20000; ++i)
        sum += static_cast<double>(rng.geometric(0.5));
    EXPECT_NEAR(sum / 20000, 1.0, 0.1); // mean (1-p)/p = 1
}

TEST(Zipf, RankZeroMostPopular)
{
    ZipfSampler zipf(100, 1.0);
    Rng rng(17);
    std::vector<int> counts(100, 0);
    for (int i = 0; i < 50000; ++i)
        ++counts[zipf.sample(rng)];
    EXPECT_GT(counts[0], counts[10]);
    EXPECT_GT(counts[0], counts[99]);
    // zipf(1.0): p(0)/p(9) == 10
    EXPECT_NEAR(static_cast<double>(counts[0]) / counts[9], 10.0,
                3.0);
}

TEST(Zipf, SingleItem)
{
    ZipfSampler zipf(1, 1.0);
    Rng rng(19);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(zipf.sample(rng), 0u);
}

TEST(BitUtil, PowersOfTwo)
{
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(64));
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_FALSE(isPowerOfTwo(96));
}

TEST(BitUtil, Log2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(64), 6u);
    EXPECT_EQ(floorLog2(65), 6u);
    EXPECT_EQ(ceilLog2(64), 6u);
    EXPECT_EQ(ceilLog2(65), 7u);
}

TEST(BitUtil, Align)
{
    EXPECT_EQ(alignDown(0x12345, 64), 0x12340u);
    EXPECT_EQ(alignUp(0x12345, 64), 0x12380u);
    EXPECT_EQ(alignUp(0x12340, 64), 0x12340u);
}

TEST(BitUtil, Bits)
{
    EXPECT_EQ(bits(0xFF00, 15, 8), 0xFFu);
    EXPECT_EQ(bits(0b1010, 3, 1), 0b101u);
}

TEST(Histogram, MeanAndCount)
{
    Log2Histogram h;
    h.add(1);
    h.add(3);
    h.add(8);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_EQ(h.sum(), 12u);
    EXPECT_NEAR(h.mean(), 4.0, 1e-9);
    EXPECT_EQ(h.max(), 8u);
}

TEST(Histogram, BucketsAndReset)
{
    Log2Histogram h;
    for (int i = 0; i < 10; ++i)
        h.add(100);
    EXPECT_EQ(h.buckets()[7], 10u); // 100 in (64,128]
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.max(), 0u);
}

TEST(Histogram, Quantile)
{
    Log2Histogram h;
    for (int i = 0; i < 90; ++i)
        h.add(2);
    for (int i = 0; i < 10; ++i)
        h.add(1024);
    EXPECT_LE(h.quantile(0.5), 4u);
    EXPECT_GE(h.quantile(0.99), 512u);
}

TEST(Histogram, QuantileEmpty)
{
    Log2Histogram h;
    EXPECT_EQ(h.quantile(0.0), 0u);
    EXPECT_EQ(h.quantile(0.5), 0u);
    EXPECT_EQ(h.quantile(1.0), 0u);
    EXPECT_EQ(h.p50(), 0u);
    EXPECT_EQ(h.p95(), 0u);
    EXPECT_EQ(h.p99(), 0u);
}

TEST(Histogram, QuantileSingleBucket)
{
    Log2Histogram h;
    for (int i = 0; i < 100; ++i)
        h.add(7); // all samples land in the (4,8] bucket
    // Every quantile strictly below 1 resolves to that bucket's
    // upper boundary.
    EXPECT_EQ(h.quantile(0.0), 8u);
    EXPECT_EQ(h.p50(), 8u);
    EXPECT_EQ(h.p95(), 8u);
    EXPECT_EQ(h.p99(), 8u);
    // q = 1: the target rank is past every bucket — the exact max.
    EXPECT_EQ(h.quantile(1.0), 7u);
}

TEST(Histogram, QuantileBounds)
{
    Log2Histogram h;
    h.add(1);
    h.add(1000);
    // q=0 returns the first occupied bucket's boundary; q=1 the max.
    EXPECT_EQ(h.quantile(0.0), 1u);
    EXPECT_EQ(h.quantile(1.0), 1000u);
    EXPECT_EQ(h.p50(), h.quantile(0.5));
    EXPECT_EQ(h.p95(), h.quantile(0.95));
    EXPECT_EQ(h.p99(), h.quantile(0.99));
}

namespace
{

/** Find the dump line for @p name; @return its value token. */
std::string
dumpValue(const std::string &dump, const std::string &name)
{
    std::istringstream lines(dump);
    std::string line;
    while (std::getline(lines, line)) {
        std::istringstream tokens(line);
        std::string n, v;
        tokens >> n >> v;
        if (n == name)
            return v;
    }
    return "";
}

} // namespace

TEST(Stats, DumpFormat)
{
    Counter c;
    c += 41;
    ++c;
    StatGroup g("grp");
    g.addCounter("answer", &c, "the answer");
    g.addFormula("half", [&] { return c.value() / 2.0; });
    std::ostringstream os;
    g.dump(os, "top");
    std::string s = os.str();
    EXPECT_EQ(dumpValue(s, "top.grp.answer"), "42");
    EXPECT_EQ(dumpValue(s, "top.grp.half"), "21");
    EXPECT_NE(s.find("# the answer"), std::string::npos);
}

TEST(Stats, DumpAlignsValuesAndSanitizesDescriptions)
{
    Counter a, b;
    a += 7;
    StatGroup g("grp");
    g.addCounter("x", &a, "multi\nline\rdesc");
    g.addCounter("much_longer_name", &b);
    std::ostringstream os;
    g.dump(os);
    std::string s = os.str();
    // Newlines in descriptions must not split the stat line.
    EXPECT_EQ(s.find("multi\nline"), std::string::npos);
    EXPECT_NE(s.find("# multi line desc"), std::string::npos);
    // Short names are padded so values line up with the widest name.
    std::istringstream lines(s);
    std::string first, second;
    std::getline(lines, first);
    std::getline(lines, second);
    EXPECT_EQ(first.find('7'), second.find('0'));
}

TEST(Stats, ResetAllRecursesIntoChildren)
{
    Counter a, b;
    Log2Histogram h;
    a += 5;
    b += 9;
    h.add(100);
    StatGroup parent("p"), child("c");
    parent.addCounter("a", &a);
    parent.addHistogram("h", &h);
    child.addCounter("b", &b);
    parent.addChild(&child);
    parent.resetAll();
    EXPECT_EQ(a.value(), 0u);
    EXPECT_EQ(b.value(), 0u);
    EXPECT_EQ(h.count(), 0u);
}

TEST(Stats, NestedGroups)
{
    Counter c;
    StatGroup parent("p"), child("c");
    child.addCounter("x", &c);
    parent.addChild(&child);
    std::ostringstream os;
    parent.dump(os);
    EXPECT_NE(os.str().find("p.c.x 0"), std::string::npos);
}

TEST(Table, AlignedOutput)
{
    Table t("demo");
    t.header({"name", "value"});
    t.row({"a", Table::num(1.5, 2)});
    t.row({"longer", Table::pct(0.123, 1)});
    std::ostringstream os;
    t.print(os);
    std::string s = os.str();
    EXPECT_NE(s.find("demo"), std::string::npos);
    EXPECT_NE(s.find("1.50"), std::string::npos);
    EXPECT_NE(s.find("12.3%"), std::string::npos);
    EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, Csv)
{
    Table t;
    t.header({"a", "b"});
    t.row({"1", "2"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Options, ParseForms)
{
    const char *argv[] = {"prog", "pos1", "--alpha", "3",
                          "--beta=x", "--gamma", "2.5", "--flag"};
    Options o(8, const_cast<char **>(argv));
    EXPECT_EQ(o.getInt("alpha", 0), 3);
    EXPECT_EQ(o.getString("beta"), "x");
    EXPECT_TRUE(o.getBool("flag"));
    EXPECT_FALSE(o.getBool("missing"));
    EXPECT_DOUBLE_EQ(o.getDouble("gamma", 0), 2.5);
    ASSERT_EQ(o.positional().size(), 1u);
    EXPECT_EQ(o.positional()[0], "pos1");
}

TEST(Options, Defaults)
{
    const char *argv[] = {"prog"};
    Options o(1, const_cast<char **>(argv));
    EXPECT_EQ(o.getInt("n", 7), 7);
    EXPECT_EQ(o.getString("s", "d"), "d");
    EXPECT_FALSE(o.has("n"));
}

TEST(Options, EqualsAndSpaceFormsAreEquivalent)
{
    const char *argv1[] = {"prog", "--alpha=3", "--beta=x",
                           "--gamma=2.5"};
    const char *argv2[] = {"prog", "--alpha", "3", "--beta", "x",
                           "--gamma", "2.5"};
    Options eq(4, const_cast<char **>(argv1));
    Options sp(7, const_cast<char **>(argv2));
    EXPECT_EQ(eq.getInt("alpha", 0), sp.getInt("alpha", 0));
    EXPECT_EQ(eq.getString("beta"), sp.getString("beta"));
    EXPECT_DOUBLE_EQ(eq.getDouble("gamma", 0),
                     sp.getDouble("gamma", 0));
}

TEST(Options, KnownMapAcceptsBothForms)
{
    std::map<std::string, std::string> known{{"stats-json", ""},
                                             {"stats-interval", ""}};
    const char *argv[] = {"prog", "--stats-json=out.json",
                          "--stats-interval", "100000"};
    Options o(4, const_cast<char **>(argv), known);
    EXPECT_EQ(o.getString("stats-json"), "out.json");
    EXPECT_EQ(o.getUint("stats-interval", 0), 100000u);
}

TEST(Options, BoolForms)
{
    const char *argv[] = {"prog", "--on", "--off=0", "--no=false",
                          "--yes=1"};
    Options o(5, const_cast<char **>(argv));
    EXPECT_TRUE(o.getBool("on"));
    EXPECT_FALSE(o.getBool("off"));
    EXPECT_FALSE(o.getBool("no"));
    EXPECT_TRUE(o.getBool("yes"));
    EXPECT_TRUE(o.getBool("missing", true));
}

TEST(Options, UnknownOptionThrows)
{
    std::map<std::string, std::string> known{{"ok", "help"}};
    const char *argv[] = {"prog", "--bad", "1"};
    test::expectThrows<ConfigError>(
        [&] { Options opts(3, const_cast<char **>(argv), known); },
        "unknown option");
}

TEST(Options, UnknownEqualsFormThrows)
{
    std::map<std::string, std::string> known{{"ok", "help"}};
    const char *argv[] = {"prog", "--bad=1"};
    test::expectThrows<ConfigError>(
        [&] { Options opts(2, const_cast<char **>(argv), known); },
        "unknown option --bad");
}

TEST(HashString, StableAndDistinct)
{
    EXPECT_EQ(hashString("abc"), hashString("abc"));
    EXPECT_NE(hashString("abc"), hashString("abd"));
}

TEST(ThreadPool, ResultsMatchSubmissionOrder)
{
    ThreadPool pool(4);
    std::vector<std::future<int>> futures;
    for (int i = 0; i < 64; ++i)
        futures.push_back(pool.submit([i] {
            std::this_thread::sleep_for(
                std::chrono::microseconds((64 - i) * 10));
            return i * i;
        }));
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
}

TEST(ThreadPool, ExceptionsPropagateThroughFutures)
{
    ThreadPool pool(2);
    auto ok = pool.submit([] { return 7; });
    auto bad = pool.submit(
        []() -> int { throw std::runtime_error("boom"); });
    EXPECT_EQ(ok.get(), 7);
    EXPECT_THROW(bad.get(), std::runtime_error);
}

TEST(ThreadPool, SingleThreadRunsInline)
{
    // threads <= 1 executes at submit() time on the calling thread.
    ThreadPool pool(1);
    EXPECT_EQ(pool.threads(), 0u);
    std::thread::id caller = std::this_thread::get_id();
    auto fut = pool.submit([] { return std::this_thread::get_id(); });
    EXPECT_EQ(fut.get(), caller);
}

TEST(ThreadPool, RunsAllTasksAcrossWorkers)
{
    ThreadPool pool(3);
    EXPECT_EQ(pool.threads(), 3u);
    std::atomic<int> count{0};
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 100; ++i)
        futures.push_back(pool.submit([&count] { ++count; }));
    for (auto &f : futures)
        f.get();
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, DestructorDrainsQueue)
{
    std::atomic<int> count{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 50; ++i)
            pool.submit([&count] {
                std::this_thread::sleep_for(
                    std::chrono::microseconds(100));
                ++count;
            });
    }
    EXPECT_EQ(count.load(), 50);
}
