/**
 * @file
 * Cross-cutting property tests on full-system runs: accounting
 * invariants that must hold for ANY configuration, checked over a
 * parameterized sweep of workloads × schemes × chip shapes.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "sim/experiment.hh"

using namespace ipref;

namespace
{

std::uint64_t
sumTransitions(const std::array<
               std::uint64_t,
               static_cast<std::size_t>(
                   FetchTransition::NumTransitions)> &a)
{
    std::uint64_t total = 0;
    for (auto v : a)
        total += v;
    return total;
}

} // namespace

using PropertyParams =
    std::tuple<WorkloadKind, PrefetchScheme, bool /*cmp*/,
               bool /*bypass*/>;

class SimInvariants
    : public ::testing::TestWithParam<PropertyParams>
{
  protected:
    SimResults
    run()
    {
        auto [kind, scheme, cmp, bypass] = GetParam();
        RunSpec spec;
        spec.cmp = cmp;
        spec.workloads = {kind};
        spec.scheme = scheme;
        spec.bypassL2 = bypass;
        spec.instrScale = 0.08;
        return runSpec(spec);
    }
};

TEST_P(SimInvariants, AccountingHolds)
{
    SimResults r = run();

    // The run actually ran.
    ASSERT_GT(r.instructions, 0u);
    ASSERT_GT(r.cycles, 0u);

    // Miss categorization is complete: per-category counts sum to
    // the total misses at both levels.
    EXPECT_EQ(sumTransitions(r.l1iMissByTransition), r.l1iMisses);
    EXPECT_EQ(sumTransitions(r.l2iMissByTransition), r.l2iMisses);

    // The demand path narrows monotonically.
    EXPECT_LE(r.l2iMisses, r.l1iMisses);
    EXPECT_LE(r.l2dMisses, r.l1dMisses);
    EXPECT_LE(r.l1iMisses, r.fetchLineAccesses);

    // Every off-chip read is a demand L2 miss or a prefetch.
    EXPECT_LE(r.l2iMisses + r.l2dMisses,
              r.memReads + 64 /* in-flight slack */);
    EXPECT_LE(r.memPrefetchReads, r.memReads);

    // Prefetch accounting: useful/useless partition issued lines
    // (some may still be resident or in flight at the cut).
    EXPECT_LE(r.pfUseful + r.pfUseless,
              r.pfIssued + 64 /* carryover from warmup */);
    EXPECT_LE(r.pfLate, r.pfUseful);
    EXPECT_LE(r.pfTagProbeHits, r.pfTagProbes);

    // Rates are rates.
    EXPECT_GE(r.ipc, 0.0);
    EXPECT_LE(r.pfAccuracy(), 1.0);
    EXPECT_LE(r.l1iCoverage(), 1.0);

    auto [kind, scheme, cmp, bypass] = GetParam();
    (void)kind;
    (void)cmp;
    if (scheme == PrefetchScheme::None) {
        EXPECT_EQ(r.pfIssued, 0u);
        // Without prefetching, off-chip reads are exactly the
        // demand L2 misses (modulo in-flight at the window edges).
        EXPECT_NEAR(static_cast<double>(r.memReads),
                    static_cast<double>(r.l2iMisses + r.l2dMisses),
                    64.0);
    }
    if (!bypass) {
        EXPECT_EQ(r.bypassInstalls, 0u);
        EXPECT_EQ(r.bypassDrops, 0u);
    }
}

TEST_P(SimInvariants, DeterministicReplay)
{
    SimResults a = run();
    SimResults b = run();
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.l1iMisses, b.l1iMisses);
    EXPECT_EQ(a.pfIssued, b.pfIssued);
    EXPECT_EQ(a.memReads, b.memReads);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SimInvariants,
    ::testing::Combine(
        ::testing::Values(WorkloadKind::TPCW, WorkloadKind::WEB),
        ::testing::Values(PrefetchScheme::None,
                          PrefetchScheme::NextLineTagged,
                          PrefetchScheme::Discontinuity,
                          PrefetchScheme::TargetHistory,
                          PrefetchScheme::WrongPath),
        ::testing::Bool(), ::testing::Bool()),
    [](const auto &info) {
        WorkloadKind kind = std::get<0>(info.param);
        PrefetchScheme scheme = std::get<1>(info.param);
        bool cmp = std::get<2>(info.param);
        bool bypass = std::get<3>(info.param);
        std::string n = workloadName(kind);
        n.erase(std::remove(n.begin(), n.end(), '-'), n.end());
        switch (scheme) {
          case PrefetchScheme::None: n += "None"; break;
          case PrefetchScheme::NextLineTagged: n += "NL"; break;
          case PrefetchScheme::Discontinuity: n += "Disc"; break;
          case PrefetchScheme::TargetHistory: n += "Target"; break;
          case PrefetchScheme::WrongPath: n += "WrongPath"; break;
          default: n += "X"; break;
        }
        n += cmp ? "Cmp" : "Single";
        n += bypass ? "Bypass" : "Install";
        return n;
    });

TEST(SimProperties, L2CapacityMonotonicity)
{
    // More L2 never increases demand instruction misses
    // (functional, LRU stack property holds statistically).
    std::uint64_t prev = ~0ull;
    for (std::uint64_t mb : {1, 2, 4, 8}) {
        RunSpec spec;
        spec.cmp = true;
        spec.workloads = {WorkloadKind::DB};
        spec.functional = true;
        spec.l2Bytes = mb << 20;
        spec.instrScale = 0.3;
        SimResults r = runSpec(spec);
        EXPECT_LE(r.l2iMisses, prev + prev / 10);
        prev = r.l2iMisses;
    }
}

TEST(SimProperties, DegreeIncreasesCoverage)
{
    double prev = -1.0;
    for (unsigned n : {1u, 2u, 4u}) {
        RunSpec spec;
        spec.cmp = true;
        spec.workloads = {WorkloadKind::DB};
        spec.scheme = PrefetchScheme::NextNLineTagged;
        spec.degree = n;
        spec.instrScale = 0.15;
        SimResults r = runSpec(spec);
        EXPECT_GT(r.l1iCoverage(), prev);
        prev = r.l1iCoverage();
    }
}

TEST(SimProperties, SeedsPerturbButDoNotReshape)
{
    // Different base seeds change the exact interleaving but the
    // miss rate stays in a band (the workload is stationary).
    RunSpec spec;
    spec.cmp = false;
    spec.workloads = {WorkloadKind::TPCW};
    spec.functional = true;
    spec.instrScale = 0.3;
    spec.baseSeed = 1;
    double a = runSpec(spec).l1iMissPerInstr();
    spec.baseSeed = 99;
    double b = runSpec(spec).l1iMissPerInstr();
    EXPECT_NE(a, b);
    EXPECT_NEAR(a, b, 0.5 * std::max(a, b));
}

TEST(SimProperties, WarmupExcludedFromResults)
{
    // Doubling the warm-up should not change per-instruction rates
    // much (they are measured after warm-up).
    RunSpec spec;
    spec.cmp = false;
    spec.workloads = {WorkloadKind::WEB};
    spec.functional = true;
    spec.instrScale = 0.4;
    SystemConfig cfg = makeConfig(spec);
    System s1(cfg);
    SimResults r1 = s1.run();
    cfg.warmupInstrs *= 2;
    System s2(cfg);
    SimResults r2 = s2.run();
    EXPECT_EQ(r1.instructions, r2.instructions);
    EXPECT_NEAR(r1.l1iMissPerInstr(), r2.l1iMissPerInstr(),
                0.3 * r1.l1iMissPerInstr());
}
