/**
 * @file
 * Observability-layer tests: trace-event ring semantics, JSON
 * round-trips (stats tree and full system report), prefetch
 * lifecycle reconciliation and interval sampling.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "sim/experiment.hh"
#include "util/json.hh"
#include "util/stats.hh"
#include "util/trace_event.hh"

using namespace ipref;

namespace
{

/** RAII reset so tests don't leak trace/observability state. */
struct ObservabilityGuard
{
    ~ObservabilityGuard() { setObservability(ObservabilityOptions{}); }
};

} // namespace

// --- trace sink ------------------------------------------------------

TEST(TraceSink, DisabledRecordsNothing)
{
    TraceSink sink;
    sink.record(TraceEventType::CacheMiss, 0, 0x1000, 0, 0, 5);
    EXPECT_EQ(sink.recorded(), 0u);
    EXPECT_EQ(sink.size(), 0u);
}

TEST(TraceSink, RecordsInOrder)
{
    TraceSink sink;
    sink.enable(16);
    for (std::uint64_t i = 0; i < 5; ++i)
        sink.record(TraceEventType::CacheMiss, 0, 0x1000 + i * 64, i,
                    0, i);
    ASSERT_EQ(sink.size(), 5u);
    auto events = sink.snapshot();
    ASSERT_EQ(events.size(), 5u);
    for (std::uint64_t i = 0; i < 5; ++i) {
        EXPECT_EQ(events[i].cycle, i);
        EXPECT_EQ(events[i].addr, 0x1000 + i * 64);
    }
}

TEST(TraceSink, RingWraparoundKeepsNewestOldestFirst)
{
    TraceSink sink;
    sink.enable(4);
    for (std::uint64_t i = 0; i < 10; ++i)
        sink.record(TraceEventType::PrefetchIssue, 0, i, i, 0, i);
    EXPECT_EQ(sink.recorded(), 10u);
    EXPECT_EQ(sink.dropped(), 6u);
    auto events = sink.snapshot();
    ASSERT_EQ(events.size(), 4u);
    // The ring retains the newest 4 events, oldest first.
    for (std::uint64_t i = 0; i < 4; ++i)
        EXPECT_EQ(events[i].cycle, 6 + i);
}

TEST(TraceSink, CountsByType)
{
    TraceSink sink;
    sink.enable(8);
    sink.record(TraceEventType::CacheHit, 0, 1, 0, 0, 0);
    sink.record(TraceEventType::CacheHit, 0, 2, 0, 0, 1);
    sink.record(TraceEventType::DiscAlloc, 0, 3, 0, 0, 2);
    auto counts = sink.countsByType();
    EXPECT_EQ(
        counts[static_cast<std::size_t>(TraceEventType::CacheHit)],
        2u);
    EXPECT_EQ(
        counts[static_cast<std::size_t>(TraceEventType::DiscAlloc)],
        1u);
}

TEST(TraceSink, JsonLinesRoundTrip)
{
    TraceSink sink;
    sink.enable(8);
    sink.record(TraceEventType::PrefetchIssue, 2, 0xdeadbeef, 17, 1,
                1234, 0x4000);
    sink.record(TraceEventType::CacheEvict, traceNoCore, 0x40, 3, 3,
                1235);
    std::ostringstream os;
    sink.writeJsonLines(os);

    std::istringstream lines(os.str());
    std::string line;
    std::vector<JsonValue> parsed;
    while (std::getline(lines, line))
        parsed.push_back(parseJson(line));
    ASSERT_EQ(parsed.size(), 2u);

    EXPECT_EQ(parsed[0].at("type").str, "prefetch_issue");
    EXPECT_EQ(parsed[0].at("cycle").number, 1234);
    EXPECT_EQ(parsed[0].at("addr").str, "0xdeadbeef");
    EXPECT_EQ(parsed[0].at("arg").number, 17);
    EXPECT_EQ(parsed[0].at("core").number, 2);
    EXPECT_EQ(parsed[0].at("detail").number, 1);
    EXPECT_EQ(parsed[0].at("pc").asUint(), 0x4000u);
    EXPECT_EQ(parsed[1].at("type").str, "cache_evict");

    // Events without a core context carry an explicit null (uniform
    // schema — consumers never see the 0xffff sentinel).
    ASSERT_TRUE(parsed[1].has("core"));
    EXPECT_TRUE(parsed[1].at("core").isNull());
    // pc is omitted when not recorded.
    EXPECT_FALSE(parsed[1].has("pc"));
}

TEST(TraceEventDetail, PackRoundTrips)
{
    for (std::uint8_t level :
         {traceLevelL1I, traceLevelL1D, traceLevelL2}) {
        for (std::uint8_t t = 0;
             t < static_cast<std::uint8_t>(
                     FetchTransition::NumTransitions);
             ++t) {
            std::uint8_t d = traceDetailPack(level, t);
            EXPECT_EQ(traceDetailLevel(d), level);
            EXPECT_EQ(traceDetailTransition(d), static_cast<int>(t));
        }
        // Bare levels (data-side events) carry no transition.
        EXPECT_EQ(traceDetailLevel(level), level);
        EXPECT_EQ(traceDetailTransition(level), -1);
    }
}

// --- stats JSON ------------------------------------------------------

TEST(StatsJson, TreeRoundTrips)
{
    Counter hits, misses;
    hits += 90;
    misses += 10;
    Log2Histogram lat;
    lat.add(100);
    lat.add(200);

    StatGroup root("system"), child("l1i");
    child.addCounter("hits", &hits, "demand hits");
    child.addCounter("misses", &misses);
    child.addFormula("miss_rate", [&] {
        return static_cast<double>(misses.value()) /
               static_cast<double>(hits.value() + misses.value());
    });
    child.addHistogram("latency", &lat);
    root.addChild(&child);

    std::ostringstream os;
    root.dumpJson(os);
    JsonValue v = parseJson(os.str());

    const JsonValue &l1i = v.at("children").at("l1i");
    EXPECT_EQ(l1i.at("stats").at("hits").number, 90);
    EXPECT_EQ(l1i.at("stats").at("misses").number, 10);
    EXPECT_NEAR(l1i.at("stats").at("miss_rate").number, 0.1, 1e-9);
    const JsonValue &hist = l1i.at("stats").at("latency");
    EXPECT_EQ(hist.at("count").number, 2);
    EXPECT_EQ(hist.at("sum").number, 300);
    EXPECT_EQ(hist.at("max").number, 200);
}

// --- full-system report ---------------------------------------------

namespace
{

/** Small discontinuity-prefetch config for observability tests. */
SystemConfig
observedConfig(std::uint64_t interval, std::uint64_t warmup = 0)
{
    RunSpec spec;
    spec.cmp = true;
    spec.workloads = {WorkloadKind::WEB};
    spec.scheme = PrefetchScheme::Discontinuity;
    spec.instrScale = 0.1;
    SystemConfig cfg = makeConfig(spec);
    cfg.warmupInstrs = warmup;
    cfg.statsIntervalInstrs = interval;
    return cfg;
}

} // namespace

TEST(SystemReport, JsonParsesWithLifecycleAndIntervals)
{
    ObservabilityGuard guard;
    System system(observedConfig(40'000));
    system.run();

    std::ostringstream os;
    system.dumpJson(os);
    JsonValue v = parseJson(os.str());

    EXPECT_EQ(v.at("config").at("scheme").str, "discontinuity");
    EXPECT_GT(v.at("results").at("instructions").number, 0);
    EXPECT_GT(v.at("results").at("ipc").number, 0);

    const JsonValue &pf = v.at("prefetch");
    EXPECT_GT(pf.at("issued").number, 0);
    EXPECT_TRUE(pf.at("by_origin").has("sequential"));
    EXPECT_TRUE(pf.at("by_origin").has("discontinuity"));
    EXPECT_TRUE(pf.at("timeliness").has("p90_cycles"));

    // The acceptance bar: at least two interval samples.
    const JsonValue &intervals = v.at("intervals");
    ASSERT_EQ(intervals.kind, JsonValue::Array);
    EXPECT_GE(intervals.items.size(), 2u);

    EXPECT_TRUE(v.at("stats").at("children").has("hierarchy"));
    EXPECT_TRUE(v.at("stats").at("children").has("prefetch.0"));
    EXPECT_GT(v.at("profile").at("measure_seconds").number, 0);
}

TEST(SystemReport, IntervalDeltasSumToTotals)
{
    ObservabilityGuard guard;
    System system(observedConfig(30'000));
    SimResults r = system.run();

    ASSERT_GE(system.samples().size(), 2u);
    std::uint64_t instrs = 0, cycles = 0, misses = 0, issued = 0;
    for (const auto &s : system.samples()) {
        instrs += s.delta.instructions;
        cycles += s.delta.cycles;
        misses += s.delta.l1iMisses;
        issued += s.delta.pfIssued;
    }
    EXPECT_EQ(instrs, r.instructions);
    EXPECT_EQ(cycles, r.cycles);
    EXPECT_EQ(misses, r.l1iMisses);
    EXPECT_EQ(issued, r.pfIssued);
    // Samples end at the final instruction count, monotonically.
    EXPECT_EQ(system.samples().back().endInstructions,
              r.instructions);
    for (std::size_t i = 1; i < system.samples().size(); ++i)
        EXPECT_GT(system.samples()[i].endInstructions,
                  system.samples()[i - 1].endInstructions);
}

// --- lifecycle reconciliation ----------------------------------------

TEST(Lifecycle, IssuedEqualsUsefulPlusUselessPlusInFlightPlusDropped)
{
    ObservabilityGuard guard;
    // No warm-up: a mid-run stats reset would orphan in-flight
    // lifecycle entries and the identity below would not hold.
    System system(observedConfig(0, 0));
    SimResults r = system.run();
    ASSERT_GT(r.pfIssued, 0u);

    std::uint64_t issued = 0, accounted = 0;
    for (unsigned c = 0; c < system.config().numCores; ++c) {
        PrefetchEngine::Lifecycle lc = system.engine(c).lifecycle();
        EXPECT_TRUE(lc.reconciles())
            << "core " << c << ": issued " << lc.issued << " != "
            << lc.useful << " + " << lc.useless << " + "
            << lc.inFlight << " + " << lc.dropped;
        issued += lc.issued;
        accounted +=
            lc.useful + lc.useless + lc.inFlight + lc.dropped;
    }
    EXPECT_EQ(issued, accounted);
    EXPECT_EQ(issued, r.pfIssued);
}

TEST(Lifecycle, PerOriginAttributionSumsToTotals)
{
    ObservabilityGuard guard;
    System system(observedConfig(0, 0));
    SimResults r = system.run();

    std::uint64_t issuedByOrigin = 0;
    for (auto v : r.pfIssuedByOrigin)
        issuedByOrigin += v;
    EXPECT_EQ(issuedByOrigin, r.pfIssued);

    // Discontinuity runs must attribute issues to both the sequential
    // and the discontinuity origin.
    EXPECT_GT(r.pfIssuedByOrigin[static_cast<std::size_t>(
                  PrefetchOrigin::Sequential)],
              0u);
    EXPECT_GT(r.pfIssuedByOrigin[static_cast<std::size_t>(
                  PrefetchOrigin::Discontinuity)],
              0u);
}

// --- tracing end-to-end ----------------------------------------------

TEST(TraceSink, SystemRunEmitsLifecycleEvents)
{
    ObservabilityGuard guard;
    TraceSink &sink = TraceSink::global();
    sink.enable(1u << 16);
    System system(observedConfig(0, 0));
    system.run();

    auto counts = sink.countsByType();
    EXPECT_GT(counts[static_cast<std::size_t>(
                  TraceEventType::CacheMiss)],
              0u);
    EXPECT_GT(counts[static_cast<std::size_t>(
                  TraceEventType::PrefetchIssue)],
              0u);
    EXPECT_GT(counts[static_cast<std::size_t>(
                  TraceEventType::PrefetchFill)],
              0u);
    EXPECT_GT(counts[static_cast<std::size_t>(
                  TraceEventType::DiscAlloc)],
              0u);
    sink.disable();
}
