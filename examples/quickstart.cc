/**
 * @file
 * Quickstart: build a paper-default system, run it, print results.
 *
 * Usage:
 *   quickstart [--workload db|tpcw|japp|web|mixed] [--cores 1|4]
 *              [--scheme none|nl-miss|nl-tagged|n4l|discontinuity]
 *              [--bypass] [--functional] [--scale X] [--stats]
 */

#include <iostream>

#include "sim/experiment.hh"
#include "util/options.hh"

using namespace ipref;

int
main(int argc, char **argv)
{
    Options opts(argc, argv);

    RunSpec spec;
    spec.cmp = opts.getInt("cores", 4) == 4;
    std::string w = opts.getString("workload", "db");
    if (w == "mixed") {
        spec.workloads = {WorkloadKind::DB, WorkloadKind::TPCW,
                          WorkloadKind::JAPP, WorkloadKind::WEB};
    } else {
        spec.workloads = {parseWorkloadKind(w)};
    }
    spec.scheme = parseScheme(opts.getString("scheme", "none"));
    spec.bypassL2 = opts.getBool("bypass");
    spec.functional = opts.getBool("functional");
    spec.instrScale = opts.getDouble("scale", 1.0);
    spec.degree = static_cast<unsigned>(opts.getInt("degree", 4));
    spec.tableEntries =
        static_cast<unsigned>(opts.getInt("table", 8192));

    System system(makeConfig(spec));
    SimResults r = system.run();

    std::cout << "workload: " << system.config().workloadSetName()
              << "  cores: " << system.config().numCores
              << "  scheme: " << schemeName(spec.scheme)
              << (spec.bypassL2 ? " +bypass" : "") << "\n";
    std::cout << "instructions: " << r.instructions
              << "  cycles: " << r.cycles << "  IPC: " << r.ipc
              << "\n";
    std::cout << "L1I miss/instr: " << r.l1iMissPerInstr() * 100
              << "%  L2I miss/instr: " << r.l2iMissPerInstr() * 100
              << "%  L2D miss/instr: " << r.l2dMissPerInstr() * 100
              << "%\n";
    std::cout << "prefetch: issued " << r.pfIssued << " useful "
              << r.pfUseful << " accuracy " << r.pfAccuracy() * 100
              << "%  L1I coverage " << r.l1iCoverage() * 100
              << "%\n";
    std::cout << "branch MPKI: "
              << (r.instructions
                      ? 1000.0 * static_cast<double>(
                                     r.branchMispredicts) /
                            static_cast<double>(r.instructions)
                      : 0.0)
              << "\n";
    std::cout << "miss breakdown (L1I): ";
    std::uint64_t total = 0;
    for (auto v : r.l1iMissByTransition)
        total += v;
    for (std::size_t i = 0; i < r.l1iMissByTransition.size(); ++i) {
        if (r.l1iMissByTransition[i] == 0)
            continue;
        std::cout << transitionName(static_cast<FetchTransition>(i))
                  << "="
                  << 100.0 * static_cast<double>(
                                 r.l1iMissByTransition[i]) /
                         static_cast<double>(total ? total : 1)
                  << "% ";
    }
    std::cout << "\n";

    if (opts.getBool("stats"))
        system.dumpStats(std::cout);
    return 0;
}
