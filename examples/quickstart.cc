/**
 * @file
 * Quickstart: build a paper-default system, run it, print results.
 *
 * Usage:
 *   quickstart [--workload db|tpcw|japp|web|mixed] [--cores 1|4]
 *              [--scheme none|nl-miss|nl-tagged|n4l|discontinuity]
 *              [--bypass] [--functional] [--scale X] [--stats]
 *              [--stats-json FILE] [--stats-interval N]
 *              [--trace-events N] [--trace-out FILE]
 *              [--profile-sites K]
 *              [--metrics-interval-ms N] [--metrics-out FILE]
 *              [--metrics-prom FILE] [--metrics-port P]
 */

#include <iostream>
#include <sstream>

#include "prefetch/fetch_profiler.hh"
#include "sim/experiment.hh"
#include "util/metrics.hh"
#include "util/options.hh"
#include "util/trace_event.hh"

using namespace ipref;

int
main(int argc, char **argv)
try {
    Options opts(argc, argv);

    ObservabilityOptions obs;
    obs.jsonPath = opts.getString("stats-json");
    obs.intervalInstrs = opts.getUint("stats-interval", 0);
    obs.traceCapacity = opts.getUint("trace-events", 0);
    obs.tracePath = opts.getString("trace-out", "trace_events.jsonl");
    obs.profileSites = opts.getUint("profile-sites", 0);
    setObservability(obs);

    metrics::MetricsOptions mopts;
    mopts.intervalMs = opts.getUint("metrics-interval-ms", 0);
    mopts.jsonlPath = opts.getString("metrics-out");
    mopts.promPath = opts.getString("metrics-prom");
    mopts.promPort =
        static_cast<unsigned>(opts.getUint("metrics-port", 0));
    if (mopts.intervalMs > 0 && mopts.anySink())
        metrics::configureMetrics(mopts);

    RunSpec spec =
        RunSpec::builder()
            .cmp(opts.getInt("cores", 4) == 4)
            .trace(TraceSpec::workloadPreset(
                opts.getString("workload", "db")))
            .scheme(opts.getString("scheme", "none"))
            .bypassL2(opts.getBool("bypass"))
            .functional(opts.getBool("functional"))
            .instrScale(opts.getDouble("scale", 1.0))
            .degree(static_cast<unsigned>(opts.getInt("degree", 4)))
            .tableEntries(static_cast<unsigned>(
                opts.getInt("table", 8192)))
            .build();

    System system(makeConfig(spec));
    SimResults r = system.run();

    std::cout << "workload: " << system.config().workloadSetName()
              << "  cores: " << system.config().numCores
              << "  scheme: " << schemeName(spec.scheme)
              << (spec.bypassL2 ? " +bypass" : "") << "\n";
    std::cout << "instructions: " << r.instructions
              << "  cycles: " << r.cycles << "  IPC: " << r.ipc
              << "\n";
    std::cout << "L1I miss/instr: " << r.l1iMissPerInstr() * 100
              << "%  L2I miss/instr: " << r.l2iMissPerInstr() * 100
              << "%  L2D miss/instr: " << r.l2dMissPerInstr() * 100
              << "%\n";
    std::cout << "prefetch: issued " << r.pfIssued << " useful "
              << r.pfUseful << " accuracy " << r.pfAccuracy() * 100
              << "%  L1I coverage " << r.l1iCoverage() * 100
              << "%\n";
    for (std::size_t i = 0; i < r.pfIssuedByOrigin.size(); ++i) {
        if (r.pfIssuedByOrigin[i] == 0)
            continue;
        std::cout << "  "
                  << originName(static_cast<PrefetchOrigin>(i))
                  << ": issued " << r.pfIssuedByOrigin[i]
                  << " useful " << r.pfUsefulByOrigin[i] << "\n";
    }
    TimelinessSummary t = system.timeliness();
    if (t.count > 0) {
        std::cout << "timeliness (issue-to-use cycles): mean "
                  << t.meanCycles << "  p50 " << t.p50Cycles
                  << "  p90 " << t.p90Cycles << "  max "
                  << t.maxCycles << "\n";
    }
    std::cout << "branch MPKI: "
              << (r.instructions
                      ? 1000.0 * static_cast<double>(
                                     r.branchMispredicts) /
                            static_cast<double>(r.instructions)
                      : 0.0)
              << "\n";
    std::cout << "miss breakdown (L1I): ";
    std::uint64_t total = 0;
    for (auto v : r.l1iMissByTransition)
        total += v;
    for (std::size_t i = 0; i < r.l1iMissByTransition.size(); ++i) {
        if (r.l1iMissByTransition[i] == 0)
            continue;
        std::cout << transitionName(static_cast<FetchTransition>(i))
                  << "="
                  << 100.0 * static_cast<double>(
                                 r.l1iMissByTransition[i]) /
                         static_cast<double>(total ? total : 1)
                  << "% ";
    }
    std::cout << "\n";

    const PhaseProfile &prof = system.profile();
    std::cout << "sim speed: " << prof.measureInstrsPerSec() / 1e6
              << " Minstr/s (warm-up " << prof.warmupSeconds
              << "s, measure " << prof.measureSeconds << "s)\n";
    if (system.config().statsIntervalInstrs > 0)
        std::cout << "interval samples: " << system.samples().size()
                  << " (every "
                  << system.config().statsIntervalInstrs
                  << " instrs)\n";

    if (const FetchProfiler *fp = system.profiler()) {
        std::cout << "hot fetch sites:";
        for (const auto &e : fp->sites().top(4))
            std::cout << " 0x" << std::hex << e.key << std::dec << " ("
                      << e.aux.misses << "m/" << e.aux.pfIssued
                      << "pf)";
        std::cout << "\n";
    }

    if (opts.getBool("stats"))
        system.dumpStats(std::cout);

    // All report output is funneled through the installed
    // ReportSink; the default FileReportSink honors the same
    // --stats-json / --trace-out paths the old inline code wrote.
    if (!obs.jsonPath.empty()) {
        commitSystemReport(system);
        flushObservability();
        std::cout << "JSON report written to " << obs.jsonPath
                  << "\n";
    }
    if (const TraceSink *sink = system.traceSink();
        sink && !obs.tracePath.empty()) {
        std::ostringstream lines;
        sink->writeJsonLines(lines);
        reportSink()->recordTrace(lines.str());
        std::cout << "trace events written to " << obs.tracePath
                  << " (" << sink->size() << " of "
                  << sink->recorded() << " recorded)\n";
    }
    return 0;
} catch (const SimError &e) {
    std::cerr << "error (" << errorKindName(e.kind())
              << "): " << e.what() << "\n";
    return 1;
}
