/**
 * @file
 * Trace tooling example: generate a workload trace, summarize it
 * (instruction mix, CTI breakdown, footprints, line-popularity
 * concentration), and optionally round-trip it through a trace file.
 *
 * Usage:
 *   trace_tools [--workload db] [--instrs N] [--save path]
 *               [--format v2|v3] [--load path] [--tolerant]
 *
 * --tolerant salvages the valid prefix of a damaged trace (with a
 * warning) instead of failing; any error exits 1 with a message.
 */

#include <iostream>
#include <unordered_map>
#include <vector>

#include "analysis/analyzer.hh"
#include "trace/trace_file.hh"
#include "trace/trace_stats.hh"
#include "trace/trace_v3.hh"
#include "util/options.hh"
#include "workload/presets.hh"

using namespace ipref;

namespace
{

/** Print how concentrated the fetch-line stream is. */
void
concentration(TraceSource &src, std::uint64_t n)
{
    std::unordered_map<Addr, std::uint64_t> lines;
    InstrRecord rec;
    Addr prev_line = invalidAddr;
    for (std::uint64_t i = 0; i < n && src.next(rec); ++i) {
        Addr line = rec.pc >> 6;
        if (line != prev_line) {
            ++lines[line];
            prev_line = line;
        }
    }
    std::vector<std::uint64_t> counts;
    counts.reserve(lines.size());
    for (const auto &kv : lines)
        counts.push_back(kv.second);
    Concentration c =
        lineConcentration(std::move(counts), {0.5, 0.9, 0.99});
    std::cout << "line fetches: " << c.total << " over "
              << c.uniqueLines << " unique lines ("
              << c.uniqueLines * 64 / 1024 << " KB touched)\n";
    for (const auto &p : c.points)
        std::cout << "  " << p.quantile * 100 << "% of fetches from "
                  << p.lines << " lines (" << p.lines * 64 / 1024
                  << " KB)\n";
}

} // namespace

int
main(int argc, char **argv)
try {
    Options opts(argc, argv);
    std::uint64_t n = opts.getUint("instrs", 3'000'000);

    if (opts.has("load")) {
        TraceReadMode mode = opts.getBool("tolerant")
                                 ? TraceReadMode::Tolerant
                                 : TraceReadMode::Strict;
        // openTraceReader sniffs the version: v1/v2 get the stdio
        // reader, v3 the mmap-backed zero-copy one.
        auto reader = openTraceReader(opts.getString("load"), mode);
        TraceSummary s = summarizeTrace(*reader, n);
        s.print(std::cout);
        if (reader->corrupt())
            std::cerr << "warning: trace damaged, salvaged "
                      << reader->delivered() << " of "
                      << reader->count() << " records ("
                      << reader->corruptionDetail() << ")\n";
        return 0;
    }

    WorkloadKind kind =
        parseWorkloadKind(opts.getString("workload", "db"));
    auto wl = makeWorkload(kind, 0);

    if (opts.has("save")) {
        std::string fmt = opts.getString("format", "v3");
        if (fmt != "v2" && fmt != "v3")
            throw ConfigError("unknown --format '" + fmt +
                              "' (valid: v2, v3)");
        TraceFileWriter writer(opts.getString("save"), 0,
                               fmt == "v2" ? TraceFormat::V2
                                           : TraceFormat::V3);
        InstrRecord rec;
        for (std::uint64_t i = 0; i < n && wl->next(rec); ++i)
            writer.write(rec);
        writer.close();
        std::cout << "wrote " << writer.count() << " records to "
                  << opts.getString("save") << "\n";
        return 0;
    }

    TraceSummary s = summarizeTrace(*wl, n);
    s.print(std::cout);
    wl->reset();
    concentration(*wl, n);
    std::cout << "transactions completed: "
              << wl->transactionsCompleted() << "\n";
    return 0;
} catch (const SimError &e) {
    std::cerr << "error (" << errorKindName(e.kind())
              << "): " << e.what() << "\n";
    return 1;
}
