/**
 * @file
 * Domain example: compare every instruction-prefetching scheme on a
 * chosen commercial workload, reporting the paper's headline metrics
 * side by side — miss-rate reduction, coverage, accuracy, bandwidth
 * cost and speedup — with and without the selective-L2-install
 * optimization.
 *
 * Usage:
 *   prefetcher_comparison [--workload db] [--cores 4] [--scale X]
 *                         [--jobs N]
 */

#include <iostream>

#include "sim/experiment.hh"
#include "util/options.hh"
#include "util/table.hh"

using namespace ipref;

int
main(int argc, char **argv)
try {
    Options opts(argc, argv);
    WorkloadKind kind =
        parseWorkloadKind(opts.getString("workload", "db"));
    bool cmp = opts.getInt("cores", 4) == 4;
    double scale = opts.getDouble("scale", 0.5);
    unsigned jobs = static_cast<unsigned>(opts.getUint("jobs", 0));

    RunSpec base_spec = RunSpec::builder()
                            .cmp(cmp)
                            .workload(kind)
                            .instrScale(scale)
                            .build();

    struct Entry
    {
        PrefetchScheme scheme;
        unsigned degree;
        bool bypass;
    };
    const std::vector<Entry> entries = {
        {PrefetchScheme::NextLineOnMiss, 1, false},
        {PrefetchScheme::NextLineTagged, 1, false},
        {PrefetchScheme::NextNLineTagged, 4, false},
        {PrefetchScheme::NextNLineTagged, 4, true},
        {PrefetchScheme::TargetHistory, 1, false},
        {PrefetchScheme::Discontinuity, 4, false},
        {PrefetchScheme::Discontinuity, 4, true},
        {PrefetchScheme::Discontinuity, 2, true},
    };

    // One batch: the baseline first, then every scheme variant.
    std::vector<RunSpec> specs = {base_spec};
    for (const auto &e : entries)
        specs.push_back(RunSpec::Builder(base_spec)
                            .scheme(e.scheme)
                            .degree(e.degree)
                            .bypassL2(e.bypass)
                            .build());
    std::vector<SimResults> results = runSpecs(specs, jobs);
    const SimResults &base = results[0];

    std::cout << "Workload " << workloadName(kind) << " on "
              << (cmp ? "4-way CMP" : "a single core")
              << ": baseline IPC " << base.ipc << ", L1I miss rate "
              << base.l1iMissPerInstr() * 100 << "%/instr\n\n";

    Table t("Scheme comparison");
    t.header({"Scheme", "bypass", "L1I miss (norm)", "coverage",
              "accuracy", "mem reads (norm)", "L2D miss (norm)",
              "speedup"});

    std::size_t next = 1;
    for (const auto &e : entries) {
        const SimResults &r = results[next++];
        std::string label = schemeName(e.scheme);
        if (e.scheme == PrefetchScheme::Discontinuity &&
            e.degree == 2)
            label += " 2NL";
        t.row({label, e.bypass ? "yes" : "no",
               Table::num(base.l1iMissPerInstr() > 0
                              ? r.l1iMissPerInstr() /
                                    base.l1iMissPerInstr()
                              : 0.0,
                          3),
               Table::pct(r.l1iCoverage(), 1),
               Table::pct(r.pfAccuracy(), 1),
               Table::num(base.memReads
                              ? static_cast<double>(r.memReads) /
                                    static_cast<double>(
                                        base.memReads)
                              : 0.0,
                          2),
               Table::num(base.l2dMissPerInstr() > 0
                              ? r.l2dMissPerInstr() /
                                    base.l2dMissPerInstr()
                              : 0.0,
                          3),
               Table::num(base.ipc > 0 ? r.ipc / base.ipc : 0.0, 3) +
                   "X"});
    }
    t.print(std::cout);
    return 0;
} catch (const SimError &e) {
    std::cerr << "error (" << errorKindName(e.kind())
              << "): " << e.what() << "\n";
    return 1;
}
