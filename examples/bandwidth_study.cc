/**
 * @file
 * Domain example: off-chip bandwidth sensitivity.
 *
 * Section 5 of the paper fixes 20 GB/s for the 4-way CMP and notes
 * the contemporary range (IBM POWER5 ~25 GB/s, HP Itanium ~4 GB/s).
 * Aggressive prefetching trades bandwidth for latency, so the win of
 * the discontinuity prefetcher — and the appeal of the more accurate
 * 2NL variant — depends on how constrained the channel is. This
 * example sweeps the channel bandwidth and reports the trade-off.
 *
 * Usage:
 *   bandwidth_study [--workload db] [--scale X]
 */

#include <iostream>

#include "sim/experiment.hh"
#include "util/options.hh"
#include "util/table.hh"

using namespace ipref;

namespace
{

SimResults
runAt(WorkloadKind kind, double gbps, PrefetchScheme scheme,
      unsigned degree, double scale)
{
    RunSpec spec;
    spec.cmp = true;
    spec.workloads = {kind};
    spec.scheme = scheme;
    spec.degree = degree;
    spec.bypassL2 = scheme != PrefetchScheme::None;
    spec.instrScale = scale;
    SystemConfig cfg = makeConfig(spec);
    cfg.hierarchy.memory.gbPerSec = gbps;
    System system(cfg);
    return system.run();
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    WorkloadKind kind =
        parseWorkloadKind(opts.getString("workload", "db"));
    double scale = opts.getDouble("scale", 0.5);

    std::cout << "Off-chip bandwidth sensitivity ("
              << workloadName(kind)
              << ", 4-way CMP, discontinuity + bypass)\n\n";

    Table t("speedup and prefetch behaviour vs channel bandwidth");
    t.header({"GB/s", "base IPC", "disc speedup", "2NL speedup",
              "disc late pf", "disc queue delay/read"});

    for (double gbps : {4.0, 10.0, 20.0, 25.0, 40.0}) {
        SimResults base = runAt(kind, gbps, PrefetchScheme::None, 4,
                                scale);
        SimResults d4 = runAt(kind, gbps,
                              PrefetchScheme::Discontinuity, 4,
                              scale);
        SimResults d2 = runAt(kind, gbps,
                              PrefetchScheme::Discontinuity, 2,
                              scale);
        double late_frac =
            d4.pfUseful ? static_cast<double>(d4.pfLate) /
                              static_cast<double>(d4.pfUseful)
                        : 0.0;
        t.row({Table::num(gbps, 0), Table::num(base.ipc, 3),
               Table::num(base.ipc > 0 ? d4.ipc / base.ipc : 0, 3) +
                   "X",
               Table::num(base.ipc > 0 ? d2.ipc / base.ipc : 0, 3) +
                   "X",
               Table::pct(late_frac, 1),
               Table::num(d4.memReads
                              ? static_cast<double>(
                                    d4.memQueueDelayCycles) /
                                    static_cast<double>(d4.memReads)
                              : 0.0,
                          1)});
    }
    t.print(std::cout);
    std::cout << "\nLower bandwidth exposes prefetch queueing: the "
                 "more accurate 2NL variant closes on (or passes) "
                 "the 4-line configuration as GB/s falls.\n";
    return 0;
}
