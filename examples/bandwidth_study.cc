/**
 * @file
 * Domain example: off-chip bandwidth sensitivity.
 *
 * Section 5 of the paper fixes 20 GB/s for the 4-way CMP and notes
 * the contemporary range (IBM POWER5 ~25 GB/s, HP Itanium ~4 GB/s).
 * Aggressive prefetching trades bandwidth for latency, so the win of
 * the discontinuity prefetcher — and the appeal of the more accurate
 * 2NL variant — depends on how constrained the channel is. This
 * example sweeps the channel bandwidth and reports the trade-off.
 *
 * Usage:
 *   bandwidth_study [--workload db] [--scale X] [--jobs N]
 */

#include <iostream>

#include "sim/experiment.hh"
#include "util/options.hh"
#include "util/table.hh"

using namespace ipref;

int
main(int argc, char **argv)
try {
    Options opts(argc, argv);
    WorkloadKind kind =
        parseWorkloadKind(opts.getString("workload", "db"));
    double scale = opts.getDouble("scale", 0.5);
    unsigned jobs = static_cast<unsigned>(opts.getUint("jobs", 0));

    std::cout << "Off-chip bandwidth sensitivity ("
              << workloadName(kind)
              << ", 4-way CMP, discontinuity + bypass)\n\n";

    const std::vector<double> channels = {4.0, 10.0, 20.0, 25.0,
                                          40.0};
    struct Variant
    {
        PrefetchScheme scheme;
        unsigned degree;
    };
    const std::vector<Variant> variants = {
        {PrefetchScheme::None, 4},
        {PrefetchScheme::Discontinuity, 4},
        {PrefetchScheme::Discontinuity, 2},
    };

    // One batch: bandwidth-major, {base, disc-4, disc-2} per point.
    std::vector<RunSpec> specs;
    for (double gbps : channels) {
        for (const auto &v : variants)
            specs.push_back(
                RunSpec::builder()
                    .cmp(true)
                    .workload(kind)
                    .scheme(v.scheme)
                    .degree(v.degree)
                    .bypassL2(v.scheme != PrefetchScheme::None)
                    .instrScale(scale)
                    .memGbPerSec(gbps)
                    .build());
    }
    std::vector<SimResults> results = runSpecs(specs, jobs);

    Table t("speedup and prefetch behaviour vs channel bandwidth");
    t.header({"GB/s", "base IPC", "disc speedup", "2NL speedup",
              "disc late pf", "disc queue delay/read"});

    std::size_t next = 0;
    for (double gbps : channels) {
        const SimResults &base = results[next++];
        const SimResults &d4 = results[next++];
        const SimResults &d2 = results[next++];
        double late_frac =
            d4.pfUseful ? static_cast<double>(d4.pfLate) /
                              static_cast<double>(d4.pfUseful)
                        : 0.0;
        t.row({Table::num(gbps, 0), Table::num(base.ipc, 3),
               Table::num(base.ipc > 0 ? d4.ipc / base.ipc : 0, 3) +
                   "X",
               Table::num(base.ipc > 0 ? d2.ipc / base.ipc : 0, 3) +
                   "X",
               Table::pct(late_frac, 1),
               Table::num(d4.memReads
                              ? static_cast<double>(
                                    d4.memQueueDelayCycles) /
                                    static_cast<double>(d4.memReads)
                              : 0.0,
                          1)});
    }
    t.print(std::cout);
    std::cout << "\nLower bandwidth exposes prefetch queueing: the "
                 "more accurate 2NL variant closes on (or passes) "
                 "the 4-line configuration as GB/s falls.\n";
    return 0;
} catch (const SimError &e) {
    std::cerr << "error (" << errorKindName(e.kind())
              << "): " << e.what() << "\n";
    return 1;
}
