/**
 * @file
 * Domain example: the shared-L2 pollution story of Sections 6-7.
 *
 * Runs the 4-way CMP three times — no prefetching, aggressive
 * discontinuity prefetching, and discontinuity prefetching with
 * selective L2 installation — and narrates where the performance
 * goes: instruction misses eliminated, data misses inflated by
 * pollution, and the bypass scheme recovering the loss.
 *
 * Usage:
 *   cmp_pollution [--workload mixed|db|tpcw|japp|web] [--scale X]
 *                 [--jobs N]
 */

#include <iostream>

#include "sim/experiment.hh"
#include "util/options.hh"

using namespace ipref;

namespace
{

void
report(const char *label, const SimResults &r, const SimResults *base)
{
    std::cout << label << "\n";
    std::cout << "  aggregate IPC:        " << r.ipc;
    if (base)
        std::cout << "  (" << r.ipc / base->ipc << "X)";
    std::cout << "\n";
    std::cout << "  L1I misses / instr:   "
              << r.l1iMissPerInstr() * 100 << "%\n";
    std::cout << "  L2 instr misses:      "
              << r.l2iMissPerInstr() * 100 << "%\n";
    std::cout << "  L2 data misses:       "
              << r.l2dMissPerInstr() * 100 << "%";
    if (base && base->l2dMissPerInstr() > 0)
        std::cout << "  (" << r.l2dMissPerInstr() /
                                 base->l2dMissPerInstr()
                  << "X vs baseline)";
    std::cout << "\n";
    if (r.pfIssued) {
        std::cout << "  prefetches issued:    " << r.pfIssued
                  << " (accuracy " << r.pfAccuracy() * 100
                  << "%, coverage " << r.l1iCoverage() * 100
                  << "%)\n";
        std::cout << "  bypass installs/drops: " << r.bypassInstalls
                  << " / " << r.bypassDrops << "\n";
    }
    std::cout << "\n";
}

} // namespace

int
main(int argc, char **argv)
try {
    Options opts(argc, argv);
    std::string w = opts.getString("workload", "mixed");

    // The preset resolver accepts "mixed" and the single names
    // alike, so the CLI argument maps straight onto the TraceSpec.
    RunSpec spec = RunSpec::builder()
                       .cmp(true)
                       .trace(TraceSpec::workloadPreset(w))
                       .instrScale(opts.getDouble("scale", 0.5))
                       .build();

    std::cout << "=== Shared-L2 pollution on a 4-way CMP ("
              << (w == "mixed" ? "Mixed" : w) << ") ===\n\n";

    // All three configurations as one batch.
    std::vector<RunSpec> specs = {spec};
    specs.push_back(RunSpec::Builder(spec)
                        .scheme(PrefetchScheme::Discontinuity)
                        .build());
    specs.push_back(RunSpec::Builder(spec)
                        .scheme(PrefetchScheme::Discontinuity)
                        .bypassL2()
                        .build());
    std::vector<SimResults> results = runSpecs(
        specs, static_cast<unsigned>(opts.getUint("jobs", 0)));

    const SimResults &base = results[0];
    const SimResults &aggressive = results[1];
    const SimResults &bypass = results[2];
    report("[1] no prefetching", base, nullptr);
    report("[2] discontinuity prefetcher (prefetches install into "
           "the L2)",
           aggressive, &base);
    report("[3] discontinuity prefetcher + selective L2 install "
           "(Section 7)",
           bypass, &base);

    std::cout << "Summary: prefetching removed "
              << (1.0 - aggressive.l1iMissPerInstr() /
                            base.l1iMissPerInstr()) *
                     100
              << "% of instruction misses but inflated L2 data "
                 "misses by "
              << (aggressive.l2dMissPerInstr() /
                      base.l2dMissPerInstr() -
                  1.0) *
                     100
              << "%; selective install recovers the data misses "
                 "and lifts the speedup from "
              << aggressive.ipc / base.ipc << "X to "
              << bypass.ipc / base.ipc << "X.\n";
    return 0;
} catch (const SimError &e) {
    std::cerr << "error (" << errorKindName(e.kind())
              << "): " << e.what() << "\n";
    return 1;
}
