/**
 * @file
 * Figure 10: prefetch coverage of L1I and L2 (4-way CMP) instruction
 * misses as the discontinuity prediction table shrinks from 8K to
 * 256 entries, with the next-4-line sequential prefetcher as the
 * reference point.
 */

#include "bench/bench_common.hh"

using namespace ipref;

namespace
{

/** Coverage = eliminated misses / baseline misses. */
double
coverage(std::uint64_t baseMisses, std::uint64_t misses)
{
    if (baseMisses == 0)
        return 0.0;
    if (misses >= baseMisses)
        return 0.0;
    return 1.0 - static_cast<double>(misses) /
                     static_cast<double>(baseMisses);
}

} // namespace

int
main(int argc, char **argv)
{
    BenchContext ctx(argc, argv, 0.3);

    struct Row
    {
        std::string label;
        PrefetchScheme scheme;
        unsigned entries;
    };
    std::vector<Row> rows;
    for (unsigned entries : {8192u, 4096u, 2048u, 1024u, 512u, 256u})
        rows.push_back({std::to_string(entries) + "-entries",
                        PrefetchScheme::Discontinuity, entries});
    rows.push_back(
        {"next-4-lines (tagged)", PrefetchScheme::NextNLineTagged,
         8192});

    const auto sets = figureWorkloads(true);

    // One batch: baselines first, then the table-size grid.
    std::vector<RunSpec> specs;
    for (const auto &ws : sets)
        specs.push_back(
            ctx.spec().cmp(true).workloads(ws.kinds).build());
    for (const auto &cfg : rows) {
        for (const auto &ws : sets)
            specs.push_back(ctx.spec()
                                .cmp(true)
                                .workloads(ws.kinds)
                                .scheme(cfg.scheme)
                                .tableEntries(cfg.entries)
                                .build());
    }
    std::vector<SimResults> results = ctx.run(specs);

    std::vector<std::string> header = {"Configuration"};
    for (const auto &ws : sets)
        header.push_back(ws.label);

    Table l1("Figure 10(i): L1I miss coverage vs discontinuity "
             "table size (4-way CMP)");
    Table l2("Figure 10(ii): L2 instruction miss coverage vs table "
             "size (4-way CMP)");
    l1.header(header);
    l2.header(header);

    std::size_t next = sets.size();
    for (const auto &cfg : rows) {
        std::vector<std::string> r1 = {cfg.label};
        std::vector<std::string> r2 = {cfg.label};
        for (std::size_t wi = 0; wi < sets.size(); ++wi) {
            const SimResults &r = results[next++];
            r1.push_back(Table::pct(
                coverage(results[wi].l1iMisses, r.l1iMisses), 1));
            r2.push_back(Table::pct(
                coverage(results[wi].l2iMisses, r.l2iMisses), 1));
        }
        l1.row(r1);
        l2.row(r2);
    }
    ctx.emit(l1);
    ctx.emit(l2);
    return ctx.exitCode();
}
