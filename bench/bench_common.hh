/**
 * @file
 * Shared helpers for the figure-reproduction benches: scaling,
 * output selection and common run patterns.
 *
 * Every bench accepts:
 *   --scale X            multiply the default instruction budgets
 *                        (also via the IPREF_SCALE environment
 *                        variable; both compose)
 *   --jobs N             run independent simulations on N pool
 *                        threads (default: hardware concurrency;
 *                        1 = sequential). Results and reports are
 *                        bit-identical at any job count.
 *   --csv                print comma-separated values instead of
 *                        tables
 *   --stats-json FILE    write a JSON array with one report per run
 *   --stats-interval N   sample counter deltas every N instructions
 *   --trace-events N     keep the last N structured trace events
 *   --trace-out FILE     trace destination (JSON lines)
 *   --profile-sites K    track the K hottest miss sites / edges
 *   --scheme TOK[,TOK]   prefetch scheme(s) to compare, as registry
 *                        tokens or aliases (see schemeRegistry();
 *                        default: the paper's Figure 5-9 set)
 *   --trace FILE         replay a binary trace file on every core
 *                        instead of the synthetic workloads
 *   --trace-tolerant     salvage the intact prefix of a damaged
 *                        trace instead of failing the run
 *   --retries N          attempts per run; transient failures back
 *                        off and retry (default 1 = no retries)
 *   --timeout-ms N       per-run deadline; runaway runs are marked
 *                        timed out instead of hanging the batch
 *   --manifest FILE      campaign checkpoint written atomically
 *                        after every run
 *   --resume             skip runs the manifest already completed
 *   --seed N             base RNG seed for every run (default 1;
 *                        campaigns with the same seed are
 *                        bit-identical)
 *   --metrics-interval-ms N
 *                        sample live telemetry every N ms (0 = off)
 *   --metrics-out FILE   JSON-lines telemetry time series (watch it
 *                        live with tools/ipref_top)
 *   --metrics-prom FILE  Prometheus text exposition, rewritten
 *                        atomically on every sample
 *   --metrics-port N     serve the exposition on localhost:N
 *
 * A failed run no longer kills the whole bench: the failure is
 * reported on stderr, its table cells read zero, and main should
 * `return ctx.exitCode();` (non-zero iff any run failed).
 */

#ifndef IPREF_BENCH_BENCH_COMMON_HH
#define IPREF_BENCH_BENCH_COMMON_HH

#include <iostream>
#include <string>
#include <vector>

#include "sim/experiment.hh"
#include "util/metrics.hh"
#include "util/options.hh"
#include "util/table.hh"

namespace ipref
{

/** Parsed bench context. */
struct BenchContext
{
    BenchContext(int argc, char **argv, double defaultScale = 0.3)
        : opts(argc, argv)
    {
        scale = defaultScale * envScale() *
                opts.getDouble("scale", 1.0);
        csv = opts.getBool("csv");
        jobs = static_cast<unsigned>(opts.getUint("jobs", 0));

        batch.jobs = jobs;
        batch.maxAttempts = static_cast<unsigned>(
            opts.getUint("retries", 1));
        batch.runTimeoutMs = opts.getUint("timeout-ms", 0);
        batch.manifestPath = opts.getString("manifest");
        batch.resume = opts.getBool("resume");

        ObservabilityOptions obs;
        obs.jsonPath = opts.getString("stats-json");
        obs.intervalInstrs = opts.getUint("stats-interval", 0);
        obs.traceCapacity = opts.getUint("trace-events", 0);
        obs.tracePath =
            opts.getString("trace-out", "trace_events.jsonl");
        obs.profileSites = opts.getUint("profile-sites", 0);
        setObservability(obs);

        seed = opts.getUint("seed", 1);

        metrics::MetricsOptions mopts;
        mopts.intervalMs = opts.getUint("metrics-interval-ms", 0);
        mopts.jsonlPath = opts.getString("metrics-out");
        mopts.promPath = opts.getString("metrics-prom");
        mopts.promPort = static_cast<unsigned>(
            opts.getUint("metrics-port", 0));
        if (mopts.intervalMs > 0 && mopts.anySink())
            metrics::configureMetrics(mopts);

        std::string tracePath = opts.getString("trace");
        if (!tracePath.empty())
            trace = TraceSpec::file(tracePath,
                                    opts.getBool("trace-tolerant"));

        schemeArg = opts.getString("scheme");
    }

    /**
     * The schemes this bench compares: the --scheme list (comma
     * separated registry tokens/aliases), or the paper's Figure 5-9
     * set when the flag is absent. Throws ConfigError on an unknown
     * token.
     */
    std::vector<PrefetchScheme>
    schemes() const
    {
        if (schemeArg.empty()) {
            static const std::vector<PrefetchScheme> paper = {
                PrefetchScheme::NextLineOnMiss,
                PrefetchScheme::NextLineTagged,
                PrefetchScheme::NextNLineTagged,
                PrefetchScheme::Discontinuity,
            };
            return paper;
        }
        std::vector<PrefetchScheme> out;
        std::string tok;
        for (char c : schemeArg + ",") {
            if (c != ',') {
                tok += c;
                continue;
            }
            if (!tok.empty())
                out.push_back(parseScheme(tok));
            tok.clear();
        }
        return out;
    }

    /**
     * A Builder pre-loaded with this bench's cross-cutting inputs
     * (instruction scale, --trace replay); start every spec here so
     * CLI-level knobs apply uniformly.
     */
    RunSpec::Builder
    spec() const
    {
        RunSpec::Builder b;
        b.instrScale(scale);
        b.baseSeed(seed);
        if (trace.enabled())
            b.trace(trace);
        return b;
    }

    /**
     * Run a batch of specs on the --jobs pool, in input order, inside
     * per-run failure domains: a corrupt trace, a thrown SimError or
     * a deadline overrun fails that run alone. Failures are reported
     * on stderr and their result slots are zero; check exitCode().
     */
    std::vector<SimResults>
    run(const std::vector<RunSpec> &specs) const
    {
        std::vector<RunOutcome> outcomes = runBatch(specs, batch);
        std::vector<SimResults> results(outcomes.size());
        for (std::size_t i = 0; i < outcomes.size(); ++i) {
            if (outcomes[i].ok()) {
                results[i] = outcomes[i].results;
                continue;
            }
            ++failures;
            std::cerr << "run " << i << "/" << outcomes.size()
                      << " " << runStatusName(outcomes[i].status)
                      << " after " << outcomes[i].attempts
                      << " attempt(s): " << outcomes[i].error
                      << "\n";
        }
        return results;
    }

    /** 0 when every run so far completed, 1 otherwise. */
    int exitCode() const { return failures == 0 ? 0 : 1; }

    /** Emit a finished table in the chosen format. */
    void
    emit(const Table &table) const
    {
        if (csv)
            table.printCsv(std::cout);
        else
            table.print(std::cout);
        std::cout << "\n";
    }

    Options opts;
    double scale = 1.0;
    bool csv = false;
    unsigned jobs = 0;     //!< 0 = hardware concurrency
    std::uint64_t seed = 1; //!< --seed base RNG seed for every run
    BatchOptions batch;            //!< retry / timeout / checkpoint knobs
    TraceSpec trace;               //!< --trace replay input (may be unset)
    std::string schemeArg;         //!< raw --scheme value
    mutable unsigned failures = 0; //!< non-Ok outcomes seen by run()
};

/** Speedup of @p x over @p base (paper's "performance improvement"). */
inline double
speedup(const SimResults &base, const SimResults &x)
{
    return base.ipc > 0 ? x.ipc / base.ipc : 0.0;
}

/**
 * The prefetching schemes compared in Figures 5-9.
 * @deprecated Use BenchContext::schemes(), which also honours the
 * --scheme flag; this remains for out-of-tree drivers.
 */
inline const std::vector<PrefetchScheme> &
paperSchemes()
{
    static const std::vector<PrefetchScheme> schemes = {
        PrefetchScheme::NextLineOnMiss,
        PrefetchScheme::NextLineTagged,
        PrefetchScheme::NextNLineTagged,
        PrefetchScheme::Discontinuity,
    };
    return schemes;
}

} // namespace ipref

#endif // IPREF_BENCH_BENCH_COMMON_HH
