/**
 * @file
 * Shared helpers for the figure-reproduction benches: scaling,
 * output selection and common run patterns.
 *
 * Every bench accepts:
 *   --scale X            multiply the default instruction budgets
 *                        (also via the IPREF_SCALE environment
 *                        variable; both compose)
 *   --jobs N             run independent simulations on N pool
 *                        threads (default: hardware concurrency;
 *                        1 = sequential). Results and reports are
 *                        bit-identical at any job count.
 *   --csv                print comma-separated values instead of
 *                        tables
 *   --stats-json FILE    write a JSON array with one report per run
 *   --stats-interval N   sample counter deltas every N instructions
 *   --trace-events N     keep the last N structured trace events
 *   --trace-out FILE     trace destination (JSON lines)
 *   --profile-sites K    track the K hottest miss sites / edges
 */

#ifndef IPREF_BENCH_BENCH_COMMON_HH
#define IPREF_BENCH_BENCH_COMMON_HH

#include <iostream>
#include <string>
#include <vector>

#include "sim/experiment.hh"
#include "util/options.hh"
#include "util/table.hh"

namespace ipref
{

/** Parsed bench context. */
struct BenchContext
{
    BenchContext(int argc, char **argv, double defaultScale = 0.3)
        : opts(argc, argv)
    {
        scale = defaultScale * envScale() *
                opts.getDouble("scale", 1.0);
        csv = opts.getBool("csv");
        jobs = static_cast<unsigned>(opts.getUint("jobs", 0));

        ObservabilityOptions obs;
        obs.jsonPath = opts.getString("stats-json");
        obs.intervalInstrs = opts.getUint("stats-interval", 0);
        obs.traceCapacity = opts.getUint("trace-events", 0);
        obs.tracePath =
            opts.getString("trace-out", "trace_events.jsonl");
        obs.profileSites = opts.getUint("profile-sites", 0);
        setObservability(obs);
    }

    /** Run a batch of specs on the --jobs pool, in input order. */
    std::vector<SimResults>
    run(const std::vector<RunSpec> &specs) const
    {
        return runSpecs(specs, jobs);
    }

    /** Emit a finished table in the chosen format. */
    void
    emit(const Table &table) const
    {
        if (csv)
            table.printCsv(std::cout);
        else
            table.print(std::cout);
        std::cout << "\n";
    }

    Options opts;
    double scale = 1.0;
    bool csv = false;
    unsigned jobs = 0; //!< 0 = hardware concurrency
};

/** Speedup of @p x over @p base (paper's "performance improvement"). */
inline double
speedup(const SimResults &base, const SimResults &x)
{
    return base.ipc > 0 ? x.ipc / base.ipc : 0.0;
}

/** The prefetching schemes compared in Figures 5-9. */
inline const std::vector<PrefetchScheme> &
paperSchemes()
{
    static const std::vector<PrefetchScheme> schemes = {
        PrefetchScheme::NextLineOnMiss,
        PrefetchScheme::NextLineTagged,
        PrefetchScheme::NextNLineTagged,
        PrefetchScheme::Discontinuity,
    };
    return schemes;
}

} // namespace ipref

#endif // IPREF_BENCH_BENCH_COMMON_HH
