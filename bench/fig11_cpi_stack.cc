/**
 * @file
 * Figure 11 (companion): CPI stacks per prefetching scheme. Every
 * timing-mode cycle is charged to exactly one bucket by the per-core
 * cycle ledger (sim/cycle_ledger.hh), so each row decomposes a
 * scheme's CPI into busy work and the stalls it still suffers. The
 * interesting movement mirrors the paper's speedup story: prefetching
 * converts fetch_mem stall cycles into busy cycles, with the
 * not-quite-timely remainder surfacing as prefetch_partial.
 *
 * Single-core runs keep the stacks directly comparable (CPI =
 * cycles / instructions with no per-core weighting). Rows are the
 * no-prefetch baseline plus the --scheme set (default: the paper's
 * Figure 5-9 schemes — next-line variants and the discontinuity
 * predictor, which combines the discontinuity table with next-N-line
 * prefetching).
 */

#include "bench/bench_common.hh"
#include "sim/cycle_ledger.hh"

using namespace ipref;

namespace
{

void
stackTable(const BenchContext &ctx, const WorkloadSet &ws)
{
    const auto schemes = ctx.schemes();

    std::vector<RunSpec> specs;
    specs.push_back(
        ctx.spec().cmp(false).workloads(ws.kinds).build());
    for (PrefetchScheme scheme : schemes)
        specs.push_back(ctx.spec()
                            .cmp(false)
                            .workloads(ws.kinds)
                            .scheme(scheme)
                            .build());
    std::vector<SimResults> results = ctx.run(specs);

    Table t("Figure 11 (" + ws.label +
            "): CPI stack by scheme (cycles per instruction)");
    std::vector<std::string> header = {"Scheme"};
    for (std::size_t b = 0; b < kNumCycleBuckets; ++b)
        header.push_back(
            cycleBucketName(static_cast<CycleBucket>(b)));
    header.push_back("CPI");
    t.header(header);

    for (std::size_t i = 0; i < specs.size(); ++i) {
        const SimResults &r = results[i];
        std::vector<std::string> row = {
            i == 0 ? "none" : schemeName(schemes[i - 1])};
        for (std::size_t b = 0; b < kNumCycleBuckets; ++b) {
            double v = r.instructions
                           ? static_cast<double>(r.cpiStack[b]) /
                                 static_cast<double>(r.instructions)
                           : 0.0;
            row.push_back(Table::num(v, 3));
        }
        double cpi = r.instructions
                         ? static_cast<double>(r.cycles) /
                               static_cast<double>(r.instructions)
                         : 0.0;
        row.push_back(Table::num(cpi, 3));
        t.row(row);
    }
    ctx.emit(t);
}

} // namespace

int
main(int argc, char **argv)
{
    BenchContext ctx(argc, argv, 0.5);
    for (const WorkloadSet &ws : figureWorkloads(false))
        stackTable(ctx, ws);
    return ctx.exitCode();
}
