/**
 * @file
 * Figure 5: instruction miss rates under each HW prefetching scheme,
 * normalized to no prefetching — (i) the instruction cache,
 * (ii) the L2 (single core), (iii) the L2 (4-way CMP).
 */

#include "bench/bench_common.hh"

using namespace ipref;

namespace
{

void
missTable(const BenchContext &ctx, const char *title, bool cmp,
          bool l2, bool include_mix)
{
    Table t(title);
    std::vector<std::string> header = {"Scheme"};
    std::vector<SimResults> baselines;
    for (const auto &ws : figureWorkloads(include_mix)) {
        header.push_back(ws.label);
        RunSpec spec;
        spec.cmp = cmp;
        spec.workloads = ws.kinds;
        spec.instrScale = ctx.scale;
        baselines.push_back(runSpec(spec));
    }
    t.header(header);

    for (PrefetchScheme scheme : paperSchemes()) {
        std::vector<std::string> row = {schemeName(scheme)};
        std::size_t wi = 0;
        for (const auto &ws : figureWorkloads(include_mix)) {
            RunSpec spec;
            spec.cmp = cmp;
            spec.workloads = ws.kinds;
            spec.scheme = scheme;
            spec.instrScale = ctx.scale;
            SimResults r = runSpec(spec);
            double rate = l2 ? r.l2iMissPerInstr()
                             : r.l1iMissPerInstr();
            double base = l2 ? baselines[wi].l2iMissPerInstr()
                             : baselines[wi].l1iMissPerInstr();
            row.push_back(
                Table::num(base > 0 ? rate / base : 0.0, 3));
            ++wi;
        }
        t.row(row);
    }
    ctx.emit(t);
}

} // namespace

int
main(int argc, char **argv)
{
    BenchContext ctx(argc, argv, 0.3);
    missTable(ctx,
              "Figure 5(i): L1I miss rate, normalized to no prefetch "
              "(single core)",
              false, false, false);
    missTable(ctx,
              "Figure 5(ii): L2 instruction miss rate, normalized "
              "(single core)",
              false, true, false);
    missTable(ctx,
              "Figure 5(iii): L2 instruction miss rate, normalized "
              "(4-way CMP)",
              true, true, true);
    return 0;
}
