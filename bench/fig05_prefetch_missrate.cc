/**
 * @file
 * Figure 5: instruction miss rates under each HW prefetching scheme,
 * normalized to no prefetching — (i) the instruction cache,
 * (ii) the L2 (single core), (iii) the L2 (4-way CMP).
 */

#include "bench/bench_common.hh"

using namespace ipref;

namespace
{

void
missTable(const BenchContext &ctx, const char *title, bool cmp,
          bool l2, bool include_mix)
{
    const auto sets = figureWorkloads(include_mix);

    // One batch: baselines first, then the scheme grid (row-major).
    const auto schemes = ctx.schemes();
    std::vector<RunSpec> specs;
    for (const auto &ws : sets)
        specs.push_back(
            ctx.spec().cmp(cmp).workloads(ws.kinds).build());
    for (PrefetchScheme scheme : schemes) {
        for (const auto &ws : sets)
            specs.push_back(ctx.spec()
                                .cmp(cmp)
                                .workloads(ws.kinds)
                                .scheme(scheme)
                                .build());
    }
    std::vector<SimResults> results = ctx.run(specs);

    Table t(title);
    std::vector<std::string> header = {"Scheme"};
    for (const auto &ws : sets)
        header.push_back(ws.label);
    t.header(header);

    std::size_t next = sets.size();
    for (PrefetchScheme scheme : schemes) {
        std::vector<std::string> row = {schemeName(scheme)};
        for (std::size_t wi = 0; wi < sets.size(); ++wi) {
            const SimResults &r = results[next++];
            double rate = l2 ? r.l2iMissPerInstr()
                             : r.l1iMissPerInstr();
            double base = l2 ? results[wi].l2iMissPerInstr()
                             : results[wi].l1iMissPerInstr();
            row.push_back(
                Table::num(base > 0 ? rate / base : 0.0, 3));
        }
        t.row(row);
    }
    ctx.emit(t);
}

} // namespace

int
main(int argc, char **argv)
{
    BenchContext ctx(argc, argv, 0.3);
    missTable(ctx,
              "Figure 5(i): L1I miss rate, normalized to no prefetch "
              "(single core)",
              false, false, false);
    missTable(ctx,
              "Figure 5(ii): L2 instruction miss rate, normalized "
              "(single core)",
              false, true, false);
    missTable(ctx,
              "Figure 5(iii): L2 instruction miss rate, normalized "
              "(4-way CMP)",
              true, true, true);
    return ctx.exitCode();
}
