/**
 * @file
 * Figure 6: performance gains of each HW prefetching scheme relative
 * to no prefetching, WITHOUT the selective-L2-install optimization —
 * (i) single core, (ii) 4-way CMP. L2 data pollution caps these
 * gains (compare with Figure 8).
 */

#include "bench/bench_common.hh"

using namespace ipref;

namespace
{

void
speedupTable(const BenchContext &ctx, const char *title, bool cmp,
             bool include_mix, bool bypass)
{
    const auto sets = figureWorkloads(include_mix);

    // One batch: baselines first, then the scheme grid (row-major).
    const auto schemes = ctx.schemes();
    std::vector<RunSpec> specs;
    for (const auto &ws : sets)
        specs.push_back(
            ctx.spec().cmp(cmp).workloads(ws.kinds).build());
    for (PrefetchScheme scheme : schemes) {
        for (const auto &ws : sets)
            specs.push_back(ctx.spec()
                                .cmp(cmp)
                                .workloads(ws.kinds)
                                .scheme(scheme)
                                .bypassL2(bypass)
                                .build());
    }
    std::vector<SimResults> results = ctx.run(specs);

    Table t(title);
    std::vector<std::string> header = {"Scheme"};
    for (const auto &ws : sets)
        header.push_back(ws.label);
    t.header(header);

    std::size_t next = sets.size();
    for (PrefetchScheme scheme : schemes) {
        std::vector<std::string> row = {schemeName(scheme)};
        for (std::size_t wi = 0; wi < sets.size(); ++wi) {
            row.push_back(
                Table::num(speedup(results[wi], results[next++]), 3) +
                "X");
        }
        t.row(row);
    }
    ctx.emit(t);
}

} // namespace

int
main(int argc, char **argv)
{
    BenchContext ctx(argc, argv, 0.8);
    speedupTable(ctx,
                 "Figure 6(i): prefetcher speedups, no L2 bypass "
                 "(single core)",
                 false, false, false);
    speedupTable(ctx,
                 "Figure 6(ii): prefetcher speedups, no L2 bypass "
                 "(4-way CMP)",
                 true, true, false);
    return ctx.exitCode();
}
