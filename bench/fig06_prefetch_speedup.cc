/**
 * @file
 * Figure 6: performance gains of each HW prefetching scheme relative
 * to no prefetching, WITHOUT the selective-L2-install optimization —
 * (i) single core, (ii) 4-way CMP. L2 data pollution caps these
 * gains (compare with Figure 8).
 */

#include "bench/bench_common.hh"

using namespace ipref;

namespace
{

void
speedupTable(const BenchContext &ctx, const char *title, bool cmp,
             bool include_mix, bool bypass)
{
    Table t(title);
    std::vector<std::string> header = {"Scheme"};
    std::vector<SimResults> baselines;
    for (const auto &ws : figureWorkloads(include_mix)) {
        header.push_back(ws.label);
        RunSpec spec;
        spec.cmp = cmp;
        spec.workloads = ws.kinds;
        spec.instrScale = ctx.scale;
        baselines.push_back(runSpec(spec));
    }
    t.header(header);

    for (PrefetchScheme scheme : paperSchemes()) {
        std::vector<std::string> row = {schemeName(scheme)};
        std::size_t wi = 0;
        for (const auto &ws : figureWorkloads(include_mix)) {
            RunSpec spec;
            spec.cmp = cmp;
            spec.workloads = ws.kinds;
            spec.scheme = scheme;
            spec.bypassL2 = bypass;
            spec.instrScale = ctx.scale;
            SimResults r = runSpec(spec);
            row.push_back(
                Table::num(speedup(baselines[wi], r), 3) + "X");
            ++wi;
        }
        t.row(row);
    }
    ctx.emit(t);
}

} // namespace

int
main(int argc, char **argv)
{
    BenchContext ctx(argc, argv, 0.8);
    speedupTable(ctx,
                 "Figure 6(i): prefetcher speedups, no L2 bypass "
                 "(single core)",
                 false, false, false);
    speedupTable(ctx,
                 "Figure 6(ii): prefetcher speedups, no L2 bypass "
                 "(4-way CMP)",
                 true, true, false);
    return 0;
}
