/**
 * @file
 * Figure 8: performance gains of each HW prefetching scheme WITH the
 * selective-L2-install (bypass) optimization of Section 7 —
 * prefetches enter the L2 only after proving useful, eliminating the
 * pollution that capped Figure 6's gains.
 * (i) single core, (ii) 4-way CMP.
 */

#include "bench/bench_common.hh"

using namespace ipref;

namespace
{

void
bypassTable(const BenchContext &ctx, const char *title, bool cmp,
            bool include_mix)
{
    Table t(title);
    std::vector<std::string> header = {"Scheme"};
    std::vector<SimResults> baselines;
    for (const auto &ws : figureWorkloads(include_mix)) {
        header.push_back(ws.label);
        RunSpec spec;
        spec.cmp = cmp;
        spec.workloads = ws.kinds;
        spec.instrScale = ctx.scale;
        baselines.push_back(runSpec(spec));
    }
    t.header(header);

    for (PrefetchScheme scheme : paperSchemes()) {
        std::vector<std::string> row = {schemeName(scheme)};
        std::size_t wi = 0;
        for (const auto &ws : figureWorkloads(include_mix)) {
            RunSpec spec;
            spec.cmp = cmp;
            spec.workloads = ws.kinds;
            spec.scheme = scheme;
            spec.bypassL2 = true;
            spec.instrScale = ctx.scale;
            SimResults r = runSpec(spec);
            row.push_back(
                Table::num(speedup(baselines[wi], r), 3) + "X");
            ++wi;
        }
        t.row(row);
    }
    ctx.emit(t);
}

} // namespace

int
main(int argc, char **argv)
{
    BenchContext ctx(argc, argv, 0.8);
    bypassTable(ctx,
                "Figure 8(i): prefetcher speedups with L2-bypass "
                "prefetches (single core)",
                false, false);
    bypassTable(ctx,
                "Figure 8(ii): prefetcher speedups with L2-bypass "
                "prefetches (4-way CMP)",
                true, true);
    return 0;
}
