/**
 * @file
 * Figure 8: performance gains of each HW prefetching scheme WITH the
 * selective-L2-install (bypass) optimization of Section 7 —
 * prefetches enter the L2 only after proving useful, eliminating the
 * pollution that capped Figure 6's gains.
 * (i) single core, (ii) 4-way CMP.
 */

#include "bench/bench_common.hh"

using namespace ipref;

namespace
{

void
bypassTable(const BenchContext &ctx, const char *title, bool cmp,
            bool include_mix)
{
    const auto sets = figureWorkloads(include_mix);

    // One batch: baselines first, then the scheme grid (row-major).
    const auto schemes = ctx.schemes();
    std::vector<RunSpec> specs;
    for (const auto &ws : sets)
        specs.push_back(
            ctx.spec().cmp(cmp).workloads(ws.kinds).build());
    for (PrefetchScheme scheme : schemes) {
        for (const auto &ws : sets)
            specs.push_back(ctx.spec()
                                .cmp(cmp)
                                .workloads(ws.kinds)
                                .scheme(scheme)
                                .bypassL2()
                                .build());
    }
    std::vector<SimResults> results = ctx.run(specs);

    Table t(title);
    std::vector<std::string> header = {"Scheme"};
    for (const auto &ws : sets)
        header.push_back(ws.label);
    t.header(header);

    std::size_t next = sets.size();
    for (PrefetchScheme scheme : schemes) {
        std::vector<std::string> row = {schemeName(scheme)};
        for (std::size_t wi = 0; wi < sets.size(); ++wi) {
            row.push_back(
                Table::num(speedup(results[wi], results[next++]), 3) +
                "X");
        }
        t.row(row);
    }
    ctx.emit(t);
}

} // namespace

int
main(int argc, char **argv)
{
    BenchContext ctx(argc, argv, 0.8);
    bypassTable(ctx,
                "Figure 8(i): prefetcher speedups with L2-bypass "
                "prefetches (single core)",
                false, false);
    bypassTable(ctx,
                "Figure 8(ii): prefetcher speedups with L2-bypass "
                "prefetches (4-way CMP)",
                true, true);
    return ctx.exitCode();
}
