/**
 * @file
 * Figure 7: L2 cache DATA miss rate under each instruction
 * prefetcher, normalized to no prefetching — the pollution effect of
 * speculative instruction lines displacing data from the shared L2.
 * (i) single core, (ii) 4-way CMP.
 */

#include "bench/bench_common.hh"

using namespace ipref;

namespace
{

void
pollutionTable(const BenchContext &ctx, const char *title, bool cmp,
               bool include_mix)
{
    const auto sets = figureWorkloads(include_mix);

    // One batch: baselines first, then the scheme grid (row-major).
    const auto schemes = ctx.schemes();
    std::vector<RunSpec> specs;
    for (const auto &ws : sets)
        specs.push_back(
            ctx.spec().cmp(cmp).workloads(ws.kinds).build());
    for (PrefetchScheme scheme : schemes) {
        for (const auto &ws : sets)
            specs.push_back(ctx.spec()
                                .cmp(cmp)
                                .workloads(ws.kinds)
                                .scheme(scheme)
                                .build());
    }
    std::vector<SimResults> results = ctx.run(specs);

    Table t(title);
    std::vector<std::string> header = {"Scheme"};
    for (const auto &ws : sets)
        header.push_back(ws.label);
    t.header(header);

    std::size_t next = sets.size();
    for (PrefetchScheme scheme : schemes) {
        std::vector<std::string> row = {schemeName(scheme)};
        for (std::size_t wi = 0; wi < sets.size(); ++wi) {
            const SimResults &r = results[next++];
            double base = results[wi].l2dMissPerInstr();
            row.push_back(Table::num(
                base > 0 ? r.l2dMissPerInstr() / base : 0.0, 3));
        }
        t.row(row);
    }
    ctx.emit(t);
}

} // namespace

int
main(int argc, char **argv)
{
    BenchContext ctx(argc, argv, 0.8);
    pollutionTable(ctx,
                   "Figure 7(i): L2 data miss rate, normalized to no "
                   "prefetch (single core)",
                   false, false);
    pollutionTable(ctx,
                   "Figure 7(ii): L2 data miss rate, normalized to no "
                   "prefetch (4-way CMP)",
                   true, true);
    return ctx.exitCode();
}
