/**
 * @file
 * Figure 7: L2 cache DATA miss rate under each instruction
 * prefetcher, normalized to no prefetching — the pollution effect of
 * speculative instruction lines displacing data from the shared L2.
 * (i) single core, (ii) 4-way CMP.
 */

#include "bench/bench_common.hh"

using namespace ipref;

namespace
{

void
pollutionTable(const BenchContext &ctx, const char *title, bool cmp,
               bool include_mix)
{
    Table t(title);
    std::vector<std::string> header = {"Scheme"};
    std::vector<SimResults> baselines;
    for (const auto &ws : figureWorkloads(include_mix)) {
        header.push_back(ws.label);
        RunSpec spec;
        spec.cmp = cmp;
        spec.workloads = ws.kinds;
        spec.instrScale = ctx.scale;
        baselines.push_back(runSpec(spec));
    }
    t.header(header);

    for (PrefetchScheme scheme : paperSchemes()) {
        std::vector<std::string> row = {schemeName(scheme)};
        std::size_t wi = 0;
        for (const auto &ws : figureWorkloads(include_mix)) {
            RunSpec spec;
            spec.cmp = cmp;
            spec.workloads = ws.kinds;
            spec.scheme = scheme;
            spec.instrScale = ctx.scale;
            SimResults r = runSpec(spec);
            double base = baselines[wi].l2dMissPerInstr();
            row.push_back(Table::num(
                base > 0 ? r.l2dMissPerInstr() / base : 0.0, 3));
            ++wi;
        }
        t.row(row);
    }
    ctx.emit(t);
}

} // namespace

int
main(int argc, char **argv)
{
    BenchContext ctx(argc, argv, 0.8);
    pollutionTable(ctx,
                   "Figure 7(i): L2 data miss rate, normalized to no "
                   "prefetch (single core)",
                   false, false);
    pollutionTable(ctx,
                   "Figure 7(ii): L2 data miss rate, normalized to no "
                   "prefetch (4-way CMP)",
                   true, true);
    return 0;
}
