/**
 * @file
 * Figure 1: instruction cache miss rates (% per retired instruction)
 * as associativity, line size and capacity vary around the default
 * 32KB / 4-way / 64B configuration.
 *
 * This is a standalone-cache study (mixed line sizes are allowed
 * here, unlike in the hierarchy): the fetch-line stream of each
 * workload is driven directly into a single L1I.
 */

#include "bench/bench_common.hh"

#include "cache/cache.hh"
#include "workload/presets.hh"

using namespace ipref;

namespace
{

/** One cache configuration of the sweep. */
struct Config
{
    const char *label;
    std::uint64_t sizeBytes;
    unsigned assoc;
    unsigned lineBytes;
};

double
missRate(WorkloadKind kind, const Config &config,
         std::uint64_t instrs)
{
    CacheParams p;
    p.name = "fig1";
    p.sizeBytes = config.sizeBytes;
    p.assoc = config.assoc;
    p.lineBytes = config.lineBytes;
    SetAssocCache cache(p);

    auto wl = makeWorkload(kind, 0);
    InstrRecord rec;
    Addr cur_line = invalidAddr;
    std::uint64_t misses = 0, counted = 0;
    std::uint64_t warm = instrs / 3;
    for (std::uint64_t i = 0; i < warm + instrs; ++i) {
        wl->next(rec);
        Addr line = cache.lineOf(rec.pc);
        if (line != cur_line) {
            cur_line = line;
            if (!cache.access(rec.pc).hit) {
                cache.insert(rec.pc, {});
                if (i >= warm)
                    ++misses;
            }
        }
        if (i >= warm)
            ++counted;
    }
    return static_cast<double>(misses) /
           static_cast<double>(counted);
}

} // namespace

int
main(int argc, char **argv)
{
    BenchContext ctx(argc, argv, 1.0);
    std::uint64_t instrs =
        static_cast<std::uint64_t>(3'000'000 * ctx.scale);

    const std::vector<Config> configs = {
        {"Default (32KB 4-way 64B)", 32u << 10, 4, 64},
        {"Direct-mapped", 32u << 10, 1, 64},
        {"2-way", 32u << 10, 2, 64},
        {"8-way", 32u << 10, 8, 64},
        {"32B line size", 32u << 10, 4, 32},
        {"128B line size", 32u << 10, 4, 128},
        {"256B line size", 32u << 10, 4, 256},
        {"16KB", 16u << 10, 4, 64},
        {"64KB", 64u << 10, 4, 64},
        {"128KB", 128u << 10, 4, 64},
    };

    Table t("Figure 1: L1I miss rate (% per instruction)");
    std::vector<std::string> header = {"Configuration"};
    for (WorkloadKind k : allWorkloadKinds())
        header.push_back(workloadName(k));
    t.header(header);

    for (const auto &config : configs) {
        std::vector<std::string> row = {config.label};
        for (WorkloadKind k : allWorkloadKinds())
            row.push_back(
                Table::pct(missRate(k, config, instrs), 2));
        t.row(row);
    }
    ctx.emit(t);
    return ctx.exitCode();
}
