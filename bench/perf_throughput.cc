/**
 * @file
 * Simulator-throughput benchmark: how many simulated instructions per
 * wall-clock second each prefetching scheme sustains, for tracking
 * host-side performance regressions of the hot fetch/prefetch loops.
 *
 * Writes a JSON summary (default BENCH_throughput.json) with one
 * entry per scheme: measured MIPS, wall-clock seconds and the
 * simulated instruction count. Run-to-run MIPS noise is reduced by
 * taking the best of --reps repetitions.
 *
 * Usage:
 *   perf_throughput [--scale X] [--reps N] [--out FILE] [--csv]
 */

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.hh"
#include "util/logging.hh"

using namespace ipref;

namespace
{

struct Sample
{
    std::string label;
    double mips = 0.0;
    double seconds = 0.0;
    std::uint64_t instructions = 0;
};

Sample
measure(const std::string &label, const RunSpec &spec, unsigned reps)
{
    Sample best;
    best.label = label;
    for (unsigned rep = 0; rep < reps; ++rep) {
        System system(makeConfig(spec));
        system.run();
        const PhaseProfile &prof = system.profile();
        double mips = prof.measureInstrsPerSec() / 1e6;
        if (mips > best.mips) {
            best.mips = mips;
            best.seconds = prof.measureSeconds;
            best.instructions = prof.measureInstructions;
        }
    }
    return best;
}

} // namespace

int
main(int argc, char **argv)
{
    // Throughput is wall-clock sensitive: always run sequentially so
    // the schemes don't contend for cores, whatever --jobs says.
    BenchContext ctx(argc, argv, 1.0);
    unsigned reps =
        static_cast<unsigned>(ctx.opts.getUint("reps", 3));
    std::string out_path =
        ctx.opts.getString("out", "BENCH_throughput.json");

    struct Case
    {
        std::string label;
        PrefetchScheme scheme;
        bool bypass;
    };
    std::vector<Case> cases = {{"none", PrefetchScheme::None, false}};
    for (PrefetchScheme s : ctx.schemes())
        cases.push_back({schemeName(s), s, true});

    std::vector<Sample> samples;
    for (const auto &c : cases) {
        RunSpec spec = ctx.spec()
                           .cmp(true)
                           .workload(WorkloadKind::DB)
                           .scheme(c.scheme)
                           .bypassL2(c.bypass)
                           .build();
        samples.push_back(measure(c.label, spec, reps));
    }

    Table t("Simulator throughput (DB, 4-way CMP, best of " +
            std::to_string(reps) + ")");
    t.header({"Scheme", "Minstr/s", "measure secs", "instructions"});
    for (const Sample &s : samples)
        t.row({s.label, Table::num(s.mips, 2),
               Table::num(s.seconds, 3),
               std::to_string(s.instructions)});
    ctx.emit(t);

    std::ofstream out(out_path);
    if (!out)
        ipref_fatal("cannot write throughput report to '%s'",
                    out_path.c_str());
    out << "{\n  \"benchmark\": \"perf_throughput\",\n"
        << "  \"workload\": \"DB\",\n  \"cores\": 4,\n"
        << "  \"scale\": " << ctx.scale << ",\n"
        << "  \"reps\": " << reps << ",\n  \"schemes\": [\n";
    for (std::size_t i = 0; i < samples.size(); ++i) {
        const Sample &s = samples[i];
        out << "    {\"scheme\": \"" << s.label
            << "\", \"minstr_per_sec\": " << s.mips
            << ", \"measure_seconds\": " << s.seconds
            << ", \"instructions\": " << s.instructions << "}"
            << (i + 1 < samples.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::cout << "throughput report written to " << out_path << "\n";
    return ctx.exitCode();
}
