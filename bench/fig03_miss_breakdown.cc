/**
 * @file
 * Figure 3: breakdown of instruction misses by fetch-transition
 * category — (i) L1I misses on a single core, (ii) L2 instruction
 * misses on a single core, (iii) L2 instruction misses on the 4-way
 * CMP (including the Mixed workload).
 */

#include "bench/bench_common.hh"

using namespace ipref;

namespace
{

void
breakdownTable(const BenchContext &ctx, const char *title, bool cmp,
               bool l2, bool include_mix)
{
    const auto sets = figureWorkloads(include_mix);

    std::vector<RunSpec> specs;
    for (const auto &ws : sets)
        specs.push_back(ctx.spec()
                            .cmp(cmp)
                            .workloads(ws.kinds)
                            .functional()
                            .build());
    std::vector<SimResults> results = ctx.run(specs);

    Table t(title);
    std::vector<std::string> header = {"Category"};
    for (const auto &ws : sets)
        header.push_back(ws.label);
    t.header(header);

    for (std::size_t c = 0;
         c < static_cast<std::size_t>(FetchTransition::NumTransitions);
         ++c) {
        std::vector<std::string> row = {
            transitionName(static_cast<FetchTransition>(c))};
        for (const auto &r : results) {
            const auto &by =
                l2 ? r.l2iMissByTransition : r.l1iMissByTransition;
            std::uint64_t total = 0;
            for (auto v : by)
                total += v;
            double frac =
                total ? static_cast<double>(by[c]) /
                            static_cast<double>(total)
                      : 0.0;
            row.push_back(Table::pct(frac, 1));
        }
        t.row(row);
    }
    ctx.emit(t);
}

} // namespace

int
main(int argc, char **argv)
{
    BenchContext ctx(argc, argv, 0.6);
    breakdownTable(ctx, "Figure 3(i): L1I miss breakdown (single core)",
                   false, false, false);
    breakdownTable(ctx,
                   "Figure 3(ii): L2 instruction miss breakdown "
                   "(single core)",
                   false, true, false);
    breakdownTable(ctx,
                   "Figure 3(iii): L2 instruction miss breakdown "
                   "(4-way CMP)",
                   true, true, true);
    return ctx.exitCode();
}
