/**
 * @file
 * Ablation: prefetch-ahead distance N for the discontinuity
 * prefetcher. The paper settles on N=4 as the balance between
 * timeliness and accuracy (Section 4), with N=2 ("2NL") as the
 * bandwidth-friendly alternative (Figure 9). This sweep regenerates
 * that trade-off curve.
 */

#include "bench/bench_common.hh"

using namespace ipref;

int
main(int argc, char **argv)
{
    BenchContext ctx(argc, argv, 0.4);
    const std::vector<WorkloadKind> kinds = {WorkloadKind::DB,
                                             WorkloadKind::JAPP};
    const std::vector<unsigned> degrees = {1, 2, 3, 4, 6, 8};

    // One batch: baselines first, then the degree grid (row-major).
    std::vector<RunSpec> specs;
    for (WorkloadKind k : kinds)
        specs.push_back(ctx.spec().cmp(true).workload(k).build());
    for (unsigned n : degrees) {
        for (WorkloadKind k : kinds)
            specs.push_back(ctx.spec()
                                .cmp(true)
                                .workload(k)
                                .scheme(PrefetchScheme::Discontinuity)
                                .degree(n)
                                .bypassL2()
                                .build());
    }
    std::vector<SimResults> results = ctx.run(specs);

    Table t("Ablation: discontinuity prefetch-ahead distance N "
            "(4-way CMP, with bypass)");
    std::vector<std::string> header = {"N"};
    for (WorkloadKind k : kinds)
        for (const char *m : {"cov", "acc", "speedup"})
            header.push_back(std::string(workloadName(k)) + " " + m);
    t.header(header);

    std::size_t next = kinds.size();
    for (unsigned n : degrees) {
        std::vector<std::string> row = {std::to_string(n)};
        for (std::size_t wi = 0; wi < kinds.size(); ++wi) {
            const SimResults &r = results[next++];
            row.push_back(Table::pct(r.l1iCoverage(), 1));
            row.push_back(Table::pct(r.pfAccuracy(), 1));
            row.push_back(
                Table::num(speedup(results[wi], r), 3) + "X");
        }
        t.row(row);
    }
    ctx.emit(t);
    return ctx.exitCode();
}
