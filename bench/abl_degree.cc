/**
 * @file
 * Ablation: prefetch-ahead distance N for the discontinuity
 * prefetcher. The paper settles on N=4 as the balance between
 * timeliness and accuracy (Section 4), with N=2 ("2NL") as the
 * bandwidth-friendly alternative (Figure 9). This sweep regenerates
 * that trade-off curve.
 */

#include "bench/bench_common.hh"

using namespace ipref;

int
main(int argc, char **argv)
{
    BenchContext ctx(argc, argv, 0.4);
    const std::vector<WorkloadKind> kinds = {WorkloadKind::DB,
                                             WorkloadKind::JAPP};

    Table t("Ablation: discontinuity prefetch-ahead distance N "
            "(4-way CMP, with bypass)");
    std::vector<std::string> header = {"N"};
    std::vector<SimResults> baselines;
    for (WorkloadKind k : kinds) {
        for (const char *m : {"cov", "acc", "speedup"})
            header.push_back(std::string(workloadName(k)) + " " + m);
        RunSpec spec;
        spec.cmp = true;
        spec.workloads = {k};
        spec.instrScale = ctx.scale;
        baselines.push_back(runSpec(spec));
    }
    t.header(header);

    for (unsigned n : {1u, 2u, 3u, 4u, 6u, 8u}) {
        std::vector<std::string> row = {std::to_string(n)};
        std::size_t wi = 0;
        for (WorkloadKind k : kinds) {
            RunSpec spec;
            spec.cmp = true;
            spec.workloads = {k};
            spec.scheme = PrefetchScheme::Discontinuity;
            spec.degree = n;
            spec.bypassL2 = true;
            spec.instrScale = ctx.scale;
            SimResults r = runSpec(spec);
            row.push_back(Table::pct(r.l1iCoverage(), 1));
            row.push_back(Table::pct(r.pfAccuracy(), 1));
            row.push_back(
                Table::num(speedup(baselines[wi], r), 3) + "X");
            ++wi;
        }
        t.row(row);
    }
    ctx.emit(t);
    return 0;
}
