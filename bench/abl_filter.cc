/**
 * @file
 * Ablation: the Section 4.1 filtering machinery — recent-demand-fetch
 * history depth and prefetch queue capacity. The paper argues that
 * filtering removes most useless tag probes ("up to 90% of prefetch
 * tag accesses issue") with minor performance impact; this sweep
 * regenerates that claim.
 */

#include "bench/bench_common.hh"

using namespace ipref;

int
main(int argc, char **argv)
{
    BenchContext ctx(argc, argv, 0.4);

    struct Cfg
    {
        int history;
        int queue;
    };
    const std::vector<Cfg> cfgs = {{0, 32},  {8, 32},  {32, 32},
                                   {128, 32}, {32, 8},  {32, 64},
                                   {32, 128}};

    // One batch: the no-prefetch baseline plus every filter config.
    std::vector<RunSpec> specs;
    RunSpec base_spec =
        ctx.spec().cmp(true).workload(WorkloadKind::DB).build();
    specs.push_back(base_spec);
    for (Cfg c : cfgs)
        specs.push_back(RunSpec::Builder(base_spec)
                            .scheme(PrefetchScheme::Discontinuity)
                            .bypassL2()
                            .historySize(c.history)
                            .queueSize(c.queue)
                            .build());
    std::vector<SimResults> results = ctx.run(specs);
    const SimResults &base = results[0];

    Table t("Ablation: filter history depth / queue capacity "
            "(DB, 4-way CMP, discontinuity + bypass)");
    t.header({"history", "queue", "tag probes/1k instr",
              "probe hit rate", "filtered/1k", "accuracy",
              "speedup"});

    std::size_t next = 1;
    for (Cfg c : cfgs) {
        const SimResults &r = results[next++];
        double per_k =
            1000.0 / static_cast<double>(r.instructions);
        t.row({std::to_string(c.history), std::to_string(c.queue),
               Table::num(static_cast<double>(r.pfTagProbes) * per_k,
                          2),
               Table::pct(r.pfTagProbes
                              ? static_cast<double>(
                                    r.pfTagProbeHits) /
                                    static_cast<double>(
                                        r.pfTagProbes)
                              : 0.0,
                          1),
               Table::num(static_cast<double>(r.pfFiltered) * per_k,
                          2),
               Table::pct(r.pfAccuracy(), 1),
               Table::num(speedup(base, r), 3) + "X"});
    }
    ctx.emit(t);
    return ctx.exitCode();
}
