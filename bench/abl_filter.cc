/**
 * @file
 * Ablation: the Section 4.1 filtering machinery — recent-demand-fetch
 * history depth and prefetch queue capacity. The paper argues that
 * filtering removes most useless tag probes ("up to 90% of prefetch
 * tag accesses issue") with minor performance impact; this sweep
 * regenerates that claim.
 */

#include "bench/bench_common.hh"

using namespace ipref;

namespace
{

SimResults
runFiltered(const BenchContext &ctx, unsigned history,
            unsigned queue)
{
    RunSpec spec;
    spec.cmp = true;
    spec.workloads = {WorkloadKind::DB};
    spec.scheme = PrefetchScheme::Discontinuity;
    spec.bypassL2 = true;
    spec.instrScale = ctx.scale;
    SystemConfig cfg = makeConfig(spec);
    cfg.prefetch.historySize = history;
    cfg.prefetch.queueSize = queue;
    System system(cfg);
    return system.run();
}

} // namespace

int
main(int argc, char **argv)
{
    BenchContext ctx(argc, argv, 0.4);

    RunSpec base_spec;
    base_spec.cmp = true;
    base_spec.workloads = {WorkloadKind::DB};
    base_spec.instrScale = ctx.scale;
    SimResults base = runSpec(base_spec);

    Table t("Ablation: filter history depth / queue capacity "
            "(DB, 4-way CMP, discontinuity + bypass)");
    t.header({"history", "queue", "tag probes/1k instr",
              "probe hit rate", "filtered/1k", "accuracy",
              "speedup"});

    struct Cfg
    {
        unsigned history;
        unsigned queue;
    };
    for (Cfg c : {Cfg{0, 32}, Cfg{8, 32}, Cfg{32, 32}, Cfg{128, 32},
                  Cfg{32, 8}, Cfg{32, 64}, Cfg{32, 128}}) {
        SimResults r = runFiltered(ctx, c.history, c.queue);
        double per_k =
            1000.0 / static_cast<double>(r.instructions);
        t.row({std::to_string(c.history), std::to_string(c.queue),
               Table::num(static_cast<double>(r.pfTagProbes) * per_k,
                          2),
               Table::pct(r.pfTagProbes
                              ? static_cast<double>(
                                    r.pfTagProbeHits) /
                                    static_cast<double>(
                                        r.pfTagProbes)
                              : 0.0,
                          1),
               Table::num(static_cast<double>(r.pfFiltered) * per_k,
                          2),
               Table::pct(r.pfAccuracy(), 1),
               Table::num(speedup(base, r), 3) + "X"});
    }
    ctx.emit(t);
    return 0;
}
