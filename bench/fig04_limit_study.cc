/**
 * @file
 * Figure 4: performance improvement achievable by *eliminating*
 * instruction misses of selected categories (sequential / branch /
 * function-call) — the limit study motivating the prefetcher design.
 * (i) single core, (ii) 4-way CMP.
 */

#include "bench/bench_common.hh"

using namespace ipref;

namespace
{

using Eliminate =
    std::array<bool, static_cast<std::size_t>(MissGroup::NumGroups)>;

Eliminate
groups(bool seq, bool branch, bool func)
{
    Eliminate e{};
    e[static_cast<std::size_t>(MissGroup::Sequential)] = seq;
    e[static_cast<std::size_t>(MissGroup::Branch)] = branch;
    e[static_cast<std::size_t>(MissGroup::Function)] = func;
    // Traps are negligible (paper §3.2); fold them into Function for
    // the "all" configuration only.
    e[static_cast<std::size_t>(MissGroup::Trap)] =
        seq && branch && func;
    return e;
}

void
limitTable(const BenchContext &ctx, const char *title, bool cmp,
           bool include_mix)
{
    const std::vector<std::pair<const char *, Eliminate>> series = {
        {"Sequential only", groups(true, false, false)},
        {"Branch only", groups(false, true, false)},
        {"Function only", groups(false, false, true)},
        {"Sequential + Branch", groups(true, true, false)},
        {"Sequential + Function", groups(true, false, true)},
        {"Seq + Branch + Function", groups(true, true, true)},
    };

    const auto sets = figureWorkloads(include_mix);

    // One batch: baselines first, then the series grid (row-major).
    std::vector<RunSpec> specs;
    for (const auto &ws : sets)
        specs.push_back(
            ctx.spec().cmp(cmp).workloads(ws.kinds).build());
    for (const auto &[label, eliminate] : series) {
        (void)label;
        for (const auto &ws : sets)
            specs.push_back(ctx.spec()
                                .cmp(cmp)
                                .workloads(ws.kinds)
                                .eliminate(eliminate)
                                .build());
    }
    std::vector<SimResults> results = ctx.run(specs);

    Table t(title);
    std::vector<std::string> header = {"Eliminated misses"};
    for (const auto &ws : sets)
        header.push_back(ws.label);
    t.header(header);

    std::size_t next = sets.size();
    for (const auto &[label, eliminate] : series) {
        (void)eliminate;
        std::vector<std::string> row = {label};
        for (std::size_t wi = 0; wi < sets.size(); ++wi) {
            row.push_back(
                Table::num(speedup(results[wi], results[next++]), 3) +
                "X");
        }
        t.row(row);
    }
    ctx.emit(t);
}

} // namespace

int
main(int argc, char **argv)
{
    BenchContext ctx(argc, argv, 0.3);
    limitTable(ctx,
               "Figure 4(i): speedup from eliminating misses "
               "(single core)",
               false, false);
    limitTable(ctx,
               "Figure 4(ii): speedup from eliminating misses "
               "(4-way CMP)",
               true, true);
    return ctx.exitCode();
}
