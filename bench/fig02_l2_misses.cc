/**
 * @file
 * Figure 2: L2 cache instruction miss rates (% per retired
 * instruction) for a single-core processor and a 4-way CMP as the L2
 * capacity varies over 1/2/4 MB (4-way, 64B lines).
 */

#include "bench/bench_common.hh"

using namespace ipref;

int
main(int argc, char **argv)
{
    BenchContext ctx(argc, argv, 0.6);

    const auto sets = figureWorkloads(true);

    // Submit the whole capacity x configuration grid, then collect
    // results in input order.
    std::vector<RunSpec> specs;
    for (std::uint64_t mb : {1, 2, 4}) {
        for (bool cmp : {false, true}) {
            for (const auto &ws : sets)
                specs.push_back(ctx.spec()
                                    .cmp(cmp)
                                    .workloads(ws.kinds)
                                    .functional()
                                    .l2Bytes(mb << 20)
                                    .build());
        }
    }
    std::vector<SimResults> results = ctx.run(specs);

    Table t("Figure 2: L2 instruction miss rate (% per instruction)");
    std::vector<std::string> header = {"Configuration"};
    for (const auto &ws : sets)
        header.push_back(ws.label);
    t.header(header);

    std::size_t next = 0;
    for (std::uint64_t mb : {1, 2, 4}) {
        for (bool cmp : {false, true}) {
            std::vector<std::string> row = {
                std::to_string(mb) + "MB " +
                (cmp ? "4-way CMP" : "single core")};
            for (std::size_t wi = 0; wi < sets.size(); ++wi)
                row.push_back(
                    Table::pct(results[next++].l2iMissPerInstr(), 3));
            t.row(row);
        }
    }
    ctx.emit(t);
    return ctx.exitCode();
}
