/**
 * @file
 * Figure 9: (i) prefetch accuracy of each scheme on the 4-way CMP,
 * and (ii) the performance of the next-2-line discontinuity
 * prefetcher ("discont 2NL") — trading timeliness for accuracy —
 * against the other schemes (with L2-bypass, as in Figure 8).
 */

#include "bench/bench_common.hh"

using namespace ipref;

namespace
{

struct SchemeSpec
{
    std::string label;
    PrefetchScheme scheme;
    unsigned degree;
};

const std::vector<SchemeSpec> &
schemesWith2NL()
{
    static const std::vector<SchemeSpec> schemes = {
        {"next-line (on miss)", PrefetchScheme::NextLineOnMiss, 1},
        {"next-line (tagged)", PrefetchScheme::NextLineTagged, 1},
        {"next-4-lines (tagged)", PrefetchScheme::NextNLineTagged, 4},
        {"discontinuity", PrefetchScheme::Discontinuity, 4},
        {"discont (2NL)", PrefetchScheme::Discontinuity, 2},
    };
    return schemes;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchContext ctx(argc, argv, 0.8);

    const auto sets = figureWorkloads(true);

    // One batch: baselines first, then the scheme grid (row-major).
    std::vector<RunSpec> specs;
    for (const auto &ws : sets)
        specs.push_back(
            ctx.spec().cmp(true).workloads(ws.kinds).build());
    for (const auto &ss : schemesWith2NL()) {
        for (const auto &ws : sets)
            specs.push_back(ctx.spec()
                                .cmp(true)
                                .workloads(ws.kinds)
                                .scheme(ss.scheme)
                                .degree(ss.degree)
                                .bypassL2()
                                .build());
    }
    std::vector<SimResults> results = ctx.run(specs);

    std::vector<std::string> header = {"Scheme"};
    for (const auto &ws : sets)
        header.push_back(ws.label);

    Table acc("Figure 9(i): prefetch accuracy (4-way CMP)");
    Table perf("Figure 9(ii): speedup incl. discont (2NL) "
               "(4-way CMP, with bypass)");
    acc.header(header);
    perf.header(header);

    std::size_t next = sets.size();
    for (const auto &ss : schemesWith2NL()) {
        std::vector<std::string> arow = {ss.label};
        std::vector<std::string> prow = {ss.label};
        for (std::size_t wi = 0; wi < sets.size(); ++wi) {
            const SimResults &r = results[next++];
            arow.push_back(Table::pct(r.pfAccuracy(), 1));
            prow.push_back(
                Table::num(speedup(results[wi], r), 3) + "X");
        }
        acc.row(arow);
        perf.row(prow);
    }
    ctx.emit(acc);
    ctx.emit(perf);
    return ctx.exitCode();
}
