/**
 * @file
 * Ablation: tag-probe filtering vs the confidence filter of [15].
 *
 * The paper (Section 2.4) describes the confidence alternative as a
 * way to avoid duplicating the I-cache tags entirely; this bench
 * compares tag-port pressure, accuracy and performance of the two
 * approaches on the discontinuity prefetcher.
 */

#include "bench/bench_common.hh"

using namespace ipref;

int
main(int argc, char **argv)
{
    BenchContext ctx(argc, argv, 0.4);

    Table t("Ablation: tag probing vs confidence filter "
            "(discontinuity + bypass, 4-way CMP)");
    t.header({"Workload", "mode", "tag probes/1k", "suppressed/1k",
              "issued/1k", "coverage", "accuracy", "speedup"});

    for (WorkloadKind k : {WorkloadKind::DB, WorkloadKind::JAPP}) {
        RunSpec base_spec;
        base_spec.cmp = true;
        base_spec.workloads = {k};
        base_spec.instrScale = ctx.scale;
        SimResults base = runSpec(base_spec);

        for (bool confidence : {false, true}) {
            RunSpec spec = base_spec;
            spec.scheme = PrefetchScheme::Discontinuity;
            spec.bypassL2 = true;
            SystemConfig cfg = makeConfig(spec);
            cfg.prefetch.useConfidenceFilter = confidence;
            System system(cfg);
            SimResults r = system.run();
            double per_k =
                1000.0 / static_cast<double>(r.instructions);
            std::uint64_t suppressed =
                r.pfCandidates - r.pfFiltered - r.pfIssued;
            t.row({workloadName(k),
                   confidence ? "confidence [15]" : "tag probe",
                   Table::num(static_cast<double>(r.pfTagProbes) *
                                  per_k,
                              2),
                   Table::num(static_cast<double>(suppressed) *
                                  per_k,
                              2),
                   Table::num(static_cast<double>(r.pfIssued) *
                                  per_k,
                              2),
                   Table::pct(r.l1iCoverage(), 1),
                   Table::pct(r.pfAccuracy(), 1),
                   Table::num(speedup(base, r), 3) + "X"});
        }
    }
    ctx.emit(t);
    return 0;
}
