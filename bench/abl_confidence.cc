/**
 * @file
 * Ablation: tag-probe filtering vs the confidence filter of [15].
 *
 * The paper (Section 2.4) describes the confidence alternative as a
 * way to avoid duplicating the I-cache tags entirely; this bench
 * compares tag-port pressure, accuracy and performance of the two
 * approaches on the discontinuity prefetcher.
 */

#include "bench/bench_common.hh"

using namespace ipref;

int
main(int argc, char **argv)
{
    BenchContext ctx(argc, argv, 0.4);

    const std::vector<WorkloadKind> kinds = {WorkloadKind::DB,
                                             WorkloadKind::JAPP};

    // One batch: per workload, the no-prefetch baseline then the
    // tag-probe and confidence variants.
    std::vector<RunSpec> specs;
    for (WorkloadKind k : kinds) {
        RunSpec base_spec =
            ctx.spec().cmp(true).workload(k).build();
        specs.push_back(base_spec);
        for (bool confidence : {false, true})
            specs.push_back(RunSpec::Builder(base_spec)
                                .scheme(PrefetchScheme::Discontinuity)
                                .bypassL2()
                                .confidenceFilter(confidence)
                                .build());
    }
    std::vector<SimResults> results = ctx.run(specs);

    Table t("Ablation: tag probing vs confidence filter "
            "(discontinuity + bypass, 4-way CMP)");
    t.header({"Workload", "mode", "tag probes/1k", "suppressed/1k",
              "issued/1k", "coverage", "accuracy", "speedup"});

    std::size_t next = 0;
    for (WorkloadKind k : kinds) {
        const SimResults &base = results[next++];
        for (bool confidence : {false, true}) {
            const SimResults &r = results[next++];
            double per_k =
                1000.0 / static_cast<double>(r.instructions);
            std::uint64_t suppressed =
                r.pfCandidates - r.pfFiltered - r.pfIssued;
            t.row({workloadName(k),
                   confidence ? "confidence [15]" : "tag probe",
                   Table::num(static_cast<double>(r.pfTagProbes) *
                                  per_k,
                              2),
                   Table::num(static_cast<double>(suppressed) *
                                  per_k,
                              2),
                   Table::num(static_cast<double>(r.pfIssued) *
                                  per_k,
                              2),
                   Table::pct(r.l1iCoverage(), 1),
                   Table::pct(r.pfAccuracy(), 1),
                   Table::num(speedup(base, r), 3) + "X"});
        }
    }
    ctx.emit(t);
    return ctx.exitCode();
}
