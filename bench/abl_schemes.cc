/**
 * @file
 * Ablation: related-work baselines beyond the paper's main four —
 * the lookahead-N scheme of [4] (prefetch only line L+N) and the
 * classic multi-target history ("target") prefetcher of [1,5] with
 * varying ways — compared against next-N-line and the discontinuity
 * prefetcher.
 */

#include "bench/bench_common.hh"

using namespace ipref;

int
main(int argc, char **argv)
{
    BenchContext ctx(argc, argv, 0.4);
    const std::vector<WorkloadKind> kinds = {WorkloadKind::DB,
                                             WorkloadKind::JAPP};

    struct Variant
    {
        std::string label;
        PrefetchScheme scheme;
        unsigned degree;
        unsigned ways;
    };
    const std::vector<Variant> variants = {
        {"next-4-lines (tagged)", PrefetchScheme::NextNLineTagged, 4,
         2},
        {"lookahead-4", PrefetchScheme::LookaheadN, 4, 2},
        {"target (1 way)", PrefetchScheme::TargetHistory, 1, 1},
        {"target (2 ways)", PrefetchScheme::TargetHistory, 1, 2},
        {"target (4 ways)", PrefetchScheme::TargetHistory, 1, 4},
        {"wrong-path", PrefetchScheme::WrongPath, 2, 2},
        {"call-graph [8]", PrefetchScheme::CallGraph, 2, 2},
        {"discontinuity", PrefetchScheme::Discontinuity, 4, 2},
    };

    // One batch: baselines first, then the variant grid (row-major).
    std::vector<RunSpec> specs;
    for (WorkloadKind k : kinds)
        specs.push_back(ctx.spec().cmp(true).workload(k).build());
    for (const auto &v : variants) {
        for (WorkloadKind k : kinds)
            specs.push_back(ctx.spec()
                                .cmp(true)
                                .workload(k)
                                .scheme(v.scheme)
                                .degree(v.degree)
                                .targetWays(v.ways)
                                .bypassL2()
                                .build());
    }
    std::vector<SimResults> results = ctx.run(specs);

    Table t("Ablation: related-work baselines (4-way CMP, with "
            "bypass)");
    std::vector<std::string> header = {"Scheme"};
    for (WorkloadKind k : kinds)
        for (const char *m : {"miss(norm)", "acc", "speedup"})
            header.push_back(std::string(workloadName(k)) + " " + m);
    t.header(header);

    std::size_t next = kinds.size();
    for (const auto &v : variants) {
        std::vector<std::string> row = {v.label};
        for (std::size_t wi = 0; wi < kinds.size(); ++wi) {
            const SimResults &r = results[next++];
            double base = results[wi].l1iMissPerInstr();
            row.push_back(Table::num(
                base > 0 ? r.l1iMissPerInstr() / base : 0.0, 3));
            row.push_back(Table::pct(r.pfAccuracy(), 1));
            row.push_back(
                Table::num(speedup(results[wi], r), 3) + "X");
        }
        t.row(row);
    }
    ctx.emit(t);
    return ctx.exitCode();
}
