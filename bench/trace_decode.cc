/**
 * @file
 * Trace-decode microbenchmark: records/second sustained by each trace
 * reader path, tracking the v3 zero-copy decoder against the v2
 * stdio reader it replaces.
 *
 * A synthetic DB workload stream is written once in both formats to a
 * scratch directory, then each file is drained through
 * openTraceReader() with large nextBatch() reads. Best-of---reps
 * throughput and the v3/v2 speedup land in a JSON summary (default
 * BENCH_trace_decode.json); the PR-5 acceptance floor is 3x.
 *
 * Usage:
 *   trace_decode [--records N] [--reps N] [--dir PATH] [--out FILE]
 *                [--csv]
 */

#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "trace/trace_file.hh"
#include "trace/trace_v3.hh"
#include "util/logging.hh"
#include "util/options.hh"
#include "util/table.hh"
#include "workload/presets.hh"

using namespace ipref;

namespace
{

struct Sample
{
    std::string label;
    unsigned version = 0;
    double mrecPerSec = 0.0; //!< million records / second
    double seconds = 0.0;
    std::uint64_t records = 0;
    std::uint64_t fileBytes = 0;
};

/** Write @p n records of a DB workload stream as @p format. */
std::uint64_t
writeTrace(const std::string &path, TraceFormat format,
           std::uint64_t n)
{
    auto wl = makeWorkload(WorkloadKind::DB, 0);
    TraceFileWriter writer(path, 0, format);
    InstrRecord rec;
    for (std::uint64_t i = 0; i < n && wl->next(rec); ++i)
        writer.write(rec);
    writer.close();
    return writer.count();
}

std::uint64_t
fileSize(const std::string &path)
{
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    return in ? static_cast<std::uint64_t>(in.tellg()) : 0;
}

/** Drain @p path once; returns records decoded, sets @p seconds. */
std::uint64_t
drainOnce(const std::string &path, double &seconds, unsigned &version)
{
    auto reader = openTraceReader(path);
    version = reader->version();
    std::vector<InstrRecord> buf(8192);
    std::uint64_t total = 0;
    auto t0 = std::chrono::steady_clock::now();
    for (;;) {
        std::size_t got = reader->nextBatch(
            std::span<InstrRecord>(buf.data(), buf.size()));
        total += got;
        if (got < buf.size())
            break;
    }
    seconds = std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
    return total;
}

Sample
measure(const std::string &label, const std::string &path,
        unsigned reps)
{
    Sample best;
    best.label = label;
    best.fileBytes = fileSize(path);
    for (unsigned rep = 0; rep < reps; ++rep) {
        double seconds = 0.0;
        unsigned version = 0;
        std::uint64_t records = drainOnce(path, seconds, version);
        double mrps = seconds > 0
                          ? static_cast<double>(records) / seconds / 1e6
                          : 0.0;
        if (mrps > best.mrecPerSec) {
            best.mrecPerSec = mrps;
            best.seconds = seconds;
            best.records = records;
            best.version = version;
        }
    }
    return best;
}

} // namespace

int
main(int argc, char **argv)
try {
    Options opts(argc, argv);
    std::uint64_t records = opts.getUint("records", 2'000'000);
    unsigned reps = static_cast<unsigned>(opts.getUint("reps", 5));
    std::string dir = opts.getString("dir", "/tmp");
    std::string out_path =
        opts.getString("out", "BENCH_trace_decode.json");

    std::string v2_path = dir + "/bench_decode_v2.trc";
    std::string v3_path = dir + "/bench_decode_v3.trc";
    records = writeTrace(v2_path, TraceFormat::V2, records);
    writeTrace(v3_path, TraceFormat::V3, records);

    std::vector<Sample> samples = {
        measure("v2-stdio", v2_path, reps),
        measure("v3-mmap", v3_path, reps),
    };
    double speedup = samples[0].mrecPerSec > 0
                         ? samples[1].mrecPerSec / samples[0].mrecPerSec
                         : 0.0;

    Table t("Trace decode throughput (" + std::to_string(records) +
            " records, best of " + std::to_string(reps) + ")");
    t.header({"Reader", "Mrec/s", "seconds", "file MB", "B/record"});
    for (const Sample &s : samples)
        t.row({s.label, Table::num(s.mrecPerSec, 2),
               Table::num(s.seconds, 4),
               Table::num(static_cast<double>(s.fileBytes) / 1e6, 2),
               Table::num(static_cast<double>(s.fileBytes) /
                              static_cast<double>(
                                  s.records ? s.records : 1),
                          2)});
    if (opts.getBool("csv"))
        t.printCsv(std::cout);
    else
        t.print(std::cout);
    std::cout << "\nv3 speedup over v2: " << speedup << "x\n";

    std::ofstream out(out_path);
    if (!out)
        ipref_fatal("cannot write decode report to '%s'",
                    out_path.c_str());
    out << "{\n  \"benchmark\": \"trace_decode\",\n"
        << "  \"records\": " << records << ",\n"
        << "  \"reps\": " << reps << ",\n"
        << "  \"speedup_v3_over_v2\": " << speedup
        << ",\n  \"readers\": [\n";
    for (std::size_t i = 0; i < samples.size(); ++i) {
        const Sample &s = samples[i];
        out << "    {\"reader\": \"" << s.label
            << "\", \"version\": " << s.version
            << ", \"mrec_per_sec\": " << s.mrecPerSec
            << ", \"seconds\": " << s.seconds
            << ", \"file_bytes\": " << s.fileBytes << "}"
            << (i + 1 < samples.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::cout << "decode report written to " << out_path << "\n";

    std::remove(v2_path.c_str());
    std::remove(v3_path.c_str());
    return 0;
} catch (const SimError &e) {
    std::cerr << "error (" << errorKindName(e.kind())
              << "): " << e.what() << "\n";
    return 1;
}
