/**
 * @file
 * google-benchmark micro-benchmarks of the core data structures:
 * cache access, predictor probe/allocate, prefetch queue operations,
 * branch predictor updates and workload-generation throughput.
 */

#include <benchmark/benchmark.h>

#include "cache/cache.hh"
#include "cpu/branch_predictor.hh"
#include "prefetch/discontinuity.hh"
#include "prefetch/prefetch_queue.hh"
#include "util/rng.hh"
#include "workload/presets.hh"

using namespace ipref;

namespace
{

void
BM_CacheAccessHit(benchmark::State &state)
{
    CacheParams p;
    p.sizeBytes = 32u << 10;
    SetAssocCache cache(p);
    for (Addr a = 0; a < (32u << 10); a += 64)
        cache.insert(0x10000000 + a, {});
    Rng rng(1);
    for (auto _ : state) {
        Addr a = 0x10000000 + rng.below(512) * 64;
        benchmark::DoNotOptimize(cache.access(a));
    }
}
BENCHMARK(BM_CacheAccessHit);

void
BM_CacheAccessMissAndInsert(benchmark::State &state)
{
    CacheParams p;
    p.sizeBytes = 32u << 10;
    SetAssocCache cache(p);
    Addr a = 0x10000000;
    for (auto _ : state) {
        if (!cache.access(a).hit)
            cache.insert(a, {});
        a += 64 * 17;
    }
}
BENCHMARK(BM_CacheAccessMissAndInsert);

void
BM_DiscontinuityLookup(benchmark::State &state)
{
    DiscontinuityPredictor pred(
        static_cast<unsigned>(state.range(0)), 64);
    Rng rng(2);
    for (int i = 0; i < state.range(0); ++i)
        pred.allocate(0x10000000 + rng.below(1u << 20) * 64,
                      0x20000000 + rng.below(1u << 20) * 64);
    for (auto _ : state) {
        Addr probe = 0x10000000 + rng.below(1u << 20) * 64;
        benchmark::DoNotOptimize(pred.lookup(probe));
    }
}
BENCHMARK(BM_DiscontinuityLookup)->Arg(256)->Arg(8192);

void
BM_DiscontinuityAllocate(benchmark::State &state)
{
    DiscontinuityPredictor pred(8192, 64);
    Rng rng(3);
    for (auto _ : state) {
        pred.allocate(0x10000000 + rng.below(1u << 20) * 64,
                      0x20000000 + rng.below(1u << 20) * 64);
    }
}
BENCHMARK(BM_DiscontinuityAllocate);

void
BM_PrefetchQueueChurn(benchmark::State &state)
{
    PrefetchQueue q(32);
    Rng rng(4);
    for (auto _ : state) {
        PrefetchCandidate c;
        c.lineAddr = rng.below(4096) * 64;
        q.push(c);
        if (rng.chance(0.5))
            benchmark::DoNotOptimize(q.popForIssue());
        if (rng.chance(0.1))
            q.demandFetched(rng.below(4096) * 64);
    }
}
BENCHMARK(BM_PrefetchQueueChurn);

void
BM_GshareUpdate(benchmark::State &state)
{
    GsharePredictor g(64u << 10);
    Rng rng(5);
    for (auto _ : state) {
        Addr pc = 0x10000000 + rng.below(4096) * 4;
        g.update(pc, rng.chance(0.6));
    }
}
BENCHMARK(BM_GshareUpdate);

void
BM_ZipfSample(benchmark::State &state)
{
    ZipfSampler zipf(262144, 1.3);
    Rng rng(6);
    for (auto _ : state)
        benchmark::DoNotOptimize(zipf.sample(rng));
}
BENCHMARK(BM_ZipfSample);

void
BM_WorkloadGeneration(benchmark::State &state)
{
    auto wl = makeWorkload(WorkloadKind::WEB, 0);
    InstrRecord rec;
    for (auto _ : state) {
        wl->next(rec);
        benchmark::DoNotOptimize(rec);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WorkloadGeneration);

} // namespace

BENCHMARK_MAIN();
