
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_sim_properties.cc" "tests/CMakeFiles/test_sim_properties.dir/test_sim_properties.cc.o" "gcc" "tests/CMakeFiles/test_sim_properties.dir/test_sim_properties.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ipref_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ipref_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/ipref_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/prefetch/CMakeFiles/ipref_prefetch.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/ipref_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/ipref_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/memory/CMakeFiles/ipref_memory.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ipref_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
