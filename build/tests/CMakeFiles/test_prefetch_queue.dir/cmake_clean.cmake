file(REMOVE_RECURSE
  "CMakeFiles/test_prefetch_queue.dir/test_prefetch_queue.cc.o"
  "CMakeFiles/test_prefetch_queue.dir/test_prefetch_queue.cc.o.d"
  "test_prefetch_queue"
  "test_prefetch_queue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_prefetch_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
