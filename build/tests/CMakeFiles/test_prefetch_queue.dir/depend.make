# Empty dependencies file for test_prefetch_queue.
# This may be replaced when dependencies are built.
