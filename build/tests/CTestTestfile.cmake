# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_util "/root/repo/build/tests/test_util")
set_tests_properties(test_util PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;20;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_trace "/root/repo/build/tests/test_trace")
set_tests_properties(test_trace PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;20;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_workload "/root/repo/build/tests/test_workload")
set_tests_properties(test_workload PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;20;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_cache "/root/repo/build/tests/test_cache")
set_tests_properties(test_cache PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;20;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_memory "/root/repo/build/tests/test_memory")
set_tests_properties(test_memory PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;20;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_hierarchy "/root/repo/build/tests/test_hierarchy")
set_tests_properties(test_hierarchy PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;20;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_cpu "/root/repo/build/tests/test_cpu")
set_tests_properties(test_cpu PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;20;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_prefetchers "/root/repo/build/tests/test_prefetchers")
set_tests_properties(test_prefetchers PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;20;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_prefetch_queue "/root/repo/build/tests/test_prefetch_queue")
set_tests_properties(test_prefetch_queue PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;20;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_engine "/root/repo/build/tests/test_engine")
set_tests_properties(test_engine PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;20;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_system "/root/repo/build/tests/test_system")
set_tests_properties(test_system PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;20;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_calibration "/root/repo/build/tests/test_calibration")
set_tests_properties(test_calibration PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;20;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_extensions "/root/repo/build/tests/test_extensions")
set_tests_properties(test_extensions PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;20;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_sim_properties "/root/repo/build/tests/test_sim_properties")
set_tests_properties(test_sim_properties PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;20;add_test;/root/repo/tests/CMakeLists.txt;0;")
