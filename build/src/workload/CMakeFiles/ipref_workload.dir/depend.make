# Empty dependencies file for ipref_workload.
# This may be replaced when dependencies are built.
