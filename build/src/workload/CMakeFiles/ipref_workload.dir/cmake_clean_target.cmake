file(REMOVE_RECURSE
  "libipref_workload.a"
)
