# Empty compiler generated dependencies file for ipref_workload.
# This may be replaced when dependencies are built.
