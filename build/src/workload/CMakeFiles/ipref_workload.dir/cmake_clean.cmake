file(REMOVE_RECURSE
  "CMakeFiles/ipref_workload.dir/cfg.cc.o"
  "CMakeFiles/ipref_workload.dir/cfg.cc.o.d"
  "CMakeFiles/ipref_workload.dir/presets.cc.o"
  "CMakeFiles/ipref_workload.dir/presets.cc.o.d"
  "CMakeFiles/ipref_workload.dir/workload.cc.o"
  "CMakeFiles/ipref_workload.dir/workload.cc.o.d"
  "libipref_workload.a"
  "libipref_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipref_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
