
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/cfg.cc" "src/workload/CMakeFiles/ipref_workload.dir/cfg.cc.o" "gcc" "src/workload/CMakeFiles/ipref_workload.dir/cfg.cc.o.d"
  "/root/repo/src/workload/presets.cc" "src/workload/CMakeFiles/ipref_workload.dir/presets.cc.o" "gcc" "src/workload/CMakeFiles/ipref_workload.dir/presets.cc.o.d"
  "/root/repo/src/workload/workload.cc" "src/workload/CMakeFiles/ipref_workload.dir/workload.cc.o" "gcc" "src/workload/CMakeFiles/ipref_workload.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/ipref_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ipref_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
