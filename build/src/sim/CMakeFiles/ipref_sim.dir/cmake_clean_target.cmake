file(REMOVE_RECURSE
  "libipref_sim.a"
)
