# Empty compiler generated dependencies file for ipref_sim.
# This may be replaced when dependencies are built.
