file(REMOVE_RECURSE
  "CMakeFiles/ipref_sim.dir/experiment.cc.o"
  "CMakeFiles/ipref_sim.dir/experiment.cc.o.d"
  "CMakeFiles/ipref_sim.dir/system.cc.o"
  "CMakeFiles/ipref_sim.dir/system.cc.o.d"
  "libipref_sim.a"
  "libipref_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipref_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
