# Empty dependencies file for ipref_cache.
# This may be replaced when dependencies are built.
