file(REMOVE_RECURSE
  "CMakeFiles/ipref_cache.dir/cache.cc.o"
  "CMakeFiles/ipref_cache.dir/cache.cc.o.d"
  "CMakeFiles/ipref_cache.dir/hierarchy.cc.o"
  "CMakeFiles/ipref_cache.dir/hierarchy.cc.o.d"
  "libipref_cache.a"
  "libipref_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipref_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
