file(REMOVE_RECURSE
  "libipref_cache.a"
)
