# Empty compiler generated dependencies file for ipref_trace.
# This may be replaced when dependencies are built.
