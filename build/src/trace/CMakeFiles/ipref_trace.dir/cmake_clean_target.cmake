file(REMOVE_RECURSE
  "libipref_trace.a"
)
