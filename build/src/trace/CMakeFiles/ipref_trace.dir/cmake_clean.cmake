file(REMOVE_RECURSE
  "CMakeFiles/ipref_trace.dir/record.cc.o"
  "CMakeFiles/ipref_trace.dir/record.cc.o.d"
  "CMakeFiles/ipref_trace.dir/trace_file.cc.o"
  "CMakeFiles/ipref_trace.dir/trace_file.cc.o.d"
  "CMakeFiles/ipref_trace.dir/trace_stats.cc.o"
  "CMakeFiles/ipref_trace.dir/trace_stats.cc.o.d"
  "libipref_trace.a"
  "libipref_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipref_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
