# Empty dependencies file for ipref_cpu.
# This may be replaced when dependencies are built.
