file(REMOVE_RECURSE
  "libipref_cpu.a"
)
