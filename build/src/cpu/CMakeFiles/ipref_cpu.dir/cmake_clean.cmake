file(REMOVE_RECURSE
  "CMakeFiles/ipref_cpu.dir/branch_predictor.cc.o"
  "CMakeFiles/ipref_cpu.dir/branch_predictor.cc.o.d"
  "CMakeFiles/ipref_cpu.dir/core.cc.o"
  "CMakeFiles/ipref_cpu.dir/core.cc.o.d"
  "CMakeFiles/ipref_cpu.dir/tlb.cc.o"
  "CMakeFiles/ipref_cpu.dir/tlb.cc.o.d"
  "libipref_cpu.a"
  "libipref_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipref_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
