# Empty dependencies file for ipref_memory.
# This may be replaced when dependencies are built.
