file(REMOVE_RECURSE
  "CMakeFiles/ipref_memory.dir/memory.cc.o"
  "CMakeFiles/ipref_memory.dir/memory.cc.o.d"
  "libipref_memory.a"
  "libipref_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipref_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
