file(REMOVE_RECURSE
  "libipref_memory.a"
)
