file(REMOVE_RECURSE
  "libipref_prefetch.a"
)
