file(REMOVE_RECURSE
  "CMakeFiles/ipref_prefetch.dir/call_graph.cc.o"
  "CMakeFiles/ipref_prefetch.dir/call_graph.cc.o.d"
  "CMakeFiles/ipref_prefetch.dir/confidence_filter.cc.o"
  "CMakeFiles/ipref_prefetch.dir/confidence_filter.cc.o.d"
  "CMakeFiles/ipref_prefetch.dir/discontinuity.cc.o"
  "CMakeFiles/ipref_prefetch.dir/discontinuity.cc.o.d"
  "CMakeFiles/ipref_prefetch.dir/engine.cc.o"
  "CMakeFiles/ipref_prefetch.dir/engine.cc.o.d"
  "CMakeFiles/ipref_prefetch.dir/next_line.cc.o"
  "CMakeFiles/ipref_prefetch.dir/next_line.cc.o.d"
  "CMakeFiles/ipref_prefetch.dir/prefetch_queue.cc.o"
  "CMakeFiles/ipref_prefetch.dir/prefetch_queue.cc.o.d"
  "CMakeFiles/ipref_prefetch.dir/prefetcher.cc.o"
  "CMakeFiles/ipref_prefetch.dir/prefetcher.cc.o.d"
  "CMakeFiles/ipref_prefetch.dir/target_prefetcher.cc.o"
  "CMakeFiles/ipref_prefetch.dir/target_prefetcher.cc.o.d"
  "CMakeFiles/ipref_prefetch.dir/wrong_path.cc.o"
  "CMakeFiles/ipref_prefetch.dir/wrong_path.cc.o.d"
  "libipref_prefetch.a"
  "libipref_prefetch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipref_prefetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
