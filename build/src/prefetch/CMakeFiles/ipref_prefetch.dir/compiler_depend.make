# Empty compiler generated dependencies file for ipref_prefetch.
# This may be replaced when dependencies are built.
