
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/prefetch/call_graph.cc" "src/prefetch/CMakeFiles/ipref_prefetch.dir/call_graph.cc.o" "gcc" "src/prefetch/CMakeFiles/ipref_prefetch.dir/call_graph.cc.o.d"
  "/root/repo/src/prefetch/confidence_filter.cc" "src/prefetch/CMakeFiles/ipref_prefetch.dir/confidence_filter.cc.o" "gcc" "src/prefetch/CMakeFiles/ipref_prefetch.dir/confidence_filter.cc.o.d"
  "/root/repo/src/prefetch/discontinuity.cc" "src/prefetch/CMakeFiles/ipref_prefetch.dir/discontinuity.cc.o" "gcc" "src/prefetch/CMakeFiles/ipref_prefetch.dir/discontinuity.cc.o.d"
  "/root/repo/src/prefetch/engine.cc" "src/prefetch/CMakeFiles/ipref_prefetch.dir/engine.cc.o" "gcc" "src/prefetch/CMakeFiles/ipref_prefetch.dir/engine.cc.o.d"
  "/root/repo/src/prefetch/next_line.cc" "src/prefetch/CMakeFiles/ipref_prefetch.dir/next_line.cc.o" "gcc" "src/prefetch/CMakeFiles/ipref_prefetch.dir/next_line.cc.o.d"
  "/root/repo/src/prefetch/prefetch_queue.cc" "src/prefetch/CMakeFiles/ipref_prefetch.dir/prefetch_queue.cc.o" "gcc" "src/prefetch/CMakeFiles/ipref_prefetch.dir/prefetch_queue.cc.o.d"
  "/root/repo/src/prefetch/prefetcher.cc" "src/prefetch/CMakeFiles/ipref_prefetch.dir/prefetcher.cc.o" "gcc" "src/prefetch/CMakeFiles/ipref_prefetch.dir/prefetcher.cc.o.d"
  "/root/repo/src/prefetch/target_prefetcher.cc" "src/prefetch/CMakeFiles/ipref_prefetch.dir/target_prefetcher.cc.o" "gcc" "src/prefetch/CMakeFiles/ipref_prefetch.dir/target_prefetcher.cc.o.d"
  "/root/repo/src/prefetch/wrong_path.cc" "src/prefetch/CMakeFiles/ipref_prefetch.dir/wrong_path.cc.o" "gcc" "src/prefetch/CMakeFiles/ipref_prefetch.dir/wrong_path.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cache/CMakeFiles/ipref_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/ipref_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ipref_util.dir/DependInfo.cmake"
  "/root/repo/build/src/memory/CMakeFiles/ipref_memory.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
