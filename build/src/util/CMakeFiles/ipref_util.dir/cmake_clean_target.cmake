file(REMOVE_RECURSE
  "libipref_util.a"
)
