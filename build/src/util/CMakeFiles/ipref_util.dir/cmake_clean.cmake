file(REMOVE_RECURSE
  "CMakeFiles/ipref_util.dir/histogram.cc.o"
  "CMakeFiles/ipref_util.dir/histogram.cc.o.d"
  "CMakeFiles/ipref_util.dir/logging.cc.o"
  "CMakeFiles/ipref_util.dir/logging.cc.o.d"
  "CMakeFiles/ipref_util.dir/options.cc.o"
  "CMakeFiles/ipref_util.dir/options.cc.o.d"
  "CMakeFiles/ipref_util.dir/rng.cc.o"
  "CMakeFiles/ipref_util.dir/rng.cc.o.d"
  "CMakeFiles/ipref_util.dir/stats.cc.o"
  "CMakeFiles/ipref_util.dir/stats.cc.o.d"
  "CMakeFiles/ipref_util.dir/table.cc.o"
  "CMakeFiles/ipref_util.dir/table.cc.o.d"
  "libipref_util.a"
  "libipref_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipref_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
