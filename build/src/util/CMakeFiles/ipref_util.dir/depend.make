# Empty dependencies file for ipref_util.
# This may be replaced when dependencies are built.
