# Empty compiler generated dependencies file for ipref_util.
# This may be replaced when dependencies are built.
