# Empty dependencies file for cmp_pollution.
# This may be replaced when dependencies are built.
