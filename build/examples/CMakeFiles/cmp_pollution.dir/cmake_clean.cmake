file(REMOVE_RECURSE
  "CMakeFiles/cmp_pollution.dir/cmp_pollution.cc.o"
  "CMakeFiles/cmp_pollution.dir/cmp_pollution.cc.o.d"
  "cmp_pollution"
  "cmp_pollution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmp_pollution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
