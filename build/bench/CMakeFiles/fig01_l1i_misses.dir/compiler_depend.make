# Empty compiler generated dependencies file for fig01_l1i_misses.
# This may be replaced when dependencies are built.
