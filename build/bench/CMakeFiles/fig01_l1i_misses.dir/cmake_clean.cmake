file(REMOVE_RECURSE
  "CMakeFiles/fig01_l1i_misses.dir/fig01_l1i_misses.cc.o"
  "CMakeFiles/fig01_l1i_misses.dir/fig01_l1i_misses.cc.o.d"
  "fig01_l1i_misses"
  "fig01_l1i_misses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_l1i_misses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
