file(REMOVE_RECURSE
  "CMakeFiles/fig06_prefetch_speedup.dir/fig06_prefetch_speedup.cc.o"
  "CMakeFiles/fig06_prefetch_speedup.dir/fig06_prefetch_speedup.cc.o.d"
  "fig06_prefetch_speedup"
  "fig06_prefetch_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_prefetch_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
