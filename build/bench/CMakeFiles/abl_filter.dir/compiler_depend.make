# Empty compiler generated dependencies file for abl_filter.
# This may be replaced when dependencies are built.
