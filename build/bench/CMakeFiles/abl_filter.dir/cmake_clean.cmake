file(REMOVE_RECURSE
  "CMakeFiles/abl_filter.dir/abl_filter.cc.o"
  "CMakeFiles/abl_filter.dir/abl_filter.cc.o.d"
  "abl_filter"
  "abl_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
