# Empty compiler generated dependencies file for fig07_l2_pollution.
# This may be replaced when dependencies are built.
