file(REMOVE_RECURSE
  "CMakeFiles/fig07_l2_pollution.dir/fig07_l2_pollution.cc.o"
  "CMakeFiles/fig07_l2_pollution.dir/fig07_l2_pollution.cc.o.d"
  "fig07_l2_pollution"
  "fig07_l2_pollution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_l2_pollution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
