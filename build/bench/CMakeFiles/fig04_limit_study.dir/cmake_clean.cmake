file(REMOVE_RECURSE
  "CMakeFiles/fig04_limit_study.dir/fig04_limit_study.cc.o"
  "CMakeFiles/fig04_limit_study.dir/fig04_limit_study.cc.o.d"
  "fig04_limit_study"
  "fig04_limit_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_limit_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
