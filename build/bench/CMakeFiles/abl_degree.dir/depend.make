# Empty dependencies file for abl_degree.
# This may be replaced when dependencies are built.
