file(REMOVE_RECURSE
  "CMakeFiles/abl_degree.dir/abl_degree.cc.o"
  "CMakeFiles/abl_degree.dir/abl_degree.cc.o.d"
  "abl_degree"
  "abl_degree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_degree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
