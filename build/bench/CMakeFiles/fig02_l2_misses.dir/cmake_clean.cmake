file(REMOVE_RECURSE
  "CMakeFiles/fig02_l2_misses.dir/fig02_l2_misses.cc.o"
  "CMakeFiles/fig02_l2_misses.dir/fig02_l2_misses.cc.o.d"
  "fig02_l2_misses"
  "fig02_l2_misses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_l2_misses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
