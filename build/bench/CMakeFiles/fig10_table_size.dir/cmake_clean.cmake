file(REMOVE_RECURSE
  "CMakeFiles/fig10_table_size.dir/fig10_table_size.cc.o"
  "CMakeFiles/fig10_table_size.dir/fig10_table_size.cc.o.d"
  "fig10_table_size"
  "fig10_table_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_table_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
