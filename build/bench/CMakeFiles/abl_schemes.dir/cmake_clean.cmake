file(REMOVE_RECURSE
  "CMakeFiles/abl_schemes.dir/abl_schemes.cc.o"
  "CMakeFiles/abl_schemes.dir/abl_schemes.cc.o.d"
  "abl_schemes"
  "abl_schemes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_schemes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
