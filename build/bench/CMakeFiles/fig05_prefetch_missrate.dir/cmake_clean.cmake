file(REMOVE_RECURSE
  "CMakeFiles/fig05_prefetch_missrate.dir/fig05_prefetch_missrate.cc.o"
  "CMakeFiles/fig05_prefetch_missrate.dir/fig05_prefetch_missrate.cc.o.d"
  "fig05_prefetch_missrate"
  "fig05_prefetch_missrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_prefetch_missrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
