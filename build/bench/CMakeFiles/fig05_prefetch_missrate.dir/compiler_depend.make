# Empty compiler generated dependencies file for fig05_prefetch_missrate.
# This may be replaced when dependencies are built.
