/**
 * @file
 * ipref_trace: inspect, verify and convert binary trace files.
 *
 * Usage:
 *   ipref_trace info IN                     print header + per-block
 *                                           stats (version, count,
 *                                           bytes/record)
 *   ipref_trace verify IN [--tolerant]      decode every record; exit
 *                                           0 iff the file is intact
 *                                           (tolerant: report salvage
 *                                           instead of failing)
 *   ipref_trace convert IN OUT [--format v2|v3] [--block N]
 *                  [--tolerant] [--no-data-addresses]
 *                                           re-encode IN as OUT
 *
 * convert defaults to v3, the columnar zero-copy format; converting a
 * v2 capture to v3 typically shrinks it ~8x and replays bit-identically
 * (the record stream is preserved exactly).
 */

#include <cinttypes>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "trace/trace_file.hh"
#include "trace/trace_v3.hh"
#include "util/options.hh"

using namespace ipref;

namespace
{

int
usage()
{
    std::cerr
        << "usage: ipref_trace info IN\n"
        << "       ipref_trace verify IN [--tolerant]\n"
        << "       ipref_trace convert IN OUT [--format v2|v3]\n"
        << "               [--block N] [--tolerant]"
        << " [--no-data-addresses]\n";
    return 2;
}

/** Drain @p reader, returning the records delivered. */
std::uint64_t
drain(TraceReader &reader)
{
    std::vector<InstrRecord> buf(8192);
    std::uint64_t total = 0;
    for (;;) {
        std::size_t got = reader.nextBatch(
            std::span<InstrRecord>(buf.data(), buf.size()));
        total += got;
        if (got < buf.size())
            return total;
    }
}

int
cmdInfo(const std::string &path)
{
    auto reader = openTraceReader(path, TraceReadMode::Tolerant);
    std::uint64_t delivered = drain(*reader);

    std::cout << "file:        " << path << "\n";
    std::cout << "version:     v" << reader->version() << "\n";
    std::cout << "records:     " << reader->count() << " (header), "
              << delivered << " decodable\n";
    if (auto *m = dynamic_cast<MappedTraceReader *>(reader.get())) {
        std::cout << "block:       " << m->blockRecords()
                  << " records\n";
        std::cout << "data column: "
                  << (m->hasDataAddresses() ? "yes" : "no") << "\n";
        std::cout << "size:        " << m->fileBytes() << " bytes";
        if (delivered > 0)
            std::printf(" (%.2f bytes/record vs %zu raw)",
                        static_cast<double>(m->fileBytes()) /
                            static_cast<double>(delivered),
                        traceRecordBytes);
        std::cout << "\n";
    }
    if (reader->corrupt())
        std::cout << "damage:      " << reader->corruptionDetail()
                  << "\n";
    return reader->corrupt() ? 1 : 0;
}

int
cmdVerify(const std::string &path, bool tolerant)
{
    auto reader = openTraceReader(path, tolerant
                                            ? TraceReadMode::Tolerant
                                            : TraceReadMode::Strict);
    std::uint64_t delivered = drain(*reader);
    if (reader->corrupt()) {
        std::cout << path << ": DAMAGED (salvaged " << delivered
                  << " of " << reader->count() << " records): "
                  << reader->corruptionDetail() << "\n";
        return 1;
    }
    if (delivered != reader->count()) {
        std::cout << path << ": short: decoded " << delivered
                  << " of " << reader->count()
                  << " records promised by the header\n";
        return 1;
    }
    std::cout << path << ": OK (v" << reader->version() << ", "
              << delivered << " records)\n";
    return 0;
}

int
cmdConvert(const std::string &in, const std::string &out,
           const Options &opts)
{
    std::string fmt = opts.getString("format", "v3");
    if (fmt != "v2" && fmt != "v3") {
        std::cerr << "unknown --format '" << fmt
                  << "' (valid: v2, v3)\n";
        return 2;
    }
    auto reader = openTraceReader(in, opts.getBool("tolerant")
                                          ? TraceReadMode::Tolerant
                                          : TraceReadMode::Strict);
    TraceFileWriter writer(
        out, static_cast<std::uint32_t>(opts.getUint("block", 0)),
        fmt == "v2" ? TraceFormat::V2 : TraceFormat::V3,
        !opts.getBool("no-data-addresses"));

    std::vector<InstrRecord> buf(8192);
    for (;;) {
        std::size_t got = reader->nextBatch(
            std::span<InstrRecord>(buf.data(), buf.size()));
        for (std::size_t i = 0; i < got; ++i)
            writer.write(buf[i]);
        if (got < buf.size())
            break;
    }
    writer.close();

    std::cout << "converted " << writer.count() << " records: " << in
              << " (v" << reader->version() << ") -> " << out << " ("
              << fmt << ")\n";
    if (reader->corrupt())
        std::cerr << "warning: input damaged, converted the salvaged "
                  << "prefix (" << reader->corruptionDetail()
                  << ")\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
try {
    if (argc < 3)
        return usage();
    std::string cmd = argv[1];

    // Note the parser treats "--flag OPERAND" as flag=OPERAND, so
    // boolean flags go after the file operands (or use --flag=1).
    Options opts(argc - 1, argv + 1);
    const std::vector<std::string> &pos = opts.positional();

    if (cmd == "info" && pos.size() == 1)
        return cmdInfo(pos[0]);
    if (cmd == "verify" && pos.size() == 1)
        return cmdVerify(pos[0], opts.getBool("tolerant"));
    if (cmd == "convert" && pos.size() == 2)
        return cmdConvert(pos[0], pos[1], opts);
    return usage();
} catch (const SimError &e) {
    std::cerr << "error (" << errorKindName(e.kind())
              << "): " << e.what() << "\n";
    return 1;
}
