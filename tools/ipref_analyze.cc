/**
 * @file
 * Offline trace analyzer: consume a simulator JSON-lines event trace
 * (--trace-events / --trace-out) and report what the front end was
 * doing — hot miss sites, mispredicting discontinuity edges, the
 * miss-class breakdown, per-origin prefetch accuracy and timeliness —
 * plus optional exports: an interval timeline CSV and a
 * Chrome-trace-format file loadable in Perfetto (ui.perfetto.dev).
 *
 * With --stats, the event-derived lifecycle is cross-checked against
 * the simulator's own counters (--stats-json report); any mismatch is
 * reported and the exit status is non-zero, which makes the tool a
 * consistency check for CI as well as an analysis aid.
 *
 * Usage:
 *   ipref_analyze --trace trace_events.jsonl [--stats report.json]
 *                 [--run N] [--top N] [--csv intervals.csv]
 *                 [--buckets N] [--chrome chrome_trace.json]
 */

#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>

#include "analysis/analyzer.hh"
#include "util/logging.hh"
#include "util/options.hh"

using namespace ipref;

namespace
{

void
printSummary(const TraceAnalysis &a, std::size_t topN)
{
    std::cout << "events: " << a.events << "  cycles: ["
              << a.firstCycle << ", " << a.lastCycle << "]\n";
    std::cout << "L1I: " << a.l1iHits << " hits, " << a.l1iMisses
              << " misses (" << a.l2iMisses << " reached memory)\n";

    std::uint64_t classified = 0;
    for (auto v : a.l1iMissByTransition)
        classified += v;
    if (classified > 0) {
        std::cout << "\nmiss-class breakdown (of " << classified
                  << " classified L1I misses):\n";
        for (std::size_t i = 0; i < a.l1iMissByTransition.size();
             ++i) {
            if (a.l1iMissByTransition[i] == 0)
                continue;
            std::cout << "  " << std::setw(14) << std::left
                      << transitionName(
                             static_cast<FetchTransition>(i))
                      << std::right << std::setw(10)
                      << a.l1iMissByTransition[i] << "  ("
                      << std::fixed << std::setprecision(1)
                      << 100.0 *
                             static_cast<double>(
                                 a.l1iMissByTransition[i]) /
                             static_cast<double>(classified)
                      << "%)\n";
        }
    }

    if (!a.hotMissSites.empty()) {
        std::cout << "\nhot miss sites (top " << topN << " of "
                  << a.hotMissSites.size() << "):\n";
        for (std::size_t i = 0;
             i < std::min(topN, a.hotMissSites.size()); ++i) {
            const TraceAnalysis::Site &s = a.hotMissSites[i];
            std::cout << "  0x" << std::hex << s.line << std::dec
                      << "  " << s.misses << " misses\n";
        }
        std::vector<std::uint64_t> counts;
        counts.reserve(a.hotMissSites.size());
        for (const auto &s : a.hotMissSites)
            counts.push_back(s.misses);
        Concentration c =
            lineConcentration(std::move(counts), {0.5, 0.9, 0.99});
        std::cout << "miss concentration: " << c.total
                  << " misses over " << c.uniqueLines
                  << " unique lines\n";
        for (const auto &p : c.points)
            std::cout << "  " << p.quantile * 100 << "% of misses from "
                      << p.lines << " lines\n";
    }

    if (!a.hotEdges.empty()) {
        std::cout << "\nhot discontinuity edges (top " << topN
                  << " of " << a.hotEdges.size()
                  << ", by useless prefetches):\n";
        for (std::size_t i = 0; i < std::min(topN, a.hotEdges.size());
             ++i) {
            const TraceAnalysis::Edge &e = a.hotEdges[i];
            std::cout << "  0x" << std::hex << e.src << " -> 0x"
                      << e.dst << std::dec << "  issued "
                      << e.tally.issued << "  useful "
                      << e.tally.useful << "  useless "
                      << e.tally.useless << "\n";
        }
    }

    if (std::uint64_t stallTotal = a.stallCycleTotal()) {
        std::cout << "\nfetch-stall breakdown (event-derived, "
                  << stallTotal << " stall cycles):\n";
        for (std::size_t b = 1; b < kNumCycleBuckets; ++b) {
            if (a.stallCycles[b] == 0)
                continue;
            std::cout << "  " << std::setw(16) << std::left
                      << cycleBucketName(static_cast<CycleBucket>(b))
                      << std::right << std::setw(10)
                      << a.stallCycles[b] << " cycles in "
                      << std::setw(8) << a.stallEpisodes[b]
                      << " episodes  (" << std::fixed
                      << std::setprecision(1)
                      << 100.0 *
                             static_cast<double>(a.stallCycles[b]) /
                             static_cast<double>(stallTotal)
                      << "%)\n";
        }
    }

    if (a.total.issued > 0) {
        std::cout << "\nprefetch lifecycles (event-derived):\n";
        auto row = [](const std::string &name,
                      const LifecycleTally &t) {
            std::cout << "  " << std::setw(14) << std::left << name
                      << std::right << "issued " << std::setw(8)
                      << t.issued << "  useful " << std::setw(8)
                      << t.useful << "  useless " << std::setw(8)
                      << t.useless << "  replaced " << std::setw(6)
                      << t.replaced << "  in-flight " << std::setw(6)
                      << t.inFlight() << "  accuracy " << std::fixed
                      << std::setprecision(3) << t.accuracy() << "\n";
        };
        for (std::size_t i = 0;
             i < static_cast<std::size_t>(PrefetchOrigin::NumOrigins);
             ++i) {
            if (a.byOrigin[i].issued == 0)
                continue;
            row(originName(static_cast<PrefetchOrigin>(i)),
                a.byOrigin[i]);
        }
        row("total", a.total);
        if (!a.issueToUseCycles.empty()) {
            std::cout << "timeliness (issue-to-use cycles, "
                      << a.issueToUseCycles.size()
                      << " samples): p50 "
                      << a.issueToUseQuantile(0.5) << "  p90 "
                      << a.issueToUseQuantile(0.9) << "  p99 "
                      << a.issueToUseQuantile(0.99) << "  max "
                      << a.issueToUseCycles.back() << "\n";
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    std::string tracePath =
        opts.getString("trace", "trace_events.jsonl");
    std::size_t topN = opts.getUint("top", 10);

    std::vector<ParsedEvent> events;
    try {
        events = loadTrace(tracePath);
    } catch (const std::exception &e) {
        ipref_fatal("%s", e.what());
    }
    TraceAnalysis a = analyze(events);
    std::cout << "trace: " << tracePath << "\n";
    printSummary(a, topN);

    if (opts.has("csv")) {
        std::string path = opts.getString("csv");
        std::ofstream out(path);
        if (!out)
            ipref_fatal("cannot write CSV to '%s'", path.c_str());
        writeIntervalCsv(events, out, opts.getUint("buckets", 50));
        std::cout << "\ninterval timeline written to " << path << "\n";
    }

    if (opts.has("chrome")) {
        std::string path = opts.getString("chrome");
        std::ofstream out(path);
        if (!out)
            ipref_fatal("cannot write Chrome trace to '%s'",
                        path.c_str());
        writeChromeTrace(events, out);
        std::cout << "Chrome trace written to " << path
                  << " (load at ui.perfetto.dev)\n";
    }

    int rc = 0;
    if (opts.has("stats")) {
        std::string path = opts.getString("stats");
        std::ifstream in(path);
        if (!in)
            ipref_fatal("cannot read stats report '%s'", path.c_str());
        std::ostringstream buf;
        buf << in.rdbuf();
        JsonValue doc;
        try {
            doc = parseJson(buf.str());
        } catch (const std::exception &e) {
            ipref_fatal("stats report '%s': %s", path.c_str(),
                        e.what());
        }
        // --stats-json files are arrays of per-run reports plus an
        // optional trailing campaign-summary document (no "results"
        // section); --run selects one report (default: the last
        // per-run report, matching the trace tail).
        const JsonValue *report = &doc;
        if (doc.kind == JsonValue::Array) {
            if (doc.items.empty())
                ipref_fatal("stats report '%s' is empty",
                            path.c_str());
            std::size_t lastRun = doc.items.size();
            for (std::size_t i = doc.items.size(); i-- > 0;) {
                if (doc.items[i].has("results")) {
                    lastRun = i;
                    break;
                }
            }
            if (lastRun == doc.items.size())
                ipref_fatal("stats report '%s' has no per-run "
                            "reports", path.c_str());
            std::size_t idx = opts.getUint("run", lastRun);
            if (idx >= doc.items.size())
                ipref_fatal("--run %zu out of range (%zu reports)",
                            idx, doc.items.size());
            report = &doc.items[idx];
        }
        CrossCheck cc = crossCheck(a, *report);
        std::cout << "\ncross-check vs " << path << ": "
                  << (cc.ok ? "OK (event-derived lifecycle matches "
                              "simulator counters)"
                            : "MISMATCH")
                  << "\n";
        for (const std::string &m : cc.mismatches)
            std::cout << "  " << m << "\n";
        if (!cc.ok)
            rc = 1;
    }
    return rc;
}
