/**
 * @file
 * ipref_top — live campaign monitor.
 *
 * Tails the JSON-lines telemetry stream a campaign writes with
 * `--metrics-out` (or reads a Prometheus exposition file written with
 * `--metrics-prom`) and renders a refreshing progress panel: runs done
 * / total with failure counts, aggregate simulation speed (Minstr/s,
 * instantaneous and cumulative), worker-pool occupancy, trace-cache
 * hit rate and an ETA. Point it at the same files the campaign is
 * writing:
 *
 *   bench_throughput --jobs 8 --metrics-interval-ms 100 \
 *       --metrics-out metrics.jsonl &
 *   ipref_top --jsonl metrics.jsonl
 *
 * Flags:
 *   --jsonl FILE       JSON-lines telemetry stream (default
 *                      metrics.jsonl)
 *   --prom FILE        read a Prometheus exposition file instead
 *   --manifest FILE    campaign checkpoint; adds a wall-time-based
 *                      per-run average to the ETA estimate
 *   --total N          expected total runs (default: the campaign's
 *                      ipref_batch_specs_total counter)
 *   --refresh-ms N     redraw period (default 1000)
 *   --once             render one frame and exit (scripts / CI)
 */

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "sim/campaign.hh"
#include "sim/cycle_ledger.hh"
#include "util/metrics.hh"
#include "util/options.hh"

using namespace ipref;

namespace
{

/** Parse every well-formed snapshot line in @p path (oldest first). */
std::vector<metrics::Snapshot>
readJsonl(const std::string &path)
{
    std::vector<metrics::Snapshot> out;
    std::ifstream in(path);
    if (!in)
        return out;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        try {
            out.push_back(metrics::parseSnapshotLine(line));
        } catch (const std::exception &) {
            // A partially written tail line (the writer flushes per
            // record, but we may race the write) is not an error.
        }
    }
    return out;
}

std::uint64_t
counterOr(const metrics::Snapshot &s, const std::string &name,
          std::uint64_t fallback = 0)
{
    const std::uint64_t *v = s.counter(name);
    return v ? *v : fallback;
}

std::int64_t
gaugeOr(const metrics::Snapshot &s, const std::string &name,
        std::int64_t fallback = 0)
{
    const std::int64_t *v = s.gauge(name);
    return v ? *v : fallback;
}

std::string
formatDuration(double seconds)
{
    if (seconds < 0)
        return "--";
    std::uint64_t s = static_cast<std::uint64_t>(seconds + 0.5);
    std::ostringstream os;
    if (s >= 3600)
        os << s / 3600 << "h" << (s % 3600) / 60 << "m";
    else if (s >= 60)
        os << s / 60 << "m" << s % 60 << "s";
    else
        os << s << "s";
    return os.str();
}

/** One rendered frame of the panel. */
void
render(const std::vector<metrics::Snapshot> &snaps,
       const std::string &source, std::uint64_t totalOverride,
       const std::string &manifestPath, bool ansi)
{
    std::ostringstream os;
    if (ansi)
        os << "\033[H\033[J"; // home + clear to end of screen

    if (snaps.empty()) {
        os << "ipref_top: waiting for snapshots from " << source
           << " ...\n";
        std::cout << os.str() << std::flush;
        return;
    }

    const metrics::Snapshot &last = snaps.back();
    const metrics::Snapshot &first = snaps.front();

    double spanSec = snaps.size() > 1 ? static_cast<double>(
                                            last.unixMs - first.unixMs) /
                                            1000.0
                                      : 0.0;
    const metrics::Snapshot &prev =
        snaps.size() > 1 ? snaps[snaps.size() - 2] : first;
    double stepSec =
        static_cast<double>(last.unixMs - prev.unixMs) / 1000.0;

    // --- campaign progress -------------------------------------------
    std::uint64_t specs = counterOr(last, "ipref_batch_specs_total");
    std::uint64_t done =
        counterOr(last, "ipref_batch_runs_completed_total") +
        counterOr(last, "ipref_batch_runs_restored_total");
    std::uint64_t okRuns = counterOr(last, "ipref_batch_runs_ok_total");
    std::uint64_t failed =
        counterOr(last, "ipref_batch_runs_failed_total") +
        counterOr(last, "ipref_batch_runs_timeout_total") +
        counterOr(last, "ipref_batch_runs_interrupted_total");
    std::uint64_t retries =
        counterOr(last, "ipref_batch_retries_total");
    std::int64_t activeRuns =
        gaugeOr(last, "ipref_batch_active_runs");
    std::uint64_t total = totalOverride ? totalOverride : specs;

    // --- simulation speed --------------------------------------------
    std::uint64_t instrs =
        counterOr(last, "ipref_sim_instructions_total");
    std::uint64_t instrsFirst =
        counterOr(first, "ipref_sim_instructions_total");
    std::uint64_t instrsPrev =
        counterOr(prev, "ipref_sim_instructions_total");
    double cumMips =
        spanSec > 0
            ? static_cast<double>(instrs - instrsFirst) / spanSec / 1e6
            : 0.0;
    double nowMips =
        stepSec > 0
            ? static_cast<double>(instrs - instrsPrev) / stepSec / 1e6
            : 0.0;

    // --- trace cache --------------------------------------------------
    std::uint64_t hits =
        counterOr(last, "ipref_trace_cache_hits_total");
    std::uint64_t decodes =
        counterOr(last, "ipref_trace_cache_decodes_total");
    double hitRate =
        hits + decodes
            ? static_cast<double>(hits) /
                  static_cast<double>(hits + decodes)
            : 0.0;
    std::int64_t residentMb =
        gaugeOr(last, "ipref_trace_cache_resident_bytes") /
        (1024 * 1024);

    // --- prefetching --------------------------------------------------
    std::uint64_t pfIssued =
        counterOr(last, "ipref_prefetch_issued_total");
    std::uint64_t pfUseful =
        counterOr(last, "ipref_prefetch_useful_total");
    double accuracy =
        pfIssued ? static_cast<double>(pfUseful) /
                       static_cast<double>(pfIssued)
                 : 0.0;

    // --- ETA -----------------------------------------------------------
    // Primary estimate: completion rate observed over the stream.
    // With a manifest, the recorded per-run wall times refine the
    // estimate when fewer than two runs completed inside the stream.
    double eta = -1.0;
    std::uint64_t remaining = total > done ? total - done : 0;
    std::uint64_t doneFirst =
        counterOr(first, "ipref_batch_runs_completed_total") +
        counterOr(first, "ipref_batch_runs_restored_total");
    if (remaining == 0) {
        eta = 0.0;
    } else if (done > doneFirst && spanSec > 0) {
        double runsPerSec =
            static_cast<double>(done - doneFirst) / spanSec;
        eta = static_cast<double>(remaining) / runsPerSec;
    } else if (!manifestPath.empty()) {
        Expected<CampaignManifest> m =
            CampaignManifest::load(manifestPath);
        if (m.ok()) {
            std::uint64_t wallSum = 0, n = 0;
            for (const ManifestEntry *e :
                 m.value().entriesInOrder()) {
                if (e->status == RunStatus::Ok && e->wallMs) {
                    wallSum += e->wallMs;
                    ++n;
                }
            }
            if (n) {
                double perRunSec = static_cast<double>(wallSum) /
                                   static_cast<double>(n) / 1000.0;
                unsigned lanes = std::max<std::int64_t>(1, activeRuns);
                eta = static_cast<double>(remaining) * perRunSec /
                      static_cast<double>(lanes);
            }
        }
    }

    os << "ipref_top — " << source << "  (snapshot #" << last.seq
       << ", " << snaps.size() << " in stream)\n\n";

    os << "  runs      " << done << " / " << total;
    if (total)
        os << "  ("
           << static_cast<int>(100.0 * static_cast<double>(done) /
                               static_cast<double>(total))
           << "%)";
    os << "   ok " << okRuns << "  failed " << failed << "  retries "
       << retries << "  active " << activeRuns << "\n";
    os << "  eta       " << formatDuration(eta) << "\n";
    os << "  speed     " << std::fixed;
    os.precision(2);
    os << nowMips << " Minstr/s now, " << cumMips
       << " Minstr/s avg\n";
    os << "  cache     hit rate ";
    os.precision(1);
    os << 100.0 * hitRate << "%  (hits " << hits << ", decodes "
       << decodes << ", " << residentMb << " MiB resident)\n";
    os << "  pool      queue "
       << gaugeOr(last, "ipref_pool_queue_depth") << ", busy "
       << gaugeOr(last, "ipref_pool_busy_workers") << "\n";
    os << "  prefetch  issued " << pfIssued << ", useful " << pfUseful
       << "  (accuracy ";
    os << 100.0 * accuracy << "%, in flight "
       << gaugeOr(last, "ipref_prefetch_in_flight") << ")\n";
    os << "  sim       instrs " << instrs << "  warmup "
       << counterOr(last, "ipref_sim_warmup_instructions_total")
       << "  measure "
       << counterOr(last, "ipref_sim_measure_instructions_total")
       << "  runs in flight "
       << gaugeOr(last, "ipref_sim_active_runs") << "\n";

    // --- CPI stack (timing runs only; absent counters stay hidden) ---
    // One stacked bar over the cumulative per-bucket cycle counters:
    // each bucket paints its share of the width with its glyph.
    static const char bucketGlyph[kNumCycleBuckets] = {
        '.', '1', '2', 'M', 'P', 'R', 'Q', 'T', 'D'};
    std::array<std::uint64_t, kNumCycleBuckets> stack{};
    std::uint64_t stackTotal = 0;
    for (std::size_t b = 0; b < kNumCycleBuckets; ++b) {
        stack[b] = counterOr(
            last, std::string("ipref_cpi_") +
                      cycleBucketName(static_cast<CycleBucket>(b)) +
                      "_cycles_total");
        stackTotal += stack[b];
    }
    if (stackTotal) {
        constexpr std::size_t width = 40;
        std::string bar;
        std::uint64_t acc = 0;
        for (std::size_t b = 0; b < kNumCycleBuckets; ++b) {
            acc += stack[b];
            // Cumulative rounding keeps the bar exactly `width`
            // glyphs and deterministic for --once golden output.
            std::size_t end = static_cast<std::size_t>(
                static_cast<double>(acc) * width /
                static_cast<double>(stackTotal));
            while (bar.size() < end)
                bar += bucketGlyph[b];
        }
        os << "  cpi       [" << bar << "]";
        for (std::size_t b = 0; b < kNumCycleBuckets; ++b) {
            if (!stack[b])
                continue;
            os << "  " << bucketGlyph[b] << "="
               << cycleBucketName(static_cast<CycleBucket>(b)) << " ";
            os.precision(1);
            os << 100.0 * static_cast<double>(stack[b]) /
                      static_cast<double>(stackTotal)
               << "%";
        }
        os << "\n";
    }

    std::cout << os.str() << std::flush;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    std::string jsonl = opts.getString("jsonl", "metrics.jsonl");
    std::string prom = opts.getString("prom");
    std::string manifest = opts.getString("manifest");
    std::uint64_t total = opts.getUint("total", 0);
    std::uint64_t refreshMs = opts.getUint("refresh-ms", 1000);
    bool once = opts.getBool("once");

    const std::string source = prom.empty() ? jsonl : prom;
    // Prometheus files hold only the latest exposition, so rates need
    // history carried across refreshes.
    std::vector<metrics::Snapshot> promHistory;

    while (true) {
        std::vector<metrics::Snapshot> snaps;
        if (!prom.empty()) {
            std::ifstream in(prom);
            if (in) {
                std::stringstream buf;
                buf << in.rdbuf();
                try {
                    metrics::Snapshot s =
                        metrics::parsePrometheus(buf.str());
                    if (promHistory.empty() ||
                        promHistory.back().seq != s.seq)
                        promHistory.push_back(std::move(s));
                } catch (const std::exception &) {
                    // racing the atomic rewrite; keep the history
                }
            }
            snaps = promHistory;
        } else {
            snaps = readJsonl(jsonl);
        }

        render(snaps, source, total, manifest, !once);
        if (once)
            return snaps.empty() ? 1 : 0;
        std::this_thread::sleep_for(
            std::chrono::milliseconds(refreshMs));
    }
}
